#!/usr/bin/env python3
"""Fail if a fresh BENCH_transport.json regresses >20% against the committed
baseline.

Usage: check_bench_regression.py <baseline.json> <fresh.json>

The gate compares each benchmark's ``speedup`` field (legacy-path time /
bulk-path time, both measured in the *same* run on the *same* machine)
rather than absolute nanoseconds: CI runners differ wildly in clock speed
run to run, but the legacy/bulk ratio is a property of the code, so a drop
in the ratio means the shipped fast path genuinely lost ground against its
frozen in-repo baseline. A fresh speedup below 80% of the committed one
fails the job.
"""

import json
import sys

TOLERANCE = 0.8  # fresh speedup must be >= 80% of the committed speedup


def load(path):
    with open(path) as f:
        return json.load(f)


def main():
    if len(sys.argv) != 3:
        sys.exit(f"usage: {sys.argv[0]} <baseline.json> <fresh.json>")
    baseline, fresh = load(sys.argv[1]), load(sys.argv[2])

    failures = []
    checked = 0
    for key, base_entry in baseline.items():
        if not isinstance(base_entry, dict) or "speedup" not in base_entry:
            continue
        fresh_entry = fresh.get(key)
        if not isinstance(fresh_entry, dict) or "speedup" not in fresh_entry:
            failures.append(f"{key}: present in baseline but missing from fresh run")
            continue
        checked += 1
        base_s, fresh_s = base_entry["speedup"], fresh_entry["speedup"]
        verdict = "ok" if fresh_s >= base_s * TOLERANCE else "REGRESSED"
        print(f"{key}: baseline speedup {base_s:.2f}x, fresh {fresh_s:.2f}x — {verdict}")
        if verdict == "REGRESSED":
            failures.append(
                f"{key}: speedup fell from {base_s:.2f}x to {fresh_s:.2f}x "
                f"(limit: {base_s * TOLERANCE:.2f}x)"
            )

    if checked == 0:
        sys.exit("no comparable benchmark entries found — malformed baseline?")
    if failures:
        print("\nPerformance regression detected (>20% vs committed baseline):")
        for f in failures:
            print(f"  - {f}")
        sys.exit(1)
    print(f"\nall {checked} benchmarks within 20% of the committed baseline")


if __name__ == "__main__":
    main()
