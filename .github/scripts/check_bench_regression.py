#!/usr/bin/env python3
"""Fail if a fresh BENCH_*.json regresses >20% against the committed
baseline.

Usage: check_bench_regression.py [--min-speedup X] <baseline.json> <fresh.json>

The gate compares each benchmark's ``speedup`` field (slow-path time /
fast-path time, both measured in the *same* run on the *same* machine)
rather than absolute nanoseconds: CI runners differ wildly in clock speed
run to run, but the slow/fast ratio is a property of the code, so a drop
in the ratio means the shipped fast path genuinely lost ground against its
frozen in-repo baseline. A fresh speedup below 80% of the committed one
fails the job.

``--min-speedup X`` additionally imposes an **absolute** floor on every
gated entry. The relative gate alone is vacuous when the committed
baseline was produced somewhere the fast path couldn't win (e.g. the
BENCH_overlap baseline from a 1-vCPU container records ~1.0x, so 80% of
it would accept a 20% regression); the floor encodes "the fast path must
not actually be slower" independent of where the baseline came from.
"""

import json
import sys

TOLERANCE = 0.8  # fresh speedup must be >= 80% of the committed speedup


def load(path):
    with open(path) as f:
        return json.load(f)


def main():
    args = sys.argv[1:]
    min_speedup = None
    if args and args[0] == "--min-speedup":
        if len(args) < 2:
            sys.exit("--min-speedup needs a value")
        min_speedup = float(args[1])
        args = args[2:]
    if len(args) != 2:
        sys.exit(f"usage: {sys.argv[0]} [--min-speedup X] <baseline.json> <fresh.json>")
    baseline, fresh = load(args[0]), load(args[1])

    failures = []
    checked = 0
    for key, base_entry in baseline.items():
        if not isinstance(base_entry, dict) or "speedup" not in base_entry:
            continue
        fresh_entry = fresh.get(key)
        if not isinstance(fresh_entry, dict) or "speedup" not in fresh_entry:
            failures.append(f"{key}: present in baseline but missing from fresh run")
            continue
        checked += 1
        base_s, fresh_s = base_entry["speedup"], fresh_entry["speedup"]
        floor = base_s * TOLERANCE
        if min_speedup is not None:
            floor = max(floor, min_speedup)
        verdict = "ok" if fresh_s >= floor else "REGRESSED"
        print(
            f"{key}: baseline speedup {base_s:.2f}x, fresh {fresh_s:.2f}x "
            f"(floor {floor:.2f}x) — {verdict}"
        )
        if verdict == "REGRESSED":
            failures.append(
                f"{key}: speedup {fresh_s:.2f}x below floor {floor:.2f}x "
                f"(baseline {base_s:.2f}x)"
            )

    if checked == 0:
        sys.exit("no comparable benchmark entries found — malformed baseline?")
    if failures:
        print("\nPerformance regression detected (>20% vs committed baseline):")
        for f in failures:
            print(f"  - {f}")
        sys.exit(1)
    print(f"\nall {checked} benchmarks within 20% of the committed baseline")


if __name__ == "__main__":
    main()
