#!/usr/bin/env python3
"""Sanity-check the freshly regenerated BENCH_native.json — and, when
given, BENCH_team.json — on the CI runner.

Usage: check_native_scaling.py <fresh_native.json> [fresh_team.json]

The committed BENCH_native.json entry was historically produced on a
1-vCPU container, whose scaling curve is flat *by construction* — useless
as a scaling baseline. This gate therefore never compares against the
committed file; it checks the curve the (multi-core) runner just
produced:

* ``host_threads`` must be recorded (honesty requirement: every entry
  says which regime produced it);
* if the runner actually has >= 4 hardware threads, the native backend
  must show real parallel speedup — ``threads_2`` and ``threads_4`` at or
  above a conservative 1.15x over ``threads_1``. The sweep is
  embarrassingly parallel with a working set that fits in cache, so a
  multi-core host that can't reach 1.15x means the backend (not the
  host) has a scaling bug.

On hosts with fewer than 4 threads the speedup check is skipped with a
warning — a flat curve there is the expected artifact, and failing would
just punish the infrastructure.

The optional second argument applies the same grading to the worker-team
curve: BENCH_team.json's single-rank ``ranks_1_team_2`` / ``ranks_1_team_4``
cells must show ``speedup_vs_team_1`` at or above a conservative 1.1x when
the runner has >= 4 hardware threads (the interior sweep is embarrassingly
parallel across lanes, so a flat curve on real cores means the team — not
the host — has a scaling bug). Hosts below 4 threads emit
``ratio_vs_team_1`` instead, which is informational and never graded —
the same honesty convention the overlap entry uses.
"""

import json
import sys

MIN_SPEEDUP = 1.15  # conservative floor for threads_2 / threads_4 on >=4 cores
MIN_TEAM_SPEEDUP = 1.1  # conservative floor for ranks_1_team_{2,4} on >=4 cores


def host_threads_of(fresh, name):
    workload = fresh.get("workload", {})
    host_threads = workload.get("host_threads")
    if not isinstance(host_threads, int) or host_threads < 1:
        sys.exit(f"{name} does not record host_threads — refusing to trust it")
    return host_threads


def grade_curve(fresh, keys, field, floor, what):
    """Checks ``field`` >= ``floor`` for every entry named in ``keys``;
    returns the failure messages (empty = healthy)."""
    failures = []
    for key in keys:
        entry = fresh.get(key)
        if not isinstance(entry, dict) or field not in entry:
            failures.append(f"{key}: missing {field} entry")
            continue
        s = entry[field]
        verdict = "ok" if s >= floor else "TOO FLAT"
        print(f"{key}: {field} = {s:.2f} (floor {floor}) — {verdict}")
        if verdict == "TOO FLAT":
            failures.append(f"{key}: {field} = {s:.2f} ({what}; floor: {floor})")
    return failures


def main():
    if len(sys.argv) not in (2, 3):
        sys.exit(f"usage: {sys.argv[0]} <fresh_native.json> [fresh_team.json]")
    with open(sys.argv[1]) as f:
        fresh = json.load(f)

    host_threads = host_threads_of(fresh, "BENCH_native.json")
    print(f"runner host_threads: {host_threads}")

    failures = []
    if host_threads < 4:
        print(
            "fewer than 4 hardware threads: native scaling check skipped "
            "(a flat curve here is a property of the host, not the backend)"
        )
    else:
        failures += grade_curve(
            fresh,
            ("threads_2", "threads_4"),
            "speedup_vs_1",
            MIN_SPEEDUP,
            f"on a {host_threads}-thread host",
        )

    if len(sys.argv) == 3:
        with open(sys.argv[2]) as f:
            team = json.load(f)
        team_threads = host_threads_of(team, "BENCH_team.json")
        if team_threads < 4:
            print(
                "fewer than 4 hardware threads: team scaling check skipped "
                "(such hosts emit informational ratio_vs_team_1, never graded)"
            )
        else:
            failures += grade_curve(
                team,
                ("ranks_1_team_2", "ranks_1_team_4"),
                "speedup_vs_team_1",
                MIN_TEAM_SPEEDUP,
                f"on a {team_threads}-thread host",
            )

    if failures:
        print("\nscaling failure on real parallel hardware:")
        for f in failures:
            print(f"  - {f}")
        sys.exit(1)
    print("\nscaling curves are healthy on this runner")


if __name__ == "__main__":
    main()
