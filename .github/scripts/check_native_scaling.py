#!/usr/bin/env python3
"""Sanity-check the freshly regenerated BENCH_native.json on the CI runner.

Usage: check_native_scaling.py <fresh.json>

The committed BENCH_native.json entry was historically produced on a
1-vCPU container, whose scaling curve is flat *by construction* — useless
as a scaling baseline. This gate therefore never compares against the
committed file; it checks the curve the (multi-core) runner just
produced:

* ``host_threads`` must be recorded (honesty requirement: every entry
  says which regime produced it);
* if the runner actually has >= 4 hardware threads, the native backend
  must show real parallel speedup — ``threads_2`` and ``threads_4`` at or
  above a conservative 1.15x over ``threads_1``. The sweep is
  embarrassingly parallel with a working set that fits in cache, so a
  multi-core host that can't reach 1.15x means the backend (not the
  host) has a scaling bug.

On hosts with fewer than 4 threads the speedup check is skipped with a
warning — a flat curve there is the expected artifact, and failing would
just punish the infrastructure.
"""

import json
import sys

MIN_SPEEDUP = 1.15  # conservative floor for threads_2 / threads_4 on >=4 cores


def main():
    if len(sys.argv) != 2:
        sys.exit(f"usage: {sys.argv[0]} <fresh.json>")
    with open(sys.argv[1]) as f:
        fresh = json.load(f)

    workload = fresh.get("workload", {})
    host_threads = workload.get("host_threads")
    if not isinstance(host_threads, int) or host_threads < 1:
        sys.exit("BENCH_native.json does not record host_threads — refusing to trust it")
    print(f"runner host_threads: {host_threads}")

    if host_threads < 4:
        print(
            "fewer than 4 hardware threads: scaling check skipped "
            "(a flat curve here is a property of the host, not the backend)"
        )
        return

    failures = []
    for key in ("threads_2", "threads_4"):
        entry = fresh.get(key)
        if not isinstance(entry, dict) or "speedup_vs_1" not in entry:
            failures.append(f"{key}: missing speedup_vs_1 entry")
            continue
        s = entry["speedup_vs_1"]
        verdict = "ok" if s >= MIN_SPEEDUP else "TOO FLAT"
        print(f"{key}: speedup_vs_1 = {s:.2f} (floor {MIN_SPEEDUP}) — {verdict}")
        if verdict == "TOO FLAT":
            failures.append(
                f"{key}: speedup_vs_1 = {s:.2f} on a {host_threads}-thread host "
                f"(floor: {MIN_SPEEDUP})"
            )

    if failures:
        print("\nnative backend failed to scale on real parallel hardware:")
        for f in failures:
            print(f"  - {f}")
        sys.exit(1)
    print("\nnative scaling curve is healthy on this runner")


if __name__ == "__main__":
    main()
