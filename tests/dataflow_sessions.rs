//! Acceptance tests for the multi-field dataflow session API: stage-DAG
//! validation diagnostics, the **fused-exchange message contract**
//! (exactly one gather message per neighbor per pass, trace-verified on
//! both backends), bitwise equivalence of fused vs per-field exchange,
//! and name-keyed checkpoint round trips.
//!
//! The message-count check is the tentpole's acceptance criterion: a
//! three-field, two-stage graph whose two relaxation stages both read
//! ghosts at the pass boundary must move **one** `TAG_GATHER_FUSED`
//! message per neighbor per pass — not one per field — while the third
//! (inert) field is never gathered at all. The count comes from the
//! protocol trace the session records under
//! `StanceConfig::with_verification(true)`, so it is the actual traffic,
//! not a model.

use stance::prelude::*;
use stance::sim::tags::{TAG_GATHER, TAG_GATHER_FUSED};
use stance_native::NativeCluster;
use stance_verify::{DiagnosticKind, TraceEvent};

fn mesh() -> Graph {
    let raw = stance::locality::meshgen::triangulated_grid(14, 11, 0.4, 5);
    stance::prepare_mesh(&raw, OrderingMethod::Rcb).0
}

fn init(name: &str, g: usize) -> f64 {
    match name {
        "y" => (g as f64 * 0.01).sin() * 5.0,
        "z" => (g as f64 * 0.02).cos() * 3.0,
        _ => g as f64,
    }
}

/// The acceptance graph: two independent relaxation stages sharing the
/// pass-start exchange point, plus an inert field nobody reads or writes.
fn three_field_graph(fused: bool) -> StageGraph<f64> {
    StageGraphBuilder::new()
        .field("y")
        .field("z")
        .field("inert")
        .stage("relax_y", RelaxationKernel, "y", "y")
        .stage("relax_z", RelaxationKernel, "z", "z")
        .with_fused_exchange(fused)
        .build()
}

// ---------------------------------------------------------------------
// DAG validation diagnostics (the non-panicking spelling).
// ---------------------------------------------------------------------

#[test]
fn validate_reports_cycles_without_panicking() {
    let diags = StageGraphBuilder::<f64>::new()
        .field("a")
        .field("b")
        .stage("fwd", RelaxationKernel, "a", "b")
        .stage("bwd", RelaxationKernel, "b", "a")
        .validate();
    assert!(
        diags.iter().any(|d| d.kind == DiagnosticKind::StageCycle),
        "expected a stage-cycle diagnostic, got {diags:?}"
    );
}

#[test]
fn validate_reports_undeclared_reads() {
    let diags = StageGraphBuilder::<f64>::new()
        .field("y")
        .stage("relax", RelaxationKernel, "phantom", "y")
        .validate();
    assert!(
        diags
            .iter()
            .any(|d| d.kind == DiagnosticKind::UndeclaredFieldAccess),
        "expected an undeclared-field-access diagnostic, got {diags:?}"
    );
}

#[test]
fn validate_reports_duplicate_names() {
    let diags = StageGraphBuilder::<f64>::new()
        .field("y")
        .field("y")
        .stage("relax", RelaxationKernel, "y", "y")
        .stage("relax", RelaxationKernel, "y", "y")
        .validate();
    assert!(
        diags
            .iter()
            .any(|d| d.kind == DiagnosticKind::DuplicateFieldName),
        "expected a duplicate-field-name diagnostic, got {diags:?}"
    );
    assert!(
        diags
            .iter()
            .any(|d| d.kind == DiagnosticKind::DuplicateStageName),
        "expected a duplicate-stage-name diagnostic, got {diags:?}"
    );
}

#[test]
#[should_panic(expected = "stage-graph validation")]
fn build_panics_on_invalid_graphs() {
    let _ = StageGraphBuilder::<f64>::new()
        .field("a")
        .field("b")
        .stage("fwd", RelaxationKernel, "a", "b")
        .stage("bwd", RelaxationKernel, "b", "a")
        .build();
}

// ---------------------------------------------------------------------
// The fused message contract, trace-verified on both backends.
// ---------------------------------------------------------------------

/// What one rank's traced run returns: per-destination fused-message
/// counts, the plain per-field gather count, this rank's schedule
/// neighbors, the two live fields, and the partition.
type TracedRank = (
    Vec<(usize, usize)>,
    usize,
    Vec<usize>,
    Vec<f64>,
    Vec<f64>,
    BlockPartition,
);

/// One rank's run of the acceptance graph under full verification.
/// Returns, from the recorded protocol trace: the per-destination count
/// of fused gather messages, the count of plain per-field gathers, this
/// rank's schedule neighbors, and the field values for the bitwise half.
fn traced_body<C: Comm>(env: &mut C, mesh: &Graph, passes: usize) -> TracedRank {
    let config = StanceConfig::free()
        .without_load_balancing()
        .with_verification(true);
    let mut s = DataflowSession::setup(env, mesh, three_field_graph(true), init, &config);
    s.run_block(env, passes);
    let diags = s.verify_protocol(env);
    assert!(diags.is_empty(), "protocol diagnostics: {diags:?}");
    let neighbors: Vec<usize> = s.schedule().sends().iter().map(|(p, _)| *p).collect();
    let trace = s.trace().expect("verification is on");
    let mut fused_per_dst = vec![0usize; env.size()];
    let mut plain = 0usize;
    for ev in &trace.events {
        if let TraceEvent::Send { dst, tag, .. } = ev {
            if *tag == TAG_GATHER_FUSED {
                fused_per_dst[*dst] += 1;
            } else if *tag == TAG_GATHER {
                plain += 1;
            }
        }
    }
    let counts = fused_per_dst
        .into_iter()
        .enumerate()
        .filter(|&(_, c)| c > 0)
        .collect();
    (
        counts,
        plain,
        neighbors,
        s.local("y").to_vec(),
        s.local("z").to_vec(),
        s.partition().clone(),
    )
}

/// Checks one backend's results: every rank sent exactly `passes` fused
/// messages to each of its schedule neighbors and nothing on the plain
/// gather tag. Returns the reassembled (y, z) globals.
fn check_contract(results: Vec<TracedRank>, passes: usize, backend: &str) -> (Vec<f64>, Vec<f64>) {
    let partition = results[0].5.clone();
    let mut ys = Vec::new();
    let mut zs = Vec::new();
    for (rank, (counts, plain, neighbors, y, z, _)) in results.into_iter().enumerate() {
        let expected: Vec<(usize, usize)> = neighbors.iter().map(|&d| (d, passes)).collect();
        assert_eq!(
            counts, expected,
            "{backend} rank {rank}: fused sends per neighbor != one per pass"
        );
        assert_eq!(
            plain, 0,
            "{backend} rank {rank}: plain per-field gathers leaked into a fused run"
        );
        ys.push(y);
        zs.push(z);
    }
    (
        stance::reassemble(&partition, ys),
        stance::reassemble(&partition, zs),
    )
}

#[test]
fn fused_graph_sends_one_message_per_neighbor_per_pass_on_both_backends() {
    let m = mesh();
    let passes = 7;
    for p in [2usize, 4] {
        let m2 = &m;
        let sim_results =
            Cluster::new(ClusterSpec::uniform(p).with_network(NetworkSpec::zero_cost()))
                .run(|env| traced_body(env, m2, passes))
                .into_results();
        let native_results = NativeCluster::new(p)
            .run(|env| traced_body(env, m2, passes))
            .into_results();
        let (sim_y, sim_z) = check_contract(sim_results, passes, "sim");
        let (nat_y, nat_z) = check_contract(native_results, passes, "native");
        assert_eq!(
            bits(&sim_y),
            bits(&nat_y),
            "y diverged across backends at p = {p}"
        );
        assert_eq!(
            bits(&sim_z),
            bits(&nat_z),
            "z diverged across backends at p = {p}"
        );
    }
}

// ---------------------------------------------------------------------
// Fused vs per-field exchange: bitwise identical on both backends.
// ---------------------------------------------------------------------

fn flavor_body<C: Comm>(
    env: &mut C,
    mesh: &Graph,
    fused: bool,
    passes: usize,
) -> (Vec<f64>, Vec<f64>, BlockPartition) {
    let config = StanceConfig::free().without_load_balancing();
    let mut s = DataflowSession::setup(env, mesh, three_field_graph(fused), init, &config);
    s.run_block(env, passes);
    (
        s.local("y").to_vec(),
        s.local("z").to_vec(),
        s.partition().clone(),
    )
}

fn reassemble_flavor(results: Vec<(Vec<f64>, Vec<f64>, BlockPartition)>) -> (Vec<f64>, Vec<f64>) {
    let partition = results[0].2.clone();
    let (ys, zs): (Vec<_>, Vec<_>) = results.into_iter().map(|(y, z, _)| (y, z)).unzip();
    (
        stance::reassemble(&partition, ys),
        stance::reassemble(&partition, zs),
    )
}

#[test]
fn fused_and_per_field_exchange_are_bitwise_identical() {
    let m = mesh();
    let passes = 9;
    for p in [1usize, 2, 4] {
        let m2 = &m;
        let run_sim = |fused: bool| {
            reassemble_flavor(
                Cluster::new(ClusterSpec::uniform(p).with_network(NetworkSpec::zero_cost()))
                    .run(|env| flavor_body(env, m2, fused, passes))
                    .into_results(),
            )
        };
        let run_native = |fused: bool| {
            reassemble_flavor(
                NativeCluster::new(p)
                    .run(|env| flavor_body(env, m2, fused, passes))
                    .into_results(),
            )
        };
        let (fy, fz) = run_sim(true);
        let (uy, uz) = run_sim(false);
        assert_eq!(
            bits(&fy),
            bits(&uy),
            "sim fused y != per-field y at p = {p}"
        );
        assert_eq!(
            bits(&fz),
            bits(&uz),
            "sim fused z != per-field z at p = {p}"
        );
        let (nfy, nfz) = run_native(true);
        let (nuy, nuz) = run_native(false);
        assert_eq!(
            bits(&nfy),
            bits(&nuy),
            "native fused y != per-field y at p = {p}"
        );
        assert_eq!(
            bits(&nfz),
            bits(&nuz),
            "native fused z != per-field z at p = {p}"
        );
        assert_eq!(
            bits(&fy),
            bits(&nfy),
            "fused y diverged across backends at p = {p}"
        );
        assert_eq!(
            bits(&fz),
            bits(&nfz),
            "fused z diverged across backends at p = {p}"
        );
    }
}

// ---------------------------------------------------------------------
// Name-keyed checkpoints across the two session APIs.
// ---------------------------------------------------------------------

#[test]
fn legacy_checkpoint_records_generated_names() {
    let m = mesh();
    let config = StanceConfig::free().without_load_balancing();
    let report =
        Cluster::new(ClusterSpec::uniform(2).with_network(NetworkSpec::zero_cost())).run(|env| {
            let mut s =
                AdaptiveSession::setup(env, &m, RelaxationKernel, |g| init("y", g), &config);
            let iv = s.partition().interval_of(env.rank());
            let aux: Vec<f64> = iv.iter().map(|g| g as f64).collect();
            let auto = s.checkpoint(env, &[&aux]);
            let named = s.checkpoint_named(env, &[("residual", &aux)]);
            (
                auto.primary_name().to_string(),
                auto.aux()[0].0.clone(),
                named.field("residual").map(<[f64]>::to_vec),
                named.to_bytes(),
            )
        });
    for (primary, auto_name, named_field, bytes) in report.results() {
        assert_eq!(primary, "values");
        assert_eq!(auto_name, "aux0");
        let named_field = named_field.as_ref().expect("named field recorded");
        let back = SessionCheckpoint::<f64>::from_bytes(bytes);
        assert_eq!(back.field("residual"), Some(named_field.as_slice()));
    }
}

#[test]
fn dataflow_restore_is_keyed_by_name_not_position() {
    let m = mesh();
    let config = StanceConfig::free().without_load_balancing();
    // Registration order differs between writer and reader — a positional
    // zip would silently swap the fields; the name-keyed restore must not.
    let writer_graph = || {
        StageGraphBuilder::new()
            .field("y")
            .field("z")
            .stage("relax_y", RelaxationKernel, "y", "y")
            .stage("relax_z", RelaxationKernel, "z", "z")
            .build()
    };
    let report =
        Cluster::new(ClusterSpec::uniform(2).with_network(NetworkSpec::zero_cost())).run(|env| {
            let mut s = DataflowSession::setup(env, &m, writer_graph(), init, &config);
            s.run_block(env, 3);
            let ckpt = s.checkpoint(env);
            let blob = ckpt.to_bytes();
            let back = SessionCheckpoint::<f64>::from_bytes(&blob);
            let mut r = DataflowSession::restore(env, &m, writer_graph(), &back, &config);
            r.run_block(env, 2);
            s.run_block(env, 2);
            (
                s.local("y") == r.local("y") && s.local("z") == r.local("z"),
                back.field("z").map(<[f64]>::to_vec),
                ckpt.field("z").map(<[f64]>::to_vec),
            )
        });
    for (same, wire_z, live_z) in report.results() {
        assert!(same, "restored run diverged from the original");
        assert_eq!(wire_z, live_z, "field z changed across the wire");
    }
}

#[test]
#[should_panic(expected = "more than once")]
fn checkpoint_rejects_duplicate_field_names() {
    let m = mesh();
    let config = StanceConfig::free().without_load_balancing();
    Cluster::new(ClusterSpec::uniform(2).with_network(NetworkSpec::zero_cost())).run(|env| {
        let mut s = AdaptiveSession::setup(env, &m, RelaxationKernel, |g| init("y", g), &config);
        let iv = s.partition().interval_of(env.rank());
        let aux: Vec<f64> = iv.iter().map(|g| g as f64).collect();
        // Two aux slices under the same name: rejected at encode-use time
        // by checkpoint_named, and — for a blob forged around it — at
        // decode time.
        let _ = s.checkpoint_named(env, &[("dup", &aux), ("dup", &aux)]);
    });
}

/// f64 slices compared as raw bit patterns (catches -0.0 vs 0.0 and NaN
/// payload differences that `==` would hide or over-reject).
fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}
