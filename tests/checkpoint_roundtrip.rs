//! Property tests for checkpoint round-trips.
//!
//! A checkpoint must be a *perfect* snapshot: serialize → deserialize
//! reproduces values, aux arrays, partition intervals and monitor EWMAs
//! **bitwise** (every `f64` compared by bit pattern, so `-0.0`,
//! subnormals and NaN payloads all survive), for scalar and multi-field
//! elements and across rank counts 1/2/4/8 — including restoring onto a
//! *different* rank count, where the partition becomes uniform but the
//! data must still land identically in global order.

use proptest::prelude::*;
use stance::balance::MonitorSnapshot;
use stance::prelude::*;

/// The rank counts the suite sweeps.
const WIDTHS: [usize; 4] = [1, 2, 4, 8];

/// Raw `u64`s per generated monitor snapshot: one flags/obs word plus
/// eight value words (3 optional costs + 5 movement accumulators).
const SNAP_WORDS: usize = 9;

/// Decodes one monitor snapshot from raw bits: presence flags and the
/// observation count come from the first word, every `f64` is an
/// arbitrary bit pattern (NaNs and ±0.0 included — round-trips are
/// compared by bits, not by `==`).
fn snapshot_from_bits(bits: &[u64]) -> MonitorSnapshot {
    let flags = bits[0];
    let opt = |on: bool, word: u64| on.then(|| f64::from_bits(word));
    MonitorSnapshot {
        per_item: opt(flags & 1 != 0, bits[1]),
        rebuild_cost: opt(flags & 2 != 0, bits[2]),
        remap_cost: opt(flags & 4 != 0, bits[3]),
        movement: [
            f64::from_bits(bits[4]),
            f64::from_bits(bits[5]),
            f64::from_bits(bits[6]),
            f64::from_bits(bits[7]),
            f64::from_bits(bits[8]),
        ],
        movement_obs: (flags >> 32) as u32,
    }
}

/// Builds a checkpoint for `p` ranks over `values` (and one aux array)
/// by running a real collective checkpoint on a `p`-rank cluster.
fn collective_checkpoint(p: usize, mesh: &Graph, iters: usize) -> SessionCheckpoint<f64> {
    let config = StanceConfig::free();
    let spec = ClusterSpec::uniform(p).with_network(NetworkSpec::zero_cost());
    let blobs = Cluster::new(spec)
        .run(|env| {
            let mut s =
                AdaptiveSession::setup(env, mesh, RelaxationKernel, |g| (g as f64).sin(), &config);
            let aux: Vec<f64> = s
                .partition()
                .interval_of(env.rank())
                .iter()
                .map(|g| -(g as f64))
                .collect();
            s.run_block(env, iters);
            s.checkpoint(env, &[&aux]).to_bytes()
        })
        .into_results();
    // Replication: every rank serialized the identical blob.
    assert!(blobs.windows(2).all(|w| w[0] == w[1]));
    SessionCheckpoint::from_bytes(&blobs[0])
}

/// Compares two f64 slices bit-for-bit.
fn assert_bits_eq(a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "bit divergence at element {i}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Serialize → deserialize is the identity on hand-built checkpoints:
    /// scalar elements, arbitrary value/aux bit patterns, arbitrary
    /// monitor statistics, every width in 1/2/4/8.
    #[test]
    fn blob_round_trip_is_bitwise_scalar(
        width_ix in 0usize..4,
        sizes_seed in proptest::collection::vec(0usize..40, 8usize),
        value_bits in proptest::collection::vec(0u64..u64::MAX, 1..200),
        snap_bits in proptest::collection::vec(0u64..u64::MAX, 8 * SNAP_WORDS),
        aux_count in 0usize..3,
    ) {
        let p = WIDTHS[width_ix];
        let values_seed: Vec<f64> = value_bits.iter().map(|&u| f64::from_bits(u)).collect();
        let snaps: Vec<MonitorSnapshot> = (0..p)
            .map(|k| snapshot_from_bits(&snap_bits[k * SNAP_WORDS..(k + 1) * SNAP_WORDS]))
            .collect();
        // Block sizes scaled to cover exactly values_seed.len() elements.
        let n = values_seed.len();
        let mut block_sizes: Vec<usize> = sizes_seed[..p].to_vec();
        let total: usize = block_sizes.iter().sum();
        if total == 0 { block_sizes[0] = n; } else {
            // Rescale by simple remainder assignment.
            let mut acc = 0;
            for (k, b) in block_sizes.iter_mut().enumerate() {
                let share = if k + 1 == p { n - acc } else { (*b * n / total.max(1)).min(n - acc) };
                *b = share;
                acc += share;
            }
        }
        prop_assert!(block_sizes.iter().sum::<usize>() == n);
        let ck = rebuild_checkpoint(&block_sizes, &snaps[..p], &values_seed, aux_count);
        let back = SessionCheckpoint::<f64>::from_bytes(&ck.to_bytes());
        prop_assert_eq!(back.n(), ck.n());
        prop_assert_eq!(back.num_procs(), ck.num_procs());
        prop_assert_eq!(back.partition().intervals(), ck.partition().intervals());
        assert_bits_eq(back.values(), ck.values());
        for ((an, a), (bn, b)) in back.aux().iter().zip(ck.aux()) {
            prop_assert_eq!(an, bn, "aux field name changed across the wire");
            assert_bits_eq(a, b);
        }
        for (a, b) in back.monitors().iter().zip(ck.monitors()) {
            prop_assert_eq!(a.per_item.map(f64::to_bits), b.per_item.map(f64::to_bits));
            prop_assert_eq!(a.rebuild_cost.map(f64::to_bits), b.rebuild_cost.map(f64::to_bits));
            prop_assert_eq!(a.remap_cost.map(f64::to_bits), b.remap_cost.map(f64::to_bits));
            prop_assert_eq!(a.movement.map(f64::to_bits), b.movement.map(f64::to_bits));
            prop_assert_eq!(a.movement_obs, b.movement_obs);
        }
    }
}

/// Builds a `SessionCheckpoint` from parts via a collective run — the
/// only public constructor — then swaps in the given state through the
/// byte format (which `from_bytes` fully validates).
fn rebuild_checkpoint(
    block_sizes: &[usize],
    snaps: &[MonitorSnapshot],
    values: &[f64],
    aux_count: usize,
) -> SessionCheckpoint<f64> {
    // Assemble the blob by hand, following the documented v2 wire format
    // (name-keyed field records).
    let p = block_sizes.len();
    let n = values.len();
    let write_name = |name: &str, out: &mut Vec<u8>| {
        out.extend_from_slice(&(name.len() as u32).to_le_bytes());
        out.extend_from_slice(name.as_bytes());
    };
    let mut out = Vec::new();
    out.extend_from_slice(b"STCK");
    out.extend_from_slice(&2u32.to_le_bytes());
    out.extend_from_slice(&(f64::SIZE_BYTES as u32).to_le_bytes());
    out.extend_from_slice(&(n as u64).to_le_bytes());
    out.extend_from_slice(&(p as u32).to_le_bytes());
    out.extend_from_slice(&(aux_count as u32).to_le_bytes());
    write_name("values", &mut out);
    for &s in block_sizes {
        out.extend_from_slice(&(s as u64).to_le_bytes());
    }
    for slot in 0..p {
        out.extend_from_slice(&(slot as u32).to_le_bytes());
    }
    for snap in snaps {
        let flags = u8::from(snap.per_item.is_some())
            | u8::from(snap.rebuild_cost.is_some()) << 1
            | u8::from(snap.remap_cost.is_some()) << 2;
        out.push(flags);
        out.extend_from_slice(&snap.per_item.unwrap_or(0.0).to_le_bytes());
        out.extend_from_slice(&snap.rebuild_cost.unwrap_or(0.0).to_le_bytes());
        out.extend_from_slice(&snap.remap_cost.unwrap_or(0.0).to_le_bytes());
        for m in &snap.movement {
            out.extend_from_slice(&m.to_le_bytes());
        }
        out.extend_from_slice(&snap.movement_obs.to_le_bytes());
    }
    f64::pack_into(values, &mut out);
    for k in 0..aux_count {
        write_name(&format!("aux{k}"), &mut out);
        let aux: Vec<f64> = values.iter().map(|v| v * (k as f64 + 2.0)).collect();
        f64::pack_into(&aux, &mut out);
    }
    SessionCheckpoint::from_bytes(&out)
}

/// Collective checkpoints round-trip across every rank-count pair:
/// a checkpoint taken at width `p` restores onto width `q` with values
/// and aux arrays landing bitwise-identically in global order — same
/// width additionally preserves the partition intervals and monitor
/// estimates.
#[test]
fn collective_checkpoint_restores_across_widths() {
    let raw = stance::locality::meshgen::triangulated_grid(12, 10, 0.4, 3);
    let mesh = stance::prepare_mesh(&raw, OrderingMethod::Rcb).0;
    let config = StanceConfig::free();
    for p in WIDTHS {
        let ckpt = collective_checkpoint(p, &mesh, 7);
        assert_eq!(ckpt.num_procs(), p);
        for q in WIDTHS {
            let m = mesh.clone();
            let blob = ckpt.to_bytes();
            let restored =
                Cluster::new(ClusterSpec::uniform(q).with_network(NetworkSpec::zero_cost()))
                    .run(|env| {
                        let ck = SessionCheckpoint::<f64>::from_bytes(&blob);
                        let (s, aux) =
                            AdaptiveSession::restore(env, &m, RelaxationKernel, &ck, &config);
                        if q == ck.num_procs() {
                            assert_eq!(
                                s.per_item_estimate().map(f64::to_bits),
                                ck.monitors()[env.rank()].per_item.map(f64::to_bits),
                                "same-width restore must reinstall the monitor estimate"
                            );
                        }
                        (
                            s.local_values().to_vec(),
                            aux[0].clone(),
                            s.partition().clone(),
                        )
                    })
                    .into_results();
            // Reassembled global order must match the checkpoint bitwise.
            let partition = restored[0].2.clone();
            if q == p {
                assert_eq!(
                    partition,
                    ckpt.partition(),
                    "same-width partition must survive"
                );
            }
            let mut values = vec![0.0; ckpt.n()];
            let mut aux = vec![0.0; ckpt.n()];
            for (rank, (v, a, _)) in restored.iter().enumerate() {
                let iv = partition.interval_of(rank);
                values[iv.start..iv.end].copy_from_slice(v);
                aux[iv.start..iv.end].copy_from_slice(a);
            }
            assert_bits_eq(&values, ckpt.values());
            assert_bits_eq(&aux, &ckpt.aux()[0].1);
        }
    }
}

/// Multi-field elements (`[f64; 3]`) round-trip bitwise too — the codec
/// is the `Element` byte codec, so any `Element` works unchanged.
#[test]
fn multi_field_checkpoint_round_trips() {
    let raw = stance::locality::meshgen::triangulated_grid(10, 8, 0.3, 5);
    let mesh = stance::prepare_mesh(&raw, OrderingMethod::Rcb).0;
    let config = StanceConfig::free();
    let spec = ClusterSpec::uniform(4).with_network(NetworkSpec::zero_cost());
    let blobs = Cluster::new(spec)
        .run(|env| {
            let mut s = AdaptiveSession::setup(
                env,
                &mesh,
                RelaxationKernel,
                |g| [g as f64, -(g as f64), 0.5 * g as f64],
                &config,
            );
            s.run_block(env, 5);
            s.checkpoint(env, &[]).to_bytes()
        })
        .into_results();
    assert!(blobs.windows(2).all(|w| w[0] == w[1]));
    let ckpt = SessionCheckpoint::<[f64; 3]>::from_bytes(&blobs[0]);
    let back = SessionCheckpoint::<[f64; 3]>::from_bytes(&ckpt.to_bytes());
    assert_eq!(back, ckpt);
    for (a, b) in back.values().iter().zip(ckpt.values()) {
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}
