//! Tests for the trait-based application API: `Element` pack/unpack
//! round-trips through the simulator's `Payload`, and full adaptive runs
//! (load balancing, forced remaps) with non-`f64` elements and custom
//! kernels.

use std::collections::BTreeSet;

use proptest::prelude::*;
use stance::balance::BalancerConfig;
use stance::executor::sequential_relaxation;
use stance::inspector::{build_schedule_symmetric, LocalAdjacency, TranslatedAdjacency};
use stance::onedim::RedistCostModel;
use stance::prelude::*;
use stance::reassemble;

// ---------------------------------------------------------------------------
// Element pack/unpack round-trips through Payload.
// ---------------------------------------------------------------------------

/// Bit patterns covering negative zero, subnormals, and infinities
/// (NaN is excluded at the use sites because the tests compare with `==`).
fn f64_bits() -> impl Strategy<Value = u64> {
    0u64..u64::MAX
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn f64_elements_round_trip(bits in proptest::collection::vec(0u64..u64::MAX, 0..40)) {
        let values: Vec<f64> = bits
            .into_iter()
            .map(f64::from_bits)
            .filter(|v| !v.is_nan())
            .collect();
        let payload = f64::pack(&values);
        prop_assert_eq!(payload.size_bytes(), values.len() * 8);
        let back = f64::unpack(payload);
        prop_assert_eq!(&back, &values);
        // Bitwise, not just numerically, identical.
        for (a, b) in back.iter().zip(&values) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn pair_elements_round_trip(bits in proptest::collection::vec((0u64..u64::MAX, 0u64..u64::MAX), 0..30)) {
        let values: Vec<[f64; 2]> = bits
            .into_iter()
            .map(|(a, b)| [f64::from_bits(a), f64::from_bits(b)])
            .filter(|v| !v[0].is_nan() && !v[1].is_nan())
            .collect();
        let payload = <[f64; 2]>::pack(&values);
        prop_assert_eq!(payload.size_bytes(), values.len() * 16);
        prop_assert_eq!(<[f64; 2]>::unpack(payload), values);
    }

    #[test]
    fn integer_elements_round_trip(
        small in proptest::collection::vec(0u32..u32::MAX, 0..50),
        wide in proptest::collection::vec(0u64..u64::MAX, 0..50),
    ) {
        prop_assert_eq!(u32::unpack(u32::pack(&small)), small);
        prop_assert_eq!(u64::unpack(u64::pack(&wide)), wide);
    }

    #[test]
    fn f32_elements_round_trip(bits in proptest::collection::vec(0u32..u32::MAX, 0..50)) {
        let values: Vec<f32> = bits
            .into_iter()
            .map(f32::from_bits)
            .filter(|v| !v.is_nan())
            .collect();
        prop_assert_eq!(f32::unpack(f32::pack(&values)), values);
    }

    /// Elements survive an actual trip through the simulated network, not
    /// just through pack/unpack in isolation.
    #[test]
    fn elements_survive_the_wire(seed_bits in f64_bits()) {
        let seed = f64::from_bits(seed_bits);
        let seed = if seed.is_nan() { 0.5 } else { seed };
        let spec = ClusterSpec::uniform(2).with_network(NetworkSpec::zero_cost());
        let sent: Vec<[f64; 3]> = (0..5)
            .map(|i| [seed, seed * i as f64, i as f64])
            .collect();
        let sent2 = sent.clone();
        Cluster::new(spec).run(move |env| {
            if env.rank() == 0 {
                env.send(1, Tag(7), <[f64; 3]>::pack(&sent2));
            } else {
                let got = <[f64; 3]>::unpack(env.recv(0, Tag(7)));
                assert_eq!(got, sent2);
            }
        });
    }
}

// ---------------------------------------------------------------------------
// Multi-field adaptive runs: a [f64; 2] workload must survive forced remaps
// bitwise (mirrors session.rs's adaptive_run_with_remap_matches_sequential).
// ---------------------------------------------------------------------------

fn init_pair(g: usize) -> [f64; 2] {
    [(g as f64).cos() * 5.0, (g as f64 * 0.11).sin() - 2.0]
}

fn mesh() -> Graph {
    let raw = stance::locality::meshgen::triangulated_grid(12, 10, 0.4, 3);
    stance::prepare_mesh(&raw, OrderingMethod::Rcb).0
}

/// A balancer scaled to the tiny test mesh (see session.rs).
fn test_balancer() -> BalancerConfig {
    BalancerConfig {
        redist_model: RedistCostModel {
            per_message: 1.0e-4,
            per_element: 1.0e-7,
        },
        rebuild_cost_hint: 1.0e-4,
        profitability_margin: 1.0,
        use_mcr: true,
        mode: ControllerMode::Centralized,
    }
}

#[test]
fn two_field_kernel_survives_forced_remap_bitwise() {
    let m = mesh();
    let n = m.num_vertices();
    let iters = 40;
    let mut expected: Vec<[f64; 2]> = (0..n).map(init_pair).collect();
    sequential_relaxation(&m, &mut expected, iters);

    let m2 = m.clone();
    let mut config = StanceConfig::default().with_check_interval(10);
    config.balancer = test_balancer();
    let spec = ClusterSpec::uniform(3)
        .with_network(NetworkSpec::zero_cost())
        .with_load(0, LoadTimeline::constant(1.0 / 3.0));
    let report = Cluster::new(spec).run(move |env| {
        let mut s = AdaptiveSession::setup(env, &m2, RelaxationKernel, init_pair, &config);
        let rep = s.run_adaptive(env, iters);
        (rep, s.local_values().to_vec(), s.partition().clone())
    });
    let results: Vec<_> = report.into_results();
    let (rep0, _, final_part) = &results[0];
    assert!(
        rep0.remaps >= 1,
        "competing load should force a remap: {rep0:?}"
    );
    let blocks: Vec<Vec<[f64; 2]>> = results.iter().map(|(_, v, _)| v.clone()).collect();
    let got = reassemble(final_part, blocks);
    assert_eq!(got, expected, "multi-field adaptive run diverged bitwise");
}

#[test]
fn two_field_run_matches_componentwise_scalar_runs() {
    // The [f64; 2] session must agree bitwise with two independent f64
    // sessions, component by component — the element abstraction cannot
    // perturb arithmetic.
    let m = mesh();
    let n = m.num_vertices();
    let iters = 25;
    let config = StanceConfig::free();

    let run_scalar = |field: usize| {
        let m = m.clone();
        let config = config.clone();
        let spec = ClusterSpec::uniform(3).with_network(NetworkSpec::zero_cost());
        let report = Cluster::new(spec).run(move |env| {
            let mut s =
                AdaptiveSession::setup(env, &m, RelaxationKernel, |g| init_pair(g)[field], &config);
            s.run_adaptive(env, iters);
            (s.local_values().to_vec(), s.partition().clone())
        });
        let results: Vec<_> = report.into_results();
        let part = results[0].1.clone();
        reassemble(&part, results.into_iter().map(|(v, _)| v).collect())
    };
    let first = run_scalar(0);
    let second = run_scalar(1);

    let m2 = m.clone();
    let config2 = config.clone();
    let spec = ClusterSpec::uniform(3).with_network(NetworkSpec::zero_cost());
    let report = Cluster::new(spec).run(move |env| {
        let mut s = AdaptiveSession::setup(env, &m2, RelaxationKernel, init_pair, &config2);
        s.run_adaptive(env, iters);
        (s.local_values().to_vec(), s.partition().clone())
    });
    let results: Vec<_> = report.into_results();
    let part = results[0].1.clone();
    let pairs = reassemble(&part, results.into_iter().map(|(v, _)| v).collect());

    assert_eq!(pairs.len(), n);
    for (i, pair) in pairs.iter().enumerate() {
        assert_eq!(pair[0].to_bits(), first[i].to_bits(), "field 0, vertex {i}");
        assert_eq!(
            pair[1].to_bits(),
            second[i].to_bits(),
            "field 1, vertex {i}"
        );
    }
}

// ---------------------------------------------------------------------------
// A from-scratch user kernel: the "~30 lines of user code" claim, as a test.
// ---------------------------------------------------------------------------

/// Damped Jacobi: out = (1 − ω) · y[i] + ω · avg(neighbors).
struct DampedJacobi {
    omega: f64,
}

impl<E: Field> Kernel<E> for DampedJacobi {
    fn sweep(&self, tadj: &TranslatedAdjacency, combined: &[E], out: &mut [E]) {
        for (l, o) in out.iter_mut().enumerate() {
            let nbrs = tadj.neighbors_of(l);
            if nbrs.is_empty() {
                *o = combined[l];
                continue;
            }
            let mut t = E::zero();
            for &s in nbrs {
                t = t.add(combined[s as usize]);
            }
            let avg = t.div(nbrs.len() as f64);
            *o = combined[l]
                .scale(1.0 - self.omega)
                .add(avg.scale(self.omega));
        }
    }
}

/// The matching sequential reference.
fn sequential_damped_jacobi(g: &Graph, y: &mut [f64], omega: f64, iters: usize) {
    let n = g.num_vertices();
    let mut t = vec![0.0; n];
    for _ in 0..iters {
        for (i, ti) in t.iter_mut().enumerate() {
            let nbrs = g.neighbors(i);
            if nbrs.is_empty() {
                *ti = y[i];
                continue;
            }
            let mut acc = 0.0;
            for &j in nbrs {
                acc += y[j as usize];
            }
            let avg = acc / nbrs.len() as f64;
            *ti = y[i] * (1.0 - omega) + avg * omega;
        }
        y.copy_from_slice(&t);
    }
}

#[test]
fn user_kernel_runs_adaptively_and_matches_sequential() {
    let m = mesh();
    let n = m.num_vertices();
    let iters = 30;
    let omega = 0.7;
    let init = |g: usize| (g as f64 * 0.05).sin() * 3.0;
    let mut expected: Vec<f64> = (0..n).map(init).collect();
    sequential_damped_jacobi(&m, &mut expected, omega, iters);

    let mut config = StanceConfig::default().with_check_interval(10);
    config.balancer = test_balancer();
    let m2 = m.clone();
    let spec = ClusterSpec::uniform(3)
        .with_network(NetworkSpec::zero_cost())
        .with_load(1, LoadTimeline::constant(0.4));
    let report = Cluster::new(spec).run(move |env| {
        let mut s = AdaptiveSession::setup(env, &m2, DampedJacobi { omega }, init, &config);
        let rep = s.run_adaptive(env, iters);
        (rep, s.local_values().to_vec(), s.partition().clone())
    });
    let results: Vec<_> = report.into_results();
    assert!(
        results[0].0.remaps >= 1,
        "loaded rank 1 should trigger a remap: {:?}",
        results[0].0
    );
    let part = results[0].2.clone();
    let got = reassemble(&part, results.into_iter().map(|(_, v, _)| v).collect());
    assert_eq!(got, expected, "user kernel diverged from its reference");
}

// ---------------------------------------------------------------------------
// Chunked sweeps: `sweep_chunked` must be bitwise identical to the frozen
// per-vertex scalar formulation, for arbitrary graphs, arbitrary sweep-range
// fragmentation, and arbitrary payload bits — NaN and subnormal included.
// The built-ins' `sweep`/`sweep_range` now *delegate* to `sweep_chunked`,
// so the reference loops below are written out longhand (the pre-blocking
// formulation), not routed through the trait.
// ---------------------------------------------------------------------------

/// The frozen scalar relaxation sweep: `out[l] = Σ combined[s] / deg(l)`
/// accumulated in CSR order from `0.0`, isolated vertices copied through.
fn relaxation_reference(tadj: &TranslatedAdjacency, combined: &[f64], out: &mut [f64]) {
    for (l, o) in out.iter_mut().enumerate() {
        let nbrs = tadj.neighbors_of(l);
        if nbrs.is_empty() {
            *o = combined[l];
            continue;
        }
        let mut t = 0.0f64;
        for &s in nbrs {
            t += combined[s as usize];
        }
        *o = t / nbrs.len() as f64;
    }
}

/// The frozen scalar shifted-Laplacian sweep:
/// `out[l] = (deg(l) + shift) · combined[l] − Σ combined[s]`, subtractions
/// in CSR order.
fn laplacian_reference(tadj: &TranslatedAdjacency, combined: &[f64], out: &mut [f64], shift: f64) {
    for (l, o) in out.iter_mut().enumerate() {
        let nbrs = tadj.neighbors_of(l);
        let mut acc = combined[l] * (nbrs.len() as f64 + shift);
        for &s in nbrs {
            acc -= combined[s as usize];
        }
        *o = acc;
    }
}

/// Single-rank translated adjacency for an arbitrary edge list (the whole
/// graph is owned, so the combined buffer is exactly the value array).
fn single_rank_tadj(n: usize, raw_edges: &[(usize, usize)]) -> TranslatedAdjacency {
    let edges: Vec<(u32, u32)> = raw_edges
        .iter()
        .filter(|&&(a, b)| a != b)
        .map(|&(a, b)| (a.min(b) as u32, a.max(b) as u32))
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    let g = Graph::from_edges(n, &edges, vec![[0.0; 3]; n], 2);
    let part = BlockPartition::uniform(n, 1);
    let adj = LocalAdjacency::extract(&g, &part, 0);
    let (sched, _) = build_schedule_symmetric(&part, &adj, 0, ScheduleStrategy::Sort2);
    sched.translate_adjacency(&adj)
}

/// Split `0..n` at the given (arbitrary, possibly duplicated) cut points
/// into consecutive fragments — the run fragmentation a split-phase sweep
/// or a team lane hands `sweep_chunked`.
fn fragments(n: usize, cuts: &[usize]) -> Vec<std::ops::Range<usize>> {
    let mut points: Vec<usize> = cuts.iter().map(|&c| c % (n + 1)).collect();
    points.push(0);
    points.push(n);
    points.sort_unstable();
    points.dedup();
    points.windows(2).map(|w| w[0]..w[1]).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `RelaxationKernel::sweep_chunked`, driven over an arbitrary
    /// fragmentation of the vertex range, reproduces the frozen scalar
    /// loop bit for bit — every bit pattern allowed, NaNs compared as bits.
    #[test]
    fn chunked_relaxation_matches_scalar_reference_bitwise(
        n in 2usize..560,
        raw_edges in proptest::collection::vec((0usize..560, 0usize..560), 0..1200),
        value_bits in proptest::collection::vec(0u64..u64::MAX, 560),
        cuts in proptest::collection::vec(0usize..560, 0..10),
    ) {
        let raw_edges: Vec<(usize, usize)> =
            raw_edges.into_iter().map(|(a, b)| (a % n, b % n)).collect();
        let tadj = single_rank_tadj(n, &raw_edges);
        let combined: Vec<f64> = value_bits[..n].iter().map(|&b| f64::from_bits(b)).collect();

        let mut expected = vec![0.0f64; n];
        relaxation_reference(&tadj, &combined, &mut expected);

        let mut got = vec![f64::from_bits(0x7ff8_dead_beef_0000); n];
        for r in fragments(n, &cuts) {
            Kernel::<f64>::sweep_chunked(&RelaxationKernel, &tadj, &combined, &mut got, r);
        }
        for (i, (g, e)) in got.iter().zip(&expected).enumerate() {
            prop_assert_eq!(
                g.to_bits(),
                e.to_bits(),
                "relaxation diverged at vertex {} ({:e} vs {:e})", i, g, e
            );
        }
    }

    /// Same contract for `LaplacianKernel::sweep_chunked`, including the
    /// diagonal shift (itself an arbitrary finite payload).
    #[test]
    fn chunked_laplacian_matches_scalar_reference_bitwise(
        n in 2usize..560,
        raw_edges in proptest::collection::vec((0usize..560, 0usize..560), 0..1200),
        value_bits in proptest::collection::vec(0u64..u64::MAX, 560),
        cuts in proptest::collection::vec(0usize..560, 0..10),
        shift in -1.0e3f64..1.0e3,
    ) {
        let raw_edges: Vec<(usize, usize)> =
            raw_edges.into_iter().map(|(a, b)| (a % n, b % n)).collect();
        let tadj = single_rank_tadj(n, &raw_edges);
        let combined: Vec<f64> = value_bits[..n].iter().map(|&b| f64::from_bits(b)).collect();

        let mut expected = vec![0.0f64; n];
        laplacian_reference(&tadj, &combined, &mut expected, shift);

        let mut got = vec![f64::from_bits(0x7ff8_dead_beef_0000); n];
        let kernel = LaplacianKernel { shift };
        for r in fragments(n, &cuts) {
            Kernel::<f64>::sweep_chunked(&kernel, &tadj, &combined, &mut got, r);
        }
        for (i, (g, e)) in got.iter().zip(&expected).enumerate() {
            prop_assert_eq!(
                g.to_bits(),
                e.to_bits(),
                "laplacian diverged at vertex {} ({:e} vs {:e})", i, g, e
            );
        }
    }
}
