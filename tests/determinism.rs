//! Determinism guarantees: under the point-to-point network model, repeated
//! runs of the full pipeline produce bit-identical results *and* clocks,
//! regardless of host thread scheduling.

use stance::prelude::*;

fn full_run(seed: u64) -> (Vec<f64>, Vec<f64>, Vec<u64>) {
    // Thinning randomizes the edge structure per seed (grid jitter alone
    // would only move coordinates, which spectral ordering ignores).
    let grid = stance::locality::meshgen::triangulated_grid(15, 13, 0.4, seed);
    let raw = stance::locality::meshgen::thin_to_edges(&grid, grid.num_vertices() * 3 / 2, seed);
    let (mesh, _) = stance::prepare_mesh(&raw, OrderingMethod::Spectral);
    let config = StanceConfig::default().with_check_interval(5);
    let spec = ClusterSpec::uniform(4)
        .with_network(NetworkSpec::ethernet_10mbit())
        .with_load(1, LoadTimeline::competing_load(0.05, 1.0, 2));
    let report = Cluster::new(spec).run(|env| {
        let mut session =
            AdaptiveSession::setup(env, &mesh, RelaxationKernel, |g| (g as f64).sqrt(), &config);
        session.run_adaptive(env, 30);
        session.local_values().to_vec()
    });
    let clocks: Vec<f64> = report.ranks.iter().map(|r| r.clock.as_secs()).collect();
    let msgs: Vec<u64> = report.ranks.iter().map(|r| r.stats.messages_sent).collect();
    let values: Vec<f64> = report.into_results().into_iter().flatten().collect();
    (values, clocks, msgs)
}

#[test]
fn adaptive_pipeline_is_deterministic() {
    let a = full_run(3);
    let b = full_run(3);
    assert_eq!(a.0, b.0, "values must be bit-identical");
    assert_eq!(a.1, b.1, "virtual clocks must be bit-identical");
    assert_eq!(a.2, b.2, "message counts must be identical");
}

#[test]
fn different_seeds_differ() {
    let a = full_run(3);
    let b = full_run(4);
    assert_ne!(a.0, b.0, "different meshes should give different values");
}

#[test]
fn repeated_schedule_builds_identical() {
    use stance::inspector::{build_schedule_symmetric, LocalAdjacency, ScheduleStrategy};
    let raw = stance::locality::meshgen::random_geometric(300, 0.08, 17);
    let (mesh, _) = stance::prepare_mesh(&raw, OrderingMethod::Rcb);
    let part = BlockPartition::uniform(300, 5);
    for rank in 0..5 {
        let adj = LocalAdjacency::extract(&mesh, &part, rank);
        let (s1, w1) = build_schedule_symmetric(&part, &adj, rank, ScheduleStrategy::Sort1);
        let (s2, w2) = build_schedule_symmetric(&part, &adj, rank, ScheduleStrategy::Sort1);
        assert_eq!(s1, s2);
        assert_eq!(w1, w2);
    }
}

#[test]
fn mesh_generators_deterministic() {
    use stance::locality::meshgen;
    assert_eq!(
        meshgen::triangulated_grid(20, 20, 0.5, 9),
        meshgen::triangulated_grid(20, 20, 0.5, 9)
    );
    assert_eq!(
        meshgen::random_geometric(200, 0.1, 4),
        meshgen::random_geometric(200, 0.1, 4)
    );
    assert_eq!(
        meshgen::annulus_mesh(8, 24, 2),
        meshgen::annulus_mesh(8, 24, 2)
    );
}
