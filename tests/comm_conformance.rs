//! Backend-conformance suite for the [`Comm`] trait.
//!
//! Every test body lives in [`stance_repro::conformance`], written once,
//! generically over `C: Comm`, and instantiated here against **three**
//! backends — the virtual-time simulator (`stance_sim::Env` on a
//! zero-cost network), the native thread pool
//! (`stance_native::NativeComm`), and the process-per-rank TCP cluster
//! (`stance_tcp::TcpCluster`, where each body runs as a named worker
//! scenario in real OS processes over real sockets). A backend that
//! buffers, orders, or folds differently fails the same body everywhere.
//!
//! On every backend the body runs under [`CheckedComm`] and its recorded
//! traffic must analyze clean — for the TCP backend the traces are
//! recorded *inside the worker processes* and shipped back with each
//! rank's result.

use stance::prelude::*;
use stance_native::NativeCluster;
use stance_repro::conformance::{self as bodies, expect_protocol_clean};
use stance_tcp::TcpCluster;
use stance_verify::{CheckedComm, RankTrace};

/// Launches a generic body on the simulator backend (zero-cost network —
/// conformance is about data movement, not cost modelling), with every
/// point-to-point event recorded through [`CheckedComm`] and the traces
/// analyzed after the run.
fn run_sim(p: usize, body: impl Fn(&mut CheckedComm<'_, Env>) + Send + Sync) {
    let spec = ClusterSpec::uniform(p).with_network(NetworkSpec::zero_cost());
    let report = Cluster::new(spec).run(|env| {
        let mut trace = RankTrace::new(env.rank(), env.size());
        body(&mut CheckedComm::attach(env, &mut trace));
        trace
    });
    expect_protocol_clean("sim", &report.into_results());
}

/// Launches a generic body on the native thread-pool backend, checked
/// exactly like [`run_sim`].
fn run_native(
    p: usize,
    body: impl Fn(&mut CheckedComm<'_, stance_native::NativeComm>) + Send + Sync,
) {
    let report = NativeCluster::new(p).run(|comm| {
        let mut trace = RankTrace::new(comm.rank(), comm.size());
        body(&mut CheckedComm::attach(comm, &mut trace));
        trace
    });
    expect_protocol_clean("native", &report.into_results());
}

/// Launches a registered conformance scenario on the TCP process
/// backend: `p` worker processes over loopback sockets, each recording
/// its trace under `CheckedComm` and returning it as the rank result.
fn run_tcp(p: usize, scenario: &str) {
    let cluster = TcpCluster::new(p, env!("CARGO_BIN_EXE_tcp-rank-worker"));
    let traces: Vec<RankTrace> = cluster
        .run_scenario(scenario, &[])
        .into_results()
        .iter()
        .map(|bytes| stance_repro::scenarios::trace_from_result(bytes))
        .collect();
    expect_protocol_clean("tcp", &traces);
}

// The bodies are generic `fn` items, but the launchers want a closure
// callable at *every* wrapper lifetime (`for<'a> Fn(&mut
// CheckedComm<'a, _>)`), which a monomorphized fn item cannot provide —
// hence the `|c| bodies::f(c)` eta-expansion at each call site.
macro_rules! conformance_suite {
    ($backend:ident, $launch:expr) => {
        mod $backend {
            use super::*;

            #[test]
            fn send_recv_ordering() {
                ($launch)(3, |c| bodies::send_recv_ordering(c));
            }

            #[test]
            fn tag_isolation() {
                ($launch)(2, |c| bodies::tag_isolation(c));
            }

            #[test]
            fn barrier_rounds() {
                ($launch)(4, |c| bodies::barrier_rounds(c));
            }

            #[test]
            fn allreduce_ops() {
                ($launch)(4, |c| bodies::allreduce_ops(c));
            }

            #[test]
            fn exchange_ring() {
                ($launch)(5, |c| bodies::exchange_ring(c));
            }

            #[test]
            fn bcast_and_gather() {
                ($launch)(4, |c| bodies::bcast_and_gather(c));
            }

            #[test]
            fn irecv_posted_before_send() {
                ($launch)(3, |c| bodies::irecv_posted_before_send(c));
            }

            #[test]
            fn mixed_blocking_nonblocking_fifo() {
                ($launch)(2, |c| bodies::mixed_blocking_nonblocking_fifo(c));
            }

            #[test]
            fn outstanding_request_tag_isolation() {
                ($launch)(2, |c| bodies::outstanding_request_tag_isolation(c));
            }

            #[test]
            fn wait_after_peer_completion() {
                ($launch)(2, |c| bodies::wait_after_peer_completion(c));
            }

            #[test]
            fn post_and_recv_deadline() {
                ($launch)(2, |c| bodies::post_and_recv_deadline(c));
            }

            #[test]
            fn deadline_timeout_preserves_stream() {
                ($launch)(2, |c| bodies::deadline_timeout_preserves_stream(c));
            }

            #[test]
            fn barrier_deadline_releases() {
                ($launch)(3, |c| bodies::barrier_deadline_releases(c));
            }
        }
    };
}

conformance_suite!(sim_backend, run_sim);
conformance_suite!(native_backend, run_native);

// The TCP instantiation names scenarios instead of passing closures —
// the body runs in another process — so it gets its own expansion, with
// the same body names and rank counts as the in-process suites above.
macro_rules! tcp_conformance_suite {
    ($($name:ident => $p:expr),* $(,)?) => {
        mod tcp_backend {
            use super::*;
            $(
                #[test]
                fn $name() {
                    run_tcp($p, concat!("conformance:", stringify!($name)));
                }
            )*
        }
    };
}

tcp_conformance_suite!(
    send_recv_ordering => 3,
    tag_isolation => 2,
    barrier_rounds => 4,
    allreduce_ops => 4,
    exchange_ring => 5,
    bcast_and_gather => 4,
    irecv_posted_before_send => 3,
    mixed_blocking_nonblocking_fifo => 2,
    outstanding_request_tag_isolation => 2,
    wait_after_peer_completion => 2,
    post_and_recv_deadline => 2,
    deadline_timeout_preserves_stream => 2,
    barrier_deadline_releases => 3,
);
