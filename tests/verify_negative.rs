//! Negative paths of the SPMD-contract verifier: every defect kind the
//! analyzers can report is provoked here by a hand-built corruption, and
//! each must produce *its* diagnostic — right kind, right rank, and a
//! detail that names the offending tag, peer, interval or element, so a
//! user reading the panic report can find the bug without re-deriving
//! the analysis.
//!
//! The positive paths (clean runs on both backends, bitwise-identical
//! results under verification) live in `adaptive_scenarios.rs` and
//! `backend_equivalence.rs`; the session-level wiring in
//! `crates/core/src/session.rs`.

use stance::inspector::{build_schedule_symmetric, LocalAdjacency, ScheduleStrategy};
use stance::onedim::{BlockPartition, Interval, RedistributionPlan};
use stance::prelude::*;
use stance::verify::{
    analyze_traces, audit_redistribution, audit_schedules, audit_translation, check_deadlock,
    expect_clean, CommOp, Diagnostic, DiagnosticKind, PayloadShape, RankTrace, ScheduleSummary,
    TraceEvent,
};

// ---------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------

fn summary(
    rank: usize,
    interval: (usize, usize),
    n: usize,
    sends: Vec<(usize, Vec<u32>)>,
    recvs: Vec<(usize, Vec<u32>)>,
) -> ScheduleSummary {
    ScheduleSummary {
        rank,
        interval: Interval::new(interval.0, interval.1),
        index_space: n,
        sends,
        recvs,
    }
}

/// Three ranks over [0, 12), each exchanging its boundary element with
/// its neighbours — a clean baseline each corruption test perturbs.
fn clean_summaries() -> Vec<ScheduleSummary> {
    vec![
        summary(0, (0, 4), 12, vec![(1, vec![3])], vec![(1, vec![4])]),
        summary(
            1,
            (4, 8),
            12,
            vec![(0, vec![4]), (2, vec![7])],
            vec![(0, vec![3]), (2, vec![8])],
        ),
        summary(2, (8, 12), 12, vec![(1, vec![8])], vec![(1, vec![7])]),
    ]
}

fn find(diags: &[Diagnostic], kind: DiagnosticKind) -> &Diagnostic {
    diags
        .iter()
        .find(|d| d.kind == kind)
        .unwrap_or_else(|| panic!("no {kind:?} diagnostic in {diags:?}"))
}

fn shape(kind: u8, bytes: u32) -> PayloadShape {
    PayloadShape { kind, bytes }
}

fn send(dst: usize, tag: u32, bytes: u32) -> TraceEvent {
    TraceEvent::Send {
        dst,
        tag: Tag(tag),
        shape: shape(2, bytes),
        nonblocking: false,
    }
}

fn recv(src: usize, tag: u32, bytes: u32) -> TraceEvent {
    TraceEvent::Recv {
        src,
        tag: Tag(tag),
        shape: shape(2, bytes),
        via_wait: false,
    }
}

fn trace(rank: usize, size: usize, events: Vec<TraceEvent>) -> RankTrace {
    RankTrace { rank, size, events }
}

// ---------------------------------------------------------------------
// Static schedule audit
// ---------------------------------------------------------------------

#[test]
fn clean_baseline_audits_clean() {
    assert_eq!(audit_schedules(&clean_summaries()), Vec::new());
}

/// Kind 1: a rank's interval shrinks, leaving elements nobody owns.
#[test]
fn interval_gap_names_the_orphaned_range() {
    let mut set = clean_summaries();
    set[1].interval = Interval::new(6, 8);
    let d = {
        let diags = audit_schedules(&set);
        find(&diags, DiagnosticKind::IntervalGap).clone()
    };
    assert!(
        d.detail.contains("[4, 6)"),
        "detail must name the orphaned range: {}",
        d.detail
    );
}

/// Kind 2: a rank's interval grows into its neighbour's.
#[test]
fn interval_overlap_names_the_double_owner() {
    let mut set = clean_summaries();
    set[2].interval = Interval::new(6, 12);
    let diags = audit_schedules(&set);
    let d = find(&diags, DiagnosticKind::IntervalOverlap);
    assert_eq!(d.rank, 2);
    assert!(
        d.detail.contains("[6, 12)"),
        "detail must name the overlapping interval: {}",
        d.detail
    );
}

/// Kind 3: the sender's segment and the receiver's expectation disagree
/// in one element — the diagnostic names the position and both globals.
#[test]
fn send_recv_asymmetry_names_the_differing_element() {
    let mut set = clean_summaries();
    set[1].sends[1] = (2, vec![6]); // rank 2 expects global 7
    let diags = audit_schedules(&set);
    let d = find(&diags, DiagnosticKind::SendRecvAsymmetry);
    assert_eq!((d.rank, d.peer), (1, Some(2)));
    assert!(
        d.detail.contains('6') && d.detail.contains('7'),
        "detail must name both globals: {}",
        d.detail
    );
}

/// Kind 3b: a send with no matching receive at all (and the mirror-image
/// receive from a silent sender) are both asymmetries.
#[test]
fn missing_receive_and_missing_send_are_both_reported() {
    let mut set = clean_summaries();
    set[2].recvs.clear(); // rank 1 still sends to rank 2
    let diags = audit_schedules(&set);
    assert!(
        diags
            .iter()
            .any(|d| d.kind == DiagnosticKind::SendRecvAsymmetry
                && d.rank == 1
                && d.detail.contains("no matching receive")),
        "{diags:?}"
    );
    let mut set = clean_summaries();
    set[2].sends.clear(); // rank 1 still expects from rank 2
    let diags = audit_schedules(&set);
    assert!(
        diags
            .iter()
            .any(|d| d.kind == DiagnosticKind::SendRecvAsymmetry
                && d.rank == 1
                && d.detail.contains("sends nothing")),
        "{diags:?}"
    );
}

/// Kind 4: one ghost fetched from two different peers.
#[test]
fn double_owned_ghost_names_both_sources() {
    let mut set = clean_summaries();
    set[1].recvs[1] = (2, vec![3]); // global 3 already arrives from rank 0
    let diags = audit_schedules(&set);
    let d = find(&diags, DiagnosticKind::DoubleOwnedGhost);
    assert_eq!(d.rank, 1);
    assert!(
        d.detail.contains("ghost 3") && d.detail.contains("rank 0") && d.detail.contains("rank 2"),
        "detail must name the ghost and both sources: {}",
        d.detail
    );
}

/// Kind 5: a ghost requested from a rank that does not own it.
#[test]
fn ghost_from_non_owner_names_the_true_interval() {
    let mut set = clean_summaries();
    set[0].recvs[0] = (1, vec![9]); // rank 1 owns [4, 8), not 9
    let diags = audit_schedules(&set);
    let d = find(&diags, DiagnosticKind::GhostFromNonOwner);
    assert_eq!((d.rank, d.peer), (0, Some(1)));
    assert!(
        d.detail.contains("ghost 9") && d.detail.contains("[4, 8)"),
        "detail must name the ghost and the peer's interval: {}",
        d.detail
    );
}

/// Kind 6: the translated adjacency disagrees with a recomputation from
/// the raw references — here provoked by auditing a translation against
/// a *different* mesh's adjacency (same vertex count, different edges).
#[test]
fn classification_mismatch_names_the_vertex() {
    let mesh_a = stance::locality::meshgen::triangulated_grid(8, 8, 0.4, 1);
    let mesh_b = stance::locality::meshgen::triangulated_grid(4, 16, 0.4, 1);
    let part = BlockPartition::uniform(mesh_a.num_vertices(), 2);
    let adj_a = LocalAdjacency::extract(&mesh_a, &part, 0);
    let adj_b = LocalAdjacency::extract(&mesh_b, &part, 0);
    let (schedule, _) = build_schedule_symmetric(&part, &adj_a, 0, ScheduleStrategy::Sort2);
    let tadj = schedule.translate_adjacency(&adj_a);
    // The honest audit is clean …
    assert_eq!(audit_translation(&schedule, &adj_a, &tadj), Vec::new());
    // … the cross-mesh audit is not.
    let diags = audit_translation(&schedule, &adj_b, &tadj);
    let d = find(&diags, DiagnosticKind::ClassificationMismatch);
    assert_eq!(d.rank, 0);
    assert!(
        d.detail.contains("vertex") && d.detail.contains("[0, 32)"),
        "detail must name the vertex and the rank's interval: {}",
        d.detail
    );
}

/// Kind 7: a redistribution plan that does not match the partitions it
/// is audited against — moves ship data the source no longer owns and
/// the receives no longer tile the new intervals.
#[test]
fn redistribution_tile_errors_name_ranges_and_intervals() {
    let old = BlockPartition::from_sizes(&[6, 6]);
    let new = BlockPartition::from_sizes(&[2, 10]);
    let mid = BlockPartition::from_sizes(&[9, 3]);
    // The honest plan audits clean.
    assert_eq!(
        audit_redistribution(&old, &new, &RedistributionPlan::between(&old, &new)),
        Vec::new()
    );
    // A plan computed for different partitions does not.
    let stale = RedistributionPlan::between(&old, &mid);
    let diags = audit_redistribution(&old, &new, &stale);
    let d = find(&diags, DiagnosticKind::RedistributionTile);
    assert!(
        d.detail.contains('['),
        "detail must name an interval: {}",
        d.detail
    );
    // The tiling failure names the rank whose new interval is short.
    assert!(
        diags
            .iter()
            .any(|d| d.kind == DiagnosticKind::RedistributionTile
                && d.detail.contains("do not tile")),
        "{diags:?}"
    );
}

/// Kind 8: a cyclic blocking-receive order across three ranks — the
/// diagnostic spells out the full wait-for cycle.
#[test]
fn deadlock_cycle_names_the_full_chain() {
    let ops = vec![
        vec![CommOp::Recv { from: 2 }, CommOp::Send { to: 1 }],
        vec![CommOp::Recv { from: 0 }, CommOp::Send { to: 2 }],
        vec![CommOp::Recv { from: 1 }, CommOp::Send { to: 0 }],
    ];
    let diags = check_deadlock(&ops);
    assert_eq!(diags.len(), 1, "one cycle, one report: {diags:?}");
    let d = &diags[0];
    assert_eq!(d.kind, DiagnosticKind::DeadlockCycle);
    for r in 0..3 {
        assert!(
            d.detail.contains(&format!("rank {r}")),
            "cycle must name rank {r}: {}",
            d.detail
        );
    }
}

// ---------------------------------------------------------------------
// Dynamic protocol analysis
// ---------------------------------------------------------------------

/// Kind 9: a send no receiver ever drains.
#[test]
fn unmatched_send_names_stream_and_tag() {
    let traces = vec![trace(0, 2, vec![send(1, 7, 8)]), trace(1, 2, Vec::new())];
    let diags = analyze_traces(&traces);
    let d = find(&diags, DiagnosticKind::UnmatchedSend);
    assert_eq!((d.rank, d.peer, d.tag), (0, Some(1), Some(Tag(7))));
}

/// Kind 10: a receive whose message was never sent.
#[test]
fn phantom_recv_names_stream_and_tag() {
    let traces = vec![trace(0, 2, Vec::new()), trace(1, 2, vec![recv(0, 7, 8)])];
    let diags = analyze_traces(&traces);
    let d = find(&diags, DiagnosticKind::PhantomRecv);
    assert_eq!((d.rank, d.peer, d.tag), (1, Some(0), Some(Tag(7))));
}

/// Kind 11: matched send and receive whose payload shapes differ — the
/// diagnostic names both shapes.
#[test]
fn payload_mismatch_names_both_shapes() {
    let traces = vec![
        trace(0, 2, vec![send(1, 7, 8)]),
        trace(
            1,
            2,
            vec![TraceEvent::Recv {
                src: 0,
                tag: Tag(7),
                shape: shape(1, 16),
                via_wait: false,
            }],
        ),
    ];
    let diags = analyze_traces(&traces);
    let d = find(&diags, DiagnosticKind::PayloadMismatch);
    assert_eq!(d.tag, Some(Tag(7)));
    assert!(
        d.detail.contains("U32") && d.detail.contains("F64"),
        "detail must name both payload kinds: {}",
        d.detail
    );
    assert!(
        d.detail.contains('8') && d.detail.contains("16"),
        "detail must name both sizes: {}",
        d.detail
    );
}

/// Kind 12: an `isend` whose handle is never waited.
#[test]
fn leaked_send_request_names_the_stream() {
    let traces = vec![
        trace(
            0,
            2,
            vec![TraceEvent::Send {
                dst: 1,
                tag: Tag(5),
                shape: shape(2, 4),
                nonblocking: true,
            }],
        ),
        trace(1, 2, vec![recv(0, 5, 4)]),
    ];
    let diags = analyze_traces(&traces);
    let d = find(&diags, DiagnosticKind::LeakedSendRequest);
    assert_eq!((d.rank, d.peer, d.tag), (0, Some(1), Some(Tag(5))));
}

/// Kind 13: an `irecv` posted but never completed with `wait_recv`.
#[test]
fn leaked_recv_request_names_the_stream() {
    let traces = vec![
        trace(0, 2, Vec::new()),
        trace(
            1,
            2,
            vec![TraceEvent::RecvPosted {
                src: 0,
                tag: Tag(3),
            }],
        ),
    ];
    let diags = analyze_traces(&traces);
    let d = find(&diags, DiagnosticKind::LeakedRecvRequest);
    assert_eq!((d.rank, d.peer, d.tag), (1, Some(0), Some(Tag(3))));
}

/// Kind 14: ranks disagree on how many barriers the run performed.
#[test]
fn barrier_arity_mismatch_names_both_counts() {
    let traces = vec![
        trace(0, 2, vec![TraceEvent::Barrier, TraceEvent::Barrier]),
        trace(1, 2, vec![TraceEvent::Barrier]),
    ];
    let diags = analyze_traces(&traces);
    let d = find(&diags, DiagnosticKind::BarrierArity);
    assert!(
        d.detail.contains('2') && d.detail.contains('1'),
        "detail must name both barrier counts: {}",
        d.detail
    );
}

/// Kind 15: a message received in an earlier barrier epoch than it was
/// sent in — impossible under a correct barrier, so the trace itself is
/// inconsistent. (The reverse — received in a *later* epoch — is legal
/// buffering and must stay clean.)
#[test]
fn epoch_crossing_is_flagged_and_buffering_is_not() {
    // Legal: sent in epoch 0, drained in epoch 1.
    let buffered = vec![
        trace(0, 2, vec![send(1, 9, 4), TraceEvent::Barrier]),
        trace(1, 2, vec![TraceEvent::Barrier, recv(0, 9, 4)]),
    ];
    assert!(
        !analyze_traces(&buffered)
            .iter()
            .any(|d| d.kind == DiagnosticKind::EpochCrossing),
        "cross-epoch buffering is legal"
    );
    // Impossible: sent in epoch 1, received in epoch 0.
    let crossing = vec![
        trace(0, 2, vec![TraceEvent::Barrier, send(1, 9, 4)]),
        trace(1, 2, vec![recv(0, 9, 4), TraceEvent::Barrier]),
    ];
    let diags = analyze_traces(&crossing);
    let d = find(&diags, DiagnosticKind::EpochCrossing);
    assert_eq!(d.tag, Some(Tag(9)));
    assert!(
        d.detail.contains("epoch"),
        "detail must explain the epoch relation: {}",
        d.detail
    );
}

// ---------------------------------------------------------------------
// Failure presentation
// ---------------------------------------------------------------------

/// `expect_clean` — what the session calls on audit failure — panics
/// with the rendered report: context, count, and each diagnostic's
/// labelled line.
#[test]
fn expect_clean_panics_with_the_rendered_report() {
    let mut set = clean_summaries();
    set[1].interval = Interval::new(6, 8);
    let diags = audit_schedules(&set);
    let err = std::panic::catch_unwind(|| expect_clean("negative-path audit", &diags))
        .expect_err("corrupted schedules must panic");
    let msg = err
        .downcast_ref::<String>()
        .expect("panic payload is the report");
    assert!(msg.contains("negative-path audit"), "{msg}");
    assert!(msg.contains("interval-gap"), "{msg}");
    assert!(msg.contains("rank"), "{msg}");
}
