//! Cross-backend equivalence: the simulator, the native thread-pool
//! backend, and the TCP process backend must produce **bitwise-identical
//! numeric results** for the same SPMD program at every rank count.
//!
//! This is the payoff of the `Comm` abstraction's determinism contract:
//! data flows in rank order on every backend (messages, gathers,
//! reductions), so the only thing that differs is what a second of time
//! means — virtual clocks, shared-memory channels, or framed bytes on a
//! loopback socket. Two workloads are checked, each at 1, 2 and 4 ranks:
//!
//! * the quickstart relaxation (the paper's Fig. 8 loop, run through
//!   `AdaptiveSession` exactly as `examples/quickstart.rs` does);
//! * a conjugate-gradient solve (the `cg_solver` example's iteration,
//!   driven by `LoopRunner` + rank-order `allreduce_f64` dot products —
//!   the numerically touchiest path, since CG compounds every rounding
//!   decision across iterations).
//!
//! Both are also compared against the sequential reference, so
//! "identical" can never mean "identically wrong". The bodies live in
//! [`stance_repro::scenarios`] — one copy for the in-process launchers
//! here and for the worker processes behind the TCP legs.
//!
//! Each workload additionally runs with the **split-phase gather**
//! (`overlap = true`) and with **worker teams** at sizes 2 and 4 (the
//! in-process backends): posting the ghost exchange and sweeping interior
//! vertices while bytes are in flight, or splitting a rank's sweeps
//! across a team of threads, must be bitwise identical to the plain run.
//!
//! Both workloads run **fully verified**: sessions enable
//! `StanceConfig::with_verification(true)`, the hand-driven CG wraps its
//! backend in [`CheckedComm`](stance_verify::CheckedComm) directly, and
//! every run's traces must analyze clean — including traces recorded
//! inside TCP worker processes and shipped back as bytes.

use stance::executor::sequential_relaxation;
use stance::prelude::*;
use stance_native::NativeCluster;
use stance_repro::scenarios::{bits, cg_body, cg_problem, equiv_init, equiv_mesh, relaxation_body};
use stance_tcp::codec::Wire;
use stance_tcp::TcpCluster;
use stance_verify::{analyze_traces, RankTrace};

// ---------------------------------------------------------------------
// Workload 1: quickstart relaxation through the session API.
// ---------------------------------------------------------------------

fn relaxation_on_sim(mesh: &Graph, p: usize, iters: usize, overlap: bool, team: usize) -> Vec<f64> {
    let spec = ClusterSpec::uniform(p).with_network(NetworkSpec::zero_cost());
    let report = Cluster::new(spec).run(|env| relaxation_body(env, mesh, iters, overlap, team));
    let results: Vec<_> = report.into_results();
    let partition = results[0].1.clone();
    stance::reassemble(&partition, results.into_iter().map(|(v, _)| v).collect())
}

fn relaxation_on_native(
    mesh: &Graph,
    p: usize,
    iters: usize,
    overlap: bool,
    team: usize,
) -> Vec<f64> {
    let report =
        NativeCluster::new(p).run(|comm| relaxation_body(comm, mesh, iters, overlap, team));
    let results: Vec<_> = report.into_results();
    let partition = results[0].1.clone();
    stance::reassemble(&partition, results.into_iter().map(|(v, _)| v).collect())
}

/// The same relaxation on `p` OS processes over loopback TCP; each
/// worker returns `(values, block_sizes)` and the partition is
/// reconstructed parent-side for reassembly.
fn relaxation_on_tcp(p: usize, iters: usize, overlap: bool, team: usize) -> Vec<f64> {
    let cluster = TcpCluster::new(p, env!("CARGO_BIN_EXE_tcp-rank-worker"));
    let args = (iters, overlap, team).to_wire();
    let results = cluster.run_scenario("equiv_relax", &args).into_results();
    let decoded: Vec<(Vec<f64>, Vec<usize>)> = results
        .iter()
        .map(|bytes| <(Vec<f64>, Vec<usize>)>::from_wire(bytes))
        .collect();
    let partition = BlockPartition::from_sizes(&decoded[0].1);
    stance::reassemble(&partition, decoded.into_iter().map(|(v, _)| v).collect())
}

#[test]
fn relaxation_bitwise_identical_across_backends_and_paths() {
    let m = equiv_mesh();
    let iters = 25;
    let mut reference: Vec<f64> = (0..m.num_vertices()).map(equiv_init).collect();
    sequential_relaxation(&m, &mut reference, iters);

    for p in [1usize, 2, 4] {
        let sim = relaxation_on_sim(&m, p, iters, false, 1);
        let native = relaxation_on_native(&m, p, iters, false, 1);
        assert_eq!(sim, reference, "sim diverged from sequential at p = {p}");
        assert_eq!(
            bits(&sim),
            bits(&native),
            "backends disagree bitwise at p = {p}"
        );
        // The split-phase gather is numerically free: bitwise identical to
        // the synchronous path on both backends.
        let sim_split = relaxation_on_sim(&m, p, iters, true, 1);
        let native_split = relaxation_on_native(&m, p, iters, true, 1);
        assert_eq!(
            bits(&sim),
            bits(&sim_split),
            "sim split-phase diverged from synchronous at p = {p}"
        );
        assert_eq!(
            bits(&native),
            bits(&native_split),
            "native split-phase diverged from synchronous at p = {p}"
        );
    }
}

/// The process backend closes the loop: values crossing real sockets as
/// framed bytes must land bitwise identical to the simulator's, at every
/// rank count and with both gather flavours.
#[test]
fn relaxation_bitwise_identical_on_tcp_processes() {
    let m = equiv_mesh();
    let iters = 25;
    for p in [1usize, 2, 4] {
        let sim = relaxation_on_sim(&m, p, iters, false, 1);
        for overlap in [false, true] {
            let tcp = relaxation_on_tcp(p, iters, overlap, 1);
            assert_eq!(
                bits(&sim),
                bits(&tcp),
                "tcp diverged from sim at p = {p}, overlap = {overlap}"
            );
        }
    }
}

/// Worker teams are numerically free: team sizes 2 and 4 must match the
/// single-lane (T = 1) run bitwise on both backends, with both gather
/// flavours, at every rank count — and the protocol traces (the session
/// runs fully verified) must stay clean.
#[test]
fn relaxation_bitwise_identical_across_team_sizes() {
    let m = equiv_mesh();
    let iters = 25;
    for p in [1usize, 2, 4] {
        let sim_serial = relaxation_on_sim(&m, p, iters, false, 1);
        let native_serial = relaxation_on_native(&m, p, iters, false, 1);
        for team in [2usize, 4] {
            for overlap in [false, true] {
                let sim = relaxation_on_sim(&m, p, iters, overlap, team);
                assert_eq!(
                    bits(&sim_serial),
                    bits(&sim),
                    "sim team = {team} diverged from T = 1 at p = {p}, overlap = {overlap}"
                );
                let native = relaxation_on_native(&m, p, iters, overlap, team);
                assert_eq!(
                    bits(&native_serial),
                    bits(&native),
                    "native team = {team} diverged from T = 1 at p = {p}, overlap = {overlap}"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Workload 2: conjugate gradient (the cg_solver example's iteration).
// ---------------------------------------------------------------------

#[test]
fn cg_solver_bitwise_identical_across_backends() {
    let (m, b, x_star, shift) = cg_problem();
    let n = m.num_vertices();

    for p in [1usize, 2, 4] {
        let m2 = &m;
        let b2 = &b;
        let part = BlockPartition::uniform(n, p);
        let check = |results: Vec<(Vec<f64>, RankTrace)>| {
            let (blocks, traces): (Vec<_>, Vec<_>) = results.into_iter().unzip();
            let diags = analyze_traces(&traces);
            assert!(diags.is_empty(), "CG protocol diagnostics: {diags:?}");
            stance::reassemble(&part, blocks)
        };
        let run_sim = |overlap: bool, team: usize| {
            let spec = ClusterSpec::uniform(p).with_network(NetworkSpec::zero_cost());
            check(
                Cluster::new(spec)
                    .run(|env| cg_body(env, m2, b2, shift, 120, overlap, team))
                    .into_results(),
            )
        };
        let run_native = |overlap: bool, team: usize| {
            check(
                NativeCluster::new(p)
                    .run(|comm| cg_body(comm, m2, b2, shift, 120, overlap, team))
                    .into_results(),
            )
        };
        let sim = run_sim(false, 1);
        let native = run_native(false, 1);
        assert_eq!(
            bits(&sim),
            bits(&native),
            "CG backends disagree bitwise at p = {p}"
        );
        // Split-phase matvec inside CG — the touchiest consumer, since CG
        // compounds every rounding decision — must not change one bit.
        assert_eq!(
            bits(&sim),
            bits(&run_sim(true, 1)),
            "sim split-phase CG diverged at p = {p}"
        );
        assert_eq!(
            bits(&native),
            bits(&run_native(true, 1)),
            "native split-phase CG diverged at p = {p}"
        );
        // Neither may a worker team: the matvec splits across lanes but
        // commits in fixed order, so 120 compounding CG iterations stay
        // bitwise identical at T = 2 and 4 on both backends and both
        // gather flavours.
        for team in [2usize, 4] {
            for overlap in [false, true] {
                assert_eq!(
                    bits(&sim),
                    bits(&run_sim(overlap, team)),
                    "sim team = {team} CG diverged at p = {p}, overlap = {overlap}"
                );
                assert_eq!(
                    bits(&native),
                    bits(&run_native(overlap, team)),
                    "native team = {team} CG diverged at p = {p}, overlap = {overlap}"
                );
            }
        }
        // And the answer is actually the solution.
        let max_err = sim
            .iter()
            .zip(&x_star)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(max_err < 1e-8, "CG did not converge at p = {p}: {max_err}");
    }
}

/// CG on real processes: 120 compounding iterations of dot products and
/// ghost exchanges crossing framed loopback sockets, bitwise against the
/// simulator — with every worker's protocol trace shipped back and
/// analyzed parent-side.
#[test]
fn cg_solver_bitwise_identical_on_tcp_processes() {
    let (m, b, _x_star, shift) = cg_problem();
    let n = m.num_vertices();

    for p in [1usize, 2, 4] {
        let part = BlockPartition::uniform(n, p);
        let spec = ClusterSpec::uniform(p).with_network(NetworkSpec::zero_cost());
        let sim_blocks: Vec<_> = Cluster::new(spec)
            .run(|env| cg_body(env, &m, &b, shift, 120, false, 1))
            .into_results()
            .into_iter()
            .map(|(x, _)| x)
            .collect();
        let sim = stance::reassemble(&part, sim_blocks);

        let cluster = TcpCluster::new(p, env!("CARGO_BIN_EXE_tcp-rank-worker"));
        let args = (120usize, false, 1usize).to_wire();
        let results = cluster.run_scenario("equiv_cg", &args).into_results();
        let (blocks, traces): (Vec<_>, Vec<_>) = results
            .iter()
            .map(|bytes| {
                let (x, words) = <(Vec<f64>, Vec<u32>)>::from_wire(bytes);
                (x, RankTrace::from_payload(Payload::from_u32(words)))
            })
            .unzip();
        let diags = analyze_traces(&traces);
        assert!(diags.is_empty(), "tcp CG protocol diagnostics: {diags:?}");
        let tcp = stance::reassemble(&part, blocks);
        assert_eq!(
            bits(&sim),
            bits(&tcp),
            "CG over real sockets diverged bitwise at p = {p}"
        );
    }
}
