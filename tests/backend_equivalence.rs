//! Cross-backend equivalence: the simulator and the native thread-pool
//! backend must produce **bitwise-identical numeric results** for the same
//! SPMD program at every rank count.
//!
//! This is the payoff of the `Comm` abstraction's determinism contract:
//! data flows in rank order on both backends (messages, gathers,
//! reductions), so the only thing that differs is what a second of time
//! means. Two workloads are checked, each at 1, 2 and 4 ranks:
//!
//! * the quickstart relaxation (the paper's Fig. 8 loop, run through
//!   `AdaptiveSession` exactly as `examples/quickstart.rs` does);
//! * a conjugate-gradient solve (the `cg_solver` example's iteration,
//!   driven by `LoopRunner` + rank-order `allreduce_f64` dot products —
//!   the numerically touchiest path, since CG compounds every rounding
//!   decision across iterations).
//!
//! Both are also compared against the sequential reference, so "identical"
//! can never mean "identically wrong".
//!
//! Each workload additionally runs with the **split-phase gather**
//! (`overlap = true`): posting the ghost exchange and sweeping interior
//! vertices while bytes are in flight must be bitwise identical to the
//! synchronous path — per-vertex outputs depend only on the referenced
//! inputs, which both orders deliver unchanged — on both backends, at
//! every rank count. This is the cross-path half of the equivalence
//! story: backend × gather-flavour, all four combinations, one answer.
//!
//! Each workload additionally runs with **worker teams**
//! (`StanceConfig::with_team` / `LoopRunner::with_team`) at sizes 2 and
//! 4: splitting a rank's sweeps across a team of threads must be bitwise
//! identical to the single-lane run — deterministic static chunking plus
//! fixed-order commits — on both backends, with both gather flavours.

//! Both workloads run **fully verified**: the session enables
//! `StanceConfig::with_verification(true)` (schedule audits + protocol
//! trace), the hand-driven CG wraps its backend in
//! [`CheckedComm`](stance_verify::CheckedComm) directly, and every run's
//! traces must analyze clean — so this file also pins that verification
//! never costs a bit of numeric equivalence.

use stance::executor::{sequential_laplacian_matvec, sequential_relaxation};
use stance::inspector::{build_schedule_symmetric, LocalAdjacency};
use stance::prelude::*;
use stance_native::NativeCluster;
use stance_verify::{analyze_traces, CheckedComm, RankTrace};

fn mesh() -> Graph {
    let raw = stance::locality::meshgen::triangulated_grid(14, 11, 0.4, 5);
    stance::prepare_mesh(&raw, OrderingMethod::Rcb).0
}

fn init(g: usize) -> f64 {
    (g as f64 * 0.01).sin() * 5.0
}

// ---------------------------------------------------------------------
// Workload 1: quickstart relaxation through the session API.
// ---------------------------------------------------------------------

/// One rank's share of the relaxation, generic over the backend. Load
/// balancing is disabled so both backends run the identical static
/// schedule (remaps would not change the numbers — relaxation is
/// partition-invariant — but a wall-clock-driven remap decision would make
/// the *communication pattern* differ between runs for no test value).
fn relaxation_body<C: Comm>(
    env: &mut C,
    mesh: &Graph,
    iters: usize,
    overlap: bool,
    team: usize,
) -> (Vec<f64>, BlockPartition) {
    let config = StanceConfig::free()
        .without_load_balancing()
        .with_overlap(overlap)
        .with_verification(true)
        .with_team(team);
    let mut session = AdaptiveSession::setup(env, mesh, RelaxationKernel, init, &config);
    session.run_adaptive(env, iters);
    let diags = session.verify_protocol(env);
    assert!(diags.is_empty(), "protocol diagnostics: {diags:?}");
    (session.local_values().to_vec(), session.partition().clone())
}

fn relaxation_on_sim(mesh: &Graph, p: usize, iters: usize, overlap: bool, team: usize) -> Vec<f64> {
    let spec = ClusterSpec::uniform(p).with_network(NetworkSpec::zero_cost());
    let report = Cluster::new(spec).run(|env| relaxation_body(env, mesh, iters, overlap, team));
    let results: Vec<_> = report.into_results();
    let partition = results[0].1.clone();
    stance::reassemble(&partition, results.into_iter().map(|(v, _)| v).collect())
}

fn relaxation_on_native(
    mesh: &Graph,
    p: usize,
    iters: usize,
    overlap: bool,
    team: usize,
) -> Vec<f64> {
    let report =
        NativeCluster::new(p).run(|comm| relaxation_body(comm, mesh, iters, overlap, team));
    let results: Vec<_> = report.into_results();
    let partition = results[0].1.clone();
    stance::reassemble(&partition, results.into_iter().map(|(v, _)| v).collect())
}

#[test]
fn relaxation_bitwise_identical_across_backends_and_paths() {
    let m = mesh();
    let iters = 25;
    let mut reference: Vec<f64> = (0..m.num_vertices()).map(init).collect();
    sequential_relaxation(&m, &mut reference, iters);

    for p in [1usize, 2, 4] {
        let sim = relaxation_on_sim(&m, p, iters, false, 1);
        let native = relaxation_on_native(&m, p, iters, false, 1);
        assert_eq!(sim, reference, "sim diverged from sequential at p = {p}");
        assert_eq!(
            bits(&sim),
            bits(&native),
            "backends disagree bitwise at p = {p}"
        );
        // The split-phase gather is numerically free: bitwise identical to
        // the synchronous path on both backends.
        let sim_split = relaxation_on_sim(&m, p, iters, true, 1);
        let native_split = relaxation_on_native(&m, p, iters, true, 1);
        assert_eq!(
            bits(&sim),
            bits(&sim_split),
            "sim split-phase diverged from synchronous at p = {p}"
        );
        assert_eq!(
            bits(&native),
            bits(&native_split),
            "native split-phase diverged from synchronous at p = {p}"
        );
    }
}

/// Worker teams are numerically free: team sizes 2 and 4 must match the
/// single-lane (T = 1) run bitwise on both backends, with both gather
/// flavours, at every rank count — and the protocol traces (the session
/// runs fully verified) must stay clean.
#[test]
fn relaxation_bitwise_identical_across_team_sizes() {
    let m = mesh();
    let iters = 25;
    for p in [1usize, 2, 4] {
        let sim_serial = relaxation_on_sim(&m, p, iters, false, 1);
        let native_serial = relaxation_on_native(&m, p, iters, false, 1);
        for team in [2usize, 4] {
            for overlap in [false, true] {
                let sim = relaxation_on_sim(&m, p, iters, overlap, team);
                assert_eq!(
                    bits(&sim_serial),
                    bits(&sim),
                    "sim team = {team} diverged from T = 1 at p = {p}, overlap = {overlap}"
                );
                let native = relaxation_on_native(&m, p, iters, overlap, team);
                assert_eq!(
                    bits(&native_serial),
                    bits(&native),
                    "native team = {team} diverged from T = 1 at p = {p}, overlap = {overlap}"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Workload 2: conjugate gradient (the cg_solver example's iteration).
// ---------------------------------------------------------------------

/// One rank's share of a fixed-iteration CG solve of `(L + shift·I)x = b`,
/// generic over the backend: `LoopRunner` does the gather + matvec,
/// `allreduce_f64` the dot products. Every branch depends only on
/// allreduced values, which are bitwise identical everywhere — so all
/// ranks and both backends walk the same path.
fn cg_body<C: Comm>(
    env: &mut C,
    mesh: &Graph,
    b: &[f64],
    shift: f64,
    max_iters: usize,
    overlap: bool,
    team: usize,
) -> (Vec<f64>, RankTrace) {
    // Hand-driven (no session), so the protocol checker is attached
    // directly; the recorded trace rides back with the result for the
    // cross-rank analysis in the launcher.
    let mut trace = RankTrace::new(env.rank(), env.size());
    let mut checked = CheckedComm::attach(env, &mut trace);
    let env = &mut checked;
    let n = mesh.num_vertices();
    let part = BlockPartition::uniform(n, env.size());
    let rank = env.rank();
    let adj = LocalAdjacency::extract(mesh, &part, rank);
    let (sched, _) = build_schedule_symmetric(
        &part,
        &adj,
        rank,
        stance::inspector::ScheduleStrategy::Sort2,
    );
    let mut runner = LoopRunner::new(
        sched,
        &adj,
        ComputeCostModel::zero(),
        LaplacianKernel { shift },
    )
    .with_overlap(overlap)
    .with_team(team);
    let iv = part.interval_of(rank);
    let mut x = vec![0.0f64; iv.len()];
    let mut r: Vec<f64> = iv.iter().map(|g| b[g]).collect();
    let mut p = r.clone();
    let mut values = runner.make_values(p.clone());

    let mut rho = {
        let local: f64 = r.iter().map(|v| v * v).sum();
        env.allreduce_f64(Tag(1), local, |a, b| a + b)
    };
    let rho0 = rho;
    for _ in 0..max_iters {
        values.set_local(&p);
        runner.apply(env, &mut values);
        let ap = runner.scratch().to_vec();
        let p_dot_ap = {
            let local: f64 = p.iter().zip(&ap).map(|(a, c)| a * c).sum();
            env.allreduce_f64(Tag(2), local, |a, b| a + b)
        };
        let alpha = rho / p_dot_ap;
        for i in 0..x.len() {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rho_next = {
            let local: f64 = r.iter().map(|v| v * v).sum();
            env.allreduce_f64(Tag(3), local, |a, b| a + b)
        };
        if rho_next <= rho0 * 1e-24 {
            break;
        }
        let beta = rho_next / rho;
        for i in 0..p.len() {
            p[i] = r[i] + beta * p[i];
        }
        rho = rho_next;
    }
    (x, trace)
}

#[test]
fn cg_solver_bitwise_identical_across_backends() {
    let m = mesh();
    let n = m.num_vertices();
    let shift = 1.0;
    // Manufactured solution, like the cg_solver example.
    let x_star: Vec<f64> = (0..n).map(|i| (i as f64 * 0.01).sin()).collect();
    let mut b = vec![0.0; n];
    sequential_laplacian_matvec(&m, &x_star, shift, &mut b);

    for p in [1usize, 2, 4] {
        let m2 = &m;
        let b2 = &b;
        let part = BlockPartition::uniform(n, p);
        let check = |results: Vec<(Vec<f64>, RankTrace)>| {
            let (blocks, traces): (Vec<_>, Vec<_>) = results.into_iter().unzip();
            let diags = analyze_traces(&traces);
            assert!(diags.is_empty(), "CG protocol diagnostics: {diags:?}");
            stance::reassemble(&part, blocks)
        };
        let run_sim = |overlap: bool, team: usize| {
            let spec = ClusterSpec::uniform(p).with_network(NetworkSpec::zero_cost());
            check(
                Cluster::new(spec)
                    .run(|env| cg_body(env, m2, b2, shift, 120, overlap, team))
                    .into_results(),
            )
        };
        let run_native = |overlap: bool, team: usize| {
            check(
                NativeCluster::new(p)
                    .run(|comm| cg_body(comm, m2, b2, shift, 120, overlap, team))
                    .into_results(),
            )
        };
        let sim = run_sim(false, 1);
        let native = run_native(false, 1);
        assert_eq!(
            bits(&sim),
            bits(&native),
            "CG backends disagree bitwise at p = {p}"
        );
        // Split-phase matvec inside CG — the touchiest consumer, since CG
        // compounds every rounding decision — must not change one bit.
        assert_eq!(
            bits(&sim),
            bits(&run_sim(true, 1)),
            "sim split-phase CG diverged at p = {p}"
        );
        assert_eq!(
            bits(&native),
            bits(&run_native(true, 1)),
            "native split-phase CG diverged at p = {p}"
        );
        // Neither may a worker team: the matvec splits across lanes but
        // commits in fixed order, so 120 compounding CG iterations stay
        // bitwise identical at T = 2 and 4 on both backends and both
        // gather flavours.
        for team in [2usize, 4] {
            for overlap in [false, true] {
                assert_eq!(
                    bits(&sim),
                    bits(&run_sim(overlap, team)),
                    "sim team = {team} CG diverged at p = {p}, overlap = {overlap}"
                );
                assert_eq!(
                    bits(&native),
                    bits(&run_native(overlap, team)),
                    "native team = {team} CG diverged at p = {p}, overlap = {overlap}"
                );
            }
        }
        // And the answer is actually the solution.
        let max_err = sim
            .iter()
            .zip(&x_star)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(max_err < 1e-8, "CG did not converge at p = {p}: {max_err}");
    }
}

/// f64 slices compared as raw bit patterns (catches -0.0 vs 0.0 and NaN
/// payload differences that `==` would hide or over-reject).
fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}
