//! Cross-crate integration tests: the full Phase A→D pipeline against the
//! sequential reference, across orderings, schedule strategies, partition
//! shapes and cluster configurations.

use stance::executor::sequential_relaxation;
use stance::prelude::*;
use stance::reassemble;

fn init(g: usize) -> f64 {
    ((g * 37 % 101) as f64) * 0.25 - 12.0
}

fn run_parallel(
    mesh: &Graph,
    spec: ClusterSpec,
    config: &StanceConfig,
    iters: usize,
) -> (Vec<f64>, f64) {
    let report = Cluster::new(spec).run(|env| {
        let mut session = AdaptiveSession::setup(env, mesh, RelaxationKernel, init, config);
        session.run_adaptive(env, iters);
        (session.local_values().to_vec(), session.partition().clone())
    });
    let makespan = report.makespan();
    let results: Vec<_> = report.into_results();
    let partition = results[0].1.clone();
    let blocks = results.into_iter().map(|(v, _)| v).collect();
    (reassemble(&partition, blocks), makespan)
}

fn sequential(mesh: &Graph, iters: usize) -> Vec<f64> {
    let mut y: Vec<f64> = (0..mesh.num_vertices()).map(init).collect();
    sequential_relaxation(mesh, &mut y, iters);
    y
}

#[test]
fn every_ordering_produces_correct_results() {
    let raw = stance::locality::meshgen::triangulated_grid(14, 11, 0.4, 5);
    for method in OrderingMethod::ALL {
        let (mesh, _) = stance::prepare_mesh(&raw, method);
        let expected = sequential(&mesh, 15);
        let spec = ClusterSpec::uniform(3).with_network(NetworkSpec::zero_cost());
        let (got, _) = run_parallel(&mesh, spec, &StanceConfig::free(), 15);
        assert_eq!(got, expected, "ordering {method} broke the pipeline");
    }
}

#[test]
fn every_strategy_on_ethernet_cluster() {
    let raw = stance::locality::meshgen::annulus_mesh(10, 36, 2);
    let (mesh, _) = stance::prepare_mesh(&raw, OrderingMethod::Spectral);
    let expected = sequential(&mesh, 12);
    for strategy in ScheduleStrategy::ALL {
        let config = StanceConfig::default()
            .with_strategy(strategy)
            .without_load_balancing();
        let spec = ClusterSpec::uniform(4);
        let (got, makespan) = run_parallel(&mesh, spec, &config, 12);
        assert_eq!(got, expected, "strategy {strategy:?} broke the pipeline");
        assert!(makespan > 0.0);
    }
}

#[test]
fn shared_bus_network_correctness() {
    let raw = stance::locality::meshgen::triangulated_grid(12, 12, 0.3, 9);
    let (mesh, _) = stance::prepare_mesh(&raw, OrderingMethod::Hilbert);
    let expected = sequential(&mesh, 10);
    let spec = ClusterSpec::uniform(3).with_network(NetworkSpec::ethernet_10mbit_shared());
    let (got, _) = run_parallel(
        &mesh,
        spec,
        &StanceConfig::default().without_load_balancing(),
        10,
    );
    assert_eq!(got, expected, "shared-bus run diverged");
}

#[test]
fn heterogeneous_speeds_with_weighted_partition() {
    let raw = stance::locality::meshgen::triangulated_grid(16, 9, 0.4, 3);
    let (mesh, _) = stance::prepare_mesh(&raw, OrderingMethod::Rcb);
    let speeds = [1.0, 0.5, 0.25];
    let expected = sequential(&mesh, 20);
    let config = StanceConfig::free();
    let partition =
        BlockPartition::from_weights(mesh.num_vertices(), &speeds, Arrangement::identity(3));
    let spec = ClusterSpec::heterogeneous(&speeds).with_network(NetworkSpec::zero_cost());
    let report = Cluster::new(spec).run(|env| {
        let mut session = AdaptiveSession::setup_with_partition(
            env,
            &mesh,
            partition.clone(),
            RelaxationKernel,
            init,
            &config,
        );
        session.run_adaptive(env, 20);
        session.local_values().to_vec()
    });
    let blocks: Vec<_> = report.into_results();
    let got = reassemble(&partition, blocks);
    assert_eq!(got, expected);
}

#[test]
fn weighted_partition_beats_uniform_on_nonuniform_cluster() {
    let raw = stance::locality::meshgen::triangulated_grid(20, 20, 0.3, 8);
    let (mesh, _) = stance::prepare_mesh(&raw, OrderingMethod::Rcb);
    let speeds = [1.0, 0.25];
    let run_with = |weighted: bool| {
        let partition = if weighted {
            BlockPartition::from_weights(mesh.num_vertices(), &speeds, Arrangement::identity(2))
        } else {
            BlockPartition::uniform(mesh.num_vertices(), 2)
        };
        let spec = ClusterSpec::heterogeneous(&speeds).with_network(NetworkSpec::zero_cost());
        let config = StanceConfig::default().without_load_balancing();
        Cluster::new(spec)
            .run(|env| {
                let mut s = AdaptiveSession::setup_with_partition(
                    env,
                    &mesh,
                    partition.clone(),
                    RelaxationKernel,
                    init,
                    &config,
                );
                s.run_adaptive(env, 30);
            })
            .makespan()
    };
    let uniform = run_with(false);
    let weighted = run_with(true);
    assert!(
        weighted < uniform * 0.65,
        "weighted {weighted} should clearly beat uniform {uniform}"
    );
}

#[test]
fn single_rank_runs_whole_problem() {
    let raw = stance::locality::meshgen::triangulated_grid(10, 10, 0.2, 4);
    let (mesh, _) = stance::prepare_mesh(&raw, OrderingMethod::Morton);
    let expected = sequential(&mesh, 8);
    let spec = ClusterSpec::uniform(1);
    let (got, _) = run_parallel(&mesh, spec, &StanceConfig::default(), 8);
    assert_eq!(got, expected);
}

#[test]
fn efficiency_metric_sane_on_real_run() {
    let raw = stance::locality::meshgen::triangulated_grid(24, 24, 0.4, 6);
    let (mesh, _) = stance::prepare_mesh(&raw, OrderingMethod::Spectral);
    let config = StanceConfig::default().without_load_balancing();
    let t1 = run_parallel(&mesh, ClusterSpec::uniform(1), &config, 25).1;
    let t3 = run_parallel(&mesh, ClusterSpec::uniform(3), &config, 25).1;
    let e = stance::static_efficiency(t3, &[t1, t1, t1]);
    assert!(t3 < t1, "three machines must beat one ({t3} vs {t1})");
    assert!(
        e > 0.4 && e <= 1.0 + 1e-9,
        "efficiency {e} outside plausible range"
    );
}

#[test]
fn many_ranks_small_mesh_edge_case() {
    // More ranks than would be sensible: some blocks are tiny; one rank may
    // own a single vertex.
    let raw = stance::locality::meshgen::triangulated_grid(4, 4, 0.1, 2);
    let (mesh, _) = stance::prepare_mesh(&raw, OrderingMethod::Rcb);
    let expected = sequential(&mesh, 6);
    let spec = ClusterSpec::uniform(8).with_network(NetworkSpec::zero_cost());
    let (got, _) = run_parallel(&mesh, spec, &StanceConfig::free(), 6);
    assert_eq!(got, expected);
}
