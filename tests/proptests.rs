//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;
use stance::inspector::{build_schedule_symmetric, LocalAdjacency, RefHashMap, ScheduleStrategy};
use stance::locality::{compute_ordering, meshgen, OrderingMethod};
use stance::onedim::{
    exhaustive_best_arrangement, mcr::keep_arrangement, minimize_cost_redistribution, Arrangement,
    BlockPartition, RedistCostModel, RedistributionPlan,
};
use stance::sim::{LoadPhase, LoadTimeline, VTime};

/// Strategy: a weight vector of `p` positive weights.
fn weights(p: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.01f64..10.0, p)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Block sizes sum to n and every size is within one element of its
    /// exact proportional share.
    #[test]
    fn partition_respects_weights(n in 0usize..5000, w in weights(6)) {
        let part = BlockPartition::from_weights(n, &w, Arrangement::identity(6));
        let sizes = part.sizes();
        prop_assert_eq!(sizes.iter().sum::<usize>(), n);
        let total: f64 = w.iter().sum();
        for (q, &s) in sizes.iter().enumerate() {
            let exact = n as f64 * w[q] / total;
            prop_assert!((s as f64 - exact).abs() < 1.0 + 1e-9,
                "block {} size {} too far from share {}", q, s, exact);
        }
    }

    /// locate() is consistent with interval_of(), and the linear scan agrees
    /// with binary search.
    #[test]
    fn locate_consistent(n in 1usize..2000, w in weights(5), order in 0usize..120) {
        let arrangements = Arrangement::all(5);
        let arr = arrangements[order % arrangements.len()].clone();
        let part = BlockPartition::from_weights(n, &w, arr);
        for g in (0..n).step_by(1 + n / 64) {
            let (proc, local) = part.locate(g);
            prop_assert_eq!(part.locate_linear(g), (proc, local));
            let iv = part.interval_of(proc);
            prop_assert!(iv.contains(g));
            prop_assert_eq!(g - iv.start, local);
        }
    }

    /// MOVE keeps the arrangement a permutation, and moving to the element's
    /// own slot is the identity.
    #[test]
    fn arrangement_move_preserves_permutation(
        seed in proptest::collection::vec(0usize..7, 7),
        c in 0usize..7,
        l in 0usize..7,
    ) {
        // Build an arbitrary permutation from the seed by sorting indices.
        let mut order: Vec<usize> = (0..7).collect();
        order.sort_by_key(|&i| (seed[i], i));
        let mut arr = Arrangement::new(order);
        let before = arr.clone();
        let current = arr.slot_of(c);
        arr.move_to(c, l);
        let mut sorted = arr.as_slice().to_vec();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..7).collect::<Vec<_>>());
        prop_assert_eq!(arr.slot_of(c), l);
        if l == current {
            prop_assert_eq!(arr, before);
        }
    }

    /// The greedy MCR never does worse than keeping the arrangement, and
    /// never beats the exhaustive optimum.
    #[test]
    fn mcr_bounded_by_baseline_and_oracle(
        n in 50usize..500,
        old_w in weights(4),
        new_w in weights(4),
    ) {
        let model = RedistCostModel::elements_only();
        let old = BlockPartition::from_weights(n, &old_w, Arrangement::identity(4));
        let greedy = minimize_cost_redistribution(&old, &new_w, &model);
        let kept = model.cost_between(&old, &keep_arrangement(&old, &new_w));
        let best = exhaustive_best_arrangement(&old, &new_w, &model);
        prop_assert!(greedy.cost <= kept + 1e-9,
            "greedy {} worse than keep {}", greedy.cost, kept);
        prop_assert!(greedy.cost + 1e-9 >= best.cost,
            "greedy {} beat the exhaustive optimum {}", greedy.cost, best.cost);
    }

    /// A redistribution plan accounts for every element exactly once
    /// (moves + stays partition the list).
    #[test]
    fn plan_covers_list(n in 1usize..800, old_w in weights(4), new_w in weights(4)) {
        let old = BlockPartition::from_weights(n, &old_w, Arrangement::identity(4));
        let new = BlockPartition::from_weights(n, &new_w, Arrangement::new(vec![2, 0, 3, 1]));
        let plan = RedistributionPlan::between(&old, &new);
        let mut covered = vec![0u32; n];
        for m in plan.moves() {
            prop_assert_ne!(m.src, m.dst);
            for g in m.range.iter() {
                covered[g] += 1;
                prop_assert_eq!(old.owner_of(g), m.src);
                prop_assert_eq!(new.owner_of(g), m.dst);
            }
        }
        for q in 0..4 {
            for g in old.interval_of(q).intersect(&new.interval_of(q)).iter() {
                covered[g] += 1;
            }
        }
        prop_assert!(covered.iter().all(|&c| c == 1));
        prop_assert_eq!(plan.elements_moved() + plan.elements_kept(), n);
    }

    /// Every ordering method returns a permutation on random geometric
    /// graphs.
    #[test]
    fn orderings_are_permutations(n in 5usize..120, seed in 0u64..500) {
        let mesh = meshgen::random_geometric(n, 0.2, seed);
        for method in OrderingMethod::ALL {
            let o = compute_ordering(&mesh, method);
            let mut seq = o.sequence();
            seq.sort_unstable();
            prop_assert_eq!(seq, (0..n as u32).collect::<Vec<_>>(),
                "{} not a permutation", method);
        }
    }

    /// Symmetric schedules are matched pairwise on random meshes with
    /// random block weights.
    #[test]
    fn schedules_matched_pairwise(seed in 0u64..200, w in weights(4)) {
        let mesh = meshgen::random_geometric(60, 0.15, seed);
        let part = BlockPartition::from_weights(60, &w, Arrangement::identity(4));
        let schedules: Vec<_> = (0..4)
            .map(|r| {
                let adj = LocalAdjacency::extract(&mesh, &part, r);
                build_schedule_symmetric(&part, &adj, r, ScheduleStrategy::Sort2).0
            })
            .collect();
        for q in 0..4 {
            schedules[q].validate(&part);
            for r in 0..4 {
                if q == r {
                    continue;
                }
                let start = part.interval_of(q).start as u32;
                let sent: Vec<u32> = schedules[q]
                    .sends()
                    .iter()
                    .find(|(peer, _)| *peer == r)
                    .map(|(_, l)| l.iter().map(|&x| x + start).collect())
                    .unwrap_or_default();
                let expected: Vec<u32> = schedules[r]
                    .recvs()
                    .iter()
                    .find(|(peer, _)| *peer == q)
                    .map(|(_, g)| g.clone())
                    .unwrap_or_default();
                prop_assert_eq!(sent, expected, "{} -> {} mismatched", q, r);
            }
        }
    }

    /// RefHashMap behaves exactly like a std HashMap model under random
    /// insert/lookup sequences.
    #[test]
    fn refhash_matches_std(ops in proptest::collection::vec((0u32..500, 0u32..1000), 1..300)) {
        let mut ours = RefHashMap::with_capacity(4);
        let mut model = std::collections::HashMap::new();
        for (key, value) in ops {
            let expected = model.get(&key).copied();
            let got = ours.insert_if_absent(key, value);
            prop_assert_eq!(got, expected);
            model.entry(key).or_insert(value);
            prop_assert_eq!(ours.get(key), model.get(&key).copied());
            prop_assert_eq!(ours.len(), model.len());
        }
        for (k, v) in ours.iter() {
            prop_assert_eq!(model.get(&k), Some(&v));
        }
    }

    /// Advancing a load timeline is monotone in demand, and the consumed
    /// capacity equals the demand.
    #[test]
    fn load_timeline_advance_consistent(
        avail1 in 0.1f64..1.0,
        avail2 in 0.1f64..1.0,
        switch in 0.5f64..20.0,
        start in 0.0f64..30.0,
        demand in 0.0f64..50.0,
    ) {
        let tl = LoadTimeline::from_phases(vec![
            LoadPhase { start: 0.0, available: avail1 },
            LoadPhase { start: switch, available: avail2 },
        ]);
        let t0 = VTime::from_secs(start);
        let end = tl.advance(t0, demand);
        prop_assert!(end >= t0);
        // Larger demand never finishes earlier.
        let end2 = tl.advance(t0, demand + 1.0);
        prop_assert!(end2 >= end);
        // Numerically integrate availability over [t0, end]: must equal the
        // demand.
        let steps = 2000;
        let dt = (end - t0) / steps as f64;
        if dt > 0.0 {
            let mut consumed = 0.0;
            for i in 0..steps {
                let t = VTime::from_secs(start + (i as f64 + 0.5) * dt);
                consumed += tl.available_at(t) * dt;
            }
            prop_assert!((consumed - demand).abs() < demand.max(1.0) * 1e-2,
                "integrated {} vs demand {}", consumed, demand);
        }
    }

    /// Relabeling a graph preserves degree multiset and edge count.
    #[test]
    fn relabel_preserves_structure(n in 2usize..80, seed in 0u64..100) {
        let mesh = meshgen::random_geometric(n, 0.3, seed);
        let ordering = compute_ordering(&mesh, OrderingMethod::Hilbert);
        let relabeled = ordering.apply(&mesh);
        prop_assert_eq!(relabeled.num_edges(), mesh.num_edges());
        let mut d1: Vec<usize> = (0..n).map(|v| mesh.degree(v)).collect();
        let mut d2: Vec<usize> = (0..n).map(|v| relabeled.degree(v)).collect();
        d1.sort_unstable();
        d2.sort_unstable();
        prop_assert_eq!(d1, d2);
    }
}
