//! Adaptive-environment scenarios beyond the paper's single experiment:
//! load arriving mid-run, load departing, several machines loaded at once,
//! and the profitability rule declining unprofitable remaps.

use stance::balance::BalancerConfig;
use stance::executor::sequential_relaxation;
use stance::onedim::RedistCostModel;
use stance::prelude::*;
use stance::reassemble;

fn init(g: usize) -> f64 {
    (g as f64 * 0.02).cos() * 4.0
}

fn mesh() -> Graph {
    let raw = stance::locality::meshgen::triangulated_grid(20, 15, 0.4, 6);
    stance::prepare_mesh(&raw, OrderingMethod::Rcb).0
}

/// A balancer scaled for the small test meshes.
fn test_balancer() -> BalancerConfig {
    BalancerConfig {
        redist_model: RedistCostModel {
            per_message: 1.0e-4,
            per_element: 1.0e-7,
        },
        rebuild_cost_hint: 1.0e-4,
        profitability_margin: 1.0,
        use_mcr: true,
        mode: ControllerMode::Centralized,
    }
}

fn adaptive_config() -> StanceConfig {
    let mut c = StanceConfig::default().with_check_interval(10);
    c.balancer = test_balancer();
    c
}

/// Runs the session and returns (final values reassembled, reports).
fn run(
    m: &Graph,
    spec: ClusterSpec,
    config: &StanceConfig,
    iters: usize,
) -> (Vec<f64>, Vec<SessionReport>) {
    let report = Cluster::new(spec).run(|env| {
        let mut s = AdaptiveSession::setup(env, m, RelaxationKernel, init, config);
        let rep = s.run_adaptive(env, iters);
        (rep, s.local_values().to_vec(), s.partition().clone())
    });
    let results: Vec<_> = report.into_results();
    let partition = results[0].2.clone();
    let reports: Vec<SessionReport> = results.iter().map(|(r, _, _)| *r).collect();
    let blocks = results.into_iter().map(|(_, v, _)| v).collect();
    (reassemble(&partition, blocks), reports)
}

#[test]
fn late_arriving_load_triggers_remap_and_stays_correct() {
    let m = mesh();
    let iters = 60;
    let mut expected: Vec<f64> = (0..m.num_vertices()).map(init).collect();
    sequential_relaxation(&m, &mut expected, iters);

    // Load arrives at t=0.05s, well after the run starts, and stays.
    let spec = ClusterSpec::uniform(3)
        .with_network(NetworkSpec::zero_cost())
        .with_load(0, LoadTimeline::competing_load(0.05, f64::INFINITY, 3));
    let (got, reports) = run(&m, spec, &adaptive_config(), iters);
    assert_eq!(got, expected, "values diverged after mid-run remap");
    assert!(
        reports[0].remaps >= 1,
        "late load should trigger a remap: {:?}",
        reports[0]
    );
}

#[test]
fn departing_load_rebalances_back() {
    let m = mesh();
    let iters = 120;
    // Loaded only during the first ~0.08s of the run.
    let spec = ClusterSpec::uniform(2)
        .with_network(NetworkSpec::zero_cost())
        .with_load(0, LoadTimeline::competing_load(0.0, 0.08, 2));
    let report = Cluster::new(spec).run(|env| {
        let config = adaptive_config();
        let mut s = AdaptiveSession::setup(env, &m, RelaxationKernel, init, &config);
        let rep = s.run_adaptive(env, iters);
        (rep, s.partition().sizes())
    });
    let (rep0, final_sizes) = &report.ranks[0].result;
    assert!(
        rep0.remaps >= 2,
        "expected shrink then regrow remaps, got {:?}",
        rep0
    );
    // After the load departs the blocks should be near-equal again.
    let ratio = final_sizes[0] as f64 / final_sizes[1] as f64;
    assert!(
        (0.8..=1.25).contains(&ratio),
        "final blocks should be near-equal, got {final_sizes:?}"
    );
}

#[test]
fn two_loaded_machines_shift_work_to_the_third() {
    let m = mesh();
    let iters = 50;
    let mut expected: Vec<f64> = (0..m.num_vertices()).map(init).collect();
    sequential_relaxation(&m, &mut expected, iters);
    let spec = ClusterSpec::uniform(3)
        .with_network(NetworkSpec::zero_cost())
        .with_load(0, LoadTimeline::constant(0.5))
        .with_load(1, LoadTimeline::constant(0.5));
    let report = Cluster::new(spec).run(|env| {
        let config = adaptive_config();
        let mut s = AdaptiveSession::setup(env, &m, RelaxationKernel, init, &config);
        s.run_adaptive(env, iters);
        (
            s.partition().sizes(),
            s.local_values().to_vec(),
            s.partition().clone(),
        )
    });
    let results: Vec<_> = report.into_results();
    let sizes = results[0].0.clone();
    assert!(
        sizes[2] > sizes[0] && sizes[2] > sizes[1],
        "unloaded rank should own the most: {sizes:?}"
    );
    let partition = results[0].2.clone();
    let blocks = results.into_iter().map(|(_, v, _)| v).collect();
    assert_eq!(reassemble(&partition, blocks), expected);
}

#[test]
fn high_margin_suppresses_remaps() {
    let m = mesh();
    let spec = ClusterSpec::uniform(2)
        .with_network(NetworkSpec::zero_cost())
        .with_load(0, LoadTimeline::constant(0.5));
    let mut config = adaptive_config();
    config.balancer.profitability_margin = 1.0e9;
    let (_, reports) = run(&m, spec, &config, 40);
    assert_eq!(reports[0].remaps, 0, "a huge margin must suppress remaps");
    assert!(reports[0].checks > 0);
}

#[test]
fn check_interval_bounds_check_count() {
    let m = mesh();
    for interval in [5usize, 10, 25] {
        let mut config = adaptive_config().with_check_interval(interval);
        config.balancer.profitability_margin = 1.0e9; // decisions: always keep
        let spec = ClusterSpec::uniform(2).with_network(NetworkSpec::zero_cost());
        let (_, reports) = run(&m, spec, &config, 50);
        let expected_checks = (50 - 1) / interval;
        assert_eq!(
            reports[0].checks, expected_checks,
            "interval {interval} produced wrong check count"
        );
    }
}

#[test]
fn remap_with_simple_strategy_rebuild() {
    // The post-remap schedule rebuild must also work with the
    // communication-based simple strategy (a collective rebuild).
    let m = mesh();
    let iters = 40;
    let mut expected: Vec<f64> = (0..m.num_vertices()).map(init).collect();
    sequential_relaxation(&m, &mut expected, iters);
    let mut config = adaptive_config().with_strategy(ScheduleStrategy::Simple);
    config.inspector_cost = InspectorCostModel::zero();
    let spec = ClusterSpec::uniform(3)
        .with_network(NetworkSpec::zero_cost())
        .with_load(0, LoadTimeline::constant(1.0 / 3.0));
    let (got, reports) = run(&m, spec, &config, iters);
    assert!(reports[0].remaps >= 1, "expected a remap: {:?}", reports[0]);
    assert_eq!(got, expected, "simple-strategy rebuild diverged");
}
