//! Adaptive-environment scenarios beyond the paper's single experiment:
//! load arriving mid-run, load departing, several machines loaded at once,
//! and the profitability rule declining unprofitable remaps.

use stance::balance::BalancerConfig;
use stance::executor::sequential_relaxation;
use stance::onedim::RedistCostModel;
use stance::prelude::*;
use stance::reassemble;
use stance::sim::LoadPhase;

fn init(g: usize) -> f64 {
    (g as f64 * 0.02).cos() * 4.0
}

fn mesh() -> Graph {
    let raw = stance::locality::meshgen::triangulated_grid(20, 15, 0.4, 6);
    stance::prepare_mesh(&raw, OrderingMethod::Rcb).0
}

/// A balancer scaled for the small test meshes.
fn test_balancer() -> BalancerConfig {
    BalancerConfig {
        redist_model: RedistCostModel {
            per_message: 1.0e-4,
            per_element: 1.0e-7,
        },
        rebuild_cost_hint: 1.0e-4,
        profitability_margin: 1.0,
        use_mcr: true,
        mode: ControllerMode::Centralized,
    }
}

fn adaptive_config() -> StanceConfig {
    let mut c = StanceConfig::default().with_check_interval(10);
    c.balancer = test_balancer();
    c
}

/// Runs the session and returns (final values reassembled, reports).
fn run(
    m: &Graph,
    spec: ClusterSpec,
    config: &StanceConfig,
    iters: usize,
) -> (Vec<f64>, Vec<SessionReport>) {
    let report = Cluster::new(spec).run(|env| {
        let mut s = AdaptiveSession::setup(env, m, RelaxationKernel, init, config);
        let rep = s.run_adaptive(env, iters);
        (rep, s.local_values().to_vec(), s.partition().clone())
    });
    let results: Vec<_> = report.into_results();
    let partition = results[0].2.clone();
    let reports: Vec<SessionReport> = results.iter().map(|(r, _, _)| *r).collect();
    let blocks = results.into_iter().map(|(_, v, _)| v).collect();
    (reassemble(&partition, blocks), reports)
}

#[test]
fn late_arriving_load_triggers_remap_and_stays_correct() {
    let m = mesh();
    let iters = 60;
    let mut expected: Vec<f64> = (0..m.num_vertices()).map(init).collect();
    sequential_relaxation(&m, &mut expected, iters);

    // Load arrives at t=0.05s, well after the run starts, and stays.
    let spec = ClusterSpec::uniform(3)
        .with_network(NetworkSpec::zero_cost())
        .with_load(0, LoadTimeline::competing_load(0.05, f64::INFINITY, 3));
    let (got, reports) = run(&m, spec, &adaptive_config(), iters);
    assert_eq!(got, expected, "values diverged after mid-run remap");
    assert!(
        reports[0].remaps >= 1,
        "late load should trigger a remap: {:?}",
        reports[0]
    );
}

#[test]
fn departing_load_rebalances_back() {
    let m = mesh();
    let iters = 120;
    // Loaded only during the first ~0.08s of the run.
    let spec = ClusterSpec::uniform(2)
        .with_network(NetworkSpec::zero_cost())
        .with_load(0, LoadTimeline::competing_load(0.0, 0.08, 2));
    let report = Cluster::new(spec).run(|env| {
        let config = adaptive_config();
        let mut s = AdaptiveSession::setup(env, &m, RelaxationKernel, init, &config);
        let rep = s.run_adaptive(env, iters);
        (rep, s.partition().sizes())
    });
    let (rep0, final_sizes) = &report.ranks[0].result;
    assert!(
        rep0.remaps >= 2,
        "expected shrink then regrow remaps, got {rep0:?}"
    );
    // After the load departs the blocks should be near-equal again.
    let ratio = final_sizes[0] as f64 / final_sizes[1] as f64;
    assert!(
        (0.8..=1.25).contains(&ratio),
        "final blocks should be near-equal, got {final_sizes:?}"
    );
}

#[test]
fn two_loaded_machines_shift_work_to_the_third() {
    let m = mesh();
    let iters = 50;
    let mut expected: Vec<f64> = (0..m.num_vertices()).map(init).collect();
    sequential_relaxation(&m, &mut expected, iters);
    let spec = ClusterSpec::uniform(3)
        .with_network(NetworkSpec::zero_cost())
        .with_load(0, LoadTimeline::constant(0.5))
        .with_load(1, LoadTimeline::constant(0.5));
    let report = Cluster::new(spec).run(|env| {
        let config = adaptive_config();
        let mut s = AdaptiveSession::setup(env, &m, RelaxationKernel, init, &config);
        s.run_adaptive(env, iters);
        (
            s.partition().sizes(),
            s.local_values().to_vec(),
            s.partition().clone(),
        )
    });
    let results: Vec<_> = report.into_results();
    let sizes = results[0].0.clone();
    assert!(
        sizes[2] > sizes[0] && sizes[2] > sizes[1],
        "unloaded rank should own the most: {sizes:?}"
    );
    let partition = results[0].2.clone();
    let blocks = results.into_iter().map(|(_, v, _)| v).collect();
    assert_eq!(reassemble(&partition, blocks), expected);
}

#[test]
fn high_margin_suppresses_remaps() {
    let m = mesh();
    let spec = ClusterSpec::uniform(2)
        .with_network(NetworkSpec::zero_cost())
        .with_load(0, LoadTimeline::constant(0.5));
    let mut config = adaptive_config();
    config.balancer.profitability_margin = 1.0e9;
    let (_, reports) = run(&m, spec, &config, 40);
    assert_eq!(reports[0].remaps, 0, "a huge margin must suppress remaps");
    assert!(reports[0].checks > 0);
}

#[test]
fn check_interval_bounds_check_count() {
    let m = mesh();
    for interval in [5usize, 10, 25] {
        let mut config = adaptive_config().with_check_interval(interval);
        config.balancer.profitability_margin = 1.0e9; // decisions: always keep
        let spec = ClusterSpec::uniform(2).with_network(NetworkSpec::zero_cost());
        let (_, reports) = run(&m, spec, &config, 50);
        let expected_checks = (50 - 1) / interval;
        assert_eq!(
            reports[0].checks, expected_checks,
            "interval {interval} produced wrong check count"
        );
    }
}

/// Churn: an oscillating load timeline (rank 0 repeatedly loses and
/// regains most of its capacity) must force at least 4 controller-driven
/// remaps in one run, with aux arrays attached at every check — and the
/// final values must still match the sequential reference bitwise, on the
/// synchronous and the overlapped gather alike. This exercises the
/// recycled remap pipeline (`RemapScratch`, schedule/runner rebuild
/// reuse) through repeated shrink/grow cycles rather than a single remap.
#[test]
fn oscillating_load_churn_stays_bitwise_correct() {
    let m = mesh();
    let n = m.num_vertices();
    let blocks = 16;
    let per_block = 10;
    let iters = blocks * per_block;
    let mut expected: Vec<f64> = (0..n).map(init).collect();
    sequential_relaxation(&m, &mut expected, iters);

    // Availability flips between full speed and 1/5 every 40 ms of
    // virtual time — several flips over the run's horizon, each making
    // the current partition wrong again.
    let phases: Vec<LoadPhase> = (0..40)
        .map(|i| LoadPhase {
            start: 0.040 * i as f64,
            available: if i % 2 == 0 { 1.0 } else { 0.2 },
        })
        .collect();
    for overlap in [false, true] {
        let mut config = adaptive_config().with_overlap(overlap);
        // React on the freshest measurement so every flip is seen.
        config.estimator = CapabilityEstimator::LastPhase;
        let spec = ClusterSpec::uniform(2)
            .with_network(NetworkSpec::zero_cost())
            .with_load(0, LoadTimeline::from_phases(phases.clone()));
        let report = Cluster::new(spec).run(|env| {
            let mut s = AdaptiveSession::setup(env, &m, RelaxationKernel, init, &config);
            // aux[g] = 3g rides along through every remap.
            let mut aux: Vec<f64> = s
                .partition()
                .interval_of(env.rank())
                .iter()
                .map(|g| 3.0 * g as f64)
                .collect();
            let mut remaps = 0;
            for b in 0..blocks {
                s.run_block(env, per_block);
                if b + 1 < blocks {
                    let remaining = iters - (b + 1) * per_block;
                    let (remapped, _, _) =
                        s.check_and_rebalance_named(env, remaining, &mut [("aux", &mut aux)]);
                    remaps += usize::from(remapped);
                }
            }
            // Aux ownership must match the final partition exactly.
            let iv = s.partition().interval_of(env.rank());
            assert_eq!(aux.len(), iv.len(), "aux length follows the partition");
            for (offset, g) in iv.iter().enumerate() {
                assert_eq!(aux[offset], 3.0 * g as f64, "aux element strayed");
            }
            (remaps, s.local_values().to_vec(), s.partition().clone())
        });
        let results: Vec<_> = report.into_results();
        assert!(
            results[0].0 >= 4,
            "oscillating load should force >= 4 remaps (overlap = {overlap}), got {}",
            results[0].0
        );
        let partition = results[0].2.clone();
        let blocks_out = results.into_iter().map(|(_, v, _)| v).collect();
        assert_eq!(
            reassemble(&partition, blocks_out),
            expected,
            "churn run diverged from sequential (overlap = {overlap})"
        );
    }
}

/// The same churn on the **native** backend, where load cannot be
/// injected: remaps are forced deterministically through
/// `AdaptiveSession::remap_to` oscillating between skewed partitions,
/// with an aux array attached — wall-clock scheduling must never affect
/// the values (bitwise-identical to the sequential reference, both gather
/// flavours).
#[test]
fn native_forced_churn_stays_bitwise_correct() {
    let m = mesh();
    let n = m.num_vertices();
    let cycles = 4;
    let per_phase = 5;
    let iters = cycles * 2 * per_phase;
    let mut expected: Vec<f64> = (0..n).map(init).collect();
    sequential_relaxation(&m, &mut expected, iters);

    let skew_a = BlockPartition::from_sizes(&[n / 5, n / 2, n - n / 5 - n / 2]);
    let skew_b = BlockPartition::from_sizes(&[n / 2, n / 5, n - n / 5 - n / 2]);
    for overlap in [false, true] {
        let config = StanceConfig::free().with_overlap(overlap);
        let report = stance_native::NativeCluster::new(3).run(|comm| {
            let mut s = AdaptiveSession::setup(comm, &m, RelaxationKernel, init, &config);
            let mut aux: Vec<f64> = s
                .partition()
                .interval_of(comm.rank())
                .iter()
                .map(|g| 3.0 * g as f64)
                .collect();
            for c in 0..cycles {
                s.run_block(comm, per_phase);
                s.remap_to(comm, skew_a.clone(), &mut [&mut aux]);
                s.run_block(comm, per_phase);
                let back = if c + 1 == cycles {
                    BlockPartition::uniform(n, 3)
                } else {
                    skew_b.clone()
                };
                s.remap_to(comm, back, &mut [&mut aux]);
            }
            let iv = s.partition().interval_of(comm.rank());
            for (offset, g) in iv.iter().enumerate() {
                assert_eq!(aux[offset], 3.0 * g as f64, "aux element strayed");
            }
            (s.local_values().to_vec(), s.partition().clone())
        });
        let results: Vec<_> = report.into_results();
        let partition = results[0].1.clone();
        let blocks_out = results.into_iter().map(|(v, _)| v).collect();
        assert_eq!(
            reassemble(&partition, blocks_out),
            expected,
            "native forced churn diverged (overlap = {overlap})"
        );
    }
}

/// The full adaptive churn scenario under `with_verification(true)`, on
/// both backends: every schedule build is audited collectively, every
/// remap's redistribution plan is checked, all point-to-point traffic is
/// traced, the final protocol analysis is clean — and the values stay
/// bitwise identical to the sequential reference. The simulator leg runs
/// controller-driven remaps for both schedule strategies (Sort2's local
/// build and Simple's collective three-round build both execute traced);
/// the native leg forces deterministic churn through `remap_to`.
#[test]
fn verified_adaptive_churn_is_clean_on_both_backends() {
    let m = mesh();
    let n = m.num_vertices();
    let iters = 60;
    let mut expected: Vec<f64> = (0..n).map(init).collect();
    sequential_relaxation(&m, &mut expected, iters);

    for strategy in [ScheduleStrategy::Sort2, ScheduleStrategy::Simple] {
        let mut config = adaptive_config()
            .with_strategy(strategy)
            .with_verification(true);
        config.inspector_cost = InspectorCostModel::zero();
        let spec = ClusterSpec::uniform(3)
            .with_network(NetworkSpec::zero_cost())
            .with_load(0, LoadTimeline::constant(1.0 / 3.0));
        let report = Cluster::new(spec).run(|env| {
            let mut s = AdaptiveSession::setup(env, &m, RelaxationKernel, init, &config);
            let rep = s.run_adaptive(env, iters);
            let diags = s.verify_protocol(env);
            assert!(
                diags.is_empty(),
                "sim protocol diagnostics ({strategy:?}): {diags:?}"
            );
            (rep.remaps, s.local_values().to_vec(), s.partition().clone())
        });
        let results: Vec<_> = report.into_results();
        assert!(
            results[0].0 >= 1,
            "expected a verified remap ({strategy:?})"
        );
        let partition = results[0].2.clone();
        let blocks = results.into_iter().map(|(_, v, _)| v).collect();
        assert_eq!(
            reassemble(&partition, blocks),
            expected,
            "verified sim churn diverged ({strategy:?})"
        );
    }

    let skew = BlockPartition::from_sizes(&[n / 5, n / 2, n - n / 5 - n / 2]);
    let config = StanceConfig::free().with_verification(true);
    let report = stance_native::NativeCluster::new(3).run(|comm| {
        let mut s = AdaptiveSession::setup(comm, &m, RelaxationKernel, init, &config);
        s.run_block(comm, iters / 3);
        s.remap_to(comm, skew.clone(), &mut []);
        s.run_block(comm, iters / 3);
        s.remap_to(comm, BlockPartition::uniform(n, 3), &mut []);
        s.run_block(comm, iters - 2 * (iters / 3));
        let diags = s.verify_protocol(comm);
        assert!(diags.is_empty(), "native protocol diagnostics: {diags:?}");
        (s.local_values().to_vec(), s.partition().clone())
    });
    let results: Vec<_> = report.into_results();
    let partition = results[0].1.clone();
    let blocks = results.into_iter().map(|(v, _)| v).collect();
    assert_eq!(
        reassemble(&partition, blocks),
        expected,
        "verified native churn diverged"
    );
}

#[test]
fn remap_with_simple_strategy_rebuild() {
    // The post-remap schedule rebuild must also work with the
    // communication-based simple strategy (a collective rebuild).
    let m = mesh();
    let iters = 40;
    let mut expected: Vec<f64> = (0..m.num_vertices()).map(init).collect();
    sequential_relaxation(&m, &mut expected, iters);
    let mut config = adaptive_config().with_strategy(ScheduleStrategy::Simple);
    config.inspector_cost = InspectorCostModel::zero();
    let spec = ClusterSpec::uniform(3)
        .with_network(NetworkSpec::zero_cost())
        .with_load(0, LoadTimeline::constant(1.0 / 3.0));
    let (got, reports) = run(&m, spec, &config, iters);
    assert!(reports[0].remaps >= 1, "expected a remap: {:?}", reports[0]);
    assert_eq!(got, expected, "simple-strategy rebuild diverged");
}
