//! Fault injection and elastic recovery, end to end on all three
//! backends — including the one where "kill" means a real SIGKILL.
//!
//! The centerpiece is the deterministic recovery scenario the
//! fault-tolerance work promises: a 4-rank adaptive relaxation
//! checkpoints after every epoch; a seeded [`FaultPlan`] kills one rank
//! at a precisely aimed operation; the survivors detect the death
//! through the bounded membership probe, reach a collective verdict,
//! restore the last checkpoint onto a [`SurvivorComm`]-contracted
//! 3-rank world and finish the run — with final values **bitwise
//! identical** to an uninterrupted 3-rank continuation from the same
//! checkpoint, and to the sequential reference. The recovered run
//! executes under full protocol verification, so its traces must also
//! analyze clean. The scenario bodies live in
//! [`stance_repro::scenarios`], shared by every backend's leg here and
//! by the TCP worker binary.
//!
//! On the TCP process backend the same scenario runs with nothing
//! simulated: the victim SIGKILLs its own OS process mid-run (the
//! coordinator observes `Died { signal: Some(9) }`), the survivors see
//! its sockets reset, evict it through the same detector verdict, and
//! continue — bitwise identical to a clean 3-process continuation from
//! the replicated checkpoint.
//!
//! Around the centerpiece: the kill/stall/wedge matrix — a stalled rank
//! stays *alive* to the detector and numerically harmless, a wedged
//! (silent-but-running) rank holds open-but-silent sockets and is
//! evicted by timeout exactly like a crashed one, and seeded plans
//! reproduce run-for-run.

use stance::executor::sequential_relaxation;
use stance::prelude::*;
use stance_native::NativeCluster;
use stance_repro::scenarios::{
    check_recovery, continue_from_checkpoint, detector, epoch_op_marks, fault_config, fault_init,
    fault_mesh, faulted_run, SurvivorOutcome, BLOCK, FAULT_EPOCH, VICTIM,
};
use stance_tcp::codec::Wire;
use stance_tcp::{RankOutcome, TcpCluster};
use stance_verify::{catch_fault, FaultKind, FaultPlan, FaultyComm};

/// The acceptance scenario on the virtual-time simulator.
#[test]
fn sim_kill_recovery_matches_uninterrupted_shrink() {
    let m = fault_mesh();
    let spec4 = || ClusterSpec::uniform(4).with_network(NetworkSpec::zero_cost());
    let kill_at = Cluster::new(spec4())
        .run(|env| epoch_op_marks(env, &m))
        .into_results()[VICTIM][FAULT_EPOCH];

    let results = Cluster::new(spec4())
        .run(|env| faulted_run(env, &m, kill_at))
        .into_results();
    check_recovery(&m, results, |ckpt| {
        Cluster::new(ClusterSpec::uniform(3).with_network(NetworkSpec::zero_cost()))
            .run(|env| continue_from_checkpoint(env, &m, &ckpt))
            .into_results()
    });
}

/// The same scenario on the native thread-pool backend (wall-clock
/// timeouts, OS threads, real sleeps).
#[test]
fn native_kill_recovery_matches_uninterrupted_shrink() {
    let m = fault_mesh();
    let kill_at = NativeCluster::new(4)
        .run(|comm| epoch_op_marks(comm, &m))
        .into_results()[VICTIM][FAULT_EPOCH];

    let results = NativeCluster::new(4)
        .run(|comm| faulted_run(comm, &m, kill_at))
        .into_results();
    check_recovery(&m, results, |ckpt| {
        NativeCluster::new(3)
            .run(|comm| continue_from_checkpoint(comm, &m, &ckpt))
            .into_results()
    });
}

fn tcp_cluster(p: usize) -> TcpCluster {
    TcpCluster::new(p, env!("CARGO_BIN_EXE_tcp-rank-worker"))
}

/// The acceptance scenario with nothing simulated: 4 OS processes over
/// loopback sockets; the victim SIGKILLs itself mid-run; the survivors
/// detect the death through socket resets feeding the same detector
/// verdict, restore the replicated checkpoint onto a 3-rank
/// `SurvivorComm` world, and finish — bitwise identical to a clean
/// 3-process continuation and to the sequential reference.
#[test]
fn tcp_sigkill_recovery_matches_uninterrupted_shrink() {
    let m = fault_mesh();

    // Aim the kill using the TCP backend's own op marks.
    let marks: Vec<Vec<u64>> = tcp_cluster(4)
        .run_scenario("fault_marks", &[])
        .into_results()
        .iter()
        .map(|bytes| Vec::<u64>::from_wire(bytes))
        .collect();
    let kill_at = marks[VICTIM][FAULT_EPOCH];

    // The faulted run: one real process dies by SIGKILL.
    let report = tcp_cluster(4).run_scenario("fault_kill", &kill_at.to_wire());
    let mut results: Vec<Option<SurvivorOutcome>> = Vec::new();
    for (rank, outcome) in report.outcomes().iter().enumerate() {
        match outcome {
            RankOutcome::Died { signal, code } => {
                assert_eq!(rank, VICTIM, "only the victim may die");
                assert_eq!(
                    (*signal, *code),
                    (Some(9), None),
                    "the victim must die by SIGKILL, not exit"
                );
                results.push(None);
            }
            RankOutcome::Completed(bytes) => {
                results.push(Option::<SurvivorOutcome>::from_wire(bytes));
            }
            RankOutcome::Panicked(msg) => panic!("rank {rank} panicked: {msg}"),
        }
    }

    check_recovery(&m, results, |ckpt| {
        // The clean continuation also runs on real processes, restoring
        // from the same checkpoint bytes the survivors replicated.
        tcp_cluster(3)
            .run_scenario("fault_continue", &ckpt.to_bytes().to_wire())
            .into_results()
            .iter()
            .map(|bytes| {
                let (values, sizes) = <(Vec<f64>, Vec<usize>)>::from_wire(bytes);
                (values, BlockPartition::from_sizes(&sizes))
            })
            .collect()
    });
}

/// All three backends aim the kill identically: the operation count at
/// each epoch boundary is a property of the SPMD program, not of the
/// backend executing it.
#[test]
fn epoch_op_marks_agree_across_backends() {
    let m = fault_mesh();
    let sim_marks = Cluster::new(ClusterSpec::uniform(4).with_network(NetworkSpec::zero_cost()))
        .run(|env| epoch_op_marks(env, &m))
        .into_results();
    let native_marks = NativeCluster::new(4)
        .run(|comm| epoch_op_marks(comm, &m))
        .into_results();
    assert_eq!(
        sim_marks, native_marks,
        "op accounting diverged across backends"
    );
    let tcp_marks: Vec<Vec<u64>> = tcp_cluster(4)
        .run_scenario("fault_marks", &[])
        .into_results()
        .iter()
        .map(|bytes| Vec::<u64>::from_wire(bytes))
        .collect();
    assert_eq!(
        sim_marks, tcp_marks,
        "op accounting diverged on the process backend"
    );
}

/// A stalled rank is slow, not dead: the membership probe stays
/// unanimous and the block's values are bitwise unaffected.
#[test]
fn stall_is_alive_to_the_detector_and_numerically_free() {
    let m = fault_mesh();
    let n = m.num_vertices();
    let mut expected: Vec<f64> = (0..n).map(fault_init).collect();
    sequential_relaxation(&m, &mut expected, BLOCK);

    let plan = FaultPlan::stall(1, 8, 2.0e-3);
    let spec = ClusterSpec::uniform(3).with_network(NetworkSpec::zero_cost());
    let report = Cluster::new(spec).run(|env| {
        let mut faulty = FaultyComm::attach(env, &plan);
        let cfg = fault_config();
        let mut s = AdaptiveSession::setup(&mut faulty, &m, RelaxationKernel, fault_init, &cfg);
        let alive = probe_membership(&mut faulty, &detector());
        s.run_block(&mut faulty, BLOCK);
        (alive, s.local_values().to_vec(), s.partition().clone())
    });
    let results: Vec<_> = report.into_results();
    for (alive, _, _) in &results {
        assert_eq!(
            alive,
            &vec![true; 3],
            "a stalled rank must stay in the group"
        );
    }
    let partition = results[0].2.clone();
    let blocks = results.into_iter().map(|(_, v, _)| v).collect();
    assert_eq!(
        reassemble(&partition, blocks),
        expected,
        "stall changed values"
    );
}

/// The stall leg on real processes: a rank that sleeps mid-protocol is
/// late bytes on a socket, not a dead socket — the probe stays
/// unanimous and the values stay bitwise equal to the sequential
/// reference.
#[test]
fn tcp_stall_is_alive_to_the_detector_and_numerically_free() {
    let m = fault_mesh();
    let n = m.num_vertices();
    let mut expected: Vec<f64> = (0..n).map(fault_init).collect();
    sequential_relaxation(&m, &mut expected, BLOCK);

    let results: Vec<(Vec<bool>, Vec<f64>, Vec<usize>)> = tcp_cluster(3)
        .run_scenario("fault_stall", &[])
        .into_results()
        .iter()
        .map(|bytes| <(Vec<bool>, Vec<f64>, Vec<usize>)>::from_wire(bytes))
        .collect();
    for (alive, _, _) in &results {
        assert_eq!(
            alive,
            &vec![true; 3],
            "a stalled process must stay in the group"
        );
    }
    let partition = BlockPartition::from_sizes(&results[0].2);
    let blocks = results.into_iter().map(|(_, v, _)| v).collect();
    assert_eq!(
        reassemble(&partition, blocks),
        expected,
        "stall changed values on the process backend"
    );
}

/// A wedged rank — silent but still running — is evicted by timeout
/// with the same collective verdict as a crash. This exercises the
/// "died between rounds" detector path: the victim's heartbeats go out
/// before the wedge fires, so round 1 sees it alive and round 2's
/// verdict wait is what times out.
#[test]
fn wedge_is_evicted_by_collective_timeout() {
    let det = detector();
    // The victim's probe ops: two heartbeat posts (ops 0, 1), then the
    // wedge fires on its first bounded receive (op 2).
    let plan = FaultPlan::wedge(1, 2);
    let report = Cluster::new(ClusterSpec::uniform(3)).run(|env| {
        let mut faulty = FaultyComm::attach(env, &plan);
        match catch_fault(|| probe_membership(&mut faulty, &det)) {
            Ok(alive) => Some(alive),
            Err(fault) => {
                assert_eq!(fault.rank, 1);
                assert!(matches!(fault.kind, FaultKind::Wedge));
                // Wedged, not dead: hold the mailboxes open past the
                // survivors' patience window so eviction happens by
                // timeout, not by disconnection.
                std::thread::sleep(std::time::Duration::from_secs_f64(
                    det.total_patience_secs() * 2.0,
                ));
                None
            }
        }
    });
    for (rank, alive) in report.into_results().into_iter().enumerate() {
        if rank == 1 {
            assert_eq!(alive, None, "the victim must wedge");
        } else {
            assert_eq!(
                alive,
                Some(vec![true, false, true]),
                "rank {rank} verdict diverged"
            );
        }
    }
}

/// The wedge leg on real processes: the victim's sockets stay **open
/// but silent** — connected at the TCP level, never writing another
/// frame — so the survivors cannot lean on a reset and must evict it
/// purely by detector timeout, exactly like the in-process backends.
#[test]
fn tcp_wedge_is_evicted_by_collective_timeout() {
    let report = tcp_cluster(3).run_scenario("fault_wedge", &[]);
    for (rank, outcome) in report.outcomes().iter().enumerate() {
        let bytes = match outcome {
            RankOutcome::Completed(bytes) => bytes,
            other => panic!("rank {rank} did not complete: {other:?}"),
        };
        let verdict = Option::<Vec<bool>>::from_wire(bytes);
        if rank == 1 {
            assert_eq!(verdict, None, "the victim must wedge");
        } else {
            assert_eq!(
                verdict,
                Some(vec![true, false, true]),
                "rank {rank} verdict diverged"
            );
        }
    }
}

/// Seeded plans reproduce: the same seed yields the same fault at the
/// same operation, run after run, so every red run can be replayed.
#[test]
fn seeded_faults_reproduce_run_for_run() {
    for seed in [3, 17, 0xDEAD_BEEF] {
        let run_once = || {
            let plan = FaultPlan::randomized(seed, 4, 64);
            Cluster::new(ClusterSpec::uniform(4).with_network(NetworkSpec::zero_cost()))
                .run(|env| {
                    let mut faulty = FaultyComm::attach(env, &plan);
                    // A bounded all-to-all ring: every wait has a
                    // deadline, so no fault can deadlock the workload.
                    let outcome = catch_fault(|| {
                        let me = faulty.rank();
                        let p = faulty.size();
                        let mut received = Vec::new();
                        for step in 0..8u32 {
                            let next = (me + 1) % p;
                            let prev = (me + p - 1) % p;
                            faulty.post(next, Tag(5), Payload::from_u32(vec![step]));
                            if let Some(got) = faulty.recv_deadline(prev, Tag(5), 0.3) {
                                received.extend(got.into_u32());
                            }
                        }
                        received
                    });
                    match outcome {
                        Ok(received) => Ok(received),
                        Err(fault) => Err((fault.rank, fault.op)),
                    }
                })
                .into_results()
        };
        assert_eq!(run_once(), run_once(), "seed {seed} did not reproduce");
    }
}
