//! Fault injection and elastic recovery, end to end on both backends.
//!
//! The centerpiece is the deterministic recovery scenario the
//! fault-tolerance work promises: a 4-rank adaptive relaxation
//! checkpoints after every epoch; a seeded [`FaultPlan`] kills one rank
//! at a precisely aimed operation; the survivors detect the death
//! through the bounded membership probe, reach a collective verdict,
//! restore the last checkpoint onto a [`SurvivorComm`]-contracted
//! 3-rank world and finish the run — with final values **bitwise
//! identical** to an uninterrupted 3-rank continuation from the same
//! checkpoint, and to the sequential reference. The recovered run
//! executes under full protocol verification, so its traces must also
//! analyze clean.
//!
//! Around the centerpiece: the kill/stall/wedge matrix — a stalled rank
//! stays *alive* to the detector and numerically harmless, a wedged
//! (silent-but-running) rank is evicted by timeout exactly like a
//! crashed one, and seeded plans reproduce run-for-run.

use stance::executor::sequential_relaxation;
use stance::locality::meshgen;
use stance::prelude::*;
use stance_native::NativeCluster;
use stance_verify::{catch_fault, FaultKind, FaultPlan, FaultyComm};

/// Iterations per epoch.
const BLOCK: usize = 10;
/// Epochs in the scenario (each: probe → block → checkpoint).
const EPOCHS: usize = 4;
/// The epoch at whose membership probe the victim is killed.
const FAULT_EPOCH: usize = 2;
/// The rank the plan kills.
const VICTIM: usize = 2;

fn mesh() -> Graph {
    let raw = meshgen::triangulated_grid(12, 10, 0.4, 3);
    stance::prepare_mesh(&raw, OrderingMethod::Rcb).0
}

fn init(g: usize) -> f64 {
    (g as f64).cos() * 5.0
}

/// A detector fast enough for tests but patient enough (0.35 s total)
/// not to false-positive on a loaded CI host.
fn detector() -> DetectorConfig {
    DetectorConfig {
        timeout_secs: 0.05,
        retries: 2,
        backoff: 2.0,
    }
}

fn config() -> StanceConfig {
    StanceConfig::free()
        .with_recovery(RecoveryPolicy::RestoreAndShrink)
        .with_detector(detector())
}

/// Runs the epoch loop fault-free and returns this rank's operation
/// count at the start of each epoch's membership probe — the aiming
/// table for a kill that must land exactly on a probe boundary (where
/// every mailbox is drained, so survivors recover from a clean slate).
fn epoch_op_marks<C: Comm>(env: &mut C, m: &Graph) -> Vec<u64> {
    let cfg = config();
    let plan = FaultPlan::none();
    let mut faulty = FaultyComm::attach(env, &plan);
    let mut s = AdaptiveSession::setup(&mut faulty, m, RelaxationKernel, init, &cfg);
    let _ = s.checkpoint(&mut faulty, &[]);
    let mut marks = Vec::new();
    for _ in 0..EPOCHS {
        marks.push(faulty.ops());
        assert_eq!(
            probe_and_decide(&mut faulty, &cfg),
            RecoveryAction::Continue
        );
        s.run_block(&mut faulty, BLOCK);
        let _ = s.checkpoint(&mut faulty, &[]);
    }
    marks
}

/// The faulted scenario on one rank. Survivors return
/// `Some((new_rank, final_values, checkpoint_blob))`; the victim
/// returns `None` after its injected death is caught.
fn faulted_run<C: Comm>(env: &mut C, m: &Graph, kill_at: u64) -> Option<SurvivorOutcome> {
    let cfg = config();
    let plan = FaultPlan::kill(VICTIM, kill_at);
    let mut faulty = FaultyComm::attach(env, &plan);
    match catch_fault(|| drive(&mut faulty, m, &cfg)) {
        Ok(result) => result,
        Err(fault) => {
            assert_eq!(fault.rank, VICTIM, "only the planned victim may die");
            assert_eq!(fault.op, kill_at, "the kill must fire at the aimed op");
            assert!(matches!(fault.kind, FaultKind::Kill));
            None
        }
    }
}

/// One survivor's recovery outcome: its new (survivor-space) rank, final
/// local values, and the serialized checkpoint it restored from.
type SurvivorOutcome = (usize, Vec<f64>, Vec<u8>);

/// The epoch loop with shrink-onto-survivors recovery. Must mirror
/// [`epoch_op_marks`] operation-for-operation up to the fault.
fn drive<C: Comm>(env: &mut C, m: &Graph, cfg: &StanceConfig) -> Option<SurvivorOutcome> {
    let mut s = AdaptiveSession::setup(env, m, RelaxationKernel, init, cfg);
    let mut ckpt = s.checkpoint(env, &[]);
    for e in 0..EPOCHS {
        match probe_and_decide(env, cfg) {
            RecoveryAction::Continue => {
                s.run_block(env, BLOCK);
                ckpt = s.checkpoint(env, &[]);
            }
            RecoveryAction::Shrink { survivors } => {
                assert_eq!(e, FAULT_EPOCH, "the fault must surface at the aimed epoch");
                assert_eq!(survivors, vec![0, 1, 3], "exactly the victim is evicted");
                let mut sc = SurvivorComm::new(env, survivors);
                // The recovered run re-checks the whole SPMD contract:
                // audits after setup, every p2p event traced.
                let vcfg = cfg.clone().with_verification(true);
                let (mut r, aux) =
                    AdaptiveSession::restore(&mut sc, m, RelaxationKernel, &ckpt, &vcfg);
                assert!(aux.is_empty());
                for _ in e..EPOCHS {
                    r.run_block(&mut sc, BLOCK);
                }
                let diags = r.verify_protocol(&mut sc);
                assert!(
                    diags.is_empty(),
                    "recovered-run protocol diagnostics: {diags:?}"
                );
                return Some((sc.rank(), r.local_values().to_vec(), ckpt.to_bytes()));
            }
        }
    }
    unreachable!("the planned kill fires before the loop completes")
}

/// Checks a faulted run's outcome against (a) an uninterrupted 3-rank
/// continuation from the same checkpoint on the same backend and (b) the
/// sequential reference; `clean` runs that continuation.
fn check_recovery(
    m: &Graph,
    results: Vec<Option<SurvivorOutcome>>,
    clean: impl FnOnce(SessionCheckpoint<f64>) -> Vec<(Vec<f64>, BlockPartition)>,
) {
    assert!(results[VICTIM].is_none(), "the victim must die");
    let survivors: Vec<_> = results.into_iter().flatten().collect();
    assert_eq!(survivors.len(), 3, "three survivors must recover");
    assert!(
        survivors.windows(2).all(|w| w[0].2 == w[1].2),
        "the replicated checkpoint must be identical on every survivor"
    );
    let ckpt = SessionCheckpoint::<f64>::from_bytes(&survivors[0].2);
    assert_eq!(ckpt.num_procs(), 4, "the checkpoint predates the loss");

    let clean_results = clean(ckpt);
    for (new_rank, values, _) in &survivors {
        assert_eq!(
            values, &clean_results[*new_rank].0,
            "survivor {new_rank} diverged from the clean 3-rank continuation"
        );
    }
    let n = m.num_vertices();
    let mut expected: Vec<f64> = (0..n).map(init).collect();
    sequential_relaxation(m, &mut expected, EPOCHS * BLOCK);
    let partition = clean_results[0].1.clone();
    let blocks = clean_results.into_iter().map(|(v, _)| v).collect();
    assert_eq!(
        reassemble(&partition, blocks),
        expected,
        "recovered computation diverged from the sequential reference"
    );
}

/// The acceptance scenario on the virtual-time simulator.
#[test]
fn sim_kill_recovery_matches_uninterrupted_shrink() {
    let m = mesh();
    let spec4 = || ClusterSpec::uniform(4).with_network(NetworkSpec::zero_cost());
    let kill_at = Cluster::new(spec4())
        .run(|env| epoch_op_marks(env, &m))
        .into_results()[VICTIM][FAULT_EPOCH];

    let results = Cluster::new(spec4())
        .run(|env| faulted_run(env, &m, kill_at))
        .into_results();
    let cfg = config();
    check_recovery(&m, results, |ckpt| {
        Cluster::new(ClusterSpec::uniform(3).with_network(NetworkSpec::zero_cost()))
            .run(|env| {
                let (mut s, _) = AdaptiveSession::restore(env, &m, RelaxationKernel, &ckpt, &cfg);
                for _ in FAULT_EPOCH..EPOCHS {
                    s.run_block(env, BLOCK);
                }
                (s.local_values().to_vec(), s.partition().clone())
            })
            .into_results()
    });
}

/// The same scenario on the native thread-pool backend (wall-clock
/// timeouts, OS threads, real sleeps).
#[test]
fn native_kill_recovery_matches_uninterrupted_shrink() {
    let m = mesh();
    let kill_at = NativeCluster::new(4)
        .run(|comm| epoch_op_marks(comm, &m))
        .into_results()[VICTIM][FAULT_EPOCH];

    let results = NativeCluster::new(4)
        .run(|comm| faulted_run(comm, &m, kill_at))
        .into_results();
    let cfg = config();
    check_recovery(&m, results, |ckpt| {
        NativeCluster::new(3)
            .run(|comm| {
                let (mut s, _) = AdaptiveSession::restore(comm, &m, RelaxationKernel, &ckpt, &cfg);
                for _ in FAULT_EPOCH..EPOCHS {
                    s.run_block(comm, BLOCK);
                }
                (s.local_values().to_vec(), s.partition().clone())
            })
            .into_results()
    });
}

/// The two backends aim the kill identically: the operation count at
/// each epoch boundary is a property of the SPMD program, not of the
/// backend executing it.
#[test]
fn epoch_op_marks_agree_across_backends() {
    let m = mesh();
    let sim_marks = Cluster::new(ClusterSpec::uniform(4).with_network(NetworkSpec::zero_cost()))
        .run(|env| epoch_op_marks(env, &m))
        .into_results();
    let native_marks = NativeCluster::new(4)
        .run(|comm| epoch_op_marks(comm, &m))
        .into_results();
    assert_eq!(
        sim_marks, native_marks,
        "op accounting diverged across backends"
    );
}

/// A stalled rank is slow, not dead: the membership probe stays
/// unanimous and the block's values are bitwise unaffected.
#[test]
fn stall_is_alive_to_the_detector_and_numerically_free() {
    let m = mesh();
    let n = m.num_vertices();
    let mut expected: Vec<f64> = (0..n).map(init).collect();
    sequential_relaxation(&m, &mut expected, BLOCK);

    let plan = FaultPlan::stall(1, 8, 2.0e-3);
    let spec = ClusterSpec::uniform(3).with_network(NetworkSpec::zero_cost());
    let report = Cluster::new(spec).run(|env| {
        let mut faulty = FaultyComm::attach(env, &plan);
        let cfg = config();
        let mut s = AdaptiveSession::setup(&mut faulty, &m, RelaxationKernel, init, &cfg);
        let alive = probe_membership(&mut faulty, &detector());
        s.run_block(&mut faulty, BLOCK);
        (alive, s.local_values().to_vec(), s.partition().clone())
    });
    let results: Vec<_> = report.into_results();
    for (alive, _, _) in &results {
        assert_eq!(
            alive,
            &vec![true; 3],
            "a stalled rank must stay in the group"
        );
    }
    let partition = results[0].2.clone();
    let blocks = results.into_iter().map(|(_, v, _)| v).collect();
    assert_eq!(
        reassemble(&partition, blocks),
        expected,
        "stall changed values"
    );
}

/// A wedged rank — silent but still running — is evicted by timeout
/// with the same collective verdict as a crash. This exercises the
/// "died between rounds" detector path: the victim's heartbeats go out
/// before the wedge fires, so round 1 sees it alive and round 2's
/// verdict wait is what times out.
#[test]
fn wedge_is_evicted_by_collective_timeout() {
    let det = detector();
    // The victim's probe ops: two heartbeat posts (ops 0, 1), then the
    // wedge fires on its first bounded receive (op 2).
    let plan = FaultPlan::wedge(1, 2);
    let report = Cluster::new(ClusterSpec::uniform(3)).run(|env| {
        let mut faulty = FaultyComm::attach(env, &plan);
        match catch_fault(|| probe_membership(&mut faulty, &det)) {
            Ok(alive) => Some(alive),
            Err(fault) => {
                assert_eq!(fault.rank, 1);
                assert!(matches!(fault.kind, FaultKind::Wedge));
                // Wedged, not dead: hold the mailboxes open past the
                // survivors' patience window so eviction happens by
                // timeout, not by disconnection.
                std::thread::sleep(std::time::Duration::from_secs_f64(
                    det.total_patience_secs() * 2.0,
                ));
                None
            }
        }
    });
    for (rank, alive) in report.into_results().into_iter().enumerate() {
        if rank == 1 {
            assert_eq!(alive, None, "the victim must wedge");
        } else {
            assert_eq!(
                alive,
                Some(vec![true, false, true]),
                "rank {rank} verdict diverged"
            );
        }
    }
}

/// Seeded plans reproduce: the same seed yields the same fault at the
/// same operation, run after run, so every red run can be replayed.
#[test]
fn seeded_faults_reproduce_run_for_run() {
    for seed in [3, 17, 0xDEAD_BEEF] {
        let run_once = || {
            let plan = FaultPlan::randomized(seed, 4, 64);
            Cluster::new(ClusterSpec::uniform(4).with_network(NetworkSpec::zero_cost()))
                .run(|env| {
                    let mut faulty = FaultyComm::attach(env, &plan);
                    // A bounded all-to-all ring: every wait has a
                    // deadline, so no fault can deadlock the workload.
                    let outcome = catch_fault(|| {
                        let me = faulty.rank();
                        let p = faulty.size();
                        let mut received = Vec::new();
                        for step in 0..8u32 {
                            let next = (me + 1) % p;
                            let prev = (me + p - 1) % p;
                            faulty.post(next, Tag(5), Payload::from_u32(vec![step]));
                            if let Some(got) = faulty.recv_deadline(prev, Tag(5), 0.3) {
                                received.extend(got.into_u32());
                            }
                        }
                        received
                    });
                    match outcome {
                        Ok(received) => Ok(received),
                        Err(fault) => Err((fault.rank, fault.op)),
                    }
                })
                .into_results()
        };
        assert_eq!(run_once(), run_once(), "seed {seed} did not reproduce");
    }
}
