//! Pins the `stance::verify` re-export surface the README documents:
//! downstream users reach the whole verifier through the `stance` facade
//! without naming `stance-verify` in their manifest.

use stance::onedim::Interval;
use stance::prelude::*;
use stance::verify::{
    analyze_traces, audit_schedules, CheckedComm, Diagnostic, DiagnosticKind, RankTrace,
    ScheduleSummary,
};

#[test]
fn facade_paths_resolve_and_work() {
    // Protocol checker through the facade, end to end on the simulator.
    let spec = ClusterSpec::uniform(2).with_network(NetworkSpec::zero_cost());
    let report = Cluster::new(spec).run(|env| {
        let mut trace = RankTrace::new(env.rank(), env.size());
        let mut checked = CheckedComm::attach(env, &mut trace);
        let peer = 1 - checked.rank();
        if checked.rank() == 0 {
            checked.send(peer, Tag(1), Payload::from_u32(vec![7]));
        } else {
            let _ = checked.recv(peer, Tag(1));
        }
        checked.barrier();
        trace
    });
    let traces: Vec<RankTrace> = report.into_results();
    let diags: Vec<Diagnostic> = analyze_traces(&traces);
    assert!(diags.is_empty(), "{diags:?}");

    // Static audit through the facade: a two-rank gap is diagnosed.
    let summaries = vec![
        ScheduleSummary {
            rank: 0,
            interval: Interval::new(0, 4),
            index_space: 10,
            sends: vec![],
            recvs: vec![],
        },
        ScheduleSummary {
            rank: 1,
            interval: Interval::new(6, 10),
            index_space: 10,
            sends: vec![],
            recvs: vec![],
        },
    ];
    let diags = audit_schedules(&summaries);
    assert!(
        diags.iter().any(|d| d.kind == DiagnosticKind::IntervalGap),
        "{diags:?}"
    );
}
