//! Wire-format negative tests for the TCP process backend, run against
//! **live loopback sockets** through the transport's public API.
//!
//! The robustness contract under test: any garbage a socket can carry —
//! wrong magic, wrong protocol version, truncated handshakes, absurd or
//! impossible length prefixes, unknown payload kinds, torn payloads —
//! produces a *structured* [`WireError`] and a clean disconnect. Never a
//! panic, never a hang, and never an allocation sized by attacker-chosen
//! bytes (the length prefix is validated **before** any buffer is
//! reserved). The same tests pin down the timing edges: a deadline
//! expiring mid-frame is suspicion (the partial bytes stay buffered and
//! the frame is delivered intact later), peer death mid-frame is proof,
//! and the connect-phase backoff is capped so rendezvous polling can
//! neither spin nor sleep unboundedly.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

use stance::prelude::{Payload, Tag};
use stance_tcp::wire::{
    self, Backoff, WireError, FRAME_OVERHEAD, HANDSHAKE_LEN, KIND_HELLO, KIND_PEER, MAX_FRAME,
    PROTOCOL_VERSION,
};
use stance_tcp::{PeerLink, RecvTimeoutError};

/// One connected loopback socket pair.
fn pair() -> (TcpStream, TcpStream) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let client = TcpStream::connect(addr).expect("connect loopback");
    let (server, _) = listener.accept().expect("accept loopback");
    (client, server)
}

/// Writes raw bytes from a rogue peer, closes the connection, and
/// returns the fault a [`PeerLink`] reports for them. Asserts the
/// structured-failure contract along the way: the first receive reports
/// `Disconnected` (proof, not suspicion), the link records the *first*
/// error it saw, every later receive keeps failing without touching the
/// socket, and the whole exchange is prompt — no hang, no retry spin.
fn fault_from_rogue_bytes(bytes: &[u8]) -> WireError {
    let (attacker, victim) = pair();
    let mut link = PeerLink::new(victim).expect("wrap victim socket");
    let mut attacker = attacker;
    attacker.write_all(bytes).expect("rogue write");
    drop(attacker);

    let started = Instant::now();
    assert!(link.recv().is_err(), "garbage must not decode to a message");
    let fault = link
        .fault()
        .expect("broken link must record a fault")
        .clone();
    // Sticky: the link is dead for good, and says so immediately.
    assert!(link.recv().is_err(), "fault must be sticky");
    assert_eq!(link.fault(), Some(&fault), "first error must be preserved");
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "rejection must be prompt, not a hang"
    );
    fault
}

#[test]
fn bad_magic_is_a_structured_rejection() {
    let mut hs = wire::encode_handshake(KIND_HELLO, 0, 2, 0);
    hs[0] ^= 0xFF;
    let got = u32::from_le_bytes(hs[0..4].try_into().expect("fixed slice"));
    assert_eq!(
        wire::decode_handshake(&hs, 2),
        Err(WireError::BadMagic { got }),
        "an HTTP client, a port scanner, or line noise must be named as such"
    );
}

#[test]
fn version_mismatch_is_a_structured_rejection() {
    let mut hs = wire::encode_handshake(KIND_PEER, 1, 4, 0);
    let future = PROTOCOL_VERSION + 1;
    hs[4..6].copy_from_slice(&future.to_le_bytes());
    assert_eq!(
        wire::decode_handshake(&hs, 4),
        Err(WireError::VersionMismatch {
            got: future,
            expected: PROTOCOL_VERSION
        }),
        "a newer worker must be turned away by name, not by garbled frames"
    );
}

#[test]
fn alien_universe_and_rank_are_structured_rejections() {
    let hs = wire::encode_handshake(KIND_HELLO, 0, 8, 0);
    assert_eq!(
        wire::decode_handshake(&hs, 4),
        Err(WireError::UniverseMismatch {
            got: 8,
            expected: 4
        }),
        "a worker from another launch must not join this one"
    );
    let hs = wire::encode_handshake(KIND_PEER, 7, 4, 0);
    assert_eq!(
        wire::decode_handshake(&hs, 4),
        Err(WireError::RankOutOfRange { rank: 7, size: 4 }),
    );
    let hs = wire::encode_handshake(9, 0, 4, 0);
    assert_eq!(
        wire::decode_handshake(&hs, 4),
        Err(WireError::BadHandshakeKind { got: 9 }),
    );
}

/// A peer that dies mid-handshake (or a client that sends a short blurb
/// and hangs up) must cost the acceptor one bounded read, not a stall.
#[test]
fn truncated_handshake_never_hangs_the_acceptor() {
    let (mut rogue, mut acceptor) = pair();
    acceptor
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("bound the read");
    rogue.write_all(&[0x53, 0x54, 0x4E]).expect("partial write");
    drop(rogue); // hang up mid-handshake

    let started = Instant::now();
    let mut buf = [0u8; HANDSHAKE_LEN];
    let err = acceptor
        .read_exact(&mut buf)
        .expect_err("a truncated handshake must not decode");
    assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    assert!(started.elapsed() < Duration::from_secs(5), "must not hang");
}

/// The attacker claims a 4 GiB frame is coming. The length check runs
/// before any buffer is reserved, so the link breaks with the prefix
/// named in the error and process memory never moves.
#[test]
fn absurd_length_prefix_is_rejected_before_allocation() {
    let fault = fault_from_rogue_bytes(&u32::MAX.to_le_bytes());
    assert_eq!(
        fault,
        WireError::FrameTooLarge {
            len: u32::MAX,
            max: MAX_FRAME
        }
    );
}

/// One past the cap is as dead as 4 GiB: the bound is exact.
#[test]
fn just_past_max_frame_is_rejected() {
    let fault = fault_from_rogue_bytes(&(MAX_FRAME + 1).to_le_bytes());
    assert_eq!(
        fault,
        WireError::FrameTooLarge {
            len: MAX_FRAME + 1,
            max: MAX_FRAME
        }
    );
}

/// A length too short to even hold the frame header is impossible, not
/// merely empty — accepting it would desynchronize the stream forever.
#[test]
fn impossible_short_length_prefix_is_rejected() {
    let fault = fault_from_rogue_bytes(&2u32.to_le_bytes());
    assert_eq!(fault, WireError::FrameTooShort { len: 2 });
}

/// A well-framed message of an unknown payload kind breaks the link with
/// the kind named — the receiver must not guess at bytes it cannot type.
#[test]
fn unknown_payload_kind_is_rejected() {
    let mut frame = FRAME_OVERHEAD.to_le_bytes().to_vec();
    frame.push(200); // no such payload kind
    frame.extend_from_slice(&7u32.to_le_bytes()); // tag
    let fault = fault_from_rogue_bytes(&frame);
    assert_eq!(fault, WireError::BadPayloadKind { got: 200 });
}

/// An `F64` payload whose byte count is not a multiple of eight cannot
/// be reassembled into the values the sender meant — torn, by name.
#[test]
fn torn_payload_is_rejected() {
    let body = 12u32; // one-and-a-half f64s
    let mut frame = (FRAME_OVERHEAD + body).to_le_bytes().to_vec();
    frame.push(1); // kind: F64
    frame.extend_from_slice(&3u32.to_le_bytes()); // tag
    frame.extend_from_slice(&[0xAB; 12]);
    let fault = fault_from_rogue_bytes(&frame);
    assert_eq!(fault, WireError::TornPayload { kind: 1, bytes: 12 });
}

/// Valid traffic already buffered ahead of the garbage is still
/// delivered — death never destroys evidence that arrived intact.
#[test]
fn valid_frames_ahead_of_garbage_are_still_delivered() {
    let (mut attacker, victim) = pair();
    let mut link = PeerLink::new(victim).expect("wrap victim socket");
    let mut good = Vec::new();
    wire::encode_frame(Tag(9), &Payload::from_u32(vec![1, 2, 3]), &mut good);
    good.extend_from_slice(&u32::MAX.to_le_bytes()); // then the lie
    attacker.write_all(&good).expect("write frame + garbage");
    drop(attacker);

    let msg = link.recv().expect("the intact frame must be delivered");
    assert_eq!(msg.tag, Tag(9));
    assert_eq!(msg.payload.into_u32(), vec![1, 2, 3]);
    assert!(link.recv().is_err(), "then the link is dead");
    assert_eq!(
        link.fault(),
        Some(&WireError::FrameTooLarge {
            len: u32::MAX,
            max: MAX_FRAME
        })
    );
}

/// A deadline expiring mid-frame is *suspicion*: the link stays healthy,
/// the partial bytes stay buffered, and when the rest of the frame
/// arrives it is delivered intact. This is the edge the accumulator
/// exists for — a slow sender straddling a deadline must never tear.
#[test]
fn deadline_mid_frame_is_suspicion_and_the_frame_survives() {
    let (mut sender, receiver) = pair();
    let mut link = PeerLink::new(receiver).expect("wrap receiver socket");
    let mut frame = Vec::new();
    wire::encode_frame(Tag(4), &Payload::from_f64(vec![1.5, -2.5]), &mut frame);
    let split = frame.len() / 2;
    sender.write_all(&frame[..split]).expect("first half");

    let verdict = link.recv_deadline(Instant::now() + Duration::from_millis(50));
    assert!(
        matches!(verdict, Err(RecvTimeoutError::TimedOut)),
        "mid-frame deadline must be TimedOut (suspicion), got {verdict:?}"
    );
    assert!(link.fault().is_none(), "a timeout must not break the link");

    sender.write_all(&frame[split..]).expect("second half");
    let msg = link
        .recv_deadline(Instant::now() + Duration::from_secs(5))
        .expect("completed frame must arrive intact");
    assert_eq!(msg.tag, Tag(4));
    assert_eq!(msg.payload.into_f64(), vec![1.5, -2.5]);
}

/// Peer death mid-frame is *proof*: the half-frame can never complete,
/// so the receive reports `Disconnected` — the verdict the failure
/// detector consumes — rather than timing out forever.
#[test]
fn peer_death_mid_frame_is_proof() {
    let (mut sender, receiver) = pair();
    let mut link = PeerLink::new(receiver).expect("wrap receiver socket");
    let mut frame = Vec::new();
    wire::encode_frame(Tag(2), &Payload::from_u64(vec![42]), &mut frame);
    sender
        .write_all(&frame[..frame.len() - 3])
        .expect("almost all of it");
    drop(sender); // SIGKILL's view from the other end: reset, mid-frame

    let verdict = link.recv_deadline(Instant::now() + Duration::from_secs(5));
    assert!(
        matches!(verdict, Err(RecvTimeoutError::Disconnected)),
        "death mid-frame must be Disconnected (proof), got {verdict:?}"
    );
    assert!(link.fault().is_some(), "the link must record the death");
}

/// The rendezvous backoff is clamped on both sides: never below `base`
/// (a retry loop cannot busy-spin) and never above `cap` (a late peer is
/// polled at a fixed polite rate, not slept past). Huge attempt numbers
/// must not overflow into panic or zero.
#[test]
fn backoff_is_clamped_at_both_ends() {
    let b = Backoff::default();
    let mut last = Duration::ZERO;
    for attempt in 0..40 {
        let d = b.delay(attempt);
        assert!(d >= b.base, "attempt {attempt}: below base");
        assert!(d <= b.cap, "attempt {attempt}: above cap");
        assert!(d >= last, "attempt {attempt}: delays must not shrink");
        last = d;
    }
    assert_eq!(b.delay(10_000), b.cap, "huge attempts must pin at the cap");
}

/// Dialing a port nobody listens on gives up within the stated budget —
/// with an error, not a panic, and without sleeping far past it.
#[test]
fn connect_backoff_gives_up_within_budget() {
    // Bind-then-drop yields a port that was just proven unoccupied.
    let addr = {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind probe");
        listener.local_addr().expect("local addr")
    };
    let budget = Duration::from_millis(300);
    let started = Instant::now();
    let res = wire::connect_with_backoff(addr, budget, Backoff::default());
    assert!(res.is_err(), "nobody listens there");
    assert!(
        started.elapsed() < budget + Duration::from_secs(5),
        "give-up must track the budget"
    );
}
