//! Pins the transport's allocation-free steady state: after a short
//! warm-up, `LoopRunner` iterations (gather + sweep + commit) perform
//! **zero heap allocations** on any rank — on the synchronous gather path
//! and on the split-phase (overlapped) path alike. The split-phase state
//! that must not allocate per iteration: receive-request handles come
//! from the recycled pool in `CommBuffers` (plain `Copy` records, pool
//! pre-sized from the schedule), send staging rides the same recycled
//! byte buffers as the synchronous path, and the double-buffered commit
//! swaps `Vec` pointers instead of copying.
//!
//! A counting global allocator wraps the system allocator; counting is
//! armed between cluster-wide barriers so the measured window contains
//! nothing but steady-state iterations on every rank (no setup, no
//! teardown, no thread exit). Warm-up matters: recycled message buffers
//! circulate through a fixed send/receive cycle across ranks and their
//! capacities converge within a few laps, after which nothing in the path
//! allocates — not the codecs (in-place `unpack_into`), not the staging
//! (`CommBuffers` recycling), not the mailboxes (warm `VecDeque`s).
//!
//! The same discipline now covers the **remap path**: the session's
//! `RemapScratch` recycles the redistribution plan, message staging,
//! destination blocks, adjacency CSR storage and the schedule-builder
//! scratch across remaps, and the runner/value buffers rebuild in place.
//! The `remap_allocations_*` tests drive N forced remaps oscillating
//! between two partitions and pin that per-remap allocation counts
//! converge to **zero** on both backends (the first pairs warm the pools;
//! everything after is allocation-free).
//!
//! **Worker teams** join the same discipline: with `with_team(T)` the
//! rank's sweeps split across parked worker threads writing recycled
//! staging buffers, dispatched through a borrowed-closure handshake (no
//! boxing, no channels) — so teamed steady-state iterations allocate
//! exactly as much as single-lane ones: nothing.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use stance::inspector::{build_schedule_symmetric, LocalAdjacency};
use stance::locality::meshgen;
use stance::prelude::*;

/// Counts allocation events (alloc/realloc/alloc_zeroed) while armed.
/// Deallocations are free and not counted.
struct CountingAllocator;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// The counter is process-global, so tests that arm it must not overlap.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn steady_state_allocations<E, K>(
    kernel: K,
    overlap: bool,
    team: usize,
    init: impl Fn(usize) -> E + Sync,
) -> u64
where
    E: Field,
    K: Kernel<E> + Copy + Send + Sync,
{
    let _serial = SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let g = meshgen::triangulated_grid(16, 12, 0.3, 5);
    let n = g.num_vertices();
    let p = 3;
    let part = BlockPartition::uniform(n, p);
    let spec = ClusterSpec::uniform(p).with_network(NetworkSpec::zero_cost());
    let report = Cluster::new(spec).run(|env| {
        let rank = env.rank();
        let adj = LocalAdjacency::extract(&g, &part, rank);
        let (sched, _) = build_schedule_symmetric(&part, &adj, rank, ScheduleStrategy::Sort2);
        let mut runner = LoopRunner::new(sched, &adj, ComputeCostModel::zero(), kernel)
            .with_overlap(overlap)
            .with_team(team);
        let iv = part.interval_of(rank);
        let mut values = runner.make_values(iv.iter().map(&init).collect());

        // Warm-up: let mailbox deques and the recycled-buffer cycle reach
        // their fixed point (buffer capacities converge within a few laps
        // of the send/receive cycle).
        runner.run(env, &mut values, 12);

        // Arm the counter with every rank quiescent on both sides.
        env.barrier();
        if rank == 0 {
            ALLOCATIONS.store(0, Ordering::SeqCst);
            ARMED.store(true, Ordering::SeqCst);
        }
        env.barrier();

        runner.run(env, &mut values, 8);

        // Disarm before any rank leaves the closure (thread teardown and
        // report assembly may allocate; they are not the steady state).
        env.barrier();
        let counted = if rank == 0 {
            let counted = ALLOCATIONS.load(Ordering::SeqCst);
            ARMED.store(false, Ordering::SeqCst);
            counted
        } else {
            0
        };
        env.barrier();
        counted
    });
    report.into_results().into_iter().max().unwrap()
}

/// The same measurement on the native thread-pool backend: the executor's
/// zero-copy path (`pack_into`/`unpack_into`, recycled `CommBuffers`,
/// warm mailboxes) is backend-independent, so steady-state iterations on
/// real OS threads allocate nothing either.
fn native_steady_state_allocations<E, K>(
    kernel: K,
    overlap: bool,
    team: usize,
    init: impl Fn(usize) -> E + Sync,
) -> u64
where
    E: Field,
    K: Kernel<E> + Copy + Send + Sync,
{
    let _serial = SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let g = meshgen::triangulated_grid(16, 12, 0.3, 5);
    let n = g.num_vertices();
    let p = 3;
    let part = BlockPartition::uniform(n, p);
    let report = stance_native::NativeCluster::new(p).run(|comm| {
        let rank = comm.rank();
        let adj = LocalAdjacency::extract(&g, &part, rank);
        let (sched, _) = build_schedule_symmetric(&part, &adj, rank, ScheduleStrategy::Sort2);
        let mut runner = LoopRunner::new(sched, &adj, ComputeCostModel::zero(), kernel)
            .with_overlap(overlap)
            .with_team(team);
        let iv = part.interval_of(rank);
        let mut values = runner.make_values(iv.iter().map(&init).collect());

        runner.run(comm, &mut values, 12);

        comm.barrier();
        if rank == 0 {
            ALLOCATIONS.store(0, Ordering::SeqCst);
            ARMED.store(true, Ordering::SeqCst);
        }
        comm.barrier();

        runner.run(comm, &mut values, 8);

        comm.barrier();
        let counted = if rank == 0 {
            let counted = ALLOCATIONS.load(Ordering::SeqCst);
            ARMED.store(false, Ordering::SeqCst);
            counted
        } else {
            0
        };
        comm.barrier();
        counted
    });
    report.into_results().into_iter().max().unwrap()
}

/// Per-remap allocation counts for `n_remaps` forced remaps oscillating
/// between two partitions, on the simulator backend. Counting is armed
/// around each `remap_to` only (between cluster-wide barriers), so each
/// entry is the whole cluster's allocation count for exactly one remap —
/// redistribution, adjacency move, schedule rebuild, runner rebuild and
/// value-buffer rebuild included.
fn remap_allocation_body<E, K, C>(
    comm: &mut C,
    g: &Graph,
    kernel: K,
    init: &(impl Fn(usize) -> E + Sync),
    n_remaps: usize,
) -> Vec<u64>
where
    E: Field,
    K: Kernel<E> + Copy + Send + Sync,
    C: Comm,
{
    let n = g.num_vertices();
    let part_a = BlockPartition::from_sizes(&[n / 2, n / 4, n - n / 2 - n / 4]);
    let part_b = BlockPartition::from_sizes(&[n / 4, n - n / 2 - n / 4, n / 2]);
    let config = StanceConfig::free();
    let rank = comm.rank();
    let mut s = AdaptiveSession::setup(comm, g, kernel, init, &config);
    let mut counts = Vec::with_capacity(n_remaps);
    for i in 0..n_remaps {
        // Clone the target outside the armed window.
        let target = if i % 2 == 0 {
            part_a.clone()
        } else {
            part_b.clone()
        };
        // A couple of steady-state iterations between remaps keep the
        // transport in its realistic warm state.
        s.run_block(comm, 2);

        comm.barrier();
        if rank == 0 {
            ALLOCATIONS.store(0, Ordering::SeqCst);
            ARMED.store(true, Ordering::SeqCst);
        }
        comm.barrier();

        s.remap_to(comm, target, &mut []);

        comm.barrier();
        let counted = if rank == 0 {
            let counted = ALLOCATIONS.load(Ordering::SeqCst);
            ARMED.store(false, Ordering::SeqCst);
            counted
        } else {
            0
        };
        comm.barrier();
        counts.push(counted);
    }
    counts
}

fn remap_allocations<E, K>(kernel: K, init: impl Fn(usize) -> E + Sync, n_remaps: usize) -> Vec<u64>
where
    E: Field,
    K: Kernel<E> + Copy + Send + Sync,
{
    let _serial = SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let g = meshgen::triangulated_grid(16, 12, 0.3, 5);
    let spec = ClusterSpec::uniform(3).with_network(NetworkSpec::zero_cost());
    let report =
        Cluster::new(spec).run(|env| remap_allocation_body(env, &g, kernel, &init, n_remaps));
    let per_rank: Vec<Vec<u64>> = report.into_results();
    (0..n_remaps)
        .map(|i| per_rank.iter().map(|c| c[i]).max().unwrap())
        .collect()
}

/// The same measurement (same body) on the native thread-pool backend.
fn native_remap_allocations<E, K>(
    kernel: K,
    init: impl Fn(usize) -> E + Sync,
    n_remaps: usize,
) -> Vec<u64>
where
    E: Field,
    K: Kernel<E> + Copy + Send + Sync,
{
    let _serial = SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let g = meshgen::triangulated_grid(16, 12, 0.3, 5);
    let report = stance_native::NativeCluster::new(3)
        .run(|comm| remap_allocation_body(comm, &g, kernel, &init, n_remaps));
    let per_rank: Vec<Vec<u64>> = report.into_results();
    (0..n_remaps)
        .map(|i| per_rank.iter().map(|c| c[i]).max().unwrap())
        .collect()
}

/// Steady-state passes of a **multi-field dataflow session** — two
/// relaxation stages over three named fields, fused (dirty-filtered)
/// exchange, synchronous or split-phase — must be allocation-free too:
/// the fused gather packs every selected field into the same recycled
/// `CommBuffers` staging as the single-field path, the dirty-filtered
/// fusion group lives in a recycled index `Vec`, and each stage commits
/// by swapping the shared sweep scratch into the output field's storage.
fn dataflow_steady_state_body<C: Comm>(comm: &mut C, g: &Graph, overlap: bool) -> u64 {
    let rank = comm.rank();
    let config = StanceConfig::free()
        .without_load_balancing()
        .with_overlap(overlap);
    let graph = StageGraphBuilder::new()
        .field("y")
        .field("z")
        .field("inert")
        .stage("relax_y", RelaxationKernel, "y", "y")
        .stage("relax_z", RelaxationKernel, "z", "z")
        .build();
    let mut s = DataflowSession::setup(
        comm,
        g,
        graph,
        |name, v| {
            if name == "z" {
                -(v as f64)
            } else {
                (v as f64).sin()
            }
        },
        &config,
    );

    s.run_block(comm, 12);

    comm.barrier();
    if rank == 0 {
        ALLOCATIONS.store(0, Ordering::SeqCst);
        ARMED.store(true, Ordering::SeqCst);
    }
    comm.barrier();

    s.run_block(comm, 8);

    comm.barrier();
    let counted = if rank == 0 {
        let counted = ALLOCATIONS.load(Ordering::SeqCst);
        ARMED.store(false, Ordering::SeqCst);
        counted
    } else {
        0
    };
    comm.barrier();
    counted
}

fn dataflow_steady_state_allocations(overlap: bool) -> u64 {
    let _serial = SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let g = meshgen::triangulated_grid(16, 12, 0.3, 5);
    let spec = ClusterSpec::uniform(3).with_network(NetworkSpec::zero_cost());
    let report = Cluster::new(spec).run(|env| dataflow_steady_state_body(env, &g, overlap));
    report.into_results().into_iter().max().unwrap()
}

fn native_dataflow_steady_state_allocations(overlap: bool) -> u64 {
    let _serial = SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let g = meshgen::triangulated_grid(16, 12, 0.3, 5);
    let report = stance_native::NativeCluster::new(3)
        .run(|comm| dataflow_steady_state_body(comm, &g, overlap));
    report.into_results().into_iter().max().unwrap()
}

/// Remap allocations must be *bounded and converge to zero*: the first
/// oscillation pairs warm the `RemapScratch` (pools, plan, CSR storage,
/// schedule scratch, runner storage) with a strictly shrinking allocation
/// count, and from the third pair on a forced remap performs **no heap
/// allocations at all** — the remap path has joined the steady-state loop
/// in being allocation-free, and its cost cannot grow with how many
/// remaps the run has already done. (Measured on both backends:
/// `[82, 23, 9, 6, 0, 0, …]` for this workload.)
fn assert_remap_allocations_bounded(counts: &[u64], what: &str) {
    let warmup = counts[..2].iter().copied().max().unwrap();
    for (i, &c) in counts.iter().enumerate().skip(2) {
        assert!(
            c <= warmup,
            "{what}: remap {i} allocated {c} > warm-up bound {warmup} (all: {counts:?})"
        );
    }
    assert!(
        counts.len() >= 6,
        "need at least 6 remaps to check steadiness"
    );
    for (i, &c) in counts.iter().enumerate().skip(4) {
        assert_eq!(
            c, 0,
            "{what}: remap {i} still allocated after warm-up (all: {counts:?})"
        );
    }
}

/// "Disabled" verification must mean *absent*, not "present but quiet":
/// with `StanceConfig::free()` (verification off, the default) a full
/// session lifecycle — setup, steady-state iterations, a forced remap —
/// must never even **construct** a `CheckedComm`. The verify crate keeps a
/// process-global construction counter precisely so this file can pin the
/// zero-overhead claim structurally, alongside the allocation counts that
/// pin it behaviourally.
#[test]
fn disabled_verification_never_constructs_checked_comm() {
    let _serial = SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let before = stance_verify::checked_comm_constructions();
    let g = meshgen::triangulated_grid(12, 9, 0.3, 5);
    let n = g.num_vertices();
    let spec = ClusterSpec::uniform(3).with_network(NetworkSpec::zero_cost());
    Cluster::new(spec).run(|env| {
        let config = StanceConfig::free();
        let mut s =
            AdaptiveSession::setup(env, &g, RelaxationKernel, |g| (g as f64).sin(), &config);
        s.run_block(env, 6);
        s.remap_to(
            env,
            BlockPartition::from_sizes(&[n / 4, n / 4, n - 2 * (n / 4)]),
            &mut [],
        );
        s.run_block(env, 6);
    });
    let after = stance_verify::checked_comm_constructions();
    assert_eq!(
        before, after,
        "a CheckedComm was constructed during a verification-off run"
    );
}

/// Fault injection must be free when no fault fires: the same
/// steady-state measurement with every `Comm` call routed through a
/// `FaultyComm` carrying an **empty** plan still performs zero heap
/// allocations. The wrapper's per-op work is a counter increment and a
/// `None` check against the (empty) event queue — arming a session for
/// fault-tolerance costs nothing until a fault actually fires.
#[test]
fn steady_state_under_armed_fault_injection_is_allocation_free() {
    let _serial = SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let g = meshgen::triangulated_grid(16, 12, 0.3, 5);
    let n = g.num_vertices();
    let p = 3;
    let part = BlockPartition::uniform(n, p);
    let spec = ClusterSpec::uniform(p).with_network(NetworkSpec::zero_cost());
    let plan = stance_verify::FaultPlan::none();
    let report = Cluster::new(spec).run(|env| {
        let rank = env.rank();
        // Wrap the transport exactly as a fault-tolerant run would —
        // attachment (which clones the plan's event list) happens before
        // the armed window.
        let mut faulty = stance_verify::FaultyComm::attach(env, &plan);
        let adj = LocalAdjacency::extract(&g, &part, rank);
        let (sched, _) = build_schedule_symmetric(&part, &adj, rank, ScheduleStrategy::Sort2);
        let mut runner = LoopRunner::new(sched, &adj, ComputeCostModel::zero(), RelaxationKernel)
            .with_overlap(false);
        let iv = part.interval_of(rank);
        let mut values = runner.make_values(iv.iter().map(|g| (g as f64).sin()).collect());

        runner.run(&mut faulty, &mut values, 12);

        faulty.barrier();
        if rank == 0 {
            ALLOCATIONS.store(0, Ordering::SeqCst);
            ARMED.store(true, Ordering::SeqCst);
        }
        faulty.barrier();

        runner.run(&mut faulty, &mut values, 8);

        faulty.barrier();
        let counted = if rank == 0 {
            let counted = ALLOCATIONS.load(Ordering::SeqCst);
            ARMED.store(false, Ordering::SeqCst);
            counted
        } else {
            0
        };
        faulty.barrier();
        (counted, faulty.ops())
    });
    let (counts, ops): (Vec<u64>, Vec<u64>) = report.into_results().into_iter().unzip();
    let allocations = counts.into_iter().max().unwrap();
    assert_eq!(
        allocations, 0,
        "steady-state iterations under a never-firing FaultyComm performed {allocations} heap allocations"
    );
    // Sanity: the wrapper really was in the path (every op ticked it).
    assert!(ops.iter().all(|&o| o > 0), "FaultyComm saw no operations");
}

#[test]
fn dataflow_steady_state_is_allocation_free() {
    let allocations = dataflow_steady_state_allocations(false);
    assert_eq!(
        allocations, 0,
        "steady-state multi-field passes performed {allocations} heap allocations"
    );
}

#[test]
fn overlapped_dataflow_steady_state_is_allocation_free() {
    let allocations = dataflow_steady_state_allocations(true);
    assert_eq!(
        allocations, 0,
        "overlapped multi-field passes performed {allocations} heap allocations"
    );
}

#[test]
fn native_dataflow_steady_state_is_allocation_free() {
    let allocations = native_dataflow_steady_state_allocations(false);
    assert_eq!(
        allocations, 0,
        "native steady-state multi-field passes performed {allocations} heap allocations"
    );
}

#[test]
fn native_overlapped_dataflow_steady_state_is_allocation_free() {
    let allocations = native_dataflow_steady_state_allocations(true);
    assert_eq!(
        allocations, 0,
        "native overlapped multi-field passes performed {allocations} heap allocations"
    );
}

#[test]
fn remap_allocations_bounded_f64() {
    let counts = remap_allocations::<f64, _>(RelaxationKernel, |g| (g as f64).sin(), 8);
    assert_remap_allocations_bounded(&counts, "sim f64");
}

#[test]
fn remap_allocations_bounded_f64x4() {
    let counts = remap_allocations::<[f64; 4], _>(
        RelaxationKernel,
        |g| [g as f64, -(g as f64), 0.5 * g as f64, 1.0],
        8,
    );
    assert_remap_allocations_bounded(&counts, "sim [f64; 4]");
}

#[test]
fn native_remap_allocations_bounded_f64() {
    let counts = native_remap_allocations::<f64, _>(RelaxationKernel, |g| (g as f64).sin(), 8);
    assert_remap_allocations_bounded(&counts, "native f64");
}

#[test]
fn native_remap_allocations_bounded_f64x4() {
    let counts = native_remap_allocations::<[f64; 4], _>(
        RelaxationKernel,
        |g| [g as f64, -(g as f64), 0.5 * g as f64, 1.0],
        8,
    );
    assert_remap_allocations_bounded(&counts, "native [f64; 4]");
}

#[test]
fn steady_state_loop_is_allocation_free_f64() {
    let allocations =
        steady_state_allocations::<f64, _>(RelaxationKernel, false, 1, |g| (g as f64).sin());
    assert_eq!(
        allocations, 0,
        "steady-state f64 iterations performed {allocations} heap allocations"
    );
}

#[test]
fn steady_state_loop_is_allocation_free_f64x4() {
    let allocations = steady_state_allocations::<[f64; 4], _>(RelaxationKernel, false, 1, |g| {
        [g as f64, -(g as f64), 0.5 * g as f64, 1.0]
    });
    assert_eq!(
        allocations, 0,
        "steady-state [f64; 4] iterations performed {allocations} heap allocations"
    );
}

#[test]
fn native_steady_state_loop_is_allocation_free_f64() {
    let allocations =
        native_steady_state_allocations::<f64, _>(RelaxationKernel, false, 1, |g| (g as f64).sin());
    assert_eq!(
        allocations, 0,
        "native steady-state f64 iterations performed {allocations} heap allocations"
    );
}

#[test]
fn native_steady_state_loop_is_allocation_free_f64x4() {
    let allocations =
        native_steady_state_allocations::<[f64; 4], _>(RelaxationKernel, false, 1, |g| {
            [g as f64, -(g as f64), 0.5 * g as f64, 1.0]
        });
    assert_eq!(
        allocations, 0,
        "native steady-state [f64; 4] iterations performed {allocations} heap allocations"
    );
}

#[test]
fn overlapped_steady_state_loop_is_allocation_free_f64() {
    let allocations =
        steady_state_allocations::<f64, _>(RelaxationKernel, true, 1, |g| (g as f64).sin());
    assert_eq!(
        allocations, 0,
        "overlapped steady-state f64 iterations performed {allocations} heap allocations"
    );
}

#[test]
fn overlapped_steady_state_loop_is_allocation_free_f64x4() {
    let allocations = steady_state_allocations::<[f64; 4], _>(RelaxationKernel, true, 1, |g| {
        [g as f64, -(g as f64), 0.5 * g as f64, 1.0]
    });
    assert_eq!(
        allocations, 0,
        "overlapped steady-state [f64; 4] iterations performed {allocations} heap allocations"
    );
}

#[test]
fn native_overlapped_steady_state_loop_is_allocation_free_f64() {
    let allocations =
        native_steady_state_allocations::<f64, _>(RelaxationKernel, true, 1, |g| (g as f64).sin());
    assert_eq!(
        allocations, 0,
        "native overlapped steady-state f64 iterations performed {allocations} heap allocations"
    );
}

#[test]
fn native_overlapped_steady_state_loop_is_allocation_free_f64x4() {
    let allocations =
        native_steady_state_allocations::<[f64; 4], _>(RelaxationKernel, true, 1, |g| {
            [g as f64, -(g as f64), 0.5 * g as f64, 1.0]
        });
    assert_eq!(
        allocations, 0,
        "native overlapped steady-state [f64; 4] iterations performed {allocations} heap allocations"
    );
}

#[test]
fn teamed_steady_state_loop_is_allocation_free() {
    let allocations =
        steady_state_allocations::<f64, _>(RelaxationKernel, false, 3, |g| (g as f64).sin());
    assert_eq!(
        allocations, 0,
        "teamed steady-state iterations performed {allocations} heap allocations"
    );
}

#[test]
fn teamed_overlapped_steady_state_loop_is_allocation_free() {
    let allocations =
        steady_state_allocations::<f64, _>(RelaxationKernel, true, 3, |g| (g as f64).sin());
    assert_eq!(
        allocations, 0,
        "teamed overlapped steady-state iterations performed {allocations} heap allocations"
    );
}

#[test]
fn native_teamed_steady_state_loop_is_allocation_free() {
    let allocations =
        native_steady_state_allocations::<f64, _>(RelaxationKernel, false, 3, |g| (g as f64).sin());
    assert_eq!(
        allocations, 0,
        "native teamed steady-state iterations performed {allocations} heap allocations"
    );
}

#[test]
fn native_teamed_overlapped_steady_state_loop_is_allocation_free() {
    let allocations =
        native_steady_state_allocations::<f64, _>(RelaxationKernel, true, 3, |g| (g as f64).sin());
    assert_eq!(
        allocations, 0,
        "native teamed overlapped steady-state iterations performed {allocations} heap allocations"
    );
}
