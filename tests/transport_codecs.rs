//! The bulk transport codecs (`Element::pack_into` / `Element::unpack_into`)
//! must be **bitwise identical** to the per-element
//! `write_bytes`/`read_bytes` path for every built-in element type — the
//! overrides change speed, never the wire format. Values are generated as
//! raw bit patterns, so NaNs (quiet and signaling payloads alike),
//! subnormals, negative zero and infinities are all exercised; comparisons
//! go through the byte encoding, which is injective on bit patterns.

use proptest::prelude::*;
use stance::prelude::*;

/// Per-element reference encoding: the loop the default `pack_into` is
/// defined by.
fn encode_per_element<E: Element>(values: &[E]) -> Vec<u8> {
    let mut out = Vec::new();
    for v in values {
        v.write_bytes(&mut out);
    }
    out
}

/// Decodes with the per-element path and re-encodes, for bit-level
/// comparison that tolerates NaN (`E: PartialEq` would not).
fn decode_reencode_per_element<E: Element>(bytes: &[u8]) -> Vec<u8> {
    let decoded: Vec<E> = bytes
        .chunks_exact(E::SIZE_BYTES)
        .map(E::read_bytes)
        .collect();
    encode_per_element(&decoded)
}

/// Asserts bulk == per-element on both directions for one value slice.
fn assert_bulk_matches_per_element<E: Element>(values: &[E]) -> Result<(), TestCaseError> {
    let reference = encode_per_element(values);

    // Bulk pack appends after existing content, byte-for-byte equal.
    let mut bulk = vec![0x5A; 3];
    E::pack_into(values, &mut bulk);
    prop_assert_eq!(&bulk[..3], &[0x5A; 3]);
    prop_assert_eq!(&bulk[3..], reference.as_slice());

    // `pack` (the Payload-producing entry point) rides on pack_into.
    prop_assert_eq!(E::pack(values), Payload::from_bytes(reference.clone()));

    // Bulk unpack lands the same bit patterns as the per-element decode.
    let mut out = vec![E::zero(); values.len()];
    E::unpack_into(&reference, &mut out);
    prop_assert_eq!(
        encode_per_element(&out),
        decode_reencode_per_element::<E>(&reference)
    );
    // And those bit patterns are exactly the wire input (full round trip).
    prop_assert_eq!(encode_per_element(&out), reference);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn f64_bulk_codec_bitwise(bits in proptest::collection::vec(0u64..u64::MAX, 0..64)) {
        let values: Vec<f64> = bits.into_iter().map(f64::from_bits).collect();
        assert_bulk_matches_per_element(&values)?;
    }

    #[test]
    fn f32_bulk_codec_bitwise(bits in proptest::collection::vec(0u64..u64::MAX, 0..64)) {
        let values: Vec<f32> = bits.into_iter().map(|b| f32::from_bits(b as u32)).collect();
        assert_bulk_matches_per_element(&values)?;
    }

    #[test]
    fn u32_bulk_codec_bitwise(bits in proptest::collection::vec(0u64..u64::MAX, 0..64)) {
        let values: Vec<u32> = bits.into_iter().map(|b| b as u32).collect();
        assert_bulk_matches_per_element(&values)?;
    }

    #[test]
    fn u64_bulk_codec_bitwise(values in proptest::collection::vec(0u64..u64::MAX, 0..64)) {
        assert_bulk_matches_per_element(&values)?;
    }

    #[test]
    fn f64x2_bulk_codec_bitwise(bits in proptest::collection::vec((0u64..u64::MAX, 0u64..u64::MAX), 0..40)) {
        let values: Vec<[f64; 2]> = bits
            .into_iter()
            .map(|(a, b)| [f64::from_bits(a), f64::from_bits(b)])
            .collect();
        assert_bulk_matches_per_element(&values)?;
    }

    #[test]
    fn f64x4_bulk_codec_bitwise(bits in proptest::collection::vec((0u64..u64::MAX, 0u64..u64::MAX), 0..24)) {
        let values: Vec<[f64; 4]> = bits
            .into_iter()
            .map(|(a, b)| {
                [
                    f64::from_bits(a),
                    f64::from_bits(b),
                    f64::from_bits(a.rotate_left(17)),
                    f64::from_bits(b.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                ]
            })
            .collect();
        assert_bulk_matches_per_element(&values)?;
    }
}

/// The named special values, deterministically: NaN (both sign bits and a
/// payload-carrying pattern), subnormals, infinities, signed zeros, and
/// the extremes.
#[test]
fn special_values_bulk_codec_bitwise() {
    let specials = [
        f64::NAN,
        -f64::NAN,
        f64::from_bits(0x7FF0_0000_0000_0001), // signaling-NaN pattern
        f64::from_bits(0x0000_0000_0000_0001), // smallest subnormal
        f64::from_bits(0x000F_FFFF_FFFF_FFFF), // largest subnormal
        f64::INFINITY,
        f64::NEG_INFINITY,
        0.0,
        -0.0,
        f64::MIN_POSITIVE,
        f64::MAX,
        f64::MIN,
        1e-310, // subnormal literal
    ];
    assert_bulk_matches_per_element(&specials).unwrap();
    let pairs: Vec<[f64; 2]> = specials
        .iter()
        .zip(specials.iter().rev())
        .map(|(&a, &b)| [a, b])
        .collect();
    assert_bulk_matches_per_element(&pairs).unwrap();
    let singles: Vec<f32> = [
        f32::NAN,
        f32::from_bits(0x0000_0001), // smallest f32 subnormal
        f32::INFINITY,
        -0.0f32,
        f32::MAX,
    ]
    .to_vec();
    assert_bulk_matches_per_element(&singles).unwrap();
}
