//! Each processor's local view of the computational graph.
//!
//! After Phase A the graph is relabeled so vertex ids equal list positions;
//! each rank owns a contiguous interval. [`LocalAdjacency`] is that rank's
//! slice of the CSR structure: for every owned vertex, the *global* ids of
//! its neighbors (which the inspector will classify as local or
//! off-processor). This is exactly the indirection array `ia` of the
//! paper's Fig. 8 loop, restricted to one processor.

use stance_locality::Graph;
use stance_onedim::{BlockPartition, Interval};

/// One rank's slice of the (reordered) computational graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalAdjacency {
    /// The global interval this rank owns.
    interval: Interval,
    /// CSR row pointers over owned vertices, length `len + 1`.
    xadj: Vec<usize>,
    /// Global neighbor ids.
    refs: Vec<u32>,
}

impl LocalAdjacency {
    /// Extracts rank `rank`'s slice from the reordered graph.
    ///
    /// # Panics
    /// Panics if the partition does not cover the graph's vertex set.
    pub fn extract(graph: &Graph, partition: &BlockPartition, rank: usize) -> Self {
        assert_eq!(
            graph.num_vertices(),
            partition.n(),
            "partition covers {} elements but the graph has {} vertices",
            partition.n(),
            graph.num_vertices()
        );
        let interval = partition.interval_of(rank);
        let mut xadj = Vec::with_capacity(interval.len() + 1);
        let mut refs = Vec::new();
        xadj.push(0);
        for g in interval.iter() {
            refs.extend_from_slice(graph.neighbors(g));
            xadj.push(refs.len());
        }
        LocalAdjacency {
            interval,
            xadj,
            refs,
        }
    }

    /// Builds directly from parts (for tests and custom pipelines).
    ///
    /// # Panics
    /// Panics if the CSR shape is inconsistent.
    pub fn from_parts(interval: Interval, xadj: Vec<usize>, refs: Vec<u32>) -> Self {
        assert_eq!(xadj.len(), interval.len() + 1, "xadj length mismatch");
        assert_eq!(*xadj.first().expect("nonempty xadj"), 0);
        assert_eq!(*xadj.last().expect("nonempty xadj"), refs.len());
        assert!(
            xadj.windows(2).all(|w| w[0] <= w[1]),
            "xadj must be monotone"
        );
        LocalAdjacency {
            interval,
            xadj,
            refs,
        }
    }

    /// The owned global interval.
    #[inline]
    pub fn interval(&self) -> Interval {
        self.interval
    }

    /// Number of owned vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.interval.len()
    }

    /// Whether this rank owns no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.interval.is_empty()
    }

    /// Global neighbor ids of the `local`-th owned vertex.
    #[inline]
    pub fn neighbors_of(&self, local: usize) -> &[u32] {
        &self.refs[self.xadj[local]..self.xadj[local + 1]]
    }

    /// Degree of the `local`-th owned vertex.
    #[inline]
    pub fn degree_of(&self, local: usize) -> usize {
        self.xadj[local + 1] - self.xadj[local]
    }

    /// All global references in CSR order (the raw indirection array).
    #[inline]
    pub fn refs(&self) -> &[u32] {
        &self.refs
    }

    /// Total number of references (2 × local edges + cut edges).
    #[inline]
    pub fn num_refs(&self) -> usize {
        self.refs.len()
    }

    /// Iterates over `(local index, global neighbor)` pairs in CSR order.
    pub fn iter_refs(&self) -> impl Iterator<Item = (usize, u32)> + '_ {
        (0..self.len()).flat_map(move |l| self.neighbors_of(l).iter().map(move |&g| (l, g)))
    }

    /// All references of the contiguous local-vertex range `lo..hi`, as one
    /// slice (rows are CSR-adjacent, so a whole range of rows bulk-copies
    /// with a single `extend_from_slice` instead of one call per row).
    #[inline]
    pub fn refs_in(&self, lo: usize, hi: usize) -> &[u32] {
        &self.refs[self.xadj[lo]..self.xadj[hi]]
    }

    /// Dismantles the structure into `(interval, xadj, refs)` so a retired
    /// adjacency's storage can be recycled into the next rebuild.
    pub fn into_parts(self) -> (Interval, Vec<usize>, Vec<u32>) {
        (self.interval, self.xadj, self.refs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Graph {
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        let coords = (0..n).map(|i| [i as f64, 0.0, 0.0]).collect();
        Graph::from_edges(n, &edges, coords, 2)
    }

    #[test]
    fn extract_middle_rank() {
        let g = path_graph(9);
        let part = BlockPartition::uniform(9, 3);
        let adj = LocalAdjacency::extract(&g, &part, 1);
        assert_eq!(adj.interval(), Interval::new(3, 6));
        assert_eq!(adj.len(), 3);
        // Vertex 3's neighbors: 2 (off-proc) and 4 (local).
        assert_eq!(adj.neighbors_of(0), &[2, 4]);
        assert_eq!(adj.neighbors_of(2), &[4, 6]);
        assert_eq!(adj.degree_of(1), 2);
        assert_eq!(adj.num_refs(), 6);
    }

    #[test]
    fn extract_edge_ranks() {
        let g = path_graph(9);
        let part = BlockPartition::uniform(9, 3);
        let first = LocalAdjacency::extract(&g, &part, 0);
        assert_eq!(first.neighbors_of(0), &[1]);
        let last = LocalAdjacency::extract(&g, &part, 2);
        assert_eq!(last.neighbors_of(2), &[7]);
    }

    #[test]
    fn iter_refs_in_csr_order() {
        let g = path_graph(5);
        let part = BlockPartition::uniform(5, 1);
        let adj = LocalAdjacency::extract(&g, &part, 0);
        let pairs: Vec<_> = adj.iter_refs().collect();
        assert_eq!(
            pairs,
            vec![
                (0, 1),
                (1, 0),
                (1, 2),
                (2, 1),
                (2, 3),
                (3, 2),
                (3, 4),
                (4, 3)
            ]
        );
    }

    #[test]
    fn empty_rank_slice() {
        let g = path_graph(4);
        let part = BlockPartition::from_sizes(&[4, 0]);
        let adj = LocalAdjacency::extract(&g, &part, 1);
        assert!(adj.is_empty());
        assert_eq!(adj.num_refs(), 0);
    }

    #[test]
    fn from_parts_validation() {
        let adj = LocalAdjacency::from_parts(Interval::new(5, 7), vec![0, 2, 3], vec![1, 6, 5]);
        assert_eq!(adj.neighbors_of(0), &[1, 6]);
        assert_eq!(adj.neighbors_of(1), &[5]);
    }

    #[test]
    #[should_panic(expected = "xadj length mismatch")]
    fn from_parts_rejects_bad_shape() {
        let _ = LocalAdjacency::from_parts(Interval::new(0, 3), vec![0, 1], vec![1]);
    }
}
