//! Communication-schedule construction: the paper's schedule_sort1,
//! schedule_sort2 and the general ("simple") strategy.
//!
//! A [`CommSchedule`] tells the executor, for one rank:
//!
//! * **send lists** — per peer, which of my local elements to ship
//!   (the paper's Fig. 4 "send list"), and
//! * **receive segments** — per peer, which global elements arrive and in
//!   what order; ghost-buffer slots are assigned to them contiguously
//!   (the paper's "permutation list" — where each received value lands
//!   in the local buffer, which stores "local data" followed by
//!   "off processor data", exactly as in Fig. 4).
//!
//! ## Symmetric builders (sort1, sort2)
//!
//! "For many irregular applications the accesses are symmetric … One can
//! exploit this symmetry to eliminate the communication required to generate
//! the communication schedule" (§3.2). If the mesh edge (u, v) crosses ranks
//! then *u's owner must send u to v's owner and vice versa*, so each side can
//! derive both directions locally — the only open question is message
//! *order*, settled by sorting by index:
//!
//! * `sort1` builds send lists in reference-stream order, then sorts both
//!   the send lists and each receive segment;
//! * `sort2` traverses owned nodes in increasing local order so send lists
//!   are born sorted; only receive segments are sorted.
//!
//! Both produce identical schedules; they differ only in counted work.
//!
//! ## Simple strategy
//!
//! The general path (no symmetry assumption), as in PARTI/CHAOS \[27\]: the
//! explicit per-element translation table is block-distributed, so the
//! inspector (1) queries table owners to dereference its unique off-processor
//! references, then (2) sends each data owner the list of elements it needs.
//! Three all-to-all message rounds — which is why Table 3 shows it degrading
//! as processors are added while the sort strategies get *cheaper*.

use stance_onedim::{BlockPartition, Interval};
use stance_sim::{Comm, Payload, Tag};

use crate::adjacency::LocalAdjacency;
use crate::cost::{InspectorCostModel, InspectorWork};
use crate::refhash::RefHashMap;
use crate::translation::DenseTable;

/// Reserved tags for the simple strategy's protocol rounds (registered in
/// `stance_sim::tags`).
const TAG_QUERY: Tag = stance_sim::tags::TAG_SCHED_QUERY;
const TAG_REPLY: Tag = stance_sim::tags::TAG_SCHED_REPLY;
const TAG_REQUEST: Tag = stance_sim::tags::TAG_SCHED_REQUEST;

/// How to build the communication schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScheduleStrategy {
    /// Symmetry-exploiting; sorts send lists and receive segments (§3.2).
    Sort1,
    /// Symmetry-exploiting; send lists sorted by construction.
    Sort2,
    /// General strategy via a distributed explicit translation table
    /// (requires communication).
    Simple,
}

impl ScheduleStrategy {
    /// All strategies, for sweeps.
    pub const ALL: [ScheduleStrategy; 3] = [
        ScheduleStrategy::Sort1,
        ScheduleStrategy::Sort2,
        ScheduleStrategy::Simple,
    ];

    /// Display name matching the paper's Table 3 rows.
    pub fn name(self) -> &'static str {
        match self {
            ScheduleStrategy::Sort1 => "Sort1",
            ScheduleStrategy::Sort2 => "Sort2",
            ScheduleStrategy::Simple => "Simple Strategy",
        }
    }
}

/// A local or ghost reference after translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocalRef {
    /// Index into the rank's own block.
    Local(u32),
    /// Index into the rank's ghost buffer.
    Ghost(u32),
}

/// One rank's communication schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommSchedule {
    rank: usize,
    interval: Interval,
    /// `(peer, local indices to send)`, peers ascending.
    sends: Vec<(usize, Vec<u32>)>,
    /// `(peer, globals received in segment order)`, peers ascending; ghost
    /// slots are assigned contiguously across segments in this order.
    recvs: Vec<(usize, Vec<u32>)>,
    /// global → ghost slot.
    ghost_of: RefHashMap,
    num_ghosts: u32,
}

impl CommSchedule {
    fn from_parts(
        rank: usize,
        interval: Interval,
        sends: Vec<(usize, Vec<u32>)>,
        recvs: Vec<(usize, Vec<u32>)>,
    ) -> Self {
        let num_ghosts: usize = recvs.iter().map(|(_, g)| g.len()).sum();
        let ghost_of = RefHashMap::with_capacity(num_ghosts);
        Self::from_parts_with(rank, interval, sends, recvs, ghost_of)
    }

    /// Like `from_parts`, but refills a recycled ghost map instead of
    /// allocating a fresh one (the map is cleared first; it grows in place
    /// if undersized).
    fn from_parts_with(
        rank: usize,
        interval: Interval,
        sends: Vec<(usize, Vec<u32>)>,
        recvs: Vec<(usize, Vec<u32>)>,
        mut ghost_of: RefHashMap,
    ) -> Self {
        ghost_of.clear();
        let mut slot = 0u32;
        for (_, globals) in &recvs {
            for &g in globals {
                let prev = ghost_of.insert_if_absent(g, slot);
                assert!(prev.is_none(), "global {g} received twice");
                slot += 1;
            }
        }
        CommSchedule {
            rank,
            interval,
            sends,
            recvs,
            ghost_of,
            num_ghosts: slot,
        }
    }

    /// The owning rank.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The rank's owned interval.
    #[inline]
    pub fn interval(&self) -> Interval {
        self.interval
    }

    /// Send lists `(peer, local indices)`, peers ascending.
    #[inline]
    pub fn sends(&self) -> &[(usize, Vec<u32>)] {
        &self.sends
    }

    /// Receive segments `(peer, globals)`, peers ascending.
    #[inline]
    pub fn recvs(&self) -> &[(usize, Vec<u32>)] {
        &self.recvs
    }

    /// Number of ghost (off-processor) elements fetched per gather.
    #[inline]
    pub fn num_ghosts(&self) -> u32 {
        self.num_ghosts
    }

    /// Total elements sent per gather.
    pub fn total_send_volume(&self) -> usize {
        self.sends.iter().map(|(_, l)| l.len()).sum()
    }

    /// The ghost slot holding global `g`, if it is fetched.
    #[inline]
    pub fn ghost_slot(&self, g: u32) -> Option<u32> {
        self.ghost_of.get(g)
    }

    /// Translates a global reference to a [`LocalRef`].
    ///
    /// # Panics
    /// Panics if `g` is neither owned nor in the ghost set — that means the
    /// schedule was built from different references than it is used with.
    pub fn resolve(&self, g: u32) -> LocalRef {
        if self.interval.contains(g as usize) {
            LocalRef::Local(g - self.interval.start as u32)
        } else {
            match self.ghost_of.get(g) {
                Some(slot) => LocalRef::Ghost(slot),
                None => panic!(
                    "rank {}: global {g} is neither owned ({}) nor scheduled as a ghost",
                    self.rank, self.interval
                ),
            }
        }
    }

    /// Translates a whole adjacency into combined-buffer indices: values
    /// `< local_len` index the block, values `≥ local_len` index ghosts at
    /// `local_len + slot`. This is the executor-ready indirection array.
    ///
    /// Translation also classifies every owned vertex as *interior* (all
    /// neighbor references point into the owned block) or *boundary* (at
    /// least one reference lands in the ghost region) and records the
    /// maximal runs of consecutive same-class vertices — the structure the
    /// executor's split-phase gather sweeps interior vertices from while
    /// ghost bytes are still in flight.
    pub fn translate_adjacency(&self, adj: &LocalAdjacency) -> TranslatedAdjacency {
        let mut out = TranslatedAdjacency {
            local_len: 0,
            num_ghosts: 0,
            xadj: Vec::with_capacity(adj.len() + 1),
            slots: Vec::with_capacity(adj.num_refs()),
            interior_runs: Vec::new(),
            boundary_runs: Vec::new(),
            interior_vertices: 0,
            interior_refs: 0,
        };
        self.translate_adjacency_into(adj, &mut out);
        out
    }

    /// [`CommSchedule::translate_adjacency`] into recycled storage: clears
    /// and refills `out`'s vectors in place (capacity never shrinks), so a
    /// remap's re-translation stops allocating once the runner's scratch
    /// has warmed up. The result is identical to a fresh translation.
    pub fn translate_adjacency_into(&self, adj: &LocalAdjacency, out: &mut TranslatedAdjacency) {
        assert_eq!(adj.interval(), self.interval, "adjacency/schedule mismatch");
        let local_len = self.interval.len() as u32;
        out.xadj.clear();
        out.xadj.reserve(adj.len() + 1);
        out.slots.clear();
        out.slots.reserve(adj.num_refs());
        out.interior_runs.clear();
        out.boundary_runs.clear();
        let mut interior_vertices = 0usize;
        let mut interior_refs = 0usize;
        out.xadj.push(0usize);
        for l in 0..adj.len() {
            let mut references_ghost = false;
            for &g in adj.neighbors_of(l) {
                let combined = match self.resolve(g) {
                    LocalRef::Local(i) => i,
                    LocalRef::Ghost(s) => {
                        references_ghost = true;
                        local_len + s
                    }
                };
                out.slots.push(combined);
            }
            let degree = out.slots.len() - out.xadj[l];
            out.xadj.push(out.slots.len());
            let runs = if references_ghost {
                &mut out.boundary_runs
            } else {
                interior_vertices += 1;
                interior_refs += degree;
                &mut out.interior_runs
            };
            match runs.last_mut() {
                Some((_, end)) if *end == l as u32 => *end = l as u32 + 1,
                _ => runs.push((l as u32, l as u32 + 1)),
            }
        }
        out.local_len = local_len;
        out.num_ghosts = self.num_ghosts;
        out.interior_vertices = interior_vertices;
        out.interior_refs = interior_refs;
    }

    /// Structural sanity checks (used by tests and debug assertions):
    /// peers sorted and distinct, send locals in range, recv globals owned by
    /// their peer, no self segments.
    pub fn validate(&self, partition: &BlockPartition) {
        for w in self.sends.windows(2) {
            assert!(w[0].0 < w[1].0, "send peers must be ascending");
        }
        for w in self.recvs.windows(2) {
            assert!(w[0].0 < w[1].0, "recv peers must be ascending");
        }
        for (peer, locals) in &self.sends {
            assert_ne!(*peer, self.rank, "self-send in schedule");
            for &l in locals {
                assert!(
                    (l as usize) < self.interval.len(),
                    "send local {l} out of block"
                );
            }
        }
        for (peer, globals) in &self.recvs {
            assert_ne!(*peer, self.rank, "self-recv in schedule");
            for &g in globals {
                assert_eq!(
                    partition.owner_of(g as usize),
                    *peer,
                    "recv global {g} not owned by peer {peer}"
                );
                assert!(self.ghost_of.get(g).is_some());
            }
        }
    }
}

/// Executor-ready indirection: CSR over owned vertices with combined-buffer
/// indices (block values first, ghosts appended).
///
/// Owned vertices are additionally classified into **interior** (every
/// neighbor reference indexes the owned block — the sweep over them needs
/// no gathered data) and **boundary** (at least one reference indexes the
/// ghost region). The classification is stored as maximal runs of
/// consecutive same-class local indices, so a split-phase executor sweeps
/// the interior as a handful of contiguous ranges (cache-friendly, and one
/// `Kernel::sweep_range` call each) while the ghost exchange is in flight,
/// then the boundary runs once it completes. On a locality-ordered mesh
/// the interior is typically one long run with short boundary runs at the
/// block edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TranslatedAdjacency {
    local_len: u32,
    num_ghosts: u32,
    xadj: Vec<usize>,
    slots: Vec<u32>,
    /// Maximal `[start, end)` runs of consecutive interior vertices,
    /// ascending and disjoint.
    interior_runs: Vec<(u32, u32)>,
    /// Maximal `[start, end)` runs of consecutive boundary vertices —
    /// exactly the complement of `interior_runs` within `0..len()`.
    boundary_runs: Vec<(u32, u32)>,
    /// Total interior vertices (Σ run lengths).
    interior_vertices: usize,
    /// Total neighbor references made by interior vertices.
    interior_refs: usize,
}

impl TranslatedAdjacency {
    /// Number of owned vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.xadj.len() - 1
    }

    /// Whether there are no owned vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Block length (start of the ghost region in the combined buffer).
    #[inline]
    pub fn local_len(&self) -> u32 {
        self.local_len
    }

    /// Number of ghost slots.
    #[inline]
    pub fn num_ghosts(&self) -> u32 {
        self.num_ghosts
    }

    /// Required combined-buffer length (`local_len + num_ghosts`).
    #[inline]
    pub fn buffer_len(&self) -> usize {
        (self.local_len + self.num_ghosts) as usize
    }

    /// Combined-buffer indices of vertex `local`'s neighbors.
    #[inline]
    pub fn neighbors_of(&self, local: usize) -> &[u32] {
        &self.slots[self.xadj[local]..self.xadj[local + 1]]
    }

    /// Degree of vertex `local`.
    #[inline]
    pub fn degree_of(&self, local: usize) -> usize {
        self.xadj[local + 1] - self.xadj[local]
    }

    /// The raw CSR window backing vertices `range`: the row-pointer slice
    /// `xadj[range.start..=range.end]` (so `window.0[i + 1] - window.0[i]`
    /// is the degree of local vertex `range.start + i`) together with the
    /// full combined-index slot array it indexes into. This is what a
    /// cache-blocked kernel wants — one slice-bounds proof per block
    /// instead of two indexed loads per vertex — while
    /// [`TranslatedAdjacency::neighbors_of`] stays the convenient
    /// per-vertex view.
    #[inline]
    pub fn csr_window(&self, range: std::ops::Range<usize>) -> (&[usize], &[u32]) {
        (&self.xadj[range.start..=range.end], &self.slots)
    }

    /// Total references.
    #[inline]
    pub fn num_refs(&self) -> usize {
        self.slots.len()
    }

    /// Maximal runs of consecutive *interior* vertices (no ghost
    /// references), as `start..end` local-index ranges, ascending. A sweep
    /// over exactly these ranges touches no gathered data.
    pub fn interior_runs(&self) -> impl Iterator<Item = std::ops::Range<usize>> + Clone + '_ {
        self.interior_runs
            .iter()
            .map(|&(s, e)| s as usize..e as usize)
    }

    /// Maximal runs of consecutive *boundary* vertices (at least one ghost
    /// reference), the complement of [`TranslatedAdjacency::interior_runs`].
    pub fn boundary_runs(&self) -> impl Iterator<Item = std::ops::Range<usize>> + Clone + '_ {
        self.boundary_runs
            .iter()
            .map(|&(s, e)| s as usize..e as usize)
    }

    /// Number of interior vertices.
    #[inline]
    pub fn num_interior(&self) -> usize {
        self.interior_vertices
    }

    /// Number of boundary vertices.
    #[inline]
    pub fn num_boundary(&self) -> usize {
        self.len() - self.interior_vertices
    }

    /// Total neighbor references made by interior vertices.
    #[inline]
    pub fn interior_refs(&self) -> usize {
        self.interior_refs
    }

    /// Total neighbor references made by boundary vertices.
    #[inline]
    pub fn boundary_refs(&self) -> usize {
        self.num_refs() - self.interior_refs
    }
}

/// Bound on pooled segment vectors in a [`ScheduleScratch`] — generous for
/// any realistic peer count, small enough that a pathological schedule
/// cannot hoard memory.
const SEG_POOL_CAP: usize = 64;

/// Recycled storage for repeated symmetric schedule builds (one per rank,
/// owned by whoever rebuilds schedules on remap — the session keeps one
/// inside its `RemapScratch`).
///
/// A fresh build allocates two dedup hash maps, two per-peer segment
/// tables, the send/receive lists and the ghost map; with a scratch, all
/// of that storage is recycled remap over remap (capacity never shrinks),
/// and a retired schedule's vectors are donated back via
/// [`ScheduleScratch::recycle`]. [`build_schedule_symmetric_with`]
/// produces schedules and counted work identical to
/// [`build_schedule_symmetric`].
#[derive(Debug)]
pub struct ScheduleScratch {
    ghost_dedup: RefHashMap,
    send_dedup: RefHashMap,
    recv_segments: Vec<Vec<u32>>,
    send_segments: Vec<Vec<u32>>,
    seg_pool: Vec<Vec<u32>>,
    outer_pool: Vec<Vec<(usize, Vec<u32>)>>,
    map_pool: Vec<RefHashMap>,
}

impl ScheduleScratch {
    /// An empty scratch; capacities warm up over the first build.
    pub fn new() -> Self {
        ScheduleScratch {
            ghost_dedup: RefHashMap::with_capacity(16),
            send_dedup: RefHashMap::with_capacity(16),
            recv_segments: Vec::new(),
            send_segments: Vec::new(),
            seg_pool: Vec::new(),
            outer_pool: Vec::new(),
            map_pool: Vec::new(),
        }
    }

    /// Ensures both segment tables have `p` cleared slots, refilling
    /// capacity-less slots from the pool of donated vectors.
    fn prepare_segments(&mut self, p: usize) {
        let ScheduleScratch {
            recv_segments,
            send_segments,
            seg_pool,
            ..
        } = self;
        for segs in [recv_segments, send_segments] {
            if segs.len() < p {
                segs.resize_with(p, Vec::new);
            }
            for s in segs.iter_mut().take(p) {
                s.clear();
                if s.capacity() == 0 {
                    if let Some(mut spare) = seg_pool.pop() {
                        spare.clear();
                        *s = spare;
                    }
                }
            }
        }
    }

    /// Donates a retired schedule's storage (segment vectors, outer lists,
    /// ghost map) back to the pools, so the next build draws on it instead
    /// of the allocator. Call this with the schedule a remap replaced.
    pub fn recycle(&mut self, schedule: CommSchedule) {
        let CommSchedule {
            sends,
            recvs,
            ghost_of,
            ..
        } = schedule;
        for mut outer in [sends, recvs] {
            for (_, seg) in outer.drain(..) {
                if self.seg_pool.len() < SEG_POOL_CAP {
                    self.seg_pool.push(seg);
                }
            }
            if self.outer_pool.len() < 2 {
                self.outer_pool.push(outer);
            }
        }
        if self.map_pool.is_empty() {
            self.map_pool.push(ghost_of);
        }
    }
}

impl Default for ScheduleScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// Builds a schedule by exploiting access symmetry — no communication.
/// Returns the schedule plus counted work (the caller charges it through an
/// [`InspectorCostModel`]).
///
/// # Panics
/// Panics (in debug) if the reference pattern is not symmetric; the strategy
/// is only valid for symmetric accesses (§3.2).
pub fn build_schedule_symmetric(
    partition: &BlockPartition,
    adj: &LocalAdjacency,
    rank: usize,
    strategy: ScheduleStrategy,
) -> (CommSchedule, InspectorWork) {
    build_schedule_symmetric_with(partition, adj, rank, strategy, &mut ScheduleScratch::new())
}

/// [`build_schedule_symmetric`] drawing all working storage from a recycled
/// [`ScheduleScratch`]: after the scratch has warmed up (one build plus one
/// [`ScheduleScratch::recycle`] of the schedule it replaced), a rebuild's
/// allocation count is bounded and independent of how many rebuilds came
/// before. Output (schedule and counted work) is identical to the fresh
/// builder's.
///
/// # Panics
/// Panics (in debug) if the reference pattern is not symmetric.
pub fn build_schedule_symmetric_with(
    partition: &BlockPartition,
    adj: &LocalAdjacency,
    rank: usize,
    strategy: ScheduleStrategy,
    scratch: &mut ScheduleScratch,
) -> (CommSchedule, InspectorWork) {
    assert!(
        matches!(strategy, ScheduleStrategy::Sort1 | ScheduleStrategy::Sort2),
        "build_schedule_symmetric only implements Sort1/Sort2"
    );
    let mut work = InspectorWork::default();
    let p = partition.num_procs();
    let interval = partition.interval_of(rank);
    debug_assert_eq!(adj.interval(), interval);

    scratch.prepare_segments(p);
    let ScheduleScratch {
        ghost_dedup,
        send_dedup,
        recv_segments,
        send_segments,
        outer_pool,
        map_pool,
        ..
    } = scratch;
    // --- Receive side: unique off-processor globals per owner. -----------
    // One dedup hash over the reference stream (§3.2 phase 1).
    ghost_dedup.clear();
    // --- Send side: boundary locals per destination. ----------------------
    // Dedup (local, peer) pairs: last-seen peer marker per local vertex is
    // not enough (a vertex can border several peers), so hash on the packed
    // pair. Key = local * p + peer (fits u32 for the scales involved).
    send_dedup.clear();

    for l in 0..adj.len() {
        for &g in adj.neighbors_of(l) {
            work.translate_ops += 1;
            if interval.contains(g as usize) {
                continue;
            }
            let owner = partition.owner_of(g as usize);
            work.hash_ops += 1;
            if ghost_dedup.insert_if_absent(g, 0).is_none() {
                recv_segments[owner].push(g);
                work.scan_ops += 1;
            }
            // Symmetric accesses: the owner of g references my vertex l.
            let pair_key = l as u32 * p as u32 + owner as u32;
            work.hash_ops += 1;
            if send_dedup.insert_if_absent(pair_key, 0).is_none() {
                send_segments[owner].push(l as u32);
                work.scan_ops += 1;
            }
        }
    }

    // Receive segments: both variants sort by the sender's local reference,
    // which for an interval block is the same as sorting by global index.
    for seg in recv_segments.iter_mut().take(p) {
        if seg.len() > 1 {
            work.add_sort(seg.len());
            seg.sort_unstable();
        }
    }
    // Send lists: sort1 sorts; sort2 relied on the ascending traversal above
    // (locals were appended in increasing l), so the lists are already
    // sorted and no work is charged.
    if strategy == ScheduleStrategy::Sort1 {
        for seg in send_segments.iter_mut().take(p) {
            if seg.len() > 1 {
                work.add_sort(seg.len());
                seg.sort_unstable();
            }
        }
    } else {
        debug_assert!(send_segments
            .iter()
            .all(|s| s.windows(2).all(|w| w[0] < w[1])));
    }

    // Move the non-empty segments into the schedule's lists (the vacated
    // slots are refilled from the pool on the next build).
    let mut sends = outer_pool.pop().unwrap_or_default();
    sends.clear();
    for (peer, seg) in send_segments.iter_mut().enumerate().take(p) {
        if peer != rank && !seg.is_empty() {
            sends.push((peer, std::mem::take(seg)));
        }
    }
    let mut recvs = outer_pool.pop().unwrap_or_default();
    recvs.clear();
    for (peer, seg) in recv_segments.iter_mut().enumerate().take(p) {
        if peer != rank && !seg.is_empty() {
            recvs.push((peer, std::mem::take(seg)));
        }
    }

    let num_ghosts: usize = recvs.iter().map(|(_, g)| g.len()).sum();
    let ghost_of = map_pool
        .pop()
        .unwrap_or_else(|| RefHashMap::with_capacity(num_ghosts));
    (
        CommSchedule::from_parts_with(rank, interval, sends, recvs, ghost_of),
        work,
    )
}

/// Builds a schedule with the general ("simple") strategy over the cluster:
/// dereference through the block-distributed explicit translation table,
/// then exchange request lists. Compute work is charged to `env` as it
/// happens; message costs follow from the sends themselves.
///
/// All ranks must call this collectively.
pub fn build_schedule_simple<C: Comm>(
    env: &mut C,
    partition: &BlockPartition,
    adj: &LocalAdjacency,
    cost: &InspectorCostModel,
) -> CommSchedule {
    let rank = env.rank();
    let p = env.size();
    let n = partition.n();
    let interval = partition.interval_of(rank);
    debug_assert_eq!(adj.interval(), interval);

    // Phase 1: dedup references, keeping first-occurrence order, grouped by
    // *table owner* (we pretend not to know data owners yet — that is what
    // the explicit table is for). Unlike the symmetric builders, there is no
    // interval table to pre-filter with, so the dedup hash processes the
    // whole reference stream [27].
    let mut work = InspectorWork::default();
    let mut dedup = RefHashMap::with_capacity(adj.num_refs() / 4 + 4);
    let mut queries: Vec<Vec<u32>> = vec![Vec::new(); p];
    for &g in adj.refs() {
        work.hash_ops += 1;
        if interval.contains(g as usize) {
            continue;
        }
        if dedup.insert_if_absent(g, 0).is_none() {
            let table_owner = DenseTable::table_owner_of(g as usize, n, p);
            queries[table_owner].push(g);
            work.scan_ops += 1;
        }
    }
    env.compute(cost.seconds(&work));

    // Round 1a: send query lists to table owners (empty messages included:
    // the receiver cannot otherwise know nobody needs it).
    for (dst, qs) in queries.iter().enumerate() {
        if dst != rank {
            env.send(dst, TAG_QUERY, Payload::from_u32(qs.clone()));
        }
    }
    // Serve queries against my table segment. Each protocol message costs
    // real servicing CPU (see `InspectorCostModel::per_message_service`).
    let my_table = DenseTable::from_partition(partition);
    let mut incoming_queries: Vec<(usize, Vec<u32>)> = Vec::with_capacity(p - 1);
    for src in 0..p {
        if src != rank {
            incoming_queries.push((src, env.recv(src, TAG_QUERY).into_u32()));
            env.compute(cost.per_message_service);
        }
    }
    for (src, qs) in incoming_queries {
        let mut reply_work = InspectorWork::default();
        let reply: Vec<u64> = qs
            .iter()
            .map(|&g| {
                reply_work.translate_ops += 1;
                let (proc, local) = my_table.locate(g as usize);
                ((proc as u64) << 32) | local as u64
            })
            .collect();
        env.compute(cost.seconds(&reply_work));
        env.send(src, TAG_REPLY, Payload::from_u64(reply));
    }

    // Round 1b: collect replies; now each unique global has (owner, local).
    let mut located: Vec<(u32, u32, u32)> = Vec::new(); // (global, owner, local)
    let mut local_queries_work = InspectorWork::default();
    for (table_owner, qs) in queries.iter().enumerate() {
        if table_owner == rank {
            for &g in qs {
                local_queries_work.translate_ops += 1;
                let (proc, local) = my_table.locate(g as usize);
                located.push((g, proc as u32, local as u32));
            }
            continue;
        }
        let reply = env.recv(table_owner, TAG_REPLY).into_u64();
        env.compute(cost.per_message_service);
        for (&g, &packed) in qs.iter().zip(&reply) {
            located.push((g, (packed >> 32) as u32, (packed & 0xFFFF_FFFF) as u32));
        }
    }
    env.compute(cost.seconds(&local_queries_work));

    // Phase 2: group by data owner (preserving discovery order) and send
    // request lists; the owner's send list is the request list order.
    let mut request_globals: Vec<Vec<u32>> = vec![Vec::new(); p];
    let mut request_locals: Vec<Vec<u32>> = vec![Vec::new(); p];
    let mut group_work = InspectorWork::default();
    for &(g, owner, local) in &located {
        group_work.scan_ops += 1;
        request_globals[owner as usize].push(g);
        request_locals[owner as usize].push(local);
    }
    env.compute(cost.seconds(&group_work));
    for (dst, locals) in request_locals.iter().enumerate() {
        if dst != rank {
            env.send(dst, TAG_REQUEST, Payload::from_u32(locals.clone()));
        }
    }
    let mut sends: Vec<(usize, Vec<u32>)> = Vec::new();
    for src in 0..p {
        if src != rank {
            let locals = env.recv(src, TAG_REQUEST).into_u32();
            env.compute(cost.per_message_service);
            if !locals.is_empty() {
                sends.push((src, locals));
            }
        }
    }

    let recvs: Vec<(usize, Vec<u32>)> = request_globals
        .into_iter()
        .enumerate()
        .filter(|(peer, seg)| *peer != rank && !seg.is_empty())
        .collect();

    CommSchedule::from_parts(rank, interval, sends, recvs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stance_locality::meshgen;
    use stance_locality::Graph;
    use stance_sim::{Cluster, ClusterSpec, NetworkSpec};

    fn path_graph(n: usize) -> Graph {
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        let coords = (0..n).map(|i| [i as f64, 0.0, 0.0]).collect();
        Graph::from_edges(n, &edges, coords, 2)
    }

    fn schedules_for(
        graph: &Graph,
        partition: &BlockPartition,
        strategy: ScheduleStrategy,
    ) -> Vec<CommSchedule> {
        (0..partition.num_procs())
            .map(|r| {
                let adj = LocalAdjacency::extract(graph, partition, r);
                let (s, _) = build_schedule_symmetric(partition, &adj, r, strategy);
                s.validate(partition);
                s
            })
            .collect()
    }

    /// Cross-rank consistency: what q sends to r must be exactly what r
    /// expects from q, element for element.
    fn assert_matched(partition: &BlockPartition, schedules: &[CommSchedule]) {
        let p = partition.num_procs();
        for q in 0..p {
            for r in 0..p {
                if q == r {
                    continue;
                }
                let sent: Vec<u32> = schedules[q]
                    .sends()
                    .iter()
                    .find(|(peer, _)| *peer == r)
                    .map(|(_, locals)| {
                        let start = partition.interval_of(q).start as u32;
                        locals.iter().map(|&l| l + start).collect()
                    })
                    .unwrap_or_default();
                let expected: Vec<u32> = schedules[r]
                    .recvs()
                    .iter()
                    .find(|(peer, _)| *peer == q)
                    .map(|(_, globals)| globals.clone())
                    .unwrap_or_default();
                assert_eq!(sent, expected, "segment {q} → {r} mismatched");
            }
        }
    }

    #[test]
    fn path_schedule_sort2() {
        let g = path_graph(9);
        let part = BlockPartition::uniform(9, 3);
        let schedules = schedules_for(&g, &part, ScheduleStrategy::Sort2);
        assert_matched(&part, &schedules);
        // Middle rank: receives 1 ghost from each side, sends 1 to each.
        let mid = &schedules[1];
        assert_eq!(mid.num_ghosts(), 2);
        assert_eq!(mid.total_send_volume(), 2);
        assert_eq!(mid.recvs()[0], (0, vec![2]));
        assert_eq!(mid.recvs()[1], (2, vec![6]));
        assert_eq!(mid.sends()[0], (0, vec![0]));
        assert_eq!(mid.sends()[1], (2, vec![2]));
    }

    #[test]
    fn sort1_and_sort2_produce_identical_schedules() {
        let g = meshgen::triangulated_grid(12, 9, 0.4, 7);
        let part = BlockPartition::from_sizes(&[30, 40, 20, 18]);
        let s1 = schedules_for(&g, &part, ScheduleStrategy::Sort1);
        let s2 = schedules_for(&g, &part, ScheduleStrategy::Sort2);
        assert_eq!(s1, s2);
        assert_matched(&part, &s1);
    }

    #[test]
    fn sort1_charges_more_sort_work() {
        let g = meshgen::triangulated_grid(12, 12, 0.4, 3);
        let part = BlockPartition::uniform(144, 4);
        let adj = LocalAdjacency::extract(&g, &part, 1);
        let (_, w1) = build_schedule_symmetric(&part, &adj, 1, ScheduleStrategy::Sort1);
        let (_, w2) = build_schedule_symmetric(&part, &adj, 1, ScheduleStrategy::Sort2);
        assert!(w1.sort_item_log > w2.sort_item_log);
        assert_eq!(w1.hash_ops, w2.hash_ops);
    }

    #[test]
    fn ghost_slots_contiguous_and_resolvable() {
        let g = meshgen::triangulated_grid(10, 10, 0.2, 1);
        let part = BlockPartition::uniform(100, 3);
        let schedules = schedules_for(&g, &part, ScheduleStrategy::Sort2);
        for s in &schedules {
            let mut expected_slot = 0u32;
            for (_, globals) in s.recvs() {
                for &gl in globals {
                    assert_eq!(s.ghost_slot(gl), Some(expected_slot));
                    assert_eq!(s.resolve(gl), LocalRef::Ghost(expected_slot));
                    expected_slot += 1;
                }
            }
            assert_eq!(s.num_ghosts(), expected_slot);
        }
    }

    #[test]
    fn resolve_local_references() {
        let g = path_graph(9);
        let part = BlockPartition::uniform(9, 3);
        let schedules = schedules_for(&g, &part, ScheduleStrategy::Sort2);
        assert_eq!(schedules[1].resolve(4), LocalRef::Local(1));
        assert_eq!(schedules[0].resolve(0), LocalRef::Local(0));
    }

    #[test]
    #[should_panic(expected = "neither owned")]
    fn resolve_unscheduled_panics() {
        let g = path_graph(9);
        let part = BlockPartition::uniform(9, 3);
        let schedules = schedules_for(&g, &part, ScheduleStrategy::Sort2);
        // Global 8 is not referenced by rank 0 (path graph).
        let _ = schedules[0].resolve(8);
    }

    #[test]
    fn translated_adjacency_roundtrip() {
        let g = path_graph(9);
        let part = BlockPartition::uniform(9, 3);
        let adj = LocalAdjacency::extract(&g, &part, 1);
        let (s, _) = build_schedule_symmetric(&part, &adj, 1, ScheduleStrategy::Sort2);
        let t = s.translate_adjacency(&adj);
        assert_eq!(t.len(), 3);
        assert_eq!(t.local_len(), 3);
        assert_eq!(t.num_ghosts(), 2);
        assert_eq!(t.buffer_len(), 5);
        // Vertex 3 (local 0): neighbors 2 (ghost slot 0 → 3+0) and 4 (local 1).
        assert_eq!(t.neighbors_of(0), &[3, 1]);
        // Vertex 5 (local 2): neighbors 4 (local 1) and 6 (ghost slot 1 → 4).
        assert_eq!(t.neighbors_of(2), &[1, 4]);
        assert_eq!(t.num_refs(), 6);
    }

    #[test]
    fn interior_boundary_classification_on_path() {
        // Rank 1 of the 9-path owns {3, 4, 5}: 3 and 5 each reference a
        // ghost (2 and 6), 4 references only owned vertices.
        let g = path_graph(9);
        let part = BlockPartition::uniform(9, 3);
        let adj = LocalAdjacency::extract(&g, &part, 1);
        let (s, _) = build_schedule_symmetric(&part, &adj, 1, ScheduleStrategy::Sort2);
        let t = s.translate_adjacency(&adj);
        assert_eq!(t.num_interior(), 1);
        assert_eq!(t.num_boundary(), 2);
        assert_eq!(t.interior_runs().collect::<Vec<_>>(), vec![1..2]);
        assert_eq!(t.boundary_runs().collect::<Vec<_>>(), vec![0..1, 2..3]);
        // Vertex 4's two references (to 3 and 5) are the interior refs.
        assert_eq!(t.interior_refs(), 2);
        assert_eq!(t.boundary_refs(), t.num_refs() - 2);
    }

    /// The runs are a disjoint ascending cover of `0..len()`, every
    /// interior vertex references only owned slots, every boundary vertex
    /// references at least one ghost slot, and the counted refs match.
    #[test]
    fn classification_invariants_on_meshes() {
        let g = meshgen::triangulated_grid(13, 9, 0.4, 8);
        let part = BlockPartition::from_sizes(&[30, 40, 27, 20]);
        for r in 0..4 {
            let adj = LocalAdjacency::extract(&g, &part, r);
            let (s, _) = build_schedule_symmetric(&part, &adj, r, ScheduleStrategy::Sort2);
            let t = s.translate_adjacency(&adj);
            let local_len = t.local_len();
            let mut covered = vec![false; t.len()];
            let mut interior_refs = 0usize;
            for run in t.interior_runs() {
                for l in run {
                    assert!(!covered[l], "vertex {l} covered twice");
                    covered[l] = true;
                    assert!(
                        t.neighbors_of(l).iter().all(|&s| s < local_len),
                        "interior vertex {l} references a ghost"
                    );
                    interior_refs += t.degree_of(l);
                }
            }
            for run in t.boundary_runs() {
                for l in run {
                    assert!(!covered[l], "vertex {l} covered twice");
                    covered[l] = true;
                    assert!(
                        t.neighbors_of(l).iter().any(|&s| s >= local_len),
                        "boundary vertex {l} references no ghost"
                    );
                }
            }
            assert!(covered.iter().all(|&c| c), "runs must cover every vertex");
            assert_eq!(t.interior_refs(), interior_refs);
            assert_eq!(t.num_interior() + t.num_boundary(), t.len());
        }
    }

    #[test]
    fn single_rank_is_all_interior() {
        let g = path_graph(5);
        let part = BlockPartition::uniform(5, 1);
        let adj = LocalAdjacency::extract(&g, &part, 0);
        let (s, _) = build_schedule_symmetric(&part, &adj, 0, ScheduleStrategy::Sort2);
        let t = s.translate_adjacency(&adj);
        assert_eq!(t.num_interior(), 5);
        assert_eq!(t.num_boundary(), 0);
        assert_eq!(t.interior_runs().collect::<Vec<_>>(), vec![0..5]);
        assert_eq!(t.boundary_runs().count(), 0);
        assert_eq!(t.interior_refs(), t.num_refs());
        assert_eq!(t.boundary_refs(), 0);
    }

    #[test]
    fn single_rank_has_empty_schedule() {
        let g = path_graph(5);
        let part = BlockPartition::uniform(5, 1);
        let adj = LocalAdjacency::extract(&g, &part, 0);
        let (s, w) = build_schedule_symmetric(&part, &adj, 0, ScheduleStrategy::Sort1);
        assert_eq!(s.num_ghosts(), 0);
        assert!(s.sends().is_empty());
        assert_eq!(w.sort_item_log, 0.0);
    }

    #[test]
    fn empty_block_schedule() {
        let g = path_graph(6);
        let part = BlockPartition::from_sizes(&[6, 0]);
        let adj = LocalAdjacency::extract(&g, &part, 1);
        let (s, _) = build_schedule_symmetric(&part, &adj, 1, ScheduleStrategy::Sort2);
        assert_eq!(s.num_ghosts(), 0);
        assert!(s.sends().is_empty());
    }

    /// The scratch-backed builder must produce schedules and counted work
    /// identical to the fresh builder, on its first use and on every reuse
    /// (including after recycling the schedule it replaced).
    #[test]
    fn scratch_builder_matches_fresh_across_rebuilds() {
        let g = meshgen::triangulated_grid(12, 9, 0.4, 7);
        let parts = [
            BlockPartition::from_sizes(&[30, 40, 20, 18]),
            BlockPartition::from_sizes(&[10, 50, 28, 20]),
            BlockPartition::from_sizes(&[30, 40, 20, 18]),
            BlockPartition::from_sizes(&[40, 20, 28, 20]),
        ];
        for strategy in [ScheduleStrategy::Sort1, ScheduleStrategy::Sort2] {
            for rank in 0..4 {
                let mut scratch = ScheduleScratch::new();
                let mut previous: Option<CommSchedule> = None;
                for part in &parts {
                    let adj = LocalAdjacency::extract(&g, part, rank);
                    let (fresh, fresh_work) = build_schedule_symmetric(part, &adj, rank, strategy);
                    let (reused, reused_work) =
                        build_schedule_symmetric_with(part, &adj, rank, strategy, &mut scratch);
                    assert_eq!(fresh, reused, "schedules diverged under reuse");
                    assert_eq!(fresh_work, reused_work, "counted work diverged");
                    if let Some(old) = previous.replace(reused) {
                        scratch.recycle(old);
                    }
                }
            }
        }
    }

    /// After one build + recycle cycle the scratch's pools are populated,
    /// so a rebuild of the same shape draws its segment storage from the
    /// pool rather than the allocator (observable through pointer reuse).
    #[test]
    fn recycle_feeds_the_next_build() {
        let g = meshgen::triangulated_grid(10, 10, 0.2, 1);
        let part = BlockPartition::uniform(100, 3);
        let adj = LocalAdjacency::extract(&g, &part, 1);
        let mut scratch = ScheduleScratch::new();
        let (first, _) =
            build_schedule_symmetric_with(&part, &adj, 1, ScheduleStrategy::Sort2, &mut scratch);
        let donated: Vec<*const u32> = first
            .sends()
            .iter()
            .chain(first.recvs())
            .map(|(_, seg)| seg.as_ptr())
            .collect();
        scratch.recycle(first);
        let (second, _) =
            build_schedule_symmetric_with(&part, &adj, 1, ScheduleStrategy::Sort2, &mut scratch);
        let reused = second
            .sends()
            .iter()
            .chain(second.recvs())
            .filter(|(_, seg)| donated.contains(&seg.as_ptr()))
            .count();
        assert!(
            reused > 0,
            "no donated segment storage was reused by the rebuild"
        );
    }

    #[test]
    fn translate_adjacency_into_matches_fresh_and_reuses_storage() {
        let g = meshgen::triangulated_grid(13, 9, 0.4, 8);
        let parts = [
            BlockPartition::from_sizes(&[30, 40, 27, 20]),
            BlockPartition::from_sizes(&[50, 30, 17, 20]),
        ];
        let mut out = {
            let adj = LocalAdjacency::extract(&g, &parts[0], 2);
            let (s, _) = build_schedule_symmetric(&parts[0], &adj, 2, ScheduleStrategy::Sort2);
            s.translate_adjacency(&adj)
        };
        let slots_ptr = {
            // Shrinking rebuild: recycled storage must be reused in place.
            let adj = LocalAdjacency::extract(&g, &parts[1], 2);
            let (s, _) = build_schedule_symmetric(&parts[1], &adj, 2, ScheduleStrategy::Sort2);
            let fresh = s.translate_adjacency(&adj);
            let before = out.slots.as_ptr();
            s.translate_adjacency_into(&adj, &mut out);
            assert_eq!(out, fresh, "reused translation diverged");
            (before, out.slots.as_ptr())
        };
        assert_eq!(slots_ptr.0, slots_ptr.1, "slot storage was reallocated");
    }

    #[test]
    fn simple_strategy_matches_symmetric_content() {
        // The simple strategy must fetch exactly the same ghost *sets* and
        // produce matched segments, even though segment order may differ.
        let g = meshgen::triangulated_grid(10, 8, 0.3, 5);
        let n = g.num_vertices();
        let part = BlockPartition::from_sizes(&[25, 30, 25]);
        assert_eq!(part.n(), n);
        let part_for_run = part.clone();
        let g_for_run = g.clone();
        let spec = ClusterSpec::uniform(3).with_network(NetworkSpec::zero_cost());
        let report = Cluster::new(spec).run(move |env| {
            let adj = LocalAdjacency::extract(&g_for_run, &part_for_run, env.rank());
            let s = build_schedule_simple(env, &part_for_run, &adj, &InspectorCostModel::zero());
            s.validate(&part_for_run);
            s
        });
        let simple: Vec<CommSchedule> = report.into_results();
        // Cross-rank matched.
        for q in 0..3 {
            for r in 0..3 {
                if q == r {
                    continue;
                }
                let start = part.interval_of(q).start as u32;
                let sent: Vec<u32> = simple[q]
                    .sends()
                    .iter()
                    .find(|(peer, _)| *peer == r)
                    .map(|(_, l)| l.iter().map(|&x| x + start).collect())
                    .unwrap_or_default();
                let expected: Vec<u32> = simple[r]
                    .recvs()
                    .iter()
                    .find(|(peer, _)| *peer == q)
                    .map(|(_, g)| g.clone())
                    .unwrap_or_default();
                assert_eq!(sent, expected, "simple segment {q} → {r}");
            }
        }
        // Same ghost sets as the symmetric builder.
        for (r, simple_r) in simple.iter().enumerate() {
            let adj = LocalAdjacency::extract(&g, &part, r);
            let (sym, _) = build_schedule_symmetric(&part, &adj, r, ScheduleStrategy::Sort2);
            let mut a: Vec<u32> = simple_r
                .recvs()
                .iter()
                .flat_map(|(_, g)| g.clone())
                .collect();
            let mut b: Vec<u32> = sym.recvs().iter().flat_map(|(_, g)| g.clone()).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "rank {r} ghost sets differ");
        }
    }

    #[test]
    fn simple_strategy_sends_more_messages() {
        let g = meshgen::triangulated_grid(10, 8, 0.3, 5);
        let part = BlockPartition::uniform(80, 4);
        let part2 = part.clone();
        let spec = ClusterSpec::uniform(4).with_network(NetworkSpec::zero_cost());
        let report = Cluster::new(spec).run(move |env| {
            let adj = LocalAdjacency::extract(&g, &part2, env.rank());
            let _ = build_schedule_simple(env, &part2, &adj, &InspectorCostModel::zero());
            env.stats().messages_sent
        });
        for msgs in report.results() {
            // Three all-to-all rounds: ≥ 3 × (p − 1) messages per rank.
            assert!(*msgs >= 9, "expected ≥ 9 messages, got {msgs}");
        }
    }

    #[test]
    fn strategy_names() {
        assert_eq!(ScheduleStrategy::Sort1.name(), "Sort1");
        assert_eq!(ScheduleStrategy::Simple.name(), "Simple Strategy");
        assert_eq!(ScheduleStrategy::ALL.len(), 3);
    }
}
