//! Translation tables: global index → (processor, local index).
//!
//! Fig. 3 of the paper. Two implementations:
//!
//! * [`IntervalTable`] — the paper's contribution-enabling representation:
//!   because each processor owns a contiguous interval of the 1-D list,
//!   storing first/last per processor suffices. Memory is `O(p)`, it is
//!   replicated everywhere, and dereferencing never communicates.
//! * [`DenseTable`] — "a simple implementation of a translation table
//!   stores, for each element, the name of its home processor and its local
//!   address" \[27\]. Memory is `O(n)`; the paper notes replicating it "is not
//!   feasible for applications with large data sets", which is why the
//!   simple schedule strategy distributes it by blocks and pays
//!   communication to dereference.

use stance_onedim::BlockPartition;

/// The `O(p)` replicated interval translation table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntervalTable {
    partition: BlockPartition,
}

impl IntervalTable {
    /// Wraps a block partition as a translation table.
    pub fn new(partition: BlockPartition) -> Self {
        IntervalTable { partition }
    }

    /// The underlying partition.
    #[inline]
    pub fn partition(&self) -> &BlockPartition {
        &self.partition
    }

    /// Total elements.
    #[inline]
    pub fn n(&self) -> usize {
        self.partition.n()
    }

    /// Number of processors.
    #[inline]
    pub fn num_procs(&self) -> usize {
        self.partition.num_procs()
    }

    /// Dereferences a global index to `(processor, local index)` with binary
    /// search over the block bounds.
    #[inline]
    pub fn locate(&self, g: usize) -> (usize, usize) {
        self.partition.locate(g)
    }

    /// Linear-search dereference, exactly as described in §3.2 ("the list is
    /// searched until the processor holding the element is found").
    #[inline]
    pub fn locate_linear(&self, g: usize) -> (usize, usize) {
        self.partition.locate_linear(g)
    }

    /// The home processor of `g`.
    #[inline]
    pub fn owner_of(&self, g: usize) -> usize {
        self.partition.owner_of(g)
    }

    /// Approximate replicated memory footprint in bytes (two `usize` bounds
    /// per processor) — the quantity the paper contrasts with the `O(n)`
    /// dense table.
    pub fn memory_bytes(&self) -> usize {
        self.num_procs() * 2 * std::mem::size_of::<usize>()
    }
}

/// The explicit per-element table: `entry[g] = (processor, local index)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DenseTable {
    entries: Vec<(u32, u32)>,
}

impl DenseTable {
    /// Materializes the dense table from a partition.
    pub fn from_partition(partition: &BlockPartition) -> Self {
        let mut entries = vec![(0u32, 0u32); partition.n()];
        for proc in 0..partition.num_procs() {
            let iv = partition.interval_of(proc);
            for (local, g) in iv.iter().enumerate() {
                entries[g] = (proc as u32, local as u32);
            }
        }
        DenseTable { entries }
    }

    /// Dereferences a global index.
    #[inline]
    pub fn locate(&self, g: usize) -> (usize, usize) {
        let (p, l) = self.entries[g];
        (p as usize, l as usize)
    }

    /// Number of elements.
    #[inline]
    pub fn n(&self) -> usize {
        self.entries.len()
    }

    /// Memory footprint in bytes if replicated on one processor.
    pub fn memory_bytes(&self) -> usize {
        self.entries.len() * std::mem::size_of::<(u32, u32)>()
    }

    /// The block of table entries a given *table owner* holds when the table
    /// is block-distributed across `p` processors (the simple strategy's
    /// layout): owner `r` holds entries `[r·⌈n/p⌉, min((r+1)·⌈n/p⌉, n))`.
    pub fn segment_bounds(n: usize, p: usize, table_owner: usize) -> (usize, usize) {
        let chunk = n.div_ceil(p);
        let start = (table_owner * chunk).min(n);
        let end = ((table_owner + 1) * chunk).min(n);
        (start, end)
    }

    /// The table owner of entry `g` under block distribution.
    #[inline]
    pub fn table_owner_of(g: usize, n: usize, p: usize) -> usize {
        let chunk = n.div_ceil(p);
        g / chunk
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stance_onedim::Arrangement;

    fn partition() -> BlockPartition {
        BlockPartition::from_weights(20, &[0.3, 0.2, 0.5], Arrangement::new(vec![1, 0, 2]))
    }

    #[test]
    fn interval_and_dense_agree() {
        let part = partition();
        let it = IntervalTable::new(part.clone());
        let dt = DenseTable::from_partition(&part);
        for g in 0..20 {
            assert_eq!(it.locate(g), dt.locate(g), "mismatch at {g}");
            assert_eq!(it.locate(g), it.locate_linear(g), "linear mismatch at {g}");
        }
    }

    #[test]
    fn interval_table_memory_is_o_p() {
        let it = IntervalTable::new(partition());
        let dt = DenseTable::from_partition(it.partition());
        assert!(it.memory_bytes() < dt.memory_bytes());
        assert_eq!(it.memory_bytes(), 3 * 2 * 8);
        assert_eq!(dt.memory_bytes(), 20 * 8);
    }

    #[test]
    fn locate_matches_paper_description() {
        // "The local address of a particular element is computed by
        // subtracting it from the first element that belongs to its home
        // processor."
        let part = partition();
        let it = IntervalTable::new(part.clone());
        for proc in 0..3 {
            let iv = part.interval_of(proc);
            for g in iv.iter() {
                assert_eq!(it.locate(g), (proc, g - iv.start));
            }
        }
    }

    #[test]
    fn segment_bounds_cover_everything() {
        let n = 23;
        let p = 4;
        let mut covered = 0;
        for r in 0..p {
            let (s, e) = DenseTable::segment_bounds(n, p, r);
            covered += e - s;
            for g in s..e {
                assert_eq!(DenseTable::table_owner_of(g, n, p), r);
            }
        }
        assert_eq!(covered, n);
    }

    #[test]
    fn segment_bounds_empty_tail() {
        // n = 4, p = 3 → chunk 2: segments [0,2), [2,4), [4,4).
        assert_eq!(DenseTable::segment_bounds(4, 3, 0), (0, 2));
        assert_eq!(DenseTable::segment_bounds(4, 3, 1), (2, 4));
        assert_eq!(DenseTable::segment_bounds(4, 3, 2), (4, 4));
    }
}
