//! An open-addressing hash map from global indices to small integers.
//!
//! §3.2: "The first phase removes duplicate accesses to avoid fetching a
//! data item more than once. This is done by using a hash table." This is
//! that hash table: linear-probing, power-of-two capacity, `u32 → u32`,
//! tuned for the inspector's access pattern (bulk inserts of mesh indices,
//! then bulk lookups during translation). It exists instead of
//! `std::collections::HashMap` both for fidelity to the paper and because
//! SipHash would dominate the inspector's measured cost profile.

/// Sentinel meaning "slot empty". Global indices equal to `u32::MAX` are
/// therefore not supported (lists of length `2³² − 1` are beyond the u32
/// index space anyway).
const EMPTY: u32 = u32::MAX;

/// A linear-probing `u32 → u32` hash map.
#[derive(Debug, Clone)]
pub struct RefHashMap {
    /// Keys; `EMPTY` marks free slots.
    keys: Vec<u32>,
    values: Vec<u32>,
    len: usize,
    /// `capacity − 1`; capacity is a power of two.
    mask: usize,
}

impl RefHashMap {
    /// Creates a map sized for about `expected` entries (load factor ≤ 0.5).
    pub fn with_capacity(expected: usize) -> Self {
        let capacity = (expected.max(4) * 2).next_power_of_two();
        RefHashMap {
            keys: vec![EMPTY; capacity],
            values: vec![0; capacity],
            len: 0,
            mask: capacity - 1,
        }
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Fibonacci hashing: multiply by the 32-bit golden-ratio constant and
    /// take the high bits — cheap and well-distributed for consecutive mesh
    /// indices.
    #[inline]
    fn slot_of(&self, key: u32) -> usize {
        let h = key.wrapping_mul(0x9E37_79B9);
        (h as usize) & self.mask
    }

    /// Inserts `key → value` if absent; returns the existing value if
    /// present (the dedup primitive: first writer wins).
    ///
    /// # Panics
    /// Panics on `key == u32::MAX`.
    pub fn insert_if_absent(&mut self, key: u32, value: u32) -> Option<u32> {
        assert_ne!(key, EMPTY, "u32::MAX is reserved as the empty sentinel");
        if (self.len + 1) * 2 > self.keys.len() {
            self.grow();
        }
        let mut slot = self.slot_of(key);
        loop {
            let k = self.keys[slot];
            if k == EMPTY {
                self.keys[slot] = key;
                self.values[slot] = value;
                self.len += 1;
                return None;
            }
            if k == key {
                return Some(self.values[slot]);
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// Looks up `key`.
    pub fn get(&self, key: u32) -> Option<u32> {
        if key == EMPTY {
            return None;
        }
        let mut slot = self.slot_of(key);
        loop {
            let k = self.keys[slot];
            if k == EMPTY {
                return None;
            }
            if k == key {
                return Some(self.values[slot]);
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// Whether `key` is present.
    #[inline]
    pub fn contains(&self, key: u32) -> bool {
        self.get(key).is_some()
    }

    /// Removes every entry while keeping the allocated capacity, so a map
    /// recycled across inspector runs stops paying its allocation after the
    /// first use. O(capacity) (two memsets), which is cheaper than the
    /// insert pass that follows any reuse.
    pub fn clear(&mut self) {
        self.keys.fill(EMPTY);
        self.len = 0;
    }

    /// Iterates over `(key, value)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.keys
            .iter()
            .zip(&self.values)
            .filter(|(&k, _)| k != EMPTY)
            .map(|(&k, &v)| (k, v))
    }

    /// Semantic equality: same key→value mapping, independent of capacity
    /// and probe layout.
    fn logically_equals(&self, other: &RefHashMap) -> bool {
        self.len == other.len && self.iter().all(|(k, v)| other.get(k) == Some(v))
    }

    fn grow(&mut self) {
        let new_capacity = self.keys.len() * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY; new_capacity]);
        let old_values = std::mem::replace(&mut self.values, vec![0; new_capacity]);
        self.mask = new_capacity - 1;
        self.len = 0;
        for (k, v) in old_keys.into_iter().zip(old_values) {
            if k != EMPTY {
                self.insert_if_absent(k, v);
            }
        }
    }
}

impl PartialEq for RefHashMap {
    fn eq(&self, other: &Self) -> bool {
        self.logically_equals(other)
    }
}

impl Eq for RefHashMap {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equality_is_semantic() {
        let mut a = RefHashMap::with_capacity(2);
        let mut b = RefHashMap::with_capacity(64);
        for i in 0..20u32 {
            a.insert_if_absent(i, i * 2);
            b.insert_if_absent(19 - i, (19 - i) * 2);
        }
        assert_eq!(a, b);
        b.insert_if_absent(100, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn insert_and_get() {
        let mut m = RefHashMap::with_capacity(4);
        assert_eq!(m.insert_if_absent(10, 0), None);
        assert_eq!(m.insert_if_absent(20, 1), None);
        assert_eq!(m.get(10), Some(0));
        assert_eq!(m.get(20), Some(1));
        assert_eq!(m.get(30), None);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn dedup_semantics() {
        let mut m = RefHashMap::with_capacity(4);
        assert_eq!(m.insert_if_absent(7, 0), None);
        // Second insert returns the first value; the map is unchanged.
        assert_eq!(m.insert_if_absent(7, 99), Some(0));
        assert_eq!(m.get(7), Some(0));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn growth_preserves_entries() {
        let mut m = RefHashMap::with_capacity(2);
        for i in 0..1000u32 {
            assert_eq!(m.insert_if_absent(i * 3, i), None);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u32 {
            assert_eq!(m.get(i * 3), Some(i), "key {}", i * 3);
        }
        assert_eq!(m.get(1), None);
    }

    #[test]
    fn colliding_keys_probe() {
        // Keys engineered to hash to nearby slots still resolve.
        let mut m = RefHashMap::with_capacity(8);
        let cap = 16u32; // capacity after ×2 rounding
        for i in 0..8 {
            // Same low bits after the multiply is hard to force exactly;
            // instead just insert many keys into a small map.
            m.insert_if_absent(i * cap, i);
        }
        for i in 0..8 {
            assert_eq!(m.get(i * cap), Some(i));
        }
    }

    #[test]
    fn iter_yields_all() {
        let mut m = RefHashMap::with_capacity(4);
        for i in 0..50u32 {
            m.insert_if_absent(i, i + 100);
        }
        let mut pairs: Vec<_> = m.iter().collect();
        pairs.sort_unstable();
        assert_eq!(pairs.len(), 50);
        assert_eq!(pairs[0], (0, 100));
        assert_eq!(pairs[49], (49, 149));
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn sentinel_key_rejected() {
        let mut m = RefHashMap::with_capacity(4);
        m.insert_if_absent(u32::MAX, 0);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut m = RefHashMap::with_capacity(4);
        for i in 0..100u32 {
            m.insert_if_absent(i, i);
        }
        let cap = m.keys.len();
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.get(5), None);
        assert_eq!(m.keys.len(), cap, "clear must not release storage");
        m.insert_if_absent(7, 70);
        assert_eq!(m.get(7), Some(70));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn empty_map() {
        let m = RefHashMap::with_capacity(0);
        assert!(m.is_empty());
        assert_eq!(m.get(0), None);
        assert!(!m.contains(5));
    }
}
