//! # stance-inspector — Phase B: address translation and communication
//! schedules
//!
//! §3.2 of the paper: "Parallel loops can be transformed into an inspector
//! and an executor. The inspector examines the data references and computes
//! the off-processor data to be fetched. It also computes where the data
//! will be stored once it is received."
//!
//! The inspector has two jobs:
//!
//! 1. **Data referencing** — translating global indices into
//!    `(processor, local index)` pairs. Because Phase A produced a
//!    one-dimensional list partitioned into contiguous blocks, the whole
//!    translation "table" is the `O(p)` replicated list of block bounds
//!    ([`translation::IntervalTable`], Fig. 3). The explicit per-element
//!    table ([`translation::DenseTable`]) is implemented as the baseline the
//!    paper compares against.
//! 2. **Communication schedules** — for each processor: which local elements
//!    to send to whom (*send list*) and where received elements land in the
//!    local buffer (*permutation list*). Three builders are provided
//!    ([`schedule`]):
//!    * [`ScheduleStrategy::Sort1`] — symmetry-exploiting, communication-free;
//!      sorts both send lists and permutation segments (Fig. 4);
//!    * [`ScheduleStrategy::Sort2`] — same, but the send list is produced in
//!      ascending local order by construction, so only the receive side
//!      sorts;
//!    * [`ScheduleStrategy::Simple`] — the general strategy: dereference
//!      through a block-distributed explicit translation table and exchange
//!      request lists (two message rounds), as in PARTI/CHAOS \[27\].
//!
//! Duplicate off-processor references are removed with an open-addressing
//! hash table ([`refhash::RefHashMap`]), "to avoid fetching a data item more
//! than once".

#![forbid(unsafe_code)]

pub mod adjacency;
pub mod cost;
pub mod refhash;
pub mod schedule;
pub mod translation;

pub use adjacency::LocalAdjacency;
pub use cost::InspectorCostModel;
pub use refhash::RefHashMap;
pub use schedule::{
    build_schedule_simple, build_schedule_symmetric, build_schedule_symmetric_with, CommSchedule,
    LocalRef, ScheduleScratch, ScheduleStrategy, TranslatedAdjacency,
};
pub use translation::{DenseTable, IntervalTable};
