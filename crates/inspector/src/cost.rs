//! Cost accounting for inspector work.
//!
//! The simulator charges compute in *reference seconds* (see `stance-sim`),
//! so the inspector needs a model of what its own operations cost on the
//! reference workstation. The constants below are calibrated to mid-90s
//! SUN4-class hardware running an instrumented runtime library (a few
//! microseconds per pointer-chasing operation), which reproduces the
//! magnitude of the paper's Table 3 (~0.1–0.3 s schedule builds for a 30k
//! vertex mesh).
//!
//! Builders *count* operations into an [`InspectorWork`]; the model turns
//! counts into seconds. Keeping counting separate from pricing lets tests
//! assert exact op counts and lets ablations reprice without rebuilding.

/// Operation counts accumulated while building a schedule.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct InspectorWork {
    /// Hash-table probes/inserts (duplicate removal, ghost numbering).
    pub hash_ops: u64,
    /// Interval-table dereferences (binary search over `O(p)` bounds).
    pub translate_ops: u64,
    /// Items scanned or copied into lists.
    pub scan_ops: u64,
    /// Σ over sorted arrays of `len · ⌈log₂ len⌉` (comparison-sort work).
    pub sort_item_log: f64,
}

impl InspectorWork {
    /// Records sorting an array of `len` items.
    pub fn add_sort(&mut self, len: usize) {
        if len > 1 {
            self.sort_item_log += len as f64 * (len as f64).log2().ceil();
        }
    }

    /// Merges counts from another phase.
    pub fn merge(&mut self, other: &InspectorWork) {
        self.hash_ops += other.hash_ops;
        self.translate_ops += other.translate_ops;
        self.scan_ops += other.scan_ops;
        self.sort_item_log += other.sort_item_log;
    }
}

/// Prices [`InspectorWork`] in reference seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InspectorCostModel {
    /// Seconds per hash probe/insert.
    pub per_hash_op: f64,
    /// Seconds per interval-table dereference.
    pub per_translate: f64,
    /// Seconds per scanned/copied item.
    pub per_scan: f64,
    /// Seconds per `item · log₂(item)` unit of sorting.
    pub per_sort_unit: f64,
    /// Seconds of CPU to *service* one inspector-protocol message (unpack a
    /// request, dispatch it, build the reply). Under P4 on mid-90s Unix this
    /// was milliseconds — kernel crossings, copies, scheduler round-trips —
    /// and it is what makes the simple strategy degrade as processors (and
    /// thus protocol messages) are added, Table 3's key effect. The wire
    /// model's `send_setup`/`recv_overhead` cover only the transport layer.
    pub per_message_service: f64,
}

impl InspectorCostModel {
    /// SUN4-class constants (see module docs).
    pub fn sun4() -> Self {
        InspectorCostModel {
            per_hash_op: 4.0e-6,
            per_translate: 5.0e-6,
            per_scan: 1.0e-6,
            per_sort_unit: 1.0e-6,
            per_message_service: 8.0e-3,
        }
    }

    /// A free model (tests that only care about schedule structure).
    pub fn zero() -> Self {
        InspectorCostModel {
            per_hash_op: 0.0,
            per_translate: 0.0,
            per_scan: 0.0,
            per_sort_unit: 0.0,
            per_message_service: 0.0,
        }
    }

    /// Prices a work record.
    pub fn seconds(&self, work: &InspectorWork) -> f64 {
        work.hash_ops as f64 * self.per_hash_op
            + work.translate_ops as f64 * self.per_translate
            + work.scan_ops as f64 * self.per_scan
            + work.sort_item_log * self.per_sort_unit
    }
}

impl Default for InspectorCostModel {
    fn default() -> Self {
        Self::sun4()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sort_accounting() {
        let mut w = InspectorWork::default();
        w.add_sort(8); // 8 × 3 = 24
        assert_eq!(w.sort_item_log, 24.0);
        w.add_sort(1); // no-op
        w.add_sort(0);
        assert_eq!(w.sort_item_log, 24.0);
    }

    #[test]
    fn pricing() {
        let w = InspectorWork {
            hash_ops: 10,
            translate_ops: 20,
            scan_ops: 40,
            sort_item_log: 100.0,
        };
        let m = InspectorCostModel {
            per_hash_op: 1.0,
            per_translate: 2.0,
            per_scan: 3.0,
            per_sort_unit: 4.0,
            per_message_service: 0.0,
        };
        assert_eq!(m.seconds(&w), 10.0 + 40.0 + 120.0 + 400.0);
        assert_eq!(InspectorCostModel::zero().seconds(&w), 0.0);
    }

    #[test]
    fn merge_sums() {
        let mut a = InspectorWork {
            hash_ops: 1,
            translate_ops: 2,
            scan_ops: 3,
            sort_item_log: 4.0,
        };
        a.merge(&a.clone());
        assert_eq!(a.hash_ops, 2);
        assert_eq!(a.sort_item_log, 8.0);
    }

    #[test]
    fn sun4_magnitudes() {
        // A p=2 symmetric build over half the Fig. 9 mesh: ~45k references
        // translated, boundary-sized hashing/sorting. Must land in Table 3's
        // 0.1–0.3 s range.
        let w = InspectorWork {
            hash_ops: 3_000,
            translate_ops: 45_000,
            scan_ops: 3_000,
            sort_item_log: 15_000.0,
        };
        let s = InspectorCostModel::sun4().seconds(&w);
        assert!(s > 0.1 && s < 0.4, "cost {s} out of expected magnitude");
    }
}
