//! The ghosted local buffer: a rank's owned values plus the off-processor
//! values the gather fetches, in one contiguous allocation.
//!
//! Fig. 4 of the paper draws each processor's buffer as "local data"
//! followed by "off processor data"; the inspector's translated adjacency
//! indexes directly into this combined layout (owned values at
//! `0..local_len`, ghost slot `s` at `local_len + s`). The buffer is generic
//! over the application's [`Element`] type — `GhostedArray<f64>` is the
//! paper's array, `GhostedArray<[f64; K]>` a multi-field state vector.

use stance_sim::Element;

/// A rank's owned block plus ghost region.
#[derive(Debug, Clone, PartialEq)]
pub struct GhostedArray<E: Element = f64> {
    data: Vec<E>,
    local_len: usize,
}

impl<E: Element> GhostedArray<E> {
    /// Creates a buffer with `local_len` owned slots and `num_ghosts` ghost
    /// slots, all [`Element::zero`].
    pub fn zeros(local_len: usize, num_ghosts: usize) -> Self {
        GhostedArray {
            data: vec![E::zero(); local_len + num_ghosts],
            local_len,
        }
    }

    /// Creates a buffer from owned values, appending `num_ghosts` zeroed
    /// ghost slots.
    pub fn from_local(local: Vec<E>, num_ghosts: usize) -> Self {
        let local_len = local.len();
        let mut data = local;
        data.resize(local_len + num_ghosts, E::zero());
        GhostedArray { data, local_len }
    }

    /// Number of owned elements.
    #[inline]
    pub fn local_len(&self) -> usize {
        self.local_len
    }

    /// Number of ghost slots.
    #[inline]
    pub fn num_ghosts(&self) -> usize {
        self.data.len() - self.local_len
    }

    /// The owned values.
    #[inline]
    pub fn local(&self) -> &[E] {
        &self.data[..self.local_len]
    }

    /// Mutable owned values.
    #[inline]
    pub fn local_mut(&mut self) -> &mut [E] {
        &mut self.data[..self.local_len]
    }

    /// The ghost region.
    #[inline]
    pub fn ghosts(&self) -> &[E] {
        &self.data[self.local_len..]
    }

    /// Mutable ghost region.
    #[inline]
    pub fn ghosts_mut(&mut self) -> &mut [E] {
        let start = self.local_len;
        &mut self.data[start..]
    }

    /// The whole combined buffer (what translated adjacencies index into).
    #[inline]
    pub fn combined(&self) -> &[E] {
        &self.data
    }

    /// Mutable combined buffer.
    #[inline]
    pub fn combined_mut(&mut self) -> &mut [E] {
        &mut self.data
    }

    /// Replaces the owned values (length must match).
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn set_local(&mut self, values: &[E]) {
        assert_eq!(values.len(), self.local_len, "local length mismatch");
        self.data[..self.local_len].copy_from_slice(values);
    }

    /// Resizes for a new distribution: keeps nothing (used after
    /// redistribution, when the owner writes a fresh block).
    pub fn reset(&mut self, local_len: usize, num_ghosts: usize) {
        self.data.clear();
        self.data.resize(local_len + num_ghosts, E::zero());
        self.local_len = local_len;
    }

    /// Rebuilds the buffer **in place** for a new distribution: the owned
    /// block becomes a copy of `local`, followed by `num_ghosts` zeroed
    /// ghost slots. Capacity is reused whenever the new combined size fits
    /// (and never shrinks), so a remap whose blocks stay in the same size
    /// class performs no allocation here — unlike dropping the array and
    /// building a fresh one from [`GhostedArray::from_local`].
    pub fn rebuild_from(&mut self, local: &[E], num_ghosts: usize) {
        self.data.clear();
        self.data.extend_from_slice(local);
        self.data.resize(local.len() + num_ghosts, E::zero());
        self.local_len = local.len();
    }

    /// Swaps the whole combined buffer with `buf` — the double-buffered
    /// commit: a loop that sweeps into a combined-size scratch publishes
    /// the new owned values by exchanging `Vec` pointers instead of
    /// copying element by element ([`GhostedArray::set_local`]'s memcpy).
    /// The Fig. 4 layout is preserved — owned values stay at
    /// `0..local_len`, ghosts after them — but the ghost region now holds
    /// whatever `buf` carried there (typically last iteration's ghosts),
    /// so it is **stale until the next gather**, which overwrites every
    /// ghost slot.
    ///
    /// # Panics
    /// Panics if `buf`'s length differs from the combined buffer's.
    pub fn swap_data(&mut self, buf: &mut Vec<E>) {
        assert_eq!(buf.len(), self.data.len(), "combined length mismatch");
        std::mem::swap(&mut self.data, buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout() {
        let mut a: GhostedArray = GhostedArray::zeros(3, 2);
        assert_eq!(a.local_len(), 3);
        assert_eq!(a.num_ghosts(), 2);
        assert_eq!(a.combined().len(), 5);
        a.local_mut()[1] = 7.0;
        a.ghosts_mut()[0] = 9.0;
        assert_eq!(a.combined(), &[0.0, 7.0, 0.0, 9.0, 0.0]);
    }

    #[test]
    fn from_local_appends_ghosts() {
        let a = GhostedArray::from_local(vec![1.0, 2.0], 3);
        assert_eq!(a.local(), &[1.0, 2.0]);
        assert_eq!(a.ghosts(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn set_local_and_reset() {
        let mut a: GhostedArray = GhostedArray::zeros(2, 1);
        a.set_local(&[4.0, 5.0]);
        assert_eq!(a.local(), &[4.0, 5.0]);
        a.reset(4, 0);
        assert_eq!(a.local_len(), 4);
        assert_eq!(a.num_ghosts(), 0);
        assert_eq!(a.local(), &[0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn set_local_checks_length() {
        let mut a: GhostedArray = GhostedArray::zeros(2, 0);
        a.set_local(&[1.0]);
    }

    #[test]
    fn empty_buffers() {
        let a: GhostedArray = GhostedArray::zeros(0, 0);
        assert!(a.local().is_empty());
        assert!(a.ghosts().is_empty());
    }

    #[test]
    fn rebuild_from_reuses_capacity() {
        let mut a: GhostedArray = GhostedArray::from_local(vec![1.0, 2.0, 3.0, 4.0], 2);
        let ptr = a.combined().as_ptr();
        // Shrinking rebuild: same storage, new layout, ghosts zeroed.
        a.rebuild_from(&[7.0, 8.0], 3);
        assert_eq!(a.local(), &[7.0, 8.0]);
        assert_eq!(a.ghosts(), &[0.0, 0.0, 0.0]);
        assert_eq!(a.combined().as_ptr(), ptr, "rebuild must reuse capacity");
        // Growing past capacity is allowed (reallocates once).
        a.rebuild_from(&[1.0; 64], 8);
        assert_eq!(a.local_len(), 64);
        assert_eq!(a.num_ghosts(), 8);
    }

    #[test]
    fn swap_data_exchanges_buffers_without_copying() {
        let mut a: GhostedArray = GhostedArray::from_local(vec![1.0, 2.0], 1);
        let mut buf = vec![7.0, 8.0, 9.0];
        let buf_ptr = buf.as_ptr();
        a.swap_data(&mut buf);
        assert_eq!(a.local(), &[7.0, 8.0]);
        assert_eq!(a.ghosts(), &[9.0]);
        assert_eq!(buf, vec![1.0, 2.0, 0.0]);
        // Pointer swap, not a copy.
        assert_eq!(a.combined().as_ptr(), buf_ptr);
    }

    #[test]
    #[should_panic(expected = "combined length mismatch")]
    fn swap_data_checks_length() {
        let mut a: GhostedArray = GhostedArray::zeros(2, 1);
        a.swap_data(&mut vec![0.0; 2]);
    }

    #[test]
    fn multi_field_elements() {
        let mut a: GhostedArray<[f64; 2]> = GhostedArray::zeros(2, 1);
        a.set_local(&[[1.0, 2.0], [3.0, 4.0]]);
        assert_eq!(a.combined(), &[[1.0, 2.0], [3.0, 4.0], [0.0, 0.0]]);
        a.ghosts_mut()[0] = [5.0, 6.0];
        assert_eq!(a.ghosts(), &[[5.0, 6.0]]);
    }
}
