//! The paper's irregular loop (Fig. 8) and its parallel executor.
//!
//! ```text
//! for 1 ≤ i ≤ number_of_vertices
//!     t[i] := Σ_k y[ia[k]]          (sum over i's neighbors)
//! for 1 ≤ i ≤ number_of_vertices
//!     y[i] := t[i] / degree(i)
//! ```
//!
//! a Jacobi-style relaxation over the unstructured mesh: every vertex
//! replaces its value by the average of its neighbors. The parallel form
//! gathers ghost values first, then sweeps owned vertices through the
//! translated adjacency. Because the translated adjacency preserves the
//! graph's (ascending-neighbor) CSR order, the parallel computation sums in
//! exactly the sequential order — results are **bitwise identical** to the
//! sequential reference, which the integration tests assert.

use stance_inspector::{CommSchedule, LocalAdjacency, TranslatedAdjacency};
use stance_locality::Graph;
use stance_sim::Env;

use crate::cost::ComputeCostModel;
use crate::ghosted::GhostedArray;
use crate::primitives::gather;

/// One relaxation sweep over owned vertices: reads the combined buffer,
/// writes averaged values into `out` (length = owned vertices). Zero-degree
/// vertices keep their value.
pub fn parallel_relaxation_step(
    tadj: &TranslatedAdjacency,
    values: &GhostedArray,
    out: &mut [f64],
) {
    assert_eq!(out.len(), tadj.len(), "output length mismatch");
    let combined = values.combined();
    for l in 0..tadj.len() {
        let nbrs = tadj.neighbors_of(l);
        if nbrs.is_empty() {
            out[l] = combined[l];
            continue;
        }
        let mut t = 0.0;
        for &s in nbrs {
            t += combined[s as usize];
        }
        out[l] = t / nbrs.len() as f64;
    }
}

/// One local sweep of the shifted graph-Laplacian operator:
/// `out[i] = (deg(i) + shift) · x[i] − Σ_{j ∈ adj(i)} x[j]`, reading ghost
/// values from the combined buffer. With `shift > 0` the operator is
/// symmetric positive definite — the workhorse of iterative solvers (see
/// the `cg_solver` example).
pub fn laplacian_matvec_step(
    tadj: &TranslatedAdjacency,
    values: &GhostedArray,
    shift: f64,
    out: &mut [f64],
) {
    assert_eq!(out.len(), tadj.len(), "output length mismatch");
    let combined = values.combined();
    for l in 0..tadj.len() {
        let nbrs = tadj.neighbors_of(l);
        let mut acc = (nbrs.len() as f64 + shift) * combined[l];
        for &s in nbrs {
            acc -= combined[s as usize];
        }
        out[l] = acc;
    }
}

/// Sequential reference for [`laplacian_matvec_step`] over the whole graph.
pub fn sequential_laplacian_matvec(graph: &Graph, x: &[f64], shift: f64, out: &mut [f64]) {
    assert_eq!(x.len(), graph.num_vertices());
    assert_eq!(out.len(), graph.num_vertices());
    for (i, o) in out.iter_mut().enumerate() {
        let nbrs = graph.neighbors(i);
        let mut acc = (nbrs.len() as f64 + shift) * x[i];
        for &j in nbrs {
            acc -= x[j as usize];
        }
        *o = acc;
    }
}

/// The sequential reference: `iters` sweeps of Fig. 8 over the whole graph.
pub fn sequential_relaxation(graph: &Graph, y: &mut [f64], iters: usize) {
    assert_eq!(y.len(), graph.num_vertices(), "value array length mismatch");
    let n = graph.num_vertices();
    let mut t = vec![0.0; n];
    for _ in 0..iters {
        for (i, ti) in t.iter_mut().enumerate() {
            let nbrs = graph.neighbors(i);
            if nbrs.is_empty() {
                *ti = y[i];
                continue;
            }
            let mut acc = 0.0;
            for &j in nbrs {
                acc += y[j as usize];
            }
            *ti = acc / nbrs.len() as f64;
        }
        y.copy_from_slice(&t);
    }
}

/// Timing of a [`LoopRunner`] execution.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LoopStats {
    /// Iterations executed.
    pub iterations: usize,
    /// Virtual seconds spent in the compute sweep (expanded by machine
    /// speed and external load — this is what the load monitor samples).
    pub compute_time: f64,
}

impl LoopStats {
    /// "Average computation time per data item" (§5): the capability
    /// estimate the paper's load balancer uses.
    pub fn avg_time_per_item(&self, owned_items: usize) -> f64 {
        if owned_items == 0 || self.iterations == 0 {
            return 0.0;
        }
        self.compute_time / (self.iterations as f64 * owned_items as f64)
    }
}

/// Drives the gather + sweep iteration on one rank.
pub struct LoopRunner {
    schedule: CommSchedule,
    tadj: TranslatedAdjacency,
    cost: ComputeCostModel,
    scratch: Vec<f64>,
}

impl LoopRunner {
    /// Builds a runner from a schedule and the rank's adjacency.
    pub fn new(schedule: CommSchedule, adj: &LocalAdjacency, cost: ComputeCostModel) -> Self {
        let tadj = schedule.translate_adjacency(adj);
        let scratch = vec![0.0; tadj.len()];
        LoopRunner {
            schedule,
            tadj,
            cost,
            scratch,
        }
    }

    /// The schedule in use.
    pub fn schedule(&self) -> &CommSchedule {
        &self.schedule
    }

    /// The translated adjacency.
    pub fn tadj(&self) -> &TranslatedAdjacency {
        &self.tadj
    }

    /// Allocates the ghosted value buffer for this runner with the given
    /// owned values.
    pub fn make_values(&self, local: Vec<f64>) -> GhostedArray {
        assert_eq!(local.len(), self.tadj.len(), "owned value length mismatch");
        GhostedArray::from_local(local, self.tadj.num_ghosts() as usize)
    }

    /// Runs `iters` iterations: gather ghosts, charge and perform the sweep,
    /// commit the new values. Returns measured timing.
    pub fn run(&mut self, env: &mut Env, values: &mut GhostedArray, iters: usize) -> LoopStats {
        let mut stats = LoopStats::default();
        let sweep = self
            .cost
            .sweep_work(self.tadj.len(), self.tadj.num_refs());
        for _ in 0..iters {
            gather(env, &self.schedule, values, &self.cost);
            let t0 = env.now();
            env.compute(sweep);
            parallel_relaxation_step(&self.tadj, values, &mut self.scratch);
            values.set_local(&self.scratch);
            stats.compute_time += env.now() - t0;
            stats.iterations += 1;
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stance_inspector::{build_schedule_symmetric, ScheduleStrategy};
    use stance_locality::meshgen;
    use stance_onedim::BlockPartition;
    use stance_sim::{Cluster, ClusterSpec, NetworkSpec};

    fn initial_values(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i as f64).sin() * 10.0).collect()
    }

    #[test]
    fn sequential_step_by_hand() {
        // Path 0-1-2: after one sweep y = [y1, (y0+y2)/2, y1].
        let g = Graph::from_edges(
            3,
            &[(0, 1), (1, 2)],
            vec![[0.0; 3], [1.0, 0.0, 0.0], [2.0, 0.0, 0.0]],
            2,
        );
        let mut y = vec![1.0, 2.0, 5.0];
        sequential_relaxation(&g, &mut y, 1);
        assert_eq!(y, vec![2.0, 3.0, 2.0]);
    }

    #[test]
    fn sequential_converges_to_mean_on_clique() {
        // On a complete graph the average of neighbors converges fast.
        let edges = [(0u32, 1u32), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
        let g = Graph::from_edges(4, &edges, vec![[0.0; 3]; 4], 2);
        let mut y = vec![0.0, 4.0, 8.0, 12.0];
        sequential_relaxation(&g, &mut y, 60);
        let mean = y.iter().sum::<f64>() / 4.0;
        for v in &y {
            assert!((v - mean).abs() < 1e-9);
        }
    }

    #[test]
    fn isolated_vertex_keeps_value() {
        let g = Graph::from_edges(3, &[(0, 1)], vec![[0.0; 3]; 3], 2);
        let mut y = vec![1.0, 3.0, 7.0];
        sequential_relaxation(&g, &mut y, 5);
        assert_eq!(y[2], 7.0);
    }

    #[test]
    fn parallel_matches_sequential_bitwise() {
        let g = meshgen::triangulated_grid(11, 9, 0.4, 6);
        let n = g.num_vertices();
        let iters = 12;
        let mut expected = initial_values(n);
        sequential_relaxation(&g, &mut expected, iters);

        for p in [2usize, 3, 4] {
            let part = BlockPartition::uniform(n, p);
            let g2 = g.clone();
            let part2 = part.clone();
            let spec = ClusterSpec::uniform(p).with_network(NetworkSpec::zero_cost());
            let report = Cluster::new(spec).run(move |env| {
                let rank = env.rank();
                let adj = LocalAdjacency::extract(&g2, &part2, rank);
                let (sched, _) =
                    build_schedule_symmetric(&part2, &adj, rank, ScheduleStrategy::Sort1);
                let mut runner = LoopRunner::new(sched, &adj, ComputeCostModel::zero());
                let iv = part2.interval_of(rank);
                let init = initial_values(n);
                let mut values = runner.make_values(init[iv.start..iv.end].to_vec());
                runner.run(env, &mut values, iters);
                values.local().to_vec()
            });
            let mut got = Vec::with_capacity(n);
            for r in report.into_results() {
                got.extend(r);
            }
            assert_eq!(got, expected, "p = {p} diverged from sequential");
        }
    }

    #[test]
    fn laplacian_matvec_parallel_matches_sequential() {
        let g = meshgen::triangulated_grid(9, 8, 0.3, 4);
        let n = g.num_vertices();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();
        let shift = 1.0;
        let mut expected = vec![0.0; n];
        sequential_laplacian_matvec(&g, &x, shift, &mut expected);

        let part = BlockPartition::uniform(n, 3);
        let x2 = x.clone();
        let spec = ClusterSpec::uniform(3).with_network(NetworkSpec::zero_cost());
        let report = Cluster::new(spec).run(move |env| {
            let rank = env.rank();
            let adj = LocalAdjacency::extract(&g, &part, rank);
            let (sched, _) =
                build_schedule_symmetric(&part, &adj, rank, ScheduleStrategy::Sort2);
            let tadj = sched.translate_adjacency(&adj);
            let iv = part.interval_of(rank);
            let mut values = GhostedArray::from_local(
                x2[iv.start..iv.end].to_vec(),
                tadj.num_ghosts() as usize,
            );
            crate::primitives::gather(env, &sched, &mut values, &ComputeCostModel::zero());
            let mut out = vec![0.0; tadj.len()];
            laplacian_matvec_step(&tadj, &values, shift, &mut out);
            out
        });
        let mut got = Vec::with_capacity(n);
        for r in report.into_results() {
            got.extend(r);
        }
        assert_eq!(got, expected);
    }

    #[test]
    fn laplacian_of_constant_is_shift_scaled() {
        // L·1 = 0, so (L + shift·I)·1 = shift·1.
        let g = meshgen::triangulated_grid(5, 5, 0.0, 0);
        let n = g.num_vertices();
        let x = vec![1.0; n];
        let mut out = vec![0.0; n];
        sequential_laplacian_matvec(&g, &x, 2.5, &mut out);
        for &v in &out {
            assert!((v - 2.5).abs() < 1e-12);
        }
    }

    #[test]
    fn loop_stats_measure_compute() {
        let g = meshgen::triangulated_grid(8, 8, 0.0, 0);
        let n = g.num_vertices();
        let part = BlockPartition::uniform(n, 2);
        let cost = ComputeCostModel::sun4();
        let spec = ClusterSpec::uniform(2).with_network(NetworkSpec::zero_cost());
        let report = Cluster::new(spec).run(|env| {
            let rank = env.rank();
            let adj = LocalAdjacency::extract(&g, &part, rank);
            let refs = adj.num_refs();
            let owned = adj.len();
            let (sched, _) = build_schedule_symmetric(&part, &adj, rank, ScheduleStrategy::Sort2);
            let mut runner = LoopRunner::new(sched, &adj, cost);
            let mut values = runner.make_values(vec![0.0; owned]);
            let stats = runner.run(env, &mut values, 10);
            (stats, owned, refs)
        });
        for (stats, owned, refs) in report.results() {
            let expected = 10.0 * cost.sweep_work(*owned, *refs);
            assert!(
                (stats.compute_time - expected).abs() < 1e-9,
                "compute time {} != expected {expected}",
                stats.compute_time
            );
            assert!(stats.avg_time_per_item(*owned) > 0.0);
            assert_eq!(stats.iterations, 10);
        }
    }

    #[test]
    fn loaded_machine_reports_higher_per_item_time() {
        use stance_sim::LoadTimeline;
        let g = meshgen::triangulated_grid(8, 8, 0.0, 0);
        let n = g.num_vertices();
        let part = BlockPartition::uniform(n, 2);
        let spec = ClusterSpec::uniform(2)
            .with_network(NetworkSpec::zero_cost())
            .with_load(0, LoadTimeline::constant(1.0 / 3.0));
        let report = Cluster::new(spec).run(|env| {
            let rank = env.rank();
            let adj = LocalAdjacency::extract(&g, &part, rank);
            let owned = adj.len();
            let (sched, _) = build_schedule_symmetric(&part, &adj, rank, ScheduleStrategy::Sort2);
            let mut runner = LoopRunner::new(sched, &adj, ComputeCostModel::sun4());
            let mut values = runner.make_values(vec![0.0; owned]);
            let stats = runner.run(env, &mut values, 4);
            stats.avg_time_per_item(owned)
        });
        let per_item: Vec<f64> = report.into_results();
        // Rank 0 runs at 1/3 availability: ~3× the per-item time.
        let ratio = per_item[0] / per_item[1];
        assert!(
            (ratio - 3.0).abs() < 0.2,
            "expected ~3× slowdown, got {ratio}"
        );
    }

    #[test]
    fn avg_time_per_item_edge_cases() {
        let s = LoopStats::default();
        assert_eq!(s.avg_time_per_item(10), 0.0);
        let s2 = LoopStats {
            iterations: 2,
            compute_time: 4.0,
        };
        assert_eq!(s2.avg_time_per_item(0), 0.0);
        assert_eq!(s2.avg_time_per_item(2), 1.0);
    }
}
