//! The application-facing kernel API and the generic parallel-loop runner.
//!
//! The paper pitches the runtime as support for *data-parallel
//! applications*: the runtime owns partitioning, the inspector,
//! gather/scatter and load balancing, while the application supplies two
//! things — the per-vertex state type ([`Element`](stance_sim::Element))
//! and the sweep over it ([`Kernel`]). A new workload is therefore a type
//! implementing `Kernel` (usually a few dozen lines), not a fork of the
//! executor.
//!
//! Two kernels ship with the runtime:
//!
//! * [`RelaxationKernel`] — the paper's Fig. 8 irregular loop,
//!
//!   ```text
//!   for 1 ≤ i ≤ number_of_vertices
//!       t[i] := Σ_k y[ia[k]]          (sum over i's neighbors)
//!   for 1 ≤ i ≤ number_of_vertices
//!       y[i] := t[i] / degree(i)
//!   ```
//!
//!   a Jacobi-style relaxation: every vertex replaces its value by the
//!   average of its neighbors;
//! * [`LaplacianKernel`] — the shifted graph-Laplacian operator
//!   `out[i] = (deg(i) + shift) · x[i] − Σ_{j ∈ adj(i)} x[j]`, the matvec
//!   of iterative solvers (see the `cg_solver` example).
//!
//! Both are generic over any [`Field`] element (`f64`, or `[f64; K]` for
//! multi-field state). Because the translated adjacency preserves the
//! graph's (ascending-neighbor) CSR order, a parallel sweep accumulates in
//! exactly the sequential order — results are **bitwise identical** to the
//! sequential references, which the integration tests assert.

use std::ops::Range;

use stance_inspector::{CommSchedule, LocalAdjacency, TranslatedAdjacency};
use stance_locality::Graph;
use stance_sim::{Comm, Element};

use crate::buffers::CommBuffers;
use crate::cost::ComputeCostModel;
use crate::ghosted::GhostedArray;
use crate::primitives::{gather, gather_finish, gather_start};
use crate::team::SweepTeam;

/// Elements with the componentwise arithmetic the built-in kernels need.
///
/// Separate from [`Element`](stance_sim::Element) because the runtime core
/// (gather, scatter, redistribution) only needs to *move* elements; only
/// kernels need to compute with them. Operations take `self` by value —
/// elements are small `Copy` records.
pub trait Field: Element {
    /// Number of scalar components per element (`1` for `f64`, `K` for
    /// `[f64; K]`). The built-in kernels scale their sweep cost by this,
    /// so a multi-field sweep is charged for the arithmetic it actually
    /// performs.
    const FIELDS: usize;

    /// Componentwise sum.
    fn add(self, rhs: Self) -> Self;
    /// Componentwise difference.
    fn sub(self, rhs: Self) -> Self;
    /// Componentwise product with a scalar.
    fn scale(self, k: f64) -> Self;
    /// Componentwise quotient by a scalar. Distinct from
    /// `scale(1.0 / k)` so generic kernels keep the bitwise behaviour of
    /// their scalar originals (IEEE division is not multiplication by a
    /// reciprocal).
    fn div(self, k: f64) -> Self;
}

impl Field for f64 {
    const FIELDS: usize = 1;

    #[inline]
    fn add(self, rhs: Self) -> Self {
        self + rhs
    }
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        self - rhs
    }
    #[inline]
    fn scale(self, k: f64) -> Self {
        self * k
    }
    #[inline]
    fn div(self, k: f64) -> Self {
        self / k
    }
}

impl<const K: usize> Field for [f64; K] {
    const FIELDS: usize = K;

    #[inline]
    fn add(mut self, rhs: Self) -> Self {
        for (a, b) in self.iter_mut().zip(rhs) {
            *a += b;
        }
        self
    }
    #[inline]
    fn sub(mut self, rhs: Self) -> Self {
        for (a, b) in self.iter_mut().zip(rhs) {
            *a -= b;
        }
        self
    }
    #[inline]
    fn scale(mut self, k: f64) -> Self {
        for a in &mut self {
            *a *= k;
        }
        self
    }
    #[inline]
    fn div(mut self, k: f64) -> Self {
        for a in &mut self {
            *a /= k;
        }
        self
    }
}

/// An application's sweep over its owned vertices.
///
/// The runtime guarantees `combined` is the Fig. 4 layout — owned values at
/// `0..out.len()`, gathered ghost values after them — and that the
/// translated adjacency's local references index into it. The kernel reads
/// `combined`, writes one output per owned vertex, and stays oblivious to
/// partitioning, communication and load balancing.
///
/// The [`Kernel::cost`] hook prices one sweep in reference seconds so the
/// simulator's virtual clock (and therefore the load monitor feeding the
/// paper's remap controller) stays honest for non-default kernels.
///
/// `Sync` is a supertrait so a rank's worker team ([`crate::SweepTeam`])
/// can share one `&Kernel` across its lanes. Kernels are plain parameter
/// records in practice (every kernel in this repository is `Copy`), so the
/// bound costs nothing: a type only fails it by holding un-synchronized
/// interior mutability, which would make the sweep order-dependent and
/// break the bitwise-reproducibility contract anyway.
pub trait Kernel<E: Element>: Sync {
    /// One sweep: reads the combined (owned ++ ghost) buffer through the
    /// translated adjacency, writes owned outputs.
    ///
    /// Implementations must write every slot of `out` and may not assume
    /// anything about its previous contents.
    fn sweep(&self, tadj: &TranslatedAdjacency, combined: &[E], out: &mut [E]);

    /// Sweeps only the owned vertices in `range` (a contiguous run of
    /// local indices), writing `out[range]` and leaving the rest of `out`
    /// untouched. `out` is still the full owned-output slice, so
    /// implementations index it exactly as in [`Kernel::sweep`].
    ///
    /// This is the split-phase hook: the runner sweeps the *interior* runs
    /// (vertices with no ghost references — see
    /// [`TranslatedAdjacency::interior_runs`]) while the ghost gather is
    /// in flight, and the boundary runs after it completes. Per-vertex
    /// outputs must depend only on `combined` entries the vertex
    /// references — true for any kernel fitting this trait's model — so
    /// splitting the sweep cannot change any value.
    ///
    /// The default delegates to [`Kernel::sweep`], recomputing **every**
    /// vertex: existing kernels stay correct without changes (the runner's
    /// boundary phase rewrites all slots with fully-gathered data, so
    /// interior-phase values computed from stale ghosts never survive),
    /// but they forfeit the overlap's work saving and redo the full sweep
    /// per delegated call — the runner bounds how many such calls a phase
    /// can make (fragmented classifications collapse to one bounding-range
    /// call; see `MAX_PRECISE_RUNS` in this module), so a delegating
    /// kernel never degrades past a small constant factor. Override with
    /// a real ranged loop — usually the `sweep` body with `range` as the
    /// loop bounds — to get split-phase performance.
    fn sweep_range(
        &self,
        tadj: &TranslatedAdjacency,
        combined: &[E],
        out: &mut [E],
        range: Range<usize>,
    ) {
        let _ = range;
        self.sweep(tadj, combined, out);
    }

    /// The throughput-tuned variant of [`Kernel::sweep_range`]: identical
    /// contract (write exactly `out[range]` from `combined`, bitwise equal
    /// to what `sweep_range` would write), but the *preferred* entry point
    /// for every sweep the runner issues — full, interior and boundary
    /// phases alike all funnel through it via [`sweep_phase`].
    ///
    /// The default delegates to [`Kernel::sweep_range`], so user kernels
    /// need not know this hook exists. The built-in kernels point the
    /// delegation the other way: their `sweep_chunked` is the real
    /// implementation — a cache-blocked loop over the CSR window
    /// ([`TranslatedAdjacency::csr_window`]) that walks the slot array as
    /// one moving slice, eliminating the per-vertex row-pointer bounds
    /// checks so rustc keeps the accumulation loop tight enough to
    /// autovectorize the componentwise arithmetic of `[f64; K]` fields —
    /// and their `sweep_range`/`sweep` delegate to it. Override this (and
    /// make `sweep_range` delegate to it) only when your kernel has a
    /// blocked formulation whose *per-vertex accumulation order* is
    /// unchanged; otherwise bitwise reproducibility across team sizes and
    /// gather flavours is lost.
    fn sweep_chunked(
        &self,
        tadj: &TranslatedAdjacency,
        combined: &[E],
        out: &mut [E],
        range: Range<usize>,
    ) {
        self.sweep_range(tadj, combined, out, range);
    }

    /// Reference-seconds of work one sweep over `vertices` owned vertices
    /// with `references` total neighbor references performs. The default is
    /// the paper's relaxation pricing; override it if your kernel does
    /// substantially more (or less) arithmetic per reference.
    ///
    /// The split-phase runner charges each phase separately —
    /// `cost(interior vertices, interior refs)` before the wait and
    /// `cost(boundary vertices, boundary refs)` after — so keep this hook
    /// linear in its arguments (as the default is) if you enable overlap;
    /// a nonlinear hook would charge the split differently than the whole.
    fn cost(&self, model: &ComputeCostModel, vertices: usize, references: usize) -> f64 {
        model.sweep_work(vertices, references)
    }
}

/// Phases with at most this many runs are swept run by run; more
/// fragmented phases collapse to one bounding-range `sweep_range` call.
/// The cap exists for kernels that keep the *default* `sweep_range`
/// (which delegates to a full sweep): without it, a pathologically
/// interleaved interior/boundary classification — e.g. a shuffled vertex
/// numbering — would issue one full sweep per run, turning an O(N)
/// iteration into O(runs × N). With the cap, a delegating kernel does at
/// most `MAX_PRECISE_RUNS` full sweeps per phase, and fragmented meshes
/// do exactly one.
const MAX_PRECISE_RUNS: usize = 32;

/// Sweeps one split-phase phase (the interior or the boundary runs).
///
/// Precise mode calls `sweep_chunked` once per run (which defaults to the
/// kernel's `sweep_range`) — no redundant work for range-honoring
/// kernels. Fragmented phases (more than
/// [`MAX_PRECISE_RUNS`] runs) use one call spanning first-run start to
/// last-run end instead. The bounding span also sweeps vertices of the
/// *other* class, which is harmless for any conforming kernel: per-vertex
/// outputs are pure functions of their referenced inputs, so an interior
/// vertex recomputes the same value in either phase, and a boundary
/// vertex swept early (against stale ghosts) is rewritten by the boundary
/// phase, whose span covers every boundary vertex. Both modes therefore
/// produce bitwise-identical final outputs; the choice depends only on
/// the schedule, never on timing.
pub fn sweep_phase<E, K>(
    kernel: &K,
    tadj: &TranslatedAdjacency,
    combined: &[E],
    out: &mut [E],
    runs: impl Iterator<Item = Range<usize>> + Clone,
) where
    E: Element,
    K: Kernel<E> + ?Sized,
{
    if runs.clone().count() <= MAX_PRECISE_RUNS {
        for run in runs {
            kernel.sweep_chunked(tadj, combined, out, run);
        }
    } else {
        // Runs are ascending and disjoint: the bounding span is
        // first-start .. last-end.
        let start = runs.clone().next().expect("count > cap > 0").start;
        let end = runs.last().expect("count > cap > 0").end;
        kernel.sweep_chunked(tadj, combined, out, start..end);
    }
}

/// Vertices per cache block of the built-in chunked sweeps. With the
/// meshes' ~6 references per vertex this bounds one block's working set
/// (row pointers + slots + outputs) to a few tens of KiB — comfortably L1/L2
/// resident — while keeping the per-block setup (one CSR window, two slice
/// bounds proofs) amortized over hundreds of vertices.
const SWEEP_BLOCK: usize = 512;

/// The paper's Fig. 8 relaxation: each vertex becomes the average of its
/// neighbors (zero-degree vertices keep their value). Works on any
/// [`Field`] element, componentwise.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RelaxationKernel;

impl<E: Field> Kernel<E> for RelaxationKernel {
    fn sweep(&self, tadj: &TranslatedAdjacency, combined: &[E], out: &mut [E]) {
        self.sweep_chunked(tadj, combined, out, 0..tadj.len());
    }

    fn sweep_range(
        &self,
        tadj: &TranslatedAdjacency,
        combined: &[E],
        out: &mut [E],
        range: std::ops::Range<usize>,
    ) {
        self.sweep_chunked(tadj, combined, out, range);
    }

    // One machine-code copy per element type, shared by the synchronous
    // full sweep and the split-phase per-run calls (`sweep` and
    // `sweep_range` are trivial delegations, so every path lands here):
    // letting each call site inline its own copy hands the two gather
    // flavours differently laid-out hot loops, and measured sync-vs-split
    // deltas then track code placement instead of communication (observed
    // at ±60% on this ~4 ns/vertex loop).
    //
    // The loop is cache-blocked over the CSR window: per block, the row
    // pointers are one local slice and the block's slots are consumed as a
    // moving `split_at` slice, so the inner accumulation runs with no
    // per-vertex row-pointer indexing and a single slice-length bound —
    // tight enough for rustc to autovectorize the componentwise arithmetic
    // of `[f64; K]` fields. The per-vertex accumulation order is exactly
    // CSR (ascending-neighbor) order, so outputs stay bitwise identical to
    // the scalar formulation.
    #[inline(never)]
    fn sweep_chunked(
        &self,
        tadj: &TranslatedAdjacency,
        combined: &[E],
        out: &mut [E],
        range: std::ops::Range<usize>,
    ) {
        assert_eq!(out.len(), tadj.len(), "output length mismatch");
        let mut block_start = range.start;
        while block_start < range.end {
            let block_end = range.end.min(block_start + SWEEP_BLOCK);
            let (xadj, slots) = tadj.csr_window(block_start..block_end);
            let mut rest = &slots[xadj[0]..xadj[block_end - block_start]];
            let mut prev = xadj[0];
            for (i, o) in out[block_start..block_end].iter_mut().enumerate() {
                let (nbrs, tail) = rest.split_at(xadj[i + 1] - prev);
                prev = xadj[i + 1];
                rest = tail;
                if nbrs.is_empty() {
                    *o = combined[block_start + i];
                    continue;
                }
                let mut t = E::zero();
                for &s in nbrs {
                    t = t.add(combined[s as usize]);
                }
                *o = t.div(nbrs.len() as f64);
            }
            block_start = block_end;
        }
    }

    fn cost(&self, model: &ComputeCostModel, vertices: usize, references: usize) -> f64 {
        // One add per reference and one divide per vertex — per component.
        E::FIELDS as f64 * model.sweep_work(vertices, references)
    }
}

/// The shifted graph-Laplacian operator
/// `out[i] = (deg(i) + shift) · x[i] − Σ_{j ∈ adj(i)} x[j]`. With
/// `shift > 0` the operator is symmetric positive definite — the workhorse
/// of iterative solvers (see the `cg_solver` example).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaplacianKernel {
    /// The diagonal shift added to every vertex degree.
    pub shift: f64,
}

impl<E: Field> Kernel<E> for LaplacianKernel {
    fn sweep(&self, tadj: &TranslatedAdjacency, combined: &[E], out: &mut [E]) {
        self.sweep_chunked(tadj, combined, out, 0..tadj.len());
    }

    fn sweep_range(
        &self,
        tadj: &TranslatedAdjacency,
        combined: &[E],
        out: &mut [E],
        range: std::ops::Range<usize>,
    ) {
        self.sweep_chunked(tadj, combined, out, range);
    }

    // See RelaxationKernel::sweep_chunked: one shared cache-blocked copy
    // keeps the two gather flavours on identical machine code, and the
    // moving-slice CSR walk keeps the inner loop free of per-vertex
    // row-pointer bounds checks without changing the accumulation order.
    #[inline(never)]
    fn sweep_chunked(
        &self,
        tadj: &TranslatedAdjacency,
        combined: &[E],
        out: &mut [E],
        range: std::ops::Range<usize>,
    ) {
        assert_eq!(out.len(), tadj.len(), "output length mismatch");
        let mut block_start = range.start;
        while block_start < range.end {
            let block_end = range.end.min(block_start + SWEEP_BLOCK);
            let (xadj, slots) = tadj.csr_window(block_start..block_end);
            let mut rest = &slots[xadj[0]..xadj[block_end - block_start]];
            let mut prev = xadj[0];
            for (i, o) in out[block_start..block_end].iter_mut().enumerate() {
                let (nbrs, tail) = rest.split_at(xadj[i + 1] - prev);
                prev = xadj[i + 1];
                rest = tail;
                let mut acc = combined[block_start + i].scale(nbrs.len() as f64 + self.shift);
                for &s in nbrs {
                    acc = acc.sub(combined[s as usize]);
                }
                *o = acc;
            }
            block_start = block_end;
        }
    }

    fn cost(&self, model: &ComputeCostModel, vertices: usize, references: usize) -> f64 {
        // One subtract per reference and one scale per vertex — per
        // component.
        E::FIELDS as f64 * model.sweep_work(vertices, references)
    }
}

/// One relaxation sweep over owned vertices, as a free function (a thin
/// wrapper over [`RelaxationKernel`] for callers that drive the pieces by
/// hand).
pub fn parallel_relaxation_step<E: Field>(
    tadj: &TranslatedAdjacency,
    values: &GhostedArray<E>,
    out: &mut [E],
) {
    RelaxationKernel.sweep(tadj, values.combined(), out);
}

/// One local Laplacian matvec sweep, as a free function (a thin wrapper
/// over [`LaplacianKernel`]).
pub fn laplacian_matvec_step<E: Field>(
    tadj: &TranslatedAdjacency,
    values: &GhostedArray<E>,
    shift: f64,
    out: &mut [E],
) {
    LaplacianKernel { shift }.sweep(tadj, values.combined(), out);
}

/// Sequential reference for [`LaplacianKernel`] over the whole graph.
pub fn sequential_laplacian_matvec<E: Field>(graph: &Graph, x: &[E], shift: f64, out: &mut [E]) {
    assert_eq!(x.len(), graph.num_vertices());
    assert_eq!(out.len(), graph.num_vertices());
    for (i, o) in out.iter_mut().enumerate() {
        let nbrs = graph.neighbors(i);
        let mut acc = x[i].scale(nbrs.len() as f64 + shift);
        for &j in nbrs {
            acc = acc.sub(x[j as usize]);
        }
        *o = acc;
    }
}

/// The sequential reference: `iters` sweeps of Fig. 8 over the whole graph.
pub fn sequential_relaxation<E: Field>(graph: &Graph, y: &mut [E], iters: usize) {
    assert_eq!(y.len(), graph.num_vertices(), "value array length mismatch");
    let n = graph.num_vertices();
    let mut t = vec![E::zero(); n];
    for _ in 0..iters {
        for (i, ti) in t.iter_mut().enumerate() {
            let nbrs = graph.neighbors(i);
            if nbrs.is_empty() {
                *ti = y[i];
                continue;
            }
            let mut acc = E::zero();
            for &j in nbrs {
                acc = acc.add(y[j as usize]);
            }
            *ti = acc.div(nbrs.len() as f64);
        }
        y.copy_from_slice(&t);
    }
}

/// Timing of a [`LoopRunner`] execution.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LoopStats {
    /// Iterations executed.
    pub iterations: usize,
    /// Seconds spent in the compute sweep, in the backend's time: virtual
    /// seconds on the simulator (expanded by machine speed and external
    /// load), wall-clock seconds on the native backend. Either way this is
    /// what the load monitor samples.
    pub compute_time: f64,
}

impl LoopStats {
    /// "Average computation time per data item" (§5): the capability
    /// estimate the paper's load balancer uses.
    pub fn avg_time_per_item(&self, owned_items: usize) -> f64 {
        if owned_items == 0 || self.iterations == 0 {
            return 0.0;
        }
        self.compute_time / (self.iterations as f64 * owned_items as f64)
    }
}

/// Drives the gather + sweep iteration of one [`Kernel`] on one rank.
///
/// The runner owns the transport scratch ([`CommBuffers`]) alongside the
/// sweep scratch: both are sized from the schedule at construction and
/// rebuilt only on remap, so steady-state iterations perform zero heap
/// allocations (see `tests/alloc_free.rs`). The sweep scratch is a full
/// combined-size buffer, which lets [`LoopRunner::run`] commit each
/// iteration by *swapping* it with the value buffer (one pointer exchange)
/// instead of copying the owned block.
///
/// With [`LoopRunner::with_overlap`] the runner uses the **split-phase
/// gather**: receives and sends are posted, the interior vertices (which
/// reference no gathered data) are swept while the bytes are in flight,
/// and the boundary vertices are swept after the gather completes.
/// Results are bitwise identical to the synchronous path on every backend
/// — per-vertex outputs depend only on the referenced inputs, which are
/// the same in both orders (pinned by `tests/backend_equivalence.rs`).
pub struct LoopRunner<E: Element = f64, K: Kernel<E> = RelaxationKernel> {
    schedule: CommSchedule,
    tadj: TranslatedAdjacency,
    cost: ComputeCostModel,
    kernel: K,
    /// Combined-size sweep scratch: the owned prefix receives sweep
    /// outputs; the ghost suffix exists so commits can swap whole buffers
    /// with the value array (its content is stale by construction and
    /// rewritten by the next gather).
    scratch: Vec<E>,
    bufs: CommBuffers<E>,
    /// Whether [`LoopRunner::apply`] uses the split-phase gather.
    overlap: bool,
    /// The rank's worker team, present when [`LoopRunner::with_team`] was
    /// given more than one lane. `None` means every sweep runs on the rank
    /// thread exactly as before teams existed.
    team: Option<SweepTeam<E>>,
}

impl<E: Element, K: Kernel<E>> LoopRunner<E, K> {
    /// Builds a runner from a schedule, the rank's adjacency, and the
    /// application's kernel. The gather is synchronous by default; enable
    /// the split-phase path with [`LoopRunner::with_overlap`].
    pub fn new(
        schedule: CommSchedule,
        adj: &LocalAdjacency,
        cost: ComputeCostModel,
        kernel: K,
    ) -> Self {
        let tadj = schedule.translate_adjacency(adj);
        let scratch = vec![E::zero(); tadj.buffer_len()];
        let bufs = CommBuffers::for_schedule(&schedule);
        LoopRunner {
            schedule,
            tadj,
            cost,
            kernel,
            scratch,
            bufs,
            overlap: false,
            team: None,
        }
    }

    /// Selects the gather flavour: `true` overlaps the ghost exchange with
    /// the interior sweep (split-phase), `false` keeps the synchronous
    /// gather-then-sweep order. The setting survives
    /// [`LoopRunner::rebuild`].
    pub fn with_overlap(mut self, overlap: bool) -> Self {
        self.overlap = overlap;
        self
    }

    /// Whether this runner overlaps communication with computation.
    pub fn overlap(&self) -> bool {
        self.overlap
    }

    /// Attaches a persistent worker team of `lanes` compute lanes (lane 0
    /// is the rank thread itself; `lanes - 1` parked worker threads are
    /// spawned now and recycled across every iteration and remap). `1`
    /// detaches the team. Outputs are **bitwise identical** for every
    /// `lanes` value — the team splits sweeps by deterministic static
    /// chunking and commits lane results in fixed lane order — so the team
    /// size is purely a throughput knob. The cost model is updated in
    /// tandem (see [`ComputeCostModel::with_team`]) so the simulator's
    /// clock, and through it the load balancer, sees the rank's effective
    /// speed.
    ///
    /// # Panics
    /// Panics if `lanes` is zero.
    pub fn with_team(mut self, lanes: usize) -> Self {
        assert!(lanes >= 1, "a rank has at least one compute lane");
        self.cost = self.cost.with_team(lanes);
        self.team = (lanes > 1).then(|| {
            let mut team = SweepTeam::new(lanes);
            team.rebuild_splits(&self.tadj);
            team
        });
        self
    }

    /// The number of compute lanes sweeps run on (`1` without a team).
    pub fn team_lanes(&self) -> usize {
        self.team.as_ref().map_or(1, SweepTeam::lanes)
    }

    /// The schedule in use.
    pub fn schedule(&self) -> &CommSchedule {
        &self.schedule
    }

    /// The translated adjacency.
    pub fn tadj(&self) -> &TranslatedAdjacency {
        &self.tadj
    }

    /// The application kernel.
    pub fn kernel(&self) -> &K {
        &self.kernel
    }

    /// Replaces the schedule and adjacency (after a remap) while keeping
    /// the kernel, cost model and overlap setting — **in place**: the
    /// translated adjacency, the transport scratch ([`CommBuffers`]) and
    /// the sweep scratch are all rebuilt into their existing storage
    /// (capacity never shrinks), so a rebuild's allocation count is
    /// bounded and does not grow with how many remaps preceded it.
    ///
    /// Returns the retired schedule so the caller can recycle its storage
    /// (e.g. via `ScheduleScratch::recycle`) instead of dropping it.
    pub fn rebuild(&mut self, schedule: CommSchedule, adj: &LocalAdjacency) -> CommSchedule {
        schedule.translate_adjacency_into(adj, &mut self.tadj);
        self.bufs.rebuild(&schedule);
        let retired = std::mem::replace(&mut self.schedule, schedule);
        // Stale content is fine: `apply` rewrites the owned prefix every
        // sweep and the ghost suffix is rewritten by every gather before
        // any read (the same argument as `GhostedArray::swap_data`).
        self.scratch.resize(self.tadj.buffer_len(), E::zero());
        // The lane splits derive from the run classification, so a remap
        // invalidates them; the team itself (threads, staging capacity)
        // is recycled.
        if let Some(team) = &mut self.team {
            team.rebuild_splits(&self.tadj);
        }
        retired
    }

    /// Allocates the ghosted value buffer for this runner with the given
    /// owned values.
    pub fn make_values(&self, local: Vec<E>) -> GhostedArray<E> {
        assert_eq!(local.len(), self.tadj.len(), "owned value length mismatch");
        GhostedArray::from_local(local, self.tadj.num_ghosts() as usize)
    }

    /// Rebuilds an existing ghosted value buffer **in place** for this
    /// runner's (post-remap) shape: owned block = a copy of `local`,
    /// ghost region zeroed, capacity reused where it fits. The in-place
    /// counterpart of [`LoopRunner::make_values`].
    ///
    /// # Panics
    /// Panics if `local` does not match the runner's owned length.
    pub fn reset_values(&self, values: &mut GhostedArray<E>, local: &[E]) {
        assert_eq!(local.len(), self.tadj.len(), "owned value length mismatch");
        values.rebuild_from(local, self.tadj.num_ghosts() as usize);
    }

    /// One application of the kernel *without* committing: gathers ghosts,
    /// charges and performs the sweep, and leaves the result in
    /// [`LoopRunner::scratch`]. The input values' owned block is untouched
    /// — this is what operator-style workloads (matvec inside a solver)
    /// use. Which gather runs (synchronous or split-phase) follows the
    /// [`LoopRunner::with_overlap`] setting; the results are bitwise
    /// identical either way.
    pub fn apply<C: Comm>(&mut self, env: &mut C, values: &mut GhostedArray<E>) -> LoopStats {
        if self.overlap {
            self.apply_overlapped(env, values)
        } else {
            self.apply_synchronous(env, values)
        }
    }

    /// The synchronous path: complete the whole gather, then sweep.
    fn apply_synchronous<C: Comm>(
        &mut self,
        env: &mut C,
        values: &mut GhostedArray<E>,
    ) -> LoopStats {
        let work = self
            .kernel
            .cost(&self.cost, self.tadj.len(), self.tadj.num_refs());
        gather(env, &self.schedule, values, &self.cost, &mut self.bufs);
        let t0 = env.now_secs();
        env.compute(work);
        match &mut self.team {
            Some(team) => team.sweep_full(
                &self.kernel,
                &self.tadj,
                values.combined(),
                &mut self.scratch[..self.tadj.len()],
            ),
            None => self.kernel.sweep(
                &self.tadj,
                values.combined(),
                &mut self.scratch[..self.tadj.len()],
            ),
        }
        LoopStats {
            iterations: 1,
            compute_time: env.now_secs() - t0,
        }
    }

    /// The split-phase path: post the gather, sweep the interior runs
    /// while bytes are in flight, complete the gather, sweep the boundary
    /// runs. Interior compute is charged *before* the wait, so on the
    /// simulator the virtual clock advances past the modelled arrivals and
    /// the wait costs only what the interior sweep could not hide; on the
    /// native backend the overlap is real wall-clock overlap across
    /// threads.
    fn apply_overlapped<C: Comm>(
        &mut self,
        env: &mut C,
        values: &mut GhostedArray<E>,
    ) -> LoopStats {
        let interior_work = self.kernel.cost(
            &self.cost,
            self.tadj.num_interior(),
            self.tadj.interior_refs(),
        );
        let boundary_work = self.kernel.cost(
            &self.cost,
            self.tadj.num_boundary(),
            self.tadj.boundary_refs(),
        );
        let local_len = self.tadj.len();

        gather_start(env, &self.schedule, values, &self.cost, &mut self.bufs);

        let t0 = env.now_secs();
        env.compute(interior_work);
        match &mut self.team {
            Some(team) => team.sweep_interior(
                &self.kernel,
                &self.tadj,
                values.combined(),
                &mut self.scratch[..local_len],
            ),
            None => sweep_phase(
                &self.kernel,
                &self.tadj,
                values.combined(),
                &mut self.scratch[..local_len],
                self.tadj.interior_runs(),
            ),
        }
        let interior_time = env.now_secs() - t0;

        gather_finish(env, &self.schedule, values, &self.cost, &mut self.bufs);

        let t1 = env.now_secs();
        env.compute(boundary_work);
        sweep_phase(
            &self.kernel,
            &self.tadj,
            values.combined(),
            &mut self.scratch[..local_len],
            self.tadj.boundary_runs(),
        );
        LoopStats {
            iterations: 1,
            compute_time: interior_time + env.now_secs() - t1,
        }
    }

    /// The output of the most recent [`LoopRunner::apply`] (one element per
    /// owned vertex).
    pub fn scratch(&self) -> &[E] {
        &self.scratch[..self.tadj.len()]
    }

    /// Runs `iters` iterations: gather ghosts, charge and perform the
    /// sweep, commit the new values. The commit is double-buffered — the
    /// sweep scratch and the value buffer exchange pointers instead of
    /// copying the owned block, so committing is O(1) regardless of block
    /// size. Returns measured timing.
    pub fn run<C: Comm>(
        &mut self,
        env: &mut C,
        values: &mut GhostedArray<E>,
        iters: usize,
    ) -> LoopStats {
        let mut stats = LoopStats::default();
        for _ in 0..iters {
            let step = self.apply(env, values);
            // O(1) commit: the swapped-in ghost region is stale, but the
            // next iteration's gather rewrites every ghost slot before any
            // sweep reads it. (After the swap, `scratch()` holds the
            // *previous* values, not the committed output — callers that
            // need the output of a non-committing application use
            // `apply` + `scratch()`.)
            values.swap_data(&mut self.scratch);
            stats.compute_time += step.compute_time;
            stats.iterations += 1;
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stance_inspector::{build_schedule_symmetric, ScheduleStrategy};
    use stance_locality::meshgen;
    use stance_onedim::BlockPartition;
    use stance_sim::{Cluster, ClusterSpec, Env, NetworkSpec};

    fn initial_values(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i as f64).sin() * 10.0).collect()
    }

    #[test]
    fn sequential_step_by_hand() {
        // Path 0-1-2: after one sweep y = [y1, (y0+y2)/2, y1].
        let g = Graph::from_edges(
            3,
            &[(0, 1), (1, 2)],
            vec![[0.0; 3], [1.0, 0.0, 0.0], [2.0, 0.0, 0.0]],
            2,
        );
        let mut y = vec![1.0, 2.0, 5.0];
        sequential_relaxation(&g, &mut y, 1);
        assert_eq!(y, vec![2.0, 3.0, 2.0]);
    }

    #[test]
    fn sequential_converges_to_mean_on_clique() {
        // On a complete graph the average of neighbors converges fast.
        let edges = [(0u32, 1u32), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
        let g = Graph::from_edges(4, &edges, vec![[0.0; 3]; 4], 2);
        let mut y = vec![0.0, 4.0, 8.0, 12.0];
        sequential_relaxation(&g, &mut y, 60);
        let mean = y.iter().sum::<f64>() / 4.0;
        for v in &y {
            assert!((v - mean).abs() < 1e-9);
        }
    }

    #[test]
    fn isolated_vertex_keeps_value() {
        let g = Graph::from_edges(3, &[(0, 1)], vec![[0.0; 3]; 3], 2);
        let mut y = vec![1.0, 3.0, 7.0];
        sequential_relaxation(&g, &mut y, 5);
        assert_eq!(y[2], 7.0);
    }

    #[test]
    fn parallel_matches_sequential_bitwise() {
        let g = meshgen::triangulated_grid(11, 9, 0.4, 6);
        let n = g.num_vertices();
        let iters = 12;
        let mut expected = initial_values(n);
        sequential_relaxation(&g, &mut expected, iters);

        for p in [2usize, 3, 4] {
            let part = BlockPartition::uniform(n, p);
            let g2 = g.clone();
            let part2 = part.clone();
            let spec = ClusterSpec::uniform(p).with_network(NetworkSpec::zero_cost());
            let report = Cluster::new(spec).run(move |env| {
                let rank = env.rank();
                let adj = LocalAdjacency::extract(&g2, &part2, rank);
                let (sched, _) =
                    build_schedule_symmetric(&part2, &adj, rank, ScheduleStrategy::Sort1);
                let mut runner =
                    LoopRunner::new(sched, &adj, ComputeCostModel::zero(), RelaxationKernel);
                let iv = part2.interval_of(rank);
                let init = initial_values(n);
                let mut values = runner.make_values(init[iv.start..iv.end].to_vec());
                runner.run(env, &mut values, iters);
                values.local().to_vec()
            });
            let mut got = Vec::with_capacity(n);
            for r in report.into_results() {
                got.extend(r);
            }
            assert_eq!(got, expected, "p = {p} diverged from sequential");
        }
    }

    #[test]
    fn overlapped_runner_matches_sequential_bitwise() {
        let g = meshgen::triangulated_grid(11, 9, 0.4, 6);
        let n = g.num_vertices();
        let iters = 12;
        let mut expected = initial_values(n);
        sequential_relaxation(&g, &mut expected, iters);

        for p in [1usize, 2, 3, 4] {
            let part = BlockPartition::uniform(n, p);
            let g2 = g.clone();
            let part2 = part.clone();
            let spec = ClusterSpec::uniform(p).with_network(NetworkSpec::zero_cost());
            let report = Cluster::new(spec).run(move |env| {
                let rank = env.rank();
                let adj = LocalAdjacency::extract(&g2, &part2, rank);
                let (sched, _) =
                    build_schedule_symmetric(&part2, &adj, rank, ScheduleStrategy::Sort2);
                let mut runner =
                    LoopRunner::new(sched, &adj, ComputeCostModel::zero(), RelaxationKernel)
                        .with_overlap(true);
                let iv = part2.interval_of(rank);
                let init = initial_values(n);
                let mut values = runner.make_values(init[iv.start..iv.end].to_vec());
                runner.run(env, &mut values, iters);
                values.local().to_vec()
            });
            let mut got = Vec::with_capacity(n);
            for r in report.into_results() {
                got.extend(r);
            }
            assert_eq!(got, expected, "overlapped p = {p} diverged from sequential");
        }
    }

    /// A user kernel that does NOT override `sweep_range`: the default
    /// delegates to the full sweep, so the split-phase runner must still
    /// produce bitwise-sequential results (the boundary phase rewrites
    /// every slot with fully-gathered data).
    struct DefaultRangeRelaxation;

    impl Kernel<f64> for DefaultRangeRelaxation {
        fn sweep(&self, tadj: &TranslatedAdjacency, combined: &[f64], out: &mut [f64]) {
            RelaxationKernel.sweep(tadj, combined, out);
        }
    }

    #[test]
    fn default_sweep_range_kernel_correct_under_overlap() {
        let g = meshgen::triangulated_grid(9, 7, 0.3, 2);
        let n = g.num_vertices();
        let iters = 7;
        let mut expected = initial_values(n);
        sequential_relaxation(&g, &mut expected, iters);

        let part = BlockPartition::uniform(n, 3);
        let spec = ClusterSpec::uniform(3).with_network(NetworkSpec::zero_cost());
        let report = Cluster::new(spec).run(|env| {
            let rank = env.rank();
            let adj = LocalAdjacency::extract(&g, &part, rank);
            let (sched, _) = build_schedule_symmetric(&part, &adj, rank, ScheduleStrategy::Sort2);
            let mut runner = LoopRunner::new(
                sched,
                &adj,
                ComputeCostModel::zero(),
                DefaultRangeRelaxation,
            )
            .with_overlap(true);
            let iv = part.interval_of(rank);
            let init = initial_values(n);
            let mut values = runner.make_values(init[iv.start..iv.end].to_vec());
            runner.run(env, &mut values, iters);
            values.local().to_vec()
        });
        let mut got = Vec::with_capacity(n);
        for r in report.into_results() {
            got.extend(r);
        }
        assert_eq!(got, expected, "default-range kernel diverged under overlap");
    }

    /// A pathologically fragmented classification — every other owned
    /// vertex is boundary, far above `MAX_PRECISE_RUNS` runs — exercises
    /// the bounding-range arm of `sweep_phase`. Both a range-honoring
    /// kernel and one relying on the default (delegating) `sweep_range`
    /// must still match the synchronous path bitwise.
    #[test]
    fn fragmented_classification_correct_under_overlap() {
        // 200 vertices, 2 ranks. Every even vertex of rank 0's block is
        // wired to a vertex in rank 1's block, so rank 0's classification
        // alternates boundary/interior — 100 runs.
        let n = 200;
        let edges: Vec<(u32, u32)> = (0..50u32).map(|i| (2 * i, 100 + i)).collect();
        let g = Graph::from_edges(n, &edges, vec![[0.0; 3]; n], 2);
        let part = BlockPartition::uniform(n, 2);
        let adj = LocalAdjacency::extract(&g, &part, 0);
        let (sched, _) = build_schedule_symmetric(&part, &adj, 0, ScheduleStrategy::Sort2);
        let tadj = sched.translate_adjacency(&adj);
        assert!(
            tadj.interior_runs().count() + tadj.boundary_runs().count() > MAX_PRECISE_RUNS,
            "fixture must exceed the precise-run cap"
        );

        let iters = 6;
        let mut expected = initial_values(n);
        sequential_relaxation(&g, &mut expected, iters);

        let run = |overlap: bool, default_range: bool| {
            let g = g.clone();
            let part = part.clone();
            let spec = ClusterSpec::uniform(2).with_network(NetworkSpec::zero_cost());
            let report = Cluster::new(spec).run(move |env| {
                let rank = env.rank();
                let adj = LocalAdjacency::extract(&g, &part, rank);
                let (sched, _) =
                    build_schedule_symmetric(&part, &adj, rank, ScheduleStrategy::Sort2);
                let iv = part.interval_of(rank);
                let init = initial_values(n);
                let local = init[iv.start..iv.end].to_vec();
                let out = if default_range {
                    let mut runner = LoopRunner::new(
                        sched,
                        &adj,
                        ComputeCostModel::zero(),
                        DefaultRangeRelaxation,
                    )
                    .with_overlap(overlap);
                    let mut values = runner.make_values(local);
                    runner.run(env, &mut values, iters);
                    values.local().to_vec()
                } else {
                    let mut runner =
                        LoopRunner::new(sched, &adj, ComputeCostModel::zero(), RelaxationKernel)
                            .with_overlap(overlap);
                    let mut values = runner.make_values(local);
                    runner.run(env, &mut values, iters);
                    values.local().to_vec()
                };
                out
            });
            let mut got = Vec::with_capacity(n);
            for r in report.into_results() {
                got.extend(r);
            }
            got
        };
        for default_range in [false, true] {
            assert_eq!(
                run(true, default_range),
                expected,
                "fragmented overlap diverged (default_range = {default_range})"
            );
            assert_eq!(
                run(false, default_range),
                expected,
                "fragmented sync diverged (default_range = {default_range})"
            );
        }
    }

    /// The split-phase runner charges the same total virtual time as the
    /// synchronous one when the wait is not on the critical path: the cost
    /// hook is linear, so interior + boundary charges sum to the whole.
    #[test]
    fn overlap_never_slows_the_virtual_clock() {
        let g = meshgen::triangulated_grid(10, 10, 0.2, 1);
        let n = g.num_vertices();
        let part = BlockPartition::uniform(n, 4);
        let run = |overlap: bool| {
            let g = g.clone();
            let part = part.clone();
            let spec = ClusterSpec::paper_cluster(4);
            Cluster::new(spec)
                .run(move |env| {
                    let rank = env.rank();
                    let adj = LocalAdjacency::extract(&g, &part, rank);
                    let (sched, _) =
                        build_schedule_symmetric(&part, &adj, rank, ScheduleStrategy::Sort2);
                    let mut runner =
                        LoopRunner::new(sched, &adj, ComputeCostModel::sun4(), RelaxationKernel)
                            .with_overlap(overlap);
                    let iv = part.interval_of(rank);
                    let mut values =
                        runner.make_values(iv.iter().map(|g| (g as f64).cos()).collect());
                    runner.run(env, &mut values, 10);
                    (env.now().as_secs(), values.local().to_vec())
                })
                .into_results()
        };
        let sync = run(false);
        let split = run(true);
        for (rank, ((t_sync, v_sync), (t_split, v_split))) in
            sync.iter().zip(split.iter()).enumerate()
        {
            assert_eq!(v_sync, v_split, "rank {rank} values diverged");
            assert!(
                t_split <= &(t_sync * (1.0 + 1e-9)),
                "rank {rank}: split-phase clock {t_split} exceeds synchronous {t_sync}"
            );
        }
    }

    /// `rebuild` must leave the runner exactly as a freshly constructed one:
    /// run the same phase sequence through one recycled runner and through
    /// fresh runners, on both gather flavours, and compare bitwise.
    #[test]
    fn rebuilt_runner_matches_fresh_runner_bitwise() {
        let g = meshgen::triangulated_grid(11, 9, 0.4, 6);
        let n = g.num_vertices();
        let phases = [
            BlockPartition::from_sizes(&[40, 30, 29]),
            BlockPartition::from_sizes(&[20, 50, 29]),
            BlockPartition::from_sizes(&[33, 33, 33]),
        ];
        let iters = 5;
        for overlap in [false, true] {
            let run_recycled = |env: &mut Env| {
                let rank = env.rank();
                let init = initial_values(n);
                let mut runner: Option<LoopRunner<f64, RelaxationKernel>> = None;
                let mut out = Vec::new();
                for part in &phases {
                    let adj = LocalAdjacency::extract(&g, part, rank);
                    let (sched, _) =
                        build_schedule_symmetric(part, &adj, rank, ScheduleStrategy::Sort2);
                    match &mut runner {
                        None => {
                            runner = Some(
                                LoopRunner::new(
                                    sched,
                                    &adj,
                                    ComputeCostModel::zero(),
                                    RelaxationKernel,
                                )
                                .with_overlap(overlap),
                            );
                        }
                        Some(r) => {
                            let _retired = r.rebuild(sched, &adj);
                        }
                    }
                    let r = runner.as_mut().expect("runner built");
                    let iv = part.interval_of(rank);
                    let mut values = r.make_values(init[iv.start..iv.end].to_vec());
                    r.run(env, &mut values, iters);
                    out.push(values.local().to_vec());
                }
                out
            };
            let run_fresh = |env: &mut Env| {
                let rank = env.rank();
                let init = initial_values(n);
                let mut out = Vec::new();
                for part in &phases {
                    let adj = LocalAdjacency::extract(&g, part, rank);
                    let (sched, _) =
                        build_schedule_symmetric(part, &adj, rank, ScheduleStrategy::Sort2);
                    let mut runner =
                        LoopRunner::new(sched, &adj, ComputeCostModel::zero(), RelaxationKernel)
                            .with_overlap(overlap);
                    let iv = part.interval_of(rank);
                    let mut values = runner.make_values(init[iv.start..iv.end].to_vec());
                    runner.run(env, &mut values, iters);
                    out.push(values.local().to_vec());
                }
                out
            };
            let spec = ClusterSpec::uniform(3).with_network(NetworkSpec::zero_cost());
            let recycled = Cluster::new(spec.clone()).run(run_recycled).into_results();
            let fresh = Cluster::new(spec).run(run_fresh).into_results();
            assert_eq!(recycled, fresh, "overlap = {overlap} diverged");
        }
    }

    #[test]
    fn reset_values_matches_make_values() {
        let g = meshgen::triangulated_grid(8, 8, 0.2, 4);
        let n = g.num_vertices();
        let part = BlockPartition::uniform(n, 2);
        let adj = LocalAdjacency::extract(&g, &part, 0);
        let (sched, _) = build_schedule_symmetric(&part, &adj, 0, ScheduleStrategy::Sort2);
        let runner: LoopRunner =
            LoopRunner::new(sched, &adj, ComputeCostModel::zero(), RelaxationKernel);
        let local: Vec<f64> = (0..adj.len()).map(|i| i as f64).collect();
        let fresh = runner.make_values(local.clone());
        // An arbitrarily shaped pre-owned buffer is rebuilt to the same state.
        let mut reused: GhostedArray = GhostedArray::from_local(vec![9.0; 200], 7);
        runner.reset_values(&mut reused, &local);
        assert_eq!(reused, fresh);
    }

    #[test]
    fn multi_field_relaxation_matches_two_scalar_runs() {
        // A [f64; 2] element must evolve exactly like two independent f64
        // arrays, bit for bit.
        let g = meshgen::triangulated_grid(9, 7, 0.3, 2);
        let n = g.num_vertices();
        let iters = 9;
        let mut a: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let mut b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).cos() * 2.0).collect();
        let mut pair: Vec<[f64; 2]> = a.iter().zip(&b).map(|(&x, &y)| [x, y]).collect();
        sequential_relaxation(&g, &mut a, iters);
        sequential_relaxation(&g, &mut b, iters);
        sequential_relaxation(&g, &mut pair, iters);
        let expected: Vec<[f64; 2]> = a.iter().zip(&b).map(|(&x, &y)| [x, y]).collect();
        assert_eq!(pair, expected);
    }

    #[test]
    fn laplacian_matvec_parallel_matches_sequential() {
        let g = meshgen::triangulated_grid(9, 8, 0.3, 4);
        let n = g.num_vertices();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();
        let shift = 1.0;
        let mut expected = vec![0.0; n];
        sequential_laplacian_matvec(&g, &x, shift, &mut expected);

        let part = BlockPartition::uniform(n, 3);
        let x2 = x.clone();
        let spec = ClusterSpec::uniform(3).with_network(NetworkSpec::zero_cost());
        let report = Cluster::new(spec).run(move |env| {
            let rank = env.rank();
            let adj = LocalAdjacency::extract(&g, &part, rank);
            let (sched, _) = build_schedule_symmetric(&part, &adj, rank, ScheduleStrategy::Sort2);
            let iv = part.interval_of(rank);
            let mut runner = LoopRunner::new(
                sched,
                &adj,
                ComputeCostModel::zero(),
                LaplacianKernel { shift },
            );
            let mut values = runner.make_values(x2[iv.start..iv.end].to_vec());
            runner.apply(env, &mut values);
            runner.scratch().to_vec()
        });
        let mut got = Vec::with_capacity(n);
        for r in report.into_results() {
            got.extend(r);
        }
        assert_eq!(got, expected);
    }

    #[test]
    fn apply_leaves_input_untouched() {
        let g = meshgen::triangulated_grid(6, 6, 0.0, 1);
        let n = g.num_vertices();
        let part = BlockPartition::uniform(n, 2);
        let spec = ClusterSpec::uniform(2).with_network(NetworkSpec::zero_cost());
        Cluster::new(spec).run(|env| {
            let rank = env.rank();
            let adj = LocalAdjacency::extract(&g, &part, rank);
            let (sched, _) = build_schedule_symmetric(&part, &adj, rank, ScheduleStrategy::Sort2);
            let mut runner =
                LoopRunner::new(sched, &adj, ComputeCostModel::zero(), RelaxationKernel);
            let iv = part.interval_of(rank);
            let init: Vec<f64> = iv.iter().map(|g| g as f64).collect();
            let mut values = runner.make_values(init.clone());
            runner.apply(env, &mut values);
            assert_eq!(values.local(), init.as_slice(), "apply must not commit");
        });
    }

    #[test]
    fn laplacian_of_constant_is_shift_scaled() {
        // L·1 = 0, so (L + shift·I)·1 = shift·1.
        let g = meshgen::triangulated_grid(5, 5, 0.0, 0);
        let n = g.num_vertices();
        let x = vec![1.0; n];
        let mut out = vec![0.0; n];
        sequential_laplacian_matvec(&g, &x, 2.5, &mut out);
        for &v in &out {
            assert!((v - 2.5).abs() < 1e-12);
        }
    }

    /// A user-written kernel exercising the custom-cost hook: out[i] =
    /// max over neighbors (a label-propagation building block).
    struct MaxNeighborKernel;

    impl Kernel<f64> for MaxNeighborKernel {
        fn sweep(&self, tadj: &TranslatedAdjacency, combined: &[f64], out: &mut [f64]) {
            for (l, o) in out.iter_mut().enumerate() {
                let mut best = combined[l];
                for &s in tadj.neighbors_of(l) {
                    best = best.max(combined[s as usize]);
                }
                *o = best;
            }
        }
        fn cost(&self, model: &ComputeCostModel, vertices: usize, references: usize) -> f64 {
            // A compare is cheaper than a multiply-add: charge half.
            0.5 * model.sweep_work(vertices, references)
        }
    }

    #[test]
    fn custom_kernel_cost_hook_drives_clock() {
        let g = meshgen::triangulated_grid(8, 8, 0.0, 0);
        let n = g.num_vertices();
        let part = BlockPartition::uniform(n, 2);
        let cost = ComputeCostModel::sun4();
        let spec = ClusterSpec::uniform(2).with_network(NetworkSpec::zero_cost());
        let report = Cluster::new(spec).run(|env| {
            let rank = env.rank();
            let adj = LocalAdjacency::extract(&g, &part, rank);
            let (sched, _) = build_schedule_symmetric(&part, &adj, rank, ScheduleStrategy::Sort2);
            let owned = adj.len();
            let refs = adj.num_refs();
            let mut runner = LoopRunner::new(sched, &adj, cost, MaxNeighborKernel);
            let mut values = runner.make_values(vec![0.0; owned]);
            let stats = runner.run(env, &mut values, 4);
            (stats, owned, refs)
        });
        for (stats, owned, refs) in report.results() {
            let expected = 4.0 * 0.5 * cost.sweep_work(*owned, *refs);
            assert!(
                (stats.compute_time - expected).abs() < 1e-9,
                "half-priced kernel charged {} vs expected {expected}",
                stats.compute_time
            );
        }
    }

    #[test]
    fn multi_field_sweep_charged_per_component() {
        // A [f64; 2] relaxation does twice the arithmetic of the f64 one
        // and must be charged twice the virtual time.
        let g = meshgen::triangulated_grid(8, 8, 0.0, 0);
        let n = g.num_vertices();
        let part = BlockPartition::uniform(n, 2);
        let cost = ComputeCostModel::sun4();
        let spec = ClusterSpec::uniform(2).with_network(NetworkSpec::zero_cost());
        let report = Cluster::new(spec).run(|env| {
            let rank = env.rank();
            let adj = LocalAdjacency::extract(&g, &part, rank);
            let refs = adj.num_refs();
            let owned = adj.len();
            let (sched, _) = build_schedule_symmetric(&part, &adj, rank, ScheduleStrategy::Sort2);
            let mut runner: LoopRunner<[f64; 2], RelaxationKernel> =
                LoopRunner::new(sched, &adj, cost, RelaxationKernel);
            let mut values = runner.make_values(vec![[0.0; 2]; owned]);
            let stats = runner.run(env, &mut values, 5);
            (stats, owned, refs)
        });
        for (stats, owned, refs) in report.results() {
            let expected = 5.0 * 2.0 * cost.sweep_work(*owned, *refs);
            assert!(
                (stats.compute_time - expected).abs() < 1e-9,
                "two-field sweep charged {} vs expected {expected}",
                stats.compute_time
            );
        }
    }

    #[test]
    fn loop_stats_measure_compute() {
        let g = meshgen::triangulated_grid(8, 8, 0.0, 0);
        let n = g.num_vertices();
        let part = BlockPartition::uniform(n, 2);
        let cost = ComputeCostModel::sun4();
        let spec = ClusterSpec::uniform(2).with_network(NetworkSpec::zero_cost());
        let report = Cluster::new(spec).run(|env| {
            let rank = env.rank();
            let adj = LocalAdjacency::extract(&g, &part, rank);
            let refs = adj.num_refs();
            let owned = adj.len();
            let (sched, _) = build_schedule_symmetric(&part, &adj, rank, ScheduleStrategy::Sort2);
            let mut runner = LoopRunner::new(sched, &adj, cost, RelaxationKernel);
            let mut values = runner.make_values(vec![0.0; owned]);
            let stats = runner.run(env, &mut values, 10);
            (stats, owned, refs)
        });
        for (stats, owned, refs) in report.results() {
            let expected = 10.0 * cost.sweep_work(*owned, *refs);
            assert!(
                (stats.compute_time - expected).abs() < 1e-9,
                "compute time {} != expected {expected}",
                stats.compute_time
            );
            assert!(stats.avg_time_per_item(*owned) > 0.0);
            assert_eq!(stats.iterations, 10);
        }
    }

    #[test]
    fn loaded_machine_reports_higher_per_item_time() {
        use stance_sim::LoadTimeline;
        let g = meshgen::triangulated_grid(8, 8, 0.0, 0);
        let n = g.num_vertices();
        let part = BlockPartition::uniform(n, 2);
        let spec = ClusterSpec::uniform(2)
            .with_network(NetworkSpec::zero_cost())
            .with_load(0, LoadTimeline::constant(1.0 / 3.0));
        let report = Cluster::new(spec).run(|env| {
            let rank = env.rank();
            let adj = LocalAdjacency::extract(&g, &part, rank);
            let owned = adj.len();
            let (sched, _) = build_schedule_symmetric(&part, &adj, rank, ScheduleStrategy::Sort2);
            let mut runner =
                LoopRunner::new(sched, &adj, ComputeCostModel::sun4(), RelaxationKernel);
            let mut values = runner.make_values(vec![0.0; owned]);
            let stats = runner.run(env, &mut values, 4);
            stats.avg_time_per_item(owned)
        });
        let per_item: Vec<f64> = report.into_results();
        // Rank 0 runs at 1/3 availability: ~3× the per-item time.
        let ratio = per_item[0] / per_item[1];
        assert!(
            (ratio - 3.0).abs() < 0.2,
            "expected ~3× slowdown, got {ratio}"
        );
    }

    #[test]
    fn avg_time_per_item_edge_cases() {
        let s = LoopStats::default();
        assert_eq!(s.avg_time_per_item(10), 0.0);
        let s2 = LoopStats {
            iterations: 2,
            compute_time: 4.0,
        };
        assert_eq!(s2.avg_time_per_item(0), 0.0);
        assert_eq!(s2.avg_time_per_item(2), 1.0);
    }

    /// Team size is purely a throughput knob: any `T`, with either gather
    /// flavour, must reproduce the sequential reference bitwise — worker
    /// lanes sweep private staging and commit in fixed lane order, so the
    /// accumulation order never changes.
    #[test]
    fn team_runner_matches_sequential_bitwise() {
        let g = meshgen::triangulated_grid(11, 9, 0.4, 6);
        let n = g.num_vertices();
        let iters = 12;
        let mut expected = initial_values(n);
        sequential_relaxation(&g, &mut expected, iters);

        for team in [1usize, 2, 3, 4] {
            for overlap in [false, true] {
                let part = BlockPartition::uniform(n, 2);
                let g2 = g.clone();
                let spec = ClusterSpec::uniform(2).with_network(NetworkSpec::zero_cost());
                let report = Cluster::new(spec).run(move |env| {
                    let rank = env.rank();
                    let adj = LocalAdjacency::extract(&g2, &part, rank);
                    let (sched, _) =
                        build_schedule_symmetric(&part, &adj, rank, ScheduleStrategy::Sort2);
                    let mut runner =
                        LoopRunner::new(sched, &adj, ComputeCostModel::zero(), RelaxationKernel)
                            .with_overlap(overlap)
                            .with_team(team);
                    assert_eq!(runner.team_lanes(), team);
                    let iv = part.interval_of(rank);
                    let init = initial_values(n);
                    let mut values = runner.make_values(init[iv.start..iv.end].to_vec());
                    runner.run(env, &mut values, iters);
                    values.local().to_vec()
                });
                let mut got = Vec::with_capacity(n);
                for r in report.into_results() {
                    got.extend(r);
                }
                let bits_got: Vec<u64> = got.iter().map(|v| v.to_bits()).collect();
                let bits_exp: Vec<u64> = expected.iter().map(|v| v.to_bits()).collect();
                assert_eq!(
                    bits_got, bits_exp,
                    "team = {team}, overlap = {overlap} diverged from sequential"
                );
            }
        }
    }

    /// The fragmented fixture of `fragmented_classification_correct_under_overlap`,
    /// with a team: run splitting must stay exact when runs outnumber
    /// lanes by an order of magnitude and lane fragments cut runs.
    #[test]
    fn team_runner_correct_on_fragmented_classification() {
        let n = 200;
        let edges: Vec<(u32, u32)> = (0..50u32).map(|i| (2 * i, 100 + i)).collect();
        let g = Graph::from_edges(n, &edges, vec![[0.0; 3]; n], 2);
        let iters = 6;
        let mut expected = initial_values(n);
        sequential_relaxation(&g, &mut expected, iters);

        for team in [2usize, 4] {
            for overlap in [false, true] {
                let part = BlockPartition::uniform(n, 2);
                let g2 = g.clone();
                let spec = ClusterSpec::uniform(2).with_network(NetworkSpec::zero_cost());
                let report = Cluster::new(spec).run(move |env| {
                    let rank = env.rank();
                    let adj = LocalAdjacency::extract(&g2, &part, rank);
                    let (sched, _) =
                        build_schedule_symmetric(&part, &adj, rank, ScheduleStrategy::Sort2);
                    let mut runner =
                        LoopRunner::new(sched, &adj, ComputeCostModel::zero(), RelaxationKernel)
                            .with_overlap(overlap)
                            .with_team(team);
                    let iv = part.interval_of(rank);
                    let init = initial_values(n);
                    let mut values = runner.make_values(init[iv.start..iv.end].to_vec());
                    runner.run(env, &mut values, iters);
                    values.local().to_vec()
                });
                let mut got = Vec::with_capacity(n);
                for r in report.into_results() {
                    got.extend(r);
                }
                assert_eq!(
                    got, expected,
                    "fragmented team = {team}, overlap = {overlap} diverged"
                );
            }
        }
    }

    /// A rebuilt team runner (remap) must match a fresh one bitwise —
    /// the lane splits are recomputed from the new classification.
    #[test]
    fn rebuilt_team_runner_matches_fresh_bitwise() {
        let g = meshgen::triangulated_grid(11, 9, 0.4, 6);
        let n = g.num_vertices();
        let phases = [
            BlockPartition::from_sizes(&[40, 30, 29]),
            BlockPartition::from_sizes(&[20, 50, 29]),
        ];
        let iters = 5;
        let run = |team: usize, recycle: bool| {
            let spec = ClusterSpec::uniform(3).with_network(NetworkSpec::zero_cost());
            Cluster::new(spec)
                .run(|env| {
                    let rank = env.rank();
                    let init = initial_values(n);
                    let mut runner: Option<LoopRunner<f64, RelaxationKernel>> = None;
                    let mut out = Vec::new();
                    for part in &phases {
                        let adj = LocalAdjacency::extract(&g, part, rank);
                        let (sched, _) =
                            build_schedule_symmetric(part, &adj, rank, ScheduleStrategy::Sort2);
                        match &mut runner {
                            Some(r) if recycle => {
                                r.rebuild(sched, &adj);
                            }
                            _ => {
                                runner = Some(
                                    LoopRunner::new(
                                        sched,
                                        &adj,
                                        ComputeCostModel::zero(),
                                        RelaxationKernel,
                                    )
                                    .with_overlap(true)
                                    .with_team(team),
                                );
                            }
                        }
                        let r = runner.as_mut().expect("runner built");
                        let iv = part.interval_of(rank);
                        let mut values = r.make_values(init[iv.start..iv.end].to_vec());
                        r.run(env, &mut values, iters);
                        out.push(values.local().to_vec());
                    }
                    out
                })
                .into_results()
        };
        for team in [2usize, 4] {
            assert_eq!(
                run(team, true),
                run(team, false),
                "team = {team}: rebuilt runner diverged from fresh"
            );
            assert_eq!(
                run(team, true),
                run(1, true),
                "team = {team}: teamed runner diverged from single-lane"
            );
        }
    }

    /// The simulator's clock must see the team: a 4-lane rank charges
    /// `sweep_work / team_speedup` per iteration, so the load monitor
    /// (and the balancer) observes the effective per-item speed.
    #[test]
    fn team_aware_cost_speeds_virtual_clock() {
        let g = meshgen::triangulated_grid(8, 8, 0.0, 0);
        let n = g.num_vertices();
        let part = BlockPartition::uniform(n, 2);
        let cost = ComputeCostModel::sun4();
        let run = |team: usize| {
            let part = part.clone();
            let g = g.clone();
            let spec = ClusterSpec::uniform(2).with_network(NetworkSpec::zero_cost());
            Cluster::new(spec)
                .run(move |env| {
                    let rank = env.rank();
                    let adj = LocalAdjacency::extract(&g, &part, rank);
                    let owned = adj.len();
                    let (sched, _) =
                        build_schedule_symmetric(&part, &adj, rank, ScheduleStrategy::Sort2);
                    let mut runner =
                        LoopRunner::new(sched, &adj, cost, RelaxationKernel).with_team(team);
                    let mut values = runner.make_values(vec![0.0; owned]);
                    runner.run(env, &mut values, 4).compute_time
                })
                .into_results()
        };
        let serial = run(1);
        let teamed = run(4);
        let speedup = cost.with_team(4).team_speedup();
        for (rank, (t1, t4)) in serial.iter().zip(teamed.iter()).enumerate() {
            assert!(
                (t1 / t4 - speedup).abs() < 1e-9,
                "rank {rank}: clock speedup {} != modelled {speedup}",
                t1 / t4
            );
        }
    }
}
