//! Intra-rank worker teams: a persistent pool of parked threads that
//! splits one rank's sweeps across cores.
//!
//! The paper's model is one rank per processor; on a modern manycore host
//! that maps one rank per *core* and pays ghost exchange between every
//! pair of cores. The hierarchical alternative keeps ranks = address
//! spaces (few, communicating) and adds teams = cores (many, sharing the
//! rank's memory): a [`SweepTeam`] owns `lanes - 1` worker threads that
//! sleep on a condvar between sweeps and split each sweep by
//! *deterministic static chunking* of the existing run classification.
//!
//! # Bitwise reproducibility
//!
//! Team size is purely a throughput knob — outputs are bitwise identical
//! for every lane count, both backends, sync and overlapped gathers:
//!
//! * every committed output slot is produced by a `sweep_chunked` call
//!   over a range containing it, reading the same immutable `combined`
//!   buffer, so the per-vertex accumulation order never changes;
//! * the lane splits are a pure function of the run classification (never
//!   of timing), so the same schedule always yields the same splits;
//! * workers write disjoint *private* staging buffers and the caller
//!   merges them in fixed lane order after all lanes finish — no
//!   concurrent writes, no order dependence.
//!
//! # Steady-state allocation freedom
//!
//! Threads are spawned once, the staging buffers and split tables are
//! recycled across iterations (resized only on
//! [`SweepTeam::rebuild_splits`], i.e. on remap), and dispatching a sweep
//! publishes one borrowed closure under a mutex — no boxing, no channels.
//! `tests/alloc_free.rs` pins the team-mode steady state at zero
//! allocations on both backends.

// The one unsafe block in this crate lives here (the lifetime erasure in
// `TeamCore::run`); everything else stays checked.
#![allow(unsafe_code)]

use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;

use stance_inspector::TranslatedAdjacency;
use stance_sim::Element;

use crate::kernel::{sweep_phase, Kernel};

/// One published sweep dispatch: the job closure runs once per worker
/// lane, with the lane index as its argument.
///
/// The reference is type-erased to `'static` by [`TeamCore::run`], which
/// guarantees the underlying closure outlives the job (it blocks until
/// every worker has retired the epoch before returning).
#[derive(Clone, Copy)]
struct Job {
    f: &'static (dyn Fn(usize) + Sync),
}

/// State shared between the rank thread and its parked workers.
struct Shared {
    state: Mutex<State>,
    /// Signalled by the publisher when a new epoch (or shutdown) is posted.
    work: Condvar,
    /// Signalled by the last worker to retire the current epoch.
    done: Condvar,
}

struct State {
    /// Monotonic dispatch counter; a worker runs one job per observed
    /// increment, so a spurious condvar wakeup can never re-run a job.
    epoch: u64,
    job: Option<Job>,
    /// Workers still running the current epoch's job.
    remaining: usize,
    /// Set when any worker's job panicked; re-raised on the rank thread.
    panicked: bool,
    shutdown: bool,
}

/// The element-type-independent thread pool: worker threads + handshake.
struct TeamCore {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl TeamCore {
    /// Spawns `workers` parked worker threads (lanes `1..=workers`).
    fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                job: None,
                remaining: 0,
                panicked: false,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (1..=workers)
            .map(|lane| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("stance-team-{lane}"))
                    .spawn(move || worker_loop(&shared, lane))
                    .expect("spawn sweep-team worker")
            })
            .collect();
        TeamCore {
            shared,
            workers: handles,
        }
    }

    /// Runs `worker_job(lane)` on every worker lane while `lane0` runs on
    /// the calling thread, returning only after **all** lanes finished.
    /// A panic on any lane is re-raised here (after the join, so the
    /// borrowed closure is never outlived).
    fn run(&self, worker_job: &(dyn Fn(usize) + Sync), lane0: impl FnOnce()) {
        // SAFETY: the only unsafe in the crate. We erase `worker_job`'s
        // lifetime so the parked threads (whose loop is necessarily
        // `'static`) can call it. The borrow cannot be outlived: this
        // function publishes the job, then unconditionally blocks — even
        // when `lane0` panics — until `remaining` drops to zero, i.e.
        // until every worker has finished calling the closure and will
        // never touch it again (the epoch check stops re-runs).
        let job = Job {
            f: unsafe {
                std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(
                    worker_job,
                )
            },
        };
        {
            let mut st = self.shared.state.lock().expect("team state poisoned");
            st.job = Some(job);
            st.remaining = self.workers.len();
            st.epoch += 1;
        }
        self.shared.work.notify_all();

        let lane0_result = catch_unwind(AssertUnwindSafe(lane0));

        let worker_panicked = {
            let mut st = self.shared.state.lock().expect("team state poisoned");
            while st.remaining != 0 {
                st = self.shared.done.wait(st).expect("team state poisoned");
            }
            st.job = None;
            std::mem::take(&mut st.panicked)
        };
        if let Err(payload) = lane0_result {
            resume_unwind(payload);
        }
        assert!(!worker_panicked, "a sweep-team worker lane panicked");
    }
}

impl Drop for TeamCore {
    fn drop(&mut self) {
        {
            let mut st = self
                .shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared, lane: usize) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().expect("team state poisoned");
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen {
                    seen = st.epoch;
                    break st.job.expect("published epoch carries a job");
                }
                st = shared.work.wait(st).expect("team state poisoned");
            }
        };
        let ok = catch_unwind(AssertUnwindSafe(|| (job.f)(lane))).is_ok();
        let mut st = shared.state.lock().expect("team state poisoned");
        if !ok {
            st.panicked = true;
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            shared.done.notify_one();
        }
    }
}

/// Which precomputed lane split a sweep uses.
#[derive(Clone, Copy)]
enum Split {
    /// The whole owned range `0..len` (synchronous full sweeps).
    Full,
    /// The interior runs only (the overlapped gather's hidden phase).
    Interior,
}

/// A rank's persistent worker team for splitting sweeps across cores.
///
/// Construct once per rank (or let [`LoopRunner::with_team`] do it), call
/// [`SweepTeam::rebuild_splits`] whenever the translated adjacency
/// changes, then dispatch [`SweepTeam::sweep_full`] /
/// [`SweepTeam::sweep_interior`] every iteration. See the module docs for
/// the reproducibility and allocation arguments.
///
/// The boundary phase of an overlapped gather is deliberately *not*
/// team-split: boundary runs are short (block edges), and the phase sits
/// between `gather_finish` and the commit where dispatch overhead would
/// dominate.
///
/// [`LoopRunner::with_team`]: crate::LoopRunner::with_team
pub struct SweepTeam<E: Element> {
    lanes: usize,
    /// `None` when `lanes == 1`: no threads, every sweep runs inline.
    core: Option<TeamCore>,
    /// One private full-length output buffer per worker lane (index
    /// `lane - 1`). The mutex is uncontended by construction — each worker
    /// locks only its own buffer, the caller only after the join — and
    /// exists to make the sharing visible to the type system without
    /// unsafe slice splitting.
    staging: Vec<Mutex<Vec<E>>>,
    /// `full_splits[lane]` = the fragments of `0..len` lane `lane` sweeps.
    full_splits: Vec<Vec<Range<usize>>>,
    /// `interior_splits[lane]` = the interior-run fragments of lane
    /// `lane`.
    interior_splits: Vec<Vec<Range<usize>>>,
}

impl<E: Element> SweepTeam<E> {
    /// Creates a team with `lanes` compute lanes: the calling rank thread
    /// (lane 0) plus `lanes - 1` spawned worker threads, parked until a
    /// sweep is dispatched. Call [`SweepTeam::rebuild_splits`] before the
    /// first sweep.
    ///
    /// # Panics
    /// Panics if `lanes` is zero.
    pub fn new(lanes: usize) -> Self {
        assert!(lanes >= 1, "a sweep team has at least one lane");
        SweepTeam {
            lanes,
            core: (lanes > 1).then(|| TeamCore::new(lanes - 1)),
            staging: (1..lanes).map(|_| Mutex::new(Vec::new())).collect(),
            full_splits: vec![Vec::new(); lanes],
            interior_splits: vec![Vec::new(); lanes],
        }
    }

    /// The number of compute lanes (including the calling thread).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Recomputes the deterministic static lane splits from the run
    /// classification and resizes the staging buffers — call after every
    /// (re)translation of the adjacency. Storage is recycled; steady-state
    /// iterations between calls allocate nothing.
    pub fn rebuild_splits(&mut self, tadj: &TranslatedAdjacency) {
        let len = tadj.len();
        for buf in &self.staging {
            buf.lock().expect("staging poisoned").resize(len, E::zero());
        }
        split_runs(std::iter::once(0..len), len, &mut self.full_splits);
        split_runs(
            tadj.interior_runs(),
            tadj.num_interior(),
            &mut self.interior_splits,
        );
    }

    /// Sweeps all owned vertices (`0..len`) split across the team,
    /// writing `out` exactly as `kernel.sweep` would.
    pub fn sweep_full<K: Kernel<E> + ?Sized>(
        &mut self,
        kernel: &K,
        tadj: &TranslatedAdjacency,
        combined: &[E],
        out: &mut [E],
    ) {
        self.sweep_split(kernel, tadj, combined, out, Split::Full);
    }

    /// Sweeps the interior runs split across the team, writing the
    /// interior slots of `out` exactly as a single-lane
    /// [`sweep_phase`] over [`TranslatedAdjacency::interior_runs`] would.
    pub fn sweep_interior<K: Kernel<E> + ?Sized>(
        &mut self,
        kernel: &K,
        tadj: &TranslatedAdjacency,
        combined: &[E],
        out: &mut [E],
    ) {
        self.sweep_split(kernel, tadj, combined, out, Split::Interior);
    }

    fn sweep_split<K: Kernel<E> + ?Sized>(
        &mut self,
        kernel: &K,
        tadj: &TranslatedAdjacency,
        combined: &[E],
        out: &mut [E],
        which: Split,
    ) {
        let splits = match which {
            Split::Full => &self.full_splits,
            Split::Interior => &self.interior_splits,
        };
        let Some(core) = &self.core else {
            // Single lane: sweep inline, no staging, no handshake.
            sweep_phase(kernel, tadj, combined, out, splits[0].iter().cloned());
            return;
        };
        if splits.iter().all(Vec::is_empty) {
            return; // nothing classified into this phase
        }
        let staging = &self.staging;
        let worker = move |lane: usize| {
            let mut buf = staging[lane - 1].lock().expect("staging poisoned");
            sweep_phase(
                kernel,
                tadj,
                combined,
                &mut buf[..],
                splits[lane].iter().cloned(),
            );
        };
        core.run(&worker, || {
            sweep_phase(kernel, tadj, combined, out, splits[0].iter().cloned());
        });
        // Commit worker fragments in fixed lane order. The copies are of
        // *identical-value* slots only where fragments touch a bounding
        // span (see `sweep_phase`); disjointness of the lane fragments
        // makes the order immaterial for values, and fixing it anyway
        // keeps the write sequence reproducible.
        for (lane, frags) in splits.iter().enumerate().skip(1) {
            let buf = staging[lane - 1].lock().expect("staging poisoned");
            for r in frags {
                out[r.clone()].copy_from_slice(&buf[r.clone()]);
            }
        }
    }
}

/// Splits `runs` (ascending, disjoint, totalling `total` vertices) into
/// `splits.len()` fragment lists: lane `w` receives the flattened vertex
/// positions `[w·total/L, (w+1)·total/L)` mapped back onto the runs, so
/// lane loads differ by at most one vertex and a run straddling a quota
/// boundary is cut, never duplicated. Pure function of its inputs —
/// identical schedules always produce identical splits.
fn split_runs(
    runs: impl Iterator<Item = Range<usize>>,
    total: usize,
    splits: &mut [Vec<Range<usize>>],
) {
    for s in splits.iter_mut() {
        s.clear();
    }
    let lanes = splits.len();
    let mut lane = 0usize;
    let mut taken = 0usize;
    for mut run in runs {
        while !run.is_empty() {
            let lane_end = (lane + 1) * total / lanes;
            if taken >= lane_end && lane + 1 < lanes {
                lane += 1;
                continue;
            }
            let take = run.len().min(lane_end - taken).max(1);
            splits[lane].push(run.start..run.start + take);
            run.start += take;
            taken += take;
        }
    }
    debug_assert_eq!(taken, total, "splits must cover every vertex");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flatten(splits: &[Vec<Range<usize>>]) -> Vec<usize> {
        splits
            .iter()
            .flat_map(|frags| frags.iter().cloned().flatten())
            .collect()
    }

    #[test]
    fn split_balances_single_run() {
        let mut splits = vec![Vec::new(); 4];
        split_runs(std::iter::once(0..10), 10, &mut splits);
        assert_eq!(splits[0], vec![0..2]);
        assert_eq!(splits[1], vec![2..5]);
        assert_eq!(splits[2], vec![5..7]);
        assert_eq!(splits[3], vec![7..10]);
    }

    #[test]
    fn split_covers_fragmented_runs_exactly_once() {
        let runs = [2..5usize, 8..9, 12..20, 31..36];
        let total: usize = runs.iter().map(ExactSizeIterator::len).sum();
        for lanes in 1..=6 {
            let mut splits = vec![Vec::new(); lanes];
            split_runs(runs.iter().cloned(), total, &mut splits);
            let expected: Vec<usize> = runs.iter().cloned().flatten().collect();
            assert_eq!(flatten(&splits), expected, "lanes = {lanes}");
            // Near-equal loads: max and min lane differ by at most one.
            let loads: Vec<usize> = splits
                .iter()
                .map(|f| f.iter().map(ExactSizeIterator::len).sum())
                .collect();
            let (lo, hi) = (loads.iter().min().unwrap(), loads.iter().max().unwrap());
            assert!(hi - lo <= 1, "lanes = {lanes}, loads = {loads:?}");
        }
    }

    #[test]
    fn split_handles_empty_and_tiny_totals() {
        let mut splits = vec![Vec::new(); 3];
        split_runs(std::iter::empty(), 0, &mut splits);
        assert!(splits.iter().all(Vec::is_empty));
        // Fewer vertices than lanes: every vertex still lands exactly once.
        split_runs(std::iter::once(5..7), 2, &mut splits);
        assert_eq!(flatten(&splits), vec![5, 6]);
    }

    #[test]
    fn core_runs_every_lane_and_recycles() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let core = TeamCore::new(3);
        let hits = AtomicUsize::new(0);
        for round in 1..=5usize {
            let job = |lane: usize| {
                hits.fetch_add(lane, Ordering::Relaxed);
            };
            core.run(&job, || {
                hits.fetch_add(100, Ordering::Relaxed);
            });
            // Lanes 1+2+3 plus lane 0's 100, every round.
            assert_eq!(hits.load(Ordering::Relaxed), round * 106);
        }
    }

    #[test]
    fn worker_panic_reaches_the_rank_thread() {
        let team = TeamCore::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            team.run(
                &|lane| {
                    if lane == 1 {
                        panic!("lane 1 exploded");
                    }
                },
                || {},
            );
        }));
        assert!(result.is_err(), "worker panic must propagate");
        // The team must still be usable afterwards.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let hits = AtomicUsize::new(0);
        team.run(
            &|_| {
                hits.fetch_add(1, Ordering::Relaxed);
            },
            || {},
        );
        assert_eq!(hits.load(Ordering::Relaxed), 2);
    }
}
