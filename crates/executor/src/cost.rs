//! Pricing of executor work in reference seconds.
//!
//! Calibrated so the paper's headline sequential measurement reproduces: 500
//! iterations of the Fig. 8 loop on the 30 269-vertex / 44 929-edge mesh took
//! 97.61 s on one SUN4 workstation (Table 4), i.e. ≈ 195 ms per sweep over
//! ~90k references — a few microseconds per indirect reference, which is
//! what mid-90s workstations delivered on pointer-chasing float code.

/// Seconds of reference-machine time per unit of kernel work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComputeCostModel {
    /// Per indirect reference (load via indirection array + add).
    pub per_reference: f64,
    /// Per owned vertex (loop overhead + divide + store).
    pub per_vertex: f64,
    /// Per element packed into / unpacked from a message buffer.
    pub per_pack: f64,
    /// Compute lanes per rank — the intra-rank worker-team size (rank =
    /// address space, team = cores). `1` (the default, and every
    /// calibration constructor) models the paper's one-processor ranks;
    /// the session sets it from `StanceConfig::with_team`, and
    /// [`ComputeCostModel::sweep_work`] divides by the effective speedup
    /// so the load monitor (and therefore the remap controller) sees the
    /// rank's *effective* per-item speed.
    pub team_lanes: usize,
    /// Marginal efficiency of each lane beyond the first, in `(0, 1]`:
    /// the effective speedup of a `T`-lane team is
    /// `1 + (T − 1) · team_efficiency` (static chunking splits the sweep
    /// near-perfectly, but the serial commit of worker fragments and the
    /// wake/join handshake tax every extra lane).
    pub team_efficiency: f64,
}

/// Default marginal efficiency of additional team lanes (see
/// [`ComputeCostModel::team_efficiency`]).
pub const DEFAULT_TEAM_EFFICIENCY: f64 = 0.85;

impl ComputeCostModel {
    /// SUN4-class calibration (see module docs): reproduces T(1) ≈ 97.6 s
    /// for the paper's workload.
    pub fn sun4() -> Self {
        ComputeCostModel {
            per_reference: 1.84e-6,
            per_vertex: 1.0e-6,
            per_pack: 0.4e-6,
            team_lanes: 1,
            team_efficiency: DEFAULT_TEAM_EFFICIENCY,
        }
    }

    /// Free model for structure-only tests.
    pub fn zero() -> Self {
        ComputeCostModel {
            per_reference: 0.0,
            per_vertex: 0.0,
            per_pack: 0.0,
            team_lanes: 1,
            team_efficiency: DEFAULT_TEAM_EFFICIENCY,
        }
    }

    /// The same model with `lanes` compute lanes per rank (see
    /// [`ComputeCostModel::team_lanes`]).
    ///
    /// # Panics
    /// Panics if `lanes` is zero.
    pub fn with_team(mut self, lanes: usize) -> Self {
        assert!(lanes >= 1, "a rank has at least one compute lane");
        self.team_lanes = lanes;
        self
    }

    /// Effective sweep speedup of this model's worker team:
    /// `1 + (team_lanes − 1) · team_efficiency`, i.e. exactly `1.0` for
    /// the single-lane default.
    pub fn team_speedup(&self) -> f64 {
        if self.team_lanes <= 1 {
            1.0
        } else {
            1.0 + (self.team_lanes as f64 - 1.0) * self.team_efficiency
        }
    }

    /// Work (reference seconds) of one relaxation sweep over `vertices`
    /// owned vertices with `references` total neighbor references,
    /// divided by the worker team's effective speedup (a no-op at the
    /// single-lane default — the calibrated tables are untouched).
    pub fn sweep_work(&self, vertices: usize, references: usize) -> f64 {
        (vertices as f64 * self.per_vertex + references as f64 * self.per_reference)
            / self.team_speedup()
    }

    /// Work of packing or unpacking `elements` values. Deliberately *not*
    /// team-scaled: staging runs on the rank thread, serial with respect
    /// to the worker team.
    pub fn pack_work(&self, elements: usize) -> f64 {
        elements as f64 * self.per_pack
    }
}

impl Default for ComputeCostModel {
    fn default() -> Self {
        Self::sun4()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sequential_time_reproduced() {
        // 500 iterations over the Fig. 9 mesh: 30 269 vertices, 2 × 44 929
        // references.
        let m = ComputeCostModel::sun4();
        let per_iter = m.sweep_work(30_269, 2 * 44_929);
        let total = 500.0 * per_iter;
        assert!(
            (total - 97.61).abs() < 3.0,
            "expected ≈ 97.61 s, got {total:.2} s"
        );
    }

    #[test]
    fn zero_model() {
        let m = ComputeCostModel::zero();
        assert_eq!(m.sweep_work(100, 1000), 0.0);
        assert_eq!(m.pack_work(50), 0.0);
    }

    #[test]
    fn pack_work_linear() {
        let m = ComputeCostModel {
            per_pack: 2.0,
            ..ComputeCostModel::zero()
        };
        assert_eq!(m.pack_work(3), 6.0);
    }

    #[test]
    fn single_lane_team_is_identity() {
        let m = ComputeCostModel::sun4();
        assert_eq!(m.team_speedup(), 1.0);
        assert_eq!(m, m.with_team(1));
    }

    #[test]
    fn team_scales_sweep_but_not_pack() {
        let serial = ComputeCostModel::sun4();
        let team = serial.with_team(4);
        let speedup = 1.0 + 3.0 * DEFAULT_TEAM_EFFICIENCY;
        assert_eq!(team.team_speedup(), speedup);
        assert_eq!(
            team.sweep_work(1000, 4000),
            serial.sweep_work(1000, 4000) / speedup
        );
        assert_eq!(team.pack_work(1000), serial.pack_work(1000));
    }

    #[test]
    #[should_panic(expected = "at least one compute lane")]
    fn zero_lane_team_rejected() {
        let _ = ComputeCostModel::sun4().with_team(0);
    }
}
