//! Pricing of executor work in reference seconds.
//!
//! Calibrated so the paper's headline sequential measurement reproduces: 500
//! iterations of the Fig. 8 loop on the 30 269-vertex / 44 929-edge mesh took
//! 97.61 s on one SUN4 workstation (Table 4), i.e. ≈ 195 ms per sweep over
//! ~90k references — a few microseconds per indirect reference, which is
//! what mid-90s workstations delivered on pointer-chasing float code.

/// Seconds of reference-machine time per unit of kernel work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComputeCostModel {
    /// Per indirect reference (load via indirection array + add).
    pub per_reference: f64,
    /// Per owned vertex (loop overhead + divide + store).
    pub per_vertex: f64,
    /// Per element packed into / unpacked from a message buffer.
    pub per_pack: f64,
}

impl ComputeCostModel {
    /// SUN4-class calibration (see module docs): reproduces T(1) ≈ 97.6 s
    /// for the paper's workload.
    pub fn sun4() -> Self {
        ComputeCostModel {
            per_reference: 1.84e-6,
            per_vertex: 1.0e-6,
            per_pack: 0.4e-6,
        }
    }

    /// Free model for structure-only tests.
    pub fn zero() -> Self {
        ComputeCostModel {
            per_reference: 0.0,
            per_vertex: 0.0,
            per_pack: 0.0,
        }
    }

    /// Work (reference seconds) of one relaxation sweep over `vertices`
    /// owned vertices with `references` total neighbor references.
    pub fn sweep_work(&self, vertices: usize, references: usize) -> f64 {
        vertices as f64 * self.per_vertex + references as f64 * self.per_reference
    }

    /// Work of packing or unpacking `elements` values.
    pub fn pack_work(&self, elements: usize) -> f64 {
        elements as f64 * self.per_pack
    }
}

impl Default for ComputeCostModel {
    fn default() -> Self {
        Self::sun4()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sequential_time_reproduced() {
        // 500 iterations over the Fig. 9 mesh: 30 269 vertices, 2 × 44 929
        // references.
        let m = ComputeCostModel::sun4();
        let per_iter = m.sweep_work(30_269, 2 * 44_929);
        let total = 500.0 * per_iter;
        assert!(
            (total - 97.61).abs() < 3.0,
            "expected ≈ 97.61 s, got {total:.2} s"
        );
    }

    #[test]
    fn zero_model() {
        let m = ComputeCostModel::zero();
        assert_eq!(m.sweep_work(100, 1000), 0.0);
        assert_eq!(m.pack_work(50), 0.0);
    }

    #[test]
    fn pack_work_linear() {
        let m = ComputeCostModel {
            per_reference: 0.0,
            per_vertex: 0.0,
            per_pack: 2.0,
        };
        assert_eq!(m.pack_work(3), 6.0);
    }
}
