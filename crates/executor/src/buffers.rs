//! Reusable communication scratch for the executor's steady-state loop.
//!
//! The paper's execution structure runs thousands of gather/sweep
//! iterations between inspector invocations (§3.3), so per-iteration
//! constant factors dominate. [`CommBuffers`] removes the two allocations
//! the transport used to make per message: send staging buffers are
//! recycled from received payloads (a message's byte buffer makes a round
//! trip through the cluster instead of being freed), and a per-runner
//! element scratch absorbs the indexed decodes `scatter_add` needs. After
//! a short warm-up — buffer capacities converge as each byte buffer
//! circulates through its fixed send/receive cycle — a steady-state
//! [`LoopRunner`](crate::LoopRunner) iteration performs **zero heap
//! allocations** (pinned by `tests/alloc_free.rs`).
//!
//! The zero-allocation guarantee assumes the symmetric schedules the
//! paper's sort strategies build (each rank receives as many messages per
//! gather as it sends, so the buffer pool neither drains nor grows). With
//! an asymmetric schedule the pool is capped — extra received buffers are
//! dropped and missing send buffers are allocated fresh — so behaviour
//! degrades to the old per-message allocation, never to unbounded memory.

use stance_inspector::CommSchedule;
use stance_sim::{Element, RecvRequest, SendRequest};

/// Recycled transport scratch owned by one
/// [`LoopRunner`](crate::LoopRunner) (or built standalone for hand-driven
/// primitive calls), rebuilt only on remap.
#[derive(Debug)]
pub struct CommBuffers<E: Element> {
    /// Reusable byte buffers: popped for send staging, refilled from
    /// received payloads after their contents are unpacked in place.
    pool: Vec<Vec<u8>>,
    /// Upper bound on `pool.len()`, so asymmetric schedules cannot grow
    /// the pool without bound.
    pool_cap: usize,
    /// Element scratch for indexed decodes (scatter contributions).
    elems: Vec<E>,
    /// Outstanding receive handles of an in-flight split-phase gather
    /// (`gather_start` fills it, `gather_finish` drains it). Requests are
    /// plain `Copy` records recycled through this one pool — pre-sized
    /// from the schedule's receive count, so posting receives in the
    /// steady state allocates nothing.
    pub(crate) recv_reqs: Vec<RecvRequest>,
    /// Outstanding send handles of an in-flight split-phase gather,
    /// mirrored on `recv_reqs`: `gather_start` parks every `isend`
    /// handle here and `gather_finish` waits and drains them, so no
    /// request is ever dropped unwaited (the protocol-checker contract)
    /// — pre-sized from the schedule's send count.
    pub(crate) send_reqs: Vec<SendRequest>,
}

impl<E: Element> CommBuffers<E> {
    /// An empty buffer set; capacities warm up over the first iterations.
    pub fn new() -> Self {
        CommBuffers {
            pool: Vec::new(),
            pool_cap: 8,
            elems: Vec::new(),
            recv_reqs: Vec::new(),
            send_reqs: Vec::new(),
        }
    }

    /// Buffers pre-sized from a schedule: one staging buffer per send
    /// segment (capacity = one array's worth of that segment), element
    /// scratch sized for the largest arriving scatter segment.
    ///
    /// Buffers are stacked in reverse peer order so the peer-ascending
    /// send loop pops them with matching capacities on the very first
    /// iteration.
    pub fn for_schedule(schedule: &CommSchedule) -> Self {
        let pool: Vec<Vec<u8>> = schedule
            .sends()
            .iter()
            .rev()
            .map(|(_, locals)| Vec::with_capacity(locals.len() * E::SIZE_BYTES))
            .collect();
        let max_arriving = schedule
            .sends()
            .iter()
            .map(|(_, locals)| locals.len())
            .max()
            .unwrap_or(0);
        let pool_cap = schedule.sends().len().max(schedule.recvs().len()).max(8);
        CommBuffers {
            pool,
            pool_cap,
            elems: Vec::with_capacity(max_arriving),
            recv_reqs: Vec::with_capacity(schedule.recvs().len()),
            send_reqs: Vec::with_capacity(schedule.sends().len()),
        }
    }

    /// Re-targets recycled buffers at a new schedule (after a remap):
    /// pooled byte buffers, the element scratch and the request pool are
    /// all kept — only the pool cap and reservations are adjusted, so a
    /// rebuild allocates nothing once capacities have warmed up (compare
    /// [`CommBuffers::for_schedule`], which starts from scratch). Any
    /// buffer that turns out undersized for the new schedule grows lazily
    /// in `take_bytes`/`decode_into_scratch`, exactly as during warm-up.
    ///
    /// # Panics
    /// Panics if a split-phase gather is still in flight (the request pool
    /// must be drained by `gather_finish` before the schedule changes).
    pub fn rebuild(&mut self, schedule: &CommSchedule) {
        assert!(
            self.recv_reqs.is_empty() && self.send_reqs.is_empty(),
            "CommBuffers::rebuild with a split-phase gather in flight"
        );
        self.pool_cap = schedule.sends().len().max(schedule.recvs().len()).max(8);
        self.pool.truncate(self.pool_cap);
        // The request pools are empty here, so this ensures capacity for
        // the new schedule's segment counts (no-op once warm).
        self.recv_reqs.reserve(schedule.recvs().len());
        self.send_reqs.reserve(schedule.sends().len());
    }

    /// A cleared byte buffer with at least `capacity` bytes reserved —
    /// recycled if one is pooled, freshly allocated otherwise.
    pub(crate) fn take_bytes(&mut self, capacity: usize) -> Vec<u8> {
        match self.pool.pop() {
            Some(mut buf) => {
                buf.clear();
                buf.reserve(capacity);
                buf
            }
            None => Vec::with_capacity(capacity),
        }
    }

    /// Returns a spent buffer (typically a received payload whose contents
    /// were unpacked in place) to the pool for the next send.
    pub(crate) fn recycle(&mut self, buf: Vec<u8>) {
        if self.pool.len() < self.pool_cap {
            self.pool.push(buf);
        }
    }

    /// Decodes `len` elements out of `bytes` into the element scratch,
    /// recycles `bytes`, and returns the decoded slice.
    pub(crate) fn decode_into_scratch(&mut self, bytes: Vec<u8>, len: usize) -> &[E] {
        if self.elems.len() < len {
            self.elems.resize(len, E::zero());
        }
        E::unpack_into(&bytes, &mut self.elems[..len]);
        self.recycle(bytes);
        &self.elems[..len]
    }
}

impl<E: Element> Default for CommBuffers<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_recycle_round_trip_reuses_capacity() {
        let mut bufs: CommBuffers<f64> = CommBuffers::new();
        let mut b = bufs.take_bytes(64);
        assert!(b.capacity() >= 64);
        b.extend_from_slice(&[1, 2, 3]);
        let ptr = b.as_ptr();
        bufs.recycle(b);
        let b2 = bufs.take_bytes(16);
        assert_eq!(b2.as_ptr(), ptr, "pooled buffer must be reused");
        assert!(b2.is_empty(), "recycled buffer must come back cleared");
    }

    #[test]
    fn pool_is_capped() {
        let mut bufs: CommBuffers<f64> = CommBuffers::new();
        for _ in 0..100 {
            bufs.recycle(Vec::with_capacity(8));
        }
        assert!(bufs.pool.len() <= bufs.pool_cap);
    }

    #[test]
    fn decode_into_scratch_round_trips() {
        let mut bufs: CommBuffers<f64> = CommBuffers::new();
        let mut bytes = Vec::new();
        f64::pack_into(&[1.5, -2.0, 0.25], &mut bytes);
        assert_eq!(bufs.decode_into_scratch(bytes, 3), &[1.5, -2.0, 0.25]);
        // The spent buffer was recycled.
        assert_eq!(bufs.pool.len(), 1);
    }
}
