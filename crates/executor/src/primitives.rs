//! The two executor primitives: gather and scatter.
//!
//! §3.3: "Gather is used to fetch off-processor elements, while scatter is
//! used to send off-processor elements." Both walk the communication
//! schedule; gather moves owner → ghost, scatter-add moves ghost → owner
//! (accumulating, for symmetric update patterns like residual assembly).
//!
//! All ranks must call these collectively with matched schedules (the
//! inspector guarantees matching; `CommSchedule::validate` checks it).
//!
//! All primitives are generic over the application's
//! [`Element`](stance_sim::Element): values travel as packed little-endian
//! bytes, so the wire size the network model charges is
//! `count × E::SIZE_BYTES` for every element type. Packing work is charged
//! per *element* (one data item), matching the paper's per-item cost model.
//!
//! The transport is zero-copy on the hot path: received payloads are
//! decoded **directly into** the ghost region (gather) or through a reused
//! element scratch into the owned block (scatter), never via an
//! intermediate `Vec<E>`; send staging rides in byte buffers recycled
//! through [`CommBuffers`], so steady-state iterations allocate nothing.
//! All three primitives take the caller's [`CommBuffers`] — a
//! [`LoopRunner`](crate::LoopRunner) owns one and rebuilds it only on
//! remap; hand-driven callers build one with
//! [`CommBuffers::for_schedule`].

use stance_inspector::CommSchedule;
use stance_sim::{Comm, Element, Payload, Tag};

use crate::buffers::CommBuffers;
use crate::cost::ComputeCostModel;
use crate::ghosted::GhostedArray;
use crate::kernel::Field;

const TAG_GATHER: Tag = stance_sim::tags::TAG_GATHER;
const TAG_SCATTER: Tag = stance_sim::tags::TAG_SCATTER;
const TAG_GATHER_FUSED: Tag = stance_sim::tags::TAG_GATHER_FUSED;

/// Whether an index list is one strictly consecutive ascending run
/// (`l, l+1, …, l+n−1`). Block-partitioned boundary segments usually are,
/// and a consecutive segment bulk-packs straight from the owned block —
/// one memcpy-class [`Element::pack_into`] instead of `n` calls through
/// `write_bytes`. The detection is a single vectorizable pass over `u32`s,
/// orders of magnitude cheaper than the encode it elides.
#[inline]
fn consecutive_run(locals: &[u32]) -> bool {
    locals.windows(2).all(|w| w[1] == w[0] + 1)
}

/// Appends the listed elements of `local` to `bytes`: bulk-packed when the
/// list is one consecutive run, per-element otherwise.
#[inline]
fn pack_indexed<E: Element>(local: &[E], locals: &[u32], bytes: &mut Vec<u8>) {
    if !locals.is_empty() && consecutive_run(locals) {
        let first = locals[0] as usize;
        E::pack_into(&local[first..first + locals.len()], bytes);
    } else {
        for &l in locals {
            local[l as usize].write_bytes(bytes);
        }
    }
}

/// Fetches all off-processor elements into the ghost region of `values`.
///
/// For each send segment: packs the listed local values and sends them to
/// the peer. For each receive segment: receives the peer's packet and stores
/// it contiguously in the ghost region (the slots the schedule assigned).
/// Packing/unpacking work is charged to `env` via `cost`.
pub fn gather<E: Element, C: Comm>(
    env: &mut C,
    schedule: &CommSchedule,
    values: &mut GhostedArray<E>,
    cost: &ComputeCostModel,
    bufs: &mut CommBuffers<E>,
) {
    debug_assert_eq!(values.local_len(), schedule.interval().len());
    debug_assert_eq!(values.num_ghosts(), schedule.num_ghosts() as usize);

    // Send my boundary values to every peer that needs them, staged in a
    // recycled buffer; consecutive send runs bulk-pack straight from the
    // owned block.
    for (peer, locals) in schedule.sends() {
        env.compute(cost.pack_work(locals.len()));
        let mut bytes = bufs.take_bytes(locals.len() * E::SIZE_BYTES);
        pack_indexed(values.local(), locals, &mut bytes);
        env.send(*peer, TAG_GATHER, Payload::from_bytes(bytes));
    }
    // Receive ghost segments in schedule (peer-ascending) order; slots are
    // contiguous across segments by construction, so each payload decodes
    // directly into its ghost-region slice — no intermediate `Vec<E>`.
    let mut slot = 0usize;
    for (peer, globals) in schedule.recvs() {
        let bytes = env.recv(*peer, TAG_GATHER).into_bytes();
        assert_eq!(
            bytes.len(),
            globals.len() * E::SIZE_BYTES,
            "gather packet from rank {peer} has wrong length"
        );
        env.compute(cost.pack_work(globals.len()));
        E::unpack_into(&bytes, &mut values.ghosts_mut()[slot..slot + globals.len()]);
        bufs.recycle(bytes);
        slot += globals.len();
    }
}

/// Starts a split-phase gather: posts one nonblocking receive per receive
/// segment (handles parked in `bufs`' recycled request pool), then packs
/// and posts every send. Returns as soon as all traffic is posted — the
/// caller computes (typically: sweeps the interior vertices, which need no
/// gathered data) while the bytes are in flight, then calls
/// [`gather_finish`] to land them.
///
/// A `gather_start`/[`gather_finish`] pair moves exactly the bytes a
/// blocking [`gather`] moves, in the same per-peer order, and leaves the
/// ghost region bitwise identical — the split changes *when* the transfer
/// is waited on, never what arrives. Between the two calls the ghost
/// region still holds its previous contents, so only interior data may be
/// read from `values.combined()`.
///
/// # Panics
/// Panics (in debug) if `values`' shape does not match the schedule.
/// Calling `gather_start` twice without an intervening [`gather_finish`]
/// on the same `bufs` is a protocol bug (the request pool would hold
/// handles from both).
pub fn gather_start<E: Element, C: Comm>(
    env: &mut C,
    schedule: &CommSchedule,
    values: &GhostedArray<E>,
    cost: &ComputeCostModel,
    bufs: &mut CommBuffers<E>,
) {
    debug_assert_eq!(values.local_len(), schedule.interval().len());
    debug_assert_eq!(values.num_ghosts(), schedule.num_ghosts() as usize);
    debug_assert!(
        bufs.recv_reqs.is_empty(),
        "gather_start while a split-phase gather is already in flight"
    );

    // Post all receives first (MPI wisdom: a pre-posted receive gives the
    // transport a landing slot before any matching send can arrive).
    for (peer, _globals) in schedule.recvs() {
        let req = env.irecv(*peer, TAG_GATHER);
        bufs.recv_reqs.push(req);
    }
    // Pack and post the sends, staged in recycled buffers; consecutive
    // send runs bulk-pack straight from the owned block. Send handles
    // are parked in the recycled request pool and waited by
    // `gather_finish` — sends are buffered (the waits never block), but
    // every posted request must be completed so the protocol checker can
    // account for handles, and so a future backend with genuine send
    // completion works unchanged.
    for (peer, locals) in schedule.sends() {
        env.compute(cost.pack_work(locals.len()));
        let mut bytes = bufs.take_bytes(locals.len() * E::SIZE_BYTES);
        pack_indexed(values.local(), locals, &mut bytes);
        let req = env.isend(*peer, TAG_GATHER, Payload::from_bytes(bytes));
        bufs.send_reqs.push(req);
    }
}

/// Completes a split-phase gather started by [`gather_start`]: waits for
/// each posted receive in schedule (peer-ascending) order and decodes the
/// payload directly into its ghost-region slice, exactly as the blocking
/// [`gather`] does. After this returns, `values.combined()` is fully
/// consistent and the boundary sweep may run.
///
/// # Panics
/// Panics if a packet's length does not match its schedule segment.
pub fn gather_finish<E: Element, C: Comm>(
    env: &mut C,
    schedule: &CommSchedule,
    values: &mut GhostedArray<E>,
    cost: &ComputeCostModel,
    bufs: &mut CommBuffers<E>,
) {
    assert_eq!(
        bufs.recv_reqs.len(),
        schedule.recvs().len(),
        "gather_finish without a matching gather_start"
    );
    let mut slot = 0usize;
    for (i, (peer, globals)) in schedule.recvs().iter().enumerate() {
        let req = bufs.recv_reqs[i];
        let bytes = env.wait_recv(req).into_bytes();
        assert_eq!(
            bytes.len(),
            globals.len() * E::SIZE_BYTES,
            "gather packet from rank {peer} has wrong length"
        );
        env.compute(cost.pack_work(globals.len()));
        E::unpack_into(&bytes, &mut values.ghosts_mut()[slot..slot + globals.len()]);
        bufs.recycle(bytes);
        slot += globals.len();
    }
    bufs.recv_reqs.clear();
    // Complete the posted sends (never blocks — sends are buffered) so
    // no request handle outlives the gather it belongs to.
    for i in 0..bufs.send_reqs.len() {
        env.wait_send(bufs.send_reqs[i]);
    }
    bufs.send_reqs.clear();
}

/// Sends each ghost-region value back to its owner, which **adds** it into
/// the corresponding owned element. The flow is the exact reverse of
/// [`gather`]: receive segments become sends and send lists describe where
/// arriving contributions accumulate. Requires a [`Field`] element (the
/// accumulation needs addition).
pub fn scatter_add<E: Field, C: Comm>(
    env: &mut C,
    schedule: &CommSchedule,
    values: &mut GhostedArray<E>,
    cost: &ComputeCostModel,
    bufs: &mut CommBuffers<E>,
) {
    debug_assert_eq!(values.local_len(), schedule.interval().len());
    debug_assert_eq!(values.num_ghosts(), schedule.num_ghosts() as usize);

    // Ship my ghost contributions back to their owners: each segment is
    // contiguous in the ghost region, so it bulk-packs straight from the
    // buffer into recycled staging.
    let mut slot = 0usize;
    for (peer, globals) in schedule.recvs() {
        let seg = globals.len();
        env.compute(cost.pack_work(seg));
        let mut bytes = bufs.take_bytes(seg * E::SIZE_BYTES);
        E::pack_into(&values.ghosts()[slot..slot + seg], &mut bytes);
        slot += seg;
        env.send(*peer, TAG_SCATTER, Payload::from_bytes(bytes));
    }
    // Accumulate arriving contributions into my owned elements. The
    // accumulation targets are an index scatter, so the payload decodes
    // into the reused element scratch (no fresh `Vec<E>`) and adds from
    // there.
    for (peer, locals) in schedule.sends() {
        let bytes = env.recv(*peer, TAG_SCATTER).into_bytes();
        assert_eq!(
            bytes.len(),
            locals.len() * E::SIZE_BYTES,
            "scatter packet from rank {peer} has wrong length"
        );
        env.compute(cost.pack_work(locals.len()));
        let contributions = bufs.decode_into_scratch(bytes, locals.len());
        let local = values.local_mut();
        if !locals.is_empty() && consecutive_run(locals) {
            let first = locals[0] as usize;
            for (o, &v) in local[first..first + locals.len()]
                .iter_mut()
                .zip(contributions)
            {
                *o = o.add(v);
            }
        } else {
            for (&l, &v) in locals.iter().zip(contributions) {
                local[l as usize] = local[l as usize].add(v);
            }
        }
    }
}

/// Gathers ghosts for **several arrays at once**, coalescing all of a
/// peer's values into one message (the paper's §2 "message coalescing"
/// optimization: for `k` arrays this sends `1/k` of the messages of `k`
/// separate gathers, paying the per-message setup once).
///
/// Wire format per peer: `k` consecutive segments, one per array, each in
/// send-list order. All ranks must pass the same number of arrays.
///
/// # Panics
/// Panics if any array's shape does not match the schedule.
pub fn gather_coalesced<E: Element, C: Comm>(
    env: &mut C,
    schedule: &CommSchedule,
    arrays: &mut [&mut GhostedArray<E>],
    cost: &ComputeCostModel,
    bufs: &mut CommBuffers<E>,
) {
    if arrays.is_empty() {
        return;
    }
    let k = arrays.len();
    for a in arrays.iter() {
        debug_assert_eq!(a.local_len(), schedule.interval().len());
        debug_assert_eq!(a.num_ghosts(), schedule.num_ghosts() as usize);
    }
    for (peer, locals) in schedule.sends() {
        env.compute(cost.pack_work(locals.len() * k));
        let mut bytes = bufs.take_bytes(locals.len() * k * E::SIZE_BYTES);
        for a in arrays.iter() {
            pack_indexed(a.local(), locals, &mut bytes);
        }
        env.send(*peer, TAG_GATHER, Payload::from_bytes(bytes));
    }
    // Each array's segment of the payload decodes directly into that
    // array's ghost-region slice.
    let mut slot = 0usize;
    for (peer, globals) in schedule.recvs() {
        let seg = globals.len();
        let bytes = env.recv(*peer, TAG_GATHER).into_bytes();
        assert_eq!(
            bytes.len(),
            seg * k * E::SIZE_BYTES,
            "coalesced packet from rank {peer} has wrong length"
        );
        env.compute(cost.pack_work(seg * k));
        let seg_bytes = seg * E::SIZE_BYTES;
        for (i, a) in arrays.iter_mut().enumerate() {
            E::unpack_into(
                &bytes[i * seg_bytes..(i + 1) * seg_bytes],
                &mut a.ghosts_mut()[slot..slot + seg],
            );
        }
        bufs.recycle(bytes);
        slot += seg;
    }
}

/// Gathers ghosts for the fields selected by `which` (indices into
/// `arrays`) in **one fused message per neighbor**, on the dedicated
/// [`TAG_GATHER_FUSED`](stance_sim::tags::TAG_GATHER_FUSED) stream. This
/// is the stage-graph exchange primitive: a dataflow session groups all
/// fields whose ghosts are due at the same point of the stage schedule
/// and moves them in a single packet, paying the per-message setup once
/// instead of once per field.
///
/// The selection-by-index signature (rather than `&mut [&mut
/// GhostedArray<E>]`) lets a caller that owns all its fields in one
/// `Vec` pick an iteration-dependent subset without building a slice of
/// mutable borrows — the steady-state loop stays allocation-free.
///
/// Wire format per peer: `which.len()` consecutive segments, one per
/// selected field in `which` order, each in send-list order. All ranks
/// must pass the same selection (the dirty-tracking that produces
/// `which` is replicated SPMD state). An empty selection sends nothing.
///
/// # Panics
/// Panics (in debug) if any selected array's shape does not match the
/// schedule or an index repeats.
pub fn gather_fused<E: Element, C: Comm>(
    env: &mut C,
    schedule: &CommSchedule,
    arrays: &mut [GhostedArray<E>],
    which: &[usize],
    cost: &ComputeCostModel,
    bufs: &mut CommBuffers<E>,
) {
    if which.is_empty() {
        return;
    }
    debug_assert_fused_selection(schedule, arrays, which);
    let k = which.len();
    for (peer, locals) in schedule.sends() {
        env.compute(cost.pack_work(locals.len() * k));
        let mut bytes = bufs.take_bytes(locals.len() * k * E::SIZE_BYTES);
        for &w in which {
            pack_indexed(arrays[w].local(), locals, &mut bytes);
        }
        env.send(*peer, TAG_GATHER_FUSED, Payload::from_bytes(bytes));
    }
    // Each field's segment of the payload decodes directly into that
    // field's ghost-region slice.
    let mut slot = 0usize;
    for (peer, globals) in schedule.recvs() {
        let seg = globals.len();
        let bytes = env.recv(*peer, TAG_GATHER_FUSED).into_bytes();
        assert_eq!(
            bytes.len(),
            seg * k * E::SIZE_BYTES,
            "fused gather packet from rank {peer} has wrong length"
        );
        env.compute(cost.pack_work(seg * k));
        unpack_fused_segments(&bytes, arrays, which, slot, seg);
        bufs.recycle(bytes);
        slot += seg;
    }
}

/// Starts a split-phase fused gather for the fields selected by `which`:
/// posts one nonblocking receive per peer, then packs every selected
/// field's boundary values into one message per peer and posts the
/// sends, exactly as [`gather_fused`] would. The caller computes while
/// the bytes are in flight — legally, anything that reads no ghost of a
/// selected field — then calls [`gather_fused_finish`] with the **same**
/// selection to land them.
///
/// An empty selection posts nothing (and the matching finish is a
/// no-op), so callers can drive the pair unconditionally from
/// dirty-tracking state.
///
/// # Panics
/// Panics (in debug) if a split-phase gather is already in flight on
/// `bufs`, or if a selected array's shape does not match the schedule.
pub fn gather_fused_start<E: Element, C: Comm>(
    env: &mut C,
    schedule: &CommSchedule,
    arrays: &[GhostedArray<E>],
    which: &[usize],
    cost: &ComputeCostModel,
    bufs: &mut CommBuffers<E>,
) {
    if which.is_empty() {
        return;
    }
    debug_assert!(
        bufs.recv_reqs.is_empty(),
        "gather_fused_start while a split-phase gather is already in flight"
    );
    #[cfg(debug_assertions)]
    for (i, &w) in which.iter().enumerate() {
        debug_assert_eq!(arrays[w].local_len(), schedule.interval().len());
        debug_assert_eq!(arrays[w].num_ghosts(), schedule.num_ghosts() as usize);
        debug_assert!(!which[..i].contains(&w), "field {w} selected twice");
    }
    let k = which.len();
    for (peer, _globals) in schedule.recvs() {
        let req = env.irecv(*peer, TAG_GATHER_FUSED);
        bufs.recv_reqs.push(req);
    }
    for (peer, locals) in schedule.sends() {
        env.compute(cost.pack_work(locals.len() * k));
        let mut bytes = bufs.take_bytes(locals.len() * k * E::SIZE_BYTES);
        for &w in which {
            pack_indexed(arrays[w].local(), locals, &mut bytes);
        }
        let req = env.isend(*peer, TAG_GATHER_FUSED, Payload::from_bytes(bytes));
        bufs.send_reqs.push(req);
    }
}

/// Completes a split-phase fused gather started by
/// [`gather_fused_start`] with the same selection: waits each posted
/// receive in schedule order, decodes every field's segment into its
/// ghost-region slice, then completes the posted sends. A no-op for an
/// empty selection.
///
/// # Panics
/// Panics if no matching start was issued or a packet's length does not
/// match the selection.
pub fn gather_fused_finish<E: Element, C: Comm>(
    env: &mut C,
    schedule: &CommSchedule,
    arrays: &mut [GhostedArray<E>],
    which: &[usize],
    cost: &ComputeCostModel,
    bufs: &mut CommBuffers<E>,
) {
    if which.is_empty() {
        return;
    }
    assert_eq!(
        bufs.recv_reqs.len(),
        schedule.recvs().len(),
        "gather_fused_finish without a matching gather_fused_start"
    );
    let k = which.len();
    let mut slot = 0usize;
    for (i, (peer, globals)) in schedule.recvs().iter().enumerate() {
        let seg = globals.len();
        let req = bufs.recv_reqs[i];
        let bytes = env.wait_recv(req).into_bytes();
        assert_eq!(
            bytes.len(),
            seg * k * E::SIZE_BYTES,
            "fused gather packet from rank {peer} has wrong length"
        );
        env.compute(cost.pack_work(seg * k));
        unpack_fused_segments(&bytes, arrays, which, slot, seg);
        bufs.recycle(bytes);
        slot += seg;
    }
    bufs.recv_reqs.clear();
    for i in 0..bufs.send_reqs.len() {
        env.wait_send(bufs.send_reqs[i]);
    }
    bufs.send_reqs.clear();
}

/// Decodes one fused packet's `which.len()` segments (each `seg`
/// elements, starting at ghost `slot`) into the selected arrays.
#[inline]
fn unpack_fused_segments<E: Element>(
    bytes: &[u8],
    arrays: &mut [GhostedArray<E>],
    which: &[usize],
    slot: usize,
    seg: usize,
) {
    let seg_bytes = seg * E::SIZE_BYTES;
    for (i, &w) in which.iter().enumerate() {
        E::unpack_into(
            &bytes[i * seg_bytes..(i + 1) * seg_bytes],
            &mut arrays[w].ghosts_mut()[slot..slot + seg],
        );
    }
}

#[cfg(debug_assertions)]
fn debug_assert_fused_selection<E: Element>(
    schedule: &CommSchedule,
    arrays: &[GhostedArray<E>],
    which: &[usize],
) {
    for (i, &w) in which.iter().enumerate() {
        debug_assert_eq!(arrays[w].local_len(), schedule.interval().len());
        debug_assert_eq!(arrays[w].num_ghosts(), schedule.num_ghosts() as usize);
        debug_assert!(!which[..i].contains(&w), "field {w} selected twice");
    }
}

#[cfg(not(debug_assertions))]
fn debug_assert_fused_selection<E: Element>(
    _schedule: &CommSchedule,
    _arrays: &[GhostedArray<E>],
    _which: &[usize],
) {
}

#[cfg(test)]
mod tests {
    use super::*;
    use stance_inspector::{build_schedule_symmetric, LocalAdjacency, ScheduleStrategy};
    use stance_locality::meshgen;
    use stance_onedim::BlockPartition;
    use stance_sim::{Cluster, ClusterSpec, NetworkSpec};

    /// Runs gather on a mesh where every element's value is its global id;
    /// every ghost slot must then hold its global id.
    #[test]
    fn gather_fetches_correct_values() {
        let g = meshgen::triangulated_grid(9, 7, 0.3, 2);
        let part = BlockPartition::from_sizes(&[20, 23, 20]);
        let spec = ClusterSpec::uniform(3).with_network(NetworkSpec::zero_cost());
        Cluster::new(spec).run(|env| {
            let rank = env.rank();
            let adj = LocalAdjacency::extract(&g, &part, rank);
            let (sched, _) = build_schedule_symmetric(&part, &adj, rank, ScheduleStrategy::Sort2);
            let iv = part.interval_of(rank);
            let local: Vec<f64> = iv.iter().map(|g| g as f64).collect();
            let mut values = GhostedArray::from_local(local, sched.num_ghosts() as usize);
            gather(
                env,
                &sched,
                &mut values,
                &ComputeCostModel::zero(),
                &mut CommBuffers::for_schedule(&sched),
            );
            // Every ghost slot holds the value of its global element.
            for (_, globals) in sched.recvs() {
                for &gl in globals {
                    let slot = sched.ghost_slot(gl).unwrap() as usize;
                    assert_eq!(values.ghosts()[slot], f64::from(gl));
                }
            }
        });
    }

    /// scatter_add after setting each ghost to 1 must add, per owned vertex,
    /// the number of remote blocks referencing it.
    #[test]
    fn scatter_add_accumulates() {
        let g = meshgen::triangulated_grid(9, 7, 0.3, 2);
        let n = g.num_vertices();
        let part = BlockPartition::uniform(n, 3);
        let spec = ClusterSpec::uniform(3).with_network(NetworkSpec::zero_cost());
        let report = Cluster::new(spec).run(|env| {
            let rank = env.rank();
            let adj = LocalAdjacency::extract(&g, &part, rank);
            let (sched, _) = build_schedule_symmetric(&part, &adj, rank, ScheduleStrategy::Sort2);
            let mut values =
                GhostedArray::zeros(part.interval_of(rank).len(), sched.num_ghosts() as usize);
            for x in values.ghosts_mut() {
                *x = 1.0;
            }
            scatter_add(
                env,
                &sched,
                &mut values,
                &ComputeCostModel::zero(),
                &mut CommBuffers::for_schedule(&sched),
            );
            // Expected: each owned vertex receives one contribution per peer
            // that lists it in the send list (i.e. per remote block that
            // references it).
            let mut expected = vec![0.0; values.local_len()];
            for (_, locals) in sched.sends() {
                for &l in locals {
                    expected[l as usize] += 1.0;
                }
            }
            assert_eq!(values.local(), expected.as_slice());
            values.local().iter().sum::<f64>()
        });
        // Total contributions = total ghosts across all ranks.
        let total: f64 = report.results().sum();
        assert!(total > 0.0);
    }

    /// A gather_start/gather_finish pair must deliver exactly what the
    /// blocking gather delivers — same ghost values (bitwise), same
    /// message count — with compute legal between the phases.
    #[test]
    fn split_phase_gather_equivalent_to_blocking() {
        let g = meshgen::triangulated_grid(9, 7, 0.3, 2);
        let part = BlockPartition::from_sizes(&[20, 23, 20]);
        let spec = ClusterSpec::uniform(3).with_network(NetworkSpec::zero_cost());
        Cluster::new(spec).run(|env| {
            let rank = env.rank();
            let adj = LocalAdjacency::extract(&g, &part, rank);
            let (sched, _) = build_schedule_symmetric(&part, &adj, rank, ScheduleStrategy::Sort2);
            let iv = part.interval_of(rank);
            let local: Vec<f64> = iv.iter().map(|g| (g as f64).sin()).collect();
            let ghosts = sched.num_ghosts() as usize;
            let mut blocking = GhostedArray::from_local(local.clone(), ghosts);
            let mut split = GhostedArray::from_local(local, ghosts);
            let mut bufs = CommBuffers::for_schedule(&sched);

            gather(
                env,
                &sched,
                &mut blocking,
                &ComputeCostModel::zero(),
                &mut bufs,
            );
            let msgs_blocking = env.stats().messages_sent;

            gather_start(env, &sched, &split, &ComputeCostModel::zero(), &mut bufs);
            // Anything may run here; the ghost region is still stale.
            env.compute(0.0);
            gather_finish(
                env,
                &sched,
                &mut split,
                &ComputeCostModel::zero(),
                &mut bufs,
            );
            let msgs_split = env.stats().messages_sent - msgs_blocking;

            assert_eq!(split, blocking, "split-phase ghosts differ");
            assert_eq!(
                msgs_split, msgs_blocking,
                "split-phase message count differs"
            );
        });
    }

    #[test]
    #[should_panic(expected = "without a matching gather_start")]
    fn gather_finish_requires_start() {
        let g = meshgen::triangulated_grid(4, 4, 0.0, 1);
        let part = BlockPartition::uniform(16, 2);
        let spec = ClusterSpec::uniform(2).with_network(NetworkSpec::zero_cost());
        Cluster::new(spec).run(|env| {
            let adj = LocalAdjacency::extract(&g, &part, env.rank());
            let (sched, _) =
                build_schedule_symmetric(&part, &adj, env.rank(), ScheduleStrategy::Sort2);
            let mut values: GhostedArray = GhostedArray::zeros(8, sched.num_ghosts() as usize);
            gather_finish(
                env,
                &sched,
                &mut values,
                &ComputeCostModel::zero(),
                &mut CommBuffers::new(),
            );
        });
    }

    /// Gather must be deterministic and charge identical virtual time across
    /// runs.
    #[test]
    fn gather_deterministic_timing() {
        let g = meshgen::triangulated_grid(8, 8, 0.2, 4);
        let part = BlockPartition::uniform(64, 4);
        let run = || {
            let g = g.clone();
            let part = part.clone();
            let spec = ClusterSpec::paper_cluster(4);
            Cluster::new(spec)
                .run(move |env| {
                    let rank = env.rank();
                    let adj = LocalAdjacency::extract(&g, &part, rank);
                    let (sched, _) =
                        build_schedule_symmetric(&part, &adj, rank, ScheduleStrategy::Sort2);
                    let mut values: GhostedArray = GhostedArray::zeros(
                        part.interval_of(rank).len(),
                        sched.num_ghosts() as usize,
                    );
                    let mut bufs = CommBuffers::for_schedule(&sched);
                    for _ in 0..5 {
                        gather(
                            env,
                            &sched,
                            &mut values,
                            &ComputeCostModel::sun4(),
                            &mut bufs,
                        );
                        env.barrier();
                    }
                    env.now().as_secs()
                })
                .into_results()
        };
        assert_eq!(run(), run());
    }

    /// Coalesced gather must deliver exactly what k separate gathers would,
    /// with 1/k of the messages.
    #[test]
    fn coalesced_gather_equivalent_and_cheaper() {
        let g = meshgen::triangulated_grid(9, 7, 0.3, 2);
        let n = g.num_vertices();
        let part = BlockPartition::uniform(n, 3);
        let spec = ClusterSpec::uniform(3).with_network(NetworkSpec::zero_cost());
        let report = Cluster::new(spec).run(|env| {
            let rank = env.rank();
            let adj = LocalAdjacency::extract(&g, &part, rank);
            let (sched, _) = build_schedule_symmetric(&part, &adj, rank, ScheduleStrategy::Sort2);
            let iv = part.interval_of(rank);
            let ghosts = sched.num_ghosts() as usize;
            // Three arrays with distinct value patterns.
            let mk =
                |f: fn(usize) -> f64| GhostedArray::from_local(iv.iter().map(f).collect(), ghosts);
            let mut a = mk(|g| g as f64);
            let mut b = mk(|g| (g * g) as f64);
            let mut c = mk(|g| -(g as f64));

            // Reference: separate gathers.
            let mut a_ref = a.clone();
            let mut b_ref = b.clone();
            let mut c_ref = c.clone();
            let mut bufs = CommBuffers::for_schedule(&sched);
            gather(
                env,
                &sched,
                &mut a_ref,
                &ComputeCostModel::zero(),
                &mut bufs,
            );
            gather(
                env,
                &sched,
                &mut b_ref,
                &ComputeCostModel::zero(),
                &mut bufs,
            );
            gather(
                env,
                &sched,
                &mut c_ref,
                &ComputeCostModel::zero(),
                &mut bufs,
            );
            let msgs_separate = env.stats().messages_sent;

            gather_coalesced(
                env,
                &sched,
                &mut [&mut a, &mut b, &mut c],
                &ComputeCostModel::zero(),
                &mut bufs,
            );
            let msgs_coalesced = env.stats().messages_sent - msgs_separate;

            assert_eq!(a, a_ref);
            assert_eq!(b, b_ref);
            assert_eq!(c, c_ref);
            (msgs_separate, msgs_coalesced)
        });
        for (separate, coalesced) in report.results() {
            assert_eq!(
                *separate,
                3 * coalesced,
                "coalescing must cut messages 3x ({separate} vs {coalesced})"
            );
        }
    }

    #[test]
    fn coalesced_gather_empty_array_list_is_noop() {
        let g = meshgen::triangulated_grid(4, 4, 0.0, 1);
        let part = BlockPartition::uniform(16, 2);
        let spec = ClusterSpec::uniform(2).with_network(NetworkSpec::zero_cost());
        Cluster::new(spec).run(|env| {
            let adj = LocalAdjacency::extract(&g, &part, env.rank());
            let (sched, _) =
                build_schedule_symmetric(&part, &adj, env.rank(), ScheduleStrategy::Sort2);
            gather_coalesced::<f64, _>(
                env,
                &sched,
                &mut [],
                &ComputeCostModel::zero(),
                &mut CommBuffers::new(),
            );
            assert_eq!(env.stats().messages_sent, 0);
        });
    }

    /// Fused gather of a selection must deliver exactly what separate
    /// gathers of those fields would — bitwise — in one message per
    /// neighbor, and the blocking and split-phase flavours must agree.
    #[test]
    fn fused_gather_equivalent_to_separate_and_single_message() {
        let g = meshgen::triangulated_grid(9, 7, 0.3, 2);
        let n = g.num_vertices();
        let part = BlockPartition::uniform(n, 3);
        let spec = ClusterSpec::uniform(3).with_network(NetworkSpec::zero_cost());
        let report = Cluster::new(spec).run(|env| {
            let rank = env.rank();
            let adj = LocalAdjacency::extract(&g, &part, rank);
            let (sched, _) = build_schedule_symmetric(&part, &adj, rank, ScheduleStrategy::Sort2);
            let iv = part.interval_of(rank);
            let ghosts = sched.num_ghosts() as usize;
            let mk =
                |f: fn(usize) -> f64| GhostedArray::from_local(iv.iter().map(f).collect(), ghosts);
            // Three registered fields; the selection gathers only two.
            let mut fields = vec![
                mk(|g| g as f64),
                mk(|g| (g * g) as f64),
                mk(|g| -(g as f64)),
            ];
            let mut split = fields.clone();
            let mut bufs = CommBuffers::for_schedule(&sched);

            // Reference: separate gathers of the selected fields.
            let mut a_ref = fields[0].clone();
            let mut c_ref = fields[2].clone();
            gather(
                env,
                &sched,
                &mut a_ref,
                &ComputeCostModel::zero(),
                &mut bufs,
            );
            gather(
                env,
                &sched,
                &mut c_ref,
                &ComputeCostModel::zero(),
                &mut bufs,
            );
            let msgs_separate = env.stats().messages_sent;

            gather_fused(
                env,
                &sched,
                &mut fields,
                &[0, 2],
                &ComputeCostModel::zero(),
                &mut bufs,
            );
            let msgs_fused = env.stats().messages_sent - msgs_separate;

            gather_fused_start(
                env,
                &sched,
                &split,
                &[0, 2],
                &ComputeCostModel::zero(),
                &mut bufs,
            );
            env.compute(0.0);
            gather_fused_finish(
                env,
                &sched,
                &mut split,
                &[0, 2],
                &ComputeCostModel::zero(),
                &mut bufs,
            );

            assert_eq!(fields[0], a_ref);
            assert_eq!(fields[2], c_ref);
            // The unselected field's ghosts were never touched.
            assert!(fields[1].ghosts().iter().all(|&x| x == 0.0));
            assert_eq!(split[0], fields[0]);
            assert_eq!(split[2], fields[2]);
            (msgs_separate, msgs_fused)
        });
        for (separate, fused) in report.results() {
            assert_eq!(
                *separate,
                2 * fused,
                "fusing 2 fields must halve messages ({separate} vs {fused})"
            );
        }
    }

    /// An empty selection is a complete no-op for all three fused
    /// entry points.
    #[test]
    fn fused_gather_empty_selection_is_noop() {
        let g = meshgen::triangulated_grid(4, 4, 0.0, 1);
        let part = BlockPartition::uniform(16, 2);
        let spec = ClusterSpec::uniform(2).with_network(NetworkSpec::zero_cost());
        Cluster::new(spec).run(|env| {
            let adj = LocalAdjacency::extract(&g, &part, env.rank());
            let (sched, _) =
                build_schedule_symmetric(&part, &adj, env.rank(), ScheduleStrategy::Sort2);
            let mut fields: Vec<GhostedArray<f64>> =
                vec![GhostedArray::zeros(8, sched.num_ghosts() as usize)];
            let mut bufs = CommBuffers::new();
            let cost = ComputeCostModel::zero();
            gather_fused(env, &sched, &mut fields, &[], &cost, &mut bufs);
            gather_fused_start(env, &sched, &fields, &[], &cost, &mut bufs);
            gather_fused_finish(env, &sched, &mut fields, &[], &cost, &mut bufs);
            assert_eq!(env.stats().messages_sent, 0);
        });
    }

    /// With two ranks and a single cut edge, gather sends exactly one
    /// element each way.
    #[test]
    fn gather_message_volume() {
        use stance_locality::Graph;
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)], vec![[0.0; 3]; 4], 2);
        let part = BlockPartition::uniform(4, 2);
        let spec = ClusterSpec::uniform(2).with_network(NetworkSpec::zero_cost());
        let report = Cluster::new(spec).run(|env| {
            let rank = env.rank();
            let adj = LocalAdjacency::extract(&g, &part, rank);
            let (sched, _) = build_schedule_symmetric(&part, &adj, rank, ScheduleStrategy::Sort2);
            let mut values: GhostedArray = GhostedArray::zeros(2, sched.num_ghosts() as usize);
            gather(
                env,
                &sched,
                &mut values,
                &ComputeCostModel::zero(),
                &mut CommBuffers::for_schedule(&sched),
            );
            (env.stats().messages_sent, env.stats().bytes_sent)
        });
        for (msgs, bytes) in report.results() {
            assert_eq!(*msgs, 1);
            assert_eq!(*bytes, 8);
        }
    }
}
