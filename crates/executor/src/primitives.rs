//! The two executor primitives: gather and scatter.
//!
//! §3.3: "Gather is used to fetch off-processor elements, while scatter is
//! used to send off-processor elements." Both walk the communication
//! schedule; gather moves owner → ghost, scatter-add moves ghost → owner
//! (accumulating, for symmetric update patterns like residual assembly).
//!
//! All ranks must call these collectively with matched schedules (the
//! inspector guarantees matching; `CommSchedule::validate` checks it).
//!
//! All primitives are generic over the application's
//! [`Element`](stance_sim::Element): values travel as packed little-endian
//! bytes, so the wire size the network model charges is
//! `count × E::SIZE_BYTES` for every element type. Packing work is charged
//! per *element* (one data item), matching the paper's per-item cost model.

use stance_inspector::CommSchedule;
use stance_sim::{Element, Env, Payload, Tag};

use crate::cost::ComputeCostModel;
use crate::ghosted::GhostedArray;
use crate::kernel::Field;

const TAG_GATHER: Tag = Tag::reserved(32);
const TAG_SCATTER: Tag = Tag::reserved(33);

/// Fetches all off-processor elements into the ghost region of `values`.
///
/// For each send segment: packs the listed local values and sends them to
/// the peer. For each receive segment: receives the peer's packet and stores
/// it contiguously in the ghost region (the slots the schedule assigned).
/// Packing/unpacking work is charged to `env` via `cost`.
pub fn gather<E: Element>(
    env: &mut Env,
    schedule: &CommSchedule,
    values: &mut GhostedArray<E>,
    cost: &ComputeCostModel,
) {
    debug_assert_eq!(values.local_len(), schedule.interval().len());
    debug_assert_eq!(values.num_ghosts(), schedule.num_ghosts() as usize);

    // Send my boundary values to every peer that needs them.
    for (peer, locals) in schedule.sends() {
        env.compute(cost.pack_work(locals.len()));
        let mut bytes = Vec::with_capacity(locals.len() * E::SIZE_BYTES);
        {
            let local = values.local();
            for &l in locals {
                local[l as usize].write_bytes(&mut bytes);
            }
        }
        env.send(*peer, TAG_GATHER, Payload::from_bytes(bytes));
    }
    // Receive ghost segments in schedule (peer-ascending) order; slots are
    // contiguous across segments by construction.
    let mut slot = 0usize;
    for (peer, globals) in schedule.recvs() {
        let packet = E::unpack(env.recv(*peer, TAG_GATHER));
        assert_eq!(
            packet.len(),
            globals.len(),
            "gather packet from rank {peer} has wrong length"
        );
        env.compute(cost.pack_work(packet.len()));
        values.ghosts_mut()[slot..slot + packet.len()].copy_from_slice(&packet);
        slot += packet.len();
    }
}

/// Sends each ghost-region value back to its owner, which **adds** it into
/// the corresponding owned element. The flow is the exact reverse of
/// [`gather`]: receive segments become sends and send lists describe where
/// arriving contributions accumulate. Requires a [`Field`] element (the
/// accumulation needs addition).
pub fn scatter_add<E: Field>(
    env: &mut Env,
    schedule: &CommSchedule,
    values: &mut GhostedArray<E>,
    cost: &ComputeCostModel,
) {
    debug_assert_eq!(values.local_len(), schedule.interval().len());
    debug_assert_eq!(values.num_ghosts(), schedule.num_ghosts() as usize);

    // Ship my ghost contributions back to their owners.
    let mut slot = 0usize;
    for (peer, globals) in schedule.recvs() {
        let packet = &values.ghosts()[slot..slot + globals.len()];
        slot += globals.len();
        env.compute(cost.pack_work(packet.len()));
        env.send(*peer, TAG_SCATTER, E::pack(packet));
    }
    // Accumulate arriving contributions into my owned elements.
    for (peer, locals) in schedule.sends() {
        let packet = E::unpack(env.recv(*peer, TAG_SCATTER));
        assert_eq!(
            packet.len(),
            locals.len(),
            "scatter packet from rank {peer} has wrong length"
        );
        env.compute(cost.pack_work(packet.len()));
        let local = values.local_mut();
        for (&l, &v) in locals.iter().zip(&packet) {
            local[l as usize] = local[l as usize].add(v);
        }
    }
}

/// Gathers ghosts for **several arrays at once**, coalescing all of a
/// peer's values into one message (the paper's §2 "message coalescing"
/// optimization: for `k` arrays this sends `1/k` of the messages of `k`
/// separate gathers, paying the per-message setup once).
///
/// Wire format per peer: `k` consecutive segments, one per array, each in
/// send-list order. All ranks must pass the same number of arrays.
///
/// # Panics
/// Panics if any array's shape does not match the schedule.
pub fn gather_coalesced<E: Element>(
    env: &mut Env,
    schedule: &CommSchedule,
    arrays: &mut [&mut GhostedArray<E>],
    cost: &ComputeCostModel,
) {
    if arrays.is_empty() {
        return;
    }
    let k = arrays.len();
    for a in arrays.iter() {
        debug_assert_eq!(a.local_len(), schedule.interval().len());
        debug_assert_eq!(a.num_ghosts(), schedule.num_ghosts() as usize);
    }
    for (peer, locals) in schedule.sends() {
        env.compute(cost.pack_work(locals.len() * k));
        let mut bytes = Vec::with_capacity(locals.len() * k * E::SIZE_BYTES);
        for a in arrays.iter() {
            let local = a.local();
            for &l in locals {
                local[l as usize].write_bytes(&mut bytes);
            }
        }
        env.send(*peer, TAG_GATHER, Payload::from_bytes(bytes));
    }
    let mut slot = 0usize;
    for (peer, globals) in schedule.recvs() {
        let seg = globals.len();
        let packet = E::unpack(env.recv(*peer, TAG_GATHER));
        assert_eq!(
            packet.len(),
            seg * k,
            "coalesced packet from rank {peer} has wrong length"
        );
        env.compute(cost.pack_work(packet.len()));
        for (i, a) in arrays.iter_mut().enumerate() {
            a.ghosts_mut()[slot..slot + seg].copy_from_slice(&packet[i * seg..(i + 1) * seg]);
        }
        slot += seg;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stance_inspector::{build_schedule_symmetric, LocalAdjacency, ScheduleStrategy};
    use stance_locality::meshgen;
    use stance_onedim::BlockPartition;
    use stance_sim::{Cluster, ClusterSpec, NetworkSpec};

    /// Runs gather on a mesh where every element's value is its global id;
    /// every ghost slot must then hold its global id.
    #[test]
    fn gather_fetches_correct_values() {
        let g = meshgen::triangulated_grid(9, 7, 0.3, 2);
        let part = BlockPartition::from_sizes(&[20, 23, 20]);
        let spec = ClusterSpec::uniform(3).with_network(NetworkSpec::zero_cost());
        Cluster::new(spec).run(|env| {
            let rank = env.rank();
            let adj = LocalAdjacency::extract(&g, &part, rank);
            let (sched, _) = build_schedule_symmetric(&part, &adj, rank, ScheduleStrategy::Sort2);
            let iv = part.interval_of(rank);
            let local: Vec<f64> = iv.iter().map(|g| g as f64).collect();
            let mut values = GhostedArray::from_local(local, sched.num_ghosts() as usize);
            gather(env, &sched, &mut values, &ComputeCostModel::zero());
            // Every ghost slot holds the value of its global element.
            for (_, globals) in sched.recvs() {
                for &gl in globals {
                    let slot = sched.ghost_slot(gl).unwrap() as usize;
                    assert_eq!(values.ghosts()[slot], f64::from(gl));
                }
            }
        });
    }

    /// scatter_add after setting each ghost to 1 must add, per owned vertex,
    /// the number of remote blocks referencing it.
    #[test]
    fn scatter_add_accumulates() {
        let g = meshgen::triangulated_grid(9, 7, 0.3, 2);
        let n = g.num_vertices();
        let part = BlockPartition::uniform(n, 3);
        let spec = ClusterSpec::uniform(3).with_network(NetworkSpec::zero_cost());
        let report = Cluster::new(spec).run(|env| {
            let rank = env.rank();
            let adj = LocalAdjacency::extract(&g, &part, rank);
            let (sched, _) = build_schedule_symmetric(&part, &adj, rank, ScheduleStrategy::Sort2);
            let mut values =
                GhostedArray::zeros(part.interval_of(rank).len(), sched.num_ghosts() as usize);
            for x in values.ghosts_mut() {
                *x = 1.0;
            }
            scatter_add(env, &sched, &mut values, &ComputeCostModel::zero());
            // Expected: each owned vertex receives one contribution per peer
            // that lists it in the send list (i.e. per remote block that
            // references it).
            let mut expected = vec![0.0; values.local_len()];
            for (_, locals) in sched.sends() {
                for &l in locals {
                    expected[l as usize] += 1.0;
                }
            }
            assert_eq!(values.local(), expected.as_slice());
            values.local().iter().sum::<f64>()
        });
        // Total contributions = total ghosts across all ranks.
        let total: f64 = report.results().sum();
        assert!(total > 0.0);
    }

    /// Gather must be deterministic and charge identical virtual time across
    /// runs.
    #[test]
    fn gather_deterministic_timing() {
        let g = meshgen::triangulated_grid(8, 8, 0.2, 4);
        let part = BlockPartition::uniform(64, 4);
        let run = || {
            let g = g.clone();
            let part = part.clone();
            let spec = ClusterSpec::paper_cluster(4);
            Cluster::new(spec)
                .run(move |env| {
                    let rank = env.rank();
                    let adj = LocalAdjacency::extract(&g, &part, rank);
                    let (sched, _) =
                        build_schedule_symmetric(&part, &adj, rank, ScheduleStrategy::Sort2);
                    let mut values: GhostedArray = GhostedArray::zeros(
                        part.interval_of(rank).len(),
                        sched.num_ghosts() as usize,
                    );
                    for _ in 0..5 {
                        gather(env, &sched, &mut values, &ComputeCostModel::sun4());
                        env.barrier();
                    }
                    env.now().as_secs()
                })
                .into_results()
        };
        assert_eq!(run(), run());
    }

    /// Coalesced gather must deliver exactly what k separate gathers would,
    /// with 1/k of the messages.
    #[test]
    fn coalesced_gather_equivalent_and_cheaper() {
        let g = meshgen::triangulated_grid(9, 7, 0.3, 2);
        let n = g.num_vertices();
        let part = BlockPartition::uniform(n, 3);
        let spec = ClusterSpec::uniform(3).with_network(NetworkSpec::zero_cost());
        let report = Cluster::new(spec).run(|env| {
            let rank = env.rank();
            let adj = LocalAdjacency::extract(&g, &part, rank);
            let (sched, _) = build_schedule_symmetric(&part, &adj, rank, ScheduleStrategy::Sort2);
            let iv = part.interval_of(rank);
            let ghosts = sched.num_ghosts() as usize;
            // Three arrays with distinct value patterns.
            let mk =
                |f: fn(usize) -> f64| GhostedArray::from_local(iv.iter().map(f).collect(), ghosts);
            let mut a = mk(|g| g as f64);
            let mut b = mk(|g| (g * g) as f64);
            let mut c = mk(|g| -(g as f64));

            // Reference: separate gathers.
            let mut a_ref = a.clone();
            let mut b_ref = b.clone();
            let mut c_ref = c.clone();
            gather(env, &sched, &mut a_ref, &ComputeCostModel::zero());
            gather(env, &sched, &mut b_ref, &ComputeCostModel::zero());
            gather(env, &sched, &mut c_ref, &ComputeCostModel::zero());
            let msgs_separate = env.stats().messages_sent;

            gather_coalesced(
                env,
                &sched,
                &mut [&mut a, &mut b, &mut c],
                &ComputeCostModel::zero(),
            );
            let msgs_coalesced = env.stats().messages_sent - msgs_separate;

            assert_eq!(a, a_ref);
            assert_eq!(b, b_ref);
            assert_eq!(c, c_ref);
            (msgs_separate, msgs_coalesced)
        });
        for (separate, coalesced) in report.results() {
            assert_eq!(
                *separate,
                3 * coalesced,
                "coalescing must cut messages 3x ({separate} vs {coalesced})"
            );
        }
    }

    #[test]
    fn coalesced_gather_empty_array_list_is_noop() {
        let g = meshgen::triangulated_grid(4, 4, 0.0, 1);
        let part = BlockPartition::uniform(16, 2);
        let spec = ClusterSpec::uniform(2).with_network(NetworkSpec::zero_cost());
        Cluster::new(spec).run(|env| {
            let adj = LocalAdjacency::extract(&g, &part, env.rank());
            let (sched, _) =
                build_schedule_symmetric(&part, &adj, env.rank(), ScheduleStrategy::Sort2);
            gather_coalesced::<f64>(env, &sched, &mut [], &ComputeCostModel::zero());
            assert_eq!(env.stats().messages_sent, 0);
        });
    }

    /// With two ranks and a single cut edge, gather sends exactly one
    /// element each way.
    #[test]
    fn gather_message_volume() {
        use stance_locality::Graph;
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)], vec![[0.0; 3]; 4], 2);
        let part = BlockPartition::uniform(4, 2);
        let spec = ClusterSpec::uniform(2).with_network(NetworkSpec::zero_cost());
        let report = Cluster::new(spec).run(|env| {
            let rank = env.rank();
            let adj = LocalAdjacency::extract(&g, &part, rank);
            let (sched, _) = build_schedule_symmetric(&part, &adj, rank, ScheduleStrategy::Sort2);
            let mut values: GhostedArray = GhostedArray::zeros(2, sched.num_ghosts() as usize);
            gather(env, &sched, &mut values, &ComputeCostModel::zero());
            (env.stats().messages_sent, env.stats().bytes_sent)
        });
        for (msgs, bytes) in report.results() {
            assert_eq!(*msgs, 1);
            assert_eq!(*bytes, 8);
        }
    }
}
