//! One live connection to a peer rank: framing, short-read/short-write
//! handling, deadline-bounded receives, and broken-link bookkeeping.
//!
//! A [`PeerLink`] owns the socket plus an accumulator of
//! partially-received bytes, so a deadline expiring mid-frame never tears
//! the frame: whatever arrived stays buffered and the next receive picks
//! up exactly where the wire left off. Write-side short writes are
//! handled by `write_all` (which also retries `EINTR`), so a frame is
//! either fully on the wire or the link is broken — never half a frame.
//!
//! Failure surfaces exactly like the in-process mailbox: EOF, reset, or a
//! wire-format violation marks the link broken and every subsequent
//! operation reports [`Disconnected`] — *proof* the peer is unusable —
//! while a deadline that merely passes reports
//! [`RecvTimeoutError::TimedOut`], which is only suspicion. That is the
//! distinction the failure detector's `probe_membership` consumes, and it
//! is why a SIGKILLed peer produces a clean "dead" verdict instead of a
//! hang.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use stance_sim::mailbox::{Disconnected, MsgSource, RecvTimeoutError, Tagged};
use stance_sim::{Payload, Tag};

use crate::wire::{self, WireError};

/// A tagged message as carried by the TCP transport.
#[derive(Debug)]
pub struct TcpMsg {
    /// The message's tag.
    pub tag: Tag,
    /// The message's payload.
    pub payload: Payload,
}

impl Tagged for TcpMsg {
    fn tag(&self) -> Tag {
        self.tag
    }
}

/// Read chunk size: one kernel `read` per pump keeps syscall count low
/// without a large per-link resident buffer.
const READ_CHUNK: usize = 64 * 1024;

/// One framed, fault-tracking connection to a peer rank.
#[derive(Debug)]
pub struct PeerLink {
    stream: TcpStream,
    /// Bytes received but not yet parsed into a complete frame. A frame
    /// is extracted only once all its bytes are here — partial reads
    /// (deadline mid-frame, short socket reads) accumulate losslessly.
    acc: Vec<u8>,
    /// Recycled scratch for outgoing frames.
    wbuf: Vec<u8>,
    /// Set once the link is unusable, with the first error observed;
    /// every later operation reports `Disconnected` without touching the
    /// socket again.
    fault: Option<WireError>,
}

impl PeerLink {
    /// Wraps an established, handshaken stream. Enables `TCP_NODELAY`:
    /// the runtime's protocol messages are small and latency-bound.
    pub fn new(stream: TcpStream) -> std::io::Result<Self> {
        stream.set_nodelay(true)?;
        Ok(PeerLink {
            stream,
            acc: Vec::new(),
            wbuf: Vec::new(),
            fault: None,
        })
    }

    /// The first error that broke this link, if it is broken.
    pub fn fault(&self) -> Option<&WireError> {
        self.fault.as_ref()
    }

    /// Direct access to the underlying socket, for the rendezvous steps
    /// that happen outside framing (handshake records, shutdown drains).
    pub fn stream_mut(&mut self) -> &mut TcpStream {
        &mut self.stream
    }

    fn break_link(&mut self, err: WireError) -> WireError {
        if self.fault.is_none() {
            self.fault = Some(err.clone());
        }
        err
    }

    /// Sends one complete frame, or reports why the peer can no longer
    /// receive. Short writes and `EINTR` are absorbed by `write_all`;
    /// `EPIPE`/reset break the link.
    pub fn send(&mut self, tag: Tag, payload: &Payload) -> Result<(), WireError> {
        if let Some(f) = &self.fault {
            return Err(f.clone());
        }
        self.wbuf.clear();
        wire::encode_frame(tag, payload, &mut self.wbuf);
        match self.stream.write_all(&self.wbuf) {
            Ok(()) => Ok(()),
            Err(e) => Err(self.break_link(io_to_wire(&e))),
        }
    }

    /// Parses a complete frame out of the accumulator if one is fully
    /// present. A malformed header or body breaks the link.
    fn try_extract(&mut self) -> Result<Option<TcpMsg>, WireError> {
        if self.acc.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.acc[0..4].try_into().expect("fixed slice"));
        // Validated before any reservation: an absurd prefix breaks the
        // link here, with the accumulator still tiny.
        let body_len = match wire::check_frame_len(len) {
            Ok(n) => n,
            Err(e) => return Err(self.break_link(e)),
        };
        if self.acc.len() < 4 + body_len {
            return Ok(None);
        }
        let msg = match wire::decode_frame_body(&self.acc[4..4 + body_len]) {
            Ok((tag, payload)) => TcpMsg { tag, payload },
            Err(e) => return Err(self.break_link(e)),
        };
        self.acc.drain(..4 + body_len);
        Ok(Some(msg))
    }

    /// One socket read into the accumulator. `Ok(true)` means bytes
    /// arrived; `Ok(false)` means the operation would block / timed out.
    fn fill_once(&mut self) -> Result<bool, WireError> {
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(self.break_link(WireError::Disconnected)),
                Ok(n) => {
                    self.acc.extend_from_slice(&chunk[..n]);
                    return Ok(true);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Ok(false)
                }
                Err(e) => return Err(self.break_link(io_to_wire(&e))),
            }
        }
    }

    fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<(), WireError> {
        // `set_read_timeout(Some(0))` is an invalid argument; a zero
        // remaining budget is expressed as an (arbitrary small) nonzero
        // timeout by the callers.
        self.stream
            .set_read_timeout(timeout)
            .map_err(|e| self.break_link(io_to_wire(&e)))
    }

    /// Blocking receive of the next frame. `Err(Disconnected)` once the
    /// peer is provably gone (EOF/reset/garbage) with no complete frame
    /// buffered.
    pub fn recv(&mut self) -> Result<TcpMsg, Disconnected> {
        loop {
            if self.fault.is_some() {
                return self.drain_after_fault().ok_or(Disconnected);
            }
            match self.try_extract() {
                Ok(Some(msg)) => return Ok(msg),
                Ok(None) => {}
                Err(_) => return Err(Disconnected),
            }
            if self.set_timeout(None).is_err() {
                return Err(Disconnected);
            }
            match self.fill_once() {
                Ok(_) => {}
                Err(_) => {
                    // The peer is gone — but a complete frame may already
                    // be buffered; deliver it first, exactly as a mailbox
                    // drains its queue after the sender hangs up.
                    // (`try_extract` at the top of the loop would miss it
                    // because `fault` is now set, so check here.)
                    return self.drain_after_fault().ok_or(Disconnected);
                }
            }
        }
    }

    /// After the link broke, hand out any complete frames that made it
    /// into the accumulator before the failure.
    fn drain_after_fault(&mut self) -> Option<TcpMsg> {
        if self.acc.len() < 4 {
            return None;
        }
        let len = u32::from_le_bytes(self.acc[0..4].try_into().expect("fixed slice"));
        let body_len = wire::check_frame_len(len).ok()?;
        if self.acc.len() < 4 + body_len {
            return None;
        }
        let (tag, payload) = wire::decode_frame_body(&self.acc[4..4 + body_len]).ok()?;
        self.acc.drain(..4 + body_len);
        Some(TcpMsg { tag, payload })
    }

    /// Deadline-bounded receive: the next frame if it completes before
    /// `deadline`, `TimedOut` when the clock wins (partial bytes stay
    /// buffered — nothing tears), `Disconnected` the moment the peer is
    /// provably gone.
    pub fn recv_deadline(&mut self, deadline: Instant) -> Result<TcpMsg, RecvTimeoutError> {
        loop {
            if self.fault.is_some() {
                return self
                    .drain_after_fault()
                    .ok_or(RecvTimeoutError::Disconnected);
            }
            match self.try_extract() {
                Ok(Some(msg)) => return Ok(msg),
                Ok(None) => {}
                Err(_) => return Err(RecvTimeoutError::Disconnected),
            }
            let Some(remaining) = deadline
                .checked_duration_since(Instant::now())
                .filter(|d| !d.is_zero())
            else {
                return Err(RecvTimeoutError::TimedOut);
            };
            if self.set_timeout(Some(remaining)).is_err() {
                return Err(RecvTimeoutError::Disconnected);
            }
            match self.fill_once() {
                Ok(_) => {}
                Err(_) => {
                    return self
                        .drain_after_fault()
                        .ok_or(RecvTimeoutError::Disconnected)
                }
            }
        }
    }

    /// Nonblocking probe: the next frame if its bytes are already here
    /// (or arrive during one nonblocking drain), `None` otherwise —
    /// including on a broken link with nothing complete buffered (a probe
    /// treats "gone" and "not yet" alike, exactly as the mailbox does).
    pub fn try_recv(&mut self) -> Option<TcpMsg> {
        if self.fault.is_some() {
            return self.drain_after_fault();
        }
        loop {
            match self.try_extract() {
                Ok(Some(msg)) => return Some(msg),
                Ok(None) => {}
                Err(_) => return None,
            }
            if self.stream.set_nonblocking(true).is_err() {
                return None;
            }
            let filled = self.fill_once();
            let _ = self.stream.set_nonblocking(false);
            match filled {
                Ok(true) => continue,
                Ok(false) => return None,
                Err(_) => return self.drain_after_fault(),
            }
        }
    }
}

impl MsgSource<TcpMsg> for PeerLink {
    fn recv_msg(&mut self) -> Result<TcpMsg, Disconnected> {
        self.recv()
    }

    fn recv_msg_deadline(&mut self, deadline: Instant) -> Result<TcpMsg, RecvTimeoutError> {
        self.recv_deadline(deadline)
    }

    fn try_recv_msg(&mut self) -> Option<TcpMsg> {
        self.try_recv()
    }
}

fn io_to_wire(e: &std::io::Error) -> WireError {
    match e.kind() {
        std::io::ErrorKind::ConnectionReset
        | std::io::ErrorKind::ConnectionAborted
        | std::io::ErrorKind::BrokenPipe
        | std::io::ErrorKind::UnexpectedEof => WireError::Disconnected,
        kind => WireError::Io(kind),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn frames_cross_a_real_socket() {
        let (a, b) = pair();
        let mut tx = PeerLink::new(a).unwrap();
        let mut rx = PeerLink::new(b).unwrap();
        tx.send(Tag(5), &Payload::from_u64(vec![1, 2, 3])).unwrap();
        tx.send(Tag(6), &Payload::Empty).unwrap();
        let m = rx.recv().unwrap();
        assert_eq!(m.tag, Tag(5));
        assert_eq!(m.payload.into_u64(), vec![1, 2, 3]);
        assert_eq!(rx.recv().unwrap().tag, Tag(6));
    }

    #[test]
    fn deadline_mid_frame_never_tears() {
        let (mut raw, b) = pair();
        let mut rx = PeerLink::new(b).unwrap();

        // Hand-craft a frame and send only half of it.
        let mut frame = Vec::new();
        wire::encode_frame(Tag(9), &Payload::from_u64(vec![7, 8, 9, 10]), &mut frame);
        let split = frame.len() / 2;
        raw.write_all(&frame[..split]).unwrap();

        // The deadline expires mid-frame: a clean timeout, nothing torn.
        let t0 = Instant::now();
        let deadline = t0 + Duration::from_millis(150);
        assert!(matches!(
            rx.recv_deadline(deadline),
            Err(RecvTimeoutError::TimedOut)
        ));
        assert!(rx.fault().is_none(), "a timeout is not a link fault");

        // The rest arrives: the same receive path completes the frame
        // from the buffered half.
        raw.write_all(&frame[split..]).unwrap();
        let m = rx
            .recv_deadline(Instant::now() + Duration::from_secs(20))
            .expect("second half completes the frame");
        assert_eq!(m.tag, Tag(9));
        assert_eq!(m.payload.into_u64(), vec![7, 8, 9, 10]);
    }

    #[test]
    fn peer_death_beats_deadline() {
        let (raw, b) = pair();
        let mut rx = PeerLink::new(b).unwrap();
        // Peer dies: the bounded receive must report Disconnected well
        // before the (generous) deadline — death is proof, not suspicion.
        drop(raw);
        let t0 = Instant::now();
        assert!(matches!(
            rx.recv_deadline(t0 + Duration::from_secs(30)),
            Err(RecvTimeoutError::Disconnected)
        ));
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "death detected at socket speed, not deadline speed"
        );
    }

    #[test]
    fn buffered_frames_survive_peer_death() {
        let (a, b) = pair();
        let mut tx = PeerLink::new(a).unwrap();
        let mut rx = PeerLink::new(b).unwrap();
        tx.send(Tag(3), &Payload::from_u32(vec![42])).unwrap();
        drop(tx);
        // The frame written before death still delivers — mailbox
        // semantics ("buffered messages are still delivered").
        let m = rx.recv().expect("pre-death frame delivers");
        assert_eq!(m.payload.into_u32(), vec![42]);
        assert!(rx.recv().is_err(), "then the disconnect is reported");
    }

    #[test]
    fn corrupt_length_prefix_breaks_link_without_allocation() {
        let (mut raw, b) = pair();
        let mut rx = PeerLink::new(b).unwrap();
        raw.write_all(&u32::MAX.to_le_bytes()).unwrap();
        assert!(rx.recv().is_err(), "absurd prefix is a clean disconnect");
        assert_eq!(
            rx.fault(),
            Some(&WireError::FrameTooLarge {
                len: u32::MAX,
                max: wire::MAX_FRAME
            })
        );
        // The accumulator never grew toward the announced length.
        assert!(rx.acc.capacity() < 1024 * 1024);
    }

    #[test]
    fn send_to_dead_peer_reports_broken_link() {
        let (a, b) = pair();
        let mut tx = PeerLink::new(a).unwrap();
        drop(b);
        // The first write may land in the kernel buffer before the RST
        // is processed; a short retry loop observes the break without
        // sleeping arbitrarily long.
        let t0 = Instant::now();
        let mut broke = false;
        while t0.elapsed() < Duration::from_secs(20) {
            if tx.send(Tag(1), &Payload::from_u64(vec![0; 4096])).is_err() {
                broke = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(broke, "writes to a dead peer eventually surface the break");
        assert!(tx.fault().is_some());
    }
}
