//! The parent side of a process run: spawn one worker per rank, broker
//! the rendezvous, collect per-rank outcomes — including the outcome
//! "this rank is dead", reported as data rather than as a hang.
//!
//! The coordinator is deliberately *not* a rank: it owns no slot in the
//! mesh, so a dying rank takes no coordinator state with it. Its whole
//! protocol is HELLO in (validated), WELCOME out (every rank's peer
//! port plus the scenario arguments), RESULT in (or EOF, if the rank
//! died first). Every phase is deadline-bounded, and a [`KillGuard`]
//! SIGKILLs all surviving children on every exit path — a failed test
//! never leaks worker processes.

use std::io::Read;
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use stance_sim::mailbox::RecvTimeoutError;
use stance_sim::{Payload, Tag};

use crate::codec::Wire;
use crate::link::PeerLink;
use crate::wire::{self, HANDSHAKE_LEN, KIND_HELLO};
use crate::worker::{ENV_COORD, ENV_RANK, ENV_SCENARIO, ENV_SIZE};

/// How one rank's run ended, as observed by the coordinator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RankOutcome {
    /// The scenario returned normally; these are its result bytes.
    Completed(Vec<u8>),
    /// The scenario panicked; this is the panic message.
    Panicked(String),
    /// The process died without reporting — the SIGKILL case.
    Died {
        /// The signal that terminated it (`Some(9)` for SIGKILL), if it
        /// died by signal.
        signal: Option<i32>,
        /// The exit code, if it exited instead.
        code: Option<i32>,
    },
}

/// Per-rank outcomes of one scenario run.
#[derive(Debug)]
pub struct TcpRunReport {
    outcomes: Vec<RankOutcome>,
}

impl TcpRunReport {
    /// All outcomes, indexed by rank.
    pub fn outcomes(&self) -> &[RankOutcome] {
        &self.outcomes
    }

    /// One rank's outcome.
    pub fn outcome(&self, rank: usize) -> &RankOutcome {
        &self.outcomes[rank]
    }

    /// Unwraps every rank's completed result bytes.
    ///
    /// # Panics
    /// Panics if any rank panicked or died — for runs that are supposed
    /// to succeed everywhere.
    pub fn into_results(self) -> Vec<Vec<u8>> {
        self.outcomes
            .into_iter()
            .enumerate()
            .map(|(rank, outcome)| match outcome {
                RankOutcome::Completed(bytes) => bytes,
                other => panic!("rank {rank} did not complete: {other:?}"),
            })
            .collect()
    }
}

/// Launcher for process-per-rank scenario runs.
pub struct TcpCluster {
    size: usize,
    worker: PathBuf,
    setup_timeout: Duration,
    run_timeout: Duration,
}

/// How long a freshly-accepted child gets to produce its HELLO bytes.
const HELLO_TIMEOUT: Duration = Duration::from_secs(10);
/// How long a child that closed its coordinator socket gets to finish
/// exiting before the coordinator SIGKILLs it.
const REAP_TIMEOUT: Duration = Duration::from_secs(10);

impl TcpCluster {
    /// A cluster of `size` ranks, each an OS process running `worker` —
    /// a binary whose `main` starts with
    /// [`maybe_rank_main`](crate::worker::maybe_rank_main) (tests use
    /// `env!("CARGO_BIN_EXE_...")` to locate it).
    pub fn new(size: usize, worker: impl Into<PathBuf>) -> Self {
        assert!(size > 0, "a cluster has at least one rank");
        TcpCluster {
            size,
            worker: worker.into(),
            setup_timeout: Duration::from_secs(60),
            run_timeout: Duration::from_secs(300),
        }
    }

    /// Overrides how long a scenario may run before the coordinator
    /// declares it hung and kills the cluster.
    pub fn with_run_timeout(mut self, timeout: Duration) -> Self {
        self.run_timeout = timeout;
        self
    }

    /// Spawns the cluster, runs `scenario` (a name in the worker's
    /// registry) with `args` on every rank, and reports every rank's
    /// outcome. A dead rank is an outcome, not an error; a *hung* rank
    /// is a panic, after the run timeout and a cluster-wide SIGKILL.
    pub fn run_scenario(&self, scenario: &str, args: &[u8]) -> TcpRunReport {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind coordinator listener");
        let coord_addr = listener.local_addr().expect("coordinator addr");

        let mut guard = KillGuard::default();
        for rank in 0..self.size {
            let child = Command::new(&self.worker)
                .env(ENV_RANK, rank.to_string())
                .env(ENV_SIZE, self.size.to_string())
                .env(ENV_COORD, coord_addr.to_string())
                .env(ENV_SCENARIO, scenario)
                .stdin(Stdio::null())
                .spawn()
                .unwrap_or_else(|e| panic!("spawn worker {:?}: {e}", self.worker));
            guard.children.push(Some(child));
        }

        let mut links = self.collect_hellos(&listener, &mut guard);

        // WELCOME: every rank's peer-listener port, plus the arguments.
        let ports: Vec<u16> = links.iter().map(|(_, port)| *port).collect();
        let welcome = Payload::from_bytes((ports, args.to_vec()).to_wire());
        for (rank, (link, _)) in links.iter_mut().enumerate() {
            link.send(Tag(0), &welcome)
                .unwrap_or_else(|e| panic!("rank {rank} vanished before WELCOME: {e}"));
        }

        // RESULT (or death) from every rank. Sequential reads are fine:
        // early finishers' frames wait in the kernel buffer, and the
        // deadline is shared, not per-rank-restarted.
        let deadline = Instant::now() + self.run_timeout;
        let outcomes: Vec<RankOutcome> = links
            .iter_mut()
            .enumerate()
            .map(|(rank, (link, _))| match link.recv_deadline(deadline) {
                Ok(msg) => decode_result(rank, &msg.payload.into_bytes()),
                Err(RecvTimeoutError::Disconnected) => guard.reap(rank),
                Err(RecvTimeoutError::TimedOut) => {
                    panic!(
                        "rank {rank} neither reported nor died within {:?} — cluster killed",
                        self.run_timeout
                    );
                }
            })
            .collect();

        // Collective shutdown: dropping the coordinator links is the EOF
        // every successful worker is waiting on; then reap them all.
        drop(links);
        for rank in 0..self.size {
            if guard.children[rank].is_some() {
                guard.reap(rank);
            }
        }
        TcpRunReport { outcomes }
    }

    /// Accepts one validated HELLO per rank, watching for children that
    /// die during setup. Returns the coordinator link and peer port for
    /// each rank, in rank order.
    fn collect_hellos(
        &self,
        listener: &TcpListener,
        guard: &mut KillGuard,
    ) -> Vec<(PeerLink, u16)> {
        listener
            .set_nonblocking(true)
            .expect("coordinator listener nonblocking");
        let deadline = Instant::now() + self.setup_timeout;
        let mut slots: Vec<Option<(PeerLink, u16)>> = (0..self.size).map(|_| None).collect();
        let mut present = 0usize;
        while present < self.size {
            assert!(
                Instant::now() < deadline,
                "only {present} of {} ranks said HELLO within {:?}",
                self.size,
                self.setup_timeout
            );
            let stream = match listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    // No connection waiting: a good moment to notice a
                    // child that died before ever saying HELLO.
                    for (rank, slot) in slots.iter().enumerate() {
                        if slot.is_none() {
                            if let Some(child) = guard.children[rank].as_mut() {
                                if let Ok(Some(status)) = child.try_wait() {
                                    panic!("rank {rank} exited during setup: {status}");
                                }
                            }
                        }
                    }
                    std::thread::sleep(Duration::from_millis(2));
                    continue;
                }
                Err(e) => panic!("coordinator accept: {e}"),
            };
            stream.set_nonblocking(false).expect("stream blocking");
            stream
                .set_read_timeout(Some(HELLO_TIMEOUT))
                .expect("hello timeout");
            let mut buf = [0u8; HANDSHAKE_LEN];
            if let Err(e) = (&stream).read_exact(&mut buf) {
                eprintln!("[stance-tcp coord] dropped a connection with no HELLO: {e}");
                continue;
            }
            let h = match wire::decode_handshake(&buf, self.size as u32) {
                Ok(h) if h.kind == KIND_HELLO => h,
                Ok(h) => {
                    eprintln!("[stance-tcp coord] rejected handshake kind {}", h.kind);
                    continue;
                }
                Err(e) => {
                    eprintln!("[stance-tcp coord] rejected a HELLO: {e}");
                    continue;
                }
            };
            stream.set_read_timeout(None).expect("clear hello timeout");
            let rank = h.rank as usize;
            assert!(slots[rank].is_none(), "rank {rank} said HELLO twice");
            slots[rank] = Some((
                PeerLink::new(stream).expect("wrap coordinator link"),
                h.port,
            ));
            present += 1;
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("all ranks present"))
            .collect()
    }
}

fn decode_result(rank: usize, frame: &[u8]) -> RankOutcome {
    assert!(!frame.is_empty(), "rank {rank} sent an empty result frame");
    match frame[0] {
        0 => RankOutcome::Completed(frame[1..].to_vec()),
        1 => RankOutcome::Panicked(String::from_utf8_lossy(&frame[1..]).into_owned()),
        other => panic!("rank {rank} sent result status byte {other}"),
    }
}

/// Owns the worker processes. On every exit path — including a panicking
/// coordinator — whatever is still alive is SIGKILLed and reaped.
#[derive(Default)]
struct KillGuard {
    children: Vec<Option<Child>>,
}

impl KillGuard {
    /// Collects one child's exit status, giving a child that just closed
    /// its socket a grace period to finish dying before SIGKILLing it.
    fn reap(&mut self, rank: usize) -> RankOutcome {
        let mut child = self.children[rank].take().expect("rank not yet reaped");
        let deadline = Instant::now() + REAP_TIMEOUT;
        let status = loop {
            match child.try_wait() {
                Ok(Some(status)) => break status,
                Ok(None) => {
                    if Instant::now() >= deadline {
                        let _ = child.kill();
                        break child.wait().expect("wait after kill");
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => panic!("waiting on rank {rank}: {e}"),
            }
        };
        RankOutcome::Died {
            signal: status_signal(&status),
            code: status.code(),
        }
    }
}

#[cfg(unix)]
fn status_signal(status: &std::process::ExitStatus) -> Option<i32> {
    use std::os::unix::process::ExitStatusExt;
    status.signal()
}

#[cfg(not(unix))]
fn status_signal(_status: &std::process::ExitStatus) -> Option<i32> {
    None
}

impl Drop for KillGuard {
    fn drop(&mut self) {
        for child in self.children.iter_mut().flatten() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}
