//! Byte codec for scenario arguments and rank results.
//!
//! Worker processes receive their scenario's arguments and return their
//! result as plain bytes; this module is the (internal, harness-grade)
//! encoding both sides share. It is *not* the peer-facing wire format —
//! that is [`crate::wire`], which never trusts its input. Here both ends
//! are the same build of the same workspace, so a malformed buffer is a
//! harness bug and `take` panics with a diagnostic instead of threading
//! `Result`s through every test.
//!
//! Numbers are little-endian; `f64` travels as its bit pattern, so
//! results compared bitwise by the equivalence suite survive the trip
//! exactly.

/// Types that can cross the parent↔worker boundary as bytes.
pub trait Wire: Sized {
    /// Appends this value's encoding to `out`.
    fn put(&self, out: &mut Vec<u8>);

    /// Decodes one value from the front of `input`, advancing it.
    ///
    /// # Panics
    /// Panics on malformed input — both ends are the same build, so this
    /// is a harness bug, not a peer misbehaving.
    fn take(input: &mut &[u8]) -> Self;

    /// Encodes `self` as a standalone buffer.
    fn to_wire(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.put(&mut out);
        out
    }

    /// Decodes a standalone buffer, asserting it is fully consumed.
    fn from_wire(mut input: &[u8]) -> Self {
        let v = Self::take(&mut input);
        assert!(
            input.is_empty(),
            "codec: {} trailing bytes after decode",
            input.len()
        );
        v
    }
}

fn take_bytes<'a>(input: &mut &'a [u8], n: usize) -> &'a [u8] {
    assert!(input.len() >= n, "codec: truncated input");
    let (head, tail) = input.split_at(n);
    *input = tail;
    head
}

macro_rules! int_wire {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            fn put(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn take(input: &mut &[u8]) -> Self {
                <$t>::from_le_bytes(
                    take_bytes(input, std::mem::size_of::<$t>())
                        .try_into()
                        .expect("exact slice"),
                )
            }
        }
    )*};
}

int_wire!(u8, u16, u32, u64);

impl Wire for usize {
    fn put(&self, out: &mut Vec<u8>) {
        (*self as u64).put(out);
    }
    fn take(input: &mut &[u8]) -> Self {
        usize::try_from(u64::take(input)).expect("usize fits")
    }
}

impl Wire for bool {
    fn put(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn take(input: &mut &[u8]) -> Self {
        match u8::take(input) {
            0 => false,
            1 => true,
            other => panic!("codec: bool byte {other}"),
        }
    }
}

impl Wire for f64 {
    /// Bit-pattern transport: NaNs, signed zeros and subnormals all round
    /// trip exactly, which the bitwise equivalence gates require.
    fn put(&self, out: &mut Vec<u8>) {
        self.to_bits().put(out);
    }
    fn take(input: &mut &[u8]) -> Self {
        f64::from_bits(u64::take(input))
    }
}

impl Wire for String {
    fn put(&self, out: &mut Vec<u8>) {
        self.len().put(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn take(input: &mut &[u8]) -> Self {
        let n = usize::take(input);
        String::from_utf8(take_bytes(input, n).to_vec()).expect("codec: utf8 string")
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn put(&self, out: &mut Vec<u8>) {
        self.len().put(out);
        for item in self {
            item.put(out);
        }
    }
    fn take(input: &mut &[u8]) -> Self {
        let n = usize::take(input);
        (0..n).map(|_| T::take(input)).collect()
    }
}

impl<T: Wire> Wire for Option<T> {
    fn put(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.put(out);
            }
        }
    }
    fn take(input: &mut &[u8]) -> Self {
        match u8::take(input) {
            0 => None,
            1 => Some(T::take(input)),
            other => panic!("codec: option byte {other}"),
        }
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn put(&self, out: &mut Vec<u8>) {
        self.0.put(out);
        self.1.put(out);
    }
    fn take(input: &mut &[u8]) -> Self {
        (A::take(input), B::take(input))
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn put(&self, out: &mut Vec<u8>) {
        self.0.put(out);
        self.1.put(out);
        self.2.put(out);
    }
    fn take(input: &mut &[u8]) -> Self {
        (A::take(input), B::take(input), C::take(input))
    }
}

impl Wire for () {
    fn put(&self, _out: &mut Vec<u8>) {}
    fn take(_input: &mut &[u8]) -> Self {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let v: (u64, Vec<f64>, Option<String>) =
            (7, vec![1.5, -0.0, f64::NAN], Some("hello".into()));
        let decoded = <(u64, Vec<f64>, Option<String>)>::from_wire(&v.to_wire());
        assert_eq!(decoded.0, 7);
        let bits: Vec<u64> = decoded.1.iter().map(|x| x.to_bits()).collect();
        let want: Vec<u64> = v.1.iter().map(|x| x.to_bits()).collect();
        assert_eq!(bits, want);
        assert_eq!(decoded.2.as_deref(), Some("hello"));
    }

    #[test]
    fn nested_vectors_and_tuples() {
        let v: Vec<(usize, Vec<u8>)> = vec![(1, vec![9, 8]), (2, vec![])];
        assert_eq!(Vec::<(usize, Vec<u8>)>::from_wire(&v.to_wire()), v);
    }

    #[test]
    #[should_panic(expected = "truncated")]
    fn truncation_is_loud() {
        let bytes = 12345u64.to_wire();
        let _ = u64::from_wire(&bytes[..4]);
    }
}
