//! Process-per-rank TCP backend: the [`Comm`](stance_sim::Comm) trait
//! over real sockets, built to survive real failures.
//!
//! The simulator backend models a machine; the native backend shares one
//! address space across thread-ranks. This crate is the third point on
//! that line: **every rank is an OS process**, and every `Comm`
//! primitive — send/recv, isend/irecv/wait/test, barrier, `post`,
//! `recv_deadline`, `barrier_deadline` — runs over length-prefixed
//! framed TCP with a versioned handshake. The paper's adaptive runtime
//! is precisely about surviving nonuniform, failure-prone clusters;
//! this backend is where those claims meet an actual kernel:
//!
//! * **Rendezvous** retries with capped exponential backoff
//!   ([`wire::Backoff`]) — a peer that is still being spawned is a
//!   transient, not an error.
//! * **Deadline-bounded receives** use real socket timeouts; a deadline
//!   expiring mid-frame leaves the partial bytes buffered
//!   ([`link::PeerLink`]) — nothing ever tears a frame.
//! * **Peer death** (EOF, `ECONNRESET`) surfaces as the same clean
//!   "dead" verdict the failure detector's `probe_membership` consumes
//!   on the in-process backends — never a hang, never a panic from
//!   deep inside the transport.
//! * **Garbage on the wire** (bad magic, wrong version, absurd length
//!   prefix) is a structured [`WireError`] and a clean disconnect,
//!   with the length validated *before* any allocation.
//!
//! [`TcpCluster`] spawns and supervises the rank processes;
//! [`maybe_rank_main`] turns any binary into a rank worker;
//! [`TcpComm`] is the `Comm` each rank computes against. The same
//! conformance, equivalence and fault-injection suites that gate the
//! other two backends gate this one.

#![deny(unsafe_code)] // sys.rs opts back in, alone, with a stated policy

pub mod cluster;
pub mod codec;
pub mod comm;
pub mod link;
pub mod sys;
pub mod wire;
pub mod worker;

pub use cluster::{RankOutcome, TcpCluster, TcpRunReport};
pub use comm::TcpComm;
pub use link::{PeerLink, TcpMsg};
// `PeerLink`'s receive methods speak the mailbox error vocabulary —
// re-exported so transport callers name them without a stance-sim dep.
pub use stance_sim::mailbox::{Disconnected, RecvTimeoutError};
pub use wire::{Backoff, WireError, MAX_FRAME, PROTOCOL_VERSION};
pub use worker::{maybe_rank_main, ScenarioFn, ScenarioRegistry};
