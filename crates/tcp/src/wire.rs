//! The wire format: versioned handshakes, length-prefixed data frames,
//! structured decode errors, and the capped-backoff connect helper.
//!
//! Everything a byte can do wrong is an enumerated [`WireError`], never a
//! panic: a peer sending garbage gets its link marked broken and is
//! disconnected cleanly, and an absurd length prefix is rejected *before*
//! any allocation happens ([`MAX_FRAME`]), so a malicious peer cannot ask
//! this process to reserve gigabytes.
//!
//! ## Handshake (fixed 20 bytes)
//!
//! ```text
//! [magic: u32 LE] [version: u16 LE] [kind: u8] [rank: u32 LE] [size: u32 LE] [port: u16 LE] [reserved: 3 × u8 = 0]
//! ```
//!
//! `kind` distinguishes the child→coordinator `HELLO` (where `port` is the
//! child's peer-listener port) from the rank→rank `PEER` introduction
//! (where `port` is zero). Decoding validates magic, protocol version,
//! kind, universe size and rank range — anything else is a [`WireError`]
//! and the connection is dropped.
//!
//! ## Data frames
//!
//! ```text
//! [len: u32 LE] [ptype: u8] [tag: u32 LE] [payload bytes, LE-packed]
//! ```
//!
//! `len` counts everything after itself (so `len = 5 + payload bytes`) and
//! must be in `5..=MAX_FRAME`. `ptype` selects the [`Payload`] variant;
//! numeric payloads are packed little-endian, so a round trip is bitwise
//! exact — the cross-backend equivalence tests depend on that.

use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use stance_sim::{Payload, Tag};

/// Frame and handshake magic: `"STNC"` as a little-endian `u32`.
pub const MAGIC: u32 = 0x434E_5453;

/// The protocol version this build speaks. Bumped on any incompatible
/// wire change; the handshake rejects mismatches on both sides.
pub const PROTOCOL_VERSION: u16 = 1;

/// Hard cap on a data frame's `len` field. A length prefix above this is
/// rejected before any buffer is reserved — the defense against a corrupt
/// or malicious peer driving unbounded allocation.
pub const MAX_FRAME: u32 = 64 * 1024 * 1024;

/// Bytes of frame body that precede the payload (`ptype` + `tag`), and
/// therefore the minimum legal `len`.
pub const FRAME_OVERHEAD: u32 = 5;

/// Size of the fixed handshake record.
pub const HANDSHAKE_LEN: usize = 20;

/// Handshake `kind` byte: child introducing itself to the coordinator.
pub const KIND_HELLO: u8 = 0;

/// Handshake `kind` byte: rank introducing itself to a higher rank.
pub const KIND_PEER: u8 = 1;

/// Everything that can be wrong with bytes received from a peer. One
/// structured error per failure mode — the negative wire-format tests
/// enumerate these — plus [`WireError::Disconnected`] for a peer that is
/// simply gone (EOF or a reset mid-frame).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The handshake did not start with [`MAGIC`] — not a stance peer.
    BadMagic {
        /// The four bytes received where the magic belonged.
        got: u32,
    },
    /// The peer speaks a different protocol version.
    VersionMismatch {
        /// The version the peer announced.
        got: u16,
        /// The version this build speaks ([`PROTOCOL_VERSION`]).
        expected: u16,
    },
    /// The handshake `kind` byte is not a known kind.
    BadHandshakeKind {
        /// The byte received.
        got: u8,
    },
    /// The announced rank is not in `0..size`.
    RankOutOfRange {
        /// The rank the peer announced.
        rank: u32,
        /// The universe size the receiver expects.
        size: u32,
    },
    /// The peer believes the cluster has a different number of ranks.
    UniverseMismatch {
        /// The size the peer announced.
        got: u32,
        /// The size the receiver expects.
        expected: u32,
    },
    /// A frame length prefix above [`MAX_FRAME`] — rejected before any
    /// allocation.
    FrameTooLarge {
        /// The announced length.
        len: u32,
        /// The cap ([`MAX_FRAME`]).
        max: u32,
    },
    /// A frame length prefix too small to hold even the frame header.
    FrameTooShort {
        /// The announced length.
        len: u32,
    },
    /// The frame's payload-type byte is not a known [`Payload`] variant.
    BadPayloadKind {
        /// The byte received.
        got: u8,
    },
    /// The payload's byte count is not a whole number of elements for its
    /// announced type (e.g. an `F64` payload not divisible by 8).
    TornPayload {
        /// The payload-type byte.
        kind: u8,
        /// The payload's byte count.
        bytes: u32,
    },
    /// The peer is gone: EOF, connection reset, or broken pipe.
    Disconnected,
    /// Any other I/O failure on the socket.
    Io(std::io::ErrorKind),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic { got } => {
                write!(
                    f,
                    "bad handshake magic {got:#010x} (expected {MAGIC:#010x})"
                )
            }
            WireError::VersionMismatch { got, expected } => {
                write!(f, "protocol version {got} (this build speaks {expected})")
            }
            WireError::BadHandshakeKind { got } => write!(f, "unknown handshake kind {got}"),
            WireError::RankOutOfRange { rank, size } => {
                write!(f, "announced rank {rank} out of range for {size} ranks")
            }
            WireError::UniverseMismatch { got, expected } => {
                write!(
                    f,
                    "peer believes the cluster has {got} ranks, not {expected}"
                )
            }
            WireError::FrameTooLarge { len, max } => {
                write!(f, "frame length {len} exceeds the {max}-byte cap")
            }
            WireError::FrameTooShort { len } => {
                write!(f, "frame length {len} cannot hold a frame header")
            }
            WireError::BadPayloadKind { got } => write!(f, "unknown payload kind {got}"),
            WireError::TornPayload { kind, bytes } => {
                write!(
                    f,
                    "payload kind {kind} torn: {bytes} bytes is not a whole element count"
                )
            }
            WireError::Disconnected => write!(f, "peer disconnected"),
            WireError::Io(kind) => write!(f, "socket error: {kind:?}"),
        }
    }
}

impl std::error::Error for WireError {}

/// A validated handshake record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Handshake {
    /// [`KIND_HELLO`] or [`KIND_PEER`].
    pub kind: u8,
    /// The announcing peer's rank.
    pub rank: u32,
    /// The universe size the peer believes in.
    pub size: u32,
    /// For `HELLO`: the port the child's peer listener is bound to.
    pub port: u16,
}

/// Encodes a handshake record for the wire.
pub fn encode_handshake(kind: u8, rank: u32, size: u32, port: u16) -> [u8; HANDSHAKE_LEN] {
    let mut out = [0u8; HANDSHAKE_LEN];
    out[0..4].copy_from_slice(&MAGIC.to_le_bytes());
    out[4..6].copy_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    out[6] = kind;
    out[7..11].copy_from_slice(&rank.to_le_bytes());
    out[11..15].copy_from_slice(&size.to_le_bytes());
    out[15..17].copy_from_slice(&port.to_le_bytes());
    out
}

/// Decodes and validates a handshake against the receiver's universe
/// size. Every rejection is a distinct [`WireError`]; the caller's answer
/// to any of them is a clean disconnect.
pub fn decode_handshake(
    buf: &[u8; HANDSHAKE_LEN],
    expected_size: u32,
) -> Result<Handshake, WireError> {
    let magic = u32::from_le_bytes(buf[0..4].try_into().expect("fixed slice"));
    if magic != MAGIC {
        return Err(WireError::BadMagic { got: magic });
    }
    let version = u16::from_le_bytes(buf[4..6].try_into().expect("fixed slice"));
    if version != PROTOCOL_VERSION {
        return Err(WireError::VersionMismatch {
            got: version,
            expected: PROTOCOL_VERSION,
        });
    }
    let kind = buf[6];
    if kind != KIND_HELLO && kind != KIND_PEER {
        return Err(WireError::BadHandshakeKind { got: kind });
    }
    let rank = u32::from_le_bytes(buf[7..11].try_into().expect("fixed slice"));
    let size = u32::from_le_bytes(buf[11..15].try_into().expect("fixed slice"));
    if size != expected_size {
        return Err(WireError::UniverseMismatch {
            got: size,
            expected: expected_size,
        });
    }
    if rank >= size {
        return Err(WireError::RankOutOfRange { rank, size });
    }
    let port = u16::from_le_bytes(buf[15..17].try_into().expect("fixed slice"));
    Ok(Handshake {
        kind,
        rank,
        size,
        port,
    })
}

/// Validates a frame's length prefix **before any allocation**. Returns
/// the body length (everything after the `len` word) on success.
pub fn check_frame_len(len: u32) -> Result<usize, WireError> {
    if len < FRAME_OVERHEAD {
        return Err(WireError::FrameTooShort { len });
    }
    if len > MAX_FRAME {
        return Err(WireError::FrameTooLarge {
            len,
            max: MAX_FRAME,
        });
    }
    Ok(len as usize)
}

fn payload_kind(payload: &Payload) -> u8 {
    match payload {
        Payload::Empty => 0,
        Payload::F64(_) => 1,
        Payload::U32(_) => 2,
        Payload::U64(_) => 3,
        Payload::Bytes(_) => 4,
    }
}

/// Appends one complete frame (length prefix included) to `out`. The
/// caller recycles `out` across sends, so steady-state framing allocates
/// only when a payload outgrows every previous one.
pub fn encode_frame(tag: Tag, payload: &Payload, out: &mut Vec<u8>) {
    let body_bytes = payload_size_bytes(payload);
    let len = FRAME_OVERHEAD + body_bytes as u32;
    debug_assert!(len <= MAX_FRAME, "payload exceeds MAX_FRAME");
    out.reserve(4 + len as usize);
    out.extend_from_slice(&len.to_le_bytes());
    out.push(payload_kind(payload));
    out.extend_from_slice(&tag.0.to_le_bytes());
    match payload {
        Payload::Empty => {}
        Payload::F64(v) => {
            for x in v {
                out.extend_from_slice(&x.to_le_bytes());
            }
        }
        Payload::U32(v) => {
            for x in v {
                out.extend_from_slice(&x.to_le_bytes());
            }
        }
        Payload::U64(v) => {
            for x in v {
                out.extend_from_slice(&x.to_le_bytes());
            }
        }
        Payload::Bytes(v) => out.extend_from_slice(v),
    }
}

fn payload_size_bytes(payload: &Payload) -> usize {
    match payload {
        Payload::Empty => 0,
        Payload::F64(v) => v.len() * 8,
        Payload::U32(v) => v.len() * 4,
        Payload::U64(v) => v.len() * 8,
        Payload::Bytes(v) => v.len(),
    }
}

/// Decodes a frame body (the bytes after the length prefix, already
/// validated by [`check_frame_len`]) into its tag and payload.
pub fn decode_frame_body(body: &[u8]) -> Result<(Tag, Payload), WireError> {
    debug_assert!(body.len() >= FRAME_OVERHEAD as usize);
    let kind = body[0];
    let tag = Tag(u32::from_le_bytes(
        body[1..5].try_into().expect("fixed slice"),
    ));
    let data = &body[5..];
    let torn = |k| WireError::TornPayload {
        kind: k,
        bytes: data.len() as u32,
    };
    let payload = match kind {
        0 => {
            if !data.is_empty() {
                return Err(torn(0));
            }
            Payload::Empty
        }
        1 => {
            if data.len() % 8 != 0 {
                return Err(torn(1));
            }
            Payload::from_f64(
                data.chunks_exact(8)
                    .map(|c| f64::from_le_bytes(c.try_into().expect("chunks_exact")))
                    .collect(),
            )
        }
        2 => {
            if data.len() % 4 != 0 {
                return Err(torn(2));
            }
            Payload::from_u32(
                data.chunks_exact(4)
                    .map(|c| u32::from_le_bytes(c.try_into().expect("chunks_exact")))
                    .collect(),
            )
        }
        3 => {
            if data.len() % 8 != 0 {
                return Err(torn(3));
            }
            Payload::from_u64(
                data.chunks_exact(8)
                    .map(|c| u64::from_le_bytes(c.try_into().expect("chunks_exact")))
                    .collect(),
            )
        }
        4 => Payload::from_bytes(data.to_vec()),
        other => return Err(WireError::BadPayloadKind { got: other }),
    };
    Ok((tag, payload))
}

/// Connect-phase retry policy: exponential backoff from `base` by
/// `factor`, clamped at `cap`. Every delay is at least `base` — a retry
/// loop over this policy can never busy-spin — and at most `cap`, so a
/// long rendezvous degrades to polite fixed-rate polling instead of
/// sleeping past the peer's arrival.
#[derive(Debug, Clone, Copy)]
pub struct Backoff {
    /// First retry delay.
    pub base: Duration,
    /// Multiplier applied per attempt (≥ 1).
    pub factor: f64,
    /// Upper clamp on any delay.
    pub cap: Duration,
}

impl Default for Backoff {
    /// 1 ms doubling to a 100 ms cap: loopback rendezvous resolves in a
    /// few attempts, a slow-starting peer costs ten polls a second.
    fn default() -> Self {
        Backoff {
            base: Duration::from_millis(1),
            factor: 2.0,
            cap: Duration::from_millis(100),
        }
    }
}

impl Backoff {
    /// The delay before retry number `attempt` (0-based).
    pub fn delay(&self, attempt: u32) -> Duration {
        let secs = self.base.as_secs_f64() * self.factor.powi(attempt.min(64) as i32);
        let capped = secs.min(self.cap.as_secs_f64());
        Duration::from_secs_f64(capped.max(self.base.as_secs_f64()))
    }
}

/// Dials `addr`, retrying with capped exponential backoff until
/// `total_timeout` has elapsed. This is the connect half of rendezvous:
/// the listener may simply not exist yet (its process is still being
/// spawned), so refusal is an expected transient, not an error — until
/// the deadline says otherwise.
pub fn connect_with_backoff(
    addr: SocketAddr,
    total_timeout: Duration,
    backoff: Backoff,
) -> std::io::Result<TcpStream> {
    let give_up = Instant::now() + total_timeout;
    let mut attempt = 0u32;
    loop {
        let remaining = give_up.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                format!("connect to {addr} did not succeed within {total_timeout:?}"),
            ));
        }
        match TcpStream::connect_timeout(&addr, remaining) {
            Ok(stream) => return Ok(stream),
            Err(e) => {
                let remaining = give_up.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return Err(e);
                }
                std::thread::sleep(backoff.delay(attempt).min(remaining));
                attempt += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handshake_round_trip() {
        let bytes = encode_handshake(KIND_HELLO, 3, 8, 45123);
        let h = decode_handshake(&bytes, 8).expect("valid handshake");
        assert_eq!(
            h,
            Handshake {
                kind: KIND_HELLO,
                rank: 3,
                size: 8,
                port: 45123
            }
        );
    }

    #[test]
    fn handshake_rejections_are_structured() {
        let mut bad_magic = encode_handshake(KIND_PEER, 0, 2, 0);
        bad_magic[0] ^= 0xFF;
        assert!(matches!(
            decode_handshake(&bad_magic, 2),
            Err(WireError::BadMagic { .. })
        ));

        let mut bad_version = encode_handshake(KIND_PEER, 0, 2, 0);
        bad_version[4..6].copy_from_slice(&999u16.to_le_bytes());
        assert_eq!(
            decode_handshake(&bad_version, 2),
            Err(WireError::VersionMismatch {
                got: 999,
                expected: PROTOCOL_VERSION
            })
        );

        let mut bad_kind = encode_handshake(KIND_PEER, 0, 2, 0);
        bad_kind[6] = 77;
        assert_eq!(
            decode_handshake(&bad_kind, 2),
            Err(WireError::BadHandshakeKind { got: 77 })
        );

        let wrong_universe = encode_handshake(KIND_PEER, 0, 4, 0);
        assert_eq!(
            decode_handshake(&wrong_universe, 2),
            Err(WireError::UniverseMismatch {
                got: 4,
                expected: 2
            })
        );

        let bad_rank = encode_handshake(KIND_PEER, 2, 2, 0);
        assert_eq!(
            decode_handshake(&bad_rank, 2),
            Err(WireError::RankOutOfRange { rank: 2, size: 2 })
        );
    }

    #[test]
    fn frame_round_trip_all_payload_kinds() {
        let cases = vec![
            Payload::Empty,
            Payload::from_f64(vec![1.5, -0.0, f64::NAN.abs(), 1e300]),
            Payload::from_u32(vec![0, 1, u32::MAX]),
            Payload::from_u64(vec![u64::MAX, 42]),
            Payload::from_bytes(vec![0, 255, 7]),
        ];
        for payload in cases {
            let mut buf = Vec::new();
            encode_frame(Tag(99), &payload, &mut buf);
            let len = u32::from_le_bytes(buf[0..4].try_into().unwrap());
            let body_len = check_frame_len(len).expect("legal length");
            assert_eq!(buf.len(), 4 + body_len);
            let (tag, decoded) = decode_frame_body(&buf[4..]).expect("decodes");
            assert_eq!(tag, Tag(99));
            match (&payload, &decoded) {
                // NaN != NaN under PartialEq; compare bit patterns.
                (Payload::F64(a), Payload::F64(b)) => {
                    let ab: Vec<u64> = a.iter().map(|x| x.to_bits()).collect();
                    let bb: Vec<u64> = b.iter().map(|x| x.to_bits()).collect();
                    assert_eq!(ab, bb);
                }
                _ => assert_eq!(payload, decoded),
            }
        }
    }

    #[test]
    fn absurd_length_rejected_before_allocation() {
        assert_eq!(
            check_frame_len(u32::MAX),
            Err(WireError::FrameTooLarge {
                len: u32::MAX,
                max: MAX_FRAME
            })
        );
        assert_eq!(check_frame_len(2), Err(WireError::FrameTooShort { len: 2 }));
        assert_eq!(check_frame_len(FRAME_OVERHEAD), Ok(FRAME_OVERHEAD as usize));
    }

    #[test]
    fn torn_and_unknown_payloads_rejected() {
        // F64 payload of 7 bytes: not a whole element.
        let mut body = vec![1u8];
        body.extend_from_slice(&7u32.to_le_bytes());
        body.extend_from_slice(&[0u8; 7]);
        assert_eq!(
            decode_frame_body(&body),
            Err(WireError::TornPayload { kind: 1, bytes: 7 })
        );

        let mut body = vec![9u8];
        body.extend_from_slice(&1u32.to_le_bytes());
        assert_eq!(
            decode_frame_body(&body),
            Err(WireError::BadPayloadKind { got: 9 })
        );
    }

    #[test]
    fn backoff_caps_and_never_spins() {
        let b = Backoff::default();
        let mut prev = Duration::ZERO;
        for attempt in 0..40 {
            let d = b.delay(attempt);
            assert!(d >= b.base, "delay {d:?} below base — would busy-spin");
            assert!(d <= b.cap, "delay {d:?} above cap");
            assert!(d >= prev, "backoff must be monotone non-decreasing");
            prev = d;
        }
        assert_eq!(b.delay(39), b.cap, "large attempts saturate at the cap");
    }

    #[test]
    fn connect_backoff_gives_up_cleanly() {
        // A port nobody listens on (bind-then-drop reserves a fresh one).
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let t0 = Instant::now();
        let err = connect_with_backoff(addr, Duration::from_millis(200), Backoff::default())
            .expect_err("nothing listens there");
        // Clean error after roughly the budget — not a hang, not a panic.
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "gave up in bounded time"
        );
        let _ = err;
    }
}
