//! [`TcpComm`]: the [`Comm`] trait over one framed socket per peer.
//!
//! Tag isolation is **not** reimplemented here: every peer's frames flow
//! through the same [`TagBuffer`] the simulator and the thread backend
//! use, with the [`PeerLink`] acting as the message source. The one copy
//! of the matching semantics the conformance suite pins therefore covers
//! this backend too.
//!
//! ## Ordering
//!
//! One socket per (unordered) rank pair carries everything — data,
//! heartbeats, barrier control — so per-pair FIFO order is the socket's
//! own byte order, and "a message sent before a barrier arrives before
//! traffic sent after it" holds for free.
//!
//! ## The barrier protocol
//!
//! The barrier is centralized at rank 0 and sequence-numbered on
//! [`TAG_TCP_BARRIER`]. Every rank tracks `gen`, the count of barriers
//! that have *released*; only a release advances it, so all ranks agree
//! on `gen` at every barrier call.
//!
//! * Plain barrier: non-root sends `ARRIVE(gen)` and blocks for
//!   `RELEASE(gen)`; root collects all arrivals, then releases everyone.
//! * Bounded barrier ([`Comm::barrier_deadline`]): the same, except every
//!   wait is deadline-bounded and **no rank ever decides failure
//!   unilaterally while the root might still release it**:
//!   - a non-root whose wait times out sends `WITHDRAW(gen)` and then
//!     waits (briefly) for the root's verdict — `RELEASE` (the barrier
//!     completed after all: return `true`), `WITHDRAWN` (arrival
//!     discounted: return `false`), or `ABORT` (the root gave up on this
//!     attempt: return `false`);
//!   - a root whose collection times out answers every recorded arrival
//!     with `ABORT(gen)` and discards them, so no peer is left waiting
//!     on a verdict that never comes.
//!
//!   Either way `gen` never advances except by a global release, so a
//!   failed bounded barrier composes with later barriers — the property
//!   `tests/comm_conformance.rs` exercises and the recovery path relies
//!   on. A dead root is detected as [`Disconnected`] and surfaces as
//!   `false`, never a hang.
//!
//! ## Failure surfaces
//!
//! Exactly the in-process mailbox contract: blocking `recv` from a dead
//! peer panics (a deadlocked protocol is a bug), `recv_deadline` returns
//! `None` *immediately* on proof of death (EOF/reset — not after the
//! timeout), `post` returns `false` instead of panicking, and
//! [`Comm::crash`] really kills the process (SIGKILL, no unwinding) so
//! an injected kill looks like a crashed workstation, not a tidy exit.

use std::collections::VecDeque;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use stance_sim::comm::Comm;
use stance_sim::mailbox::{RecvTimeoutError, TagBuffer, Tagged};
use stance_sim::tags::TAG_TCP_BARRIER;
use stance_sim::{Payload, RecvRequest, Tag};

use crate::link::{PeerLink, TcpMsg};
use crate::wire::WireError;

/// Barrier control-message kinds (first word of the `U64` payload; the
/// second word is the barrier generation).
const ARRIVE: u64 = 0;
const WITHDRAW: u64 = 1;
const RELEASE: u64 = 2;
const WITHDRAWN: u64 = 3;
const ABORT: u64 = 4;

/// How long the root's collection loop blocks on one missing peer before
/// re-polling the others. Bounds the latency of noticing an arrival on a
/// different socket; loopback arrivals are typically sub-millisecond.
const POLL_SLICE: Duration = Duration::from_millis(2);

/// Grace period a withdrawing rank allows the root to answer its
/// `WITHDRAW` beyond the caller's own deadline. A live root answers at
/// poll-slice speed; only a root that violates the collective-call
/// contract (never calls the barrier again, yet stays alive) can exhaust
/// this — and that is reported loudly rather than hung on.
const WITHDRAW_GRACE: Duration = Duration::from_secs(5);

/// One rank of a process cluster, speaking framed TCP to every peer.
pub struct TcpComm {
    rank: usize,
    size: usize,
    /// `links[peer]` is the socket to `peer`; `None` at `links[rank]`.
    links: Vec<Option<PeerLink>>,
    /// The shared tag-isolation layer (one copy across all backends).
    pending: TagBuffer<TcpMsg>,
    /// Self-sends: delivered without touching the wire.
    selfq: VecDeque<TcpMsg>,
    /// Wall-clock origin for [`Comm::now_secs`] (set at mesh
    /// completion, so rendezvous cost is not charged to the run).
    start: Instant,
    /// Barriers released so far (the protocol's sequence number).
    barrier_gen: u64,
    /// Root only: which peers have an un-withdrawn `ARRIVE` for the
    /// current generation. Persists across a timed-out bounded barrier
    /// only until the abort answers them.
    barrier_arrived: Vec<bool>,
}

impl TcpComm {
    /// Wraps an established, fully-handshaken mesh: `streams[peer]` is
    /// the connection to `peer` (`None` at `streams[rank]`). The caller
    /// — normally the worker rendezvous in [`crate::worker`] — has
    /// already validated every handshake.
    ///
    /// # Panics
    /// Panics if the stream table's shape does not match `rank`/`size`.
    pub fn from_streams(
        rank: usize,
        size: usize,
        streams: Vec<Option<TcpStream>>,
    ) -> std::io::Result<Self> {
        assert!(rank < size, "rank {rank} of {size}");
        assert_eq!(streams.len(), size, "one stream slot per rank");
        let mut links = Vec::with_capacity(size);
        for (peer, stream) in streams.into_iter().enumerate() {
            match stream {
                None => {
                    assert_eq!(peer, rank, "missing stream for peer {peer}");
                    links.push(None);
                }
                Some(s) => {
                    assert_ne!(peer, rank, "a rank does not dial itself");
                    links.push(Some(PeerLink::new(s)?));
                }
            }
        }
        Ok(TcpComm {
            rank,
            size,
            links,
            pending: TagBuffer::new(size),
            selfq: VecDeque::new(),
            start: Instant::now(),
            barrier_gen: 0,
            barrier_arrived: vec![false; size],
        })
    }

    /// The error that broke the link to `peer`, if it is broken — the
    /// structured verdict the negative wire tests inspect.
    pub fn link_fault(&self, peer: usize) -> Option<WireError> {
        self.links[peer].as_ref().and_then(|l| l.fault().cloned())
    }

    fn link_mut(&mut self, peer: usize) -> &mut PeerLink {
        self.links[peer]
            .as_mut()
            .expect("peer is not this rank itself")
    }

    fn take_self(&mut self, tag: Tag) -> Option<Payload> {
        let pos = self.selfq.iter().position(|m| m.tag() == tag)?;
        Some(
            self.selfq
                .remove(pos)
                .expect("position was just found")
                .payload,
        )
    }

    // ---- barrier protocol ------------------------------------------------

    fn barrier_msg(kind: u64, gen: u64) -> Payload {
        Payload::from_u64(vec![kind, gen])
    }

    fn decode_barrier(msg: TcpMsg) -> (u64, u64) {
        let words = msg.payload.into_u64();
        assert_eq!(words.len(), 2, "barrier control message shape");
        (words[0], words[1])
    }

    /// Sends one barrier control message to `peer`; `false` if the link
    /// is broken (the peer is dead — barrier logic treats that per mode).
    fn barrier_send(&mut self, peer: usize, kind: u64) -> bool {
        let gen = self.barrier_gen;
        self.link_mut(peer)
            .send(TAG_TCP_BARRIER, &Self::barrier_msg(kind, gen))
            .is_ok()
    }

    /// Consumes the next already-available barrier message from `src`,
    /// without blocking. Data frames drained along the way stay buffered
    /// for their own receives.
    fn try_take_barrier(&mut self, src: usize) -> Option<(u64, u64)> {
        let link = self.links[src].as_mut()?;
        if self.pending.poll_matching(link, src, TAG_TCP_BARRIER) {
            let msg = self
                .pending
                .recv_matching(link, self.rank, src, TAG_TCP_BARRIER);
            Some(Self::decode_barrier(msg))
        } else {
            None
        }
    }

    /// Blocks up to `deadline` for the next barrier message from `src`.
    fn recv_barrier_deadline(
        &mut self,
        src: usize,
        deadline: Instant,
    ) -> Result<(u64, u64), RecvTimeoutError> {
        let link = self.links[src].as_mut().expect("src is a peer");
        self.pending
            .recv_matching_deadline(link, src, TAG_TCP_BARRIER, deadline)
            .map(Self::decode_barrier)
    }

    fn barrier_impl(&mut self, deadline: Option<Instant>) -> bool {
        if self.size == 1 {
            self.barrier_gen += 1;
            return true;
        }
        if self.rank == 0 {
            self.barrier_root(deadline)
        } else {
            self.barrier_leaf(deadline)
        }
    }

    /// Root side: collect an un-withdrawn `ARRIVE(gen)` from every peer,
    /// then release everyone. Bounded mode aborts every recorded arrival
    /// on timeout so no peer is left awaiting a verdict.
    fn barrier_root(&mut self, deadline: Option<Instant>) -> bool {
        let gen = self.barrier_gen;
        // Peers whose links broke: they can never arrive. In plain mode
        // that is a deadlock bug and panics below; in bounded mode they
        // just make completion impossible, which the deadline converts
        // into a clean `false` (short-circuited once all missing peers
        // are dead).
        let mut dead = vec![false; self.size];
        loop {
            // Drain whatever is already here, from every peer — including
            // withdraws from peers currently marked arrived.
            for src in 1..self.size {
                while let Some((kind, g)) = self.try_take_barrier(src) {
                    self.barrier_root_handle(src, kind, g, gen);
                }
            }
            if (1..self.size).all(|s| self.barrier_arrived[s]) {
                for dst in 1..self.size {
                    // A peer that died after arriving cannot read its
                    // release; everyone alive still must advance.
                    let _ = self.barrier_send(dst, RELEASE);
                }
                for flag in &mut self.barrier_arrived {
                    *flag = false;
                }
                self.barrier_gen += 1;
                return true;
            }
            let expired = deadline.is_some_and(|d| Instant::now() >= d);
            let unreachable_barrier =
                deadline.is_some() && (1..self.size).all(|s| self.barrier_arrived[s] || dead[s]);
            if expired || unreachable_barrier {
                for src in 1..self.size {
                    if self.barrier_arrived[src] {
                        let _ = self.barrier_send(src, ABORT);
                        self.barrier_arrived[src] = false;
                    }
                }
                return false;
            }
            // Block briefly on one peer that could still arrive.
            let Some(src) = (1..self.size).find(|&s| !self.barrier_arrived[s] && !dead[s]) else {
                // Plain mode with every missing peer dead: deadlock.
                let gone = (1..self.size)
                    .find(|&s| dead[s])
                    .expect("a dead peer exists");
                panic!("rank 0 waiting at a barrier, but rank {gone} exited");
            };
            let mut slice = POLL_SLICE;
            if let Some(d) = deadline {
                slice = slice.min(d.saturating_duration_since(Instant::now()));
            }
            match self
                .recv_barrier_deadline(src, Instant::now() + slice.max(Duration::from_micros(100)))
            {
                Ok((kind, g)) => self.barrier_root_handle(src, kind, g, gen),
                Err(RecvTimeoutError::TimedOut) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    if deadline.is_none() {
                        panic!("rank 0 waiting at a barrier, but rank {src} exited");
                    }
                    dead[src] = true;
                }
            }
        }
    }

    fn barrier_root_handle(&mut self, src: usize, kind: u64, g: u64, gen: u64) {
        match kind {
            ARRIVE => {
                assert_eq!(
                    g, gen,
                    "rank {src} arrived for generation {g}, root is at {gen}"
                );
                self.barrier_arrived[src] = true;
            }
            WITHDRAW => {
                // Current-generation withdraw from a recorded arrival:
                // discount it and say so. Anything else is stale — a
                // withdraw whose attempt was already released or aborted
                // (that response answered it) — and is ignored.
                if g == gen && self.barrier_arrived[src] {
                    self.barrier_arrived[src] = false;
                    let _ = self.barrier_send(src, WITHDRAWN);
                }
            }
            other => panic!("rank {src} sent barrier control {other} to the root"),
        }
    }

    /// Non-root side: arrive, await the verdict, withdraw on timeout.
    fn barrier_leaf(&mut self, deadline: Option<Instant>) -> bool {
        let gen = self.barrier_gen;
        let bounded = deadline.is_some();
        if !self.barrier_send(0, ARRIVE) {
            if bounded {
                return false;
            }
            panic!(
                "rank {} arriving at a barrier, but rank 0 exited",
                self.rank
            );
        }
        let far = Instant::now() + Duration::from_secs(86_400);
        loop {
            match self.recv_barrier_deadline(0, deadline.unwrap_or(far)) {
                Ok((RELEASE, g)) => {
                    assert_eq!(g, gen, "released for generation {g}, expected {gen}");
                    self.barrier_gen += 1;
                    return true;
                }
                Ok((ABORT, g)) => {
                    assert_eq!(g, gen, "aborted for generation {g}, expected {gen}");
                    if bounded {
                        return false;
                    }
                    // The root's *previous* bounded attempt timed out and
                    // aborted our arrival; this blocking barrier simply
                    // re-arrives and keeps waiting.
                    if !self.barrier_send(0, ARRIVE) {
                        panic!(
                            "rank {} arriving at a barrier, but rank 0 exited",
                            self.rank
                        );
                    }
                }
                Ok((kind, g)) => {
                    panic!("unexpected barrier control {kind} (generation {g}) before withdrawing")
                }
                Err(RecvTimeoutError::TimedOut) => {
                    debug_assert!(bounded, "unbounded wait cannot time out");
                    return self.barrier_leaf_withdraw(gen);
                }
                Err(RecvTimeoutError::Disconnected) => {
                    if bounded {
                        return false;
                    }
                    panic!("rank {} waiting at a barrier, but rank 0 exited", self.rank);
                }
            }
        }
    }

    /// The caller's deadline passed: withdraw the arrival and wait for
    /// the root's verdict. No unilateral `false` — the root may already
    /// have counted us into a release that is on the wire.
    fn barrier_leaf_withdraw(&mut self, gen: u64) -> bool {
        if !self.barrier_send(0, WITHDRAW) {
            return false;
        }
        let verdict_by = Instant::now() + WITHDRAW_GRACE;
        match self.recv_barrier_deadline(0, verdict_by) {
            Ok((RELEASE, g)) => {
                // The barrier completed while the withdraw was in
                // flight: it *did* release (late), and the stale
                // withdraw is ignored by the root.
                assert_eq!(g, gen);
                self.barrier_gen += 1;
                true
            }
            Ok((WITHDRAWN, g)) | Ok((ABORT, g)) => {
                assert_eq!(g, gen);
                false
            }
            Ok((kind, g)) => {
                panic!("unexpected barrier control {kind} (generation {g}) awaiting verdict")
            }
            Err(RecvTimeoutError::Disconnected) => false,
            Err(RecvTimeoutError::TimedOut) => panic!(
                "rank {}: barrier withdrawal for generation {gen} unresolved — the root \
                 neither released, acknowledged, nor died within {WITHDRAW_GRACE:?} \
                 (barrier_deadline is collective: every rank must keep calling it)",
                self.rank
            ),
        }
    }
}

impl Comm for TcpComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn compute(&mut self, _work: f64) {
        // Wall-clock backend: real work already takes real time.
    }

    fn now_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    fn send(&mut self, dst: usize, tag: Tag, payload: Payload) {
        assert!(dst < self.size, "send to rank {dst} of {}", self.size);
        if dst == self.rank {
            self.selfq.push_back(TcpMsg { tag, payload });
            return;
        }
        if self.link_mut(dst).send(tag, &payload).is_err() {
            panic!("receiver rank terminated before message was delivered");
        }
    }

    fn recv(&mut self, src: usize, tag: Tag) -> Payload {
        assert!(src < self.size, "recv from rank {src} of {}", self.size);
        if src == self.rank {
            return self.take_self(tag).unwrap_or_else(|| {
                panic!(
                    "rank {} waiting on tag {tag:?} from itself, but no self-send is pending",
                    self.rank
                )
            });
        }
        let rank = self.rank;
        let link = self.links[src].as_mut().expect("src is a peer");
        self.pending.recv_matching(link, rank, src, tag).payload
    }

    fn barrier(&mut self) {
        let released = self.barrier_impl(None);
        debug_assert!(released, "unbounded barrier always releases");
    }

    fn test_recv(&mut self, req: &RecvRequest) -> bool {
        if req.src() == self.rank {
            return self.selfq.iter().any(|m| m.tag() == req.tag());
        }
        let link = self.links[req.src()].as_mut().expect("src is a peer");
        self.pending.poll_matching(link, req.src(), req.tag())
    }

    fn post(&mut self, dst: usize, tag: Tag, payload: Payload) -> bool {
        assert!(dst < self.size, "post to rank {dst} of {}", self.size);
        if dst == self.rank {
            self.selfq.push_back(TcpMsg { tag, payload });
            return true;
        }
        self.link_mut(dst).send(tag, &payload).is_ok()
    }

    fn recv_deadline(&mut self, src: usize, tag: Tag, timeout_secs: f64) -> Option<Payload> {
        assert!(src < self.size, "recv from rank {src} of {}", self.size);
        let timeout = Duration::from_secs_f64(timeout_secs.max(0.0));
        if src == self.rank {
            if let Some(p) = self.take_self(tag) {
                return Some(p);
            }
            // A single sequential rank cannot self-send while waiting;
            // live the timeout (wall-clock parity with the native
            // backend) and give up.
            std::thread::sleep(timeout);
            return None;
        }
        let deadline = Instant::now() + timeout;
        let link = self.links[src].as_mut().expect("src is a peer");
        self.pending
            .recv_matching_deadline(link, src, tag, deadline)
            .ok()
            .map(|m| m.payload)
    }

    fn barrier_deadline(&mut self, timeout_secs: f64) -> bool {
        let deadline = Instant::now() + Duration::from_secs_f64(timeout_secs.max(0.0));
        self.barrier_impl(Some(deadline))
    }

    fn crash(&mut self) -> bool {
        // Real death: SIGKILL to our own process. No unwinding, no drop
        // glue, no FIN beyond the kernel's cleanup — peers observe
        // exactly what a crashed workstation produces.
        crate::sys::die_hard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Wires an `n`-rank all-pairs mesh over loopback socket pairs, all
    /// inside this process — each returned comm is driven by one thread.
    fn mesh(n: usize) -> Vec<TcpComm> {
        let mut streams: Vec<Vec<Option<TcpStream>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // Each pair writes into two rows at once, so indices beat iterators.
        #[allow(clippy::needless_range_loop)]
        for lo in 0..n {
            for hi in lo + 1..n {
                let a = TcpStream::connect(addr).unwrap();
                let (b, _) = listener.accept().unwrap();
                streams[lo][hi] = Some(a);
                streams[hi][lo] = Some(b);
            }
        }
        streams
            .into_iter()
            .enumerate()
            .map(|(rank, row)| TcpComm::from_streams(rank, n, row).unwrap())
            .collect()
    }

    fn run_ranks<R: Send + 'static>(comms: Vec<TcpComm>, body: fn(&mut TcpComm) -> R) -> Vec<R> {
        let handles: Vec<_> = comms
            .into_iter()
            .map(|mut c| std::thread::spawn(move || body(&mut c)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank thread"))
            .collect()
    }

    #[test]
    fn data_and_barriers_across_three_ranks() {
        let out = run_ranks(mesh(3), |c| {
            // Ring: pass a growing vector around twice, with barriers
            // separating the laps.
            let rank = c.rank();
            let next = (rank + 1) % 3;
            let prev = (rank + 2) % 3;
            let mut acc = vec![rank as u64];
            for lap in 0..2u32 {
                c.send(next, Tag(10 + lap), Payload::from_u64(acc.clone()));
                let mut got = c.recv(prev, Tag(10 + lap)).into_u64();
                got.push(rank as u64);
                acc = got;
                c.barrier();
            }
            acc
        });
        for (rank, acc) in out.iter().enumerate() {
            assert_eq!(acc.len(), 3, "rank {rank} saw two hops plus itself");
            assert_eq!(*acc.last().unwrap(), rank as u64);
        }
    }

    #[test]
    fn self_send_and_deadline_receive() {
        let out = run_ranks(mesh(2), |c| {
            // Self-sends never touch the wire.
            c.send(c.rank(), Tag(1), Payload::from_u32(vec![7]));
            let me = c.recv(c.rank(), Tag(1)).into_u32();
            assert_eq!(me, vec![7]);

            // Bounded receive with nothing coming: clean None.
            let t0 = Instant::now();
            assert!(c.recv_deadline(1 - c.rank(), Tag(2), 0.05).is_none());
            assert!(t0.elapsed() < Duration::from_secs(10));

            // Bounded receive with data coming: delivers.
            c.send(
                1 - c.rank(),
                Tag(3),
                Payload::from_u64(vec![c.rank() as u64]),
            );
            let got = c
                .recv_deadline(1 - c.rank(), Tag(3), 20.0)
                .expect("peer sent");
            got.into_u64()
        });
        assert_eq!(out[0], vec![1]);
        assert_eq!(out[1], vec![0]);
    }

    #[test]
    fn bounded_barrier_times_out_then_recovers() {
        let out = run_ranks(mesh(2), |c| {
            let mut verdicts = Vec::new();
            if c.rank() == 1 {
                // Arrive early with a short budget: the root is asleep,
                // so this attempt fails...
                verdicts.push(c.barrier_deadline(0.05));
                std::thread::sleep(Duration::from_millis(1000));
            } else {
                std::thread::sleep(Duration::from_millis(300));
                // ...and the root's own bounded attempt finds nobody
                // (rank 1 already withdrew) and fails too...
                verdicts.push(c.barrier_deadline(0.2));
            }
            // ...but the generation stayed consistent, so a plain
            // barrier afterwards completes for everyone.
            c.barrier();
            verdicts.push(true);
            verdicts
        });
        assert_eq!(out[0], vec![false, true], "root: timed out, then recovered");
        assert_eq!(out[1], vec![false, true], "leaf: withdrew, then recovered");
    }

    #[test]
    fn bounded_barrier_succeeds_when_everyone_shows_up() {
        let out = run_ranks(mesh(3), |c| {
            let mut ok = Vec::new();
            for _ in 0..3 {
                ok.push(c.barrier_deadline(20.0));
            }
            ok
        });
        for verdicts in out {
            assert_eq!(verdicts, vec![true, true, true]);
        }
    }

    #[test]
    fn dead_root_fails_bounded_barrier_without_hanging() {
        let comms = mesh(2);
        let mut iter = comms.into_iter();
        let root = iter.next().unwrap();
        let mut leaf = iter.next().unwrap();
        // The root vanishes (sockets close, like a killed process).
        drop(root);
        let t0 = Instant::now();
        assert!(
            !leaf.barrier_deadline(30.0),
            "dead root is failure, not a hang"
        );
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "death detected at socket speed, not deadline speed"
        );
    }

    #[test]
    fn post_to_dead_peer_reports_false() {
        let comms = mesh(2);
        let mut iter = comms.into_iter();
        let mut alive = iter.next().unwrap();
        let dead = iter.next().unwrap();
        drop(dead);
        // The kernel may accept a few sends into its buffer before the
        // reset surfaces; bounded retries observe the failure.
        let t0 = Instant::now();
        let mut refused = false;
        while t0.elapsed() < Duration::from_secs(20) {
            if !alive.post(1, Tag(4), Payload::from_u64(vec![0; 2048])) {
                refused = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(refused, "post to a dead peer reports false, never panics");
        assert!(alive.link_fault(1).is_some(), "the link records why");
    }
}
