//! The child-process side of a [`crate::cluster::TcpCluster`] run.
//!
//! A worker binary is an ordinary `main` that calls [`maybe_rank_main`]
//! first thing. When the rank environment variables are absent the call
//! returns immediately and `main` proceeds as itself; when they are
//! present the process *is* a rank: it rendezvouses with the coordinator,
//! wires the peer mesh, runs the named scenario over a [`TcpComm`], ships
//! the result back, and exits without ever returning to `main`.
//!
//! ## Rendezvous
//!
//! 1. Bind a peer listener on `127.0.0.1:0` (the kernel picks the port).
//! 2. Dial the coordinator ([`ENV_COORD`]) with capped-backoff retry and
//!    send a `HELLO` handshake carrying the listener port.
//! 3. Receive the `WELCOME` frame: every rank's listener port, plus the
//!    scenario's argument bytes.
//! 4. Mesh: dial every *lower* rank (sending a `PEER` handshake), accept
//!    one connection from every *higher* rank (validating its `PEER`
//!    handshake — bad magic, wrong version, wrong universe or duplicate
//!    rank all reject the connection cleanly).
//!
//! Every wait in the sequence is bounded; a coordinator or peer that
//! never shows up produces a loud exit, not a hang, and the parent's own
//! timeouts reap whatever is left.

use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

use stance_sim::{Payload, Tag};

use crate::codec::Wire;
use crate::comm::TcpComm;
use crate::link::PeerLink;
use crate::wire::{self, Backoff, HANDSHAKE_LEN, KIND_HELLO, KIND_PEER};

/// Environment variable: this process's rank (presence makes the process
/// a worker).
pub const ENV_RANK: &str = "STANCE_TCP_RANK";
/// Environment variable: the number of ranks in the run.
pub const ENV_SIZE: &str = "STANCE_TCP_SIZE";
/// Environment variable: the coordinator's `host:port`.
pub const ENV_COORD: &str = "STANCE_TCP_COORD";
/// Environment variable: the name of the scenario to run.
pub const ENV_SCENARIO: &str = "STANCE_TCP_SCENARIO";

/// A named workload a worker can run: arguments in, result bytes out.
/// Encode both sides with [`crate::codec::Wire`].
pub type ScenarioFn = fn(&mut TcpComm, &[u8]) -> Vec<u8>;

/// The table of scenarios a worker binary knows by name.
pub type ScenarioRegistry = &'static [(&'static str, ScenarioFn)];

/// How long a worker waits for the coordinator to accept its dial.
const COORD_CONNECT_TIMEOUT: Duration = Duration::from_secs(30);
/// How long a worker waits for the `WELCOME` after its `HELLO`.
const WELCOME_TIMEOUT: Duration = Duration::from_secs(60);
/// How long the peer mesh may take to complete.
const MESH_TIMEOUT: Duration = Duration::from_secs(60);
/// How long one accepted peer gets to produce its handshake bytes.
const PEER_HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(10);
/// After reporting a successful result, how long the worker holds its
/// sockets open waiting for the coordinator's EOF (the collective
/// shutdown barrier — no rank tears down the mesh while a slower rank
/// might still be talking to it).
const SHUTDOWN_DRAIN_TIMEOUT: Duration = Duration::from_secs(60);

/// Tag carried by control frames on the coordinator link (`WELCOME`,
/// `RESULT`). The coordinator link is its own namespace — this never
/// meets application traffic.
const COORD_TAG: Tag = Tag(0);

/// Worker-process entry gate. Call this at the very top of the binary's
/// `main`: a no-op in the parent (no [`ENV_RANK`] set), and the entire
/// life of the process in a worker — it never returns there.
pub fn maybe_rank_main(registry: ScenarioRegistry) {
    if std::env::var_os(ENV_RANK).is_none() {
        return;
    }
    let code = rank_main(registry);
    std::process::exit(code);
}

fn env_parse<T: std::str::FromStr>(key: &str) -> T
where
    T::Err: std::fmt::Debug,
{
    let raw = std::env::var(key).unwrap_or_else(|_| panic!("worker env {key} missing"));
    raw.parse()
        .unwrap_or_else(|e| panic!("worker env {key}={raw} unparsable: {e:?}"))
}

fn rank_main(registry: ScenarioRegistry) -> i32 {
    let rank: usize = env_parse(ENV_RANK);
    let size: usize = env_parse(ENV_SIZE);
    let coord: SocketAddr = env_parse(ENV_COORD);
    let scenario_name = std::env::var(ENV_SCENARIO).expect("worker env scenario missing");
    assert!(rank < size, "rank {rank} of {size}");

    let scenario = registry
        .iter()
        .find(|(name, _)| *name == scenario_name)
        .unwrap_or_else(|| panic!("worker knows no scenario named {scenario_name:?}"))
        .1;

    // Peer listener first, so its port can ride the HELLO.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind peer listener");
    let peer_port = listener.local_addr().expect("listener addr").port();

    // Rendezvous with the coordinator.
    let coord_stream = wire::connect_with_backoff(coord, COORD_CONNECT_TIMEOUT, Backoff::default())
        .expect("dial coordinator");
    let mut coord_link = PeerLink::new(coord_stream).expect("wrap coordinator link");
    {
        use std::io::Write;
        let hello = wire::encode_handshake(KIND_HELLO, rank as u32, size as u32, peer_port);
        coord_link
            .stream_mut()
            .write_all(&hello)
            .expect("send HELLO");
    }
    let welcome = coord_link
        .recv_deadline(Instant::now() + WELCOME_TIMEOUT)
        .expect("receive WELCOME");
    let (ports, args) = <(Vec<u16>, Vec<u8>)>::from_wire(&welcome.payload.into_bytes());
    assert_eq!(ports.len(), size, "WELCOME carries one port per rank");

    let streams = establish_mesh(rank, size, &listener, &ports);
    drop(listener);
    let mut comm = TcpComm::from_streams(rank, size, streams).expect("wrap mesh");

    // Run the scenario; a panic is a result too (the unwind-kill and
    // protocol-violation paths of the fault suite land here).
    let outcome =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| scenario(&mut comm, &args)));

    let mut frame = Vec::new();
    match outcome {
        Ok(result) => {
            frame.push(0u8);
            frame.extend_from_slice(&result);
            if coord_link
                .send(COORD_TAG, &Payload::from_bytes(frame))
                .is_err()
            {
                // The coordinator is gone; nothing left to report to.
                return 0;
            }
            // Collective shutdown barrier: hold every socket open until
            // the coordinator (which has now heard from everyone it is
            // going to hear from) hangs up.
            let _ = coord_link
                .stream_mut()
                .set_read_timeout(Some(SHUTDOWN_DRAIN_TIMEOUT));
            let mut sink = [0u8; 64];
            while let Ok(n) = coord_link.stream_mut().read(&mut sink) {
                if n == 0 {
                    break;
                }
            }
            0
        }
        Err(payload) => {
            let msg = panic_message(payload.as_ref());
            eprintln!("[stance-tcp rank {rank}] scenario {scenario_name:?} panicked: {msg}");
            frame.push(1u8);
            frame.extend_from_slice(msg.as_bytes());
            let _ = coord_link.send(COORD_TAG, &Payload::from_bytes(frame));
            // Exit now, sockets and all: peers blocked on this rank get
            // their own clean Disconnected instead of a stuck mesh.
            101
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

/// Wires this rank's slice of the all-pairs mesh: dial every lower rank,
/// accept every higher one. Returns `streams[peer]` with `None` at the
/// rank's own slot.
fn establish_mesh(
    rank: usize,
    size: usize,
    listener: &TcpListener,
    ports: &[u16],
) -> Vec<Option<TcpStream>> {
    let mut streams: Vec<Option<TcpStream>> = (0..size).map(|_| None).collect();

    // Dial side: lower ranks' listeners all exist (their HELLOs carried
    // these ports before any WELCOME went out), so backoff here only
    // absorbs kernel-level transients such as a full accept backlog.
    for peer in 0..rank {
        use std::io::Write;
        let addr = SocketAddr::from(([127, 0, 0, 1], ports[peer]));
        let mut stream = wire::connect_with_backoff(addr, MESH_TIMEOUT, Backoff::default())
            .unwrap_or_else(|e| panic!("rank {rank} dialing rank {peer}: {e}"));
        let intro = wire::encode_handshake(KIND_PEER, rank as u32, size as u32, 0);
        stream
            .write_all(&intro)
            .unwrap_or_else(|e| panic!("rank {rank} introducing itself to rank {peer}: {e}"));
        streams[peer] = Some(stream);
    }

    // Accept side: one connection from every higher rank, identified by
    // its validated PEER handshake (arrival order is whatever it is).
    let expected = size - 1 - rank;
    let deadline = Instant::now() + MESH_TIMEOUT;
    listener
        .set_nonblocking(true)
        .expect("listener nonblocking");
    let mut accepted = 0usize;
    while accepted < expected {
        assert!(
            Instant::now() < deadline,
            "rank {rank}: only {accepted} of {expected} higher ranks connected within {MESH_TIMEOUT:?}"
        );
        let (stream, _) = match listener.accept() {
            Ok(pair) => pair,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }
            Err(e) => panic!("rank {rank} accepting a peer: {e}"),
        };
        // Reject a bad introduction and keep listening; only a valid
        // PEER handshake from a new higher rank claims a slot.
        match accept_peer(rank, size, stream) {
            Ok((peer, stream)) => {
                assert!(
                    streams[peer].is_none(),
                    "rank {peer} introduced itself twice"
                );
                streams[peer] = Some(stream);
                accepted += 1;
            }
            Err(e) => eprintln!("[stance-tcp rank {rank}] rejected a peer connection: {e}"),
        }
    }
    streams
}

/// Reads and validates one `PEER` handshake from a freshly-accepted
/// stream. On any violation the stream is dropped (a clean disconnect
/// from the peer's point of view) and the error is returned for logging.
fn accept_peer(
    rank: usize,
    size: usize,
    stream: TcpStream,
) -> Result<(usize, TcpStream), Box<dyn std::error::Error>> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(PEER_HANDSHAKE_TIMEOUT))?;
    let mut buf = [0u8; HANDSHAKE_LEN];
    (&stream).read_exact(&mut buf)?;
    let h = wire::decode_handshake(&buf, size as u32)?;
    if h.kind != KIND_PEER {
        return Err(Box::new(wire::WireError::BadHandshakeKind { got: h.kind }));
    }
    let peer = h.rank as usize;
    if peer <= rank {
        return Err(
            format!("rank {peer} dialed rank {rank}, but only higher ranks dial in").into(),
        );
    }
    stream.set_read_timeout(None)?;
    Ok((peer, stream))
}
