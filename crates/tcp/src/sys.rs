//! Abrupt self-termination, for the fault injector's "kill" semantics.
//!
//! A killed rank must vanish the way a crashed workstation does: no
//! unwinding, no destructors, no FIN handshake courtesy beyond what the
//! kernel does on process exit. `SIGKILL` is the only signal that
//! guarantees that — it cannot be caught or ignored — so the process
//! backend raises it against itself via a raw syscall (this workspace
//! deliberately carries no libc binding). On targets without the inline
//! syscall, `std::process::abort` (SIGABRT) is the closest stand-in:
//! still death-by-signal, still no unwinding.

// The one unsafe block in this crate lives here (two inline syscalls:
// getpid + kill); everything else stays checked.
#![allow(unsafe_code)]

/// Terminates the calling process with `SIGKILL`. Never returns: the
/// kernel removes the process before the syscall does.
pub fn die_hard() -> ! {
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    unsafe {
        let pid: i64;
        // getpid = 39
        core::arch::asm!(
            "syscall",
            inlateout("rax") 39i64 => pid,
            out("rcx") _, out("r11") _,
            options(nostack),
        );
        // kill = 62, SIGKILL = 9
        core::arch::asm!(
            "syscall",
            inlateout("rax") 62i64 => _,
            in("rdi") pid, in("rsi") 9i64,
            out("rcx") _, out("r11") _,
            options(nostack),
        );
    }
    #[cfg(all(target_os = "linux", target_arch = "aarch64"))]
    unsafe {
        let pid: i64;
        // getpid = 172
        core::arch::asm!(
            "svc 0",
            inlateout("x8") 172i64 => _,
            lateout("x0") pid,
            options(nostack),
        );
        // kill = 129, SIGKILL = 9
        core::arch::asm!(
            "svc 0",
            inlateout("x8") 129i64 => _,
            inlateout("x0") pid => _, in("x1") 9i64,
            options(nostack),
        );
    }
    // Unreachable on the targets above; the fallback elsewhere. SIGABRT
    // is still uncatchable-by-default death with no unwinding.
    std::process::abort()
}
