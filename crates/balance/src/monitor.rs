//! Local load monitoring.
//!
//! §5: "One metric we have used is the average computation time per data
//! item. Each processor computes this information by dividing the total time
//! spent on the computation by the number of data elements it owned. This
//! assumes that the variation in computational cost per data unit is
//! relatively small."
//!
//! The monitor keeps a sliding window of recent measurements so a transient
//! spike does not trigger a remap on its own, and exposes both the per-item
//! time (what the controller exchanges) and its reciprocal, the capability
//! estimate (items per second).

/// How the next phase's per-item time is estimated from the sample window.
///
/// The paper's implementation uses the previous phase directly; its
/// footnote 2 suggests "techniques that would predict the available
/// computational resources based on more than one previous phase" — the
/// window average and linear trend implement that suggestion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CapabilityEstimator {
    /// The most recent measurement block (the paper's §3.5 behaviour).
    LastPhase,
    /// Mean over the window: smooths transient spikes.
    #[default]
    WindowAverage,
    /// Least-squares linear extrapolation over the window: anticipates a
    /// steadily rising or falling load.
    LinearTrend,
}

/// Smoothing factor of the remap-cost EWMAs: new measurements count half,
/// history the other half — responsive to genuine cost shifts (e.g. the
/// environment got slower) without letting one outlier remap dominate.
const COST_EWMA_ALPHA: f64 = 0.5;

/// How many consecutive checks a carried estimate may answer while the
/// window stays empty ([`LoadMonitor::per_item_for_check`]). A rank whose
/// block is empty cannot observe its own speed, so its carried estimate
/// can never be refuted by measurement; without an expiry, a rank that
/// was *transiently* slow at remap time would be starved forever. After
/// the budget, the monitor reports `None` again and the controller's
/// average-capability fallback probes the silent rank with work — if it
/// is still slow the very next check measures that and moves the work
/// away again; if it recovered, the cluster gets its capacity back.
const CARRY_CHECK_BUDGET: u32 = 3;

/// Exponential forgetting factor of the movement-cost normal-equation
/// accumulators: each new redistribution observation discounts history by
/// this factor, so the fitted per-message/per-element constants track a
/// drifting network without being dominated by any one remap.
const MOVEMENT_FORGETTING: f64 = 0.7;

/// Relative determinant threshold below which the movement normal
/// equations are treated as degenerate (all observations collinear in
/// (messages, elements) space) and the fit falls back to proportionally
/// scaling the caller's prior model.
const MOVEMENT_DEGENERATE: f64 = 1e-6;

/// A bitwise snapshot of the monitor state worth carrying across a
/// checkpoint/restore: the current per-item estimate and every calibrated
/// cost statistic. The sample *window* is deliberately not included — its
/// timing composition describes the pre-checkpoint block layout, and the
/// restore may land on a different rank count entirely; the estimate is
/// reinstalled as a carry (exactly as [`LoadMonitor::rollover`] carries
/// it across a remap) with a fresh check budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonitorSnapshot {
    /// The per-item estimate at snapshot time (restored as the carry).
    pub per_item: Option<f64>,
    /// The rebuild-cost EWMA ([`LoadMonitor::rebuild_cost`]).
    pub rebuild_cost: Option<f64>,
    /// The total-remap-cost EWMA ([`LoadMonitor::remap_cost`]).
    pub remap_cost: Option<f64>,
    /// Movement-cost normal-equation accumulators, in the order
    /// `[Σm², Σm·e, Σe², Σm·s, Σe·s]` (exponentially forgotten).
    pub movement: [f64; 5],
    /// Number of movement observations folded into the accumulators.
    pub movement_obs: u32,
}

/// Sliding-window tracker of per-item computation time on one rank, plus
/// the rank's **measured remap-cost calibration** (an EWMA over observed
/// rebuild costs that can replace the controller's static
/// `rebuild_cost_hint`, and a least-squares fit of per-message /
/// per-element movement constants that can replace its static
/// `RedistCostModel`, once remaps have been observed).
#[derive(Debug, Clone)]
pub struct LoadMonitor {
    window: usize,
    samples: std::collections::VecDeque<f64>,
    estimator: CapabilityEstimator,
    /// Per-item estimate carried across a remap ([`LoadMonitor::rollover`]):
    /// used only while the window is empty, so a check that lands before
    /// any post-remap measurement is still informed.
    carry: Option<f64>,
    /// Checks the carry may still answer before it expires
    /// ([`CARRY_CHECK_BUDGET`], decremented by
    /// [`LoadMonitor::per_item_for_check`]).
    carry_checks_left: u32,
    /// EWMA of the measured schedule-rebuild share of remap cost (seconds).
    rebuild_cost_ewma: Option<f64>,
    /// EWMA of the measured total remap cost (movement + rebuild, seconds).
    remap_cost_ewma: Option<f64>,
    /// Movement-cost accumulators `[Σm², Σm·e, Σe², Σm·s, Σe·s]` over
    /// observed redistributions (m = messages, e = elements, s = seconds),
    /// exponentially forgotten ([`MOVEMENT_FORGETTING`]).
    movement: [f64; 5],
    /// Observations folded into [`LoadMonitor::movement`].
    movement_obs: u32,
}

impl LoadMonitor {
    /// Creates a monitor averaging over the last `window` samples.
    ///
    /// # Panics
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        Self::with_estimator(window, CapabilityEstimator::default())
    }

    /// Creates a monitor with an explicit estimator.
    ///
    /// # Panics
    /// Panics if `window` is zero.
    pub fn with_estimator(window: usize, estimator: CapabilityEstimator) -> Self {
        assert!(window >= 1, "window must be at least 1");
        LoadMonitor {
            window,
            samples: std::collections::VecDeque::with_capacity(window),
            estimator,
            carry: None,
            carry_checks_left: 0,
            rebuild_cost_ewma: None,
            remap_cost_ewma: None,
            movement: [0.0; 5],
            movement_obs: 0,
        }
    }

    /// Records one measurement block: `compute_seconds` spent computing
    /// over `iterations` sweeps of `owned_items` items (virtual seconds on
    /// the simulator, measured wall-clock seconds on the native backend).
    ///
    /// Blocks with no work (zero items or iterations) are ignored — an
    /// empty block tells us nothing about the machine's speed.
    pub fn record(&mut self, compute_seconds: f64, iterations: usize, owned_items: usize) {
        if iterations == 0 || owned_items == 0 {
            return;
        }
        let per_item = compute_seconds / (iterations as f64 * owned_items as f64);
        if self.samples.len() == self.window {
            self.samples.pop_front();
        }
        self.samples.push_back(per_item);
    }

    /// Whether any samples have been recorded.
    pub fn has_samples(&self) -> bool {
        !self.samples.is_empty()
    }

    /// The estimated computation time per data item for the *next* phase
    /// (seconds), per the configured [`CapabilityEstimator`], or `None`
    /// before the first sample. While the window is empty after a
    /// [`LoadMonitor::rollover`], the estimate carried across the remap is
    /// returned — the metric is *per element*, so it survives a block
    /// resize, and a check landing before any post-remap measurement (e.g.
    /// on a rank whose new block is empty) still reports real information
    /// instead of flying blind.
    pub fn per_item_time(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return self.carry;
        }
        Some(self.windowed_estimate())
    }

    /// [`LoadMonitor::per_item_time`] as consumed by a load-balance
    /// *check*: identical while the window has samples, but a carried
    /// estimate answers at most [`CARRY_CHECK_BUDGET`] consecutive
    /// checks before expiring to `None`. An empty-block rank cannot
    /// refresh its estimate by measurement, so the expiry is what lets
    /// the controller eventually probe it with work again instead of
    /// starving a once-slow machine forever.
    pub fn per_item_for_check(&mut self) -> Option<f64> {
        if !self.samples.is_empty() {
            return Some(self.windowed_estimate());
        }
        if self.carry.is_some() {
            if self.carry_checks_left == 0 {
                self.carry = None;
                return None;
            }
            self.carry_checks_left -= 1;
        }
        self.carry
    }

    /// The window estimate per the configured [`CapabilityEstimator`].
    /// Callers guarantee the window is nonempty.
    fn windowed_estimate(&self) -> f64 {
        let last = *self.samples.back().expect("nonempty");
        match self.estimator {
            CapabilityEstimator::LastPhase => last,
            CapabilityEstimator::WindowAverage => {
                self.samples.iter().sum::<f64>() / self.samples.len() as f64
            }
            CapabilityEstimator::LinearTrend => self.linear_trend_prediction(last),
        }
    }

    /// Least-squares fit `s_i = a + b·i` over the window, evaluated one step
    /// past the newest sample; clamped to stay positive (a per-item time can
    /// shrink toward zero but never cross it).
    fn linear_trend_prediction(&self, last: f64) -> f64 {
        let k = self.samples.len();
        if k < 2 {
            return last;
        }
        let kf = k as f64;
        let mean_i = (kf - 1.0) / 2.0;
        let mean_s = self.samples.iter().sum::<f64>() / kf;
        let mut num = 0.0;
        let mut den = 0.0;
        for (i, &s) in self.samples.iter().enumerate() {
            let di = i as f64 - mean_i;
            num += di * (s - mean_s);
            den += di * di;
        }
        let b = num / den;
        let a = mean_s - b * mean_i;
        let predicted = a + b * kf;
        if predicted > 0.0 {
            predicted
        } else {
            last
        }
    }

    /// The capability estimate: items per second (reciprocal of
    /// [`Self::per_item_time`]).
    pub fn capability(&self) -> Option<f64> {
        self.per_item_time().map(|t| {
            assert!(t > 0.0, "per-item time must be positive");
            1.0 / t
        })
    }

    /// Clears history (after a remap, old measurements describe the old
    /// block size and are no longer comparable). Also discards any carried
    /// estimate; the remap-cost calibration is kept (it describes the
    /// machine and pipeline, not the block). Prefer
    /// [`LoadMonitor::rollover`] across remaps — the per-item metric *is*
    /// comparable across block sizes, and dropping it blinds the first
    /// post-remap check on ranks that record nothing (e.g. an empty block).
    pub fn reset(&mut self) {
        self.samples.clear();
        self.carry = None;
    }

    /// Rolls the monitor across a remap: the window is cleared (its
    /// *timing composition* — which blocks contributed — restarts), but
    /// the current per-item estimate is carried and keeps answering
    /// [`LoadMonitor::per_item_time`] until the first post-remap sample
    /// arrives. Per-item time is per element, so the estimate survives the
    /// block resize unchanged.
    pub fn rollover(&mut self) {
        self.carry = self.per_item_time();
        self.carry_checks_left = CARRY_CHECK_BUDGET;
        self.samples.clear();
    }

    /// Records the measured cost of one remap: `rebuild_seconds` is the
    /// schedule-rebuild share (inspector + runner + value-buffer rebuild),
    /// `total_seconds` the whole remap (data movement included). Both feed
    /// EWMAs ([`COST_EWMA_ALPHA`]); the first observation seeds them
    /// directly — the caller's static hint serves as the prior *until*
    /// this first call, after which measurement replaces it.
    pub fn record_remap_cost(&mut self, rebuild_seconds: f64, total_seconds: f64) {
        let fold = |ewma: &mut Option<f64>, x: f64| {
            *ewma = Some(match *ewma {
                None => x,
                Some(e) => (1.0 - COST_EWMA_ALPHA) * e + COST_EWMA_ALPHA * x,
            });
        };
        fold(&mut self.rebuild_cost_ewma, rebuild_seconds);
        fold(&mut self.remap_cost_ewma, total_seconds);
    }

    /// The calibrated schedule-rebuild cost (seconds): an EWMA of measured
    /// rebuild shares, or `None` before the first observed remap. This is
    /// what replaces the controller's static `rebuild_cost_hint` when
    /// calibration is enabled — modelled seconds on the simulator, wall
    /// clock on the native backend, either way the cost the profitability
    /// rule should actually be charging.
    pub fn rebuild_cost(&self) -> Option<f64> {
        self.rebuild_cost_ewma
    }

    /// The calibrated total remap cost (seconds; movement + rebuild), or
    /// `None` before the first observed remap. Observability companion to
    /// [`LoadMonitor::rebuild_cost`].
    pub fn remap_cost(&self) -> Option<f64> {
        self.remap_cost_ewma
    }

    /// Records the measured cost of one redistribution's data movement:
    /// `seconds` spent moving `elements` elements in `messages` messages.
    /// Feeds the exponentially-forgotten normal-equation accumulators the
    /// calibrated [`LoadMonitor::movement_model`] is fitted from. A remap
    /// that moved nothing teaches nothing and is ignored.
    pub fn record_movement_cost(&mut self, messages: usize, elements: usize, seconds: f64) {
        if messages == 0 && elements == 0 {
            return;
        }
        let m = messages as f64;
        let e = elements as f64;
        let s = seconds.max(0.0);
        for acc in &mut self.movement {
            *acc *= MOVEMENT_FORGETTING;
        }
        self.movement[0] += m * m;
        self.movement[1] += m * e;
        self.movement[2] += e * e;
        self.movement[3] += m * s;
        self.movement[4] += e * s;
        self.movement_obs = self.movement_obs.saturating_add(1);
    }

    /// The calibrated movement-cost model: per-message and per-element
    /// constants least-squares fitted (with exponential forgetting) to
    /// the redistributions this rank has actually performed, or `None`
    /// before the first observation.
    ///
    /// When the observations are collinear in (messages, elements) space
    /// — e.g. every remap so far moved the same elements-per-message
    /// ratio, so the two constants cannot be separated — the fit degrades
    /// gracefully: `prior` is scaled by the least-squares factor that
    /// best predicts the observed costs, preserving the prior's *ratio*
    /// while correcting its *magnitude*.
    pub fn movement_model(
        &self,
        prior: stance_onedim::RedistCostModel,
    ) -> Option<stance_onedim::RedistCostModel> {
        if self.movement_obs == 0 {
            return None;
        }
        let [mm, me, ee, ms, es] = self.movement;
        let det = mm * ee - me * me;
        if det > MOVEMENT_DEGENERATE * mm * ee {
            let per_message = (ms * ee - es * me) / det;
            let per_element = (mm * es - me * ms) / det;
            // A negative constant means the observations are too noisy to
            // separate the two terms — fall through to the scaled prior
            // rather than report a nonsensical model.
            if per_message >= 0.0 && per_element >= 0.0 && per_message + per_element > 0.0 {
                return Some(stance_onedim::RedistCostModel {
                    per_message,
                    per_element,
                });
            }
        }
        // Degenerate: scale the prior. The least-squares scale over the
        // accumulators is α = Σp·s / Σp² with p the prior's prediction —
        // both sums expand exactly in terms of the stored moments.
        let pm = prior.per_message;
        let pe = prior.per_element;
        let pp = pm * pm * mm + 2.0 * pm * pe * me + pe * pe * ee;
        let ps = pm * ms + pe * es;
        if pp > 0.0 && ps > 0.0 {
            Some(stance_onedim::RedistCostModel {
                per_message: pm * (ps / pp),
                per_element: pe * (ps / pp),
            })
        } else {
            None
        }
    }

    /// A bitwise snapshot of everything worth checkpointing: the current
    /// per-item estimate plus all calibrated cost statistics. Restore
    /// with [`LoadMonitor::restore_snapshot`].
    pub fn snapshot(&self) -> MonitorSnapshot {
        MonitorSnapshot {
            per_item: self.per_item_time(),
            rebuild_cost: self.rebuild_cost_ewma,
            remap_cost: self.remap_cost_ewma,
            movement: self.movement,
            movement_obs: self.movement_obs,
        }
    }

    /// Reinstalls a [`MonitorSnapshot`]: the sample window clears, the
    /// snapshot's per-item estimate becomes the carry (with a fresh check
    /// budget, exactly as after a [`LoadMonitor::rollover`]), and the
    /// calibrated cost statistics are restored bit-for-bit.
    pub fn restore_snapshot(&mut self, snap: &MonitorSnapshot) {
        self.samples.clear();
        self.carry = snap.per_item;
        self.carry_checks_left = CARRY_CHECK_BUDGET;
        self.rebuild_cost_ewma = snap.rebuild_cost;
        self.remap_cost_ewma = snap.remap_cost;
        self.movement = snap.movement;
        self.movement_obs = snap.movement_obs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_over_window() {
        let mut m = LoadMonitor::new(2);
        assert!(!m.has_samples());
        assert_eq!(m.per_item_time(), None);
        m.record(10.0, 1, 10); // 1.0 per item
        m.record(20.0, 1, 10); // 2.0 per item
        assert_eq!(m.per_item_time(), Some(1.5));
        // Window evicts the oldest.
        m.record(30.0, 1, 10); // 3.0 per item → window = [2, 3]
        assert_eq!(m.per_item_time(), Some(2.5));
    }

    #[test]
    fn capability_is_reciprocal() {
        let mut m = LoadMonitor::new(4);
        m.record(4.0, 2, 100); // 0.02 per item
        assert!((m.capability().unwrap() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn ignores_empty_blocks() {
        let mut m = LoadMonitor::new(4);
        m.record(5.0, 0, 10);
        m.record(5.0, 10, 0);
        assert!(!m.has_samples());
    }

    #[test]
    fn reset_clears() {
        let mut m = LoadMonitor::new(4);
        m.record(1.0, 1, 1);
        m.reset();
        assert_eq!(m.per_item_time(), None);
    }

    #[test]
    fn rollover_carries_estimate_until_next_sample() {
        let mut m = LoadMonitor::new(3);
        m.record(10.0, 1, 10); // 1.0
        m.record(20.0, 1, 10); // 2.0
        assert_eq!(m.per_item_time(), Some(1.5));
        m.rollover();
        // Window is empty, but the pre-remap estimate still answers.
        assert!(!m.has_samples());
        assert_eq!(m.per_item_time(), Some(1.5));
        assert_eq!(m.capability(), Some(1.0 / 1.5));
        // The first fresh sample supersedes the carried value entirely.
        m.record(40.0, 1, 10); // 4.0
        assert_eq!(m.per_item_time(), Some(4.0));
        // A second rollover carries the *new* estimate.
        m.rollover();
        assert_eq!(m.per_item_time(), Some(4.0));
    }

    #[test]
    fn carried_estimate_expires_after_check_budget() {
        let mut m = LoadMonitor::new(3);
        m.record(10.0, 1, 10); // 1.0
        m.rollover();
        // Reads don't consume the budget; checks do.
        assert_eq!(m.per_item_time(), Some(1.0));
        assert_eq!(m.per_item_time(), Some(1.0));
        // The carry answers a bounded number of checks with an empty
        // window, then expires so the controller can probe the rank again.
        assert_eq!(m.per_item_for_check(), Some(1.0));
        assert_eq!(m.per_item_for_check(), Some(1.0));
        assert_eq!(m.per_item_for_check(), Some(1.0));
        assert_eq!(m.per_item_for_check(), None, "budget must expire");
        assert_eq!(m.per_item_time(), None, "expired carry is gone");
        // A fresh sample ends the blackout; a new rollover gets a new budget.
        m.record(20.0, 1, 10);
        assert_eq!(m.per_item_for_check(), Some(2.0));
        m.rollover();
        assert_eq!(m.per_item_for_check(), Some(2.0));
    }

    #[test]
    fn check_with_samples_does_not_consume_budget() {
        let mut m = LoadMonitor::new(3);
        m.record(10.0, 1, 10);
        m.rollover();
        m.record(30.0, 1, 10); // window nonempty again
        for _ in 0..10 {
            assert_eq!(m.per_item_for_check(), Some(3.0));
        }
    }

    #[test]
    fn reset_discards_carry() {
        let mut m = LoadMonitor::new(2);
        m.record(10.0, 1, 10);
        m.rollover();
        assert!(m.per_item_time().is_some());
        m.reset();
        assert_eq!(m.per_item_time(), None);
    }

    #[test]
    fn remap_cost_ewma_seeds_then_smooths() {
        let mut m = LoadMonitor::new(2);
        assert_eq!(m.rebuild_cost(), None);
        assert_eq!(m.remap_cost(), None);
        m.record_remap_cost(0.1, 0.4);
        // First observation seeds directly (the static hint was the prior).
        assert_eq!(m.rebuild_cost(), Some(0.1));
        assert_eq!(m.remap_cost(), Some(0.4));
        m.record_remap_cost(0.3, 0.8);
        assert!((m.rebuild_cost().unwrap() - 0.2).abs() < 1e-12);
        assert!((m.remap_cost().unwrap() - 0.6).abs() < 1e-12);
        // Calibration survives window resets and rollovers.
        m.reset();
        m.rollover();
        assert!((m.rebuild_cost().unwrap() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn movement_model_recovers_exact_constants() {
        let mut m = LoadMonitor::new(2);
        let prior = stance_onedim::RedistCostModel {
            per_message: 1.0,
            per_element: 1.0,
        };
        assert_eq!(m.movement_model(prior), None);
        // Two independent observations generated by per_message = 2e-3,
        // per_element = 1e-5: the normal equations recover them.
        m.record_movement_cost(10, 1000, 10.0 * 2e-3 + 1000.0 * 1e-5);
        m.record_movement_cost(2, 5000, 2.0 * 2e-3 + 5000.0 * 1e-5);
        let fit = m.movement_model(prior).expect("fit exists");
        assert!((fit.per_message - 2e-3).abs() < 1e-9, "{fit:?}");
        assert!((fit.per_element - 1e-5).abs() < 1e-11, "{fit:?}");
    }

    #[test]
    fn movement_model_collinear_observations_scale_the_prior() {
        let mut m = LoadMonitor::new(2);
        // Every observation has the same elements-per-message ratio, so
        // the two constants cannot be separated; costs are exactly 3x
        // what the prior predicts.
        let prior = stance_onedim::RedistCostModel {
            per_message: 1e-3,
            per_element: 1e-6,
        };
        for k in [1usize, 2, 4] {
            let msgs = 10 * k;
            let elems = 1000 * k;
            let true_cost = 3.0 * (msgs as f64 * 1e-3 + elems as f64 * 1e-6);
            m.record_movement_cost(msgs, elems, true_cost);
        }
        let fit = m.movement_model(prior).expect("fit exists");
        let ratio_msg = fit.per_message / prior.per_message;
        let ratio_elem = fit.per_element / prior.per_element;
        assert!((ratio_msg - 3.0).abs() < 1e-6, "{fit:?}");
        assert!((ratio_elem - 3.0).abs() < 1e-6, "{fit:?}");
    }

    #[test]
    fn movement_model_ignores_empty_remaps() {
        let mut m = LoadMonitor::new(2);
        m.record_movement_cost(0, 0, 1.0);
        assert_eq!(
            m.movement_model(stance_onedim::RedistCostModel::ethernet_f64()),
            None
        );
    }

    #[test]
    fn snapshot_round_trips_bitwise() {
        let mut m = LoadMonitor::new(3);
        m.record(10.0, 1, 10);
        m.record(25.0, 1, 10);
        m.record_remap_cost(0.1, 0.4);
        m.record_remap_cost(0.3, 0.9);
        m.record_movement_cost(10, 1000, 0.05);
        m.record_movement_cost(3, 4000, 0.07);
        let snap = m.snapshot();

        let mut fresh = LoadMonitor::new(3);
        fresh.restore_snapshot(&snap);
        assert_eq!(fresh.per_item_time(), m.per_item_time());
        assert_eq!(fresh.rebuild_cost(), m.rebuild_cost());
        assert_eq!(fresh.remap_cost(), m.remap_cost());
        let prior = stance_onedim::RedistCostModel::ethernet_f64();
        let (a, b) = (m.movement_model(prior), fresh.movement_model(prior));
        let (a, b) = (a.expect("fit"), b.expect("fit"));
        assert_eq!(a.per_message.to_bits(), b.per_message.to_bits());
        assert_eq!(a.per_element.to_bits(), b.per_element.to_bits());
        // The restored snapshot behaves like a rollover: estimate answers
        // a bounded number of checks until fresh samples arrive.
        assert_eq!(fresh.per_item_for_check(), m.per_item_time());
    }

    #[test]
    #[should_panic(expected = "window must be")]
    fn zero_window_rejected() {
        let _ = LoadMonitor::new(0);
    }

    #[test]
    fn last_phase_estimator_tracks_newest() {
        let mut m = LoadMonitor::with_estimator(4, CapabilityEstimator::LastPhase);
        m.record(10.0, 1, 10);
        m.record(30.0, 1, 10);
        assert_eq!(m.per_item_time(), Some(3.0));
    }

    #[test]
    fn linear_trend_extrapolates_rising_load() {
        let mut m = LoadMonitor::with_estimator(4, CapabilityEstimator::LinearTrend);
        // Per-item times 1, 2, 3: the trend predicts 4 for the next phase.
        for s in [1.0, 2.0, 3.0] {
            m.record(s * 10.0, 1, 10);
        }
        let p = m.per_item_time().unwrap();
        assert!((p - 4.0).abs() < 1e-9, "predicted {p}");
        // The average would have said 2.0; the trend anticipates the rise.
    }

    #[test]
    fn linear_trend_constant_load_is_flat() {
        let mut m = LoadMonitor::with_estimator(4, CapabilityEstimator::LinearTrend);
        for _ in 0..4 {
            m.record(20.0, 1, 10);
        }
        assert!((m.per_item_time().unwrap() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn linear_trend_clamps_to_positive() {
        let mut m = LoadMonitor::with_estimator(4, CapabilityEstimator::LinearTrend);
        // Falling so fast the extrapolation would go negative: samples are
        // per-item times 9, 5, 1 (trend predicts −3).
        for s in [9.0, 5.0, 1.0] {
            m.record(s * 10.0, 1, 10);
        }
        let p = m.per_item_time().unwrap();
        assert!(p > 0.0, "prediction must stay positive, got {p}");
        assert_eq!(p, 1.0, "falls back to the last sample");
    }

    #[test]
    fn linear_trend_single_sample_uses_last() {
        let mut m = LoadMonitor::with_estimator(4, CapabilityEstimator::LinearTrend);
        m.record(10.0, 1, 10);
        assert_eq!(m.per_item_time(), Some(1.0));
    }
}
