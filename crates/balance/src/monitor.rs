//! Local load monitoring.
//!
//! §5: "One metric we have used is the average computation time per data
//! item. Each processor computes this information by dividing the total time
//! spent on the computation by the number of data elements it owned. This
//! assumes that the variation in computational cost per data unit is
//! relatively small."
//!
//! The monitor keeps a sliding window of recent measurements so a transient
//! spike does not trigger a remap on its own, and exposes both the per-item
//! time (what the controller exchanges) and its reciprocal, the capability
//! estimate (items per second).

/// How the next phase's per-item time is estimated from the sample window.
///
/// The paper's implementation uses the previous phase directly; its
/// footnote 2 suggests "techniques that would predict the available
/// computational resources based on more than one previous phase" — the
/// window average and linear trend implement that suggestion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CapabilityEstimator {
    /// The most recent measurement block (the paper's §3.5 behaviour).
    LastPhase,
    /// Mean over the window: smooths transient spikes.
    #[default]
    WindowAverage,
    /// Least-squares linear extrapolation over the window: anticipates a
    /// steadily rising or falling load.
    LinearTrend,
}

/// Sliding-window tracker of per-item computation time on one rank.
#[derive(Debug, Clone)]
pub struct LoadMonitor {
    window: usize,
    samples: std::collections::VecDeque<f64>,
    estimator: CapabilityEstimator,
}

impl LoadMonitor {
    /// Creates a monitor averaging over the last `window` samples.
    ///
    /// # Panics
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        Self::with_estimator(window, CapabilityEstimator::default())
    }

    /// Creates a monitor with an explicit estimator.
    ///
    /// # Panics
    /// Panics if `window` is zero.
    pub fn with_estimator(window: usize, estimator: CapabilityEstimator) -> Self {
        assert!(window >= 1, "window must be at least 1");
        LoadMonitor {
            window,
            samples: std::collections::VecDeque::with_capacity(window),
            estimator,
        }
    }

    /// Records one measurement block: `compute_seconds` spent computing
    /// over `iterations` sweeps of `owned_items` items (virtual seconds on
    /// the simulator, measured wall-clock seconds on the native backend).
    ///
    /// Blocks with no work (zero items or iterations) are ignored — an
    /// empty block tells us nothing about the machine's speed.
    pub fn record(&mut self, compute_seconds: f64, iterations: usize, owned_items: usize) {
        if iterations == 0 || owned_items == 0 {
            return;
        }
        let per_item = compute_seconds / (iterations as f64 * owned_items as f64);
        if self.samples.len() == self.window {
            self.samples.pop_front();
        }
        self.samples.push_back(per_item);
    }

    /// Whether any samples have been recorded.
    pub fn has_samples(&self) -> bool {
        !self.samples.is_empty()
    }

    /// The estimated computation time per data item for the *next* phase
    /// (seconds), per the configured [`CapabilityEstimator`], or `None`
    /// before the first sample.
    pub fn per_item_time(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let last = *self.samples.back().expect("nonempty");
        let estimate = match self.estimator {
            CapabilityEstimator::LastPhase => last,
            CapabilityEstimator::WindowAverage => {
                self.samples.iter().sum::<f64>() / self.samples.len() as f64
            }
            CapabilityEstimator::LinearTrend => self.linear_trend_prediction(last),
        };
        Some(estimate)
    }

    /// Least-squares fit `s_i = a + b·i` over the window, evaluated one step
    /// past the newest sample; clamped to stay positive (a per-item time can
    /// shrink toward zero but never cross it).
    fn linear_trend_prediction(&self, last: f64) -> f64 {
        let k = self.samples.len();
        if k < 2 {
            return last;
        }
        let kf = k as f64;
        let mean_i = (kf - 1.0) / 2.0;
        let mean_s = self.samples.iter().sum::<f64>() / kf;
        let mut num = 0.0;
        let mut den = 0.0;
        for (i, &s) in self.samples.iter().enumerate() {
            let di = i as f64 - mean_i;
            num += di * (s - mean_s);
            den += di * di;
        }
        let b = num / den;
        let a = mean_s - b * mean_i;
        let predicted = a + b * kf;
        if predicted > 0.0 {
            predicted
        } else {
            last
        }
    }

    /// The capability estimate: items per second (reciprocal of
    /// [`Self::per_item_time`]).
    pub fn capability(&self) -> Option<f64> {
        self.per_item_time().map(|t| {
            assert!(t > 0.0, "per-item time must be positive");
            1.0 / t
        })
    }

    /// Clears history (after a remap, old measurements describe the old
    /// block size and are no longer comparable).
    pub fn reset(&mut self) {
        self.samples.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_over_window() {
        let mut m = LoadMonitor::new(2);
        assert!(!m.has_samples());
        assert_eq!(m.per_item_time(), None);
        m.record(10.0, 1, 10); // 1.0 per item
        m.record(20.0, 1, 10); // 2.0 per item
        assert_eq!(m.per_item_time(), Some(1.5));
        // Window evicts the oldest.
        m.record(30.0, 1, 10); // 3.0 per item → window = [2, 3]
        assert_eq!(m.per_item_time(), Some(2.5));
    }

    #[test]
    fn capability_is_reciprocal() {
        let mut m = LoadMonitor::new(4);
        m.record(4.0, 2, 100); // 0.02 per item
        assert!((m.capability().unwrap() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn ignores_empty_blocks() {
        let mut m = LoadMonitor::new(4);
        m.record(5.0, 0, 10);
        m.record(5.0, 10, 0);
        assert!(!m.has_samples());
    }

    #[test]
    fn reset_clears() {
        let mut m = LoadMonitor::new(4);
        m.record(1.0, 1, 1);
        m.reset();
        assert_eq!(m.per_item_time(), None);
    }

    #[test]
    #[should_panic(expected = "window must be")]
    fn zero_window_rejected() {
        let _ = LoadMonitor::new(0);
    }

    #[test]
    fn last_phase_estimator_tracks_newest() {
        let mut m = LoadMonitor::with_estimator(4, CapabilityEstimator::LastPhase);
        m.record(10.0, 1, 10);
        m.record(30.0, 1, 10);
        assert_eq!(m.per_item_time(), Some(3.0));
    }

    #[test]
    fn linear_trend_extrapolates_rising_load() {
        let mut m = LoadMonitor::with_estimator(4, CapabilityEstimator::LinearTrend);
        // Per-item times 1, 2, 3: the trend predicts 4 for the next phase.
        for s in [1.0, 2.0, 3.0] {
            m.record(s * 10.0, 1, 10);
        }
        let p = m.per_item_time().unwrap();
        assert!((p - 4.0).abs() < 1e-9, "predicted {p}");
        // The average would have said 2.0; the trend anticipates the rise.
    }

    #[test]
    fn linear_trend_constant_load_is_flat() {
        let mut m = LoadMonitor::with_estimator(4, CapabilityEstimator::LinearTrend);
        for _ in 0..4 {
            m.record(20.0, 1, 10);
        }
        assert!((m.per_item_time().unwrap() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn linear_trend_clamps_to_positive() {
        let mut m = LoadMonitor::with_estimator(4, CapabilityEstimator::LinearTrend);
        // Falling so fast the extrapolation would go negative: samples are
        // per-item times 9, 5, 1 (trend predicts −3).
        for s in [9.0, 5.0, 1.0] {
            m.record(s * 10.0, 1, 10);
        }
        let p = m.per_item_time().unwrap();
        assert!(p > 0.0, "prediction must stay positive, got {p}");
        assert_eq!(p, 1.0, "falls back to the last sample");
    }

    #[test]
    fn linear_trend_single_sample_uses_last() {
        let mut m = LoadMonitor::with_estimator(4, CapabilityEstimator::LinearTrend);
        m.record(10.0, 1, 10);
        assert_eq!(m.per_item_time(), Some(1.0));
    }
}
