//! # stance-balance — Phase D: adaptive load balancing
//!
//! §3.5 of the paper divides remapping into four steps:
//!
//! 1. **Monitoring** local load on each processor — implemented by
//!    [`LoadMonitor`], which tracks the paper's metric: "the average
//!    computation time per data item";
//! 2. **Exchanging** load information — each processor sends its estimate to
//!    a *controller* processor (centralized, "suitable for an environment
//!    with a small number of processors");
//! 3. **Deciding** whether to remap — remapping is profitable "if its cost
//!    is offset by an improvement in time for the next phase"; if so the
//!    controller picks new intervals (optionally arranged by
//!    `MinimizeCostRedistribution`) and broadcasts them;
//! 4. **Moving** the data — [`redistribute_values`] and
//!    [`redistribute_adjacency`] ship the array blocks and the mesh rows to
//!    their new owners following the redistribution plan.
//!
//! The decision protocol ([`load_balance_step`]) is a collective: all ranks
//! must call it together. Its message cost (a gather of one f64 per rank and
//! a broadcast of the decision) is exactly the "load balance check" column
//! of the paper's Table 5.

#![forbid(unsafe_code)]

pub mod controller;
pub mod monitor;
pub mod redistribute;

pub use controller::{
    load_balance_step, load_balance_step_calibrated, load_balance_step_measured, BalancerConfig,
    ControllerMode, Decision, MeasuredCosts,
};
pub use monitor::{CapabilityEstimator, LoadMonitor, MonitorSnapshot};
pub use redistribute::{
    redistribute_adjacency, redistribute_values, redistribute_values_coalesced, RemapScratch,
};
