//! The centralized remap controller.
//!
//! §3.5: "each processor monitors its own load and sends it to a controller
//! processor, which makes the decision about repartitioning the data …
//! Remapping is considered profitable if its cost is offset by an
//! improvement in time for the next phase. If it is not profitable, the
//! controller broadcasts an appropriate message to all the processors, and
//! computations are resumed for the next phase. Otherwise, the controller
//! computes new data intervals for each processor based on its estimated
//! computational capability in the previous phase. The new intervals are
//! broadcast to all the processors."

use stance_onedim::{
    mcr::{keep_arrangement, minimize_cost_redistribution},
    Arrangement, BlockPartition, RedistCostModel, RedistributionPlan,
};
use stance_sim::{Comm, Payload, Tag};

/// Tag for the load gather (workers → controller).
const TAG_LOAD: Tag = stance_sim::tags::TAG_LOAD;
/// Tag for the decision broadcast (controller → workers).
const TAG_DECISION: Tag = stance_sim::tags::TAG_DECISION;
/// Tag for the distributed-mode load allgather.
const TAG_LOAD_ALLGATHER: Tag = stance_sim::tags::TAG_LOAD_ALLGATHER;

/// The controller rank (the paper uses a fixed controller processor).
pub const CONTROLLER: usize = 0;

/// How the remap decision is coordinated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ControllerMode {
    /// The paper's implementation: loads gathered at a controller rank,
    /// which decides and broadcasts. "Centralized load-balancing algorithms
    /// are suitable for an environment with a small number of processors"
    /// (§3.5).
    #[default]
    Centralized,
    /// The strategy the paper leaves as future work ("we hope to have
    /// distributed strategies"): loads are all-gathered and every rank runs
    /// the (deterministic) decision logic locally. One communication round,
    /// no controller bottleneck, more total messages.
    Distributed,
}

/// Remap policy parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct BalancerConfig {
    /// Cost model for the data movement a remap would trigger.
    pub redist_model: RedistCostModel,
    /// Estimated cost (seconds) of rebuilding the communication schedule
    /// after a remap — part of what the expected saving must offset.
    pub rebuild_cost_hint: f64,
    /// Remap only if `saving > margin × (movement + rebuild)`. 1.0 is the
    /// paper's break-even rule; > 1 adds hysteresis.
    pub profitability_margin: f64,
    /// Use `MinimizeCostRedistribution` to pick the arrangement (§3.4);
    /// otherwise the old arrangement is kept and only block sizes change.
    pub use_mcr: bool,
    /// Centralized (the paper) or distributed (its future work) decision.
    pub mode: ControllerMode,
}

impl Default for BalancerConfig {
    fn default() -> Self {
        BalancerConfig {
            redist_model: RedistCostModel::ethernet_f64(),
            rebuild_cost_hint: 0.1,
            profitability_margin: 1.0,
            use_mcr: true,
            mode: ControllerMode::Centralized,
        }
    }
}

/// The controller's verdict, known to all ranks after the collective.
#[derive(Debug, Clone, PartialEq)]
pub enum Decision {
    /// Keep the current partition.
    Keep,
    /// Move to this partition (same list, new intervals).
    Remap(BlockPartition),
}

/// Measured remap costs that replace the static hints in the
/// profitability rule — the full calibration feedback loop: `rebuild`
/// supersedes `rebuild_cost_hint`, `movement` supersedes `redist_model`.
/// `None` components leave the corresponding static value in force.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MeasuredCosts {
    /// Measured schedule-rebuild cost (seconds), e.g.
    /// `LoadMonitor::rebuild_cost`.
    pub rebuild: Option<f64>,
    /// Fitted data-movement model, e.g. `LoadMonitor::movement_model`.
    pub movement: Option<RedistCostModel>,
}

impl MeasuredCosts {
    /// No measurements: the static config hints decide alone.
    pub fn none() -> Self {
        MeasuredCosts::default()
    }

    /// Whether neither component carries a measurement.
    pub fn is_none(&self) -> bool {
        self.rebuild.is_none() && self.movement.is_none()
    }
}

/// One load-balancing check (a collective — all ranks must call it).
///
/// Every rank contributes its measured per-item computation time;
/// the controller estimates the next phase under the current and the
/// rebalanced partitions, applies the profitability rule, and broadcasts
/// the decision. Message and compute costs land on the ranks' virtual
/// clocks, which is exactly the "Load Balance Check" column of Table 5.
///
/// `remaining_iters` is the number of iterations the new partition would
/// serve ("using information from the current phase, the data should be
/// redistributed such that the idle time for the next phase is minimized").
pub fn load_balance_step<C: Comm>(
    env: &mut C,
    partition: &BlockPartition,
    per_item_time: f64,
    remaining_iters: usize,
    config: &BalancerConfig,
) -> Decision {
    load_balance_step_calibrated(env, partition, per_item_time, remaining_iters, config, None)
}

/// [`load_balance_step`] with an optional **measured** rebuild cost
/// (seconds) replacing the static `rebuild_cost_hint` in the
/// profitability rule — the controller's calibration feedback loop.
///
/// In centralized mode only the deciding rank's measurement matters (the
/// decision is broadcast), so no extra communication is spent. In
/// distributed mode the measurement **piggybacks on the existing load
/// allgather** (the payload grows from one `f64` to two — still a single
/// round) and every rank decides with the max over ranks: remaps are
/// collective, so the slowest rank's rebuild is the cost the cluster
/// actually pays. Collective-consistency requirement: every rank must
/// pass `Some`/`None` uniformly (remaps are collective, so measured
/// costs appear on all ranks together).
pub fn load_balance_step_calibrated<C: Comm>(
    env: &mut C,
    partition: &BlockPartition,
    per_item_time: f64,
    remaining_iters: usize,
    config: &BalancerConfig,
    measured_rebuild_cost: Option<f64>,
) -> Decision {
    load_balance_step_measured(
        env,
        partition,
        per_item_time,
        remaining_iters,
        config,
        MeasuredCosts {
            rebuild: measured_rebuild_cost,
            movement: None,
        },
    )
}

/// [`load_balance_step_calibrated`] widened to the full set of measured
/// costs: the rebuild share *and* the fitted per-message/per-element
/// movement model both replace their static hints in the profitability
/// rule. Same collective-consistency requirement: remaps are collective,
/// so every rank passes measurements (or their absence) uniformly.
pub fn load_balance_step_measured<C: Comm>(
    env: &mut C,
    partition: &BlockPartition,
    per_item_time: f64,
    remaining_iters: usize,
    config: &BalancerConfig,
    measured: MeasuredCosts,
) -> Decision {
    assert!(
        per_item_time.is_finite() && per_item_time >= 0.0,
        "per-item time must be finite and non-negative, got {per_item_time}"
    );
    match config.mode {
        ControllerMode::Centralized => {
            // Only the controller's `decide` runs; overriding the hints
            // locally is enough (workers' configs never enter a decision).
            let storage;
            let config = if measured.is_none() {
                config
            } else {
                storage = with_measured(config, measured);
                &storage
            };
            centralized_step(env, partition, per_item_time, remaining_iters, config)
        }
        ControllerMode::Distributed => distributed_step(
            env,
            partition,
            per_item_time,
            remaining_iters,
            config,
            measured,
        ),
    }
}

/// `config` with measured costs substituted for their static hints.
fn with_measured(config: &BalancerConfig, measured: MeasuredCosts) -> BalancerConfig {
    BalancerConfig {
        rebuild_cost_hint: measured.rebuild.unwrap_or(config.rebuild_cost_hint),
        redist_model: measured.movement.unwrap_or(config.redist_model),
        ..config.clone()
    }
}

fn centralized_step<C: Comm>(
    env: &mut C,
    partition: &BlockPartition,
    per_item_time: f64,
    remaining_iters: usize,
    config: &BalancerConfig,
) -> Decision {
    let gathered = env.gather_to(CONTROLLER, TAG_LOAD, Payload::from_f64(vec![per_item_time]));

    let decision_payload = if env.rank() == CONTROLLER {
        let times: Vec<f64> = gathered
            .expect("controller receives the gather")
            .into_iter()
            .map(|p| p.into_f64()[0])
            .collect();
        let decision = decide(partition, &times, remaining_iters, config);
        // A little controller compute: O(p³) for MCR is priced inside
        // `decide`'s caller via message costs; the arithmetic itself is
        // negligible at these scales but charged for honesty.
        env.compute(1.0e-5 * times.len() as f64);
        let payload = encode_decision(&decision);
        env.bcast_from(CONTROLLER, TAG_DECISION, payload)
    } else {
        env.bcast_from(CONTROLLER, TAG_DECISION, Payload::Empty)
    };

    decode_decision(&decision_payload, partition.n())
}

/// The distributed variant: one all-gather round, then every rank runs the
/// deterministic decision function on identical inputs — no controller, no
/// second round, and the decision is provably identical everywhere.
///
/// Measured costs piggyback on the same round. The wire format is
/// `[per_item]` (nothing measured), `[per_item, rebuild]` (the original
/// rebuild-only calibration), or `[per_item, rebuild, per_message,
/// per_element]` with `-1` standing for an absent component. Every rank
/// folds the per-component **max** over ranks (remaps are collective, so
/// the slowest rank's costs are what the cluster actually pays), and the
/// folded values override the static hints identically everywhere — so
/// the decision stays identical everywhere.
fn distributed_step<C: Comm>(
    env: &mut C,
    partition: &BlockPartition,
    per_item_time: f64,
    remaining_iters: usize,
    config: &BalancerConfig,
    measured: MeasuredCosts,
) -> Decision {
    const ABSENT: f64 = -1.0;
    let payload = if measured.is_none() {
        vec![per_item_time]
    } else {
        vec![
            per_item_time,
            measured.rebuild.unwrap_or(ABSENT),
            measured.movement.map_or(ABSENT, |m| m.per_message),
            measured.movement.map_or(ABSENT, |m| m.per_element),
        ]
    };
    let parts = env.allgather(TAG_LOAD_ALLGATHER, Payload::from_f64(payload));
    let mut times = Vec::with_capacity(parts.len());
    let mut max_rebuild: Option<f64> = None;
    let mut max_per_message: Option<f64> = None;
    let mut max_per_element: Option<f64> = None;
    let fold = |slot: &mut Option<f64>, v: Option<&f64>| {
        if let Some(&c) = v.filter(|&&c| c >= 0.0) {
            *slot = Some(slot.unwrap_or(0.0).max(c));
        }
    };
    for p in parts {
        let v = p.into_f64();
        times.push(v[0]);
        fold(&mut max_rebuild, v.get(1));
        fold(&mut max_per_message, v.get(2));
        fold(&mut max_per_element, v.get(3));
    }
    env.compute(1.0e-5 * times.len() as f64);
    let folded = MeasuredCosts {
        rebuild: max_rebuild,
        movement: match (max_per_message, max_per_element) {
            (Some(per_message), Some(per_element)) => Some(RedistCostModel {
                per_message,
                per_element,
            }),
            _ => None,
        },
    };
    let storage;
    let config = if folded.is_none() {
        config
    } else {
        storage = with_measured(config, folded);
        &storage
    };
    decide(partition, &times, remaining_iters, config)
}

/// The controller's pure decision logic (exposed for unit tests).
pub fn decide(
    partition: &BlockPartition,
    per_item_times: &[f64],
    remaining_iters: usize,
    config: &BalancerConfig,
) -> Decision {
    let p = partition.num_procs();
    assert_eq!(per_item_times.len(), p, "one load sample per rank");
    if remaining_iters == 0 {
        return Decision::Keep;
    }

    // Phase-time estimate under the current partition: the slowest rank.
    let sizes = partition.sizes();
    let t_current = phase_time(&sizes, per_item_times);

    // Capabilities ∝ 1 / per-item time. A rank that reported no data (zero
    // time) gets the mean capability — we know nothing about it.
    let caps = capabilities(per_item_times);

    // Candidate partition with new weights.
    let candidate = if config.use_mcr {
        minimize_cost_redistribution(partition, &caps, &config.redist_model).partition
    } else {
        keep_arrangement(partition, &caps)
    };
    let t_candidate = phase_time(&candidate.sizes(), per_item_times);

    let saving = (t_current - t_candidate) * remaining_iters as f64;
    let movement = config
        .redist_model
        .cost(&RedistributionPlan::between(partition, &candidate));
    let cost = movement + config.rebuild_cost_hint;
    if saving > cost * config.profitability_margin {
        Decision::Remap(candidate)
    } else {
        Decision::Keep
    }
}

/// Max over ranks of `block size × per-item time`.
fn phase_time(sizes: &[usize], per_item_times: &[f64]) -> f64 {
    sizes
        .iter()
        .zip(per_item_times)
        .map(|(&s, &t)| s as f64 * t)
        .fold(0.0, f64::max)
}

/// Normalized capabilities from per-item times.
fn capabilities(per_item_times: &[f64]) -> Vec<f64> {
    let known: Vec<f64> = per_item_times
        .iter()
        .filter(|&&t| t > 0.0)
        .map(|&t| 1.0 / t)
        .collect();
    let fallback = if known.is_empty() {
        1.0
    } else {
        known.iter().sum::<f64>() / known.len() as f64
    };
    per_item_times
        .iter()
        .map(|&t| if t > 0.0 { 1.0 / t } else { fallback })
        .collect()
}

/// Wire encoding of a decision: `\[0\]` = keep; `[1, p, sizes in block order…,
/// arrangement…]` = remap.
fn encode_decision(decision: &Decision) -> Payload {
    match decision {
        Decision::Keep => Payload::from_u64(vec![0]),
        Decision::Remap(part) => {
            let p = part.num_procs() as u64;
            let mut words = Vec::with_capacity(2 + 2 * part.num_procs());
            words.push(1);
            words.push(p);
            words.extend(part.block_sizes().iter().map(|&s| s as u64));
            words.extend(part.arrangement().as_slice().iter().map(|&q| q as u64));
            Payload::from_u64(words)
        }
    }
}

/// Decodes [`encode_decision`]'s wire format.
fn decode_decision(payload: &Payload, expected_n: usize) -> Decision {
    let words = match payload {
        Payload::U64(w) => w,
        other => panic!("decision payload must be U64, got {other:?}"),
    };
    match words.first() {
        Some(0) => Decision::Keep,
        Some(1) => {
            let p = words[1] as usize;
            let sizes: Vec<usize> = words[2..2 + p].iter().map(|&w| w as usize).collect();
            let order: Vec<usize> = words[2 + p..2 + 2 * p]
                .iter()
                .map(|&w| w as usize)
                .collect();
            let part = BlockPartition::from_sizes_with_arrangement(&sizes, Arrangement::new(order));
            assert_eq!(part.n(), expected_n, "decoded partition has wrong length");
            Decision::Remap(part)
        }
        _ => panic!("malformed decision payload"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stance_sim::{Cluster, ClusterSpec, NetworkSpec};

    fn config_free_movement() -> BalancerConfig {
        BalancerConfig {
            redist_model: RedistCostModel {
                per_message: 0.0,
                per_element: 0.0,
            },
            rebuild_cost_hint: 0.0,
            profitability_margin: 1.0,
            use_mcr: true,
            mode: ControllerMode::Centralized,
        }
    }

    #[test]
    fn balanced_load_keeps() {
        let part = BlockPartition::uniform(100, 4);
        let d = decide(&part, &[1e-3; 4], 100, &config_free_movement());
        assert_eq!(d, Decision::Keep);
    }

    #[test]
    fn skewed_load_remaps() {
        let part = BlockPartition::uniform(100, 2);
        // Rank 0 three times slower.
        let d = decide(&part, &[3e-3, 1e-3], 100, &config_free_movement());
        match d {
            Decision::Remap(new) => {
                let sizes = new.sizes();
                // Capabilities 1/3 : 1 → sizes 25 : 75.
                assert_eq!(sizes, vec![25, 75]);
            }
            Decision::Keep => panic!("expected a remap"),
        }
    }

    #[test]
    fn zero_remaining_iters_keeps() {
        let part = BlockPartition::uniform(100, 2);
        let d = decide(&part, &[3e-3, 1e-3], 0, &config_free_movement());
        assert_eq!(d, Decision::Keep);
    }

    #[test]
    fn expensive_remap_not_profitable() {
        let part = BlockPartition::uniform(100, 2);
        let config = BalancerConfig {
            redist_model: RedistCostModel {
                per_message: 1000.0,
                per_element: 1000.0,
            },
            rebuild_cost_hint: 0.0,
            profitability_margin: 1.0,
            use_mcr: true,
            mode: ControllerMode::Centralized,
        };
        // Saving per phase is ~milliseconds; cost is enormous.
        let d = decide(&part, &[3e-3, 1e-3], 10, &config);
        assert_eq!(d, Decision::Keep);
    }

    #[test]
    fn margin_adds_hysteresis() {
        let part = BlockPartition::uniform(100, 2);
        let mut config = config_free_movement();
        config.rebuild_cost_hint = 0.1;
        // Mild imbalance: saving per iteration = (52·1.05e-3 − 50·1.05e-3)…
        // With 3 iterations remaining the saving is small.
        let d_low = decide(&part, &[1.10e-3, 1.0e-3], 3, &config);
        assert_eq!(d_low, Decision::Keep);
        // Plenty of iterations: profitable.
        let d_high = decide(&part, &[1.10e-3, 1.0e-3], 100_000, &config);
        assert!(matches!(d_high, Decision::Remap(_)));
    }

    #[test]
    fn zero_time_rank_gets_mean_capability() {
        let part = BlockPartition::from_sizes(&[100, 0]);
        // Rank 1 owned nothing, so reported 0. It should still get work.
        let d = decide(&part, &[1e-3, 0.0], 1000, &config_free_movement());
        match d {
            Decision::Remap(new) => {
                assert_eq!(new.sizes(), vec![50, 50]);
            }
            Decision::Keep => panic!("expected remap to include idle rank"),
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let keep = Decision::Keep;
        assert_eq!(decode_decision(&encode_decision(&keep), 100), keep);
        let part =
            BlockPartition::from_weights(100, &[0.3, 0.5, 0.2], Arrangement::new(vec![2, 0, 1]));
        let remap = Decision::Remap(part.clone());
        match decode_decision(&encode_decision(&remap), 100) {
            Decision::Remap(got) => {
                assert_eq!(got.sizes(), part.sizes());
                assert_eq!(got.arrangement(), part.arrangement());
                for g in 0..100 {
                    assert_eq!(got.owner_of(g), part.owner_of(g));
                }
            }
            Decision::Keep => panic!("round trip lost the remap"),
        }
    }

    #[test]
    fn collective_step_agrees_on_decision() {
        let part = BlockPartition::uniform(120, 3);
        let spec = ClusterSpec::uniform(3).with_network(NetworkSpec::zero_cost());
        let report = Cluster::new(spec).run(|env| {
            // Rank 0 claims to be 4× slower.
            let t = if env.rank() == 0 { 4e-3 } else { 1e-3 };
            load_balance_step(env, &part, t, 500, &config_free_movement())
        });
        let decisions: Vec<Decision> = report.into_results();
        assert!(matches!(decisions[0], Decision::Remap(_)));
        assert_eq!(decisions[0], decisions[1]);
        assert_eq!(decisions[1], decisions[2]);
    }

    #[test]
    fn check_cost_is_small_and_scales_with_p() {
        // The virtual cost of a check should be a few messages' worth —
        // the order of magnitude in Table 5's "Load Balance Check" column.
        let cost_for = |p: usize| {
            let part = BlockPartition::uniform(1000, p);
            let spec = ClusterSpec::paper_cluster(p);
            let report = Cluster::new(spec).run(|env| {
                let t0 = env.now();
                load_balance_step(env, &part, 1e-3, 500, &BalancerConfig::default());
                env.now() - t0
            });
            report.into_results().into_iter().fold(0.0f64, f64::max)
        };
        let c2 = cost_for(2);
        let c5 = cost_for(5);
        assert!(c2 > 0.0 && c2 < 0.1, "check cost for 2 ws was {c2}");
        assert!(c5 > c2, "check cost should grow with p: {c2} vs {c5}");
        assert!(c5 < 0.1, "check cost for 5 ws was {c5}");
    }

    #[test]
    fn distributed_mode_agrees_with_centralized() {
        let part = BlockPartition::uniform(120, 3);
        let spec = ClusterSpec::uniform(3).with_network(NetworkSpec::zero_cost());
        let run = |mode: ControllerMode| {
            let part = part.clone();
            let mut config = config_free_movement();
            config.mode = mode;
            Cluster::new(spec.clone())
                .run(move |env| {
                    let t = if env.rank() == 1 { 5e-3 } else { 1e-3 };
                    load_balance_step(env, &part, t, 400, &config)
                })
                .into_results()
        };
        let central = run(ControllerMode::Centralized);
        let distributed = run(ControllerMode::Distributed);
        assert_eq!(central, distributed, "modes must make the same decision");
        // And all ranks agree within each mode.
        assert!(distributed.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn distributed_mode_message_pattern() {
        // Distributed: every rank multicasts once and receives p-1 — no
        // central hot spot (the controller otherwise receives p-1 and sends
        // the broadcast).
        let part = BlockPartition::uniform(40, 4);
        let spec = ClusterSpec::uniform(4).with_network(NetworkSpec::zero_cost());
        let mut config = config_free_movement();
        config.mode = ControllerMode::Distributed;
        let report = Cluster::new(spec).run(|env| {
            load_balance_step(env, &part, 1e-3, 100, &config);
            (env.stats().messages_sent, env.stats().messages_received)
        });
        let counts: Vec<_> = report.into_results();
        // zero_cost network has multicast=true: one multicast send each.
        assert!(counts.iter().all(|&(s, r)| s == 1 && r == 3), "{counts:?}");
    }

    #[test]
    fn measured_movement_model_blocks_unprofitable_remap() {
        // Static model says movement is free (remap looks profitable);
        // the measured model says it is ruinously expensive. The measured
        // model must win in both modes and on every rank.
        let part = BlockPartition::uniform(120, 3);
        let spec = ClusterSpec::uniform(3).with_network(NetworkSpec::zero_cost());
        let expensive = MeasuredCosts {
            rebuild: None,
            movement: Some(RedistCostModel {
                per_message: 1e6,
                per_element: 1e6,
            }),
        };
        for mode in [ControllerMode::Centralized, ControllerMode::Distributed] {
            let part = part.clone();
            let mut config = config_free_movement();
            config.mode = mode;
            let decisions = Cluster::new(spec.clone())
                .run(move |env| {
                    let t = if env.rank() == 1 { 5e-3 } else { 1e-3 };
                    load_balance_step_measured(env, &part, t, 400, &config, expensive)
                })
                .into_results();
            assert!(
                decisions.iter().all(|d| *d == Decision::Keep),
                "{mode:?}: {decisions:?}"
            );
        }
    }

    #[test]
    fn distributed_wire_format_folds_component_max() {
        // Ranks report different measured costs; every rank must fold the
        // same per-component max and reach the same decision.
        let part = BlockPartition::uniform(120, 3);
        let spec = ClusterSpec::uniform(3).with_network(NetworkSpec::zero_cost());
        let mut config = config_free_movement();
        config.mode = ControllerMode::Distributed;
        let decisions = Cluster::new(spec)
            .run(move |env| {
                let measured = MeasuredCosts {
                    rebuild: Some(1e-4 * (env.rank() + 1) as f64),
                    movement: (env.rank() == 2).then_some(RedistCostModel {
                        per_message: 2e-3,
                        per_element: 1e-5,
                    }),
                };
                let t = if env.rank() == 1 { 5e-3 } else { 1e-3 };
                load_balance_step_measured(env, &part, t, 400, &config, measured)
            })
            .into_results();
        assert!(decisions.windows(2).all(|w| w[0] == w[1]), "{decisions:?}");
    }

    #[test]
    fn mcr_off_keeps_arrangement() {
        let part = BlockPartition::uniform(100, 3);
        let mut config = config_free_movement();
        config.use_mcr = false;
        let d = decide(&part, &[5e-3, 1e-3, 1e-3], 10_000, &config);
        match d {
            Decision::Remap(new) => {
                assert_eq!(new.arrangement(), part.arrangement());
            }
            Decision::Keep => panic!("expected remap"),
        }
    }
}
