//! Data movement after a remap decision.
//!
//! Both the value arrays and the distributed mesh structure (each vertex's
//! adjacency row) move with their vertices, following the
//! [`RedistributionPlan`] — every rank can derive the full plan locally from
//! the two `O(p)` partitions, so no coordination messages are needed beyond
//! the data itself. Receives follow the plan's deterministic
//! `(source, range-start)` order.
//!
//! ## Allocation-lean remaps: [`RemapScratch`]
//!
//! The paper's value proposition is *cheap adaptation*: the MCR controller
//! can only afford frequent remaps if a remap itself is cheap. The hot
//! steady-state loop got its recycled scratch in the executor
//! (`CommBuffers`); [`RemapScratch`] is the same idea for the remap path.
//! One scratch, owned by the session and recycled across remaps, carries:
//!
//! * the [`RedistributionPlan`] (recomputed in place, computed **once** per
//!   remap and shared by the value move and the adjacency move);
//! * pooled byte buffers for value-message staging and pooled `u32`
//!   buffers for adjacency-message staging (received payloads are recycled
//!   back into the pools, so buffers circulate through the cluster);
//! * the destination value blocks (swapped with the caller's aux vectors,
//!   so retired aux storage becomes next remap's scratch);
//! * CSR assembly storage for the new [`LocalAdjacency`] (a retired
//!   adjacency donates its vectors back via
//!   [`RemapScratch::recycle_adjacency`]);
//! * a [`ScheduleScratch`] for the inspector rebuild that follows.
//!
//! The destination blocks are **not pre-zeroed**: the kept intersection
//! plus the plan's receive ranges provably tile the new interval (the plan
//! moves exactly `new ∖ old` per rank), so every slot is overwritten; a
//! hard assertion (the tile counter is free) checks this on every remap,
//! so a mismatched plan panics instead of leaving stale elements behind.
//! Wire format, message order and virtual-time charging are identical to
//! the allocating path, so simulated results and clocks are bitwise
//! unchanged.

use stance_inspector::{LocalAdjacency, ScheduleScratch};
use stance_onedim::{BlockPartition, RedistributionPlan};
use stance_sim::{Comm, Element, Payload, Tag};

const TAG_VALUES: Tag = stance_sim::tags::TAG_REDIST_VALUES;
const TAG_ADJ: Tag = stance_sim::tags::TAG_REDIST_ADJ;

/// Bound on pooled staging buffers (bytes and words): enough for any
/// realistic per-remap fan-out, small enough to cap retained memory.
const POOL_CAP: usize = 16;

/// Sentinel in the assembly segment list: the segment comes from the kept
/// intersection of the old adjacency rather than a received packet.
const SEG_KEPT: usize = usize::MAX;

/// Recycled scratch for the adaptive remap pipeline. See the module docs.
#[derive(Debug)]
pub struct RemapScratch<E: Element> {
    /// The shared plan, recomputed in place each remap.
    plan: Option<RedistributionPlan>,
    /// Byte staging for value messages (recycled through send/receive).
    bytes_pool: Vec<Vec<u8>>,
    /// Destination value blocks, one per moved array; `blocks[0]` is the
    /// session's primary block, the rest swap with the caller's aux
    /// vectors.
    blocks: Vec<Vec<E>>,
    /// `u32` staging for adjacency messages.
    words_pool: Vec<Vec<u32>>,
    /// Received adjacency packets held between the receive phase and the
    /// in-order CSR assembly.
    packets: Vec<Vec<u32>>,
    /// Assembly segment descriptors: `(global range start, row count,
    /// packet index or `SEG_KEPT`)`.
    segs: Vec<(usize, usize, usize)>,
    /// Recycled CSR storage for the next adjacency build.
    adj_parts: Option<(Vec<usize>, Vec<u32>)>,
    /// Scratch for the inspector's schedule rebuild.
    pub schedule: ScheduleScratch,
}

impl<E: Element> RemapScratch<E> {
    /// An empty scratch; pools warm up over the first remap (plus its
    /// recycle calls) and stay warm from then on.
    pub fn new() -> Self {
        RemapScratch {
            plan: None,
            bytes_pool: Vec::new(),
            blocks: Vec::new(),
            words_pool: Vec::new(),
            packets: Vec::new(),
            segs: Vec::new(),
            adj_parts: None,
            schedule: ScheduleScratch::new(),
        }
    }

    /// The redistribution plan for `old → new`, recomputed into recycled
    /// storage. Compute it once per remap, pass it to both
    /// [`RemapScratch::redistribute`] and
    /// [`RemapScratch::redistribute_adjacency`], and hand it back with
    /// [`RemapScratch::put_plan`].
    pub fn take_plan(&mut self, old: &BlockPartition, new: &BlockPartition) -> RedistributionPlan {
        match self.plan.take() {
            Some(mut plan) => {
                plan.recompute(old, new);
                plan
            }
            None => RedistributionPlan::between(old, new),
        }
    }

    /// Returns a plan (from [`RemapScratch::take_plan`]) for reuse by the
    /// next remap.
    pub fn put_plan(&mut self, plan: RedistributionPlan) {
        self.plan = Some(plan);
    }

    /// Donates a retired adjacency's CSR storage to the next
    /// [`RemapScratch::redistribute_adjacency`].
    pub fn recycle_adjacency(&mut self, adj: LocalAdjacency) {
        let (_, xadj, refs) = adj.into_parts();
        self.adj_parts = Some((xadj, refs));
    }

    /// The new primary value block produced by the last
    /// [`RemapScratch::redistribute`] (in new-interval order).
    pub fn primary_block(&self) -> &[E] {
        &self.blocks[0]
    }

    /// Moves the primary value slice plus the caller's aux arrays to the
    /// new distribution, coalescing all of a destination's segments into
    /// one message per destination (§2 message coalescing) and drawing all
    /// staging and destination storage from the scratch.
    ///
    /// The primary source is a *slice* so the session can redistribute
    /// straight out of the `GhostedArray`'s storage — no upfront copy of
    /// the owned block. The new primary block lands in
    /// [`RemapScratch::primary_block`]; each aux vector is **swapped**
    /// with its destination block, so the retired aux storage becomes the
    /// next remap's scratch and nothing is copied or freed.
    ///
    /// Wire format and message order are identical to
    /// [`redistribute_values_coalesced`]: `1 + aux.len()` segments per
    /// message, primary first, receives in the plan's `(src, range)`
    /// order. A collective — every rank must pass the same number of
    /// arrays.
    ///
    /// # Panics
    /// Panics if `primary` or any aux array does not match the rank's old
    /// interval, or if `plan` was not computed for `old → new`.
    pub fn redistribute<C: Comm>(
        &mut self,
        env: &mut C,
        old: &BlockPartition,
        new: &BlockPartition,
        plan: &RedistributionPlan,
        primary: &[E],
        aux: &mut [&mut Vec<E>],
    ) {
        let k = 1 + aux.len();
        let rank = env.rank();
        let old_iv = old.interval_of(rank);
        let new_iv = new.interval_of(rank);
        assert_eq!(
            primary.len(),
            old_iv.len(),
            "value block does not match old interval"
        );
        for a in aux.iter() {
            assert_eq!(
                a.len(),
                old_iv.len(),
                "value block does not match old interval"
            );
        }

        // Send every outgoing range: one message per destination, all
        // arrays' segments back to back, each bulk-packed straight from
        // the source block (the range is contiguous in interval order).
        for m in plan.sends_of(rank) {
            let lo = m.range.start - old_iv.start;
            let hi = m.range.end - old_iv.start;
            let mut bytes = pool_take(&mut self.bytes_pool, (hi - lo) * k * E::SIZE_BYTES);
            E::pack_into(&primary[lo..hi], &mut bytes);
            for a in aux.iter() {
                E::pack_into(&a[lo..hi], &mut bytes);
            }
            env.send(m.dst, TAG_VALUES, Payload::from_bytes(bytes));
        }

        // Size the destination blocks WITHOUT pre-zeroing: `resize` only
        // touches a grown tail, and every slot is overwritten below
        // because the kept intersection plus the plan's receive ranges
        // tile the new interval exactly (hard-asserted below).
        while self.blocks.len() < k {
            self.blocks.push(Vec::new());
        }
        for block in self.blocks.iter_mut().take(k) {
            block.resize(new_iv.len(), E::zero());
        }

        let kept = old_iv.intersect(&new_iv);
        let mut covered = kept.len();
        if !kept.is_empty() {
            let dst = kept.start - new_iv.start..kept.end - new_iv.start;
            let src = kept.start - old_iv.start..kept.end - old_iv.start;
            self.blocks[0][dst.clone()].copy_from_slice(&primary[src.clone()]);
            for (block, a) in self.blocks[1..k].iter_mut().zip(aux.iter()) {
                block[dst.clone()].copy_from_slice(&a[src.clone()]);
            }
        }
        for m in plan.recvs_of(rank) {
            let seg = m.range.len();
            let bytes = env.recv(m.src, TAG_VALUES).into_bytes();
            assert_eq!(
                bytes.len(),
                seg * k * E::SIZE_BYTES,
                "redistribution packet length"
            );
            let lo = m.range.start - new_iv.start;
            let seg_bytes = seg * E::SIZE_BYTES;
            for (i, block) in self.blocks.iter_mut().take(k).enumerate() {
                E::unpack_into(
                    &bytes[i * seg_bytes..(i + 1) * seg_bytes],
                    &mut block[lo..lo + seg],
                );
            }
            pool_put(&mut self.bytes_pool, bytes);
            covered += seg;
        }
        // Hard assert (the counter is free): the blocks are not pre-zeroed,
        // so a plan that does not tile the new interval — e.g. one computed
        // for a different partition pair — must fail loudly rather than
        // leave stale elements in the uncovered slots.
        assert_eq!(
            covered,
            new_iv.len(),
            "kept intersection + plan receives must tile the new interval \
             (was the plan computed for these partitions?)"
        );

        // Hand each aux its new block; its old storage joins the scratch.
        for (block, a) in self.blocks[1..k].iter_mut().zip(aux.iter_mut()) {
            std::mem::swap(*a, block);
        }
    }

    /// Moves the distributed mesh rows (each vertex's global neighbor
    /// list) to the new owners, returning this rank's new
    /// [`LocalAdjacency`] — assembled **directly in CSR form** from the
    /// kept rows and the received packets. Compared to the fresh-build
    /// path ([`redistribute_adjacency`]'s historic implementation used one
    /// heap `Vec` per received row), this performs no per-row allocations:
    /// staging words come from a recycled pool and the CSR arrays reuse
    /// the storage a previous remap retired
    /// ([`RemapScratch::recycle_adjacency`]).
    ///
    /// Wire format per moved range: `[deg(v) for v in range] ++ [refs…]`
    /// as one `u32` payload, receives in the plan's deterministic
    /// `(src, range)` order — identical messages and ordering to the
    /// allocating path, so virtual time is unchanged.
    pub fn redistribute_adjacency<C: Comm>(
        &mut self,
        env: &mut C,
        old: &BlockPartition,
        new: &BlockPartition,
        plan: &RedistributionPlan,
        adj: &LocalAdjacency,
    ) -> LocalAdjacency {
        let rank = env.rank();
        let old_iv = old.interval_of(rank);
        let new_iv = new.interval_of(rank);
        assert_eq!(
            adj.interval(),
            old_iv,
            "adjacency does not match old interval"
        );

        for m in plan.sends_of(rank) {
            let lo = m.range.start - old_iv.start;
            let hi = m.range.end - old_iv.start;
            let refs = adj.refs_in(lo, hi);
            let mut words = pool_take(&mut self.words_pool, m.range.len() + refs.len());
            for l in lo..hi {
                words.push(adj.degree_of(l) as u32);
            }
            // Rows are CSR-adjacent: the whole range's refs are one slice.
            words.extend_from_slice(refs);
            env.send(m.dst, TAG_ADJ, Payload::from_u32(words));
        }

        // Receive packets in the plan's deterministic (src, range) order,
        // then assemble the CSR in ascending-interval order.
        self.segs.clear();
        let kept = old_iv.intersect(&new_iv);
        if !kept.is_empty() {
            self.segs.push((kept.start, kept.len(), SEG_KEPT));
        }
        self.packets.clear();
        for m in plan.recvs_of(rank) {
            self.segs
                .push((m.range.start, m.range.len(), self.packets.len()));
            self.packets.push(env.recv(m.src, TAG_ADJ).into_u32());
        }
        self.segs.sort_unstable();

        let (mut xadj, mut refs) = self.adj_parts.take().unwrap_or_default();
        xadj.clear();
        refs.clear();
        xadj.reserve(new_iv.len() + 1);
        xadj.push(0);
        let mut expected_start = new_iv.start;
        for &(start, count, source) in &self.segs {
            // Hard asserts (O(p) total): a plan/partition mismatch must not
            // silently assemble a wrong CSR.
            assert_eq!(start, expected_start, "segments must tile the interval");
            if source == SEG_KEPT {
                let lo = kept.start - old_iv.start;
                let hi = kept.end - old_iv.start;
                for l in lo..hi {
                    xadj.push(xadj.last().expect("nonempty xadj") + adj.degree_of(l));
                }
                refs.extend_from_slice(adj.refs_in(lo, hi));
            } else {
                let words = &self.packets[source];
                let degrees = &words[..count];
                for &d in degrees {
                    xadj.push(xadj.last().expect("nonempty xadj") + d as usize);
                }
                refs.extend_from_slice(&words[count..]);
                assert_eq!(
                    *xadj.last().expect("nonempty xadj"),
                    refs.len(),
                    "adjacency packet fully consumed"
                );
            }
            expected_start = start + count;
        }
        assert_eq!(
            expected_start, new_iv.end,
            "segments must cover the interval"
        );
        while let Some(packet) = self.packets.pop() {
            pool_put(&mut self.words_pool, packet);
        }
        LocalAdjacency::from_parts(new_iv, xadj, refs)
    }
}

/// Pops a cleared buffer with at least `capacity` reserved from `pool`,
/// or allocates one on a pool miss. One implementation serves the byte
/// and word pools alike.
fn pool_take<T>(pool: &mut Vec<Vec<T>>, capacity: usize) -> Vec<T> {
    match pool.pop() {
        Some(mut buf) => {
            buf.clear();
            buf.reserve(capacity);
            buf
        }
        None => Vec::with_capacity(capacity),
    }
}

/// Returns a spent buffer to `pool`, bounded by [`POOL_CAP`].
fn pool_put<T>(pool: &mut Vec<Vec<T>>, buf: Vec<T>) {
    if pool.len() < POOL_CAP {
        pool.push(buf);
    }
}

impl<E: Element> Default for RemapScratch<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// Moves owned values from the old distribution to the new one. Returns
/// this rank's new local block (in new-interval order). Generic over the
/// application's [`Element`] — the paper's remapping experiments move
/// single-precision arrays, the relaxation kernel moves doubles, a
/// multi-field application moves `[f64; K]` records; all travel as packed
/// bytes, so the wire cost scales with the element size.
///
/// A collective: every rank calls it with its current block.
///
/// On an identity remap (`old == new`) no messages are sent and no
/// elements are reshuffled; the only remaining cost is the one owned-block
/// copy this function's *return type* demands. Callers that can accept
/// in-place movement should use [`redistribute_values_coalesced`] (or a
/// [`RemapScratch`]), which on identity touches nothing at all.
///
/// # Panics
/// Panics if `local_values` does not match the rank's old interval.
pub fn redistribute_values<E: Element, C: Comm>(
    env: &mut C,
    old: &BlockPartition,
    new: &BlockPartition,
    local_values: &[E],
) -> Vec<E> {
    assert_eq!(
        local_values.len(),
        old.interval_of(env.rank()).len(),
        "value block does not match old interval"
    );
    // Identity remap: the only cost is the owned copy the return type
    // demands — no messages, no plan, no reshuffling.
    if old == new {
        return local_values.to_vec();
    }
    let mut values = local_values.to_vec();
    redistribute_values_coalesced(env, old, new, &mut [&mut values]);
    values
}

/// Moves **several value arrays at once** to the new distribution,
/// coalescing all of a destination's segments into one message (the same
/// §2 message-coalescing optimization the executor's `gather_coalesced`
/// applies: for `k` arrays, `1/k` of the messages, paying the per-message
/// setup once). Each array must hold one element per owned vertex of the
/// old interval and is replaced in place with its new block.
///
/// Wire format per move: `k` consecutive segments, one per array, each in
/// range order, bulk-packed straight from the source block and decoded
/// straight into the destination block (the
/// [`Element::pack_into`]/[`Element::unpack_into`] codecs — no per-element
/// calls, no intermediate `Vec<E>`). When the old and new partitions are
/// identical the call returns immediately: zero messages, zero copies, the
/// caller's vectors untouched in place. A collective — every rank must
/// pass the same number of arrays.
///
/// This is the convenience entry point; a long-lived adaptive runtime
/// holds a [`RemapScratch`] and calls [`RemapScratch::redistribute`]
/// instead, which is the same movement with every allocation recycled
/// across remaps.
///
/// # Panics
/// Panics if any array does not match the rank's old interval.
pub fn redistribute_values_coalesced<E: Element, C: Comm>(
    env: &mut C,
    old: &BlockPartition,
    new: &BlockPartition,
    arrays: &mut [&mut Vec<E>],
) {
    if arrays.is_empty() {
        return;
    }
    // Identity remap: every rank keeps exactly its block. Return before
    // building the plan or touching the arrays — zero messages, zero
    // copies (the caller's vectors are left untouched in place).
    if old == new {
        let rank = env.rank();
        let old_iv = old.interval_of(rank);
        for a in arrays.iter() {
            assert_eq!(
                a.len(),
                old_iv.len(),
                "value block does not match old interval"
            );
        }
        return;
    }
    let mut scratch = RemapScratch::new();
    let plan = scratch.take_plan(old, new);
    let (first, rest) = arrays.split_first_mut().expect("nonempty");
    // The first array is the primary source; swap its new block in
    // afterwards (the scratch is transient here, so the swap just moves
    // ownership of the freshly built block).
    let primary: Vec<E> = std::mem::take(*first);
    scratch.redistribute(env, old, new, &plan, &primary, rest);
    **first = std::mem::replace(&mut scratch.blocks[0], primary);
}

/// Moves the distributed mesh rows (each vertex's global neighbor list) to
/// the new owners, returning this rank's new [`LocalAdjacency`].
///
/// Wire format per moved range: `[deg(v) for v in range] ++ [refs…]` as one
/// `u32` payload (the receiver knows the range length from the plan).
/// Convenience wrapper over [`RemapScratch::redistribute_adjacency`] with
/// a transient scratch.
pub fn redistribute_adjacency<C: Comm>(
    env: &mut C,
    old: &BlockPartition,
    new: &BlockPartition,
    adj: &LocalAdjacency,
) -> LocalAdjacency {
    let mut scratch: RemapScratch<f64> = RemapScratch::new();
    let plan = scratch.take_plan(old, new);
    scratch.redistribute_adjacency(env, old, new, &plan, adj)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stance_locality::meshgen;
    use stance_onedim::Arrangement;
    use stance_sim::{Cluster, ClusterSpec, NetworkSpec};

    fn old_new_partitions(n: usize) -> (BlockPartition, BlockPartition) {
        let old = BlockPartition::uniform(n, 3);
        let new =
            BlockPartition::from_weights(n, &[0.2, 0.5, 0.3], Arrangement::new(vec![1, 0, 2]));
        (old, new)
    }

    #[test]
    fn values_follow_their_elements() {
        let n = 91;
        let (old, new) = old_new_partitions(n);
        let spec = ClusterSpec::uniform(3).with_network(NetworkSpec::zero_cost());
        let report = Cluster::new(spec).run(|env| {
            let old_iv = old.interval_of(env.rank());
            // Value of element g is g².
            let mine: Vec<f64> = old_iv.iter().map(|g| (g * g) as f64).collect();
            redistribute_values(env, &old, &new, &mine)
        });
        for (rank, values) in report.into_results().into_iter().enumerate() {
            let new_iv = new.interval_of(rank);
            let expected: Vec<f64> = new_iv.iter().map(|g| (g * g) as f64).collect();
            assert_eq!(values, expected, "rank {rank} block wrong after move");
        }
    }

    /// Coalesced redistribution must deliver exactly what k separate
    /// redistributions would, with 1/k of the messages.
    #[test]
    fn coalesced_redistribution_equivalent_and_cheaper() {
        let n = 91;
        let (old, new) = old_new_partitions(n);
        let spec = ClusterSpec::uniform(3).with_network(NetworkSpec::zero_cost());
        Cluster::new(spec).run(|env| {
            let old_iv = old.interval_of(env.rank());
            let mk = |f: fn(usize) -> f64| -> Vec<f64> { old_iv.iter().map(f).collect() };
            let mut a = mk(|g| g as f64);
            let mut b = mk(|g| (g * g) as f64);
            let mut c = mk(|g| -(g as f64));

            // Reference: separate moves.
            let a_ref = redistribute_values(env, &old, &new, &a);
            let b_ref = redistribute_values(env, &old, &new, &b);
            let c_ref = redistribute_values(env, &old, &new, &c);
            let msgs_separate = env.stats().messages_sent;

            redistribute_values_coalesced(env, &old, &new, &mut [&mut a, &mut b, &mut c]);
            let msgs_coalesced = env.stats().messages_sent - msgs_separate;

            assert_eq!(a, a_ref);
            assert_eq!(b, b_ref);
            assert_eq!(c, c_ref);
            assert_eq!(
                msgs_separate,
                3 * msgs_coalesced,
                "coalescing must cut messages 3x"
            );
        });
    }

    /// A recycled [`RemapScratch`] driven through a chain of remaps must
    /// deliver exactly what the convenience path delivers, for the primary
    /// slice and the aux vectors alike.
    #[test]
    fn scratch_redistribute_matches_coalesced_across_remaps() {
        let n = 91;
        let parts = [
            BlockPartition::uniform(n, 3),
            BlockPartition::from_weights(n, &[0.2, 0.5, 0.3], Arrangement::new(vec![1, 0, 2])),
            BlockPartition::from_weights(n, &[0.6, 0.2, 0.2], Arrangement::identity(3)),
            BlockPartition::uniform(n, 3),
        ];
        let spec = ClusterSpec::uniform(3).with_network(NetworkSpec::zero_cost());
        Cluster::new(spec).run(|env| {
            let rank = env.rank();
            let mut scratch: RemapScratch<f64> = RemapScratch::new();
            let iv0 = parts[0].interval_of(rank);
            let mut primary: Vec<f64> = iv0.iter().map(|g| (g as f64).sin()).collect();
            let mut aux: Vec<f64> = iv0.iter().map(|g| 3.0 * g as f64).collect();
            let mut primary_ref = primary.clone();
            let mut aux_ref = aux.clone();
            for w in parts.windows(2) {
                let (old, new) = (&w[0], &w[1]);
                // Reference path: the convenience function.
                redistribute_values_coalesced(env, old, new, &mut [&mut primary_ref, &mut aux_ref]);
                // Scratch path, recycled across iterations.
                let plan = scratch.take_plan(old, new);
                scratch.redistribute(env, old, new, &plan, &primary, &mut [&mut aux]);
                scratch.put_plan(plan);
                primary.clear();
                primary.extend_from_slice(scratch.primary_block());
                assert_eq!(primary, primary_ref, "primary diverged");
                assert_eq!(aux, aux_ref, "aux diverged");
            }
        });
    }

    #[test]
    fn identity_redistribution_no_messages() {
        let part = BlockPartition::uniform(30, 3);
        let spec = ClusterSpec::uniform(3).with_network(NetworkSpec::zero_cost());
        let report = Cluster::new(spec).run(|env| {
            let iv = part.interval_of(env.rank());
            let mine: Vec<f64> = iv.iter().map(|g| g as f64).collect();
            let out = redistribute_values(env, &part, &part, &mine);
            assert_eq!(out, mine);
            env.stats().messages_sent
        });
        for msgs in report.results() {
            assert_eq!(*msgs, 0, "identity remap must move nothing");
        }
    }

    /// The identity early-return must be copy-free, not just message-free:
    /// the coalesced call leaves the caller's vectors physically in place
    /// (same heap allocation, same contents), and no bytes hit the wire.
    #[test]
    fn identity_redistribution_zero_copies() {
        let part = BlockPartition::uniform(30, 3);
        let spec = ClusterSpec::uniform(3).with_network(NetworkSpec::zero_cost());
        Cluster::new(spec).run(|env| {
            let iv = part.interval_of(env.rank());
            let mut a: Vec<f64> = iv.iter().map(|g| g as f64).collect();
            let mut b: Vec<f64> = iv.iter().map(|g| (g * 2) as f64).collect();
            let (ptr_a, ptr_b) = (a.as_ptr(), b.as_ptr());
            let (copy_a, copy_b) = (a.clone(), b.clone());
            redistribute_values_coalesced(env, &part, &part, &mut [&mut a, &mut b]);
            assert_eq!(env.stats().messages_sent, 0);
            assert_eq!(env.stats().bytes_sent, 0);
            assert_eq!(
                (a.as_ptr(), b.as_ptr()),
                (ptr_a, ptr_b),
                "identity remap must not reallocate or replace the blocks"
            );
            assert_eq!(a, copy_a);
            assert_eq!(b, copy_b);
        });
    }

    #[test]
    fn adjacency_matches_fresh_extraction() {
        let g = meshgen::triangulated_grid(13, 7, 0.3, 9);
        let n = g.num_vertices();
        let (old, new) = old_new_partitions(n);
        let spec = ClusterSpec::uniform(3).with_network(NetworkSpec::zero_cost());
        let report = Cluster::new(spec).run(|env| {
            let adj = LocalAdjacency::extract(&g, &old, env.rank());
            redistribute_adjacency(env, &old, &new, &adj)
        });
        for (rank, got) in report.into_results().into_iter().enumerate() {
            let expected = LocalAdjacency::extract(&g, &new, rank);
            assert_eq!(got, expected, "rank {rank} adjacency wrong after move");
        }
    }

    /// The recycled adjacency path, chained remap over remap with retired
    /// structures donated back, must match fresh extraction at every step.
    #[test]
    fn scratch_adjacency_matches_fresh_across_remaps() {
        let g = meshgen::triangulated_grid(13, 7, 0.3, 9);
        let n = g.num_vertices();
        let parts = [
            BlockPartition::uniform(n, 3),
            BlockPartition::from_weights(n, &[0.2, 0.5, 0.3], Arrangement::new(vec![1, 0, 2])),
            BlockPartition::from_weights(n, &[0.5, 0.2, 0.3], Arrangement::identity(3)),
            BlockPartition::uniform(n, 3),
        ];
        let spec = ClusterSpec::uniform(3).with_network(NetworkSpec::zero_cost());
        Cluster::new(spec).run(|env| {
            let rank = env.rank();
            let mut scratch: RemapScratch<f64> = RemapScratch::new();
            let mut adj = LocalAdjacency::extract(&g, &parts[0], rank);
            for w in parts.windows(2) {
                let (old, new) = (&w[0], &w[1]);
                let plan = scratch.take_plan(old, new);
                let next = scratch.redistribute_adjacency(env, old, new, &plan, &adj);
                scratch.put_plan(plan);
                scratch.recycle_adjacency(adj);
                assert_eq!(
                    next,
                    LocalAdjacency::extract(&g, new, rank),
                    "adjacency diverged from fresh extraction"
                );
                adj = next;
            }
        });
    }

    #[test]
    fn shrinking_to_empty_block() {
        let n = 20;
        let old = BlockPartition::uniform(n, 2);
        let new = BlockPartition::from_sizes(&[20, 0]);
        let spec = ClusterSpec::uniform(2).with_network(NetworkSpec::zero_cost());
        let report = Cluster::new(spec).run(|env| {
            let iv = old.interval_of(env.rank());
            let mine: Vec<f64> = iv.iter().map(|g| g as f64).collect();
            redistribute_values(env, &old, &new, &mine)
        });
        let results: Vec<Vec<f64>> = report.into_results();
        assert_eq!(results[0].len(), 20);
        assert!(results[1].is_empty());
        assert_eq!(results[0][19], 19.0);
    }

    #[test]
    fn movement_cost_reflected_in_clock() {
        // Moving half the data over a slow network takes proportional time.
        let n = 1 << 16;
        let old = BlockPartition::from_sizes(&[n, 0]);
        let new = BlockPartition::from_sizes(&[0, n]);
        let spec = ClusterSpec::uniform(2); // default Ethernet
        let report = Cluster::new(spec).run(|env| {
            let iv = old.interval_of(env.rank());
            let mine: Vec<f64> = iv.iter().map(|g| g as f64).collect();
            redistribute_values(env, &old, &new, &mine);
            env.now().as_secs()
        });
        // 512 KiB at ~1.1 MB/s ≈ 0.48 s on the receiving side.
        let t_recv = report.ranks[1].clock.as_secs();
        assert!(
            t_recv > 0.4 && t_recv < 0.6,
            "expected ≈ 0.48 s for the move, got {t_recv}"
        );
    }
}
