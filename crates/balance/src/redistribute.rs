//! Data movement after a remap decision.
//!
//! Both the value arrays and the distributed mesh structure (each vertex's
//! adjacency row) move with their vertices, following the
//! [`RedistributionPlan`] — every rank can derive the full plan locally from
//! the two `O(p)` partitions, so no coordination messages are needed beyond
//! the data itself. Receives follow the plan's deterministic
//! `(source, range-start)` order.

use stance_inspector::LocalAdjacency;
use stance_onedim::{BlockPartition, RedistributionPlan};
use stance_sim::{Comm, Element, Payload, Tag};

const TAG_VALUES: Tag = Tag::reserved(48);
const TAG_ADJ: Tag = Tag::reserved(49);

/// Moves owned values from the old distribution to the new one. Returns
/// this rank's new local block (in new-interval order). Generic over the
/// application's [`Element`] — the paper's remapping experiments move
/// single-precision arrays, the relaxation kernel moves doubles, a
/// multi-field application moves `[f64; K]` records; all travel as packed
/// bytes, so the wire cost scales with the element size.
///
/// A collective: every rank calls it with its current block.
///
/// # Panics
/// Panics if `local_values` does not match the rank's old interval.
pub fn redistribute_values<E: Element, C: Comm>(
    env: &mut C,
    old: &BlockPartition,
    new: &BlockPartition,
    local_values: &[E],
) -> Vec<E> {
    assert_eq!(
        local_values.len(),
        old.interval_of(env.rank()).len(),
        "value block does not match old interval"
    );
    // Identity remap: the only cost is the owned copy the return type
    // demands — no messages, no plan, no reshuffling.
    if old == new {
        return local_values.to_vec();
    }
    let mut values = local_values.to_vec();
    redistribute_values_coalesced(env, old, new, &mut [&mut values]);
    values
}

/// Moves **several value arrays at once** to the new distribution,
/// coalescing all of a destination's segments into one message (the same
/// §2 message-coalescing optimization the executor's `gather_coalesced`
/// applies: for `k` arrays, `1/k` of the messages, paying the per-message
/// setup once). Each array must hold one element per owned vertex of the
/// old interval and is replaced in place with its new block.
///
/// Wire format per move: `k` consecutive segments, one per array, each in
/// range order, bulk-packed straight from the source block and decoded
/// straight into the pre-zeroed destination block (the
/// [`Element::pack_into`]/[`Element::unpack_into`] codecs — no per-element
/// calls, no intermediate `Vec<E>`). When the old and new partitions are
/// identical the call returns immediately: zero messages, zero copies, the
/// caller's vectors untouched in place. A collective — every rank must
/// pass the same number of arrays.
///
/// # Panics
/// Panics if any array does not match the rank's old interval.
pub fn redistribute_values_coalesced<E: Element, C: Comm>(
    env: &mut C,
    old: &BlockPartition,
    new: &BlockPartition,
    arrays: &mut [&mut Vec<E>],
) {
    if arrays.is_empty() {
        return;
    }
    let k = arrays.len();
    let rank = env.rank();
    let old_iv = old.interval_of(rank);
    let new_iv = new.interval_of(rank);
    for a in arrays.iter() {
        assert_eq!(
            a.len(),
            old_iv.len(),
            "value block does not match old interval"
        );
    }
    // Identity remap: every rank keeps exactly its block. Return before
    // building the plan or touching the arrays — zero messages, zero
    // copies (the caller's vectors are left untouched in place).
    if old == new {
        return;
    }
    let plan = RedistributionPlan::between(old, new);

    // Send every outgoing range: one message per destination, all arrays'
    // segments back to back, each bulk-packed straight from the source
    // block (the range is contiguous in interval order).
    for m in plan.sends_of(rank) {
        let lo = m.range.start - old_iv.start;
        let hi = m.range.end - old_iv.start;
        let mut bytes = Vec::with_capacity((hi - lo) * k * E::SIZE_BYTES);
        for a in arrays.iter() {
            E::pack_into(&a[lo..hi], &mut bytes);
        }
        env.send(m.dst, TAG_VALUES, Payload::from_bytes(bytes));
    }

    // Assemble the new blocks: the kept intersection comes from my old
    // blocks (one contiguous copy), the rest decodes straight into the
    // pre-zeroed destination block in plan order.
    let mut new_blocks: Vec<Vec<E>> = (0..k).map(|_| vec![E::zero(); new_iv.len()]).collect();
    let kept = old_iv.intersect(&new_iv);
    if !kept.is_empty() {
        for (block, a) in new_blocks.iter_mut().zip(arrays.iter()) {
            block[kept.start - new_iv.start..kept.end - new_iv.start]
                .copy_from_slice(&a[kept.start - old_iv.start..kept.end - old_iv.start]);
        }
    }
    for m in plan.recvs_of(rank) {
        let seg = m.range.len();
        let bytes = env.recv(m.src, TAG_VALUES).into_bytes();
        assert_eq!(
            bytes.len(),
            seg * k * E::SIZE_BYTES,
            "redistribution packet length"
        );
        let lo = m.range.start - new_iv.start;
        let seg_bytes = seg * E::SIZE_BYTES;
        for (i, block) in new_blocks.iter_mut().enumerate() {
            E::unpack_into(
                &bytes[i * seg_bytes..(i + 1) * seg_bytes],
                &mut block[lo..lo + seg],
            );
        }
    }
    for (a, block) in arrays.iter_mut().zip(new_blocks) {
        **a = block;
    }
}

/// Moves the distributed mesh rows (each vertex's global neighbor list) to
/// the new owners, returning this rank's new [`LocalAdjacency`].
///
/// Wire format per moved range: `[deg(v) for v in range] ++ [refs…]` as one
/// `u32` payload (the receiver knows the range length from the plan).
pub fn redistribute_adjacency<C: Comm>(
    env: &mut C,
    old: &BlockPartition,
    new: &BlockPartition,
    adj: &LocalAdjacency,
) -> LocalAdjacency {
    let rank = env.rank();
    let old_iv = old.interval_of(rank);
    let new_iv = new.interval_of(rank);
    assert_eq!(
        adj.interval(),
        old_iv,
        "adjacency does not match old interval"
    );
    let plan = RedistributionPlan::between(old, new);

    for m in plan.sends_of(rank) {
        let mut words = Vec::new();
        for g in m.range.iter() {
            words.push(adj.degree_of(g - old_iv.start) as u32);
        }
        for g in m.range.iter() {
            words.extend_from_slice(adj.neighbors_of(g - old_iv.start));
        }
        env.send(m.dst, TAG_ADJ, Payload::from_u32(words));
    }

    // New rows, indexed by position within the new interval.
    let mut rows: Vec<Vec<u32>> = vec![Vec::new(); new_iv.len()];
    let kept = old_iv.intersect(&new_iv);
    for g in kept.iter() {
        rows[g - new_iv.start] = adj.neighbors_of(g - old_iv.start).to_vec();
    }
    for m in plan.recvs_of(rank) {
        let words = env.recv(m.src, TAG_ADJ).into_u32();
        let count = m.range.len();
        let degrees = &words[..count];
        let mut cursor = count;
        for (offset, g) in m.range.iter().enumerate() {
            let d = degrees[offset] as usize;
            rows[g - new_iv.start] = words[cursor..cursor + d].to_vec();
            cursor += d;
        }
        assert_eq!(cursor, words.len(), "adjacency packet fully consumed");
    }

    let mut xadj = Vec::with_capacity(new_iv.len() + 1);
    let mut refs = Vec::new();
    xadj.push(0);
    for row in rows {
        refs.extend(row);
        xadj.push(refs.len());
    }
    LocalAdjacency::from_parts(new_iv, xadj, refs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stance_locality::meshgen;
    use stance_onedim::Arrangement;
    use stance_sim::{Cluster, ClusterSpec, NetworkSpec};

    fn old_new_partitions(n: usize) -> (BlockPartition, BlockPartition) {
        let old = BlockPartition::uniform(n, 3);
        let new =
            BlockPartition::from_weights(n, &[0.2, 0.5, 0.3], Arrangement::new(vec![1, 0, 2]));
        (old, new)
    }

    #[test]
    fn values_follow_their_elements() {
        let n = 91;
        let (old, new) = old_new_partitions(n);
        let spec = ClusterSpec::uniform(3).with_network(NetworkSpec::zero_cost());
        let report = Cluster::new(spec).run(|env| {
            let old_iv = old.interval_of(env.rank());
            // Value of element g is g².
            let mine: Vec<f64> = old_iv.iter().map(|g| (g * g) as f64).collect();
            redistribute_values(env, &old, &new, &mine)
        });
        for (rank, values) in report.into_results().into_iter().enumerate() {
            let new_iv = new.interval_of(rank);
            let expected: Vec<f64> = new_iv.iter().map(|g| (g * g) as f64).collect();
            assert_eq!(values, expected, "rank {rank} block wrong after move");
        }
    }

    /// Coalesced redistribution must deliver exactly what k separate
    /// redistributions would, with 1/k of the messages.
    #[test]
    fn coalesced_redistribution_equivalent_and_cheaper() {
        let n = 91;
        let (old, new) = old_new_partitions(n);
        let spec = ClusterSpec::uniform(3).with_network(NetworkSpec::zero_cost());
        Cluster::new(spec).run(|env| {
            let old_iv = old.interval_of(env.rank());
            let mk = |f: fn(usize) -> f64| -> Vec<f64> { old_iv.iter().map(f).collect() };
            let mut a = mk(|g| g as f64);
            let mut b = mk(|g| (g * g) as f64);
            let mut c = mk(|g| -(g as f64));

            // Reference: separate moves.
            let a_ref = redistribute_values(env, &old, &new, &a);
            let b_ref = redistribute_values(env, &old, &new, &b);
            let c_ref = redistribute_values(env, &old, &new, &c);
            let msgs_separate = env.stats().messages_sent;

            redistribute_values_coalesced(env, &old, &new, &mut [&mut a, &mut b, &mut c]);
            let msgs_coalesced = env.stats().messages_sent - msgs_separate;

            assert_eq!(a, a_ref);
            assert_eq!(b, b_ref);
            assert_eq!(c, c_ref);
            assert_eq!(
                msgs_separate,
                3 * msgs_coalesced,
                "coalescing must cut messages 3x"
            );
        });
    }

    #[test]
    fn identity_redistribution_no_messages() {
        let part = BlockPartition::uniform(30, 3);
        let spec = ClusterSpec::uniform(3).with_network(NetworkSpec::zero_cost());
        let report = Cluster::new(spec).run(|env| {
            let iv = part.interval_of(env.rank());
            let mine: Vec<f64> = iv.iter().map(|g| g as f64).collect();
            let out = redistribute_values(env, &part, &part, &mine);
            assert_eq!(out, mine);
            env.stats().messages_sent
        });
        for msgs in report.results() {
            assert_eq!(*msgs, 0, "identity remap must move nothing");
        }
    }

    /// The identity early-return must be copy-free, not just message-free:
    /// the coalesced call leaves the caller's vectors physically in place
    /// (same heap allocation, same contents), and no bytes hit the wire.
    #[test]
    fn identity_redistribution_zero_copies() {
        let part = BlockPartition::uniform(30, 3);
        let spec = ClusterSpec::uniform(3).with_network(NetworkSpec::zero_cost());
        Cluster::new(spec).run(|env| {
            let iv = part.interval_of(env.rank());
            let mut a: Vec<f64> = iv.iter().map(|g| g as f64).collect();
            let mut b: Vec<f64> = iv.iter().map(|g| (g * 2) as f64).collect();
            let (ptr_a, ptr_b) = (a.as_ptr(), b.as_ptr());
            let (copy_a, copy_b) = (a.clone(), b.clone());
            redistribute_values_coalesced(env, &part, &part, &mut [&mut a, &mut b]);
            assert_eq!(env.stats().messages_sent, 0);
            assert_eq!(env.stats().bytes_sent, 0);
            assert_eq!(
                (a.as_ptr(), b.as_ptr()),
                (ptr_a, ptr_b),
                "identity remap must not reallocate or replace the blocks"
            );
            assert_eq!(a, copy_a);
            assert_eq!(b, copy_b);
        });
    }

    #[test]
    fn adjacency_matches_fresh_extraction() {
        let g = meshgen::triangulated_grid(13, 7, 0.3, 9);
        let n = g.num_vertices();
        let (old, new) = old_new_partitions(n);
        let spec = ClusterSpec::uniform(3).with_network(NetworkSpec::zero_cost());
        let report = Cluster::new(spec).run(|env| {
            let adj = LocalAdjacency::extract(&g, &old, env.rank());
            redistribute_adjacency(env, &old, &new, &adj)
        });
        for (rank, got) in report.into_results().into_iter().enumerate() {
            let expected = LocalAdjacency::extract(&g, &new, rank);
            assert_eq!(got, expected, "rank {rank} adjacency wrong after move");
        }
    }

    #[test]
    fn shrinking_to_empty_block() {
        let n = 20;
        let old = BlockPartition::uniform(n, 2);
        let new = BlockPartition::from_sizes(&[20, 0]);
        let spec = ClusterSpec::uniform(2).with_network(NetworkSpec::zero_cost());
        let report = Cluster::new(spec).run(|env| {
            let iv = old.interval_of(env.rank());
            let mine: Vec<f64> = iv.iter().map(|g| g as f64).collect();
            redistribute_values(env, &old, &new, &mine)
        });
        let results: Vec<Vec<f64>> = report.into_results();
        assert_eq!(results[0].len(), 20);
        assert!(results[1].is_empty());
        assert_eq!(results[0][19], 19.0);
    }

    #[test]
    fn movement_cost_reflected_in_clock() {
        // Moving half the data over a slow network takes proportional time.
        let n = 1 << 16;
        let old = BlockPartition::from_sizes(&[n, 0]);
        let new = BlockPartition::from_sizes(&[0, n]);
        let spec = ClusterSpec::uniform(2); // default Ethernet
        let report = Cluster::new(spec).run(|env| {
            let iv = old.interval_of(env.rank());
            let mine: Vec<f64> = iv.iter().map(|g| g as f64).collect();
            redistribute_values(env, &old, &new, &mine);
            env.now().as_secs()
        });
        // 512 KiB at ~1.1 MB/s ≈ 0.48 s on the receiving side.
        let t_recv = report.ranks[1].clock.as_secs();
        assert!(
            t_recv > 0.4 && t_recv < 0.6,
            "expected ≈ 0.48 s for the move, got {t_recv}"
        );
    }
}
