//! Reproduction of the paper's figures (the ones that carry data: 2, 3, 4,
//! 5, 9). Figures 1, 6, 7 and 8 are architecture/pseudocode and live as
//! code: the phase structure is the crate decomposition, Figs. 6–7 are
//! `stance::onedim::mcr`, Fig. 8 is `stance::executor::kernel`.

use stance::inspector::{
    build_schedule_symmetric, IntervalTable, LocalAdjacency, ScheduleStrategy,
};
use stance::locality::{compute_ordering, meshgen, metrics, Graph, OrderingMethod};
use stance::onedim::{
    mcr::minimize_cost_redistribution, Arrangement, BlockPartition, RedistCostModel,
    RedistributionPlan,
};

use crate::fmt::TableBuilder;

/// Figure 2: recursive coordinate bisection maps a 2-D point cloud onto the
/// one-dimensional list. Rendered as an ASCII grid where each cell shows
/// which quarter of the 1-D list its vertex landed in — contiguous list
/// ranges must form spatially compact regions.
pub fn fig2() -> String {
    let nx = 16usize;
    let ny = 8usize;
    let mesh = meshgen::triangulated_grid(nx, ny, 0.0, 1);
    let ordering = compute_ordering(&mesh, OrderingMethod::Rcb);
    let n = mesh.num_vertices();
    let quarter = |v: usize| 4 * ordering.position_of(v) / n;

    let mut out = String::new();
    out.push_str("== Figure 2: RCB maps the plane onto the 1-D list ==\n");
    out.push_str("Each cell = one mesh vertex; digit = quarter of the 1-D list (0..3).\n");
    out.push_str("Contiguous list ranges form spatially compact regions:\n\n");
    for y in (0..ny).rev() {
        for x in 0..nx {
            let v = y * nx + x;
            out.push_str(&format!("{}", quarter(v)));
        }
        out.push('\n');
    }
    // Quantify: average edge span under RCB vs natural.
    let span_rcb = metrics::average_edge_span(&mesh, &ordering);
    let natural = stance::locality::Ordering::identity(n);
    let span_nat = metrics::average_edge_span(&mesh, &natural);
    out.push_str(&format!(
        "\naverage |T(u)-T(v)| over edges: rcb = {span_rcb:.2}, row-major = {span_nat:.2}\n"
    ));
    out
}

/// Figure 3: the replicated interval translation table for three processors
/// holding [0,51), [51,120), [120,200) — the paper's example — plus sample
/// dereferences.
pub fn fig3() -> String {
    let part = BlockPartition::from_sizes(&[51, 69, 80]);
    let table = IntervalTable::new(part);
    let mut out = TableBuilder::new(
        "Figure 3: replicated interval translation table (3 processors, 200 elements)",
        &["Processor", "First", "Last"],
    );
    for proc in 0..3 {
        let iv = table.partition().interval_of(proc);
        out.row(vec![
            format!("P{proc}"),
            iv.start.to_string(),
            (iv.end - 1).to_string(),
        ]);
    }
    let mut s = out.render();
    s.push_str("\nDereference examples (global -> processor, local):\n");
    for g in [0usize, 50, 51, 119, 120, 199] {
        let (p, l) = table.locate(g);
        s.push_str(&format!("  {g:>3} -> (P{p}, {l})\n"));
    }
    s.push_str(&format!(
        "\nreplicated memory: {} bytes (interval table) vs {} bytes (dense table)\n",
        table.memory_bytes(),
        200 * 8
    ));
    s
}

/// Figure 4: schedule_sort1 mechanics on a small mesh: the send lists and
/// permutation (receive) segments per processor, shown sorted as the
/// algorithm leaves them.
pub fn fig4() -> String {
    // A 3×3 triangulated grid over 3 processors gives every rank both sides
    // of the protocol.
    let mesh = meshgen::triangulated_grid(3, 3, 0.0, 2);
    let part = BlockPartition::uniform(9, 3);
    let mut out = String::new();
    out.push_str("== Figure 4: schedule_sort1 on a 9-vertex mesh, 3 processors ==\n");
    for rank in 0..3 {
        let iv = part.interval_of(rank);
        let adj = LocalAdjacency::extract(&mesh, &part, rank);
        let (schedule, _) = build_schedule_symmetric(&part, &adj, rank, ScheduleStrategy::Sort1);
        out.push_str(&format!(
            "\nProcessor {rank} owns globals [{}, {}):\n",
            iv.start, iv.end
        ));
        for (peer, locals) in schedule.sends() {
            let globals: Vec<usize> = locals.iter().map(|&l| l as usize + iv.start).collect();
            out.push_str(&format!(
                "  send list  -> P{peer}: locals {locals:?} (globals {globals:?})\n"
            ));
        }
        for (peer, globals) in schedule.recvs() {
            let slots: Vec<u32> = globals
                .iter()
                .map(|&g| schedule.ghost_slot(g).expect("scheduled"))
                .collect();
            out.push_str(&format!(
                "  perm list  <- P{peer}: globals {globals:?} -> ghost slots {slots:?}\n"
            ));
        }
        out.push_str(&format!(
            "  local buffer = [{} local | {} off-processor]\n",
            iv.len(),
            schedule.num_ghosts()
        ));
    }
    out.push_str(
        "\nEach segment is sorted by the sender's local reference, so both sides\n\
         agree on message order without communicating (the §3.2 symmetry trick).\n",
    );
    out
}

/// Figure 5: the repartitioning example — 100 elements, capabilities
/// (.27,.18,.34,.07,.14) adapting to (.10,.13,.29,.24,.24); the identity
/// arrangement vs (P0,P3,P1,P2,P4) vs what MCR finds.
pub fn fig5() -> String {
    let old = BlockPartition::from_weights(
        100,
        &[0.27, 0.18, 0.34, 0.07, 0.14],
        Arrangement::identity(5),
    );
    let new_w = [0.10, 0.13, 0.29, 0.24, 0.24];
    let same = BlockPartition::from_weights(100, &new_w, Arrangement::identity(5));
    let rearranged =
        BlockPartition::from_weights(100, &new_w, Arrangement::new(vec![0, 3, 1, 2, 4]));
    let mcr = minimize_cost_redistribution(&old, &new_w, &RedistCostModel::ethernet_f64());

    let mut out = TableBuilder::new(
        "Figure 5: arrangements for repartitioning 100 elements over 5 processors",
        &["Arrangement", "Overlap", "Moved", "Messages", "Paper"],
    );
    for (name, part, paper) in [
        ("(P0,P1,P2,P3,P4)", &same, "29 overlap, 5 msgs"),
        ("(P0,P3,P1,P2,P4)", &rearranged, "65 overlap, 3 msgs"),
        ("MCR result", &mcr.partition, "greedy, Fig. 6"),
    ] {
        let plan = RedistributionPlan::between(&old, part);
        out.row(vec![
            name.to_string(),
            plan.elements_kept().to_string(),
            plan.elements_moved().to_string(),
            plan.num_messages().to_string(),
            paper.to_string(),
        ]);
    }
    let mut s = out.render();
    s.push_str(&format!("\nMCR chose arrangement {}\n", mcr.arrangement));
    s.push_str(
        "(Exact overlaps differ from the paper by a couple of elements because we\n\
         apportion blocks by largest remainder; the 2x overlap improvement and the\n\
         message reduction are the reproduced effect.)\n",
    );
    s
}

/// Figure 9: statistics of the substitute mesh, plus ordering-quality
/// comparison across every Phase A method (this doubles as the Phase A
/// ablation).
pub fn fig9(mesh: &Graph) -> String {
    let mut s = String::new();
    s.push_str("== Figure 9: the unstructured mesh (synthetic substitute) ==\n");
    s.push_str(&format!(
        "vertices = {}, edges = {}, avg degree = {:.2}, connected = {}\n\n",
        mesh.num_vertices(),
        mesh.num_edges(),
        2.0 * mesh.num_edges() as f64 / mesh.num_vertices() as f64,
        mesh.is_connected()
    ));
    let mut table = TableBuilder::new(
        "Ordering quality at p = 5 (equal blocks)",
        &[
            "Method",
            "Avg edge span",
            "Bandwidth",
            "Edge cut",
            "Boundary verts",
            "Comm volume",
        ],
    );
    for method in OrderingMethod::ALL {
        let ordering = compute_ordering(mesh, method);
        let q = metrics::quality_report(mesh, &ordering, 5);
        table.row(vec![
            method.name().to_string(),
            format!("{:.1}", q.average_edge_span),
            q.bandwidth.to_string(),
            q.edge_cut.to_string(),
            q.boundary_vertices.to_string(),
            q.total_comm_volume.to_string(),
        ]);
    }
    s.push_str(&table.render());
    s.push_str("\n(The paper used RSB indexing [19]; lower cut/volume = less gather traffic.)\n");
    s
}
