//! Split-phase-gather micro-harness: the measurements behind
//! `bench_overlap` and the `results/BENCH_overlap.json` perf-trajectory
//! entry.
//!
//! The question this answers: on the native backend, what does posting
//! the ghost exchange and sweeping the interior while bytes are in flight
//! buy over the synchronous gather-then-sweep order? The workload is a
//! deliberately **boundary-heavy** paper-scale mesh — a wide, shallow
//! triangulated grid whose 1-D block partition cuts across whole
//! 1000-vertex rows, so each rank's ghost traffic is large relative to
//! its sweep (the regime where latency hiding matters; on a deep, narrow
//! mesh the gather is already negligible and overlap has nothing to
//! hide).
//!
//! Methodology, recorded in the JSON: both flavours run the identical
//! mesh, partition, schedule and kernel in the same process; per-iteration
//! wall seconds are the slowest rank's, the median over `samples`
//! repetitions, warm-up excluded. The `speedup` field is
//! synchronous ÷ split-phase from the *same run*, so host speed divides
//! out — but **overlap needs real cores**: on a single-vCPU host the
//! interior sweep and the peer's send compete for the same CPU and the
//! ratio sits near 1.0 by construction. `host_threads` says which regime
//! produced the numbers; the CI perf job regenerates this file on a
//! multi-core runner. Thread counts below 4 report the same measurement
//! under `ratio` instead of `speedup`, keeping them out of the CI
//! regression gate (at 1–2 ranks there is little communication to hide
//! and the gate would track noise).

use std::time::Instant;

use stance::executor::{ComputeCostModel, LoopRunner, RelaxationKernel};
use stance::inspector::{build_schedule_symmetric, LocalAdjacency, ScheduleStrategy};
use stance::locality::meshgen;
use stance::prelude::*;
use stance_native::NativeCluster;

/// The boundary-heavy paper-scale bench mesh: 30k vertices as a 1000-wide
/// strip, so every 1-D block cut severs ~1000 edges and each rank's ghost
/// region is a large fraction of its block.
pub fn overlap_mesh() -> Graph {
    meshgen::triangulated_grid(1000, 30, 0.3, 17)
}

/// Thread counts the overlap trajectory entry sweeps.
pub const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Runs `iters` gather + relaxation-sweep iterations over `mesh`, block
/// partitioned across `threads` native ranks, with the synchronous
/// (`overlap = false`) or split-phase (`overlap = true`) gather, and
/// returns the measured wall-clock seconds **per iteration** (slowest
/// rank, excluding setup and warm-up).
pub fn time_sweep_gather(mesh: &Graph, threads: usize, iters: usize, overlap: bool) -> f64 {
    let n = mesh.num_vertices();
    let part = BlockPartition::uniform(n, threads);
    let report = NativeCluster::new(threads).run(|comm| {
        let rank = comm.rank();
        let adj = LocalAdjacency::extract(mesh, &part, rank);
        let (sched, _) = build_schedule_symmetric(&part, &adj, rank, ScheduleStrategy::Sort2);
        let mut runner = LoopRunner::new(sched, &adj, ComputeCostModel::zero(), RelaxationKernel)
            .with_overlap(overlap);
        let iv = part.interval_of(rank);
        let mut values = runner.make_values(iv.iter().map(|g| (g as f64).sin()).collect());

        // Warm-up: mailbox deques, recycled buffers and the request pool
        // reach steady state.
        runner.run(comm, &mut values, 3);
        comm.barrier();
        let t0 = Instant::now();
        runner.run(comm, &mut values, iters);
        let elapsed = t0.elapsed().as_secs_f64();
        comm.barrier();
        elapsed / iters as f64
    });
    report.into_results().into_iter().fold(0.0, f64::max)
}

/// One virtual-time iteration (seconds) of the gather + sweep loop on the
/// **simulator's** paper cluster — SUN4-class compute, 10 Mbit Ethernet
/// message costs — with the synchronous or split-phase gather.
/// Deterministic: depends only on the cost model, never on the host, so
/// it is the reproducible half of the overlap story (the modelled
/// latency-hiding the executor was built for), alongside the
/// host-dependent native wall clock.
pub fn modelled_secs_per_iter(mesh: &Graph, ranks: usize, iters: usize, overlap: bool) -> f64 {
    let n = mesh.num_vertices();
    let part = BlockPartition::uniform(n, ranks);
    let spec = ClusterSpec::paper_cluster(ranks);
    let report = stance::sim::Cluster::new(spec).run(|env| {
        let rank = env.rank();
        let adj = LocalAdjacency::extract(mesh, &part, rank);
        let (sched, _) = build_schedule_symmetric(&part, &adj, rank, ScheduleStrategy::Sort2);
        let mut runner = LoopRunner::new(sched, &adj, ComputeCostModel::sun4(), RelaxationKernel)
            .with_overlap(overlap);
        let iv = part.interval_of(rank);
        let mut values = runner.make_values(iv.iter().map(|g| (g as f64).sin()).collect());
        runner.run(env, &mut values, iters);
        env.now().as_secs()
    });
    report.into_results().into_iter().fold(0.0, f64::max) / iters as f64
}

/// Runs the synchronous-vs-split-phase comparison across
/// [`THREAD_COUNTS`] and renders the `BENCH_overlap.json` perf-trajectory
/// entry.
///
/// Sampling is **order-balanced**: each repetition times both flavours
/// back to back, alternating which goes first, and the medians are taken
/// per flavour. Batching all of one flavour before the other lets any
/// drift in host performance (CPU-frequency ramps, noisy neighbours on a
/// shared runner) masquerade as a flavour difference of ±20% — observed,
/// which is why the harness insists on interleaving.
pub fn report_json() -> String {
    let reps = crate::sample_count().clamp(3, 9);
    let iters = 30;
    let mesh = overlap_mesh();
    let n = mesh.num_vertices();

    let host_threads = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let mut lines = vec![
        "{".to_string(),
        "  \"bench\": \"overlap\",".to_string(),
        format!(
            "  \"workload\": {{ \"vertices\": {n}, \"mesh\": \"1000x30 strip (boundary-heavy)\", \"kernel\": \"relaxation\", \"iters_per_sample\": {iters}, \"samples\": {reps}, \"host_threads\": {host_threads} }},"
        ),
        "  \"methodology\": \"native backend; per-iteration wall seconds = slowest rank, median over order-balanced interleaved samples (each repetition times sync and split back to back, alternating which runs first), warm-up excluded; speedup = synchronous / split-phase on the same host; real overlap needs real cores — entries measured with host_threads < threads mostly reflect reduced blocking overhead, so regenerate on a multi-core host (the CI perf job does) for the scaling story; thread counts < 4 report 'ratio' instead of 'speedup' to stay out of the CI regression gate; 'modelled_*' entries are the deterministic simulator (SUN4 compute + 10 Mbit Ethernet cost model), host-independent\",".to_string(),
    ];
    let mut entries: Vec<String> = THREAD_COUNTS
        .iter()
        .map(|&t| {
            let mut sync = Vec::with_capacity(reps);
            let mut split = Vec::with_capacity(reps);
            for i in 0..reps {
                if i % 2 == 0 {
                    sync.push(time_sweep_gather(&mesh, t, iters, false));
                    split.push(time_sweep_gather(&mesh, t, iters, true));
                } else {
                    split.push(time_sweep_gather(&mesh, t, iters, true));
                    sync.push(time_sweep_gather(&mesh, t, iters, false));
                }
            }
            let median = |mut v: Vec<f64>| {
                v.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
                v[v.len() / 2]
            };
            let (sync, split) = (median(sync), median(split));
            let key = if t >= 4 { "speedup" } else { "ratio" };
            format!(
                "  \"threads_{t}\": {{ \"sync_secs_per_iter\": {:.3e}, \"split_secs_per_iter\": {:.3e}, \"{key}\": {:.2} }}",
                sync,
                split,
                sync / split
            )
        })
        .collect();
    // The deterministic, host-independent half: modelled virtual time on
    // the paper's Ethernet cluster, where message latency is real and the
    // split phase hides it behind the interior sweep.
    for ranks in [4usize, 8] {
        let sync = modelled_secs_per_iter(&mesh, ranks, 10, false);
        let split = modelled_secs_per_iter(&mesh, ranks, 10, true);
        entries.push(format!(
            "  \"modelled_ethernet_ranks_{ranks}\": {{ \"sync_secs_per_iter\": {:.3e}, \"split_secs_per_iter\": {:.3e}, \"modelled_speedup\": {:.2} }}",
            sync,
            split,
            sync / split
        ));
    }
    lines.push(entries.join(",\n"));
    lines.push("}".to_string());
    lines.join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use stance::executor::sequential_relaxation;

    /// The bench workload itself must be correct: both gather flavours
    /// match the sequential reference bitwise at any thread count (a
    /// mis-timed bench is noise; a wrong one is a lie).
    #[test]
    fn bench_workload_matches_sequential_both_flavours() {
        let mesh = meshgen::triangulated_grid(40, 6, 0.3, 17);
        let n = mesh.num_vertices();
        let iters = 7;
        let mut expected: Vec<f64> = (0..n).map(|g| (g as f64).sin()).collect();
        sequential_relaxation(&mesh, &mut expected, iters);

        for overlap in [false, true] {
            let part = BlockPartition::uniform(n, 3);
            let report = NativeCluster::new(3).run(|comm| {
                let rank = comm.rank();
                let adj = LocalAdjacency::extract(&mesh, &part, rank);
                let (sched, _) =
                    build_schedule_symmetric(&part, &adj, rank, ScheduleStrategy::Sort2);
                let mut runner =
                    LoopRunner::new(sched, &adj, ComputeCostModel::zero(), RelaxationKernel)
                        .with_overlap(overlap);
                let iv = part.interval_of(rank);
                let mut values = runner.make_values(iv.iter().map(|g| (g as f64).sin()).collect());
                runner.run(comm, &mut values, iters);
                values.local().to_vec()
            });
            let got = stance::reassemble(&part, report.into_results());
            assert_eq!(got, expected, "overlap = {overlap} diverged");
        }
    }

    /// The bench mesh is actually boundary-heavy: at 4 ranks, a
    /// substantial fraction of each middle rank's vertices are boundary.
    #[test]
    fn overlap_mesh_is_boundary_heavy() {
        let mesh = overlap_mesh();
        let part = BlockPartition::uniform(mesh.num_vertices(), 4);
        let adj = LocalAdjacency::extract(&mesh, &part, 1);
        let (sched, _) = build_schedule_symmetric(&part, &adj, 1, ScheduleStrategy::Sort2);
        let tadj = sched.translate_adjacency(&adj);
        let boundary_fraction = tadj.num_boundary() as f64 / tadj.len() as f64;
        assert!(
            boundary_fraction > 0.2,
            "bench mesh is not boundary-heavy: {boundary_fraction:.2}"
        );
    }

    /// The deterministic half of the story: on the modelled Ethernet
    /// cluster the split phase must actually hide communication — virtual
    /// time strictly improves on the boundary-heavy mesh — and be exactly
    /// reproducible run to run.
    #[test]
    fn modelled_overlap_wins_and_is_deterministic() {
        let mesh = meshgen::triangulated_grid(120, 10, 0.3, 17);
        let sync = modelled_secs_per_iter(&mesh, 4, 5, false);
        let split = modelled_secs_per_iter(&mesh, 4, 5, true);
        assert!(
            split < sync,
            "modelled split-phase ({split}) must beat synchronous ({sync})"
        );
        assert_eq!(
            split,
            modelled_secs_per_iter(&mesh, 4, 5, true),
            "modelled timing must be deterministic"
        );
    }

    #[test]
    fn timing_is_positive_for_both_flavours() {
        let mesh = meshgen::triangulated_grid(30, 4, 0.2, 1);
        assert!(time_sweep_gather(&mesh, 2, 2, false) > 0.0);
        assert!(time_sweep_gather(&mesh, 2, 2, true) > 0.0);
    }
}
