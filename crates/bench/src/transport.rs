//! Transport micro-harness: the measurements behind `bench_transport` and
//! the `results/BENCH_transport.json` perf-trajectory entry.
//!
//! Two code paths are compared:
//!
//! * **legacy** — a frozen copy of the pre-bulk-codec transport: one
//!   `Vec<u8>` allocated per send, per-element `write_bytes`, receive into
//!   an intermediate `Vec<E>` (`Element::unpack`) then a second copy into
//!   the ghost region;
//! * **bulk** — the shipped path: recycled [`CommBuffers`] staging,
//!   [`Element::pack_into`] bulk packing, and [`Element::unpack_into`]
//!   decoding straight into the destination slice.
//!
//! Both run on the same **paper-scale** workload: a 30k-vertex perfect
//! matching split across two ranks, so every vertex is a boundary vertex
//! and each gather moves one 15k-element segment per direction — the
//! communication-dominated regime the paper's Tables 4–5 iterate
//! thousands of times. Wire format and virtual-time charging are identical
//! between the two paths (only wall clock differs), which
//! `legacy_path_is_bitwise_identical` pins.

use std::time::Instant;

use stance::executor::{gather, scatter_add, CommBuffers, ComputeCostModel, GhostedArray};
use stance::inspector::{build_schedule_symmetric, CommSchedule, LocalAdjacency};
use stance::prelude::*;

/// Half the matching workload: the paper's 30k-vertex scale, split 2 ways.
pub const PAPER_N_HALF: usize = 15_000;

/// Application-range tag for the legacy replay (distinct from the shipped
/// primitives' reserved tags).
const TAG_LEGACY: Tag = Tag(0x7001);

/// A perfect matching between `[0, n_half)` and `[n_half, 2·n_half)`:
/// under a uniform 2-way block partition every vertex's single neighbor is
/// remote, so gathers move whole blocks and the transport dominates.
pub fn matching_graph(n_half: usize) -> Graph {
    let n = 2 * n_half;
    let edges: Vec<(u32, u32)> = (0..n_half as u32).map(|i| (i, i + n_half as u32)).collect();
    let coords = (0..n).map(|i| [i as f64, 0.0, 0.0]).collect();
    Graph::from_edges(n, &edges, coords, 2)
}

/// The pre-bulk-codec gather, kept verbatim as the measured baseline: a
/// fresh staging `Vec` per send, per-element encode, and a received
/// intermediate `Vec<E>` copied into the ghost region.
pub fn gather_legacy<E: Element>(
    env: &mut Env,
    schedule: &CommSchedule,
    values: &mut GhostedArray<E>,
    cost: &ComputeCostModel,
) {
    for (peer, locals) in schedule.sends() {
        env.compute(cost.pack_work(locals.len()));
        let mut bytes = Vec::with_capacity(locals.len() * E::SIZE_BYTES);
        {
            let local = values.local();
            for &l in locals {
                local[l as usize].write_bytes(&mut bytes);
            }
        }
        env.send(*peer, TAG_LEGACY, Payload::from_bytes(bytes));
    }
    let mut slot = 0usize;
    for (peer, globals) in schedule.recvs() {
        let bytes = env.recv(*peer, TAG_LEGACY).into_bytes();
        // Per-element decode into an intermediate Vec<E> — what
        // `Element::unpack` did before it grew the bulk override.
        let packet: Vec<E> = bytes
            .chunks_exact(E::SIZE_BYTES)
            .map(E::read_bytes)
            .collect();
        assert_eq!(packet.len(), globals.len(), "legacy gather packet length");
        env.compute(cost.pack_work(packet.len()));
        values.ghosts_mut()[slot..slot + packet.len()].copy_from_slice(&packet);
        slot += packet.len();
    }
}

/// The pre-bulk-codec scatter-add baseline (fresh `Vec` staging, received
/// intermediate `Vec<E>`).
pub fn scatter_add_legacy<E: Field>(
    env: &mut Env,
    schedule: &CommSchedule,
    values: &mut GhostedArray<E>,
    cost: &ComputeCostModel,
) {
    let mut slot = 0usize;
    for (peer, globals) in schedule.recvs() {
        let packet = &values.ghosts()[slot..slot + globals.len()];
        slot += globals.len();
        env.compute(cost.pack_work(packet.len()));
        let mut bytes = Vec::with_capacity(packet.len() * E::SIZE_BYTES);
        for v in packet {
            v.write_bytes(&mut bytes);
        }
        env.send(*peer, TAG_LEGACY, Payload::from_bytes(bytes));
    }
    for (peer, locals) in schedule.sends() {
        let bytes = env.recv(*peer, TAG_LEGACY).into_bytes();
        let packet: Vec<E> = bytes
            .chunks_exact(E::SIZE_BYTES)
            .map(E::read_bytes)
            .collect();
        assert_eq!(packet.len(), locals.len(), "legacy scatter packet length");
        env.compute(cost.pack_work(packet.len()));
        let local = values.local_mut();
        for (&l, &v) in locals.iter().zip(&packet) {
            local[l as usize] = local[l as usize].add(v);
        }
    }
}

/// Which transport implementation a timing run drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Path {
    /// The frozen pre-PR baseline.
    Legacy,
    /// The shipped zero-copy path.
    Bulk,
}

/// Which primitive a timing run drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Primitive {
    /// Owner → ghost.
    Gather,
    /// Ghost → owner, accumulating.
    ScatterAdd,
}

/// Runs `iters` iterations of one primitive over the matching workload on
/// a 2-rank zero-cost cluster and returns the measured wall-clock seconds
/// **per iteration** (max over ranks), excluding setup and warm-up.
pub fn time_primitive<E: Field>(
    graph: &Graph,
    iters: usize,
    primitive: Primitive,
    path: Path,
    init: fn(usize) -> E,
) -> f64 {
    let n = graph.num_vertices();
    let part = BlockPartition::uniform(n, 2);
    let spec = ClusterSpec::uniform(2).with_network(NetworkSpec::zero_cost());
    let report = Cluster::new(spec).run(|env| {
        let rank = env.rank();
        let adj = LocalAdjacency::extract(graph, &part, rank);
        let (sched, _) = build_schedule_symmetric(&part, &adj, rank, ScheduleStrategy::Sort2);
        let iv = part.interval_of(rank);
        let mut values =
            GhostedArray::from_local(iv.iter().map(init).collect(), sched.num_ghosts() as usize);
        let mut bufs = CommBuffers::for_schedule(&sched);
        let cost = ComputeCostModel::zero();
        let step = |env: &mut Env, values: &mut GhostedArray<E>, bufs: &mut CommBuffers<E>| match (
            primitive, path,
        ) {
            (Primitive::Gather, Path::Legacy) => gather_legacy(env, &sched, values, &cost),
            (Primitive::Gather, Path::Bulk) => gather(env, &sched, values, &cost, bufs),
            (Primitive::ScatterAdd, Path::Legacy) => scatter_add_legacy(env, &sched, values, &cost),
            (Primitive::ScatterAdd, Path::Bulk) => scatter_add(env, &sched, values, &cost, bufs),
        };
        // Warm-up: buffer capacities and mailbox deques reach steady state.
        for _ in 0..4 {
            step(env, &mut values, &mut bufs);
        }
        env.barrier();
        let t0 = Instant::now();
        for _ in 0..iters {
            step(env, &mut values, &mut bufs);
        }
        let elapsed = t0.elapsed().as_secs_f64();
        env.barrier();
        elapsed / iters as f64
    });
    report.into_results().into_iter().fold(0.0, f64::max)
}

/// Single-threaded codec timings (seconds per op over `values`): legacy
/// pack = fresh `Vec` + `write_bytes` loop; bulk pack = recycled buffer +
/// `pack_into`; legacy unpack = `Element::unpack` + copy; bulk unpack =
/// `unpack_into` straight into the destination.
pub fn time_codecs<E: Element>(values: &[E], reps: usize) -> CodecTimings {
    let iters = 32;
    let mut wire = Vec::new();
    E::pack_into(values, &mut wire);

    let legacy_pack = crate::median_secs(reps, || {
        let t0 = Instant::now();
        for _ in 0..iters {
            let mut bytes = Vec::with_capacity(values.len() * E::SIZE_BYTES);
            for v in values {
                v.write_bytes(&mut bytes);
            }
            std::hint::black_box(&bytes);
        }
        t0.elapsed().as_secs_f64() / iters as f64
    });
    let mut reused = Vec::new();
    let bulk_pack = crate::median_secs(reps, || {
        let t0 = Instant::now();
        for _ in 0..iters {
            reused.clear();
            E::pack_into(values, &mut reused);
            std::hint::black_box(&reused);
        }
        t0.elapsed().as_secs_f64() / iters as f64
    });
    let mut dst = vec![E::zero(); values.len()];
    let legacy_unpack = crate::median_secs(reps, || {
        let t0 = Instant::now();
        for _ in 0..iters {
            // What `Element::unpack` + `copy_from_slice` did: decode into
            // a fresh intermediate `Vec<E>`, then copy to the destination.
            let packet: Vec<E> = wire
                .chunks_exact(E::SIZE_BYTES)
                .map(E::read_bytes)
                .collect();
            dst.copy_from_slice(&packet);
            std::hint::black_box(&dst);
        }
        t0.elapsed().as_secs_f64() / iters as f64
    });
    let bulk_unpack = crate::median_secs(reps, || {
        let t0 = Instant::now();
        for _ in 0..iters {
            E::unpack_into(&wire, &mut dst);
            std::hint::black_box(&dst);
        }
        t0.elapsed().as_secs_f64() / iters as f64
    });
    CodecTimings {
        bytes: wire.len(),
        legacy_pack,
        bulk_pack,
        legacy_unpack,
        bulk_unpack,
    }
}

/// Seconds per pack/unpack of one slice, both paths.
#[derive(Debug, Clone, Copy)]
pub struct CodecTimings {
    /// Wire bytes moved per op.
    pub bytes: usize,
    /// Fresh-`Vec` + per-element pack.
    pub legacy_pack: f64,
    /// Recycled-buffer bulk pack.
    pub bulk_pack: f64,
    /// Intermediate-`Vec` unpack + copy.
    pub legacy_unpack: f64,
    /// In-place bulk unpack.
    pub bulk_unpack: f64,
}

fn json_pair(name: &str, legacy: f64, bulk: f64) -> String {
    format!(
        "  \"{name}\": {{ \"legacy_ns\": {:.0}, \"bulk_ns\": {:.0}, \"speedup\": {:.2} }}",
        legacy * 1e9,
        bulk * 1e9,
        legacy / bulk
    )
}

/// Runs the full transport comparison and renders the
/// `BENCH_transport.json` perf-trajectory entry. The `[f64; 4]` gather
/// speedup is the PR's headline number (target ≥ 1.5×).
pub fn report_json() -> String {
    let reps = crate::sample_count().clamp(3, 9);
    let iters = 40;
    let g = matching_graph(PAPER_N_HALF);

    let gather_f64 = |path| time_primitive::<f64>(&g, iters, Primitive::Gather, path, |i| i as f64);
    let gather_f64x4 = |path| {
        time_primitive::<[f64; 4]>(&g, iters, Primitive::Gather, path, |i| {
            [i as f64, -(i as f64), 0.5, 1.0]
        })
    };
    let scatter_f64 =
        |path| time_primitive::<f64>(&g, iters, Primitive::ScatterAdd, path, |i| i as f64);

    let g_f64_legacy = crate::median_secs(reps, || gather_f64(Path::Legacy));
    let g_f64_bulk = crate::median_secs(reps, || gather_f64(Path::Bulk));
    let g_f64x4_legacy = crate::median_secs(reps, || gather_f64x4(Path::Legacy));
    let g_f64x4_bulk = crate::median_secs(reps, || gather_f64x4(Path::Bulk));
    let s_f64_legacy = crate::median_secs(reps, || scatter_f64(Path::Legacy));
    let s_f64_bulk = crate::median_secs(reps, || scatter_f64(Path::Bulk));

    let codec_f64: Vec<f64> = (0..200_000).map(|i| i as f64).collect();
    let codec_f64x4: Vec<[f64; 4]> = (0..50_000).map(|i| [i as f64, 1.0, -1.0, 0.5]).collect();
    let c_f64 = time_codecs(&codec_f64, reps);
    let c_f64x4 = time_codecs(&codec_f64x4, reps);

    let mut lines = vec![
        "{".to_string(),
        "  \"bench\": \"transport\",".to_string(),
        format!(
            "  \"workload\": {{ \"vertices\": {}, \"ranks\": 2, \"ghosts_per_rank\": {}, \"iters_per_sample\": {iters}, \"samples\": {reps} }},",
            2 * PAPER_N_HALF,
            PAPER_N_HALF
        ),
    ];
    let pairs = [
        json_pair("gather_f64", g_f64_legacy, g_f64_bulk),
        json_pair("gather_f64x4", g_f64x4_legacy, g_f64x4_bulk),
        json_pair("scatter_add_f64", s_f64_legacy, s_f64_bulk),
        json_pair("pack_f64", c_f64.legacy_pack, c_f64.bulk_pack),
        json_pair("unpack_f64", c_f64.legacy_unpack, c_f64.bulk_unpack),
        json_pair("pack_f64x4", c_f64x4.legacy_pack, c_f64x4.bulk_pack),
        json_pair("unpack_f64x4", c_f64x4.legacy_unpack, c_f64x4.bulk_unpack),
    ];
    lines.push(pairs.join(",\n"));
    lines.push("}".to_string());
    lines.join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The legacy replay and the shipped path must produce identical ghost
    /// regions and identical virtual clocks — the optimization moves wall
    /// clock only.
    #[test]
    fn legacy_path_is_bitwise_identical() {
        let g = matching_graph(80);
        let part = BlockPartition::uniform(160, 2);
        let spec = ClusterSpec::uniform(2).with_network(NetworkSpec::zero_cost());
        let report = Cluster::new(spec).run(|env| {
            let rank = env.rank();
            let adj = LocalAdjacency::extract(&g, &part, rank);
            let (sched, _) = build_schedule_symmetric(&part, &adj, rank, ScheduleStrategy::Sort2);
            let iv = part.interval_of(rank);
            let init: Vec<[f64; 2]> = iv.iter().map(|i| [(i as f64).sin(), -(i as f64)]).collect();
            let ghosts = sched.num_ghosts() as usize;
            let mut a = GhostedArray::from_local(init.clone(), ghosts);
            let mut b = GhostedArray::from_local(init, ghosts);
            let mut bufs = CommBuffers::for_schedule(&sched);
            gather_legacy(env, &sched, &mut a, &ComputeCostModel::sun4());
            gather(env, &sched, &mut b, &ComputeCostModel::sun4(), &mut bufs);
            assert_eq!(a, b, "bulk gather diverged from the legacy path");
            scatter_add_legacy(env, &sched, &mut a, &ComputeCostModel::sun4());
            scatter_add(env, &sched, &mut b, &ComputeCostModel::sun4(), &mut bufs);
            assert_eq!(a, b, "bulk scatter diverged from the legacy path");
            env.now().as_secs()
        });
        assert!(report.makespan() > 0.0);
    }

    #[test]
    fn matching_graph_is_all_boundary() {
        let g = matching_graph(10);
        assert_eq!(g.num_vertices(), 20);
        for v in 0..10 {
            assert_eq!(g.neighbors(v), &[(v + 10) as u32]);
        }
    }

    #[test]
    fn report_json_is_well_formed() {
        // Tiny run just to exercise the rendering.
        let g = matching_graph(50);
        let t = time_primitive::<f64>(&g, 2, Primitive::Gather, Path::Bulk, |i| i as f64);
        assert!(t >= 0.0);
        let line = json_pair("x", 2.0e-6, 1.0e-6);
        assert!(line.contains("\"speedup\": 2.00"), "{line}");
    }
}
