//! Native-backend micro-harness: the measurements behind `bench_native`
//! and the `results/BENCH_native.json` perf-trajectory entry.
//!
//! This is the perf trajectory's first **real-hardware** datapoint: where
//! `BENCH_transport.json` times transport code paths inside the
//! simulator's threads, this harness runs the full executor iteration —
//! ghost gather + relaxation sweep — on the native thread-pool backend
//! (`stance-native`), with real ranks on real OS threads and nothing but
//! the wall clock. The workload is a paper-scale mesh (≈30k vertices,
//! the size behind Tables 4–5) block-partitioned across 1/2/4/8 threads.
//!
//! Throughput is reported as vertex-updates per second (owned vertices ×
//! iterations / wall seconds, cluster-wide), plus the speedup over the
//! single-thread run. On a many-core host the speedup curve is the
//! backend's scaling story; on a constrained host (CI runners are often
//! 1–2 vCPUs — the JSON records `host_threads`) the absolute
//! single-thread throughput is the comparable number.

use std::time::Instant;

use stance::executor::{ComputeCostModel, LoopRunner, RelaxationKernel};
use stance::inspector::{build_schedule_symmetric, LocalAdjacency, ScheduleStrategy};
use stance::locality::meshgen;
use stance::prelude::*;
use stance_native::NativeCluster;

/// The paper-scale bench mesh: a noisy triangulated grid of ≈30k vertices
/// in row-major (naturally local) order.
pub fn bench_mesh() -> Graph {
    meshgen::triangulated_grid(200, 150, 0.3, 11)
}

/// Thread counts the native trajectory entry sweeps.
pub const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Runs `iters` gather + relaxation-sweep iterations over `mesh`, block
/// partitioned across `threads` native ranks, and returns the measured
/// wall-clock seconds **per iteration** (slowest rank, excluding setup and
/// warm-up).
pub fn time_sweep_gather(mesh: &Graph, threads: usize, iters: usize) -> f64 {
    let n = mesh.num_vertices();
    let part = BlockPartition::uniform(n, threads);
    let report = NativeCluster::new(threads).run(|comm| {
        let rank = comm.rank();
        let adj = LocalAdjacency::extract(mesh, &part, rank);
        let (sched, _) = build_schedule_symmetric(&part, &adj, rank, ScheduleStrategy::Sort2);
        let mut runner = LoopRunner::new(sched, &adj, ComputeCostModel::zero(), RelaxationKernel);
        let iv = part.interval_of(rank);
        let mut values = runner.make_values(iv.iter().map(|g| (g as f64).sin()).collect());

        // Warm-up: mailbox deques and recycled buffers reach steady state.
        runner.run(comm, &mut values, 3);
        comm.barrier();
        let t0 = Instant::now();
        runner.run(comm, &mut values, iters);
        let elapsed = t0.elapsed().as_secs_f64();
        comm.barrier();
        elapsed / iters as f64
    });
    report.into_results().into_iter().fold(0.0, f64::max)
}

/// Runs the native sweep+gather measurement across [`THREAD_COUNTS`] and
/// renders the `BENCH_native.json` perf-trajectory entry.
pub fn report_json() -> String {
    let reps = crate::sample_count().clamp(3, 9);
    let iters = 30;
    let mesh = bench_mesh();
    let n = mesh.num_vertices();

    let secs: Vec<f64> = THREAD_COUNTS
        .iter()
        .map(|&t| crate::median_secs(reps, || time_sweep_gather(&mesh, t, iters)))
        .collect();
    let base = secs[0];

    let host_threads = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let mut lines = vec![
        "{".to_string(),
        "  \"bench\": \"native\",".to_string(),
        format!(
            "  \"workload\": {{ \"vertices\": {n}, \"kernel\": \"relaxation\", \"iters_per_sample\": {iters}, \"samples\": {reps}, \"host_threads\": {host_threads} }},"
        ),
    ];
    let entries: Vec<String> = THREAD_COUNTS
        .iter()
        .zip(&secs)
        .map(|(&t, &s)| {
            format!(
                "  \"threads_{t}\": {{ \"secs_per_iter\": {:.3e}, \"vertex_updates_per_sec\": {:.0}, \"speedup_vs_1\": {:.2} }}",
                s,
                n as f64 / s,
                base / s
            )
        })
        .collect();
    lines.push(entries.join(",\n"));
    lines.push("}".to_string());
    lines.join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use stance::executor::sequential_relaxation;

    /// The bench workload itself must be correct: the native sweep+gather
    /// iteration at any thread count matches the sequential reference
    /// bitwise (a mis-timed bench is noise; a wrong one is a lie).
    #[test]
    fn bench_workload_matches_sequential() {
        let mesh = meshgen::triangulated_grid(12, 9, 0.3, 11);
        let n = mesh.num_vertices();
        let iters = 7;
        let mut expected: Vec<f64> = (0..n).map(|g| (g as f64).sin()).collect();
        sequential_relaxation(&mesh, &mut expected, iters);

        let part = BlockPartition::uniform(n, 3);
        let report = NativeCluster::new(3).run(|comm| {
            let rank = comm.rank();
            let adj = LocalAdjacency::extract(&mesh, &part, rank);
            let (sched, _) = build_schedule_symmetric(&part, &adj, rank, ScheduleStrategy::Sort2);
            let mut runner =
                LoopRunner::new(sched, &adj, ComputeCostModel::zero(), RelaxationKernel);
            let iv = part.interval_of(rank);
            let mut values = runner.make_values(iv.iter().map(|g| (g as f64).sin()).collect());
            runner.run(comm, &mut values, iters);
            values.local().to_vec()
        });
        let got = stance::reassemble(&part, report.into_results());
        assert_eq!(got, expected);
    }

    #[test]
    fn timing_is_positive_and_json_well_formed() {
        let mesh = meshgen::triangulated_grid(10, 8, 0.2, 1);
        let t = time_sweep_gather(&mesh, 2, 2);
        assert!(t > 0.0);
    }
}
