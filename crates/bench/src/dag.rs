//! Fused-ghost-exchange micro-harness: the measurements behind
//! `bench_dag` and the `results/BENCH_dag.json` perf-trajectory entry.
//!
//! The question this answers: when a stage graph has several fields whose
//! ghosts are needed at the same exchange point, what does fusing their
//! gathers into **one message per neighbor** buy over sending one message
//! per field? The workload is the same deliberately boundary-heavy
//! paper-scale strip as the overlap bench — a three-field, two-stage
//! graph whose two relaxation stages both read ghosts at the pass start,
//! so the unfused spelling moves exactly twice as many messages as the
//! fused one while the third (inert) field's dirty tracking keeps it out
//! of the exchange entirely.
//!
//! Three measurement families land in the JSON:
//!
//! * `threads_*` — native-backend wall clock per pass, fused vs unfused,
//!   reported under `ratio` (informational: in-process mailboxes make
//!   per-message overhead small, so the host-dependent ratio would gate
//!   noise);
//! * `modelled_ethernet_ranks_*` — deterministic virtual time on the
//!   paper's SUN4/10 Mbit Ethernet cluster, where per-message setup and
//!   latency are real; these carry the gated `speedup` field (fusing must
//!   never lose there, and the number is bit-reproducible, so the CI gate
//!   tracks the exchange plan itself, not runner noise);
//! * `traffic_ranks_*` — exact message/byte counts per pass from the
//!   simulator, the raw fused-vs-unfused traffic story.

use std::time::Instant;

use stance::executor::ComputeCostModel;
use stance::locality::meshgen;
use stance::prelude::*;
use stance_native::NativeCluster;

/// The boundary-heavy paper-scale bench mesh (shared with the overlap
/// bench): 30k vertices as a 1000-wide strip, so every 1-D block cut
/// severs ~1000 edges and ghost traffic is large relative to each sweep.
pub fn dag_mesh() -> Graph {
    meshgen::triangulated_grid(1000, 30, 0.3, 17)
}

/// Rank counts the dag trajectory entry sweeps.
pub const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// The bench graph: two independent relaxation stages whose gathers share
/// the pass-start exchange point, plus an inert field the dirty tracking
/// must keep out of every message.
fn dag_graph(fused: bool) -> StageGraph<f64> {
    StageGraphBuilder::new()
        .field("y")
        .field("z")
        .field("inert")
        .stage("relax_y", RelaxationKernel, "y", "y")
        .stage("relax_z", RelaxationKernel, "z", "z")
        .with_fused_exchange(fused)
        .build()
}

fn init(name: &str, g: usize) -> f64 {
    match name {
        "y" => (g as f64).sin(),
        "z" => (g as f64).cos(),
        _ => g as f64,
    }
}

/// Runs `passes` passes of the three-field graph over `mesh` on `threads`
/// native ranks with the fused (`fused = true`) or per-field
/// (`fused = false`) ghost exchange, and returns the measured wall-clock
/// seconds **per pass** (slowest rank, excluding setup and warm-up).
pub fn time_dag_pass(mesh: &Graph, threads: usize, passes: usize, fused: bool) -> f64 {
    let config = StanceConfig::free().without_load_balancing();
    let report = NativeCluster::new(threads).run(|comm| {
        let mut session = DataflowSession::setup(comm, mesh, dag_graph(fused), init, &config);
        // Warm-up: mailbox deques, recycled gather buffers and the dirty
        // flags reach steady state.
        session.run_block(comm, 3);
        comm.barrier();
        let t0 = Instant::now();
        session.run_block(comm, passes);
        let elapsed = t0.elapsed().as_secs_f64();
        comm.barrier();
        elapsed / passes as f64
    });
    report.into_results().into_iter().fold(0.0, f64::max)
}

/// One virtual-time pass (seconds) of the three-field graph on the
/// **simulator's** paper cluster — SUN4-class compute, 10 Mbit Ethernet
/// message costs — with the fused or per-field exchange. Deterministic:
/// depends only on the cost model, never on the host, so it is the
/// reproducible half of the fusion story (per-message setup and latency
/// paid once per neighbor instead of once per field).
pub fn modelled_secs_per_pass(mesh: &Graph, ranks: usize, passes: usize, fused: bool) -> f64 {
    let config = StanceConfig {
        compute_cost: ComputeCostModel::sun4(),
        ..StanceConfig::free().without_load_balancing()
    };
    let report = stance::sim::Cluster::new(ClusterSpec::paper_cluster(ranks)).run(|env| {
        let mut session = DataflowSession::setup(env, mesh, dag_graph(fused), init, &config);
        session.run_block(env, passes);
        env.now().as_secs()
    });
    report.into_results().into_iter().fold(0.0, f64::max) / passes as f64
}

/// Exact steady-state gather traffic for `passes` passes, summed over all
/// ranks: `(messages, bytes)` from the simulator's per-rank counters,
/// measured after one warm-up pass (the first pass's exchange is
/// identical, but warm-up keeps the contract aligned with the wall-clock
/// measurements). Deterministic.
pub fn gather_traffic(mesh: &Graph, ranks: usize, passes: usize, fused: bool) -> (u64, u64) {
    let config = StanceConfig::free().without_load_balancing();
    let spec = ClusterSpec::uniform(ranks).with_network(NetworkSpec::zero_cost());
    let report = stance::sim::Cluster::new(spec).run(|env| {
        let mut session = DataflowSession::setup(env, mesh, dag_graph(fused), init, &config);
        session.run_block(env, 1);
        let (m0, b0) = (env.stats().messages_sent, env.stats().bytes_sent);
        session.run_block(env, passes);
        (env.stats().messages_sent - m0, env.stats().bytes_sent - b0)
    });
    report
        .into_results()
        .into_iter()
        .fold((0, 0), |(m, b), (dm, db)| (m + dm, b + db))
}

/// Runs the fused-vs-per-field comparison across [`THREAD_COUNTS`] and
/// renders the `BENCH_dag.json` perf-trajectory entry.
///
/// Wall-clock sampling is **order-balanced** like the overlap bench: each
/// repetition times both flavours back to back, alternating which goes
/// first, and the medians are taken per flavour, so host drift cannot
/// masquerade as a flavour difference.
pub fn report_json() -> String {
    let reps = crate::sample_count().clamp(3, 9);
    let passes = 30;
    let mesh = dag_mesh();
    let n = mesh.num_vertices();

    let host_threads = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let mut lines = vec![
        "{".to_string(),
        "  \"bench\": \"dag\",".to_string(),
        format!(
            "  \"workload\": {{ \"vertices\": {n}, \"mesh\": \"1000x30 strip (boundary-heavy)\", \"graph\": \"3 fields / 2 gathered relaxation stages / 1 inert field\", \"passes_per_sample\": {passes}, \"samples\": {reps}, \"host_threads\": {host_threads} }},"
        ),
        "  \"methodology\": \"fused = one gather message per neighbor per pass for all fields read at the exchange point; unfused = one message per field per neighbor; 'threads_*' are native-backend wall seconds per pass (slowest rank, median over order-balanced interleaved samples, warm-up excluded) reported as informational 'ratio' — in-process mailboxes make per-message overhead small and host-dependent; 'modelled_ethernet_ranks_*' are the deterministic simulator on the paper's SUN4 + 10 Mbit Ethernet cost model and carry the gated 'speedup' (unfused / fused virtual time, bit-reproducible, so the CI gate tracks the exchange plan, not runner noise); 'traffic_ranks_*' are exact per-pass message/byte counts from the simulator\",".to_string(),
    ];
    let mut entries: Vec<String> = THREAD_COUNTS
        .iter()
        .map(|&t| {
            let mut unfused = Vec::with_capacity(reps);
            let mut fused = Vec::with_capacity(reps);
            for i in 0..reps {
                if i % 2 == 0 {
                    unfused.push(time_dag_pass(&mesh, t, passes, false));
                    fused.push(time_dag_pass(&mesh, t, passes, true));
                } else {
                    fused.push(time_dag_pass(&mesh, t, passes, true));
                    unfused.push(time_dag_pass(&mesh, t, passes, false));
                }
            }
            let median = |mut v: Vec<f64>| {
                v.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
                v[v.len() / 2]
            };
            let (unfused, fused) = (median(unfused), median(fused));
            format!(
                "  \"threads_{t}\": {{ \"unfused_secs_per_pass\": {:.3e}, \"fused_secs_per_pass\": {:.3e}, \"ratio\": {:.2} }}",
                unfused,
                fused,
                unfused / fused
            )
        })
        .collect();
    // The deterministic, host-independent half: modelled virtual time on
    // the paper's Ethernet cluster, where each message pays real setup
    // and latency and fusing pays them once per neighbor. These carry the
    // gated "speedup" field.
    for ranks in [4usize, 8] {
        let unfused = modelled_secs_per_pass(&mesh, ranks, 10, false);
        let fused = modelled_secs_per_pass(&mesh, ranks, 10, true);
        entries.push(format!(
            "  \"modelled_ethernet_ranks_{ranks}\": {{ \"unfused_secs_per_pass\": {:.3e}, \"fused_secs_per_pass\": {:.3e}, \"speedup\": {:.2} }}",
            unfused,
            fused,
            unfused / fused
        ));
    }
    // Raw traffic: exact counts per pass, the fused-vs-unfused message
    // story with no timing in it at all.
    for ranks in THREAD_COUNTS {
        let traffic_passes = 10;
        let (fm, fb) = gather_traffic(&mesh, ranks, traffic_passes, true);
        let (um, ub) = gather_traffic(&mesh, ranks, traffic_passes, false);
        let reduction = if fm == 0 { 1.0 } else { um as f64 / fm as f64 };
        entries.push(format!(
            "  \"traffic_ranks_{ranks}\": {{ \"fused_messages_per_pass\": {}, \"unfused_messages_per_pass\": {}, \"fused_bytes_per_pass\": {}, \"unfused_bytes_per_pass\": {}, \"message_reduction\": {reduction:.2} }}",
            fm / traffic_passes as u64,
            um / traffic_passes as u64,
            fb / traffic_passes as u64,
            ub / traffic_passes as u64
        ));
    }
    lines.push(entries.join(",\n"));
    lines.push("}".to_string());
    lines.join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use stance::executor::sequential_relaxation;

    /// The bench workload itself must be correct: both exchange flavours
    /// match the sequential reference bitwise on every field (a mis-timed
    /// bench is noise; a wrong one is a lie).
    #[test]
    fn bench_workload_matches_sequential_both_flavours() {
        let mesh = meshgen::triangulated_grid(40, 6, 0.3, 17);
        let n = mesh.num_vertices();
        let passes = 7;
        let mut expected_y: Vec<f64> = (0..n).map(|g| init("y", g)).collect();
        let mut expected_z: Vec<f64> = (0..n).map(|g| init("z", g)).collect();
        sequential_relaxation(&mesh, &mut expected_y, passes);
        sequential_relaxation(&mesh, &mut expected_z, passes);

        for fused in [false, true] {
            let config = StanceConfig::free().without_load_balancing();
            let report = NativeCluster::new(3).run(|comm| {
                let mut s = DataflowSession::setup(comm, &mesh, dag_graph(fused), init, &config);
                s.run_block(comm, passes);
                (
                    s.local("y").to_vec(),
                    s.local("z").to_vec(),
                    s.partition().clone(),
                )
            });
            let results = report.into_results();
            let part = results[0].2.clone();
            let (ys, zs): (Vec<_>, Vec<_>) = results.into_iter().map(|(y, z, _)| (y, z)).unzip();
            assert_eq!(
                stance::reassemble(&part, ys),
                expected_y,
                "fused = {fused}: field y diverged"
            );
            assert_eq!(
                stance::reassemble(&part, zs),
                expected_z,
                "fused = {fused}: field z diverged"
            );
        }
    }

    /// The deterministic half of the story: on the modelled Ethernet
    /// cluster the fused exchange must actually win — per-message setup
    /// and latency are paid once per neighbor instead of once per field —
    /// and be exactly reproducible run to run.
    #[test]
    fn modelled_fusion_wins_and_is_deterministic() {
        let mesh = meshgen::triangulated_grid(120, 10, 0.3, 17);
        let unfused = modelled_secs_per_pass(&mesh, 4, 5, false);
        let fused = modelled_secs_per_pass(&mesh, 4, 5, true);
        assert!(
            fused < unfused,
            "modelled fused exchange ({fused}) must beat per-field ({unfused})"
        );
        assert_eq!(
            fused,
            modelled_secs_per_pass(&mesh, 4, 5, true),
            "modelled timing must be deterministic"
        );
    }

    /// The traffic contract in counter form: with two gathered fields the
    /// per-field spelling moves exactly twice as many messages as the
    /// fused one, and the fused payload is no larger in bytes.
    #[test]
    fn fused_traffic_halves_the_message_count() {
        let mesh = meshgen::triangulated_grid(60, 8, 0.3, 17);
        let passes = 4;
        let (fm, fb) = gather_traffic(&mesh, 4, passes, true);
        let (um, ub) = gather_traffic(&mesh, 4, passes, false);
        assert!(fm > 0, "the bench graph must exchange ghosts");
        assert_eq!(
            um,
            2 * fm,
            "two gathered fields must cost exactly two per-field messages per fused one"
        );
        assert!(
            fb <= ub,
            "fusing must not inflate payload bytes ({fb} vs {ub})"
        );
    }

    #[test]
    fn timing_is_positive_for_both_flavours() {
        let mesh = meshgen::triangulated_grid(30, 4, 0.2, 1);
        assert!(time_dag_pass(&mesh, 2, 2, false) > 0.0);
        assert!(time_dag_pass(&mesh, 2, 2, true) > 0.0);
    }
}
