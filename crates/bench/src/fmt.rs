//! Plain-text table rendering for experiment output.

/// Builds aligned plain-text tables.
#[derive(Debug, Clone)]
pub struct TableBuilder {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TableBuilder {
    /// Starts a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        TableBuilder {
            title: title.into(),
            headers: headers.iter().map(|&s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (cells are stringified by the caller).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:>w$}"));
            }
            line
        };
        out.push_str(&render_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats seconds with sensible precision for the magnitudes in the paper.
pub fn secs(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x < 0.01 {
        format!("{x:.5}")
    } else if x < 1.0 {
        format!("{x:.4}")
    } else {
        format!("{x:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TableBuilder::new("Demo", &["a", "long-header"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["100".into(), "2000".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("long-header"));
        let lines: Vec<&str> = s.lines().collect();
        // Header, rule, two rows, title.
        assert_eq!(lines.len(), 5);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = TableBuilder::new("x", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn secs_precision() {
        assert_eq!(secs(0.0), "0");
        assert_eq!(secs(0.00033), "0.00033");
        assert_eq!(secs(0.247), "0.2470");
        assert_eq!(secs(97.61), "97.61");
    }
}
