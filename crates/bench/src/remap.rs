//! Remap micro-harness: the measurements behind `bench_remap`'s pipeline
//! groups and the `results/BENCH_remap.json` perf-trajectory entry.
//!
//! The paper's whole pitch is *cheap adaptation* — the MCR controller can
//! only remap often if a remap costs little. This harness measures the
//! **end-to-end remap latency** (value redistribution → adjacency move →
//! schedule rebuild → runner/value-buffer rebuild) of two pipelines:
//!
//! * **legacy** — a frozen copy of the pre-scratch path: an upfront copy
//!   of the owned block, a fresh staging `Vec` per destination, pre-zeroed
//!   destination blocks, one heap `Vec` per received adjacency row, a
//!   fresh plan computed twice, fresh schedule hashes, and a from-scratch
//!   runner + ghosted buffer;
//! * **lean** — the shipped path: `AdaptiveSession::remap_to` over the
//!   session's recycled `RemapScratch` (plan recomputed in place and
//!   shared, values packed straight from the ghosted array, direct CSR
//!   assembly, schedule/runner/value rebuild into retired storage — zero
//!   allocations once warm, pinned by `tests/alloc_free.rs`).
//!
//! Workload: the paper-scale ~30k-vertex mesh, 1/2/4/8 ranks, oscillating
//! between a uniform partition and a shifted one (small shift ≈ a mild
//! load wobble; large shift ≈ a machine losing most of its capacity), on
//! both backends. Wall clock is what differs; virtual-time charging and
//! all values are identical between the two pipelines (pinned by this
//! module's tests).

use std::time::Instant;

use stance::executor::{ComputeCostModel, GhostedArray, LoopRunner};
use stance::inspector::{build_schedule_symmetric, LocalAdjacency};
use stance::onedim::RedistributionPlan;
use stance::prelude::*;
use stance_native::NativeCluster;

/// Application-range tags for the legacy replay (distinct from the shipped
/// pipeline's reserved tags).
const TAG_LEGACY_VALUES: Tag = Tag(0x7010);
const TAG_LEGACY_ADJ: Tag = Tag(0x7011);

/// Rank counts the remap trajectory entry sweeps.
pub const RANK_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// How far the oscillating partition strays from uniform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shift {
    /// A mild wobble: one rank's share shrinks ~15% — the common case of
    /// a small load fluctuation.
    Small,
    /// A heavy skew: capability ramps 1→2 across ranks — a machine lost
    /// most of its capacity and a large fraction of elements moves.
    Large,
}

impl Shift {
    /// Harness sweep order.
    pub const ALL: [Shift; 2] = [Shift::Small, Shift::Large];

    /// JSON key fragment.
    pub fn name(self) -> &'static str {
        match self {
            Shift::Small => "small",
            Shift::Large => "large",
        }
    }
}

/// The paper-scale bench mesh (~30k vertices, RSB-class ordering).
pub fn remap_mesh() -> Graph {
    stance::scenarios::paper_mesh_ordered(OrderingMethod::Rcb, 42)
}

/// The partition pair a timing run oscillates between: uniform ↔ shifted.
/// At one rank both are the whole list (the identity-remap fast path).
pub fn partition_pair(n: usize, ranks: usize, shift: Shift) -> (BlockPartition, BlockPartition) {
    let uniform = BlockPartition::uniform(n, ranks);
    let weights: Vec<f64> = match shift {
        Shift::Small => (0..ranks)
            .map(|r| if r == 0 { 0.85 } else { 1.0 })
            .collect(),
        Shift::Large => (0..ranks)
            .map(|r| 1.0 + r as f64 / (ranks.max(2) - 1) as f64)
            .collect(),
    };
    let shifted = BlockPartition::from_weights(n, &weights, Arrangement::identity(ranks));
    (uniform, shifted)
}

/// The frozen pre-scratch value redistribution: an upfront `to_vec` is the
/// caller's job; per destination a fresh staging `Vec`; destination blocks
/// pre-zeroed; plan computed fresh.
fn legacy_redistribute_coalesced<E: Element, C: Comm>(
    env: &mut C,
    old: &BlockPartition,
    new: &BlockPartition,
    arrays: &mut [&mut Vec<E>],
) {
    if arrays.is_empty() || old == new {
        return;
    }
    let k = arrays.len();
    let rank = env.rank();
    let old_iv = old.interval_of(rank);
    let new_iv = new.interval_of(rank);
    let plan = RedistributionPlan::between(old, new);
    for m in plan.sends_of(rank) {
        let lo = m.range.start - old_iv.start;
        let hi = m.range.end - old_iv.start;
        let mut bytes = Vec::with_capacity((hi - lo) * k * E::SIZE_BYTES);
        for a in arrays.iter() {
            E::pack_into(&a[lo..hi], &mut bytes);
        }
        env.send(m.dst, TAG_LEGACY_VALUES, Payload::from_bytes(bytes));
    }
    let mut new_blocks: Vec<Vec<E>> = (0..k).map(|_| vec![E::zero(); new_iv.len()]).collect();
    let kept = old_iv.intersect(&new_iv);
    if !kept.is_empty() {
        for (block, a) in new_blocks.iter_mut().zip(arrays.iter()) {
            block[kept.start - new_iv.start..kept.end - new_iv.start]
                .copy_from_slice(&a[kept.start - old_iv.start..kept.end - old_iv.start]);
        }
    }
    for m in plan.recvs_of(rank) {
        let seg = m.range.len();
        let bytes = env.recv(m.src, TAG_LEGACY_VALUES).into_bytes();
        assert_eq!(bytes.len(), seg * k * E::SIZE_BYTES);
        let lo = m.range.start - new_iv.start;
        let seg_bytes = seg * E::SIZE_BYTES;
        for (i, block) in new_blocks.iter_mut().enumerate() {
            E::unpack_into(
                &bytes[i * seg_bytes..(i + 1) * seg_bytes],
                &mut block[lo..lo + seg],
            );
        }
    }
    for (a, block) in arrays.iter_mut().zip(new_blocks) {
        **a = block;
    }
}

/// The frozen pre-scratch adjacency move: one heap `Vec` per received row,
/// then a second pass flattening the rows into CSR.
fn legacy_redistribute_adjacency<C: Comm>(
    env: &mut C,
    old: &BlockPartition,
    new: &BlockPartition,
    adj: &LocalAdjacency,
) -> LocalAdjacency {
    let rank = env.rank();
    let old_iv = old.interval_of(rank);
    let new_iv = new.interval_of(rank);
    let plan = RedistributionPlan::between(old, new);

    for m in plan.sends_of(rank) {
        let mut words = Vec::new();
        for g in m.range.iter() {
            words.push(adj.degree_of(g - old_iv.start) as u32);
        }
        for g in m.range.iter() {
            words.extend_from_slice(adj.neighbors_of(g - old_iv.start));
        }
        env.send(m.dst, TAG_LEGACY_ADJ, Payload::from_u32(words));
    }

    let mut rows: Vec<Vec<u32>> = vec![Vec::new(); new_iv.len()];
    let kept = old_iv.intersect(&new_iv);
    for g in kept.iter() {
        rows[g - new_iv.start] = adj.neighbors_of(g - old_iv.start).to_vec();
    }
    for m in plan.recvs_of(rank) {
        let words = env.recv(m.src, TAG_LEGACY_ADJ).into_u32();
        let count = m.range.len();
        let degrees = &words[..count];
        let mut cursor = count;
        for (offset, g) in m.range.iter().enumerate() {
            let d = degrees[offset] as usize;
            rows[g - new_iv.start] = words[cursor..cursor + d].to_vec();
            cursor += d;
        }
        assert_eq!(cursor, words.len(), "legacy adjacency packet consumed");
    }

    let mut xadj = Vec::with_capacity(new_iv.len() + 1);
    let mut refs = Vec::new();
    xadj.push(0);
    for row in rows {
        refs.extend(row);
        xadj.push(refs.len());
    }
    LocalAdjacency::from_parts(new_iv, xadj, refs)
}

/// One rank's state for the frozen legacy pipeline.
struct LegacyState<E: Field> {
    partition: BlockPartition,
    adj: LocalAdjacency,
    runner: LoopRunner<E, RelaxationKernel>,
    values: GhostedArray<E>,
}

fn legacy_setup<E: Field, C: Comm>(
    env: &mut C,
    graph: &Graph,
    partition: BlockPartition,
    init: fn(usize) -> E,
) -> LegacyState<E> {
    let rank = env.rank();
    let adj = LocalAdjacency::extract(graph, &partition, rank);
    let (sched, _) = build_schedule_symmetric(&partition, &adj, rank, ScheduleStrategy::Sort2);
    let runner = LoopRunner::new(sched, &adj, ComputeCostModel::zero(), RelaxationKernel);
    let iv = partition.interval_of(rank);
    let values = runner.make_values(iv.iter().map(init).collect());
    LegacyState {
        partition,
        adj,
        runner,
        values,
    }
}

/// One frozen-pipeline remap: upfront owned-block copy, allocating
/// redistributions (plan computed twice), fresh schedule build, fresh
/// runner, fresh ghosted buffer — exactly what `apply_remap` did before
/// the scratch.
fn legacy_remap<E: Field, C: Comm>(
    env: &mut C,
    state: &mut LegacyState<E>,
    new_partition: &BlockPartition,
) {
    let rank = env.rank();
    let mut new_local = state.values.local().to_vec();
    legacy_redistribute_coalesced(env, &state.partition, new_partition, &mut [&mut new_local]);
    let new_adj = legacy_redistribute_adjacency(env, &state.partition, new_partition, &state.adj);
    state.partition = new_partition.clone();
    state.adj = new_adj;
    let (sched, _) =
        build_schedule_symmetric(&state.partition, &state.adj, rank, ScheduleStrategy::Sort2);
    state.runner = LoopRunner::new(
        sched,
        &state.adj,
        ComputeCostModel::zero(),
        RelaxationKernel,
    );
    state.values = state.runner.make_values(new_local);
}

/// Which remap pipeline a timing run drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Path {
    /// The frozen pre-scratch baseline.
    Legacy,
    /// The shipped allocation-lean path (`AdaptiveSession::remap_to`).
    Lean,
}

fn lean_body<E: Field, C: Comm>(
    comm: &mut C,
    graph: &Graph,
    a: &BlockPartition,
    b: &BlockPartition,
    iters: usize,
    init: fn(usize) -> E,
) -> f64 {
    let config = StanceConfig::free().without_load_balancing();
    let mut s = AdaptiveSession::setup_with_partition(
        comm,
        graph,
        a.clone(),
        RelaxationKernel,
        init,
        &config,
    );
    // Warm-up: one full oscillation fills the scratch pools.
    s.remap_to(comm, b.clone(), &mut []);
    s.remap_to(comm, a.clone(), &mut []);
    comm.barrier();
    let t0 = Instant::now();
    for i in 0..iters {
        let target = if i % 2 == 0 { b.clone() } else { a.clone() };
        s.remap_to(comm, target, &mut []);
    }
    let elapsed = t0.elapsed().as_secs_f64();
    comm.barrier();
    elapsed / iters as f64
}

fn legacy_body<E: Field, C: Comm>(
    comm: &mut C,
    graph: &Graph,
    a: &BlockPartition,
    b: &BlockPartition,
    iters: usize,
    init: fn(usize) -> E,
) -> f64 {
    let mut state = legacy_setup(comm, graph, a.clone(), init);
    legacy_remap(comm, &mut state, b);
    legacy_remap(comm, &mut state, a);
    comm.barrier();
    let t0 = Instant::now();
    for i in 0..iters {
        let target = if i % 2 == 0 { b } else { a };
        legacy_remap(comm, &mut state, target);
    }
    let elapsed = t0.elapsed().as_secs_f64();
    comm.barrier();
    elapsed / iters as f64
}

/// Seconds per remap (slowest rank, warm-up excluded) for `iters` forced
/// remaps oscillating uniform ↔ shifted on the given backend.
pub fn time_remap<E: Field>(
    graph: &Graph,
    ranks: usize,
    shift: Shift,
    iters: usize,
    path: Path,
    native: bool,
    init: fn(usize) -> E,
) -> f64 {
    let n = graph.num_vertices();
    let (a, b) = partition_pair(n, ranks, shift);
    let per_rank: Vec<f64> = if native {
        NativeCluster::new(ranks)
            .run(|comm| match path {
                Path::Lean => lean_body(comm, graph, &a, &b, iters, init),
                Path::Legacy => legacy_body(comm, graph, &a, &b, iters, init),
            })
            .into_results()
    } else {
        let spec = ClusterSpec::uniform(ranks).with_network(NetworkSpec::zero_cost());
        Cluster::new(spec)
            .run(|env| match path {
                Path::Lean => lean_body(env, graph, &a, &b, iters, init),
                Path::Legacy => legacy_body(env, graph, &a, &b, iters, init),
            })
            .into_results()
    };
    per_rank.into_iter().fold(0.0, f64::max)
}

fn json_cell(key: &str, legacy: f64, lean: f64, gated: bool) -> String {
    let ratio_key = if gated { "speedup" } else { "ratio" };
    format!(
        "  \"{key}\": {{ \"legacy_us\": {:.1}, \"lean_us\": {:.1}, \"{ratio_key}\": {:.2} }}",
        legacy * 1e6,
        lean * 1e6,
        legacy / lean
    )
}

/// Runs the full legacy-vs-lean remap comparison and renders the
/// `BENCH_remap.json` perf-trajectory entry. Sampling is order-balanced
/// (each repetition times both pipelines back to back, alternating which
/// runs first) so host drift cannot masquerade as a pipeline difference.
pub fn report_json() -> String {
    let reps = crate::sample_count().clamp(3, 7);
    let iters = 6;
    let mesh = remap_mesh();
    let n = mesh.num_vertices();
    let host_threads = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);

    let mut lines = vec![
        "{".to_string(),
        "  \"bench\": \"remap\",".to_string(),
        format!(
            "  \"workload\": {{ \"vertices\": {n}, \"mesh\": \"paper mesh (RSB-class ordering)\", \"remaps_per_sample\": {iters}, \"samples\": {reps}, \"host_threads\": {host_threads} }},"
        ),
        "  \"methodology\": \"end-to-end remap latency (value redistribution + adjacency move + schedule rebuild + runner/value-buffer rebuild), oscillating uniform <-> shifted partitions; seconds per remap = slowest rank, median over order-balanced interleaved samples, 2-remap warm-up excluded; legacy = frozen pre-scratch pipeline (upfront block copy, per-destination allocations, pre-zeroed blocks, per-row adjacency Vecs, plan built twice, from-scratch schedule/runner/buffers), lean = shipped RemapScratch path; 'sim' cells run the virtual-time backend with a zero-cost network (wall clock measured, virtual charging identical between pipelines), 'native' cells the thread-pool backend; ranks_1 cells oscillate between identical partitions and therefore measure the identity fast path, reported as 'ratio' and excluded from the CI gate (as are 2-rank cells, which carry little movement); host_threads below the rank count means ranks time-share cores\",".to_string(),
    ];

    let mut cells: Vec<String> = Vec::new();
    for native in [false, true] {
        let backend = if native { "native" } else { "sim" };
        for &ranks in &RANK_COUNTS {
            for shift in Shift::ALL {
                for elem in ["f64", "f64x4"] {
                    let time = |path| match elem {
                        "f64" => time_remap::<f64>(&mesh, ranks, shift, iters, path, native, |i| {
                            i as f64
                        }),
                        _ => {
                            time_remap::<[f64; 4]>(&mesh, ranks, shift, iters, path, native, |i| {
                                [i as f64, -(i as f64), 0.5, 1.0]
                            })
                        }
                    };
                    let mut legacy = Vec::with_capacity(reps);
                    let mut lean = Vec::with_capacity(reps);
                    for i in 0..reps {
                        if i % 2 == 0 {
                            legacy.push(time(Path::Legacy));
                            lean.push(time(Path::Lean));
                        } else {
                            lean.push(time(Path::Lean));
                            legacy.push(time(Path::Legacy));
                        }
                    }
                    let median = |mut v: Vec<f64>| {
                        v.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
                        v[v.len() / 2]
                    };
                    let key = format!("{backend}_{elem}_ranks{ranks}_{}", shift.name());
                    // Only >= 4-rank cells carry the gated "speedup" key:
                    // 1 rank is the identity fast path and 2 ranks move
                    // little data, so their ratios would gate noise.
                    cells.push(json_cell(&key, median(legacy), median(lean), ranks >= 4));
                }
            }
        }
    }
    lines.push(cells.join(",\n"));
    lines.push("}".to_string());
    lines.join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use stance::locality::meshgen;

    /// The frozen legacy pipeline and the shipped lean pipeline must land
    /// every value and every adjacency row in exactly the same place — a
    /// mis-timed bench is noise, a wrong one is a lie.
    #[test]
    fn legacy_pipeline_is_bitwise_identical_to_lean() {
        let g = meshgen::triangulated_grid(14, 10, 0.3, 4);
        let n = g.num_vertices();
        for shift in Shift::ALL {
            let (a, b) = partition_pair(n, 3, shift);
            let spec = ClusterSpec::uniform(3).with_network(NetworkSpec::zero_cost());
            Cluster::new(spec).run(|env| {
                let config = StanceConfig::free().without_load_balancing();
                let mut session = AdaptiveSession::setup_with_partition(
                    env,
                    &g,
                    a.clone(),
                    RelaxationKernel,
                    |i| (i as f64).sin(),
                    &config,
                );
                let mut legacy = legacy_setup(env, &g, a.clone(), |i| (i as f64).sin());
                for target in [&b, &a, &b, &a] {
                    session.remap_to(env, (*target).clone(), &mut []);
                    legacy_remap(env, &mut legacy, target);
                    assert_eq!(
                        session.local_values(),
                        legacy.values.local(),
                        "values diverged after remap ({shift:?})"
                    );
                    assert_eq!(
                        session.schedule(),
                        legacy.runner.schedule(),
                        "schedules diverged after remap ({shift:?})"
                    );
                }
            });
        }
    }

    #[test]
    fn partition_pairs_shift_as_advertised() {
        let n = 30_000;
        let (a, b) = partition_pair(n, 4, Shift::Small);
        let plan = RedistributionPlan::between(&a, &b);
        let small_moved = plan.elements_moved();
        let (a, b) = partition_pair(n, 4, Shift::Large);
        let plan = RedistributionPlan::between(&a, &b);
        let large_moved = plan.elements_moved();
        assert!(
            small_moved > 0 && small_moved < n / 10,
            "small shift moves a sliver, got {small_moved}"
        );
        assert!(
            large_moved > n / 5,
            "large shift moves a big chunk, got {large_moved}"
        );
        // One rank: identity (the fast-path row).
        let (a1, b1) = partition_pair(n, 1, Shift::Large);
        assert_eq!(a1, b1);
    }

    #[test]
    fn timing_is_positive_for_both_pipelines() {
        let g = meshgen::triangulated_grid(20, 6, 0.2, 1);
        for native in [false, true] {
            assert!(
                time_remap::<f64>(&g, 2, Shift::Large, 2, Path::Legacy, native, |i| i as f64) > 0.0
            );
            assert!(
                time_remap::<f64>(&g, 2, Shift::Large, 2, Path::Lean, native, |i| i as f64) > 0.0
            );
        }
    }
}
