//! Regenerates the paper's Figure 9 (mesh statistics) plus the Phase A
//! ordering-quality ablation.

use stance::locality::OrderingMethod;
use stance::scenarios;

fn main() {
    // Quality metrics are computed on the raw mesh (orderings are computed
    // inside fig9 for each method).
    let mesh = scenarios::paper_mesh_ordered(OrderingMethod::Natural, 42);
    stance_bench::emit("fig9", &stance_bench::figures::fig9(&mesh));
}
