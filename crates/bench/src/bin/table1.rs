//! Regenerates the paper's Table 1 (MinimizeCostRedistribution runtime).

fn main() {
    stance_bench::emit("table1", &stance_bench::tables::table1());
}
