//! Regenerates the paper's Figure 5 (repartitioning arrangements).

fn main() {
    stance_bench::emit("fig5", &stance_bench::figures::fig5());
}
