//! Regenerates the paper's Table 4 (static environment, 500 iterations).

fn main() {
    stance_bench::emit("table4", &stance_bench::tables::table4());
}
