//! Regenerates the paper's Table 5 (adaptive environment with competing
//! load, with and without load balancing).

fn main() {
    stance_bench::emit("table5", &stance_bench::tables::table5());
}
