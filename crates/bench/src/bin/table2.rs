//! Regenerates the paper's Table 2 (remapping cost with/without MCR).

fn main() {
    stance_bench::emit("table2", &stance_bench::tables::table2());
}
