//! Regenerates the paper's Figure 2 (RCB 1-D mapping, ASCII rendering).

fn main() {
    stance_bench::emit("fig2", &stance_bench::figures::fig2());
}
