//! Regenerates the paper's Table 3 (schedule construction strategies).

fn main() {
    stance_bench::emit("table3", &stance_bench::tables::table3());
}
