//! Runs the ablation studies (ordering method, multicast, check interval,
//! MCR end-to-end). See `stance_bench::ablations` for what each varies.

fn main() {
    stance_bench::emit(
        "ablation_ordering",
        &stance_bench::ablations::ablation_ordering(),
    );
    stance_bench::emit(
        "ablation_multicast",
        &stance_bench::ablations::ablation_multicast(),
    );
    stance_bench::emit(
        "ablation_check_interval",
        &stance_bench::ablations::ablation_check_interval(),
    );
    stance_bench::emit(
        "ablation_mcr_end_to_end",
        &stance_bench::ablations::ablation_mcr_end_to_end(),
    );
}
