//! Runs the whole reproduction: every table and figure, in order, writing
//! each to `results/`. Sample counts and iteration counts can be reduced
//! for a smoke run:
//!
//! ```text
//! STANCE_SAMPLES=5 STANCE_ITERATIONS=50 cargo run --release -p stance-bench --bin repro_all
//! ```

use std::time::Instant;

fn main() {
    // When a `TcpCluster` spawned this very binary as a rank worker (the
    // rendezvous environment is set), become that rank and exit; the
    // BENCH_tcp measurement below launches its process clusters this way.
    stance_tcp::maybe_rank_main(stance_bench::tcp::BENCH_SCENARIOS);

    let t0 = Instant::now();
    let run = |name: &str, f: &dyn Fn() -> String| {
        let start = Instant::now();
        eprintln!(">> {name} ...");
        stance_bench::emit(name, &f());
        eprintln!("   {name} done in {:.1}s", start.elapsed().as_secs_f64());
    };

    run("fig2", &stance_bench::figures::fig2);
    run("fig3", &stance_bench::figures::fig3);
    run("fig4", &stance_bench::figures::fig4);
    run("fig5", &stance_bench::figures::fig5);
    run("fig9", &|| {
        let mesh =
            stance::scenarios::paper_mesh_ordered(stance::locality::OrderingMethod::Natural, 42);
        stance_bench::figures::fig9(&mesh)
    });
    run("table1", &stance_bench::tables::table1);
    run("table2", &stance_bench::tables::table2);
    run("table3", &stance_bench::tables::table3);
    run("table4", &stance_bench::tables::table4);
    run("table5", &stance_bench::tables::table5);

    // Perf trajectory: wall-clock measurements (not paper reproductions),
    // emitted as JSON so future PRs can diff against them.
    {
        let start = Instant::now();
        eprintln!(">> BENCH_transport ...");
        stance_bench::emit_file(
            "BENCH_transport.json",
            &stance_bench::transport::report_json(),
        );
        eprintln!(
            "   BENCH_transport done in {:.1}s",
            start.elapsed().as_secs_f64()
        );
    }
    {
        let start = Instant::now();
        eprintln!(">> BENCH_native ...");
        stance_bench::emit_file("BENCH_native.json", &stance_bench::native::report_json());
        eprintln!(
            "   BENCH_native done in {:.1}s",
            start.elapsed().as_secs_f64()
        );
    }
    {
        let start = Instant::now();
        eprintln!(">> BENCH_tcp ...");
        let me = std::env::current_exe().expect("own executable path");
        stance_bench::emit_file("BENCH_tcp.json", &stance_bench::tcp::report_json(&me));
        eprintln!("   BENCH_tcp done in {:.1}s", start.elapsed().as_secs_f64());
    }
    {
        let start = Instant::now();
        eprintln!(">> BENCH_overlap ...");
        stance_bench::emit_file("BENCH_overlap.json", &stance_bench::overlap::report_json());
        eprintln!(
            "   BENCH_overlap done in {:.1}s",
            start.elapsed().as_secs_f64()
        );
    }
    {
        let start = Instant::now();
        eprintln!(">> BENCH_remap ...");
        stance_bench::emit_file("BENCH_remap.json", &stance_bench::remap::report_json());
        eprintln!(
            "   BENCH_remap done in {:.1}s",
            start.elapsed().as_secs_f64()
        );
    }
    {
        let start = Instant::now();
        eprintln!(">> BENCH_team ...");
        stance_bench::emit_file("BENCH_team.json", &stance_bench::team::report_json());
        eprintln!(
            "   BENCH_team done in {:.1}s",
            start.elapsed().as_secs_f64()
        );
    }
    {
        let start = Instant::now();
        eprintln!(">> BENCH_dag ...");
        stance_bench::emit_file("BENCH_dag.json", &stance_bench::dag::report_json());
        eprintln!("   BENCH_dag done in {:.1}s", start.elapsed().as_secs_f64());
    }

    eprintln!("all experiments done in {:.1}s", t0.elapsed().as_secs_f64());
}
