//! Regenerates the paper's Figure 4 (schedule_sort1 worked example).

fn main() {
    stance_bench::emit("fig4", &stance_bench::figures::fig4());
}
