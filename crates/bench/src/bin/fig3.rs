//! Regenerates the paper's Figure 3 (interval translation table).

fn main() {
    stance_bench::emit("fig3", &stance_bench::figures::fig3());
}
