//! Shared harness code for the table/figure reproduction binaries and the
//! Criterion benches.
//!
//! Every binary regenerates one table or figure of the paper (see
//! `EXPERIMENTS.md` at the workspace root for the index) and prints a
//! paper-formatted table with the original numbers alongside, so shape
//! comparisons are immediate. Sample counts honor the `STANCE_SAMPLES`
//! environment variable (default = the paper's 100) so quick runs are
//! possible: `STANCE_SAMPLES=5 cargo run --release -p stance-bench --bin
//! table2`.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

pub mod ablations;
pub mod dag;
pub mod figures;
pub mod fmt;
pub mod native;
pub mod overlap;
pub mod remap;
pub mod tables;
pub mod tcp;
pub mod team;
pub mod transport;

pub use fmt::TableBuilder;

/// Number of random samples for averaged experiments (paper: 100).
pub fn sample_count() -> usize {
    std::env::var("STANCE_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(100)
}

/// Iterations for the big loop experiments (paper: 500). Override with
/// `STANCE_ITERATIONS` for quick runs.
pub fn iteration_count() -> usize {
    std::env::var("STANCE_ITERATIONS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(stance::scenarios::PAPER_ITERATIONS)
}

/// Times `f` once per repetition and returns the median seconds — the
/// sampling policy every wall-clock harness in this crate shares.
pub fn median_secs(reps: usize, mut f: impl FnMut() -> f64) -> f64 {
    let mut samples: Vec<f64> = (0..reps).map(|_| f()).collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

/// A seeded RNG for workload generation; `STANCE_SEED` overrides.
pub fn workload_rng(stream: u64) -> StdRng {
    let seed = std::env::var("STANCE_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FFEE_u64);
    StdRng::seed_from_u64(seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// A random capability vector: `p` weights in `(0.05, 1.05)`, representing
/// workstations with arbitrary relative power (Table 1/2's "randomly
/// generated samples").
pub fn random_capabilities(rng: &mut StdRng, p: usize) -> Vec<f64> {
    (0..p).map(|_| 0.05 + rng.random::<f64>()).collect()
}

/// Writes experiment output both to stdout and to `results/<name>.txt`
/// under the workspace root (best effort — printing still succeeds if the
/// directory is read-only).
pub fn emit(name: &str, content: &str) {
    emit_file(&format!("{name}.txt"), content);
}

/// Like [`emit`], but `filename` carries its own extension (e.g. the
/// `BENCH_transport.json` perf-trajectory entry).
pub fn emit_file(filename: &str, content: &str) {
    println!("{content}");
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("results");
    if std::fs::create_dir_all(&dir).is_ok() {
        let _ = std::fs::write(dir.join(filename), content);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capabilities_positive() {
        let mut rng = workload_rng(1);
        let caps = random_capabilities(&mut rng, 20);
        assert_eq!(caps.len(), 20);
        assert!(caps.iter().all(|&c| c > 0.0));
    }

    #[test]
    fn rng_streams_differ() {
        let a: f64 = workload_rng(1).random();
        let b: f64 = workload_rng(2).random();
        assert_ne!(a, b);
    }
}
