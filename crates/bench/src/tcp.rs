//! TCP process-backend micro-harness: the measurements behind the
//! `results/BENCH_tcp.json` perf-trajectory entry.
//!
//! Where `BENCH_native.json` times the executor iteration on thread-ranks
//! sharing one address space, this harness runs the same ghost gather +
//! relaxation sweep with **every rank a separate OS process** and every
//! ghost byte a framed message on a loopback socket. The gap between the
//! two files is the price of process isolation: syscalls, kernel socket
//! buffers, and frame codecs instead of a `memcpy` between threads.
//!
//! The measurement is honest about its host: process counts of 2/4/8 run
//! regardless of core count, the JSON records `host_threads`, and the
//! ratio cells are **informational** — on a 2-vCPU CI runner the 8-rank
//! row measures oversubscription, not scaling. Timing happens inside the
//! workers (between barriers, after warm-up), so process spawn and
//! rendezvous cost is excluded — this is steady-state transport
//! throughput, not launch latency.

use std::path::PathBuf;

use stance::executor::{ComputeCostModel, LoopRunner, RelaxationKernel};
use stance::inspector::{build_schedule_symmetric, LocalAdjacency, ScheduleStrategy};
use stance::prelude::*;
use stance_tcp::codec::Wire;
use stance_tcp::{ScenarioRegistry, TcpCluster, TcpComm};

/// Process counts the TCP trajectory entry sweeps.
pub const PROCESS_COUNTS: [usize; 3] = [2, 4, 8];

/// The named scenarios a bench worker process can run. `repro_all` passes
/// this to [`stance_tcp::maybe_rank_main`] at the top of `main`, making
/// the bench binary its own rank worker.
pub const BENCH_SCENARIOS: ScenarioRegistry = &[("bench_sweep", bench_sweep)];

/// Worker-side body: `iters` gather + relaxation-sweep iterations over
/// the paper-scale bench mesh, timed between barriers after warm-up.
/// Returns this rank's measured wall-clock seconds per iteration.
fn bench_sweep(comm: &mut TcpComm, args: &[u8]) -> Vec<u8> {
    let iters = usize::from_wire(args);
    let mesh = crate::native::bench_mesh();
    let n = mesh.num_vertices();
    let part = BlockPartition::uniform(n, comm.size());
    let rank = comm.rank();
    let adj = LocalAdjacency::extract(&mesh, &part, rank);
    let (sched, _) = build_schedule_symmetric(&part, &adj, rank, ScheduleStrategy::Sort2);
    let mut runner = LoopRunner::new(sched, &adj, ComputeCostModel::zero(), RelaxationKernel);
    let iv = part.interval_of(rank);
    let mut values = runner.make_values(iv.iter().map(|g| (g as f64).sin()).collect());

    // Warm-up: socket buffers, link accumulators and recycled frame
    // scratch reach steady state before the clock starts.
    runner.run(comm, &mut values, 3);
    comm.barrier();
    let t0 = std::time::Instant::now();
    runner.run(comm, &mut values, iters);
    let elapsed = t0.elapsed().as_secs_f64();
    comm.barrier();
    (elapsed / iters as f64).to_wire()
}

/// One cluster launch: `p` worker processes over loopback, returning the
/// slowest rank's measured seconds per iteration.
fn time_sweep_gather_tcp(worker: &PathBuf, p: usize, iters: usize) -> f64 {
    TcpCluster::new(p, worker)
        .run_scenario("bench_sweep", &iters.to_wire())
        .into_results()
        .iter()
        .map(|bytes| f64::from_wire(bytes))
        .fold(0.0, f64::max)
}

/// Runs the loopback sweep+gather measurement across [`PROCESS_COUNTS`]
/// and renders the `BENCH_tcp.json` perf-trajectory entry. `worker` is
/// the rank-worker binary — `repro_all` passes its own executable.
pub fn report_json(worker: &PathBuf) -> String {
    let reps = crate::sample_count().clamp(3, 9);
    let iters = 30;
    let n = crate::native::bench_mesh().num_vertices();

    let secs: Vec<f64> = PROCESS_COUNTS
        .iter()
        .map(|&p| crate::median_secs(reps, || time_sweep_gather_tcp(worker, p, iters)))
        .collect();

    let host_threads = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    render_json(n, iters, reps, host_threads, &secs)
}

fn render_json(n: usize, iters: usize, reps: usize, host_threads: usize, secs: &[f64]) -> String {
    let base = secs[0];
    let mut lines = vec![
        "{".to_string(),
        "  \"bench\": \"tcp\",".to_string(),
        format!(
            "  \"workload\": {{ \"vertices\": {n}, \"kernel\": \"relaxation\", \"iters_per_sample\": {iters}, \"samples\": {reps}, \"host_threads\": {host_threads} }},"
        ),
        // The ratio column is informational: with fewer host threads than
        // ranks it measures oversubscription, not the backend's scaling.
        "  \"note\": \"ranks are OS processes on loopback TCP; ratio_vs_2_ranks is informational when host_threads < ranks\",".to_string(),
    ];
    let entries: Vec<String> = PROCESS_COUNTS
        .iter()
        .zip(secs)
        .map(|(&p, &s)| {
            format!(
                "  \"ranks_{p}\": {{ \"secs_per_iter\": {:.3e}, \"vertex_updates_per_sec\": {:.0}, \"ratio_vs_2_ranks\": {:.2} }}",
                s,
                n as f64 / s,
                base / s
            )
        })
        .collect();
    lines.push(entries.join(",\n"));
    lines.push("}".to_string());
    lines.join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The JSON renderer stays well formed (balanced braces, one entry
    /// per process count, the honest-host note present) without having to
    /// spawn a process cluster inside a unit test.
    #[test]
    fn rendered_json_is_well_formed() {
        let s = render_json(30_000, 30, 3, 2, &[1.0e-3, 6.0e-4, 7.0e-4]);
        assert_eq!(
            s.matches('{').count(),
            s.matches('}').count(),
            "unbalanced braces:\n{s}"
        );
        for p in PROCESS_COUNTS {
            assert!(
                s.contains(&format!("\"ranks_{p}\"")),
                "missing ranks_{p}:\n{s}"
            );
        }
        assert!(s.contains("\"host_threads\": 2"));
        assert!(s.contains("informational"));
    }
}
