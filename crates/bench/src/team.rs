//! Worker-team micro-harness: the measurements behind `bench_team` and
//! the `results/BENCH_team.json` perf-trajectory entry.
//!
//! Two questions, answered in one file:
//!
//! 1. **Team scaling.** With a rank's interior sweep split across a
//!    persistent [`SweepTeam`](stance::executor::SweepTeam) of T lanes,
//!    what does T buy in vertex updates per second? The workload is a
//!    deliberately **interior-heavy** paper-scale mesh — a deep
//!    triangulated grid whose 1-D block cuts sever few edges — because
//!    teams parallelize the sweep, not the exchange: on the
//!    boundary-heavy overlap mesh the gather dominates and a team has
//!    little to split.
//! 2. **Chunked vs scalar sweeps.** What did rewriting the built-in
//!    kernels as cache-blocked, bounds-check-free loops (autovectorizable
//!    by rustc) buy over the frozen per-vertex formulation? Measured as a
//!    single-rank full-sweep ratio on the same host.
//!
//! Methodology, recorded in the JSON: every native cell reports
//! per-iteration wall seconds of the slowest rank (median over
//! order-balanced samples, warm-up excluded) and the derived vertex
//! updates per second. **Teams need real cores**: on a 1-vCPU host the
//! lanes time-slice one CPU and the curve is flat by construction, so
//! hosts with fewer than 4 hardware threads report `ratio_vs_team_1`
//! (informational) instead of `speedup_vs_team_1` (CI-gated) — the same
//! honesty convention as `BENCH_overlap.json`. The `modelled_team_*`
//! entries are the deterministic half: virtual time on the simulator's
//! paper cluster with the team-aware cost model, bit-reproducible on any
//! host, so the regression gate always has cells to hold.

use std::time::Instant;

use stance::executor::{ComputeCostModel, Kernel, LoopRunner, RelaxationKernel};
use stance::inspector::{
    build_schedule_symmetric, LocalAdjacency, ScheduleStrategy, TranslatedAdjacency,
};
use stance::locality::meshgen;
use stance::prelude::*;
use stance_native::NativeCluster;

/// The interior-heavy paper-scale bench mesh: 30k vertices as a deep
/// 150-wide grid, so a 1-D block cut severs ~150 edges and nearly every
/// vertex of every rank is interior — the regime where splitting the
/// sweep across team lanes is the whole story.
pub fn team_mesh() -> Graph {
    meshgen::triangulated_grid(150, 200, 0.3, 17)
}

/// Team sizes the trajectory entry sweeps.
pub const TEAM_SIZES: [usize; 4] = [1, 2, 4, 8];

/// Rank counts the trajectory entry sweeps (ranks × teams is the
/// hierarchy: address spaces outside, lanes inside).
pub const RANK_COUNTS: [usize; 2] = [1, 2];

/// Runs `iters` gather + relaxation-sweep iterations over `mesh`, block
/// partitioned across `ranks` native ranks each driving a `team`-lane
/// worker team, and returns wall-clock seconds **per iteration** (slowest
/// rank, setup and warm-up excluded). Overlap is on: the split-phase
/// gather is the production configuration and the one whose interior
/// phase the team actually splits.
pub fn time_team_iters(mesh: &Graph, ranks: usize, team: usize, iters: usize) -> f64 {
    let n = mesh.num_vertices();
    let part = BlockPartition::uniform(n, ranks);
    let report = NativeCluster::new(ranks).run(|comm| {
        let rank = comm.rank();
        let adj = LocalAdjacency::extract(mesh, &part, rank);
        let (sched, _) = build_schedule_symmetric(&part, &adj, rank, ScheduleStrategy::Sort2);
        let mut runner = LoopRunner::new(sched, &adj, ComputeCostModel::zero(), RelaxationKernel)
            .with_overlap(true)
            .with_team(team);
        let iv = part.interval_of(rank);
        let mut values = runner.make_values(iv.iter().map(|g| (g as f64).sin()).collect());

        // Warm-up: mailboxes, recycled buffers, team staging and the
        // parked lanes all reach steady state.
        runner.run(comm, &mut values, 3);
        comm.barrier();
        let t0 = Instant::now();
        runner.run(comm, &mut values, iters);
        let elapsed = t0.elapsed().as_secs_f64();
        comm.barrier();
        elapsed / iters as f64
    });
    report.into_results().into_iter().fold(0.0, f64::max)
}

/// One virtual-time iteration (seconds) on the **simulator's** paper
/// cluster with the team-aware cost model: SUN4-class compute divided by
/// the configured team speedup for sweep work (packing stays serial, so
/// the modelled curve bends exactly where a real team's would).
/// Deterministic — depends only on the cost model, never on the host.
pub fn modelled_team_secs_per_iter(mesh: &Graph, ranks: usize, team: usize, iters: usize) -> f64 {
    let n = mesh.num_vertices();
    let part = BlockPartition::uniform(n, ranks);
    let spec = ClusterSpec::paper_cluster(ranks);
    let report = stance::sim::Cluster::new(spec).run(|env| {
        let rank = env.rank();
        let adj = LocalAdjacency::extract(mesh, &part, rank);
        let (sched, _) = build_schedule_symmetric(&part, &adj, rank, ScheduleStrategy::Sort2);
        let mut runner = LoopRunner::new(sched, &adj, ComputeCostModel::sun4(), RelaxationKernel)
            .with_overlap(false)
            .with_team(team);
        let iv = part.interval_of(rank);
        let mut values = runner.make_values(iv.iter().map(|g| (g as f64).sin()).collect());
        runner.run(env, &mut values, iters);
        env.now().as_secs()
    });
    report.into_results().into_iter().fold(0.0, f64::max) / iters as f64
}

/// The frozen pre-blocking relaxation formulation — per-vertex
/// `neighbors_of` indexing, two row-pointer loads and a bounds check per
/// vertex — kept verbatim as the comparison point for the cache-blocked
/// rewrite. Bitwise identical output by construction (same accumulation
/// order), different machine code.
#[derive(Clone, Copy)]
pub struct ScalarRelaxation;

impl Kernel<f64> for ScalarRelaxation {
    fn sweep(&self, tadj: &TranslatedAdjacency, combined: &[f64], out: &mut [f64]) {
        for (l, o) in out.iter_mut().enumerate() {
            let nbrs = tadj.neighbors_of(l);
            if nbrs.is_empty() {
                *o = combined[l];
                continue;
            }
            let mut t = 0.0;
            for &s in nbrs {
                t += combined[s as usize];
            }
            *o = t / nbrs.len() as f64;
        }
    }
}

/// Median single-rank full-sweep seconds for `kernel` over `mesh`
/// (`reps` samples, one warm-up sweep excluded). Single-threaded and
/// communication-free: this isolates the sweep loop's machine code.
pub fn time_full_sweeps<K: Kernel<f64>>(mesh: &Graph, kernel: &K, reps: usize) -> f64 {
    let n = mesh.num_vertices();
    let part = BlockPartition::uniform(n, 1);
    let adj = LocalAdjacency::extract(mesh, &part, 0);
    let (sched, _) = build_schedule_symmetric(&part, &adj, 0, ScheduleStrategy::Sort2);
    let tadj = sched.translate_adjacency(&adj);
    let combined: Vec<f64> = (0..n).map(|g| (g as f64).sin()).collect();
    let mut out = vec![0.0; n];
    kernel.sweep(&tadj, &combined, &mut out);
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t0 = Instant::now();
            kernel.sweep(&tadj, &combined, &mut out);
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

/// Runs the team-scaling sweep across [`RANK_COUNTS`] × [`TEAM_SIZES`]
/// plus the chunked-vs-scalar comparison and renders the
/// `BENCH_team.json` perf-trajectory entry.
///
/// Sampling is **order-balanced** within each rank count: each repetition
/// times every team size back to back, alternating ascending/descending
/// order, and medians are taken per team size — so host-performance drift
/// cannot masquerade as a team-size difference.
pub fn report_json() -> String {
    let reps = crate::sample_count().clamp(3, 9);
    let iters = 20;
    let mesh = team_mesh();
    let n = mesh.num_vertices();

    let host_threads = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let mut lines = vec![
        "{".to_string(),
        "  \"bench\": \"team\",".to_string(),
        format!(
            "  \"workload\": {{ \"vertices\": {n}, \"mesh\": \"150x200 grid (interior-heavy)\", \"kernel\": \"relaxation\", \"iters_per_sample\": {iters}, \"samples\": {reps}, \"host_threads\": {host_threads} }},"
        ),
        "  \"methodology\": \"native backend, split-phase gather; per-iteration wall seconds = slowest rank, median over order-balanced samples (each repetition times every team size back to back, alternating order), warm-up excluded; vertex_updates_per_sec = vertices / secs_per_iter; teams need real cores — hosts with < 4 hardware threads report 'ratio_vs_team_1' (informational) instead of 'speedup_vs_team_1' (CI-gated), same convention as BENCH_overlap; 'chunked_vs_scalar' compares the cache-blocked built-in sweep against the frozen per-vertex formulation single-threaded on this host ('ratio', informational); 'modelled_team_*' entries are the deterministic simulator (SUN4 compute, team-aware cost model), host-independent and CI-gated\",".to_string(),
    ];
    let mut entries: Vec<String> = Vec::new();
    for &ranks in &RANK_COUNTS {
        let mut samples: Vec<Vec<f64>> = vec![Vec::with_capacity(reps); TEAM_SIZES.len()];
        for rep in 0..reps {
            let order: Vec<usize> = if rep % 2 == 0 {
                (0..TEAM_SIZES.len()).collect()
            } else {
                (0..TEAM_SIZES.len()).rev().collect()
            };
            for ti in order {
                samples[ti].push(time_team_iters(&mesh, ranks, TEAM_SIZES[ti], iters));
            }
        }
        let median = |mut v: Vec<f64>| {
            v.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
            v[v.len() / 2]
        };
        let secs: Vec<f64> = samples.into_iter().map(median).collect();
        for (ti, &team) in TEAM_SIZES.iter().enumerate() {
            let updates = n as f64 / secs[ti];
            let mut cell = format!(
                "  \"ranks_{ranks}_team_{team}\": {{ \"secs_per_iter\": {:.3e}, \"vertex_updates_per_sec\": {:.3e}",
                secs[ti], updates
            );
            if team > 1 {
                let key = if host_threads >= 4 {
                    "speedup_vs_team_1"
                } else {
                    "ratio_vs_team_1"
                };
                cell.push_str(&format!(", \"{key}\": {:.2}", secs[0] / secs[ti]));
            }
            cell.push_str(" }");
            entries.push(cell);
        }
    }

    // Chunked vs scalar: same sweep, same bits, different machine code.
    // Order-balanced like everything else in this crate.
    let mut scalar = Vec::with_capacity(reps);
    let mut chunked = Vec::with_capacity(reps);
    for rep in 0..reps {
        if rep % 2 == 0 {
            scalar.push(time_full_sweeps(&mesh, &ScalarRelaxation, 3));
            chunked.push(time_full_sweeps(&mesh, &RelaxationKernel, 3));
        } else {
            chunked.push(time_full_sweeps(&mesh, &RelaxationKernel, 3));
            scalar.push(time_full_sweeps(&mesh, &ScalarRelaxation, 3));
        }
    }
    let median = |mut v: Vec<f64>| {
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        v[v.len() / 2]
    };
    let (scalar, chunked) = (median(scalar), median(chunked));
    entries.push(format!(
        "  \"chunked_vs_scalar\": {{ \"scalar_secs_per_sweep\": {:.3e}, \"chunked_secs_per_sweep\": {:.3e}, \"ratio\": {:.2} }}",
        scalar,
        chunked,
        scalar / chunked
    ));

    // The deterministic, host-independent half: modelled virtual time with
    // the team-aware cost model. These cells carry "speedup" and hold the
    // CI regression gate on any host, including single-vCPU containers.
    let base = modelled_team_secs_per_iter(&mesh, 2, 1, 5);
    for team in [2usize, 4] {
        let teamed = modelled_team_secs_per_iter(&mesh, 2, team, 5);
        entries.push(format!(
            "  \"modelled_team_{team}\": {{ \"modelled_secs_team_1\": {:.3e}, \"modelled_secs\": {:.3e}, \"speedup\": {:.2} }}",
            base,
            teamed,
            base / teamed
        ));
    }

    lines.push(entries.join(",\n"));
    lines.push("}".to_string());
    lines.join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use stance::executor::sequential_relaxation;

    /// The bench workload itself must be correct: teamed runs at every
    /// bench team size match the sequential reference bitwise (a
    /// mis-timed bench is noise; a wrong one is a lie).
    #[test]
    fn bench_workload_matches_sequential_at_every_team_size() {
        let mesh = meshgen::triangulated_grid(30, 8, 0.3, 17);
        let n = mesh.num_vertices();
        let iters = 7;
        let mut expected: Vec<f64> = (0..n).map(|g| (g as f64).sin()).collect();
        sequential_relaxation(&mesh, &mut expected, iters);

        for team in TEAM_SIZES {
            let part = BlockPartition::uniform(n, 2);
            let report = NativeCluster::new(2).run(|comm| {
                let rank = comm.rank();
                let adj = LocalAdjacency::extract(&mesh, &part, rank);
                let (sched, _) =
                    build_schedule_symmetric(&part, &adj, rank, ScheduleStrategy::Sort2);
                let mut runner =
                    LoopRunner::new(sched, &adj, ComputeCostModel::zero(), RelaxationKernel)
                        .with_overlap(true)
                        .with_team(team);
                let iv = part.interval_of(rank);
                let mut values = runner.make_values(iv.iter().map(|g| (g as f64).sin()).collect());
                runner.run(comm, &mut values, iters);
                values.local().to_vec()
            });
            let got = stance::reassemble(&part, report.into_results());
            assert_eq!(got, expected, "team = {team} diverged");
        }
    }

    /// The scalar comparison kernel is the same function, bitwise — the
    /// ratio it anchors compares machine code, not arithmetic.
    #[test]
    fn scalar_reference_matches_chunked_bitwise() {
        let mesh = meshgen::triangulated_grid(23, 9, 0.3, 17);
        let n = mesh.num_vertices();
        let part = BlockPartition::uniform(n, 1);
        let adj = LocalAdjacency::extract(&mesh, &part, 0);
        let (sched, _) = build_schedule_symmetric(&part, &adj, 0, ScheduleStrategy::Sort2);
        let tadj = sched.translate_adjacency(&adj);
        let combined: Vec<f64> = (0..n).map(|g| (g as f64 * 0.37).cos()).collect();
        let mut scalar = vec![0.0; n];
        let mut chunked = vec![0.0; n];
        ScalarRelaxation.sweep(&tadj, &combined, &mut scalar);
        Kernel::<f64>::sweep(&RelaxationKernel, &tadj, &combined, &mut chunked);
        for (i, (a, b)) in scalar.iter().zip(&chunked).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "vertex {i}");
        }
    }

    /// The bench mesh is actually interior-heavy at the bench rank
    /// counts — otherwise team scaling measures the wrong regime.
    #[test]
    fn team_mesh_is_interior_heavy() {
        let mesh = team_mesh();
        let part = BlockPartition::uniform(mesh.num_vertices(), 2);
        let adj = LocalAdjacency::extract(&mesh, &part, 1);
        let (sched, _) = build_schedule_symmetric(&part, &adj, 1, ScheduleStrategy::Sort2);
        let tadj = sched.translate_adjacency(&adj);
        let interior_fraction = tadj.num_interior() as f64 / tadj.len() as f64;
        assert!(
            interior_fraction > 0.9,
            "bench mesh is not interior-heavy: {interior_fraction:.2}"
        );
    }

    /// The deterministic half of the story: the modelled team speedup is
    /// real (> 1 at T = 4), bounded by the configured efficiency, and
    /// exactly reproducible run to run.
    #[test]
    fn modelled_team_speedup_wins_and_is_deterministic() {
        let mesh = meshgen::triangulated_grid(60, 40, 0.3, 17);
        let base = modelled_team_secs_per_iter(&mesh, 2, 1, 3);
        let teamed = modelled_team_secs_per_iter(&mesh, 2, 4, 3);
        let speedup = base / teamed;
        let cap = ComputeCostModel::sun4().with_team(4).team_speedup();
        assert!(
            speedup > 1.0 && speedup <= cap + 1e-9,
            "modelled team-4 speedup {speedup} outside (1, {cap}]"
        );
        assert_eq!(
            teamed,
            modelled_team_secs_per_iter(&mesh, 2, 4, 3),
            "modelled timing must be deterministic"
        );
    }

    #[test]
    fn timing_is_positive() {
        let mesh = meshgen::triangulated_grid(30, 6, 0.2, 1);
        assert!(time_team_iters(&mesh, 2, 2, 2) > 0.0);
        assert!(time_full_sweeps(&mesh, &RelaxationKernel, 2) > 0.0);
    }
}
