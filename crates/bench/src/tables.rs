//! Reproduction of the paper's five tables.
//!
//! Each function runs one experiment and renders a plain-text table with the
//! measured numbers next to the paper's originals. Absolute values need not
//! match (the substrate is a calibrated simulator, not the authors' SUN4
//! cluster); the *shapes* — orderings, ratios, crossovers — are the
//! reproduction target and are noted per table.

use std::time::Instant;

use stance::balance::{redistribute_values, BalancerConfig};
use stance::executor::ComputeCostModel;
use stance::inspector::{
    build_schedule_simple, build_schedule_symmetric, InspectorCostModel, LocalAdjacency,
    ScheduleStrategy,
};
use stance::locality::{Graph, OrderingMethod};
use stance::onedim::{
    mcr::{keep_arrangement, minimize_cost_redistribution},
    BlockPartition, RedistCostModel,
};
use stance::prelude::*;
use stance::scenarios;
use stance::sim::Cluster;

use crate::fmt::{secs, TableBuilder};
use crate::{iteration_count, random_capabilities, sample_count, workload_rng};

/// Paper Table 1: execution time of `MinimizeCostRedistribution` (wall
/// clock, seconds) as the number of workstations grows. Expected shape:
/// growth ≈ p³, milliseconds at p = 20.
pub fn table1() -> String {
    let paper = [
        (3usize, 0.00033),
        (5, 0.00049),
        (10, 0.0025),
        (15, 0.0074),
        (20, 0.017),
    ];
    let samples = sample_count();
    let model = RedistCostModel::ethernet_f64();
    let mut out = TableBuilder::new(
        format!("Table 1: Execution time of MinimizeCostRedistribution ({samples} samples)"),
        &["Workstations", "Measured (s)", "Paper (s)"],
    );
    let mut rng = workload_rng(1);
    for (p, paper_time) in paper {
        // Pre-generate workloads so only MCR is timed.
        let cases: Vec<(BlockPartition, Vec<f64>)> = (0..samples)
            .map(|_| {
                let old_w = random_capabilities(&mut rng, p);
                let new_w = random_capabilities(&mut rng, p);
                (
                    BlockPartition::from_weights(100_000, &old_w, Arrangement::identity(p)),
                    new_w,
                )
            })
            .collect();
        let start = Instant::now();
        for (old, new_w) in &cases {
            let result = minimize_cost_redistribution(old, new_w, &model);
            std::hint::black_box(result);
        }
        let avg = start.elapsed().as_secs_f64() / samples as f64;
        out.row(vec![p.to_string(), format!("{avg:.6}"), secs(paper_time)]);
    }
    out.render()
}

/// Paper Table 2: average cost of data remapping (simulated seconds) with
/// and without MCR, over random capability changes. Expected shape: MCR
/// lowers the cost in every cell, with growing absolute gains as arrays get
/// larger; total times stay small (fractions of a second up to ~2 s at 1M
/// elements).
pub fn table2() -> String {
    let sizes = [512usize, 2048, 16_384, 131_072, 1_048_576];
    let proc_counts = [3usize, 4, 5];
    let paper: &[(usize, [(f64, f64); 3])] = &[
        (512, [(0.0037, 0.0042), (0.0041, 0.0043), (0.0045, 0.0047)]),
        (2048, [(0.0047, 0.0052), (0.0044, 0.0056), (0.0054, 0.006)]),
        (16_384, [(0.026, 0.031), (0.0234, 0.0309), (0.0229, 0.0319)]),
        (
            131_072,
            [(0.2448, 0.2594), (0.1816, 0.2440), (0.184, 0.2584)],
        ),
        (
            1_048_576,
            [(1.8417, 1.9646), (1.4691, 1.9444), (1.4294, 2.0691)],
        ),
    ];
    let samples = sample_count();
    let model = RedistCostModel::ethernet_f64();
    let mut headers: Vec<String> = vec!["Data Size".into()];
    for p in proc_counts {
        headers.push(format!("p={p} MCR"));
        headers.push(format!("p={p} no-MCR"));
        headers.push(format!("p={p} paper"));
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut out = TableBuilder::new(
        format!("Table 2: Average cost of data remapping, simulated seconds ({samples} samples)"),
        &header_refs,
    );

    for (row_idx, &n) in sizes.iter().enumerate() {
        let mut cells = vec![n.to_string()];
        for (col_idx, &p) in proc_counts.iter().enumerate() {
            let mut rng = workload_rng(2_000 + (row_idx * 10 + col_idx) as u64);
            let mut with_mcr = 0.0;
            let mut without_mcr = 0.0;
            for _ in 0..samples {
                let old_w = random_capabilities(&mut rng, p);
                let new_w = random_capabilities(&mut rng, p);
                let old = BlockPartition::from_weights(n, &old_w, Arrangement::identity(p));
                let new_mcr = minimize_cost_redistribution(&old, &new_w, &model).partition;
                let new_keep = keep_arrangement(&old, &new_w);
                with_mcr += measure_redistribution(p, &old, &new_mcr);
                without_mcr += measure_redistribution(p, &old, &new_keep);
            }
            with_mcr /= samples as f64;
            without_mcr /= samples as f64;
            let (paper_mcr, paper_no) = paper[row_idx].1[col_idx];
            cells.push(secs(with_mcr));
            cells.push(secs(without_mcr));
            cells.push(format!("{}/{}", secs(paper_mcr), secs(paper_no)));
        }
        out.row(cells);
    }
    out.render()
}

/// Executes one redistribution on the simulated shared-Ethernet cluster
/// and returns its virtual makespan. Arrays are single-precision, matching
/// the paper's Table 2 ("floating point" on 1995 SUN4s = 4-byte floats).
fn measure_redistribution(p: usize, old: &BlockPartition, new: &BlockPartition) -> f64 {
    let spec = scenarios::static_cluster(p);
    let report = Cluster::new(spec).run(|env| {
        let iv = old.interval_of(env.rank());
        let local: Vec<f32> = iv.iter().map(|g| g as f32).collect();
        let moved = redistribute_values(env, old, new, &local);
        // Sanity: data followed its elements.
        debug_assert_eq!(moved.len(), new.interval_of(env.rank()).len());
        std::hint::black_box(moved);
    });
    report.makespan()
}

/// Paper Table 3: time to build the communication schedule (simulated
/// seconds) with Sort1 / Sort2 / the simple strategy, on the Fig. 9 mesh
/// under RSB indexing. Expected shape: Sort2 ≤ Sort1; both *decrease* as
/// workstations are added (less data per rank); the simple strategy
/// *increases* with p (message setups) and loses badly by p = 5.
pub fn table3() -> String {
    let paper_sort1 = [0.247, 0.171, 0.136, 0.131];
    let paper_sort2 = [0.236, 0.169, 0.130, 0.125];
    let paper_simple = [0.2, 0.188, 0.176, 0.290];
    let mesh = scenarios::paper_mesh_ordered(OrderingMethod::Spectral, 42);

    let mut out = TableBuilder::new(
        "Table 3: Time to build communication schedule, simulated seconds",
        &["Strategy", "p=2", "p=3", "p=4", "p=5", "paper (2..5)"],
    );
    for strategy in ScheduleStrategy::ALL {
        let mut cells = vec![strategy.name().to_string()];
        for p in 2..=5usize {
            cells.push(secs(measure_schedule_build(&mesh, p, strategy)));
        }
        let paper_row = match strategy {
            ScheduleStrategy::Sort1 => &paper_sort1,
            ScheduleStrategy::Sort2 => &paper_sort2,
            ScheduleStrategy::Simple => &paper_simple,
        };
        cells.push(
            paper_row
                .iter()
                .map(|&x| secs(x))
                .collect::<Vec<_>>()
                .join(" "),
        );
        out.row(cells);
    }
    out.render()
}

/// Builds the schedule on a `p`-workstation cluster and returns the maximum
/// rank time.
pub fn measure_schedule_build(mesh: &Graph, p: usize, strategy: ScheduleStrategy) -> f64 {
    let partition = BlockPartition::uniform(mesh.num_vertices(), p);
    let cost = InspectorCostModel::sun4();
    let spec = ClusterSpec::paper_cluster(p);
    let report = Cluster::new(spec).run(|env| {
        let adj = LocalAdjacency::extract(mesh, &partition, env.rank());
        let t0 = env.now();
        match strategy {
            ScheduleStrategy::Sort1 | ScheduleStrategy::Sort2 => {
                let (schedule, work) =
                    build_schedule_symmetric(&partition, &adj, env.rank(), strategy);
                env.compute(cost.seconds(&work));
                std::hint::black_box(schedule);
            }
            ScheduleStrategy::Simple => {
                let schedule = build_schedule_simple(env, &partition, &adj, &cost);
                std::hint::black_box(schedule);
            }
        }
        (env.now() - t0).max(0.0)
    });
    report.into_results().into_iter().fold(0.0f64, f64::max)
}

/// Paper Table 4: execution time of the parallel loop (500 iterations) in
/// the static environment, with the §4 nonuniform efficiency. Expected
/// shape: T(1) ≈ 97.6 s (calibrated); times fall with added workstations
/// while efficiency declines from 1 toward ~0.6 at p = 5.
pub fn table4() -> String {
    let paper = [
        (1usize, 97.61, 1.0),
        (2, 55.68, 0.88),
        (3, 42.27, 0.77),
        (4, 34.06, 0.72),
        (5, 31.50, 0.62),
    ];
    let iters = iteration_count();
    let mesh = scenarios::paper_mesh_ordered(OrderingMethod::Spectral, 42);
    let config = StanceConfig::default().without_load_balancing();

    // Sequential reference times per §4: on machine i alone the task takes
    // seq_work / speed_i. All paper machines have speed 1.
    let seq_time = measure_static_run(&mesh, 1, iters, &config);

    let mut out = TableBuilder::new(
        format!(
            "Table 4: Parallel loop, static environment, {iters} iterations (simulated seconds)"
        ),
        &[
            "Workstations",
            "Measured T (s)",
            "Measured E",
            "Paper T (s)",
            "Paper E",
        ],
    );
    for (p, paper_t, paper_e) in paper {
        let t = if p == 1 {
            seq_time
        } else {
            measure_static_run(&mesh, p, iters, &config)
        };
        let seq_times = vec![seq_time; p];
        let e = stance::static_efficiency(t, &seq_times);
        out.row(vec![
            format!("1..{p}"),
            secs(t),
            format!("{e:.2}"),
            secs(paper_t),
            format!("{paper_e:.2}"),
        ]);
    }
    out.render()
}

/// Runs the full loop on a static cluster; returns the makespan.
pub fn measure_static_run(mesh: &Graph, p: usize, iters: usize, config: &StanceConfig) -> f64 {
    let spec = scenarios::static_cluster(p);
    let report = Cluster::new(spec).run(|env| {
        let mut session = AdaptiveSession::setup(
            env,
            mesh,
            RelaxationKernel,
            scenarios::initial_value,
            config,
        );
        session.run_adaptive(env, iters);
    });
    report.makespan()
}

/// One adaptive measurement: `(with_lb_time, without_lb_time, check_cost,
/// rebalance_cost)` for `p` workstations.
pub fn measure_adaptive_run(mesh: &Graph, p: usize, iters: usize) -> (f64, f64, f64, f64) {
    let spec = scenarios::adaptive_cluster(p);

    let lb_config = StanceConfig {
        check_interval: scenarios::PAPER_CHECK_INTERVAL,
        balancer: BalancerConfig::default(),
        compute_cost: ComputeCostModel::sun4(),
        ..StanceConfig::default()
    };
    let report = Cluster::new(spec.clone()).run(|env| {
        let mut session = AdaptiveSession::setup(
            env,
            mesh,
            RelaxationKernel,
            scenarios::initial_value,
            &lb_config,
        );
        session.run_adaptive(env, iters)
    });
    let with_lb = report.makespan();
    let (check_cost, rebalance_cost) = report
        .results()
        .map(|r| {
            let per_check = if r.checks > 0 {
                r.check_cost / r.checks as f64
            } else {
                0.0
            };
            (per_check, r.rebalance_cost)
        })
        .fold((0.0f64, 0.0f64), |acc, x| (acc.0.max(x.0), acc.1.max(x.1)));

    let nolb_config = StanceConfig::default().without_load_balancing();
    let report = Cluster::new(spec).run(|env| {
        let mut session = AdaptiveSession::setup(
            env,
            mesh,
            RelaxationKernel,
            scenarios::initial_value,
            &nolb_config,
        );
        session.run_adaptive(env, iters);
    });
    let without_lb = report.makespan();
    (with_lb, without_lb, check_cost, rebalance_cost)
}

/// Paper Table 5: the adaptive environment (constant competing load on
/// workstation 1). Expected shape: load balancing roughly halves the
/// execution time at every p; the check cost is an order of magnitude below
/// the rebalance cost, which itself is on the order of a few iterations.
pub fn table5() -> String {
    type PaperRow = (usize, Option<(f64, f64, f64, f64)>, f64);
    let paper: [PaperRow; 5] = [
        (1, None, 290.93),
        (2, Some((88.96, 166.2, 0.005, 0.58)), 0.0),
        (3, Some((57.22, 115.6, 0.007, 0.39)), 0.0),
        (4, Some((43.52, 92.54, 0.008, 0.19)), 0.0),
        (5, Some((40.56, 79.32, 0.011, 0.17)), 0.0),
    ];
    let iters = iteration_count();
    let mesh = scenarios::paper_mesh_ordered(OrderingMethod::Spectral, 42);

    let mut out = TableBuilder::new(
        format!(
            "Table 5: Parallel loop, adaptive environment, {iters} iterations (simulated seconds)"
        ),
        &[
            "Workstations",
            "T with LB",
            "T without LB",
            "Check cost",
            "LB cost",
            "Paper (LB/noLB/check/cost)",
        ],
    );
    for (p, paper_cells, paper_seq) in paper {
        if p == 1 {
            let config = StanceConfig::default().without_load_balancing();
            let spec = scenarios::adaptive_cluster(1);
            let report = Cluster::new(spec).run(|env| {
                let mut s = AdaptiveSession::setup(
                    env,
                    &mesh,
                    RelaxationKernel,
                    scenarios::initial_value,
                    &config,
                );
                s.run_adaptive(env, iters);
            });
            out.row(vec![
                "1".into(),
                secs(report.makespan()),
                "-".into(),
                "-".into(),
                "-".into(),
                format!("{} (sequential)", secs(paper_seq)),
            ]);
            continue;
        }
        let (with_lb, without_lb, check, rebalance) = measure_adaptive_run(&mesh, p, iters);
        let (pl, pn, pc, pr) = paper_cells.expect("multi-workstation rows have paper numbers");
        out.row(vec![
            format!("1..{p}"),
            secs(with_lb),
            secs(without_lb),
            secs(check),
            secs(rebalance),
            format!("{}/{}/{}/{}", secs(pl), secs(pn), secs(pc), secs(pr)),
        ]);
    }
    out.render()
}
