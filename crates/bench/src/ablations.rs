//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! * **Ordering method** (Phase A): what the 1-D indexing choice costs in
//!   actual execution time, not just cut metrics.
//! * **Multicast** (§3.6): the paper notes the library "has the ability to
//!   use multicast to perform all communications" — how much do broadcasts
//!   and the load-balance protocol gain?
//! * **Check frequency** (§3.5): the paper calls choosing it "outside the
//!   scope of this paper"; we sweep it.
//! * **MCR on/off inside the balancer** (§3.4): end-to-end effect on an
//!   adaptive run, complementing Table 2's isolated measurement.

use stance::locality::OrderingMethod;
use stance::prelude::*;
use stance::scenarios;
use stance::sim::Cluster;

use crate::fmt::{secs, TableBuilder};
use crate::iteration_count;

/// Execution time of the full loop under each ordering method, p = 4,
/// static cluster. Shows Phase A quality translating into wall time.
pub fn ablation_ordering() -> String {
    let iters = (iteration_count() / 5).max(20);
    let mut out = TableBuilder::new(
        format!("Ablation: 1-D ordering method vs execution time (p=4, {iters} iterations)"),
        &["Method", "T (s)", "Gather msgs/rank/iter", "Ghosts total"],
    );
    for method in OrderingMethod::ALL {
        let mesh = scenarios::small_mesh_ordered(method, 42);
        let config = StanceConfig::default().without_load_balancing();
        let spec = scenarios::static_cluster(4);
        let report = Cluster::new(spec).run(|env| {
            let mut s = AdaptiveSession::setup(
                env,
                &mesh,
                RelaxationKernel,
                scenarios::initial_value,
                &config,
            );
            let ghosts = s.schedule().num_ghosts();
            s.run_adaptive(env, iters);
            (env.stats().messages_sent, ghosts)
        });
        let t = report.makespan();
        let msgs: u64 = report.results().map(|(m, _)| m).sum();
        let ghosts: u32 = report.results().map(|(_, g)| g).sum();
        out.row(vec![
            method.name().to_string(),
            secs(t),
            format!("{:.1}", msgs as f64 / 4.0 / iters as f64),
            ghosts.to_string(),
        ]);
    }
    out.render()
}

/// Load-balance check cost with and without hardware multicast, across
/// cluster sizes. Multicast shrinks the controller's broadcast to one
/// message (§3.6).
pub fn ablation_multicast() -> String {
    let mut out = TableBuilder::new(
        "Ablation: multicast on/off vs load-balance check cost",
        &["Workstations", "Check (unicast)", "Check (multicast)"],
    );
    for p in [2usize, 4, 8, 16] {
        let costs: Vec<f64> = [false, true]
            .iter()
            .map(|&mc| {
                let mesh = scenarios::small_mesh_ordered(OrderingMethod::Rcb, 7);
                let spec = scenarios::static_cluster(p)
                    .with_network(NetworkSpec::ethernet_10mbit().with_multicast(mc));
                let config = StanceConfig::default().with_check_interval(10);
                let report = Cluster::new(spec).run(|env| {
                    let mut s = AdaptiveSession::setup(
                        env,
                        &mesh,
                        RelaxationKernel,
                        scenarios::initial_value,
                        &config,
                    );
                    s.run_block(env, 10);
                    let t0 = env.now();
                    s.check_and_rebalance(env, 100);
                    env.now() - t0
                });
                report.into_results().into_iter().fold(0.0f64, f64::max)
            })
            .collect();
        out.row(vec![p.to_string(), secs(costs[0]), secs(costs[1])]);
    }
    out.render()
}

/// Sweep of the load-balance check interval on the paper's adaptive
/// scenario (the parameter §3.5 leaves open): too frequent wastes checks,
/// too rare reacts slowly.
pub fn ablation_check_interval() -> String {
    let iters = (iteration_count() / 2).max(50);
    let mesh = scenarios::small_mesh_ordered(OrderingMethod::Rcb, 42);
    let mut out = TableBuilder::new(
        format!("Ablation: check interval on the adaptive scenario (p=3, {iters} iterations)"),
        &["Interval", "T (s)", "Checks", "Remaps", "Check cost total"],
    );
    for interval in [2usize, 5, 10, 25, 50] {
        let spec = scenarios::adaptive_cluster(3);
        let config = StanceConfig::default().with_check_interval(interval);
        let report = Cluster::new(spec).run(|env| {
            let mut s = AdaptiveSession::setup(
                env,
                &mesh,
                RelaxationKernel,
                scenarios::initial_value,
                &config,
            );
            s.run_adaptive(env, iters)
        });
        let t = report.makespan();
        let rep = &report.ranks[0].result;
        out.row(vec![
            interval.to_string(),
            secs(t),
            rep.checks.to_string(),
            rep.remaps.to_string(),
            secs(rep.check_cost),
        ]);
    }
    out.render()
}

/// End-to-end effect of MCR inside the balancer on an adaptive run where
/// the load shifts twice (forcing two remaps).
pub fn ablation_mcr_end_to_end() -> String {
    let iters = (iteration_count() / 2).max(50);
    let mesh = scenarios::small_mesh_ordered(OrderingMethod::Rcb, 42);
    let mut out = TableBuilder::new(
        format!("Ablation: MCR in the balancer (p=4, shifting load, {iters} iterations)"),
        &["MCR", "T (s)", "Remaps", "Rebalance cost total"],
    );
    for use_mcr in [true, false] {
        // The load moves from rank 0 to rank 1 mid-run, forcing a second
        // remap whose cost depends on the arrangement chosen by the first.
        let spec = scenarios::static_cluster(4)
            .with_load(0, LoadTimeline::competing_load(0.0, 2.0, 2))
            .with_load(1, LoadTimeline::competing_load(2.0, f64::INFINITY, 2));
        let mut config = StanceConfig::default().with_check_interval(10);
        config.balancer.use_mcr = use_mcr;
        let report = Cluster::new(spec).run(|env| {
            let mut s = AdaptiveSession::setup(
                env,
                &mesh,
                RelaxationKernel,
                scenarios::initial_value,
                &config,
            );
            s.run_adaptive(env, iters)
        });
        let t = report.makespan();
        let rep = &report.ranks[0].result;
        out.row(vec![
            if use_mcr { "on" } else { "off" }.to_string(),
            secs(t),
            rep.remaps.to_string(),
            secs(rep.rebalance_cost),
        ]);
    }
    out.render()
}
