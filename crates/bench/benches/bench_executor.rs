//! Criterion bench for Phase C: wall-clock cost of the relaxation sweep and
//! of a full gather + sweep iteration on the simulated cluster (backing
//! Tables 4–5's per-iteration costs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use stance::executor::{
    parallel_relaxation_step, sequential_relaxation, ComputeCostModel, GhostedArray, LoopRunner,
};
use stance::inspector::{build_schedule_symmetric, LocalAdjacency, ScheduleStrategy};
use stance::locality::OrderingMethod;
use stance::onedim::BlockPartition;
use stance::prelude::*;
use stance::scenarios;

fn bench_sweep(c: &mut Criterion) {
    let mesh = scenarios::small_mesh_ordered(OrderingMethod::Rcb, 13);
    let n = mesh.num_vertices();
    let part = BlockPartition::uniform(n, 1);
    let adj = LocalAdjacency::extract(&mesh, &part, 0);
    let (sched, _) = build_schedule_symmetric(&part, &adj, 0, ScheduleStrategy::Sort2);
    let tadj = sched.translate_adjacency(&adj);
    let values = GhostedArray::from_local((0..n).map(|i| i as f64).collect(), 0);
    let mut out = vec![0.0; n];

    let mut group = c.benchmark_group("kernel");
    group.throughput(Throughput::Elements(tadj.num_refs() as u64));
    group.bench_function("parallel_step_3k", |b| {
        b.iter(|| parallel_relaxation_step(std::hint::black_box(&tadj), &values, &mut out))
    });
    let mut y: Vec<f64> = (0..n).map(|i| i as f64).collect();
    group.bench_function("sequential_step_3k", |b| {
        b.iter(|| sequential_relaxation(std::hint::black_box(&mesh), &mut y, 1))
    });
    group.finish();
}

fn bench_full_iteration(c: &mut Criterion) {
    let mesh = scenarios::small_mesh_ordered(OrderingMethod::Rcb, 13);
    let mut group = c.benchmark_group("cluster_iteration");
    group.sample_size(10);
    for p in [2usize, 4] {
        group.bench_with_input(BenchmarkId::new("gather_sweep", p), &p, |b, &p| {
            b.iter(|| {
                let spec = ClusterSpec::uniform(p).with_network(NetworkSpec::zero_cost());
                Cluster::new(spec).run(|env| {
                    let part = BlockPartition::uniform(mesh.num_vertices(), p);
                    let adj = LocalAdjacency::extract(&mesh, &part, env.rank());
                    let (sched, _) = build_schedule_symmetric(
                        &part,
                        &adj,
                        env.rank(),
                        ScheduleStrategy::Sort2,
                    );
                    let mut runner = LoopRunner::new(sched, &adj, ComputeCostModel::zero());
                    let owned = part.interval_of(env.rank()).len();
                    let mut values = runner.make_values(vec![1.0; owned]);
                    runner.run(env, &mut values, 5);
                })
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sweep, bench_full_iteration);
criterion_main!(benches);
