//! Criterion bench for Phase C: wall-clock cost of the relaxation sweep and
//! of a full gather + sweep iteration on the simulated cluster (backing
//! Tables 4–5's per-iteration costs).
//!
//! The `kernel` group doubles as the trait-dispatch guard: `hardcoded_f64`
//! is a local copy of the pre-trait executor loop, and `generic_kernel_f64`
//! is the shipped `RelaxationKernel` running through the `Kernel<E>` trait.
//! Monomorphization should make the two indistinguishable — a gap here
//! means the generic API grew an abstraction cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use stance::executor::{sequential_relaxation, ComputeCostModel, GhostedArray, LoopRunner};
use stance::inspector::{
    build_schedule_symmetric, LocalAdjacency, ScheduleStrategy, TranslatedAdjacency,
};
use stance::locality::OrderingMethod;
use stance::onedim::BlockPartition;
use stance::prelude::*;
use stance::scenarios;

/// The seed's hardcoded f64 relaxation loop, kept verbatim as the baseline
/// the generic kernel is measured against.
fn hardcoded_relaxation_step(tadj: &TranslatedAdjacency, combined: &[f64], out: &mut [f64]) {
    for (l, o) in out.iter_mut().enumerate() {
        let nbrs = tadj.neighbors_of(l);
        if nbrs.is_empty() {
            *o = combined[l];
            continue;
        }
        let mut t = 0.0;
        for &s in nbrs {
            t += combined[s as usize];
        }
        *o = t / nbrs.len() as f64;
    }
}

fn bench_sweep(c: &mut Criterion) {
    let mesh = scenarios::small_mesh_ordered(OrderingMethod::Rcb, 13);
    let n = mesh.num_vertices();
    let part = BlockPartition::uniform(n, 1);
    let adj = LocalAdjacency::extract(&mesh, &part, 0);
    let (sched, _) = build_schedule_symmetric(&part, &adj, 0, ScheduleStrategy::Sort2);
    let tadj = sched.translate_adjacency(&adj);
    let values: GhostedArray = GhostedArray::from_local((0..n).map(|i| i as f64).collect(), 0);
    let mut out = vec![0.0; n];

    let mut group = c.benchmark_group("kernel");
    group.throughput(Throughput::Elements(tadj.num_refs() as u64));
    group.bench_function("hardcoded_f64_3k", |b| {
        b.iter(|| {
            hardcoded_relaxation_step(std::hint::black_box(&tadj), values.combined(), &mut out);
        });
    });
    group.bench_function("generic_kernel_f64_3k", |b| {
        b.iter(|| {
            Kernel::<f64>::sweep(
                &RelaxationKernel,
                std::hint::black_box(&tadj),
                values.combined(),
                &mut out,
            );
        });
    });
    let pair_values: GhostedArray<[f64; 2]> =
        GhostedArray::from_local((0..n).map(|i| [i as f64, -(i as f64)]).collect(), 0);
    let mut pair_out = vec![[0.0; 2]; n];
    group.bench_function("generic_kernel_f64x2_3k", |b| {
        b.iter(|| {
            Kernel::<[f64; 2]>::sweep(
                &RelaxationKernel,
                std::hint::black_box(&tadj),
                pair_values.combined(),
                &mut pair_out,
            );
        });
    });
    let mut y: Vec<f64> = (0..n).map(|i| i as f64).collect();
    group.bench_function("sequential_step_3k", |b| {
        b.iter(|| sequential_relaxation(std::hint::black_box(&mesh), &mut y, 1));
    });
    group.finish();
}

fn bench_full_iteration(c: &mut Criterion) {
    let mesh = scenarios::small_mesh_ordered(OrderingMethod::Rcb, 13);
    let mut group = c.benchmark_group("cluster_iteration");
    group.sample_size(10);
    for p in [2usize, 4] {
        group.bench_with_input(BenchmarkId::new("gather_sweep", p), &p, |b, &p| {
            b.iter(|| {
                let spec = ClusterSpec::uniform(p).with_network(NetworkSpec::zero_cost());
                Cluster::new(spec).run(|env| {
                    let part = BlockPartition::uniform(mesh.num_vertices(), p);
                    let adj = LocalAdjacency::extract(&mesh, &part, env.rank());
                    let (sched, _) =
                        build_schedule_symmetric(&part, &adj, env.rank(), ScheduleStrategy::Sort2);
                    let mut runner =
                        LoopRunner::new(sched, &adj, ComputeCostModel::zero(), RelaxationKernel);
                    let owned = part.interval_of(env.rank()).len();
                    let mut values = runner.make_values(vec![1.0; owned]);
                    runner.run(env, &mut values, 5);
                })
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sweep, bench_full_iteration);
criterion_main!(benches);
