//! Criterion bench for the native thread-pool backend: full executor
//! iterations (ghost gather + relaxation sweep) on real OS threads at
//! 1/2/4/8 ranks over the paper-scale mesh. The per-thread-count medians
//! and speedups land in `results/BENCH_native.json` via `repro_all`; this
//! bench is the interactive/smoke view of the same measurement.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use stance_bench::native::{bench_mesh, time_sweep_gather, THREAD_COUNTS};

fn bench_native_sweep_gather(c: &mut Criterion) {
    let mesh = bench_mesh();
    let n = mesh.num_vertices() as u64;
    let mut group = c.benchmark_group("native_sweep_gather");
    group.sample_size(10);
    // One bench iteration = a full native cluster run of 5 executor
    // iterations (spawn + warm-up included; the steady-state per-iteration
    // seconds are what BENCH_native.json reports).
    group.throughput(Throughput::Elements(n * 5));
    for &threads in &THREAD_COUNTS {
        group.bench_function(format!("threads_{threads}"), |b| {
            b.iter(|| time_sweep_gather(&mesh, threads, 5));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_native_sweep_gather);
criterion_main!(benches);
