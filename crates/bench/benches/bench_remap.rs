//! Criterion bench backing Table 2 and the fast-remap work: wall-clock
//! cost of planning and executing a redistribution, plus the end-to-end
//! remap pipeline (legacy frozen baseline vs the shipped allocation-lean
//! `RemapScratch` path — the full BENCH_remap.json sweep lives in
//! `stance_bench::remap`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use stance::balance::redistribute_values;
use stance::onedim::{
    minimize_cost_redistribution, Arrangement, BlockPartition, RedistCostModel, RedistributionPlan,
};
use stance::prelude::*;
use stance_bench::remap::{time_remap, Path, Shift};
use stance_bench::{random_capabilities, workload_rng};

fn bench_plan(c: &mut Criterion) {
    let mut group = c.benchmark_group("redistribution_plan");
    for p in [5usize, 20] {
        let mut rng = workload_rng(300 + p as u64);
        let old_w = random_capabilities(&mut rng, p);
        let new_w = random_capabilities(&mut rng, p);
        let old = BlockPartition::from_weights(1 << 20, &old_w, Arrangement::identity(p));
        let new =
            minimize_cost_redistribution(&old, &new_w, &RedistCostModel::ethernet_f64()).partition;
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, _| {
            b.iter(|| RedistributionPlan::between(std::hint::black_box(&old), &new));
        });
    }
    group.finish();
}

fn bench_execute(c: &mut Criterion) {
    let mut group = c.benchmark_group("redistribution_execute");
    group.sample_size(20);
    for n in [16_384usize, 131_072] {
        let p = 4;
        let mut rng = workload_rng(400 + n as u64);
        let old_w = random_capabilities(&mut rng, p);
        let new_w = random_capabilities(&mut rng, p);
        let old = BlockPartition::from_weights(n, &old_w, Arrangement::identity(p));
        let new =
            minimize_cost_redistribution(&old, &new_w, &RedistCostModel::ethernet_f64()).partition;
        group.throughput(Throughput::Bytes((n * 8) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let spec = ClusterSpec::uniform(p).with_network(NetworkSpec::zero_cost());
                Cluster::new(spec).run(|env| {
                    let iv = old.interval_of(env.rank());
                    let local: Vec<f64> = iv.iter().map(|g| g as f64).collect();
                    std::hint::black_box(redistribute_values(env, &old, &new, &local));
                })
            });
        });
    }
    group.finish();
}

fn bench_remap_pipeline(c: &mut Criterion) {
    // End-to-end remap latency, legacy vs lean, at a reduced scale (the
    // paper-scale sweep is the repro_all harness). Each sample drives a
    // fresh 3-rank cluster through 2 timed remaps.
    let mesh = stance::scenarios::small_mesh_ordered(OrderingMethod::Rcb, 7);
    let mut group = c.benchmark_group("remap_pipeline");
    group.sample_size(10);
    for (name, path) in [("legacy", Path::Legacy), ("lean", Path::Lean)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &path, |b, &path| {
            b.iter(|| {
                std::hint::black_box(time_remap::<f64>(
                    &mesh,
                    3,
                    Shift::Large,
                    2,
                    path,
                    false,
                    |i| i as f64,
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_plan, bench_execute, bench_remap_pipeline);
criterion_main!(benches);
