//! Criterion bench for the split-phase gather: synchronous vs overlapped
//! executor iterations on the native backend over the boundary-heavy
//! paper-scale mesh, at 1/2/4/8 ranks. The per-thread-count medians and
//! sync/split speedups land in `results/BENCH_overlap.json` via
//! `repro_all`; this bench is the interactive/smoke view of the same
//! measurement.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use stance_bench::overlap::{overlap_mesh, time_sweep_gather, THREAD_COUNTS};

fn bench_overlap_sweep_gather(c: &mut Criterion) {
    let mesh = overlap_mesh();
    let n = mesh.num_vertices() as u64;
    let mut group = c.benchmark_group("overlap_sweep_gather");
    group.sample_size(10);
    // One bench iteration = a full native cluster run of 5 executor
    // iterations (spawn + warm-up included; the steady-state
    // per-iteration seconds are what BENCH_overlap.json reports).
    group.throughput(Throughput::Elements(n * 5));
    for &threads in &THREAD_COUNTS {
        group.bench_function(format!("sync_threads_{threads}"), |b| {
            b.iter(|| time_sweep_gather(&mesh, threads, 5, false));
        });
        group.bench_function(format!("split_threads_{threads}"), |b| {
            b.iter(|| time_sweep_gather(&mesh, threads, 5, true));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_overlap_sweep_gather);
criterion_main!(benches);
