//! Criterion bench backing Table 3: wall-clock cost of the symmetric
//! schedule builders (sort1 vs sort2) and of the dedup hash they rely on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stance::inspector::{build_schedule_symmetric, LocalAdjacency, RefHashMap, ScheduleStrategy};
use stance::locality::OrderingMethod;
use stance::onedim::BlockPartition;
use stance::scenarios;

fn bench_symmetric_builders(c: &mut Criterion) {
    let mesh = scenarios::small_mesh_ordered(OrderingMethod::Rcb, 11);
    let n = mesh.num_vertices();
    let mut group = c.benchmark_group("schedule_build");
    for p in [2usize, 5] {
        let part = BlockPartition::uniform(n, p);
        let adj = LocalAdjacency::extract(&mesh, &part, 0);
        for strategy in [ScheduleStrategy::Sort1, ScheduleStrategy::Sort2] {
            group.bench_with_input(BenchmarkId::new(strategy.name(), p), &p, |b, _| {
                b.iter(|| build_schedule_symmetric(std::hint::black_box(&part), &adj, 0, strategy));
            });
        }
    }
    group.finish();
}

fn bench_refhash(c: &mut Criterion) {
    let mut group = c.benchmark_group("refhash");
    group.bench_function("insert_10k", |b| {
        b.iter(|| {
            let mut m = RefHashMap::with_capacity(10_000);
            for i in 0..10_000u32 {
                m.insert_if_absent(std::hint::black_box(i * 7), i);
            }
            m
        });
    });
    let mut filled = RefHashMap::with_capacity(10_000);
    for i in 0..10_000u32 {
        filled.insert_if_absent(i * 7, i);
    }
    group.bench_function("lookup_10k", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..10_000u32 {
                if let Some(v) = filled.get(std::hint::black_box(i * 7)) {
                    acc += u64::from(v);
                }
            }
            acc
        });
    });
    group.finish();
}

criterion_group!(benches, bench_symmetric_builders, bench_refhash);
criterion_main!(benches);
