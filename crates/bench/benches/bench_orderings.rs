//! Criterion bench for Phase A: wall-clock cost of each one-dimensional
//! indexing method on a mid-size unstructured mesh. RSB (the paper's
//! choice) is the most expensive; the space-filling curves are the
//! cheapest — this is the remapping-speed trade-off §3.1 discusses.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stance::locality::{compute_ordering, meshgen, OrderingMethod};

fn bench_orderings(c: &mut Criterion) {
    let mesh = {
        let grid = meshgen::triangulated_grid(56, 56, 0.6, 9);
        meshgen::thin_to_edges(&grid, grid.num_vertices() * 3 / 2, 17)
    };
    let mut group = c.benchmark_group("ordering_3k");
    group.sample_size(20);
    for method in OrderingMethod::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(method.name()),
            &method,
            |b, &m| b.iter(|| compute_ordering(std::hint::black_box(&mesh), m)),
        );
    }
    group.finish();
}

fn bench_meshgen(c: &mut Criterion) {
    let mut group = c.benchmark_group("meshgen");
    group.sample_size(10);
    group.bench_function("triangulated_grid_56x56", |b| {
        b.iter(|| meshgen::triangulated_grid(56, 56, 0.6, std::hint::black_box(9)));
    });
    group.bench_function("random_geometric_3k", |b| {
        b.iter(|| meshgen::random_geometric(3000, 0.02, std::hint::black_box(5)));
    });
    group.finish();
}

criterion_group!(benches, bench_orderings, bench_meshgen);
criterion_main!(benches);
