//! Criterion bench for the zero-copy transport: gather/scatter wall-clock
//! at paper scale (30k-vertex matching, 2 ranks — the
//! communication-dominated regime of Tables 4–5) and raw pack/unpack
//! codec throughput, each measured for the frozen legacy path and the
//! shipped bulk path side by side. The precise legacy-vs-bulk medians and
//! speedups land in `results/BENCH_transport.json` via `repro_all`; this
//! bench is the interactive/smoke view of the same comparison.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use stance::prelude::*;
use stance_bench::transport::{
    matching_graph, time_codecs, time_primitive, Path, Primitive, PAPER_N_HALF,
};

fn bench_gather_paper_scale(c: &mut Criterion) {
    let g = matching_graph(PAPER_N_HALF);
    let mut group = c.benchmark_group("gather_paper_scale");
    group.sample_size(10);
    // Each iteration is a full 2-rank cluster run of 10 gathers; the
    // inner per-gather seconds are what BENCH_transport.json reports.
    group.bench_function("legacy_f64", |b| {
        b.iter(|| time_primitive::<f64>(&g, 10, Primitive::Gather, Path::Legacy, |i| i as f64));
    });
    group.bench_function("bulk_f64", |b| {
        b.iter(|| time_primitive::<f64>(&g, 10, Primitive::Gather, Path::Bulk, |i| i as f64));
    });
    group.bench_function("legacy_f64x4", |b| {
        b.iter(|| {
            time_primitive::<[f64; 4]>(&g, 10, Primitive::Gather, Path::Legacy, |i| {
                [i as f64, 1.0, -1.0, 0.5]
            })
        });
    });
    group.bench_function("bulk_f64x4", |b| {
        b.iter(|| {
            time_primitive::<[f64; 4]>(&g, 10, Primitive::Gather, Path::Bulk, |i| {
                [i as f64, 1.0, -1.0, 0.5]
            })
        });
    });
    group.finish();
}

fn bench_scatter_paper_scale(c: &mut Criterion) {
    let g = matching_graph(PAPER_N_HALF);
    let mut group = c.benchmark_group("scatter_paper_scale");
    group.sample_size(10);
    group.bench_function("legacy_f64", |b| {
        b.iter(|| time_primitive::<f64>(&g, 10, Primitive::ScatterAdd, Path::Legacy, |i| i as f64));
    });
    group.bench_function("bulk_f64", |b| {
        b.iter(|| time_primitive::<f64>(&g, 10, Primitive::ScatterAdd, Path::Bulk, |i| i as f64));
    });
    group.finish();
}

fn bench_codecs(c: &mut Criterion) {
    let values_f64: Vec<f64> = (0..200_000).map(|i| i as f64).collect();
    let values_f64x4: Vec<[f64; 4]> = (0..50_000).map(|i| [i as f64, 1.0, -1.0, 0.5]).collect();
    let bytes = (values_f64.len() * f64::SIZE_BYTES) as u64;

    let mut group = c.benchmark_group("codec_throughput");
    group.throughput(Throughput::Bytes(bytes));
    group.bench_function("pack_bulk_f64", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            out.clear();
            f64::pack_into(&values_f64, &mut out);
        });
    });
    group.bench_function("pack_legacy_f64", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(values_f64.len() * f64::SIZE_BYTES);
            for v in &values_f64 {
                v.write_bytes(&mut out);
            }
            out
        });
    });
    let mut wire = Vec::new();
    f64::pack_into(&values_f64, &mut wire);
    group.bench_function("unpack_bulk_f64", |b| {
        let mut dst = vec![0.0f64; values_f64.len()];
        b.iter(|| f64::unpack_into(&wire, &mut dst));
    });
    let mut wire4 = Vec::new();
    <[f64; 4]>::pack_into(&values_f64x4, &mut wire4);
    group.bench_function("unpack_bulk_f64x4", |b| {
        let mut dst = vec![[0.0f64; 4]; values_f64x4.len()];
        b.iter(|| <[f64; 4]>::unpack_into(&wire4, &mut dst));
    });
    group.finish();

    // The combined legacy-vs-bulk codec summary (medians).
    let t = time_codecs(&values_f64x4, 3);
    println!(
        "codec summary [f64;4] ({} bytes): pack {:.1}x, unpack {:.1}x",
        t.bytes,
        t.legacy_pack / t.bulk_pack,
        t.legacy_unpack / t.bulk_unpack
    );
}

criterion_group!(
    benches,
    bench_gather_paper_scale,
    bench_scatter_paper_scale,
    bench_codecs
);
criterion_main!(benches);
