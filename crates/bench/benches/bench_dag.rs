//! Criterion bench for the fused ghost exchange: fused vs per-field
//! gather messages for a three-field, two-stage graph on the native
//! backend over the boundary-heavy paper-scale mesh, at 1/2/4/8 ranks.
//! The per-rank-count medians, deterministic modelled speedups and exact
//! traffic counts land in `results/BENCH_dag.json` via `repro_all`; this
//! bench is the interactive/smoke view of the same measurement.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use stance_bench::dag::{dag_mesh, time_dag_pass, THREAD_COUNTS};

fn bench_dag_fused_exchange(c: &mut Criterion) {
    let mesh = dag_mesh();
    let n = mesh.num_vertices() as u64;
    let mut group = c.benchmark_group("dag_fused_exchange");
    group.sample_size(10);
    // One bench iteration = a full native cluster run of 5 passes of the
    // two-stage graph (spawn + warm-up included; the steady-state
    // per-pass seconds are what BENCH_dag.json reports).
    group.throughput(Throughput::Elements(n * 5));
    for &threads in &THREAD_COUNTS {
        group.bench_function(format!("unfused_threads_{threads}"), |b| {
            b.iter(|| time_dag_pass(&mesh, threads, 5, false));
        });
        group.bench_function(format!("fused_threads_{threads}"), |b| {
            b.iter(|| time_dag_pass(&mesh, threads, 5, true));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dag_fused_exchange);
criterion_main!(benches);
