//! Criterion bench backing Table 1: wall-clock cost of
//! `MinimizeCostRedistribution` as the processor count grows (expected
//! ≈ p³ growth), plus the exhaustive oracle at small p for contrast.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stance::onedim::{
    exhaustive_best_arrangement, minimize_cost_redistribution, Arrangement, BlockPartition,
    RedistCostModel,
};
use stance_bench::{random_capabilities, workload_rng};

fn bench_mcr(c: &mut Criterion) {
    let model = RedistCostModel::ethernet_f64();
    let mut group = c.benchmark_group("mcr");
    for p in [3usize, 5, 10, 15, 20] {
        let mut rng = workload_rng(100 + p as u64);
        let old_w = random_capabilities(&mut rng, p);
        let new_w = random_capabilities(&mut rng, p);
        let old = BlockPartition::from_weights(100_000, &old_w, Arrangement::identity(p));
        group.bench_with_input(BenchmarkId::new("greedy", p), &p, |b, _| {
            b.iter(|| minimize_cost_redistribution(std::hint::black_box(&old), &new_w, &model));
        });
    }
    for p in [3usize, 5, 6] {
        let mut rng = workload_rng(200 + p as u64);
        let old_w = random_capabilities(&mut rng, p);
        let new_w = random_capabilities(&mut rng, p);
        let old = BlockPartition::from_weights(100_000, &old_w, Arrangement::identity(p));
        group.bench_with_input(BenchmarkId::new("exhaustive", p), &p, |b, _| {
            b.iter(|| exhaustive_best_arrangement(std::hint::black_box(&old), &new_w, &model));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mcr);
criterion_main!(benches);
