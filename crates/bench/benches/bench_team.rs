//! Criterion bench for worker teams: executor iterations on the native
//! backend over the interior-heavy paper-scale mesh at 1/2 ranks ×
//! 1/2/4/8 team lanes, plus the single-threaded chunked-vs-scalar sweep
//! comparison. The per-cell medians, team speedups and the
//! chunked/scalar ratio land in `results/BENCH_team.json` via
//! `repro_all`; this bench is the interactive/smoke view of the same
//! measurement.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use stance::executor::RelaxationKernel;
use stance_bench::team::{
    team_mesh, time_full_sweeps, time_team_iters, ScalarRelaxation, RANK_COUNTS, TEAM_SIZES,
};

fn bench_team_sweep(c: &mut Criterion) {
    let mesh = team_mesh();
    let n = mesh.num_vertices() as u64;
    let mut group = c.benchmark_group("team_sweep");
    group.sample_size(10);
    // One bench iteration = a full native cluster run of 5 executor
    // iterations (spawn + warm-up included; the steady-state
    // per-iteration seconds are what BENCH_team.json reports).
    group.throughput(Throughput::Elements(n * 5));
    for &ranks in &RANK_COUNTS {
        for &team in &TEAM_SIZES {
            group.bench_function(format!("ranks_{ranks}_team_{team}"), |b| {
                b.iter(|| time_team_iters(&mesh, ranks, team, 5));
            });
        }
    }
    group.finish();
}

fn bench_chunked_vs_scalar(c: &mut Criterion) {
    let mesh = team_mesh();
    let n = mesh.num_vertices() as u64;
    let mut group = c.benchmark_group("chunked_vs_scalar");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n * 3));
    group.bench_function("scalar_sweep", |b| {
        b.iter(|| time_full_sweeps(&mesh, &ScalarRelaxation, 3));
    });
    group.bench_function("chunked_sweep", |b| {
        b.iter(|| time_full_sweeps(&mesh, &RelaxationKernel, 3));
    });
    group.finish();
}

criterion_group!(benches, bench_team_sweep, bench_chunked_vs_scalar);
criterion_main!(benches);
