//! Computational graphs in compressed sparse row form, with vertex
//! coordinates.
//!
//! "The nodes of these graphs represent tasks that can be executed
//! concurrently, while the edges represent the interactions between them"
//! (§3.1). Vertices carry 2-D or 3-D coordinates because the geometric
//! partitioners (RCB, inertial, space-filling curves) need them; purely
//! combinatorial methods (spectral) ignore them.

/// An undirected computational graph in CSR form with coordinates.
///
/// Invariants (checked at construction):
/// * adjacency is symmetric: `v ∈ adj(u) ⇔ u ∈ adj(v)`;
/// * no self-loops, no duplicate edges;
/// * neighbor lists are sorted ascending;
/// * one coordinate per vertex.
#[derive(Debug, Clone, PartialEq)]
pub struct Graph {
    /// CSR row pointers, length `n + 1`.
    xadj: Vec<usize>,
    /// CSR column indices, length `2m` (each undirected edge appears twice).
    adjncy: Vec<u32>,
    /// Vertex coordinates; `z = 0` for 2-D graphs.
    coords: Vec<[f64; 3]>,
    /// Geometric dimensionality (2 or 3).
    dim: usize,
}

impl Graph {
    /// Builds a graph from an undirected edge list.
    ///
    /// Edges may appear in either orientation; duplicates and self-loops are
    /// rejected.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range, a self-loop or duplicate edge
    /// is present, `coords.len() != n`, or `dim` is not 2 or 3.
    pub fn from_edges(n: usize, edges: &[(u32, u32)], coords: Vec<[f64; 3]>, dim: usize) -> Self {
        assert!(dim == 2 || dim == 3, "dim must be 2 or 3, got {dim}");
        assert_eq!(coords.len(), n, "need one coordinate per vertex");
        let mut degree = vec![0usize; n];
        for &(u, v) in edges {
            assert!(
                (u as usize) < n && (v as usize) < n,
                "edge ({u}, {v}) out of range for n = {n}"
            );
            assert_ne!(u, v, "self-loop at vertex {u}");
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut xadj = Vec::with_capacity(n + 1);
        let mut acc = 0;
        xadj.push(0);
        for d in &degree {
            acc += d;
            xadj.push(acc);
        }
        let mut adjncy = vec![0u32; acc];
        let mut cursor = xadj.clone();
        for &(u, v) in edges {
            adjncy[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            adjncy[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        for v in 0..n {
            let row = &mut adjncy[xadj[v]..xadj[v + 1]];
            row.sort_unstable();
            for w in row.windows(2) {
                assert_ne!(w[0], w[1], "duplicate edge at vertex {v}");
            }
        }
        Graph {
            xadj,
            adjncy,
            coords,
            dim,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.xadj.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.adjncy.len() / 2
    }

    /// Geometric dimensionality (2 or 3).
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The sorted neighbor list of `v`.
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.adjncy[self.xadj[v]..self.xadj[v + 1]]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.xadj[v + 1] - self.xadj[v]
    }

    /// Coordinate of `v`.
    #[inline]
    pub fn coord(&self, v: usize) -> [f64; 3] {
        self.coords[v]
    }

    /// All coordinates.
    #[inline]
    pub fn coords(&self) -> &[[f64; 3]] {
        &self.coords
    }

    /// Iterates over each undirected edge once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.num_vertices()).flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .filter(move |&&v| (u as u32) < v)
                .map(move |&v| (u as u32, v))
        })
    }

    /// Whether the graph is connected (trivially true for `n ≤ 1`).
    pub fn is_connected(&self) -> bool {
        let n = self.num_vertices();
        if n <= 1 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for &v in self.neighbors(u) {
                let v = v as usize;
                if !seen[v] {
                    seen[v] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == n
    }

    /// Connected components: returns `(component_id_per_vertex, count)`.
    pub fn connected_components(&self) -> (Vec<u32>, usize) {
        let n = self.num_vertices();
        let mut comp = vec![u32::MAX; n];
        let mut count = 0;
        let mut stack = Vec::new();
        for start in 0..n {
            if comp[start] != u32::MAX {
                continue;
            }
            comp[start] = count as u32;
            stack.push(start);
            while let Some(u) = stack.pop() {
                for &v in self.neighbors(u) {
                    let v = v as usize;
                    if comp[v] == u32::MAX {
                        comp[v] = count as u32;
                        stack.push(v);
                    }
                }
            }
            count += 1;
        }
        (comp, count)
    }

    /// Relabels vertices: vertex `v` becomes `new_of_old[v]`. The result has
    /// identical structure under the renaming; coordinates follow their
    /// vertices.
    ///
    /// # Panics
    /// Panics unless `new_of_old` is a permutation of `0..n`.
    pub fn relabel(&self, new_of_old: &[u32]) -> Graph {
        let n = self.num_vertices();
        assert_eq!(new_of_old.len(), n, "permutation length mismatch");
        let mut seen = vec![false; n];
        for &x in new_of_old {
            assert!((x as usize) < n && !seen[x as usize], "not a permutation");
            seen[x as usize] = true;
        }
        let mut edges = Vec::with_capacity(self.num_edges());
        for (u, v) in self.edges() {
            edges.push((new_of_old[u as usize], new_of_old[v as usize]));
        }
        let mut coords = vec![[0.0; 3]; n];
        for v in 0..n {
            coords[new_of_old[v] as usize] = self.coords[v];
        }
        Graph::from_edges(n, &edges, coords, self.dim)
    }

    /// The induced subgraph on `vertices` (given as original ids). Returns
    /// the subgraph and the mapping `sub_id → original_id`.
    pub fn induced_subgraph(&self, vertices: &[u32]) -> (Graph, Vec<u32>) {
        let n = self.num_vertices();
        let mut sub_id = vec![u32::MAX; n];
        for (i, &v) in vertices.iter().enumerate() {
            assert!(
                sub_id[v as usize] == u32::MAX,
                "vertex {v} listed twice in induced_subgraph"
            );
            sub_id[v as usize] = i as u32;
        }
        let mut edges = Vec::new();
        for &v in vertices {
            for &w in self.neighbors(v as usize) {
                if v < w && sub_id[w as usize] != u32::MAX {
                    edges.push((sub_id[v as usize], sub_id[w as usize]));
                }
            }
        }
        let coords = vertices.iter().map(|&v| self.coords[v as usize]).collect();
        (
            Graph::from_edges(vertices.len(), &edges, coords, self.dim),
            vertices.to_vec(),
        )
    }

    /// Maximum degree.
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices())
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// A spanning tree (edge set) found by BFS from vertex 0.
    ///
    /// # Panics
    /// Panics if the graph is disconnected.
    pub fn spanning_tree_edges(&self) -> Vec<(u32, u32)> {
        let n = self.num_vertices();
        if n == 0 {
            return Vec::new();
        }
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        let mut tree = Vec::with_capacity(n.saturating_sub(1));
        seen[0] = true;
        queue.push_back(0usize);
        while let Some(u) = queue.pop_front() {
            for &v in self.neighbors(u) {
                let v = v as usize;
                if !seen[v] {
                    seen[v] = true;
                    let (a, b) = if u < v { (u, v) } else { (v, u) };
                    tree.push((a as u32, b as u32));
                    queue.push_back(v);
                }
            }
        }
        assert_eq!(
            tree.len(),
            n - 1,
            "spanning_tree_edges requires a connected graph"
        );
        tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 2×2 grid: 0-1, 2-3 horizontal; 0-2, 1-3 vertical.
    fn square() -> Graph {
        Graph::from_edges(
            4,
            &[(0, 1), (2, 3), (0, 2), (1, 3)],
            vec![
                [0.0, 0.0, 0.0],
                [1.0, 0.0, 0.0],
                [0.0, 1.0, 0.0],
                [1.0, 1.0, 0.0],
            ],
            2,
        )
    }

    #[test]
    fn construction_and_accessors() {
        let g = square();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(3), &[1, 2]);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.dim(), 2);
        assert_eq!(g.coord(3), [1.0, 1.0, 0.0]);
    }

    #[test]
    fn edges_iterator_each_edge_once() {
        let g = square();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loop() {
        let _ = Graph::from_edges(2, &[(0, 0)], vec![[0.0; 3]; 2], 2);
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn rejects_duplicate_edges() {
        let _ = Graph::from_edges(2, &[(0, 1), (1, 0)], vec![[0.0; 3]; 2], 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        let _ = Graph::from_edges(2, &[(0, 2)], vec![[0.0; 3]; 2], 2);
    }

    #[test]
    fn connectivity() {
        assert!(square().is_connected());
        let disconnected = Graph::from_edges(4, &[(0, 1), (2, 3)], vec![[0.0; 3]; 4], 2);
        assert!(!disconnected.is_connected());
        let (comp, count) = disconnected.connected_components();
        assert_eq!(count, 2);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[2], comp[3]);
        assert_ne!(comp[0], comp[2]);
    }

    #[test]
    fn empty_and_singleton() {
        let empty = Graph::from_edges(0, &[], vec![], 2);
        assert!(empty.is_connected());
        assert_eq!(empty.num_edges(), 0);
        let single = Graph::from_edges(1, &[], vec![[0.0; 3]], 3);
        assert!(single.is_connected());
        assert_eq!(single.max_degree(), 0);
    }

    #[test]
    fn relabel_preserves_structure() {
        let g = square();
        // Swap 0 and 3.
        let h = g.relabel(&[3, 1, 2, 0]);
        assert_eq!(h.num_edges(), 4);
        // Old 0's neighbors {1,2} are new 3's neighbors.
        assert_eq!(h.neighbors(3), &[1, 2]);
        // Coordinates moved with the vertex.
        assert_eq!(h.coord(3), [0.0, 0.0, 0.0]);
        assert_eq!(h.coord(0), [1.0, 1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn relabel_rejects_non_permutation() {
        let _ = square().relabel(&[0, 0, 1, 2]);
    }

    #[test]
    fn induced_subgraph_maps_edges() {
        let g = square();
        let (sub, back) = g.induced_subgraph(&[0, 1, 3]);
        assert_eq!(sub.num_vertices(), 3);
        // Edges among {0,1,3}: (0,1) and (1,3).
        assert_eq!(sub.num_edges(), 2);
        assert_eq!(back, vec![0, 1, 3]);
        assert_eq!(sub.neighbors(1), &[0, 2]); // sub 1 = old 1, adjacent to old 0 and old 3
    }

    #[test]
    fn spanning_tree_size() {
        let g = square();
        let tree = g.spanning_tree_edges();
        assert_eq!(tree.len(), 3);
        // Tree edges are a subset of graph edges.
        let all: std::collections::HashSet<_> = g.edges().collect();
        assert!(tree.iter().all(|e| all.contains(e)));
    }

    #[test]
    fn max_degree() {
        let star = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)], vec![[0.0; 3]; 4], 2);
        assert_eq!(star.max_degree(), 3);
    }
}
