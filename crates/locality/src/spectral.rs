//! Recursive spectral bisection (RSB) indexing.
//!
//! The paper's experiments transform the mesh "into a one-dimensional array
//! using Recursive Spectral Bisection-based indexing \[19\]". RSB sorts the
//! vertices of (each recursive half of) the graph by their component in the
//! **Fiedler vector** — the eigenvector of the graph Laplacian `L = D − A`
//! belonging to the second-smallest eigenvalue — which is the classic
//! smoothest nontrivial embedding of the graph on a line (Pothen, Simon &
//! Liou \[26\] in the paper's bibliography).
//!
//! Everything is self-contained: the Fiedler vector comes from a Lanczos
//! iteration with full reorthogonalization (deflating the trivial constant
//! eigenvector), and the small tridiagonal eigenproblem is solved with the
//! classic implicit-QL (`tql2`) algorithm.

use crate::graph::Graph;
use crate::ordering::Ordering;

/// Subproblems at or below this size are ordered by BFS instead of another
/// eigen-solve (Lanczos on tiny graphs is all overhead).
const SMALL_CUTOFF: usize = 8;

/// Maximum Lanczos steps per bisection level.
const MAX_LANCZOS_STEPS: usize = 80;

/// Computes the recursive-spectral-bisection ordering.
pub fn spectral_ordering(graph: &Graph) -> Ordering {
    let n = graph.num_vertices();
    let mut seq = Vec::with_capacity(n);
    let ids: Vec<u32> = (0..n as u32).collect();
    rsb(graph, ids, &mut seq);
    Ordering::from_sequence(&seq)
}

fn rsb(root: &Graph, ids: Vec<u32>, seq: &mut Vec<u32>) {
    if ids.len() <= SMALL_CUTOFF {
        order_small(root, &ids, seq);
        return;
    }
    let (sub, back) = root.induced_subgraph(&ids);
    let (comp, count) = sub.connected_components();
    if count > 1 {
        // Recurse per component in component order (components are
        // discovered in ascending vertex order, so this is deterministic).
        let mut groups: Vec<Vec<u32>> = vec![Vec::new(); count];
        for (v, &c) in comp.iter().enumerate() {
            groups[c as usize].push(back[v]);
        }
        for group in groups {
            rsb(root, group, seq);
        }
        return;
    }
    let fiedler = fiedler_vector(&sub);
    let mut order: Vec<u32> = (0..sub.num_vertices() as u32).collect();
    order.sort_by(|&a, &b| {
        fiedler[a as usize]
            .partial_cmp(&fiedler[b as usize])
            .expect("Fiedler components are finite")
            .then(a.cmp(&b))
    });
    // Orient to agree with the parent's order: sub id i is the vertex at
    // parent position i (induced_subgraph preserves the passed order), so
    // flipping when the rank correlation is negative keeps sibling segments
    // consistently directed — otherwise the seam edge between two halves can
    // span a whole segment.
    orient_to_parent(&mut order);
    let mid = order.len() / 2;
    let left: Vec<u32> = order[..mid].iter().map(|&v| back[v as usize]).collect();
    let right: Vec<u32> = order[mid..].iter().map(|&v| back[v as usize]).collect();
    rsb(root, left, seq);
    rsb(root, right, seq);
}

/// Reverses `order` if it anti-correlates with parent positions (sub ids
/// equal parent ranks, so the Spearman numerator is enough).
fn orient_to_parent(order: &mut [u32]) {
    let n = order.len();
    if n < 2 {
        return;
    }
    let mean = (n as f64 - 1.0) / 2.0;
    let corr: f64 = order
        .iter()
        .enumerate()
        .map(|(pos, &v)| (pos as f64 - mean) * (f64::from(v) - mean))
        .sum();
    if corr < 0.0 {
        order.reverse();
    }
}

/// Orders a small vertex set by BFS over its induced subgraph, starting from
/// a pseudo-peripheral vertex (the Cuthill–McKee trick: BFS from an endpoint
/// keeps chains sequential), oriented to match the parent order.
fn order_small(root: &Graph, ids: &[u32], seq: &mut Vec<u32>) {
    if ids.is_empty() {
        return;
    }
    let (sub, back) = root.induced_subgraph(ids);
    let n = sub.num_vertices();
    let mut local: Vec<u32> = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    for start in 0..n {
        if seen[start] {
            continue;
        }
        // Double BFS: find the farthest vertex from `start` within this
        // component, then BFS from there.
        let far = bfs_farthest(&sub, start, &seen);
        let mut queue = std::collections::VecDeque::new();
        seen[far] = true;
        queue.push_back(far);
        while let Some(u) = queue.pop_front() {
            local.push(u as u32);
            for &v in sub.neighbors(u) {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    queue.push_back(v as usize);
                }
            }
        }
    }
    orient_to_parent(&mut local);
    seq.extend(local.into_iter().map(|v| back[v as usize]));
}

/// The vertex (within the unvisited component containing `start`) farthest
/// from `start` in BFS hops, ties broken by smallest id.
fn bfs_farthest(sub: &Graph, start: usize, global_seen: &[bool]) -> usize {
    let n = sub.num_vertices();
    let mut dist = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    dist[start] = 0;
    queue.push_back(start);
    let mut best = start;
    while let Some(u) = queue.pop_front() {
        if dist[u] > dist[best] || (dist[u] == dist[best] && u < best) {
            best = u;
        }
        for &v in sub.neighbors(u) {
            let v = v as usize;
            if dist[v] == usize::MAX && !global_seen[v] {
                dist[v] = dist[u] + 1;
                queue.push_back(v);
            }
        }
    }
    best
}

/// Computes (an approximation of) the Fiedler vector of a **connected**
/// graph: the eigenvector of `L = D − A` for the second-smallest eigenvalue,
/// normalized to unit length. The sign is fixed so the first nonzero
/// component is positive (deterministic output).
///
/// # Panics
/// Panics if the graph is empty.
pub fn fiedler_vector(graph: &Graph) -> Vec<f64> {
    let n = graph.num_vertices();
    assert!(n > 0, "Fiedler vector of an empty graph");
    if n == 1 {
        return vec![0.0];
    }
    if n == 2 {
        return vec![
            -std::f64::consts::FRAC_1_SQRT_2,
            std::f64::consts::FRAC_1_SQRT_2,
        ];
    }

    // Two passes: the second restarts from the first estimate, which is
    // plenty for partitioning accuracy on meshes.
    let mut start = deterministic_start(n);
    let mut estimate = lanczos_smallest(graph, &start);
    start.clone_from(&estimate);
    estimate = lanczos_smallest(graph, &start);

    // Fix sign.
    if let Some(&first) = estimate.iter().find(|&&x| x.abs() > 1e-12) {
        if first < 0.0 {
            for x in &mut estimate {
                *x = -*x;
            }
        }
    }
    estimate
}

/// A deterministic pseudo-random start vector orthogonal to the constant
/// vector.
fn deterministic_start(n: usize) -> Vec<f64> {
    let mut v: Vec<f64> = (0..n)
        .map(|i| {
            // Weyl sequence: irrational rotation is uniform and cheap.
            let x = (i as f64 + 1.0) * std::f64::consts::SQRT_2;
            x.fract() - 0.5
        })
        .collect();
    project_out_ones(&mut v);
    normalize(&mut v);
    v
}

/// One Lanczos run on the Laplacian, deflating the constant vector; returns
/// the Ritz vector for the smallest remaining eigenvalue (≈ λ₂).
fn lanczos_smallest(graph: &Graph, start: &[f64]) -> Vec<f64> {
    let n = graph.num_vertices();
    let steps = MAX_LANCZOS_STEPS.min(n - 1);
    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(steps);
    let mut alphas: Vec<f64> = Vec::with_capacity(steps);
    let mut betas: Vec<f64> = Vec::with_capacity(steps);

    let mut v = start.to_vec();
    project_out_ones(&mut v);
    if normalize(&mut v) < 1e-12 {
        // Degenerate start (e.g. constant): fall back to the Weyl start.
        v = deterministic_start(n);
    }
    basis.push(v);

    for j in 0..steps {
        let mut w = laplacian_matvec(graph, &basis[j]);
        let alpha = dot(&w, &basis[j]);
        alphas.push(alpha);
        axpy(&mut w, -alpha, &basis[j]);
        if j > 0 {
            let beta_prev = betas[j - 1];
            axpy(&mut w, -beta_prev, &basis[j - 1]);
        }
        // Full reorthogonalization: against the ones vector and the whole
        // basis. Keeps the tridiagonal model honest at this problem scale.
        project_out_ones(&mut w);
        for b in &basis {
            let c = dot(&w, b);
            axpy(&mut w, -c, b);
        }
        let beta = norm(&w);
        if beta < 1e-10 || j + 1 == steps {
            break;
        }
        betas.push(beta);
        for x in &mut w {
            *x /= beta;
        }
        basis.push(w);
    }

    let k = alphas.len();
    let (eigvals, eigvecs) = tridiag_eigen(&alphas, &betas[..k.saturating_sub(1)]);
    // Smallest Ritz value = first after ascending sort (done inside).
    let smallest = 0;
    let _ = eigvals;
    let s = &eigvecs[smallest];
    let mut out = vec![0.0; n];
    for (j, b) in basis.iter().enumerate().take(k) {
        axpy(&mut out, s[j], b);
    }
    normalize(&mut out);
    out
}

/// `y = L x` for the combinatorial Laplacian.
fn laplacian_matvec(graph: &Graph, x: &[f64]) -> Vec<f64> {
    let n = graph.num_vertices();
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut acc = graph.degree(i) as f64 * x[i];
        for &j in graph.neighbors(i) {
            acc -= x[j as usize];
        }
        y[i] = acc;
    }
    y
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// `y += c * x`.
fn axpy(y: &mut [f64], c: f64, x: &[f64]) {
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += c * xi;
    }
}

/// Removes the mean (projects out the constant eigenvector of `L`).
fn project_out_ones(v: &mut [f64]) {
    let mean = v.iter().sum::<f64>() / v.len() as f64;
    for x in v.iter_mut() {
        *x -= mean;
    }
}

/// Normalizes to unit length; returns the original norm.
fn normalize(v: &mut [f64]) -> f64 {
    let n = norm(v);
    if n > 0.0 {
        for x in v.iter_mut() {
            *x /= n;
        }
    }
    n
}

/// Eigen-decomposition of a symmetric tridiagonal matrix via implicit QL
/// with shifts (the classic `tql2`). `diag` has length `k`; `offdiag` has
/// length `k − 1` (`offdiag[i]` couples `i` and `i + 1`).
///
/// Returns `(eigenvalues ascending, eigenvectors)` with `eigenvectors[j]`
/// the unit eigenvector for `eigenvalues[j]`.
pub fn tridiag_eigen(diag: &[f64], offdiag: &[f64]) -> (Vec<f64>, Vec<Vec<f64>>) {
    let n = diag.len();
    assert!(n > 0, "empty tridiagonal matrix");
    assert_eq!(offdiag.len(), n - 1, "offdiag must have length n - 1");
    let mut d = diag.to_vec();
    let mut e = vec![0.0; n];
    e[..n - 1].copy_from_slice(offdiag);
    // Row-major; z[r][c]; columns become eigenvectors.
    let mut z = vec![vec![0.0; n]; n];
    for (i, row) in z.iter_mut().enumerate() {
        row[i] = 1.0;
    }

    let eps = f64::EPSILON;
    let mut f = 0.0;
    let mut tst1: f64 = 0.0;
    for l in 0..n {
        tst1 = tst1.max(d[l].abs() + e[l].abs());
        let mut m = l;
        while m < n {
            if e[m].abs() <= eps * tst1 {
                break;
            }
            m += 1;
        }
        if m > l {
            let mut iter = 0;
            loop {
                iter += 1;
                // Compute implicit shift.
                let g = d[l];
                let mut p = (d[l + 1] - g) / (2.0 * e[l]);
                let mut r = p.hypot(1.0);
                if p < 0.0 {
                    r = -r;
                }
                d[l] = e[l] / (p + r);
                d[l + 1] = e[l] * (p + r);
                let dl1 = d[l + 1];
                let mut h = g - d[l];
                for item in d.iter_mut().skip(l + 2) {
                    *item -= h;
                }
                f += h;
                // Implicit QL transformation.
                p = d[m];
                let mut c = 1.0;
                let mut c2 = c;
                let mut c3 = c;
                let el1 = e[l + 1];
                let mut s = 0.0;
                let mut s2 = 0.0;
                for i in (l..m).rev() {
                    c3 = c2;
                    c2 = c;
                    s2 = s;
                    let g2 = c * e[i];
                    h = c * p;
                    r = p.hypot(e[i]);
                    e[i + 1] = s * r;
                    s = e[i] / r;
                    c = p / r;
                    p = c * d[i] - s * g2;
                    d[i + 1] = h + s * (c * g2 + s * d[i]);
                    for row in &mut z {
                        h = row[i + 1];
                        row[i + 1] = s * row[i] + c * h;
                        row[i] = c * row[i] - s * h;
                    }
                }
                p = -s * s2 * c3 * el1 * e[l] / dl1;
                e[l] = s * p;
                d[l] = c * p;
                if e[l].abs() <= eps * tst1 || iter >= 50 {
                    break;
                }
            }
        }
        d[l] += f;
        e[l] = 0.0;
    }

    // Sort ascending, carrying eigenvectors (columns of z).
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| d[a].partial_cmp(&d[b]).expect("eigenvalues are finite"));
    let eigvals: Vec<f64> = order.iter().map(|&j| d[j]).collect();
    let eigvecs: Vec<Vec<f64>> = order
        .iter()
        .map(|&j| (0..n).map(|r| z[r][j]).collect())
        .collect();
    (eigvals, eigvecs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::average_edge_span;

    fn path(n: usize) -> Graph {
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        let coords = (0..n).map(|i| [i as f64, 0.0, 0.0]).collect();
        Graph::from_edges(n, &edges, coords, 2)
    }

    fn grid(nx: u32, ny: u32) -> Graph {
        let n = (nx * ny) as usize;
        let mut edges = Vec::new();
        let mut coords = Vec::new();
        for y in 0..ny {
            for x in 0..nx {
                let v = y * nx + x;
                if x + 1 < nx {
                    edges.push((v, v + 1));
                }
                if y + 1 < ny {
                    edges.push((v, v + nx));
                }
                coords.push([f64::from(x), f64::from(y), 0.0]);
            }
        }
        Graph::from_edges(n, &edges, coords, 2)
    }

    #[test]
    fn tridiag_2x2() {
        // [[2, 1], [1, 2]] → eigenvalues 1 and 3.
        let (vals, vecs) = tridiag_eigen(&[2.0, 2.0], &[1.0]);
        assert!((vals[0] - 1.0).abs() < 1e-12);
        assert!((vals[1] - 3.0).abs() < 1e-12);
        // Eigenvector for 1 is (1, -1)/√2 up to sign.
        let v = &vecs[0];
        assert!((v[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
        assert!((v[0] + v[1]).abs() < 1e-12);
    }

    #[test]
    fn tridiag_diagonal_matrix() {
        let (vals, vecs) = tridiag_eigen(&[3.0, 1.0, 2.0], &[0.0, 0.0]);
        assert_eq!(vals, vec![1.0, 2.0, 3.0]);
        // Each eigenvector is a standard basis vector.
        assert!((vecs[0][1].abs() - 1.0).abs() < 1e-12);
        assert!((vecs[2][0].abs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tridiag_path_laplacian_eigenvalues() {
        // Path of 4 vertices: Laplacian eigenvalues are 2 − 2cos(kπ/4)
        // = 0, 2−√2, 2, 2+√2.
        let (vals, _) = tridiag_eigen(&[1.0, 2.0, 2.0, 1.0], &[-1.0, -1.0, -1.0]);
        let expected = [
            0.0,
            2.0 - std::f64::consts::SQRT_2,
            2.0,
            2.0 + std::f64::consts::SQRT_2,
        ];
        for (got, want) in vals.iter().zip(expected) {
            assert!((got - want).abs() < 1e-10, "got {got}, want {want}");
        }
    }

    #[test]
    fn tridiag_eigenvectors_satisfy_equation() {
        let d = [4.0, 3.0, 2.0, 1.0, 5.0];
        let e = [1.0, 0.5, 2.0, 0.25];
        let (vals, vecs) = tridiag_eigen(&d, &e);
        for (lambda, v) in vals.iter().zip(&vecs) {
            // Residual of (T − λI)v.
            for i in 0..5 {
                let mut r = d[i] * v[i] - lambda * v[i];
                if i > 0 {
                    r += e[i - 1] * v[i - 1];
                }
                if i < 4 {
                    r += e[i] * v[i + 1];
                }
                assert!(r.abs() < 1e-9, "residual {r} at row {i} for λ = {lambda}");
            }
        }
    }

    #[test]
    fn fiedler_of_path_is_monotone() {
        let g = path(20);
        let f = fiedler_vector(&g);
        // The path's Fiedler vector is cos((i+1/2)π/n): strictly monotone.
        let increasing = f.windows(2).all(|w| w[1] > w[0]);
        let decreasing = f.windows(2).all(|w| w[1] < w[0]);
        assert!(
            increasing || decreasing,
            "path Fiedler vector must be monotone: {f:?}"
        );
    }

    #[test]
    fn fiedler_rayleigh_quotient_close_to_lambda2() {
        // Path of n: λ₂ = 2(1 − cos(π/n)).
        let n = 16;
        let g = path(n);
        let f = fiedler_vector(&g);
        let lf = laplacian_matvec(&g, &f);
        let rayleigh = dot(&f, &lf) / dot(&f, &f);
        let lambda2 = 2.0 * (1.0 - (std::f64::consts::PI / n as f64).cos());
        assert!(
            (rayleigh - lambda2).abs() < 1e-6,
            "Rayleigh {rayleigh} vs λ₂ {lambda2}"
        );
    }

    #[test]
    fn fiedler_orthogonal_to_ones() {
        let g = grid(5, 4);
        let f = fiedler_vector(&g);
        let sum: f64 = f.iter().sum();
        assert!(sum.abs() < 1e-8, "Fiedler must be mean-free, sum = {sum}");
        assert!((norm(&f) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fiedler_splits_dumbbell() {
        // Two 4-cliques joined by one edge: the Fiedler vector separates the
        // cliques by sign.
        let mut edges = Vec::new();
        for a in 0..4u32 {
            for b in (a + 1)..4 {
                edges.push((a, b));
                edges.push((a + 4, b + 4));
            }
        }
        edges.push((3, 4));
        let g = Graph::from_edges(8, &edges, vec![[0.0; 3]; 8], 2);
        let f = fiedler_vector(&g);
        let left_sign = f[0].signum();
        assert!(f[..4].iter().all(|&x| x.signum() == left_sign));
        assert!(f[4..].iter().all(|&x| x.signum() == -left_sign));
    }

    #[test]
    fn spectral_ordering_recovers_path() {
        // A shuffled path: spectral ordering must restore span 1.
        let g = path(24);
        let perm: Vec<u32> = (0..24u32).map(|v| (v * 7) % 24).collect();
        let shuffled = g.relabel(&perm);
        let o = spectral_ordering(&shuffled);
        let span = average_edge_span(&shuffled, &o);
        assert!(
            span <= 1.0 + 1e-9,
            "spectral ordering of a path must have span 1, got {span}"
        );
    }

    #[test]
    fn spectral_ordering_is_permutation_on_grid() {
        let g = grid(7, 5);
        let o = spectral_ordering(&g);
        let mut seq = o.sequence();
        seq.sort_unstable();
        assert_eq!(seq, (0..35).collect::<Vec<u32>>());
    }

    #[test]
    fn spectral_beats_shuffled_natural_on_grid() {
        let g = grid(8, 8);
        let perm: Vec<u32> = (0..64u32).map(|v| (v * 37) % 64).collect();
        let shuffled = g.relabel(&perm);
        let natural = average_edge_span(&shuffled, &Ordering::identity(64));
        let spectral = average_edge_span(&shuffled, &spectral_ordering(&shuffled));
        assert!(
            spectral < natural / 2.0,
            "spectral {spectral} should strongly beat shuffled natural {natural}"
        );
    }

    #[test]
    fn spectral_handles_disconnected_graphs() {
        // Two disjoint paths.
        let edges = [(0u32, 1u32), (1, 2), (3, 4), (4, 5)];
        let coords = (0..6).map(|i| [f64::from(i as u32), 0.0, 0.0]).collect();
        let g = Graph::from_edges(6, &edges, coords, 2);
        let o = spectral_ordering(&g);
        assert_eq!(o.len(), 6);
        let mut seq = o.sequence();
        seq.sort_unstable();
        assert_eq!(seq, (0..6).collect::<Vec<u32>>());
    }

    #[test]
    fn spectral_tiny_graphs() {
        let g1 = Graph::from_edges(1, &[], vec![[0.0; 3]], 2);
        assert_eq!(spectral_ordering(&g1).len(), 1);
        let g2 = path(2);
        assert_eq!(spectral_ordering(&g2).len(), 2);
        let g3 = path(3);
        assert_eq!(spectral_ordering(&g3).len(), 3);
    }

    #[test]
    fn spectral_deterministic() {
        let g = grid(6, 6);
        assert_eq!(spectral_ordering(&g), spectral_ordering(&g));
    }
}
