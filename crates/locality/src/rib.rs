//! Recursive inertial bisection: split along the principal (inertial) axis.
//!
//! Where RCB always cuts perpendicular to a coordinate axis, inertial
//! bisection computes the axis of maximum spatial variance (the dominant
//! eigenvector of the coordinate covariance matrix) and splits at the median
//! projection. It handles meshes whose natural grain is diagonal to the
//! coordinate system. Listed among the paper's "important heuristics" for
//! coordinate-based partitioning (§3.1).

use crate::graph::Graph;
use crate::ordering::Ordering;

/// Computes the recursive inertial bisection ordering.
pub fn inertial_ordering(graph: &Graph) -> Ordering {
    let n = graph.num_vertices();
    let mut ids: Vec<u32> = (0..n as u32).collect();
    rib_recurse(&mut ids, graph.coords(), graph.dim());
    Ordering::from_sequence(&ids)
}

fn rib_recurse(ids: &mut [u32], coords: &[[f64; 3]], dim: usize) {
    if ids.len() <= 2 {
        ids.sort_unstable();
        return;
    }
    let axis = principal_axis(ids, coords, dim);
    let centroid = centroid(ids, coords);
    let mid = ids.len() / 2;
    ids.select_nth_unstable_by(mid, |&a, &b| {
        let pa = project(coords[a as usize], centroid, axis);
        let pb = project(coords[b as usize], centroid, axis);
        pa.partial_cmp(&pb)
            .expect("projections are finite")
            .then(a.cmp(&b))
    });
    let (left, right) = ids.split_at_mut(mid);
    rib_recurse(left, coords, dim);
    rib_recurse(right, coords, dim);
}

fn centroid(ids: &[u32], coords: &[[f64; 3]]) -> [f64; 3] {
    let mut c = [0.0; 3];
    for &v in ids {
        let p = coords[v as usize];
        for d in 0..3 {
            c[d] += p[d];
        }
    }
    let inv = 1.0 / ids.len() as f64;
    [c[0] * inv, c[1] * inv, c[2] * inv]
}

#[inline]
fn project(p: [f64; 3], centroid: [f64; 3], axis: [f64; 3]) -> f64 {
    (p[0] - centroid[0]) * axis[0] + (p[1] - centroid[1]) * axis[1] + (p[2] - centroid[2]) * axis[2]
}

/// Dominant eigenvector of the 3×3 coordinate covariance matrix, found by
/// power iteration (deterministic start, ~30 iterations is plenty for a
/// partitioning axis — exactness is not needed, only a good direction).
#[allow(clippy::needless_range_loop)] // index pairs over a tiny fixed matrix
fn principal_axis(ids: &[u32], coords: &[[f64; 3]], dim: usize) -> [f64; 3] {
    let c = centroid(ids, coords);
    // Covariance (upper triangle; symmetric).
    let mut m = [[0.0f64; 3]; 3];
    for &v in ids {
        let p = coords[v as usize];
        let d = [p[0] - c[0], p[1] - c[1], p[2] - c[2]];
        for i in 0..3 {
            for j in i..3 {
                m[i][j] += d[i] * d[j];
            }
        }
    }
    for i in 0..3 {
        for j in 0..i {
            m[i][j] = m[j][i];
        }
    }
    // Power iteration from a deterministic non-axis-aligned start.
    let mut v = if dim == 2 {
        [1.0, 0.5, 0.0]
    } else {
        [1.0, 0.5, 0.25]
    };
    for _ in 0..30 {
        let mut w = [0.0; 3];
        for i in 0..3 {
            for j in 0..3 {
                w[i] += m[i][j] * v[j];
            }
        }
        let norm = (w[0] * w[0] + w[1] * w[1] + w[2] * w[2]).sqrt();
        if norm < 1e-30 {
            // Degenerate cloud (all points coincide): any axis works.
            return [1.0, 0.0, 0.0];
        }
        v = [w[0] / norm, w[1] / norm, w[2] / norm];
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inertial_is_permutation() {
        let coords: Vec<[f64; 3]> = (0..10).map(|i| [f64::from(i), 0.0, 0.0]).collect();
        let edges: Vec<(u32, u32)> = (0..9).map(|i| (i, i + 1)).collect();
        let g = Graph::from_edges(10, &edges, coords, 2);
        let o = inertial_ordering(&g);
        let mut seq = o.sequence();
        seq.sort_unstable();
        assert_eq!(seq, (0..10).collect::<Vec<u32>>());
    }

    #[test]
    fn diagonal_strip_split_along_diagonal() {
        // Points along the line y = x, jittered perpendicular. The inertial
        // axis is the diagonal, so the first half of the ordering is the
        // lower-left half of the strip.
        let mut coords = Vec::new();
        let mut edges = Vec::new();
        for i in 0..20u32 {
            let t = f64::from(i);
            let off = if i % 2 == 0 { 0.1 } else { -0.1 };
            coords.push([t + off, t - off, 0.0]);
            if i > 0 {
                edges.push((i - 1, i));
            }
        }
        let g = Graph::from_edges(20, &edges, coords, 2);
        let o = inertial_ordering(&g);
        let seq = o.sequence();
        let first: Vec<f64> = seq[..10]
            .iter()
            .map(|&v| g.coord(v as usize)[0] + g.coord(v as usize)[1])
            .collect();
        let second: Vec<f64> = seq[10..]
            .iter()
            .map(|&v| g.coord(v as usize)[0] + g.coord(v as usize)[1])
            .collect();
        let max_first = first.iter().copied().fold(f64::MIN, f64::max);
        let min_second = second.iter().copied().fold(f64::MAX, f64::min);
        assert!(
            max_first < min_second,
            "split should be along the diagonal: {max_first} vs {min_second}"
        );
    }

    #[test]
    fn degenerate_coincident_points() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)], vec![[1.0, 1.0, 0.0]; 3], 2);
        // Must terminate and produce a permutation despite zero variance.
        let o = inertial_ordering(&g);
        assert_eq!(o.len(), 3);
    }

    #[test]
    fn deterministic() {
        let coords: Vec<[f64; 3]> = (0..50)
            .map(|i| {
                let x = f64::from(i % 7);
                let y = f64::from(i / 7);
                [x, y, 0.0]
            })
            .collect();
        let g = Graph::from_edges(50, &[], coords, 2);
        assert_eq!(inertial_ordering(&g), inertial_ordering(&g));
    }
}
