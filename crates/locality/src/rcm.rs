//! Reverse Cuthill–McKee ordering: a purely combinatorial bandwidth
//! reducer.
//!
//! Where the geometric methods (RCB, inertial, curves) need coordinates and
//! the spectral method needs an eigensolver, RCM needs only BFS: start from
//! a pseudo-peripheral vertex, visit neighbors in increasing-degree order,
//! and reverse the final sequence. It is the cheapest ordering that still
//! produces interval-friendly numberings, and the classic choice when a
//! mesh arrives without geometry.

use crate::graph::Graph;
use crate::ordering::Ordering;

/// Computes the reverse Cuthill–McKee ordering. Disconnected components are
/// ordered one after another (each from its own pseudo-peripheral start).
pub fn rcm_ordering(graph: &Graph) -> Ordering {
    let n = graph.num_vertices();
    let mut seq: Vec<u32> = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    let mut neighbor_buf: Vec<u32> = Vec::new();
    for start in 0..n {
        if seen[start] {
            continue;
        }
        let root = pseudo_peripheral(graph, start);
        let mut queue = std::collections::VecDeque::new();
        seen[root] = true;
        queue.push_back(root);
        while let Some(u) = queue.pop_front() {
            seq.push(u as u32);
            neighbor_buf.clear();
            neighbor_buf.extend(
                graph
                    .neighbors(u)
                    .iter()
                    .filter(|&&v| !seen[v as usize])
                    .copied(),
            );
            // Cuthill–McKee visits low-degree neighbors first; ties broken
            // by id for determinism.
            neighbor_buf.sort_by_key(|&v| (graph.degree(v as usize), v));
            for &v in &neighbor_buf {
                seen[v as usize] = true;
                queue.push_back(v as usize);
            }
        }
    }
    seq.reverse();
    Ordering::from_sequence(&seq)
}

/// Finds a pseudo-peripheral vertex by repeated farthest-BFS: start
/// anywhere, walk to the farthest vertex (lowest degree on ties), repeat
/// until the eccentricity stops growing.
fn pseudo_peripheral(graph: &Graph, start: usize) -> usize {
    let mut current = start;
    let mut best_ecc = 0usize;
    loop {
        let (far, ecc) = bfs_farthest(graph, current);
        if ecc <= best_ecc && current != start {
            return current;
        }
        best_ecc = ecc;
        if far == current {
            return current;
        }
        current = far;
        if best_ecc == 0 {
            // Isolated vertex.
            return current;
        }
    }
}

/// Farthest vertex from `root` within its component (smallest degree, then
/// smallest id, among the farthest) and its distance.
fn bfs_farthest(graph: &Graph, root: usize) -> (usize, usize) {
    let n = graph.num_vertices();
    let mut dist = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    dist[root] = 0;
    queue.push_back(root);
    let mut best = root;
    while let Some(u) = queue.pop_front() {
        let better = dist[u] > dist[best]
            || (dist[u] == dist[best] && (graph.degree(u), u) < (graph.degree(best), best));
        if better {
            best = u;
        }
        for &v in graph.neighbors(u) {
            let v = v as usize;
            if dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                queue.push_back(v);
            }
        }
    }
    (best, dist[best])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{average_edge_span, bandwidth};

    fn path(n: usize) -> Graph {
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        let coords = (0..n).map(|i| [i as f64, 0.0, 0.0]).collect();
        Graph::from_edges(n, &edges, coords, 2)
    }

    #[test]
    fn rcm_recovers_path_order() {
        let g = path(16);
        let shuffled = g.relabel(&(0..16u32).map(|v| (v * 5) % 16).collect::<Vec<_>>());
        let o = rcm_ordering(&shuffled);
        assert_eq!(average_edge_span(&shuffled, &o), 1.0);
        assert_eq!(bandwidth(&shuffled, &o), 1);
    }

    #[test]
    fn rcm_is_permutation_on_grid() {
        let mut edges = Vec::new();
        let mut coords = Vec::new();
        for y in 0..6u32 {
            for x in 0..6u32 {
                let v = y * 6 + x;
                if x + 1 < 6 {
                    edges.push((v, v + 1));
                }
                if y + 1 < 6 {
                    edges.push((v, v + 6));
                }
                coords.push([f64::from(x), f64::from(y), 0.0]);
            }
        }
        let g = Graph::from_edges(36, &edges, coords, 2);
        let o = rcm_ordering(&g);
        let mut seq = o.sequence();
        seq.sort_unstable();
        assert_eq!(seq, (0..36).collect::<Vec<u32>>());
        // Grid bandwidth under RCM should be near the theoretical minimum
        // (≈ grid side).
        assert!(bandwidth(&g, &o) <= 8, "bandwidth {}", bandwidth(&g, &o));
    }

    #[test]
    fn rcm_reduces_bandwidth_vs_shuffled() {
        let g = crate::meshgen::random_geometric(150, 0.12, 3);
        let o = rcm_ordering(&g);
        let natural = bandwidth(&g, &Ordering::identity(150));
        let rcm = bandwidth(&g, &o);
        assert!(rcm <= natural, "rcm {rcm} vs natural {natural}");
    }

    #[test]
    fn rcm_handles_disconnected() {
        let edges = [(0u32, 1u32), (2, 3)];
        let g = Graph::from_edges(4, &edges, vec![[0.0; 3]; 4], 2);
        let o = rcm_ordering(&g);
        assert_eq!(o.len(), 4);
    }

    #[test]
    fn rcm_singleton_and_empty() {
        let empty = Graph::from_edges(0, &[], vec![], 2);
        assert_eq!(rcm_ordering(&empty).len(), 0);
        let single = Graph::from_edges(1, &[], vec![[0.0; 3]], 2);
        assert_eq!(rcm_ordering(&single).len(), 1);
    }

    #[test]
    fn deterministic() {
        let g = crate::meshgen::random_geometric(80, 0.15, 9);
        assert_eq!(rcm_ordering(&g), rcm_ordering(&g));
    }
}
