//! Plain-text graph file I/O.
//!
//! The format is Chaco/METIS-flavored, extended with a coordinate section
//! (geometric partitioners need geometry):
//!
//! ```text
//! % any number of comment lines starting with '%'
//! <n> <m> <dim>
//! <x> <y> [<z>]          # n coordinate lines
//! <v₁> <v₂> …            # n adjacency lines, 1-indexed neighbor ids
//! ```
//!
//! Every undirected edge appears in both endpoints' adjacency lines, as in
//! METIS. An empty adjacency line is a degree-0 vertex.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::graph::Graph;

/// Errors from reading a graph file.
#[derive(Debug)]
pub enum GraphIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed content: line number (1-based) and description.
    Parse {
        /// 1-based line number in the input.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl std::fmt::Display for GraphIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphIoError::Io(e) => write!(f, "I/O error: {e}"),
            GraphIoError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for GraphIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphIoError::Io(e) => Some(e),
            GraphIoError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for GraphIoError {
    fn from(e: std::io::Error) -> Self {
        GraphIoError::Io(e)
    }
}

fn parse_err(line: usize, message: impl Into<String>) -> GraphIoError {
    GraphIoError::Parse {
        line,
        message: message.into(),
    }
}

/// Writes a graph in the text format.
pub fn write_graph<W: Write>(graph: &Graph, writer: W) -> Result<(), GraphIoError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "% stance-locality graph file")?;
    writeln!(
        w,
        "{} {} {}",
        graph.num_vertices(),
        graph.num_edges(),
        graph.dim()
    )?;
    for v in 0..graph.num_vertices() {
        let c = graph.coord(v);
        if graph.dim() == 2 {
            writeln!(w, "{} {}", c[0], c[1])?;
        } else {
            writeln!(w, "{} {} {}", c[0], c[1], c[2])?;
        }
    }
    for v in 0..graph.num_vertices() {
        let mut first = true;
        for &u in graph.neighbors(v) {
            if first {
                write!(w, "{}", u + 1)?;
                first = false;
            } else {
                write!(w, " {}", u + 1)?;
            }
        }
        writeln!(w)?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a graph from the text format.
pub fn read_graph<R: Read>(reader: R) -> Result<Graph, GraphIoError> {
    let mut lines = BufReader::new(reader).lines();
    let mut line_no = 0usize;
    // Header (skipping comments).
    let header = loop {
        line_no += 1;
        match lines.next() {
            None => return Err(parse_err(line_no, "missing header line")),
            Some(l) => {
                let l = l?;
                let trimmed = l.trim();
                if trimmed.is_empty() || trimmed.starts_with('%') {
                    continue;
                }
                break trimmed.to_string();
            }
        }
    };
    let parts: Vec<&str> = header.split_whitespace().collect();
    if parts.len() != 3 {
        return Err(parse_err(
            line_no,
            format!("header must be '<n> <m> <dim>', got '{header}'"),
        ));
    }
    let n: usize = parts[0]
        .parse()
        .map_err(|_| parse_err(line_no, "bad vertex count"))?;
    let m: usize = parts[1]
        .parse()
        .map_err(|_| parse_err(line_no, "bad edge count"))?;
    let dim: usize = parts[2]
        .parse()
        .map_err(|_| parse_err(line_no, "bad dimension"))?;
    if dim != 2 && dim != 3 {
        return Err(parse_err(line_no, format!("dim must be 2 or 3, got {dim}")));
    }

    let mut next_content = |line_no: &mut usize| -> Result<String, GraphIoError> {
        loop {
            *line_no += 1;
            match lines.next() {
                None => return Err(parse_err(*line_no, "unexpected end of file")),
                Some(l) => {
                    let l = l?;
                    if l.trim().starts_with('%') {
                        continue;
                    }
                    return Ok(l);
                }
            }
        }
    };

    let mut coords = Vec::with_capacity(n);
    for _ in 0..n {
        let l = next_content(&mut line_no)?;
        let nums: Result<Vec<f64>, _> = l.split_whitespace().map(str::parse).collect();
        let nums = nums.map_err(|_| parse_err(line_no, "bad coordinate"))?;
        if nums.len() != dim {
            return Err(parse_err(
                line_no,
                format!("expected {dim} coordinates, got {}", nums.len()),
            ));
        }
        let mut c = [0.0; 3];
        c[..dim].copy_from_slice(&nums);
        coords.push(c);
    }

    let mut edges = Vec::with_capacity(m);
    for v in 0..n {
        let l = next_content(&mut line_no)?;
        for tok in l.split_whitespace() {
            let u: usize = tok
                .parse()
                .map_err(|_| parse_err(line_no, format!("bad neighbor id '{tok}'")))?;
            if u == 0 || u > n {
                return Err(parse_err(
                    line_no,
                    format!("neighbor id {u} out of range 1..={n}"),
                ));
            }
            let u = u - 1;
            if u == v {
                return Err(parse_err(line_no, format!("self-loop at vertex {}", v + 1)));
            }
            // Each edge appears twice; keep the canonical orientation.
            if (v as u32) < (u as u32) {
                edges.push((v as u32, u as u32));
            }
        }
    }
    if edges.len() != m {
        return Err(parse_err(
            line_no,
            format!(
                "header promised {m} edges but adjacency lists give {}",
                edges.len()
            ),
        ));
    }
    Ok(Graph::from_edges(n, &edges, coords, dim))
}

/// Saves a graph to a file.
pub fn save_graph(graph: &Graph, path: impl AsRef<Path>) -> Result<(), GraphIoError> {
    write_graph(graph, std::fs::File::create(path)?)
}

/// Loads a graph from a file.
pub fn load_graph(path: impl AsRef<Path>) -> Result<Graph, GraphIoError> {
    read_graph(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meshgen;

    #[test]
    fn round_trip_in_memory() {
        let g = meshgen::triangulated_grid(7, 5, 0.3, 3);
        let mut buf = Vec::new();
        write_graph(&g, &mut buf).unwrap();
        let h = read_graph(buf.as_slice()).unwrap();
        assert_eq!(g, h);
    }

    #[test]
    fn round_trip_on_disk() {
        let g = meshgen::random_geometric(60, 0.2, 5);
        let path = std::env::temp_dir().join("stance_io_roundtrip.graph");
        save_graph(&g, &path).unwrap();
        let h = load_graph(&path).unwrap();
        assert_eq!(g, h);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn comments_and_blank_lines_ignored_in_header() {
        let text = "% comment\n\n% another\n2 1 2\n0 0\n1 0\n2\n1\n";
        let g = read_graph(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 2);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.neighbors(0), &[1]);
    }

    #[test]
    fn degree_zero_vertices() {
        let text = "3 1 2\n0 0\n1 0\n2 0\n2\n1\n\n";
        let g = read_graph(text.as_bytes()).unwrap();
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn three_dimensional_round_trip() {
        let g = Graph::from_edges(2, &[(0, 1)], vec![[0.5, 1.5, 2.5], [3.0, 4.0, 5.0]], 3);
        let mut buf = Vec::new();
        write_graph(&g, &mut buf).unwrap();
        let h = read_graph(buf.as_slice()).unwrap();
        assert_eq!(g, h);
        assert_eq!(h.coord(0)[2], 2.5);
    }

    #[test]
    fn error_messages_carry_line_numbers() {
        // Neighbor id out of range on the first adjacency line (line 4).
        let text = "2 1 2\n0 0\n1 0\n5\n1\n";
        match read_graph(text.as_bytes()) {
            Err(GraphIoError::Parse { line, message }) => {
                assert_eq!(line, 4);
                assert!(message.contains("out of range"), "{message}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_header() {
        assert!(matches!(
            read_graph("1 2\n".as_bytes()),
            Err(GraphIoError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            read_graph("2 1 7\n".as_bytes()),
            Err(GraphIoError::Parse { .. })
        ));
    }

    #[test]
    fn rejects_edge_count_mismatch() {
        let text = "2 5 2\n0 0\n1 0\n2\n1\n";
        match read_graph(text.as_bytes()) {
            Err(GraphIoError::Parse { message, .. }) => {
                assert!(message.contains("promised 5 edges"), "{message}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_self_loop() {
        let text = "2 1 2\n0 0\n1 0\n1\n\n";
        assert!(matches!(
            read_graph(text.as_bytes()),
            Err(GraphIoError::Parse { .. })
        ));
    }

    #[test]
    fn rejects_truncated_file() {
        let text = "3 2 2\n0 0\n1 0\n";
        assert!(matches!(
            read_graph(text.as_bytes()),
            Err(GraphIoError::Parse { .. })
        ));
    }

    #[test]
    fn display_impls() {
        let e = parse_err(7, "boom");
        assert_eq!(e.to_string(), "parse error at line 7: boom");
    }
}
