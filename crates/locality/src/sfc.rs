//! Space-filling-curve indexings: Morton (Z-order) and Hilbert.
//!
//! Index-based partitioners are among the paper's "simple and fast
//! heuristics" (§3.1, citing \[6\]: Ou, Ranka & Fox's fast mapping/remapping
//! work, which used such indexings). Coordinates are quantized onto a
//! `2^ORDER`-cell grid and vertices are sorted by their curve index. Hilbert
//! preserves locality strictly better than Morton (no long jumps), Morton is
//! cheaper to compute — both are offered so benches can compare.

use crate::graph::Graph;
use crate::ordering::Ordering;

/// Bits of resolution per axis for curve quantization. 16 bits per axis keeps
/// 2-D indices in 32 bits and 3-D indices in 48 bits (inside u64), which is
/// ample below ~65k distinguishable positions per axis.
const ORDER: u32 = 16;

/// Computes the Morton (Z-order) ordering.
pub fn morton_ordering(graph: &Graph) -> Ordering {
    curve_ordering(graph, CurveKind::Morton)
}

/// Computes the Hilbert-curve ordering.
pub fn hilbert_ordering(graph: &Graph) -> Ordering {
    curve_ordering(graph, CurveKind::Hilbert)
}

#[derive(Clone, Copy)]
enum CurveKind {
    Morton,
    Hilbert,
}

fn curve_ordering(graph: &Graph, kind: CurveKind) -> Ordering {
    let n = graph.num_vertices();
    let cells = quantize(graph);
    let dim = graph.dim();
    let mut keyed: Vec<(u64, u32)> = (0..n)
        .map(|v| {
            let c = cells[v];
            let key = match (kind, dim) {
                (CurveKind::Morton, 2) => morton2(c[0], c[1]),
                (CurveKind::Morton, 3) => morton3(c[0], c[1], c[2]),
                (CurveKind::Hilbert, 2) => hilbert2(c[0], c[1]),
                (CurveKind::Hilbert, 3) => hilbert3(c[0], c[1], c[2]),
                _ => unreachable!("graph dim is always 2 or 3"),
            };
            (key, v as u32)
        })
        .collect();
    // Tie-break on vertex id for determinism when cells coincide.
    keyed.sort_unstable();
    let seq: Vec<u32> = keyed.into_iter().map(|(_, v)| v).collect();
    Ordering::from_sequence(&seq)
}

/// Maps coordinates onto the `[0, 2^ORDER)` integer grid, preserving aspect
/// ratio (one scale factor for all axes so the curve geometry is faithful).
fn quantize(graph: &Graph) -> Vec<[u32; 3]> {
    let n = graph.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let dim = graph.dim();
    let mut lo = [f64::INFINITY; 3];
    let mut hi = [f64::NEG_INFINITY; 3];
    for v in 0..n {
        let c = graph.coord(v);
        for d in 0..dim {
            lo[d] = lo[d].min(c[d]);
            hi[d] = hi[d].max(c[d]);
        }
    }
    let extent = (0..dim)
        .map(|d| hi[d] - lo[d])
        .fold(0.0f64, f64::max)
        .max(f64::MIN_POSITIVE);
    let max_cell = ((1u64 << ORDER) - 1) as f64;
    let scale = max_cell / extent;
    (0..n)
        .map(|v| {
            let c = graph.coord(v);
            let mut cell = [0u32; 3];
            for d in 0..dim {
                cell[d] = (((c[d] - lo[d]) * scale).round() as u64).min(max_cell as u64) as u32;
            }
            cell
        })
        .collect()
}

/// Interleaves the low 16 bits of x and y: …y₁x₁y₀x₀.
fn morton2(x: u32, y: u32) -> u64 {
    spread2(x) | (spread2(y) << 1)
}

/// Spreads the low 16 bits of `v` so there is one zero bit between each.
fn spread2(v: u32) -> u64 {
    let mut v = u64::from(v & 0xFFFF);
    v = (v | (v << 8)) & 0x00FF_00FF;
    v = (v | (v << 4)) & 0x0F0F_0F0F;
    v = (v | (v << 2)) & 0x3333_3333;
    v = (v | (v << 1)) & 0x5555_5555;
    v
}

/// Interleaves the low 16 bits of x, y, z.
fn morton3(x: u32, y: u32, z: u32) -> u64 {
    spread3(x) | (spread3(y) << 1) | (spread3(z) << 2)
}

/// Spreads the low 16 bits of `v` so there are two zero bits between each.
fn spread3(v: u32) -> u64 {
    let mut v = u64::from(v & 0xFFFF);
    v = (v | (v << 16)) & 0x0000_FF00_00FF;
    v = (v | (v << 8)) & 0x00F0_0F00_F00F;
    v = (v | (v << 4)) & 0x0C30_C30C_30C3;
    v = (v | (v << 2)) & 0x2492_4924_9249;
    v
}

/// 2-D Hilbert index of cell `(x, y)` on a `2^ORDER` grid (the classic
/// xy→d conversion with quadrant rotation).
fn hilbert2(mut x: u32, mut y: u32) -> u64 {
    let n: u32 = 1 << ORDER;
    let mut d: u64 = 0;
    let mut s: u32 = n / 2;
    while s > 0 {
        let rx = u32::from((x & s) > 0);
        let ry = u32::from((y & s) > 0);
        d += u64::from(s) * u64::from(s) * u64::from((3 * rx) ^ ry);
        // Rotate the quadrant so the sub-curve has canonical orientation.
        if ry == 0 {
            if rx == 1 {
                x = n - 1 - x;
                y = n - 1 - y;
            }
            std::mem::swap(&mut x, &mut y);
        }
        s /= 2;
    }
    d
}

/// 3-D Hilbert index via per-level Gray-code octant walk with orientation
/// tracking. This is the standard "state-machine" construction: at each
/// level the octant is mapped through the current axis permutation and
/// flips, its position along the curve appended to the index, and the
/// orientation updated.
fn hilbert3(x: u32, y: u32, z: u32) -> u64 {
    // The base pattern: order in which octants (as 3-bit xyz codes) are
    // visited by the canonical first-level Hilbert curve.
    const BASE_ORDER: [u8; 8] = [0, 1, 3, 2, 6, 7, 5, 4];
    // For each position along the curve, the transform applied to descend:
    // (axis permutation, xor mask). Derived from the canonical Butz
    // construction for the curve visiting BASE_ORDER.
    const PERM: [[usize; 3]; 8] = [
        [2, 0, 1],
        [1, 2, 0],
        [1, 2, 0],
        [0, 1, 2],
        [0, 1, 2],
        [1, 2, 0],
        [1, 2, 0],
        [2, 0, 1],
    ];
    const FLIP: [u8; 8] = [0, 0, 0, 0b011, 0b011, 0b110, 0b110, 0b101];

    let mut d: u64 = 0;
    let coords = [x, y, z];
    // Current orientation: which source axis feeds each logical axis, and a
    // flip mask in logical axis space.
    let mut perm: [usize; 3] = [0, 1, 2];
    let mut flip: u8 = 0;
    let mut inv_order = [0u8; 8];
    for (pos, &oct) in BASE_ORDER.iter().enumerate() {
        inv_order[oct as usize] = pos as u8;
    }
    for level in (0..ORDER).rev() {
        // Extract the octant in logical axis space.
        let mut oct: u8 = 0;
        for (logical, &src) in perm.iter().enumerate() {
            let bit = (coords[src] >> level) & 1;
            oct |= (bit as u8) << logical;
        }
        oct ^= flip;
        let pos = inv_order[oct as usize];
        d = (d << 3) | u64::from(pos);
        // Update orientation for the next level.
        let p = PERM[pos as usize];
        let new_perm = [perm[p[0]], perm[p[1]], perm[p[2]]];
        let mut new_flip: u8 = 0;
        let f = FLIP[pos as usize];
        for (logical, &axis) in p.iter().enumerate() {
            let bit = (flip >> axis) & 1;
            new_flip |= (bit ^ ((f >> logical) & 1)) << logical;
        }
        perm = new_perm;
        flip = new_flip;
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::average_edge_span;
    use crate::ordering::Ordering as Ord1;

    fn grid(nx: u32, ny: u32) -> Graph {
        let n = (nx * ny) as usize;
        let mut edges = Vec::new();
        let mut coords = Vec::new();
        for y in 0..ny {
            for x in 0..nx {
                let v = y * nx + x;
                if x + 1 < nx {
                    edges.push((v, v + 1));
                }
                if y + 1 < ny {
                    edges.push((v, v + nx));
                }
                coords.push([f64::from(x), f64::from(y), 0.0]);
            }
        }
        Graph::from_edges(n, &edges, coords, 2)
    }

    #[test]
    fn morton2_small_values() {
        assert_eq!(morton2(0, 0), 0);
        assert_eq!(morton2(1, 0), 1);
        assert_eq!(morton2(0, 1), 2);
        assert_eq!(morton2(1, 1), 3);
        assert_eq!(morton2(2, 0), 4);
        assert_eq!(morton2(3, 3), 15);
    }

    #[test]
    fn morton3_small_values() {
        assert_eq!(morton3(0, 0, 0), 0);
        assert_eq!(morton3(1, 0, 0), 1);
        assert_eq!(morton3(0, 1, 0), 2);
        assert_eq!(morton3(0, 0, 1), 4);
        assert_eq!(morton3(1, 1, 1), 7);
    }

    #[test]
    fn hilbert2_visits_each_cell_once() {
        // On a small grid, hilbert2 restricted to the top-left s×s cells
        // after scaling: verify distinct indices and adjacency of successive
        // cells. Use the full 2^16 grid but check a 4×4 corner scaled up.
        let step = 1u32 << (ORDER - 2); // 4 cells per axis
        let mut indices = Vec::new();
        for y in 0..4u32 {
            for x in 0..4u32 {
                indices.push(hilbert2(x * step, y * step));
            }
        }
        let set: std::collections::HashSet<_> = indices.iter().collect();
        assert_eq!(set.len(), 16, "Hilbert indices must be distinct");
    }

    #[test]
    fn hilbert2_neighbor_cells_adjacent_on_curve() {
        // Successive curve positions must be neighboring cells (the defining
        // property of Hilbert vs Morton). Sort the 4×4 cells by index and
        // check Manhattan distance 1 between successive cells.
        let step = 1u32 << (ORDER - 2);
        let mut cells: Vec<(u64, (i64, i64))> = Vec::new();
        for y in 0..4i64 {
            for x in 0..4i64 {
                cells.push((hilbert2(x as u32 * step, y as u32 * step), (x, y)));
            }
        }
        cells.sort_unstable();
        for w in cells.windows(2) {
            let (x0, y0) = w[0].1;
            let (x1, y1) = w[1].1;
            assert_eq!(
                (x1 - x0).abs() + (y1 - y0).abs(),
                1,
                "cells {:?} and {:?} not adjacent on curve",
                w[0].1,
                w[1].1
            );
        }
    }

    #[test]
    fn hilbert3_distinct_and_adjacent() {
        let step = 1u32 << (ORDER - 1); // 2 cells per axis → 8 octants
        let mut cells: Vec<(u64, (i64, i64, i64))> = Vec::new();
        for z in 0..2i64 {
            for y in 0..2i64 {
                for x in 0..2i64 {
                    cells.push((
                        hilbert3(x as u32 * step, y as u32 * step, z as u32 * step),
                        (x, y, z),
                    ));
                }
            }
        }
        let set: std::collections::HashSet<_> = cells.iter().map(|c| c.0).collect();
        assert_eq!(set.len(), 8, "3-D Hilbert octants must be distinct");
        cells.sort_unstable();
        for w in cells.windows(2) {
            let (x0, y0, z0) = w[0].1;
            let (x1, y1, z1) = w[1].1;
            assert_eq!(
                (x1 - x0).abs() + (y1 - y0).abs() + (z1 - z0).abs(),
                1,
                "octants {:?} and {:?} not adjacent",
                w[0].1,
                w[1].1
            );
        }
    }

    #[test]
    fn hilbert3_deeper_levels_distinct() {
        let step = 1u32 << (ORDER - 2); // 4 cells per axis → 64 cells
        let mut set = std::collections::HashSet::new();
        for z in 0..4u32 {
            for y in 0..4u32 {
                for x in 0..4u32 {
                    set.insert(hilbert3(x * step, y * step, z * step));
                }
            }
        }
        assert_eq!(set.len(), 64);
    }

    #[test]
    fn orderings_are_permutations() {
        let g = grid(8, 8);
        for o in [morton_ordering(&g), hilbert_ordering(&g)] {
            let mut seq = o.sequence();
            seq.sort_unstable();
            assert_eq!(seq, (0..64).collect::<Vec<u32>>());
        }
    }

    #[test]
    fn hilbert_beats_natural_on_shuffled_grid() {
        let g = grid(8, 8);
        // Scramble ids so "natural" is bad.
        let perm: Vec<u32> = (0..64u32).map(|v| (v * 37) % 64).collect();
        let shuffled = g.relabel(&perm);
        let natural = average_edge_span(&shuffled, &Ord1::identity(64));
        let hilbert = average_edge_span(&shuffled, &hilbert_ordering(&shuffled));
        let morton = average_edge_span(&shuffled, &morton_ordering(&shuffled));
        assert!(hilbert < natural);
        assert!(morton < natural);
    }

    #[test]
    fn quantize_handles_degenerate_extent() {
        // All points identical: no NaN, ordering falls back to id order.
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)], vec![[2.0, 2.0, 0.0]; 3], 2);
        let o = morton_ordering(&g);
        assert_eq!(o.sequence(), vec![0, 1, 2]);
    }

    #[test]
    fn deterministic() {
        let g = grid(5, 7);
        assert_eq!(hilbert_ordering(&g), hilbert_ordering(&g));
        assert_eq!(morton_ordering(&g), morton_ordering(&g));
    }
}
