//! # stance-locality — Phase A: the one-dimensional model of locality
//!
//! §3.1 of the paper: computational graphs from physical domains (meshes
//! embedded in two or three dimensions) can be transformed into "a simple
//! architecture-independent one-dimensional representation that encapsulates
//! the locality in these graphs". Once vertices are renumbered along such an
//! order, *any* partition into contiguous blocks is a decent spatial
//! partition — which is what makes remapping on adaptive environments cheap.
//!
//! This crate provides:
//!
//! * [`Graph`] — a CSR computational graph with vertex coordinates;
//! * [`meshgen`] — synthetic unstructured meshes (the paper's Fig. 9 mesh is
//!   substituted by a generated mesh of identical size: 30 269 vertices,
//!   44 929 edges);
//! * one-dimensional orderings (`T : V → {1..n}` in the paper's notation):
//!   - [`rcb`] — recursive coordinate bisection (Fig. 2),
//!   - [`rib`] — recursive inertial bisection,
//!   - [`sfc`] — Morton and Hilbert space-filling-curve indexings,
//!   - [`spectral`] — recursive spectral bisection via a self-contained
//!     Lanczos Fiedler-vector solver (the method the paper used, via \[19\]);
//! * [`metrics`] — ordering/partition quality: edge cut, boundary vertices,
//!   locality, bandwidth.

#![forbid(unsafe_code)]

pub mod graph;
pub mod io;
pub mod meshgen;
pub mod metrics;
pub mod ordering;
pub mod rcb;
pub mod rcm;
pub mod rib;
pub mod sfc;
pub mod spectral;

pub use graph::Graph;
pub use io::{load_graph, read_graph, save_graph, write_graph, GraphIoError};
pub use ordering::{compute_ordering, Ordering, OrderingMethod};
