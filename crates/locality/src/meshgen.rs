//! Synthetic unstructured meshes.
//!
//! The paper's experiments use an unstructured mesh of 30 269 vertices and
//! 44 929 edges (Fig. 9) whose origin is not given. We substitute generated
//! meshes with the same statistics: planar-embedded, irregular, sparse
//! (average degree ≈ 3) and spatially local — the properties the runtime's
//! behaviour actually depends on. All generators are seeded and
//! deterministic, and always return *connected* graphs (the spectral
//! partitioner and the symmetric-schedule optimizations assume
//! connectivity-friendly meshes; disconnected inputs are still handled but
//! make worse test fixtures).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

use crate::graph::Graph;

/// Vertex/edge counts of the paper's Fig. 9 mesh.
pub const PAPER_MESH_VERTICES: usize = 30_269;
/// Edge count of the paper's Fig. 9 mesh.
pub const PAPER_MESH_EDGES: usize = 44_929;

/// A triangulated `nx × ny` grid with jittered coordinates: each unit cell
/// has its horizontal, vertical and one diagonal edge. Jitter displaces
/// vertex coordinates by up to `jitter/2` in each axis (structure is
/// unchanged; only geometry becomes irregular).
///
/// # Panics
/// Panics if `nx` or `ny` is zero or `jitter` is negative/non-finite.
pub fn triangulated_grid(nx: usize, ny: usize, jitter: f64, seed: u64) -> Graph {
    assert!(nx >= 1 && ny >= 1, "grid must be at least 1×1");
    assert!(
        jitter.is_finite() && jitter >= 0.0,
        "jitter must be finite and non-negative"
    );
    let n = nx * ny;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coords = Vec::with_capacity(n);
    for y in 0..ny {
        for x in 0..nx {
            let dx = (rng.random::<f64>() - 0.5) * jitter;
            let dy = (rng.random::<f64>() - 0.5) * jitter;
            coords.push([x as f64 + dx, y as f64 + dy, 0.0]);
        }
    }
    let mut edges = Vec::new();
    let idx = |x: usize, y: usize| (y * nx + x) as u32;
    for y in 0..ny {
        for x in 0..nx {
            if x + 1 < nx {
                edges.push((idx(x, y), idx(x + 1, y)));
            }
            if y + 1 < ny {
                edges.push((idx(x, y), idx(x, y + 1)));
            }
            if x + 1 < nx && y + 1 < ny {
                // Alternate diagonal direction per cell for irregularity.
                if (x + y) % 2 == 0 {
                    edges.push((idx(x, y), idx(x + 1, y + 1)));
                } else {
                    edges.push((idx(x + 1, y), idx(x, y + 1)));
                }
            }
        }
    }
    Graph::from_edges(n, &edges, coords, 2)
}

/// Removes random non-tree edges until exactly `target_edges` remain,
/// preserving connectivity (a BFS spanning tree is never touched).
///
/// # Panics
/// Panics if the graph is disconnected, or if `target_edges` is below
/// `n − 1` (connectivity would be impossible) or above the current count.
pub fn thin_to_edges(graph: &Graph, target_edges: usize, seed: u64) -> Graph {
    let n = graph.num_vertices();
    let m = graph.num_edges();
    assert!(
        target_edges <= m,
        "cannot thin {m} edges up to {target_edges}"
    );
    assert!(
        target_edges + 1 >= n,
        "target {target_edges} cannot keep {n} vertices connected"
    );
    let tree: std::collections::HashSet<(u32, u32)> =
        graph.spanning_tree_edges().into_iter().collect();
    let mut non_tree: Vec<(u32, u32)> = graph.edges().filter(|e| !tree.contains(e)).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    non_tree.shuffle(&mut rng);
    let keep_extra = target_edges - tree.len();
    let mut edges: Vec<(u32, u32)> = tree.into_iter().collect();
    edges.sort_unstable(); // deterministic base order
    edges.extend(non_tree.into_iter().take(keep_extra));
    let coords = graph.coords().to_vec();
    Graph::from_edges(n, &edges, coords, graph.dim())
}

/// Randomly permutes vertex labels (structure and geometry unchanged).
/// Mesh files rarely number vertices in a spatially coherent order, so a
/// shuffle makes the "natural ordering" baseline honest.
pub fn shuffle_labels(graph: &Graph, seed: u64) -> Graph {
    let n = graph.num_vertices();
    let mut perm: Vec<u32> = (0..n as u32).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    perm.shuffle(&mut rng);
    graph.relabel(&perm)
}

/// The Fig. 9 substitute: a jittered triangulated grid trimmed to exactly
/// [`PAPER_MESH_VERTICES`] vertices, thinned to [`PAPER_MESH_EDGES`] edges
/// (average degree ≈ 2.97, matching the paper's mesh), with vertex labels
/// shuffled as in a real mesh file.
pub fn paper_mesh(seed: u64) -> Graph {
    // 174 × 174 = 30 276 vertices; drop the trailing 7 (end of the last
    // row — removal keeps the grid connected).
    let full = triangulated_grid(174, 174, 0.6, seed);
    let keep = PAPER_MESH_VERTICES;
    let kept_ids: Vec<u32> = (0..keep as u32).collect();
    let (trimmed, _) = full.induced_subgraph(&kept_ids);
    debug_assert!(trimmed.is_connected());
    let g = thin_to_edges(&trimmed, PAPER_MESH_EDGES, seed ^ 0x5EED_CAFE);
    debug_assert_eq!(g.num_vertices(), PAPER_MESH_VERTICES);
    debug_assert_eq!(g.num_edges(), PAPER_MESH_EDGES);
    shuffle_labels(&g, seed ^ 0x0BAD_C0DE)
}

/// An annulus ("airfoil-like") mesh: `rings` concentric rings of `sectors`
/// vertices each, radius growing geometrically so cells cluster near the
/// inner boundary — mimicking meshes refined around a body.
///
/// # Panics
/// Panics unless `rings ≥ 2` and `sectors ≥ 3`.
pub fn annulus_mesh(rings: usize, sectors: usize, seed: u64) -> Graph {
    assert!(
        rings >= 2 && sectors >= 3,
        "annulus needs rings ≥ 2, sectors ≥ 3"
    );
    let n = rings * sectors;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coords = Vec::with_capacity(n);
    let growth: f64 = 1.15;
    for r in 0..rings {
        let radius = growth.powi(r as i32);
        for s in 0..sectors {
            let jitter = (rng.random::<f64>() - 0.5) * 0.05;
            let theta = (s as f64 + jitter) / sectors as f64 * std::f64::consts::TAU;
            coords.push([radius * theta.cos(), radius * theta.sin(), 0.0]);
        }
    }
    let idx = |r: usize, s: usize| (r * sectors + s % sectors) as u32;
    let mut edges = Vec::new();
    for r in 0..rings {
        for s in 0..sectors {
            // Ring edge.
            let a = idx(r, s);
            let b = idx(r, s + 1);
            if a != b {
                edges.push((a.min(b), a.max(b)));
            }
            // Radial edge + alternating diagonal.
            if r + 1 < rings {
                edges.push((idx(r, s), idx(r + 1, s)));
                if (r + s) % 2 == 0 {
                    let c = idx(r, s);
                    let d = idx(r + 1, (s + 1) % sectors);
                    edges.push((c.min(d), c.max(d)));
                }
            }
        }
    }
    edges.sort_unstable();
    edges.dedup();
    Graph::from_edges(n, &edges, coords, 2)
}

/// A random geometric graph: `n` uniform points in the unit square, edges
/// between pairs closer than `radius`, then augmented with a path through
/// the points in x-order so the result is always connected.
pub fn random_geometric(n: usize, radius: f64, seed: u64) -> Graph {
    assert!(n >= 1, "need at least one vertex");
    assert!(
        radius > 0.0 && radius.is_finite(),
        "radius must be positive"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let coords: Vec<[f64; 3]> = (0..n)
        .map(|_| [rng.random::<f64>(), rng.random::<f64>(), 0.0])
        .collect();
    // Cell grid for neighbor search.
    let cell = radius;
    let cells_per_axis = (1.0 / cell).ceil() as i64 + 1;
    let mut grid: std::collections::HashMap<(i64, i64), Vec<u32>> =
        std::collections::HashMap::new();
    for (v, c) in coords.iter().enumerate() {
        let key = ((c[0] / cell) as i64, (c[1] / cell) as i64);
        grid.entry(key).or_default().push(v as u32);
    }
    let mut edges = Vec::new();
    let r2 = radius * radius;
    for (v, c) in coords.iter().enumerate() {
        let (cx, cy) = ((c[0] / cell) as i64, (c[1] / cell) as i64);
        for dx in -1..=1 {
            for dy in -1..=1 {
                let (nx, ny) = (cx + dx, cy + dy);
                if nx < 0 || ny < 0 || nx >= cells_per_axis || ny >= cells_per_axis {
                    continue;
                }
                if let Some(cands) = grid.get(&(nx, ny)) {
                    for &w in cands {
                        if (w as usize) > v {
                            let cw = coords[w as usize];
                            let d2 = (cw[0] - c[0]).powi(2) + (cw[1] - c[1]).powi(2);
                            if d2 <= r2 {
                                edges.push((v as u32, w));
                            }
                        }
                    }
                }
            }
        }
    }
    // Connectivity backbone: path through x-sorted order.
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by(|&a, &b| {
        coords[a as usize][0]
            .partial_cmp(&coords[b as usize][0])
            .expect("coords are finite")
            .then(a.cmp(&b))
    });
    for w in order.windows(2) {
        let (a, b) = (w[0].min(w[1]), w[0].max(w[1]));
        edges.push((a, b));
    }
    edges.sort_unstable();
    edges.dedup();
    Graph::from_edges(n, &edges, coords, 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangulated_grid_counts() {
        let g = triangulated_grid(4, 3, 0.0, 1);
        assert_eq!(g.num_vertices(), 12);
        // Edges: horizontal 3×3=9, vertical 4×2=8, diagonals 3×2=6 → 23.
        assert_eq!(g.num_edges(), 23);
        assert!(g.is_connected());
    }

    #[test]
    fn triangulated_grid_jitter_moves_coords_not_structure() {
        let a = triangulated_grid(5, 5, 0.0, 7);
        let b = triangulated_grid(5, 5, 0.5, 7);
        assert_eq!(a.num_edges(), b.num_edges());
        assert_ne!(a.coords(), b.coords());
        // Jitter is bounded by 0.25 in each axis.
        for v in 0..a.num_vertices() {
            let ca = a.coord(v);
            let cb = b.coord(v);
            assert!((ca[0] - cb[0]).abs() <= 0.25 + 1e-12);
            assert!((ca[1] - cb[1]).abs() <= 0.25 + 1e-12);
        }
    }

    #[test]
    fn thin_preserves_connectivity_and_count() {
        let g = triangulated_grid(10, 10, 0.3, 3);
        let target = g.num_vertices() + 20;
        let thinned = thin_to_edges(&g, target, 9);
        assert_eq!(thinned.num_edges(), target);
        assert_eq!(thinned.num_vertices(), g.num_vertices());
        assert!(thinned.is_connected());
    }

    #[test]
    fn thin_to_tree() {
        let g = triangulated_grid(6, 6, 0.0, 2);
        let tree = thin_to_edges(&g, g.num_vertices() - 1, 5);
        assert_eq!(tree.num_edges(), 35);
        assert!(tree.is_connected());
    }

    #[test]
    #[should_panic(expected = "cannot keep")]
    fn thin_below_tree_rejected() {
        let g = triangulated_grid(4, 4, 0.0, 2);
        let _ = thin_to_edges(&g, 10, 0);
    }

    #[test]
    fn paper_mesh_matches_figure9() {
        let g = paper_mesh(42);
        assert_eq!(g.num_vertices(), PAPER_MESH_VERTICES);
        assert_eq!(g.num_edges(), PAPER_MESH_EDGES);
        assert!(g.is_connected());
        // Average degree ≈ 2.97 as in the paper.
        let avg = 2.0 * g.num_edges() as f64 / g.num_vertices() as f64;
        assert!((avg - 2.97).abs() < 0.01, "average degree {avg}");
    }

    #[test]
    fn paper_mesh_deterministic_per_seed() {
        assert_eq!(paper_mesh(1), paper_mesh(1));
        assert_ne!(paper_mesh(1), paper_mesh(2));
    }

    #[test]
    fn annulus_connected_and_planar_sized() {
        let g = annulus_mesh(6, 24, 11);
        assert_eq!(g.num_vertices(), 144);
        assert!(g.is_connected());
        // Inner ring is denser in space: radius grows with ring index.
        let inner = g.coord(0);
        let outer = g.coord(143);
        let rin = (inner[0].powi(2) + inner[1].powi(2)).sqrt();
        let rout = (outer[0].powi(2) + outer[1].powi(2)).sqrt();
        assert!(rout > rin);
    }

    #[test]
    fn random_geometric_connected() {
        for seed in 0..3 {
            let g = random_geometric(200, 0.05, seed);
            assert!(g.is_connected(), "seed {seed} gave a disconnected graph");
            assert_eq!(g.num_vertices(), 200);
        }
    }

    #[test]
    fn random_geometric_radius_controls_density() {
        let sparse = random_geometric(300, 0.03, 5);
        let dense = random_geometric(300, 0.12, 5);
        assert!(dense.num_edges() > sparse.num_edges());
    }
}
