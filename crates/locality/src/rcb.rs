//! Recursive coordinate bisection indexing (Fig. 2 of the paper).
//!
//! The point set is recursively split at the median of its widest coordinate
//! axis; the 1-D index of a vertex is its leaf position in the recursion
//! tree (left subtree first). Physically proximate vertices end up close on
//! the list, so contiguous blocks of the list are compact regions of the
//! mesh.
//!
//! The split uses `select_nth_unstable` (expected `O(n)` per level, total
//! `O(n log n)`), with a deterministic tie-break on vertex id so orderings
//! are reproducible.

use crate::graph::Graph;
use crate::ordering::Ordering;

/// Computes the RCB ordering of a graph from its vertex coordinates.
pub fn rcb_ordering(graph: &Graph) -> Ordering {
    let n = graph.num_vertices();
    let mut ids: Vec<u32> = (0..n as u32).collect();
    let coords = graph.coords();
    let dim = graph.dim();
    rcb_recurse(&mut ids, coords, dim);
    Ordering::from_sequence(&ids)
}

/// Recursively orders `ids` in place.
fn rcb_recurse(ids: &mut [u32], coords: &[[f64; 3]], dim: usize) {
    if ids.len() <= 2 {
        // Keep leaves deterministic: order by id.
        ids.sort_unstable();
        return;
    }
    let axis = widest_axis(ids, coords, dim);
    let mid = ids.len() / 2;
    ids.select_nth_unstable_by(mid, |&a, &b| {
        let ca = coords[a as usize][axis];
        let cb = coords[b as usize][axis];
        ca.partial_cmp(&cb)
            .expect("coordinates must not be NaN")
            .then(a.cmp(&b))
    });
    let (left, right) = ids.split_at_mut(mid);
    rcb_recurse(left, coords, dim);
    rcb_recurse(right, coords, dim);
}

/// The axis with the largest coordinate extent over `ids`.
fn widest_axis(ids: &[u32], coords: &[[f64; 3]], dim: usize) -> usize {
    let mut lo = [f64::INFINITY; 3];
    let mut hi = [f64::NEG_INFINITY; 3];
    for &v in ids {
        let c = coords[v as usize];
        for d in 0..dim {
            lo[d] = lo[d].min(c[d]);
            hi[d] = hi[d].max(c[d]);
        }
    }
    let mut best = 0;
    let mut best_extent = hi[0] - lo[0];
    for d in 1..dim {
        let e = hi[d] - lo[d];
        if e > best_extent {
            best_extent = e;
            best = d;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 4×4 grid graph with unit spacing.
    fn grid4() -> Graph {
        let n = 16;
        let mut edges = Vec::new();
        let mut coords = Vec::new();
        for y in 0..4u32 {
            for x in 0..4u32 {
                let v = y * 4 + x;
                if x + 1 < 4 {
                    edges.push((v, v + 1));
                }
                if y + 1 < 4 {
                    edges.push((v, v + 4));
                }
                coords.push([f64::from(x), f64::from(y), 0.0]);
            }
        }
        Graph::from_edges(n, &edges, coords, 2)
    }

    #[test]
    fn rcb_is_a_permutation() {
        let g = grid4();
        let o = rcb_ordering(&g);
        assert_eq!(o.len(), 16);
        let mut seq = o.sequence();
        seq.sort_unstable();
        assert_eq!(seq, (0..16).collect::<Vec<u32>>());
    }

    #[test]
    fn rcb_first_half_is_one_side() {
        // The first split of a 4×4 grid puts one half of the plane in the
        // first 8 positions.
        let g = grid4();
        let o = rcb_ordering(&g);
        let seq = o.sequence();
        let first_half: Vec<f64> = seq[..8].iter().map(|&v| g.coord(v as usize)[0]).collect();
        let second_half: Vec<f64> = seq[8..].iter().map(|&v| g.coord(v as usize)[0]).collect();
        let max_first = first_half.iter().copied().fold(f64::MIN, f64::max);
        let min_second = second_half.iter().copied().fold(f64::MAX, f64::min);
        assert!(
            max_first <= min_second,
            "first half (x ≤ {max_first}) should precede second (x ≥ {min_second})"
        );
    }

    #[test]
    fn rcb_improves_locality_over_shuffled() {
        use crate::metrics::average_edge_span;
        // Shuffle the grid labels, then check RCB restores locality.
        let g = grid4();
        let shuffled = g.relabel(&[7, 3, 11, 15, 2, 6, 10, 14, 1, 5, 9, 13, 0, 4, 8, 12]);
        let natural = average_edge_span(&shuffled, &Ordering::identity(16));
        let rcb = average_edge_span(&shuffled, &rcb_ordering(&shuffled));
        assert!(
            rcb < natural,
            "RCB span {rcb} should beat shuffled-natural span {natural}"
        );
    }

    #[test]
    fn rcb_tiny_inputs() {
        let g1 = Graph::from_edges(1, &[], vec![[0.0; 3]], 2);
        assert_eq!(rcb_ordering(&g1).len(), 1);
        let g2 = Graph::from_edges(2, &[(0, 1)], vec![[0.0; 3], [1.0, 0.0, 0.0]], 2);
        let o = rcb_ordering(&g2);
        assert_eq!(o.len(), 2);
    }

    #[test]
    fn rcb_deterministic() {
        let g = grid4();
        assert_eq!(rcb_ordering(&g), rcb_ordering(&g));
    }

    #[test]
    fn rcb_3d_uses_z() {
        // Two layers of 4 points; z is the widest axis.
        let mut coords = Vec::new();
        for z in 0..2 {
            for x in 0..2 {
                for y in 0..2 {
                    coords.push([f64::from(x), f64::from(y), f64::from(z) * 10.0]);
                }
            }
        }
        let g = Graph::from_edges(8, &[(0, 4), (1, 5), (2, 6), (3, 7)], coords, 3);
        let o = rcb_ordering(&g);
        let seq = o.sequence();
        // First four positions should be one z-layer.
        let zs: Vec<f64> = seq[..4].iter().map(|&v| g.coord(v as usize)[2]).collect();
        assert!(zs.iter().all(|&z| z == zs[0]));
    }
}
