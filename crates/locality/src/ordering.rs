//! One-dimensional orderings: the transformation `T : V → {1, 2, …, n}`.
//!
//! An [`Ordering`] is a bijection between vertex ids and positions on the
//! one-dimensional list. "The goal of this transformation is to achieve good
//! partitioning for a wide range of partitions" (§3.1): after relabeling the
//! graph along the ordering, every contiguous block partition inherits the
//! spatial locality the ordering captured.

use crate::graph::Graph;
use crate::rcb;
use crate::rcm;
use crate::rib;
use crate::sfc;
use crate::spectral;

/// A bijection `vertex id ↔ position on the 1-D list`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ordering {
    /// `position_of[v]` = position of vertex `v` on the list.
    position_of: Vec<u32>,
}

impl Ordering {
    /// The identity ordering ("natural" vertex numbering).
    pub fn identity(n: usize) -> Self {
        Ordering {
            position_of: (0..n as u32).collect(),
        }
    }

    /// Builds from a `position_of` map.
    ///
    /// # Panics
    /// Panics unless the map is a permutation of `0..n`.
    pub fn from_positions(position_of: Vec<u32>) -> Self {
        let n = position_of.len();
        let mut seen = vec![false; n];
        for &p in &position_of {
            assert!(
                (p as usize) < n && !seen[p as usize],
                "position map is not a permutation"
            );
            seen[p as usize] = true;
        }
        Ordering { position_of }
    }

    /// Builds from a sequence: `sequence[i]` is the vertex placed at
    /// position `i`.
    ///
    /// # Panics
    /// Panics unless the sequence is a permutation of `0..n`.
    pub fn from_sequence(sequence: &[u32]) -> Self {
        let n = sequence.len();
        let mut position_of = vec![u32::MAX; n];
        for (pos, &v) in sequence.iter().enumerate() {
            assert!(
                (v as usize) < n && position_of[v as usize] == u32::MAX,
                "sequence is not a permutation"
            );
            position_of[v as usize] = pos as u32;
        }
        Ordering { position_of }
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.position_of.len()
    }

    /// Whether the ordering is over the empty vertex set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.position_of.is_empty()
    }

    /// Position of vertex `v`.
    #[inline]
    pub fn position_of(&self, v: usize) -> usize {
        self.position_of[v] as usize
    }

    /// The raw position map.
    #[inline]
    pub fn positions(&self) -> &[u32] {
        &self.position_of
    }

    /// The inverse map: `sequence()[i]` is the vertex at position `i`.
    pub fn sequence(&self) -> Vec<u32> {
        let mut seq = vec![0u32; self.position_of.len()];
        for (v, &p) in self.position_of.iter().enumerate() {
            seq[p as usize] = v as u32;
        }
        seq
    }

    /// Relabels a graph so vertex ids coincide with list positions. After
    /// this, block partitions of `0..n` are partitions of the mesh.
    pub fn apply(&self, graph: &Graph) -> Graph {
        graph.relabel(&self.position_of)
    }

    /// Composes with another ordering: first `self`, then `then` on the
    /// positions.
    pub fn compose(&self, then: &Ordering) -> Ordering {
        assert_eq!(self.len(), then.len(), "ordering length mismatch");
        let position_of = self
            .position_of
            .iter()
            .map(|&p| then.position_of[p as usize])
            .collect();
        Ordering { position_of }
    }
}

/// The available one-dimensional indexing methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OrderingMethod {
    /// Keep the input numbering (baseline — no locality improvement).
    Natural,
    /// Recursive coordinate bisection (Fig. 2 of the paper).
    Rcb,
    /// Recursive inertial bisection (splits along the principal axis).
    Inertial,
    /// Morton (Z-order) space-filling curve.
    Morton,
    /// Hilbert space-filling curve.
    Hilbert,
    /// Recursive spectral bisection (Fiedler vectors; the paper's choice for
    /// its experiments, citing \[19\]).
    Spectral,
    /// Reverse Cuthill–McKee (combinatorial BFS bandwidth reducer; needs no
    /// geometry).
    CuthillMcKee,
}

impl OrderingMethod {
    /// All methods, for sweeps/ablations.
    pub const ALL: [OrderingMethod; 7] = [
        OrderingMethod::Natural,
        OrderingMethod::Rcb,
        OrderingMethod::Inertial,
        OrderingMethod::Morton,
        OrderingMethod::Hilbert,
        OrderingMethod::Spectral,
        OrderingMethod::CuthillMcKee,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            OrderingMethod::Natural => "natural",
            OrderingMethod::Rcb => "rcb",
            OrderingMethod::Inertial => "inertial",
            OrderingMethod::Morton => "morton",
            OrderingMethod::Hilbert => "hilbert",
            OrderingMethod::Spectral => "spectral",
            OrderingMethod::CuthillMcKee => "rcm",
        }
    }
}

impl std::fmt::Display for OrderingMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Computes the one-dimensional ordering of `graph` with `method`.
pub fn compute_ordering(graph: &Graph, method: OrderingMethod) -> Ordering {
    match method {
        OrderingMethod::Natural => Ordering::identity(graph.num_vertices()),
        OrderingMethod::Rcb => rcb::rcb_ordering(graph),
        OrderingMethod::Inertial => rib::inertial_ordering(graph),
        OrderingMethod::Morton => sfc::morton_ordering(graph),
        OrderingMethod::Hilbert => sfc::hilbert_ordering(graph),
        OrderingMethod::Spectral => spectral::spectral_ordering(graph),
        OrderingMethod::CuthillMcKee => rcm::rcm_ordering(graph),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_round_trip() {
        let o = Ordering::identity(5);
        assert_eq!(o.len(), 5);
        assert_eq!(o.position_of(3), 3);
        assert_eq!(o.sequence(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn sequence_and_positions_are_inverse() {
        let o = Ordering::from_sequence(&[2, 0, 3, 1]);
        assert_eq!(o.position_of(2), 0);
        assert_eq!(o.position_of(0), 1);
        assert_eq!(o.position_of(1), 3);
        assert_eq!(o.sequence(), vec![2, 0, 3, 1]);
        let p = Ordering::from_positions(o.positions().to_vec());
        assert_eq!(p, o);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn bad_positions_rejected() {
        let _ = Ordering::from_positions(vec![0, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn bad_sequence_rejected() {
        let _ = Ordering::from_sequence(&[1, 1, 2]);
    }

    #[test]
    fn compose() {
        let a = Ordering::from_sequence(&[2, 0, 1]); // pos of 0=1, 1=2, 2=0
        let reverse = Ordering::from_positions(vec![2, 1, 0]);
        let c = a.compose(&reverse);
        // Vertex 0: a puts it at 1, reverse maps 1→1 → stays 1.
        assert_eq!(c.position_of(0), 1);
        // Vertex 2: a→0, reverse 0→2.
        assert_eq!(c.position_of(2), 2);
    }

    #[test]
    fn apply_relabels_graph() {
        let g = Graph::from_edges(
            3,
            &[(0, 1), (1, 2)],
            vec![[0.0; 3], [1.0, 0.0, 0.0], [2.0, 0.0, 0.0]],
            2,
        );
        let o = Ordering::from_sequence(&[2, 1, 0]); // reverse the path
        let h = o.apply(&g);
        // Path structure preserved: middle vertex still has degree 2.
        assert_eq!(h.degree(1), 2);
        assert_eq!(h.neighbors(0), &[1]);
        // Old vertex 2 (coord x=2) now sits at position 0.
        assert_eq!(h.coord(0)[0], 2.0);
    }

    #[test]
    fn method_names_unique() {
        let names: std::collections::HashSet<_> =
            OrderingMethod::ALL.iter().map(|m| m.name()).collect();
        assert_eq!(names.len(), OrderingMethod::ALL.len());
    }
}
