//! Quality metrics for orderings and the block partitions they induce.
//!
//! The paper's Phase A goal: "achieve good partitioning for a wide range of
//! partitions". These metrics quantify that — an ordering is good if, for
//! any block partition of list positions, few edges cross block boundaries
//! (edge cut) and few vertices need off-processor data (boundary vertices /
//! communication volume).

use stance_onedim::BlockPartition;

use crate::graph::Graph;
use crate::ordering::Ordering;

/// Mean `|position(u) − position(v)|` over all edges: the average stretch of
/// an edge along the one-dimensional list. Lower = more local.
pub fn average_edge_span(graph: &Graph, ordering: &Ordering) -> f64 {
    let m = graph.num_edges();
    if m == 0 {
        return 0.0;
    }
    let total: u64 = graph
        .edges()
        .map(|(u, v)| {
            let pu = ordering.position_of(u as usize) as i64;
            let pv = ordering.position_of(v as usize) as i64;
            pu.abs_diff(pv)
        })
        .sum();
    total as f64 / m as f64
}

/// Maximum `|position(u) − position(v)|` over all edges (the matrix
/// bandwidth of the reordered adjacency).
pub fn bandwidth(graph: &Graph, ordering: &Ordering) -> usize {
    graph
        .edges()
        .map(|(u, v)| {
            ordering
                .position_of(u as usize)
                .abs_diff(ordering.position_of(v as usize))
        })
        .max()
        .unwrap_or(0)
}

/// Number of edges whose endpoints land in different blocks of `partition`
/// (positions are partitioned; vertices map through `ordering`).
pub fn edge_cut(graph: &Graph, ordering: &Ordering, partition: &BlockPartition) -> usize {
    assert_eq!(partition.n(), graph.num_vertices());
    graph
        .edges()
        .filter(|&(u, v)| {
            partition.owner_of(ordering.position_of(u as usize))
                != partition.owner_of(ordering.position_of(v as usize))
        })
        .count()
}

/// Number of vertices with at least one neighbor in a different block.
pub fn boundary_vertices(graph: &Graph, ordering: &Ordering, partition: &BlockPartition) -> usize {
    assert_eq!(partition.n(), graph.num_vertices());
    (0..graph.num_vertices())
        .filter(|&v| {
            let home = partition.owner_of(ordering.position_of(v));
            graph
                .neighbors(v)
                .iter()
                .any(|&w| partition.owner_of(ordering.position_of(w as usize)) != home)
        })
        .count()
}

/// Per-processor communication volume: the number of *distinct* off-block
/// vertices each block must gather (after duplicate removal, as the
/// inspector's hash pass does). Index = processor id.
pub fn comm_volume(graph: &Graph, ordering: &Ordering, partition: &BlockPartition) -> Vec<usize> {
    assert_eq!(partition.n(), graph.num_vertices());
    let p = partition.num_procs();
    let mut volumes = vec![0usize; p];
    let mut seen: Vec<std::collections::HashSet<u32>> =
        (0..p).map(|_| std::collections::HashSet::new()).collect();
    for v in 0..graph.num_vertices() {
        let home = partition.owner_of(ordering.position_of(v));
        for &w in graph.neighbors(v) {
            let other = partition.owner_of(ordering.position_of(w as usize));
            if other != home && seen[home].insert(w) {
                volumes[home] += 1;
            }
        }
    }
    volumes
}

/// A bundled quality report for one ordering at one processor count.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityReport {
    /// Blocks in the evaluated partition.
    pub parts: usize,
    /// Mean edge stretch along the list.
    pub average_edge_span: f64,
    /// Maximum edge stretch.
    pub bandwidth: usize,
    /// Edges crossing block boundaries.
    pub edge_cut: usize,
    /// Vertices adjacent to another block.
    pub boundary_vertices: usize,
    /// Total distinct off-block vertices gathered per iteration.
    pub total_comm_volume: usize,
}

/// Evaluates an ordering under an equal-weight partition into `parts`
/// blocks.
pub fn quality_report(graph: &Graph, ordering: &Ordering, parts: usize) -> QualityReport {
    let partition = BlockPartition::uniform(graph.num_vertices(), parts);
    QualityReport {
        parts,
        average_edge_span: average_edge_span(graph, ordering),
        bandwidth: bandwidth(graph, ordering),
        edge_cut: edge_cut(graph, ordering, &partition),
        boundary_vertices: boundary_vertices(graph, ordering, &partition),
        total_comm_volume: comm_volume(graph, ordering, &partition).iter().sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A path 0-1-2-3-4-5.
    fn path6() -> Graph {
        let edges: Vec<(u32, u32)> = (0..5).map(|i| (i, i + 1)).collect();
        let coords = (0..6).map(|i| [f64::from(i), 0.0, 0.0]).collect();
        Graph::from_edges(6, &edges, coords, 2)
    }

    #[test]
    fn span_of_path_natural_is_one() {
        let g = path6();
        let o = Ordering::identity(6);
        assert_eq!(average_edge_span(&g, &o), 1.0);
        assert_eq!(bandwidth(&g, &o), 1);
    }

    #[test]
    fn span_detects_bad_ordering() {
        let g = path6();
        // Interleave ends: positions 0,5,1,4,2,3 → spans grow.
        let o = Ordering::from_positions(vec![0, 5, 1, 4, 2, 3]);
        assert!(average_edge_span(&g, &o) > 1.0);
        assert!(bandwidth(&g, &o) > 1);
    }

    #[test]
    fn edge_cut_on_path() {
        let g = path6();
        let o = Ordering::identity(6);
        let part = BlockPartition::uniform(6, 2);
        // Path split in half: exactly one crossing edge (2-3).
        assert_eq!(edge_cut(&g, &o, &part), 1);
        assert_eq!(boundary_vertices(&g, &o, &part), 2);
        let part3 = BlockPartition::uniform(6, 3);
        assert_eq!(edge_cut(&g, &o, &part3), 2);
    }

    #[test]
    fn comm_volume_path() {
        let g = path6();
        let o = Ordering::identity(6);
        let part = BlockPartition::uniform(6, 2);
        let vol = comm_volume(&g, &o, &part);
        // Each side needs exactly the one vertex across the cut.
        assert_eq!(vol, vec![1, 1]);
    }

    #[test]
    fn comm_volume_dedups() {
        // A star: center 0 in block 0, leaves elsewhere. The leaf block
        // needs vertex 0 once, not once per leaf.
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)], vec![[0.0; 3]; 4], 2);
        let o = Ordering::identity(4);
        let part = BlockPartition::from_sizes(&[1, 3]);
        let vol = comm_volume(&g, &o, &part);
        assert_eq!(vol[1], 1, "block 1 gathers the center exactly once");
        assert_eq!(vol[0], 3, "the center needs all three leaves");
    }

    #[test]
    fn quality_report_consistency() {
        let g = path6();
        let o = Ordering::identity(6);
        let r = quality_report(&g, &o, 3);
        assert_eq!(r.parts, 3);
        assert_eq!(r.edge_cut, 2);
        assert_eq!(r.total_comm_volume, 4);
        assert_eq!(r.bandwidth, 1);
    }

    #[test]
    fn empty_graph_metrics() {
        let g = Graph::from_edges(0, &[], vec![], 2);
        let o = Ordering::identity(0);
        assert_eq!(average_edge_span(&g, &o), 0.0);
        assert_eq!(bandwidth(&g, &o), 0);
    }
}
