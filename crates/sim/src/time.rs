//! Virtual time: a thin wrapper over `f64` seconds.
//!
//! Virtual timestamps are totally ordered, non-NaN by construction, and only
//! ever move forward on a given rank. Keeping a newtype (instead of bare
//! `f64`) prevents accidentally mixing wall-clock measurements into the
//! simulation's accounting.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in seconds since the start of the run.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct VTime(f64);

impl VTime {
    /// Time zero: the start of the simulated run.
    pub const ZERO: VTime = VTime(0.0);

    /// Creates a timestamp from seconds.
    ///
    /// # Panics
    /// Panics if `secs` is NaN or negative: virtual time is a monotone,
    /// non-negative quantity.
    pub fn from_secs(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "virtual time must be finite and non-negative, got {secs}"
        );
        VTime(secs)
    }

    /// The timestamp as seconds.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Returns the later of two timestamps.
    #[inline]
    pub fn max(self, other: VTime) -> VTime {
        if other.0 > self.0 {
            other
        } else {
            self
        }
    }

    /// Returns the earlier of two timestamps.
    #[inline]
    pub fn min(self, other: VTime) -> VTime {
        if other.0 < self.0 {
            other
        } else {
            self
        }
    }

    /// `max(0, self - other)` in seconds: the non-negative gap between two
    /// timestamps. Used for idle-time accounting.
    #[inline]
    pub fn saturating_gap(self, other: VTime) -> f64 {
        (self.0 - other.0).max(0.0)
    }
}

impl Default for VTime {
    fn default() -> Self {
        VTime::ZERO
    }
}

impl Eq for VTime {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for VTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Construction forbids NaN, so partial_cmp always succeeds.
        self.0
            .partial_cmp(&other.0)
            .expect("VTime is never NaN by construction")
    }
}

impl Add<f64> for VTime {
    type Output = VTime;
    fn add(self, dt: f64) -> VTime {
        VTime::from_secs(self.0 + dt)
    }
}

impl AddAssign<f64> for VTime {
    fn add_assign(&mut self, dt: f64) {
        *self = *self + dt;
    }
}

impl Sub<VTime> for VTime {
    type Output = f64;
    fn sub(self, rhs: VTime) -> f64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for VTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = VTime::from_secs(1.5);
        assert_eq!(t.as_secs(), 1.5);
        assert_eq!(VTime::ZERO.as_secs(), 0.0);
        assert_eq!(VTime::default(), VTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn rejects_negative() {
        let _ = VTime::from_secs(-1.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn rejects_nan() {
        let _ = VTime::from_secs(f64::NAN);
    }

    #[test]
    fn ordering_and_max() {
        let a = VTime::from_secs(1.0);
        let b = VTime::from_secs(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(b.max(a), b);
    }

    #[test]
    fn arithmetic() {
        let a = VTime::from_secs(1.0);
        let b = a + 0.5;
        assert!((b.as_secs() - 1.5).abs() < 1e-12);
        assert!((b - a - 0.5).abs() < 1e-12);
        let mut c = a;
        c += 2.0;
        assert!((c.as_secs() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn saturating_gap() {
        let a = VTime::from_secs(1.0);
        let b = VTime::from_secs(3.0);
        assert_eq!(b.saturating_gap(a), 2.0);
        assert_eq!(a.saturating_gap(b), 0.0);
    }
}
