//! The shared SPMD thread-launch harness.
//!
//! Both backends launch ranks the same way: one OS thread per rank, a
//! generous stack (partitioners recurse over meshes), and a
//! fail-without-deadlock panic protocol. The protocol lives here, once,
//! so the two backends cannot drift apart on failure semantics:
//!
//! 1. every rank body runs under `catch_unwind`;
//! 2. the **first** panic's payload is recorded (later ones are fallout —
//!    disconnected mailboxes, poisoned barrier — and are swallowed);
//! 3. the failing rank calls the backend's `poison` hook (which poisons
//!    its barrier) and then drops its per-rank context, closing its
//!    mailboxes — so peers blocked in `barrier` or `recv` abort instead
//!    of waiting forever;
//! 4. after every thread has been joined, the original payload is
//!    resumed, so the caller sees the original panic message.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;

use crate::time::VTime;

/// Stack size for rank threads: partitioners recurse over meshes, so be
/// generous — this costs only virtual address space.
pub const RANK_STACK_BYTES: usize = 16 * 1024 * 1024;

/// The poisonable, clock-synchronizing barrier both backends share.
///
/// The arrive/release protocol is a sense-reversing barrier with a
/// `poisoned` flag wired into the panic protocol above: a failing rank
/// calls [`BarrierShared::poison`], and every waiter panics out instead
/// of waiting for a participant that will never arrive. The virtual-clock
/// fold (release = max participant clock + log-tree cost) is the
/// simulator's time model; the native backend constructs the barrier with
/// zero cost and passes [`VTime::ZERO`], which reduces `wait` to a plain
/// synchronization barrier — one copy of the protocol for both backends.
pub struct BarrierShared {
    inner: Mutex<BarrierInner>,
    cv: Condvar,
    size: usize,
    /// Virtual seconds a barrier adds beyond the max participant clock
    /// (log-tree latency model).
    cost: f64,
}

/// The error [`BarrierShared::wait_deadline`] returns when the barrier
/// does not release in time: a participant is missing (dead, wedged, or
/// merely slow) or the barrier was poisoned by a panicking peer. The
/// timed-out rank has withdrawn its arrival, so the barrier remains
/// usable if every participant turns out to be alive after all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrierTimeout;

struct BarrierInner {
    arrived: usize,
    generation: u64,
    max_clock: VTime,
    release: VTime,
    /// Set when a rank panics: waiters must not keep waiting for a
    /// participant that will never arrive.
    poisoned: bool,
}

impl BarrierShared {
    /// A barrier for `size` ranks whose release charges the log-tree
    /// latency model derived from `per_message_latency` (pass `0.0` for a
    /// pure synchronization barrier).
    pub fn new(size: usize, per_message_latency: f64) -> Arc<Self> {
        // A dissemination barrier needs ceil(log2(p)) rounds of messages.
        let rounds = if size <= 1 {
            0.0
        } else {
            (size as f64).log2().ceil()
        };
        Arc::new(BarrierShared {
            inner: Mutex::new(BarrierInner {
                arrived: 0,
                generation: 0,
                max_clock: VTime::ZERO,
                release: VTime::ZERO,
                poisoned: false,
            }),
            cv: Condvar::new(),
            size,
            cost: 2.0 * per_message_latency * rounds,
        })
    }

    /// Blocks until all ranks arrive; returns the synchronized release time.
    ///
    /// # Panics
    /// Panics if the barrier was [poisoned](Self::poison) by a rank that
    /// failed — the missing participant would otherwise deadlock everyone.
    pub fn wait(&self, clock: VTime) -> VTime {
        // `unwrap_or_else(into_inner)`: a waiter that panics out of this
        // very function (via the poison assert) unwinds while holding the
        // guard, poisoning the *mutex*; the barrier's own `poisoned` flag
        // is the real protocol state, so keep going and read it.
        let mut g = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        assert!(!g.poisoned, "barrier poisoned: a peer rank panicked");
        g.max_clock = g.max_clock.max(clock);
        g.arrived += 1;
        if g.arrived == self.size {
            g.release = g.max_clock + self.cost;
            g.generation = g.generation.wrapping_add(1);
            g.arrived = 0;
            g.max_clock = VTime::ZERO;
            self.cv.notify_all();
            g.release
        } else {
            let gen = g.generation;
            while g.generation == gen {
                g = self
                    .cv
                    .wait(g)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                assert!(!g.poisoned, "barrier poisoned: a peer rank panicked");
            }
            g.release
        }
    }

    /// Deadline-bounded variant of [`BarrierShared::wait`], the failure
    /// detector's entry point: if the barrier does not release within
    /// `timeout` (a participant is dead or wedged), this rank *withdraws
    /// its arrival* — leaving the barrier state consistent for any later
    /// attempt — and returns [`BarrierTimeout`] instead of blocking
    /// forever. A poisoned barrier also returns `Err` (rather than
    /// panicking like the blocking variant): the caller is a recovery
    /// path, and a dead peer is its input, not its crash.
    pub fn wait_deadline(
        &self,
        clock: VTime,
        timeout: std::time::Duration,
    ) -> Result<VTime, BarrierTimeout> {
        let deadline = std::time::Instant::now() + timeout;
        let mut g = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if g.poisoned {
            return Err(BarrierTimeout);
        }
        g.max_clock = g.max_clock.max(clock);
        g.arrived += 1;
        if g.arrived == self.size {
            g.release = g.max_clock + self.cost;
            g.generation = g.generation.wrapping_add(1);
            g.arrived = 0;
            g.max_clock = VTime::ZERO;
            self.cv.notify_all();
            return Ok(g.release);
        }
        let gen = g.generation;
        loop {
            if g.generation != gen {
                return Ok(g.release);
            }
            if g.poisoned {
                g.arrived = g.arrived.saturating_sub(1);
                return Err(BarrierTimeout);
            }
            let now = std::time::Instant::now();
            let Some(remaining) = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())
            else {
                g.arrived = g.arrived.saturating_sub(1);
                return Err(BarrierTimeout);
            };
            g = self
                .cv
                .wait_timeout(g, remaining)
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .0;
        }
    }

    /// Marks the barrier unusable and wakes every waiter (which then
    /// panics out of [`Self::wait`]). Called when a rank fails so peers
    /// blocked on the barrier don't deadlock waiting for it.
    pub fn poison(&self) {
        let mut g = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        g.poisoned = true;
        drop(g);
        self.cv.notify_all();
    }
}

/// Runs one thread per context in `ctxs` (index = rank), executing
/// `rank_main` on each, and returns the per-rank results in rank order.
///
/// The two-phase shape is load-bearing for the panic protocol:
/// `rank_main` only *borrows* the context, so when it panics the context
/// is still alive while the payload is recorded — the failing rank's
/// mailboxes must not close (unblocking peers into their secondary
/// "sender exited" panics) until the original panic has been recorded as
/// first. Only then is the context dropped. On success, `finish` consumes
/// the context to assemble the rank's report (e.g. extracting the final
/// clock); it runs outside the catch and must not panic in normal
/// operation.
///
/// # Panics
/// If any rank panics, resumes the **first** panic's original payload
/// after all threads have been joined.
pub fn run_ranks<Ctx, T, R>(
    name_prefix: &str,
    ctxs: Vec<Ctx>,
    poison: impl Fn() + Sync,
    rank_main: impl Fn(&mut Ctx) -> T + Send + Sync,
    finish: impl Fn(Ctx, T) -> R + Send + Sync,
) -> Vec<R>
where
    Ctx: Send,
    R: Send,
{
    let p = ctxs.len();
    let first_panic: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
    let record_first = |payload: Box<dyn std::any::Any + Send>| {
        let mut g = first_panic
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if g.is_none() {
            *g = Some(payload);
        }
    };
    let mut outcomes: Vec<Option<R>> = (0..p).map(|_| None).collect();
    thread::scope(|scope| {
        let mut handles = Vec::with_capacity(p);
        for (rank, mut ctx) in ctxs.into_iter().enumerate() {
            let poison = &poison;
            let rank_main = &rank_main;
            let finish = &finish;
            let record_first = &record_first;
            let handle = thread::Builder::new()
                .name(format!("{name_prefix}{rank}"))
                .stack_size(RANK_STACK_BYTES)
                .spawn_scoped(scope, move || {
                    match catch_unwind(AssertUnwindSafe(|| rank_main(&mut ctx))) {
                        Ok(result) => Some(finish(ctx, result)),
                        Err(payload) => {
                            record_first(payload);
                            // Only now unblock peers: waiters in `barrier`
                            // abort via the poison, and dropping `ctx` (on
                            // return) closes this rank's mailboxes so
                            // waiters in `recv` abort via `Disconnected` —
                            // strictly after the original panic was
                            // recorded, so theirs can never win.
                            poison();
                            None
                        }
                    }
                })
                .expect("failed to spawn rank thread");
            handles.push(handle);
        }
        for (rank, handle) in handles.into_iter().enumerate() {
            match handle.join() {
                Ok(outcome) => outcomes[rank] = outcome,
                // A panic that escaped catch_unwind (can't happen today,
                // but must not be silently dropped if it ever does).
                Err(payload) => record_first(payload),
            }
        }
    });
    if let Some(payload) = first_panic
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .take()
    {
        resume_unwind(payload);
    }
    outcomes
        .into_iter()
        .map(|o| o.expect("all ranks completed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_in_rank_order() {
        let out = run_ranks(
            "t-",
            vec![0usize, 1, 2],
            || {},
            |rank| *rank * 10,
            |_, result| result,
        );
        assert_eq!(out, vec![0, 10, 20]);
    }

    #[test]
    fn wait_deadline_times_out_and_withdraws() {
        let barrier = BarrierShared::new(2, 0.0);
        // Alone at a 2-rank barrier: must time out, not hang.
        let r = barrier.wait_deadline(VTime::ZERO, std::time::Duration::from_millis(10));
        assert_eq!(r, Err(BarrierTimeout));
        // The withdrawal left the state clean: a later full barrier works.
        let b2 = Arc::clone(&barrier);
        let peer = thread::spawn(move || b2.wait(VTime::ZERO));
        let mine = barrier.wait_deadline(VTime::ZERO, std::time::Duration::from_secs(10));
        assert!(mine.is_ok());
        peer.join().unwrap();
    }

    #[test]
    fn wait_deadline_releases_with_all_present() {
        let barrier = BarrierShared::new(3, 0.0);
        let mut handles = Vec::new();
        for _ in 0..3 {
            let b = Arc::clone(&barrier);
            handles.push(thread::spawn(move || {
                b.wait_deadline(VTime::ZERO, std::time::Duration::from_secs(10))
            }));
        }
        for h in handles {
            assert!(h.join().unwrap().is_ok());
        }
    }

    #[test]
    fn wait_deadline_errors_on_poison() {
        let barrier = BarrierShared::new(2, 0.0);
        let b2 = Arc::clone(&barrier);
        let waiter = thread::spawn(move || {
            b2.wait_deadline(VTime::ZERO, std::time::Duration::from_secs(30))
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        barrier.poison();
        assert_eq!(waiter.join().unwrap(), Err(BarrierTimeout));
    }

    #[test]
    #[should_panic(expected = "first boom")]
    fn first_panic_wins_and_poison_runs() {
        let poisons = AtomicUsize::new(0);
        run_ranks(
            "t-",
            vec![0usize, 1],
            || {
                poisons.fetch_add(1, Ordering::SeqCst);
            },
            |rank| {
                if *rank == 0 {
                    panic!("first boom");
                }
                // Give rank 0 time to record its panic first.
                std::thread::sleep(std::time::Duration::from_millis(30));
                panic!("second boom");
            },
            |_, ()| (),
        );
    }
}
