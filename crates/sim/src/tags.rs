//! The registry of runtime-internal reserved tags.
//!
//! Every internal protocol of the runtime library sends on a tag in the
//! reserved band (`Tag::RESERVED_BASE ..`), and every such tag is listed
//! **here** — one documented module, so the band is auditable at a glance
//! and the protocol checker can diagnose traffic on a reserved tag that no
//! runtime protocol owns (a user application straying into the band, or a
//! runtime component inventing an unregistered tag).
//!
//! | Offset | Const | Protocol |
//! |--------|-------|----------|
//! | 16 | [`TAG_SCHED_QUERY`] | inspector: ghost-owner queries |
//! | 17 | [`TAG_SCHED_REPLY`] | inspector: ghost-owner replies |
//! | 18 | [`TAG_SCHED_REQUEST`] | inspector: send-list requests |
//! | 32 | [`TAG_GATHER`] | executor: ghost-value gather |
//! | 33 | [`TAG_SCATTER`] | executor: accumulation scatter |
//! | 34 | [`TAG_GATHER_FUSED`] | executor: fused multi-field ghost gather |
//! | 48 | [`TAG_REDIST_VALUES`] | redistribution: coalesced value blocks |
//! | 49 | [`TAG_REDIST_ADJ`] | redistribution: adjacency rows |
//! | 50 | [`TAG_LOAD`] | load balancing: per-item time gather |
//! | 51 | [`TAG_DECISION`] | load balancing: decision broadcast |
//! | 52 | [`TAG_LOAD_ALLGATHER`] | load balancing: distributed allgather |
//! | 64 | [`TAG_AUDIT`] | verifier: schedule-summary allgather |
//! | 65 | [`TAG_TRACE`] | verifier: protocol-trace allgather |
//! | 66 | [`TAG_HEARTBEAT`] | failure detection: liveness probes |
//! | 67 | [`TAG_VERDICT`] | failure detection: suspicion exchange |
//! | 68 | [`TAG_CHECKPOINT`] | checkpoint: replicated state allgather |
//! | 69 | [`TAG_SHRINK`] | survivor communicator: emulated barrier |
//! | 70 | [`TAG_TCP_BARRIER`] | TCP backend: barrier arrive/release protocol |

use crate::payload::Tag;

/// Inspector (simple strategy): ghost-owner query messages.
pub const TAG_SCHED_QUERY: Tag = Tag::reserved(16);

/// Inspector (simple strategy): ghost-owner reply messages.
pub const TAG_SCHED_REPLY: Tag = Tag::reserved(17);

/// Inspector (simple strategy): send-list request messages.
pub const TAG_SCHED_REQUEST: Tag = Tag::reserved(18);

/// Executor: the ghost-value gather that precedes each sweep.
pub const TAG_GATHER: Tag = Tag::reserved(32);

/// Executor: the accumulation scatter (transpose of the gather).
pub const TAG_SCATTER: Tag = Tag::reserved(33);

/// Executor: the fused multi-field ghost gather — one message per
/// neighbor carrying the concatenated ghost segments of every field a
/// stage graph exchanges at the same dataflow point.
pub const TAG_GATHER_FUSED: Tag = Tag::reserved(34);

/// Redistribution: coalesced value-block messages (`RemapScratch`).
pub const TAG_REDIST_VALUES: Tag = Tag::reserved(48);

/// Redistribution: adjacency-row messages (`RemapScratch`).
pub const TAG_REDIST_ADJ: Tag = Tag::reserved(49);

/// Load balancing: per-item compute-time gather to the controller.
pub const TAG_LOAD: Tag = Tag::reserved(50);

/// Load balancing: the controller's decision broadcast.
pub const TAG_DECISION: Tag = Tag::reserved(51);

/// Load balancing: the distributed-mode load allgather.
pub const TAG_LOAD_ALLGATHER: Tag = Tag::reserved(52);

/// Verifier: the static audit's schedule-summary allgather.
pub const TAG_AUDIT: Tag = Tag::reserved(64);

/// Verifier: the protocol checker's trace allgather.
pub const TAG_TRACE: Tag = Tag::reserved(65);

/// Failure detection: heartbeat probes between suspicious ranks.
pub const TAG_HEARTBEAT: Tag = Tag::reserved(66);

/// Failure detection: the suspicion-bitmask exchange that turns local
/// timeouts into a collective verdict.
pub const TAG_VERDICT: Tag = Tag::reserved(67);

/// Checkpoint: the allgather replicating session recovery state.
pub const TAG_CHECKPOINT: Tag = Tag::reserved(68);

/// Survivor communicator: the emulated point-to-point barrier among
/// surviving ranks (the shared-memory barrier would hang on the dead).
pub const TAG_SHRINK: Tag = Tag::reserved(69);

/// TCP process backend: the centralized barrier protocol (arrive /
/// withdraw / release / abort control messages between every rank and
/// rank 0). Rides the ordinary framed message stream so data-vs-barrier
/// FIFO order per peer pair is the socket's own order.
pub const TAG_TCP_BARRIER: Tag = Tag::reserved(70);

/// All registered runtime tags (the full contents of the table above).
pub const RUNTIME_TAGS: &[Tag] = &[
    TAG_SCHED_QUERY,
    TAG_SCHED_REPLY,
    TAG_SCHED_REQUEST,
    TAG_GATHER,
    TAG_SCATTER,
    TAG_GATHER_FUSED,
    TAG_REDIST_VALUES,
    TAG_REDIST_ADJ,
    TAG_LOAD,
    TAG_DECISION,
    TAG_LOAD_ALLGATHER,
    TAG_AUDIT,
    TAG_TRACE,
    TAG_HEARTBEAT,
    TAG_VERDICT,
    TAG_CHECKPOINT,
    TAG_SHRINK,
    TAG_TCP_BARRIER,
];

/// Whether `tag` is a **registered** runtime-internal tag. Reserved-band
/// tags that are *not* registered here are protocol violations — the
/// trace analyzer reports them as `ReservedTagMisuse`.
#[inline]
pub fn is_runtime_tag(tag: Tag) -> bool {
    RUNTIME_TAGS.contains(&tag)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registered_tag_is_in_the_reserved_band() {
        for &t in RUNTIME_TAGS {
            assert!(t.is_reserved(), "{t:?} is registered but not reserved");
        }
    }

    #[test]
    fn registry_has_no_duplicates() {
        for (i, a) in RUNTIME_TAGS.iter().enumerate() {
            for b in &RUNTIME_TAGS[i + 1..] {
                assert_ne!(a, b, "duplicate registry entry");
            }
        }
    }

    #[test]
    fn membership() {
        assert!(is_runtime_tag(TAG_AUDIT));
        assert!(is_runtime_tag(TAG_HEARTBEAT));
        assert!(!is_runtime_tag(Tag(7)));
        assert!(!is_runtime_tag(Tag::reserved(200)));
    }
}
