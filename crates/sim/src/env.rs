//! Per-rank execution environment: the SPMD process's view of the cluster.
//!
//! An [`Env`] is handed to the SPMD closure on each simulated workstation. It
//! owns that rank's virtual clock and provides point-to-point messaging,
//! multicast, collectives and compute-charging. All methods take `&mut self`:
//! a rank is a single sequential process, exactly as in the paper's SPMD
//! model (§2).

use std::sync::Arc;

use crate::comm::{Comm, RecvRequest};
use crate::launch::BarrierShared;
use crate::machine::MachineSpec;
use crate::mailbox::{MailboxReceiver, MailboxSender, TagBuffer, Tagged};
use crate::network::NetworkState;
use crate::payload::{Payload, Tag};
use crate::stats::EnvStats;
use crate::time::VTime;

/// A message in flight between two ranks.
#[derive(Debug)]
pub(crate) struct Msg {
    pub tag: Tag,
    pub arrival: VTime,
    pub payload: Payload,
}

impl Tagged for Msg {
    fn tag(&self) -> Tag {
        self.tag
    }
}

/// One rank's handle onto the simulated cluster.
pub struct Env {
    rank: usize,
    size: usize,
    clock: VTime,
    machine: MachineSpec,
    net: Arc<NetworkState>,
    /// `txs[dst]` sends into `dst`'s mailbox slot for this rank.
    txs: Vec<MailboxSender<Msg>>,
    /// `rxs[src]` receives messages sent by `src`.
    rxs: Vec<MailboxReceiver<Msg>>,
    /// Tag-matched receive buffering (shared semantics with the native
    /// backend — see [`TagBuffer`]).
    pending: TagBuffer<Msg>,
    barrier: Arc<BarrierShared>,
    stats: EnvStats,
}

impl Env {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        rank: usize,
        size: usize,
        machine: MachineSpec,
        net: Arc<NetworkState>,
        txs: Vec<MailboxSender<Msg>>,
        rxs: Vec<MailboxReceiver<Msg>>,
        barrier: Arc<BarrierShared>,
    ) -> Self {
        let pending = TagBuffer::new(size);
        Env {
            rank,
            size,
            clock: VTime::ZERO,
            machine,
            net,
            txs,
            rxs,
            pending,
            barrier,
            stats: EnvStats::default(),
        }
    }

    /// This rank's id in `0..size()`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the cluster.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Current virtual time on this rank.
    #[inline]
    pub fn now(&self) -> VTime {
        self.clock
    }

    /// This rank's machine description.
    #[inline]
    pub fn machine(&self) -> &MachineSpec {
        &self.machine
    }

    /// Counters accumulated so far.
    #[inline]
    pub fn stats(&self) -> &EnvStats {
        &self.stats
    }

    pub(crate) fn into_parts(self) -> (VTime, EnvStats) {
        (self.clock, self.stats)
    }

    /// Charges `work` reference seconds of computation. The clock advances
    /// according to this machine's speed and external-load timeline, so the
    /// same work takes longer on a slow or loaded workstation.
    pub fn compute(&mut self, work: f64) {
        let end = self.machine.finish_time(self.clock, work);
        self.stats.compute_time += end - self.clock;
        self.clock = end;
    }

    /// Advances the clock to `t` if `t` is in the future (models idle
    /// waiting for an external event; accounted as wait time).
    pub fn advance_to(&mut self, t: VTime) {
        if t > self.clock {
            self.stats.wait_time += t - self.clock;
            self.clock = t;
        }
    }

    /// Sends `payload` to `dst` with `tag`. Charges this rank the
    /// per-message setup cost; the message arrives at
    /// `setup-completion + latency + bytes × byte_time`.
    ///
    /// Sending to self is allowed (the message is delivered through the same
    /// mailbox with zero network cost beyond setup).
    ///
    /// # Panics
    /// Panics if `dst` is out of range.
    pub fn send(&mut self, dst: usize, tag: Tag, payload: Payload) {
        assert!(dst < self.size, "send to rank {dst} of {}", self.size);
        let bytes = payload.size_bytes();
        let spec = self.net.spec();
        self.clock += spec.send_setup;
        self.stats.send_time += spec.send_setup;
        let arrival = if dst == self.rank {
            self.clock
        } else {
            self.net.arrival(self.clock, bytes)
        };
        self.stats.messages_sent += 1;
        self.stats.bytes_sent += bytes as u64;
        if self.txs[dst]
            .send(Msg {
                tag,
                arrival,
                payload,
            })
            .is_err()
        {
            panic!("receiver rank terminated before message was delivered");
        }
    }

    /// Sends the same payload to several destinations. If the network
    /// supports multicast (§3.6), one setup and one transmission serve all
    /// destinations; otherwise this degenerates to a loop of unicast sends.
    pub fn multicast(&mut self, dsts: &[usize], tag: Tag, payload: Payload) {
        if dsts.is_empty() {
            return;
        }
        if dsts.len() == 1 {
            self.send(dsts[0], tag, payload);
            return;
        }
        if self.net.multicast_supported() {
            let bytes = payload.size_bytes();
            let spec = self.net.spec();
            self.clock += spec.send_setup;
            self.stats.send_time += spec.send_setup;
            let arrival = self.net.arrival(self.clock, bytes);
            self.stats.messages_sent += 1;
            self.stats.bytes_sent += bytes as u64;
            for &dst in dsts {
                assert!(dst < self.size, "multicast to rank {dst} of {}", self.size);
                let arrival = if dst == self.rank {
                    self.clock
                } else {
                    arrival
                };
                if self.txs[dst]
                    .send(Msg {
                        tag,
                        arrival,
                        payload: payload.clone(),
                    })
                    .is_err()
                {
                    panic!("receiver rank terminated before message was delivered");
                }
            }
        } else {
            for &dst in dsts {
                self.send(dst, tag, payload.clone());
            }
        }
    }

    /// Receives the next message from `src` carrying `tag`, blocking until it
    /// arrives. The clock advances to the message's arrival time (waiting is
    /// accounted) plus the receive overhead.
    ///
    /// # Panics
    /// Panics if `src` is out of range, or if `src` terminates without ever
    /// sending a matching message (a deadlocked protocol is a bug).
    pub fn recv(&mut self, src: usize, tag: Tag) -> Payload {
        assert!(src < self.size, "recv from rank {src} of {}", self.size);
        let msg = self
            .pending
            .recv_matching(&mut self.rxs[src], self.rank, src, tag);
        self.stats.wait_time += msg.arrival.saturating_gap(self.clock);
        self.clock = self.clock.max(msg.arrival);
        let overhead = self.net.spec().recv_overhead;
        self.clock += overhead;
        self.stats.recv_time += overhead;
        self.stats.messages_received += 1;
        self.stats.bytes_received += msg.payload.size_bytes() as u64;
        msg.payload
    }

    /// Synchronizes all ranks: every clock advances to the maximum
    /// participant clock plus the barrier's log-tree latency.
    pub fn barrier(&mut self) {
        let entry = self.clock;
        let release = self.barrier.wait(entry);
        debug_assert!(release >= entry, "barrier released before entry");
        self.stats.barrier_time += release - entry;
        self.clock = release;
    }

    /// Lossy send (the failure detector's primitive): identical cost
    /// accounting to [`Env::send`], but a terminated receiver yields
    /// `false` instead of a panic. The setup cost is charged either way —
    /// the sender cannot know the peer is gone until it tries.
    pub fn post(&mut self, dst: usize, tag: Tag, payload: Payload) -> bool {
        assert!(dst < self.size, "post to rank {dst} of {}", self.size);
        let bytes = payload.size_bytes();
        let spec = self.net.spec();
        self.clock += spec.send_setup;
        self.stats.send_time += spec.send_setup;
        let arrival = if dst == self.rank {
            self.clock
        } else {
            self.net.arrival(self.clock, bytes)
        };
        match self.txs[dst].send(Msg {
            tag,
            arrival,
            payload,
        }) {
            Ok(()) => {
                self.stats.messages_sent += 1;
                self.stats.bytes_sent += bytes as u64;
                true
            }
            Err(_undelivered) => false,
        }
    }

    /// Bounded receive (the failure detector's primitive). A terminated
    /// sender yields `None` immediately; otherwise the wait is bounded by
    /// `timeout_secs` of *host* time (the peer's send must physically
    /// execute for its virtual arrival stamp to exist — a rank that will
    /// never send cannot be waited out in virtual time alone). On a
    /// timeout the full `timeout_secs` is charged to this rank's virtual
    /// clock as wait time, so a timed-out probe costs in the model what
    /// it costs on real hardware. A delivered message advances the clock
    /// exactly as [`Env::recv`] does; mismatched tags buffered while
    /// waiting are preserved.
    pub fn recv_deadline(&mut self, src: usize, tag: Tag, timeout_secs: f64) -> Option<Payload> {
        assert!(src < self.size, "recv from rank {src} of {}", self.size);
        let deadline =
            std::time::Instant::now() + std::time::Duration::from_secs_f64(timeout_secs.max(0.0));
        match self
            .pending
            .recv_matching_deadline(&mut self.rxs[src], src, tag, deadline)
        {
            Ok(msg) => {
                self.stats.wait_time += msg.arrival.saturating_gap(self.clock);
                self.clock = self.clock.max(msg.arrival);
                let overhead = self.net.spec().recv_overhead;
                self.clock += overhead;
                self.stats.recv_time += overhead;
                self.stats.messages_received += 1;
                self.stats.bytes_received += msg.payload.size_bytes() as u64;
                Some(msg.payload)
            }
            Err(crate::mailbox::RecvTimeoutError::Disconnected) => None,
            Err(crate::mailbox::RecvTimeoutError::TimedOut) => {
                self.stats.wait_time += timeout_secs.max(0.0);
                self.clock += timeout_secs.max(0.0);
                None
            }
        }
    }

    /// Bounded barrier (the failure detector's primitive): `false` if the
    /// barrier does not release within `timeout_secs` of host time (or
    /// was poisoned), with this rank's arrival withdrawn and the full
    /// timeout charged to the virtual clock as wait time.
    pub fn barrier_deadline(&mut self, timeout_secs: f64) -> bool {
        let entry = self.clock;
        match self.barrier.wait_deadline(
            entry,
            std::time::Duration::from_secs_f64(timeout_secs.max(0.0)),
        ) {
            Ok(release) => {
                debug_assert!(release >= entry, "barrier released before entry");
                self.stats.barrier_time += release - entry;
                self.clock = release;
                true
            }
            Err(crate::launch::BarrierTimeout) => {
                self.stats.wait_time += timeout_secs.max(0.0);
                self.clock += timeout_secs.max(0.0);
                false
            }
        }
    }
}

/// The simulator backend's [`Comm`] implementation. The primitives
/// (`send`/`recv`/`barrier`/`compute`) delegate to `Env`'s inherent
/// cost-modelled methods; `multicast` is also overridden because the
/// network model has a hardware-multicast fast path (§3.6) the trait's
/// unicast-loop default can't express. The remaining collectives use the
/// trait defaults, which are built from these overridden primitives — so
/// they charge virtual time exactly as hand-rolled versions would, and
/// there is exactly one copy of each collective's data-movement logic for
/// all backends (see [`crate::comm`]).
impl Comm for Env {
    #[inline]
    fn rank(&self) -> usize {
        Env::rank(self)
    }

    #[inline]
    fn size(&self) -> usize {
        Env::size(self)
    }

    #[inline]
    fn compute(&mut self, work: f64) {
        Env::compute(self, work);
    }

    #[inline]
    fn now_secs(&self) -> f64 {
        self.now().as_secs()
    }

    fn send(&mut self, dst: usize, tag: Tag, payload: Payload) {
        Env::send(self, dst, tag, payload);
    }

    fn recv(&mut self, src: usize, tag: Tag) -> Payload {
        Env::recv(self, src, tag)
    }

    fn barrier(&mut self) {
        Env::barrier(self);
    }

    fn multicast(&mut self, dsts: &[usize], tag: Tag, payload: Payload) {
        Env::multicast(self, dsts, tag, payload);
    }

    // `isend`/`irecv`/`wait_recv` use the trait defaults, which is the
    // whole point of the virtual-time design: `isend` delegates to `send`
    // (setup charged at post time, arrival stamped from the post-completion
    // clock) and `wait_recv` delegates to `recv` (clock completes at
    // `max(now, arrival)` + receive overhead). Compute charged between the
    // post and the wait therefore advances the clock past the arrival
    // stamp, and the wait costs nothing — communication hidden behind
    // computation, visible in the cost model with no new charging rules.

    /// Deterministic virtual-time probe: `true` iff the matching message's
    /// modelled arrival is at or before this rank's current virtual clock.
    /// The probe charges no time and consumes nothing.
    ///
    /// To stay deterministic it must read the message's arrival stamp, so
    /// it blocks *in host time* until the peer's send has physically
    /// executed (host-thread progress is not observable in virtual time —
    /// returning "not ready" just because the peer's OS thread is behind
    /// would make results depend on host scheduling). Virtual-time
    /// semantics are unaffected: in simulated time the probe is
    /// instantaneous.
    ///
    /// # Panics
    /// Panics if the sender terminates without ever sending a matching
    /// message, exactly as [`Env::recv`] does.
    fn test_recv(&mut self, req: &RecvRequest) -> bool {
        let msg =
            self.pending
                .peek_matching(&mut self.rxs[req.src()], self.rank, req.src(), req.tag());
        msg.arrival <= self.clock
    }

    fn post(&mut self, dst: usize, tag: Tag, payload: Payload) -> bool {
        Env::post(self, dst, tag, payload)
    }

    fn recv_deadline(&mut self, src: usize, tag: Tag, timeout_secs: f64) -> Option<Payload> {
        Env::recv_deadline(self, src, tag, timeout_secs)
    }

    fn barrier_deadline(&mut self, timeout_secs: f64) -> bool {
        Env::barrier_deadline(self, timeout_secs)
    }
}

#[cfg(test)]
mod tests {
    // Env construction needs a full cluster; behavioural tests live in
    // `cluster.rs` and in the crate-level integration tests.
}
