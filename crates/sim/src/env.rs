//! Per-rank execution environment: the SPMD process's view of the cluster.
//!
//! An [`Env`] is handed to the SPMD closure on each simulated workstation. It
//! owns that rank's virtual clock and provides point-to-point messaging,
//! multicast, collectives and compute-charging. All methods take `&mut self`:
//! a rank is a single sequential process, exactly as in the paper's SPMD
//! model (§2).

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

use crate::machine::MachineSpec;
use crate::mailbox::{MailboxReceiver, MailboxSender};
use crate::network::NetworkState;
use crate::payload::{Payload, Tag};
use crate::stats::EnvStats;
use crate::time::VTime;

/// A message in flight between two ranks.
#[derive(Debug)]
pub(crate) struct Msg {
    pub tag: Tag,
    pub arrival: VTime,
    pub payload: Payload,
}

/// Shared state for the clock-synchronizing barrier.
pub(crate) struct BarrierShared {
    inner: Mutex<BarrierInner>,
    cv: Condvar,
    size: usize,
    /// Virtual seconds a barrier adds beyond the max participant clock
    /// (log-tree latency model).
    cost: f64,
}

struct BarrierInner {
    arrived: usize,
    generation: u64,
    max_clock: VTime,
    release: VTime,
}

impl BarrierShared {
    pub(crate) fn new(size: usize, per_message_latency: f64) -> Arc<Self> {
        // A dissemination barrier needs ceil(log2(p)) rounds of messages.
        let rounds = if size <= 1 {
            0.0
        } else {
            (size as f64).log2().ceil()
        };
        Arc::new(BarrierShared {
            inner: Mutex::new(BarrierInner {
                arrived: 0,
                generation: 0,
                max_clock: VTime::ZERO,
                release: VTime::ZERO,
            }),
            cv: Condvar::new(),
            size,
            cost: 2.0 * per_message_latency * rounds,
        })
    }

    /// Blocks until all ranks arrive; returns the synchronized release time.
    fn wait(&self, clock: VTime) -> VTime {
        let mut g = self.inner.lock().expect("barrier lock poisoned");
        g.max_clock = g.max_clock.max(clock);
        g.arrived += 1;
        if g.arrived == self.size {
            g.release = g.max_clock + self.cost;
            g.generation = g.generation.wrapping_add(1);
            g.arrived = 0;
            g.max_clock = VTime::ZERO;
            self.cv.notify_all();
            g.release
        } else {
            let gen = g.generation;
            while g.generation == gen {
                g = self.cv.wait(g).expect("barrier lock poisoned");
            }
            g.release
        }
    }
}

/// One rank's handle onto the simulated cluster.
pub struct Env {
    rank: usize,
    size: usize,
    clock: VTime,
    machine: MachineSpec,
    net: Arc<NetworkState>,
    /// `txs[dst]` sends into `dst`'s mailbox slot for this rank.
    txs: Vec<MailboxSender>,
    /// `rxs[src]` receives messages sent by `src`.
    rxs: Vec<MailboxReceiver>,
    /// Buffered messages per source whose tag did not match an earlier recv.
    pending: Vec<VecDeque<Msg>>,
    barrier: Arc<BarrierShared>,
    stats: EnvStats,
}

impl Env {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        rank: usize,
        size: usize,
        machine: MachineSpec,
        net: Arc<NetworkState>,
        txs: Vec<MailboxSender>,
        rxs: Vec<MailboxReceiver>,
        barrier: Arc<BarrierShared>,
    ) -> Self {
        let pending = (0..size).map(|_| VecDeque::new()).collect();
        Env {
            rank,
            size,
            clock: VTime::ZERO,
            machine,
            net,
            txs,
            rxs,
            pending,
            barrier,
            stats: EnvStats::default(),
        }
    }

    /// This rank's id in `0..size()`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the cluster.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Current virtual time on this rank.
    #[inline]
    pub fn now(&self) -> VTime {
        self.clock
    }

    /// This rank's machine description.
    #[inline]
    pub fn machine(&self) -> &MachineSpec {
        &self.machine
    }

    /// Counters accumulated so far.
    #[inline]
    pub fn stats(&self) -> &EnvStats {
        &self.stats
    }

    pub(crate) fn into_parts(self) -> (VTime, EnvStats) {
        (self.clock, self.stats)
    }

    /// Charges `work` reference seconds of computation. The clock advances
    /// according to this machine's speed and external-load timeline, so the
    /// same work takes longer on a slow or loaded workstation.
    pub fn compute(&mut self, work: f64) {
        let end = self.machine.finish_time(self.clock, work);
        self.stats.compute_time += end - self.clock;
        self.clock = end;
    }

    /// Advances the clock to `t` if `t` is in the future (models idle
    /// waiting for an external event; accounted as wait time).
    pub fn advance_to(&mut self, t: VTime) {
        if t > self.clock {
            self.stats.wait_time += t - self.clock;
            self.clock = t;
        }
    }

    /// Sends `payload` to `dst` with `tag`. Charges this rank the
    /// per-message setup cost; the message arrives at
    /// `setup-completion + latency + bytes × byte_time`.
    ///
    /// Sending to self is allowed (the message is delivered through the same
    /// mailbox with zero network cost beyond setup).
    ///
    /// # Panics
    /// Panics if `dst` is out of range.
    pub fn send(&mut self, dst: usize, tag: Tag, payload: Payload) {
        assert!(dst < self.size, "send to rank {dst} of {}", self.size);
        let bytes = payload.size_bytes();
        let spec = self.net.spec();
        self.clock += spec.send_setup;
        self.stats.send_time += spec.send_setup;
        let arrival = if dst == self.rank {
            self.clock
        } else {
            self.net.arrival(self.clock, bytes)
        };
        self.stats.messages_sent += 1;
        self.stats.bytes_sent += bytes as u64;
        if self.txs[dst]
            .send(Msg {
                tag,
                arrival,
                payload,
            })
            .is_err()
        {
            panic!("receiver rank terminated before message was delivered");
        }
    }

    /// Sends the same payload to several destinations. If the network
    /// supports multicast (§3.6), one setup and one transmission serve all
    /// destinations; otherwise this degenerates to a loop of unicast sends.
    pub fn multicast(&mut self, dsts: &[usize], tag: Tag, payload: Payload) {
        if dsts.is_empty() {
            return;
        }
        if dsts.len() == 1 {
            self.send(dsts[0], tag, payload);
            return;
        }
        if self.net.multicast_supported() {
            let bytes = payload.size_bytes();
            let spec = self.net.spec();
            self.clock += spec.send_setup;
            self.stats.send_time += spec.send_setup;
            let arrival = self.net.arrival(self.clock, bytes);
            self.stats.messages_sent += 1;
            self.stats.bytes_sent += bytes as u64;
            for &dst in dsts {
                assert!(dst < self.size, "multicast to rank {dst} of {}", self.size);
                let arrival = if dst == self.rank {
                    self.clock
                } else {
                    arrival
                };
                if self.txs[dst]
                    .send(Msg {
                        tag,
                        arrival,
                        payload: payload.clone(),
                    })
                    .is_err()
                {
                    panic!("receiver rank terminated before message was delivered");
                }
            }
        } else {
            for &dst in dsts {
                self.send(dst, tag, payload.clone());
            }
        }
    }

    /// Receives the next message from `src` carrying `tag`, blocking until it
    /// arrives. The clock advances to the message's arrival time (waiting is
    /// accounted) plus the receive overhead.
    ///
    /// # Panics
    /// Panics if `src` is out of range, or if `src` terminates without ever
    /// sending a matching message (a deadlocked protocol is a bug).
    pub fn recv(&mut self, src: usize, tag: Tag) -> Payload {
        assert!(src < self.size, "recv from rank {src} of {}", self.size);
        let msg = self.take_matching(src, tag);
        self.stats.wait_time += msg.arrival.saturating_gap(self.clock);
        self.clock = self.clock.max(msg.arrival);
        let overhead = self.net.spec().recv_overhead;
        self.clock += overhead;
        self.stats.recv_time += overhead;
        self.stats.messages_received += 1;
        self.stats.bytes_received += msg.payload.size_bytes() as u64;
        msg.payload
    }

    fn take_matching(&mut self, src: usize, tag: Tag) -> Msg {
        if let Some(pos) = self.pending[src].iter().position(|m| m.tag == tag) {
            return self.pending[src]
                .remove(pos)
                .expect("position was just found");
        }
        loop {
            let msg = self.rxs[src].recv().unwrap_or_else(|_disconnected| {
                panic!(
                    "rank {} waiting on tag {:?} from rank {src}, but the sender exited",
                    self.rank, tag
                )
            });
            if msg.tag == tag {
                return msg;
            }
            self.pending[src].push_back(msg);
        }
    }

    /// Synchronizes all ranks: every clock advances to the maximum
    /// participant clock plus the barrier's log-tree latency.
    pub fn barrier(&mut self) {
        let entry = self.clock;
        let release = self.barrier.wait(entry);
        debug_assert!(release >= entry, "barrier released before entry");
        self.stats.barrier_time += release - entry;
        self.clock = release;
    }

    /// Broadcast from `root`: the root multicasts `payload` to everyone and
    /// returns it; the others receive it.
    pub fn bcast_from(&mut self, root: usize, tag: Tag, payload: Payload) -> Payload {
        if self.rank == root {
            let others: Vec<usize> = (0..self.size).filter(|&r| r != root).collect();
            self.multicast(&others, tag, payload.clone());
            payload
        } else {
            self.recv(root, tag)
        }
    }

    /// Gathers every rank's payload at `root` (in rank order). Returns
    /// `Some(payloads)` at the root and `None` elsewhere.
    pub fn gather_to(&mut self, root: usize, tag: Tag, payload: Payload) -> Option<Vec<Payload>> {
        if self.rank == root {
            let mut out = Vec::with_capacity(self.size);
            for src in 0..self.size {
                if src == root {
                    out.push(payload.clone());
                } else {
                    out.push(self.recv(src, tag));
                }
            }
            Some(out)
        } else {
            self.send(root, tag, payload);
            None
        }
    }

    /// All-gather: every rank ends up with every rank's payload, in rank
    /// order. Implemented as gather-to-0 followed by broadcast of the
    /// concatenation metadata; cost follows from the constituent messages.
    pub fn allgather(&mut self, tag: Tag, payload: Payload) -> Vec<Payload> {
        // Each rank multicasts its contribution; everyone receives p-1.
        let others: Vec<usize> = (0..self.size).filter(|&r| r != self.rank).collect();
        self.multicast(&others, tag, payload.clone());
        let mut out = Vec::with_capacity(self.size);
        for src in 0..self.size {
            if src == self.rank {
                out.push(payload.clone());
            } else {
                out.push(self.recv(src, tag));
            }
        }
        out
    }

    /// All-reduce of one `f64` per rank with a binary operation. Everyone
    /// returns the reduction over all ranks, folded in rank order.
    pub fn allreduce_f64(&mut self, tag: Tag, value: f64, op: impl Fn(f64, f64) -> f64) -> f64 {
        let parts = self.allgather(tag, Payload::from_f64(vec![value]));
        parts
            .into_iter()
            .map(|p| p.into_f64()[0])
            .reduce(&op)
            .expect("cluster has at least one rank")
    }

    /// Personalized all-to-all exchange: sends each `(dst, payload)` pair,
    /// then receives one payload from each rank listed in `recv_from` (in the
    /// given order). The caller must know its senders — in STANCE they always
    /// follow from replicated interval tables or schedules.
    pub fn exchange(
        &mut self,
        sends: Vec<(usize, Payload)>,
        recv_from: &[usize],
        tag: Tag,
    ) -> Vec<(usize, Payload)> {
        for (dst, payload) in sends {
            self.send(dst, tag, payload);
        }
        recv_from
            .iter()
            .map(|&src| (src, self.recv(src, tag)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    // Env construction needs a full cluster; behavioural tests live in
    // `cluster.rs` and in the crate-level integration tests.
}
